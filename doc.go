// Package repro is a from-scratch Go reproduction of "LPO: Discovering
// Missed Peephole Optimizations with Large Language Models" (ASPLOS '26),
// including every substrate the paper's pipeline depends on: an LLVM IR
// subset with parser and printer, a concrete interpreter with Alive2-style
// poison/UB semantics, an InstCombine-like optimizer, an llvm-mca-style
// static performance model, a bounded translation validator, the Souper and
// Minotaur superoptimizer baselines, a synthetic corpus, and a calibrated
// simulated LLM provider.
//
// # The Engine API
//
// Discovery (the paper's Algorithm 1) runs on internal/engine, a concurrent,
// context-aware batch API. An engine.Source streams extracted instruction
// sequences — from a parsed .ll file (engine.File), the synthetic corpus
// (engine.Corpus), pre-extracted slices (engine.Sequences), or bare
// functions (engine.Funcs) — into a pool of workers that drive each sequence
// through the stage chain Propose → Preprocess → Filter → Verify with the
// paper's feedback loop between attempts:
//
//	ex := extract.New(extract.Options{})
//	eng := engine.New(llm.NewSim("Gemini2.0T", seed), engine.Config{
//		Workers: 8, Rounds: 4,
//		Verify: alive.Options{Samples: 1024, Seed: seed},
//	})
//	results, stats := eng.Run(ctx, engine.Corpus(corpus.Options{Seed: seed}, ex))
//	for res := range results { ... }
//
// Results are reassembled in source order before they are emitted, so for a
// fixed seed the output stream is identical regardless of the worker count.
// Cancelling ctx drains the run cleanly. Stats exposes concurrency-safe
// per-stage metrics (invocation counts, outcome tallies, accumulated
// llm.Usage, per-stage latency) that may be read while the run is in
// flight, and a cross-worker verification cache deduplicates identical
// (source, candidate) refinement checks by structural hash.
//
// The knobs surface on the CLIs: cmd/lpo takes -workers and -queue,
// cmd/lpo-bench and cmd/lpo-opt take -workers; engine.ParMap backs the
// provider-free fan-outs (patch-impact scans, baseline sweeps, batch opt).
//
// # The Rule Registry
//
// Every rewrite the optimizer can perform — the baseline InstSimplify
// identities and InstCombine-style rewrites, the modelled LLVM patches
// (Table 5), and the simulated LLM's knowledge base — is a first-class
// opt.Rule: an ID, a provenance, the root opcodes it fires on, a pattern doc
// string and a synthetic example it provably fires on (the registry
// soundness sweep in internal/opt verifies each against internal/alive).
// opt.Run resolves Options into an opt.RuleSet — an opcode-indexed dispatch
// table in deterministic rule order — once per run, so the per-instruction
// hot path never sorts or scans unrelated rules; llm.Sim and the engine
// share one prebuilt RuleSet across all calls. Per-rule hit counters flow
// end to end: opt.RunWithStats reports them per run, every Found
// engine.Result carries the optional rules that close its window,
// engine.Stats aggregates the attribution, and the RQ1/RQ2/Figure-5
// experiments print which rule closed each benchmark. cmd/lpo-opt -rules
// lists the registry.
//
// # The Generalize Subsystem and Rulebooks
//
// Discovery used to stop at verified concrete rewrites; internal/generalize
// closes the loop back into the compiler. With engine.Config.Learn set, every
// Found result's (source, candidate) pair runs through the post-verify
// generalize hook: concrete constants are abstracted into symbolic
// expressions of the bit width (signed/unsigned literals, width-derived
// shift amounts like w-1, low/high masks like mask(w)>>3, the sign bit),
// the abstraction is re-instantiated across a width sweep (i8/i16/i32/i64
// by default) and re-verified per width with internal/alive
// (alive.VerifyWidths), and over-generalizations are rejected by
// counterexample — a rule must survive at two or more widths or it is not
// learned. Survivors compile into dynamic opt.Rules (provenance "learned",
// opt.NewDynamicRule) that attach to any selection via RuleSet.WithRules and
// are dispatched, attributed and hit-counted exactly like registry rules.
//
// Learned rules persist in a rulebook (generalize.Rulebook, JSON): the
// witness pair, the slot abstractions, the verified widths and rendered
// side conditions, with a content-derived ID that doubles as an integrity
// check on load. The workflow:
//
//	lpo -corpus -learn book.json          discovery campaign, rulebook out
//	lpo-opt -rulebook book.json f.ll      optimize with the learned rules
//	lpo -corpus -rulebook book.json ...   later campaign, stronger substrate
//	lpo-verify -widths 8,16,32,64 pair.ll probe a pair's width-genericity
//
// so each discovery run makes the next optimizer measurably stronger. The
// experiments package quantifies that with the learned-rule closure table
// (experiments.RunLearnedClosure, cmd/lpo-bench -learned): how many corpus
// windows the learned rulebook closes that baseline+patches miss.
//
// # Performance
//
// Verification is the pipeline's inner loop — every candidate pays for
// thousands of concrete executions, and generalization multiplies that by a
// width sweep — so execution is split into a compile phase and an execute
// phase. interp.Compile lowers a function once into a Program: every SSA
// value is numbered into a dense register slot, constants are materialized
// into an immutable pool, and block successors and phi edges are resolved to
// indices. An interp.Evaluator executes the Program over any number of
// input vectors with reusable scratch storage (register arena, operand
// views, store/bitcast buffers), so a steady-state run performs zero
// allocations per execution. Both the evaluator and the reference
// tree-walker (interp.Exec, kept for one-shot callers and as the semantic
// baseline) call the same per-opcode kernels, and differential tests pin
// them bit-identical — values, poison lanes, UB reasons, step counts and
// final memory.
//
// The fast path covers the dominant window shape: a single straight-line
// block whose operands are parameters, constants, or earlier results —
// scalar or vector, with or without memory, with full poison semantics —
// and skips per-run defined-register bookkeeping and block dispatch.
// Multi-block functions (phis, loops) run on the same register machine with
// those guards enabled; the one construct the register machine does not
// model (vector constants with runtime elements) is marked unbatchable at
// compile time (Program.Batchable, with BatchFallbackReason naming why).
// interp.Cache memoizes Programs by structural hash: the engine installs
// one cache per campaign shared by its verify stage and the generalize
// width sweeps, and the Souper/Minotaur CEGIS loops reuse compiled
// candidates across their filtering vectors and final checks.
//
// On top of the compile-once split, execution is lane-batched:
// Evaluator.RunBatch streams up to interp.BatchWidth input vectors through a
// program at once, instruction by instruction, over a structure-of-arrays
// batch arena in which every scalar register's operands and results are
// contiguous runs of words. The per-instruction dispatch that dominates
// single-vector execution is paid once per batch, the hot scalar kernels
// (integer binaries, icmp, select, int conversions, min/max intrinsics,
// freeze) run as tight per-op loops with constants pre-broadcast into
// columns, and UB, poison, return values and step budgets are tracked per
// lane — bit-identical to running each vector alone (pinned by randomized
// differential tests over straight-line, branchy and memory-touching
// programs). Multi-block programs run under a lane-masked scheduler: each
// block keeps a bitmask of lanes waiting to execute it, the scheduler
// always resumes the lowest-numbered runnable block so lanes that diverged
// at a branch reconverge at the join, and per-lane step budgets, phi
// predecessors and defined-register guards match single-vector Run exactly
// — a lane that exhausts its budget or trips UB simply drops out of every
// later mask. Memory-touching programs batch over per-lane memory slabs
// (interp.BatchMems): one lane-strided allocation per declared region,
// carved into BatchWidth isolated Memory views at identical base
// addresses, so loads and stores index lane-local storage with no
// cross-lane interference and a lane's final memory can be diffed or reset
// (ResetLane) independently. Streaming callers write inputs straight into
// the evaluator's ArgColumn runs and execute with RunBatchFilled, eliding
// staging and scatter entirely. interp.Cache is bounded (clock eviction
// over a few thousand programs, Stats for hit/miss/eviction counters), so
// campaign-long caches stay a few MB.
//
// internal/alive builds on this with alive.NewChecker and a tiered
// verification scheduler. Tier 0 replays the source window's pooled
// counterexamples (alive.CEPool — campaign-scoped and concurrency-safe:
// every falsified candidate deposits the refuting input, CEGIS-style, so
// repeat offenders die in a handful of executions); tier 1 runs the
// exhaustive/special-value phases and tier 2 the random phases, both
// streamed through the lane-batched evaluators whenever both programs
// compile batchable — straight-line or branchy, with or without memory.
// The input generator emits columnwise (inputGen.nextBatch binds each
// output vector to a different ArgColumn slot before drawing it, keeping
// the vector-major rng draw order that same-seed reproducibility pins),
// memory fills land directly in the per-lane slabs, and refuted pairs
// restore the raw generated pointer words and initial region bytes so the
// counterexample text stays byte-identical to the per-vector path (and to
// alive.ReferenceVerify, the retained Exec-per-input baseline). Result.Tiers
// reports per-tier executions, the killing tier and the batched/fallback
// split (Batched + Fallback == Checked — tier-0 pool replays are always
// per-vector, everything else batches unless a program is unbatchable);
// `lpo-verify -stats` prints them, engine.Stats aggregates them campaign-
// wide as BatchCoverage, and GET /v1/stats serves them.
// alive.VerifyWidths reseeds each width of a sweep with earlier widths'
// counterexamples rescaled to the new width; the engine installs one CEPool
// per campaign beside its program cache (Stats.TierKills aggregates the
// kills), and the Souper/Minotaur CEGIS loops deposit and replay through
// the same pool while folding refuting inputs into their test-vector
// filters. On one core this makes the clamp verification ~3x and the
// generalize width sweep ~3.6x faster than the PR-4 reference.
//
// `lpo-bench -json FILE` records the hot-path numbers as a machine-readable
// snapshot so later PRs have a trajectory to compare against. The format
// (schema "lpo-bench-perf/3") is one JSON object: "schema", "go_max_procs",
// "go_version", "benchmarks" — an array of {name, ns_per_op, allocs_per_op,
// bytes_per_op, iterations} for the workloads verify_checker,
// verify_reference, verify_batch, verify_multiblock, verify_memory,
// verify_widths, interp_exec, interp_compiled, interp_batch,
// opt_dispatch_all_rules and opt_run_o3 (mirrored by the root-level
// BenchmarkVerify*/BenchmarkInterp* benchmarks; interp_batch measures one
// whole BatchWidth-vector batch per op, verify_multiblock/verify_memory
// exercise the masked scheduler and the per-lane slabs on a reused
// checker) — "tier_kills", the {pool, special, random} kill counters of a
// fixed refute-twice-then-verify script that makes counterexample sharing
// CI-observable — and "batch_coverage", the {batched, fallback, coverage}
// split of a deterministic corpus self-verification sweep. CI uploads the
// snapshot as an artifact on every run and fails if any tracked workload
// regresses past 2x ns/op or grows past 2x allocs/op against the committed
// reference, if the sweep's batched share drops below 95%, or if
// "ingest_speedup" — the ratio of the store_commit workload's ns/op to
// ingest_throughput's, both measured in the same run — drops below 10x
// (`lpo-bench -json out.json -against BENCH_8.json`, tolerances via
// -tolerance / -alloc-tolerance); BENCH_8.json in the repository root is
// the PR-10 reference point (schema lpo-bench-perf/5, which adds the store
// ingest workloads store_commit / store_group_commit / ingest_throughput —
// see "Scaling the Store" below), BENCH_7.json the PR-7 one (schema 4,
// adding the wasm_decode / wasm_lift frontend workloads), BENCH_6.json the
// PR-6 one, BENCH_5.json the PR-5 one, BENCH_4.json the PR-4 one.
//
// # The WebAssembly Frontend
//
// internal/wasm gives the pipeline a second input language: compiled
// WebAssembly binaries, hunted for missed optimizations with the same
// engine that serves textual IR. The package is self-contained (leb128
// varint codec, section and function-body decoder, canonical encoder) and
// targets the MVP integer subset — i32/i64 arithmetic, bitwise and shift
// ops, comparisons, conversions, select, locals, constants, structured
// control flow (block/loop/if lowered to a CFG with phis), and linear
// memory load/store, which map onto the interpreter's pointer/region
// model as a trailing %mem pointer parameter. wasm.Lift reconstructs SSA
// from the stack machine — the operand stack holds ir.Values, locals are
// current-value bindings, and control-frame joins materialize phis only
// where merging edges disagree — and every lifted function must pass
// ir.VerifyFunc before it reaches extraction. Wasm's defined semantics
// are mapped, not approximated: shift counts are masked to the operand
// width, rotates become llvm.fshl/fshr, and bit counts become
// ctlz/cttz/ctpop (traps are the one documented approximation — they
// lift to IR whose corresponding UB the differential tests pin down).
//
// Functions outside the subset (floats, calls, globals, br_table,
// multi-result, malformed bodies) are skipped, never errored: each skip is
// tallied by reason, the per-module coverage lands in engine.Stats
// (`lpo -stats`, GET /v1/stats), and decoding is hardened against
// adversarial input (locals-count and instruction caps, a CI-fuzzed
// decoder). Every entry point accepts the format: `lpo file.wasm` sniffs
// the \0asm magic (-wasm forces it, -wasm-corpus scans the embedded
// fixture corpus), lpo-extract lifts before extraction, and lpod accepts
// raw binaries POSTed with Content-Type: application/wasm. For findings
// from wasm inputs, wasm.Isolate carves the source function plus its
// transitive callees out of the module into a minimal valid binary
// (`lpo -isolate DIR`) — shrunken provenance for reporting upstream.
//
// # The lpod Service and the Content-Addressed Store
//
// Every identity in the pipeline is already content-derived — windows and
// candidates by structural hash (ir.Hash), learned rules by the hash of
// their witness pair — so discovery results are immutable facts about
// content, and a campaign is just a set of such facts. internal/store makes
// that set persistent: a directory holding one append-only record log
// ("lpod.log", magic "LPODSTR1" — bump the trailing digit on breaking
// format changes) plus an in-memory hash index rebuilt on open. Each record
// frames a kind byte (finding, rule or counterexample vector), a key, a
// value and a CRC32; Put appends (a duplicate key is a content-address hit,
// not a write), Commit flushes and fsyncs the batch, and Open recovers from
// a crash by scanning to the first torn or corrupt record and truncating
// the tail — everything before it is intact by checksum. Readers take
// snapshots (a record-count boundary) that are immune to concurrent
// appends; since records are immutable, first-write-wins is the only
// conflict rule the store needs. Findings are keyed by window hash, rules
// by their content-derived ID, pool vectors by window hash plus a hash of
// the encoded vector, and the stored finding bytes (deterministic indented
// JSON, store.Finding) double as the service's wire format.
//
// cmd/lpod serves discovery from such a store as a long-running daemon.
// internal/service wires one warm engine — program cache, verification
// cache, counterexample pool and learned rules all persistent across
// requests — behind the engine's incremental submission API
// (engine.Submitter): POST /v1/windows accepts one window or a batch
// (JSON {"ir": ...} / {"windows": [...]}, or a raw .ll module), hashes
// each function, and only hashes the store has never seen reach the
// engine; everything else is answered "cached" (stored) or "pending"
// (inflight). Results are committed to the store as they drain — finding,
// learned rule entries, and the pool's newly deposited vectors — before
// the window stops reporting pending, so a finding is never servable
// until it is durable. GET /v1/findings/{hash} returns the stored bytes
// verbatim, GET /v1/rulebook assembles the store's accumulated rule
// entries into a standard rulebook, and GET /v1/stats reports engine
// (outcomes, verify executions, tier kills, batch coverage, store hits),
// store
// (records, hit/miss counters, recovered bytes) and pool counters.
// Restarting the daemon on the same store resumes exactly: resubmitted
// corpora are answered byte-identically from disk with no provider or
// verifier work, and the stored vectors warm the pool's tier-0 replay.
// The engine side is engine.Config.Lookup — consulted once per sequence
// after per-run dedup, a hit is returned as a Cached result and counted
// in Stats.StoreHits — and cmd/lpo -store threads the same persistence
// through one-shot batch runs, so batch campaigns, the daemon and future
// runs all share one accumulated store.
//
// # Scaling the Store: Group Commit, Shards, Compaction
//
// One log and one fsync per finding caps ingest at the disk's sync latency
// (~150µs here: at most a few thousand submissions/sec, serialized), so the
// hot ingest path scales along three axes — batching commits, sharding
// logs, and streaming results out instead of being polled.
//
// Group commit (store.StartGroupCommit): Flush is the durability barrier —
// it returns once every record Put before the call is durable, or with the
// error of the commit attempt that should have covered it. With a
// committer goroutine running, concurrent Flush callers coalesce: each
// registers a notification channel and rings a doorbell; the committer
// wakes, lets the batch grow while records are still arriving (it commits
// as soon as two consecutive looks a scheduler-yield apart see the same
// pending count — arrival-driven, since OS timer granularity is orders of
// magnitude coarser than a commit cycle — with GroupCommitOptions.MaxBatch
// capping the batch and MaxDelay the wait outright), serializes the whole
// dirty batch as one framed write, fsyncs once, and notifies every waiter
// that registered before the commit. Because Commit performs its disk I/O
// without the index lock, writers keep Put-ing WHILE the current batch
// fsyncs — the next batch adapts to however slow the disk is. A failed
// group commit preserves the PR-9 invariant exactly (roll back to the
// durable boundary, keep the batch pending, report the error to that
// round's waiters) and the committer retries the backlog on its own every
// GroupCommitOptions.RetryDelay, so a transient fsync failure drains
// without waiting for new traffic. StopGroupCommit makes one final commit
// attempt, and a Flush racing shutdown falls back to a plain direct Commit.
//
// Sharding (store.OpenSharded): a sharded store fans the one logical
// record set over N full Stores — dir/lpod-00.log … hex-numbered upward,
// each with its own log, index, committer and snapshot isolation — so
// concurrent submissions stop contending on a single file and a single
// fsync queue. Records route by window-hash prefix: the shard of a key is
// a hash of everything before the first '/', which for findings (bare
// window hash) and pool vectors ("<window>/<vechash>") is the same string
// — a window's finding and its counterexamples always colocate, keeping
// per-shard append order a durability order per window. An existing
// directory's shard count always wins over the requested one (resharding
// in place would route keys away from their records; a missing shard file
// is a refused open, not silent loss), a legacy single-log store is
// migrated in place idempotently (re-Put everything, commit, then rename
// lpod.log away), and store.Backend is the interface the service runs
// against, satisfied by both *Store and *Sharded. Sharded.Flush fans out
// in parallel, so a logical barrier costs one fsync latency, not N.
//
// Compaction (store.Compact, Sharded shard-at-a-time): an append-only log
// only grows, and the counterexample pool's clock eviction means stored
// vectors outlive their usefulness. Compact rewrites a log keeping only
// records a caller-supplied policy blesses — the service's policy
// (service.CompactKeep) keeps all findings and rules and drops exactly the
// pool vectors the clock has evicted, after a pool flush so fresh vectors
// are records first. The swap is crash-safe with no tombstones: write the
// kept records to <log>.compact through the same write shim (fault
// injection covers compaction too), fsync, rename over the log, fsync the
// directory; a crash before the rename leaves the original untouched and
// the next open deletes the leftover temp. Pending (accepted-but-unsynced)
// records fold in durable. cmd/lpod runs it at startup under -compact, and
// POST /v1/compact runs it on a live daemon — existing snapshots degrade
// to reading the compacted state, never garbage.
//
// Streaming (GET /v1/findings): multi-node campaign drivers consume
// findings without polling. Plain GET returns a JSON page from an integer
// cursor ({"cursor", "next_cursor", "findings": [...]}); with ?watch=1 the
// response is a server-sent-event stream — "event: finding\nid:
// <cursor>\ndata: {\"window\": ..., \"finding\": ...}\n\n" per finding,
// ": heartbeat" comments while idle — resumable from any cursor via
// ?cursor=N (ids are 1-based positions in the stream log, seeded from the
// store at startup). Only DURABLE findings stream: a finding whose
// persistence barrier failed is deferred and published by the next
// successful barrier, so a subscriber never sees a result the store could
// still lose. The submit path rides the same machinery — POST
// /v1/windows?wait=1 blocks until the submitted windows' results are
// durable (200), or answers 202 with an Lpod-Degraded header when the
// store is in its degraded-but-serving mode, with degraded accepts counted
// in /v1/stats. The persist pipeline between engine and store is
// Config.PersistWorkers micro-batching workers, each draining up to 64
// results into one SaveResult loop and ONE Flush barrier — which is what
// the scaled benchmarks measure: store_commit (one fsync per finding,
// serial: the old submit path), store_group_commit (8 clients, a barrier
// per record, one group-committed log), and ingest_throughput (4 shards +
// group commit + 32-record client batches: >10x submissions/sec over the
// baseline, the floor CI enforces via the snapshot's ingest_speedup).
//
// # Fault Tolerance and Degraded Modes
//
// Every seam the pipeline crosses — provider, store, HTTP — can fail, and
// the layer behind each seam has a defined degraded mode rather than a
// crash path. The invariant tying them together: faults change *when* a
// result is computed and served, never *what* is ultimately persisted. A
// campaign that suffered provider outages, fsync failures and handler
// panics converges, once the faults clear, to a store byte-identical with
// a fault-free run of the same seed (pinned by the seeded chaos test in
// internal/service, which injects faults at every seam at once).
//
// Provider: llm.NewRetrying wraps any llm.Client with bounded retries —
// exponential backoff with deterministic seeded jitter, a per-request
// deadline, and transient-vs-permanent classification (an error's
// `Transient() bool` method opts it in; context cancellation is always
// permanent). Retry counts flow into llm.Usage. Behind the retrier sits a
// consecutive-failure circuit breaker: once it opens, Complete fails fast
// with llm.ErrCircuitOpen (letting every Nth request through as a probe),
// and the engine switches that sequence to the degraded knowledge-base
// proposer — opt.Run with the engine's accumulated learned rules stands in
// for the provider, so rulebook-driven discovery continues through an
// outage. Degraded results are marked (Result.Degraded), tallied
// (Stats.DegradedSeqs), served from the service's volatile memory, and
// never persisted — the window stays recomputable so the store converges.
//
// Engine: each window runs panic-isolated. A panicking stage (or provider)
// quarantines that window alone — the worker recovers, emits a Panicked
// result carrying the panic as an error, records the window hash in the
// engine's quarantine list (engine.Quarantined, GET /v1/stats), bumps
// Stats.Panics, and the campaign continues. The verify cache propagates a
// panic to every waiter of the same (source, candidate) pair rather than
// handing them a zero verdict. Config.StageTimeout bounds each stage:
// propose inherits a context deadline; verify and learn, which are
// CPU-bound and not context-aware, run under a watchdog that abandons the
// stage (ErrStageTimeout) without killing the worker.
//
// Store: Put is memory-only; Commit serializes the dirty batch at the
// durable offset, fsyncs, and only then advances it. A failed commit rolls
// the file back to the durable boundary and keeps the batch pending —
// Stats.Pending and Stats.CommitFails surface the backlog, every later
// commit retries it, and nothing accepted is ever lost (records stay
// servable from the in-memory index meanwhile: degraded-but-serving).
// store.OpenWith injects a write-layer shim, which is how the fault and
// chaos tests drive torn writes and fsync failures deterministically.
//
// Service: request bodies above Config.MaxBodyBytes answer 413 instead of
// being silently truncated; a full engine queue answers 429 with
// Retry-After instead of blocking the handler (engine.Queue.TrySubmit /
// engine.ErrQueueFull); a recovery middleware turns any handler panic into
// a 500 JSON error; GET /v1/healthz reports ok, degraded (commit backlog)
// or stopped for probes; and cmd/lpod sets server read/header timeouts
// (write stays unbounded — the SSE watch stream is a deliberately
// long-lived response whose heartbeat detects dead peers), drains
// gracefully on the first SIGINT/SIGTERM and force-exits on the second. internal/fault is the shared chaos harness behind all of this: a
// seedable injector with per-site probabilities and budgets whose client,
// file and middleware wrappers replay identically under a fixed seed.
//
// See README.md for the layout, DESIGN.md for the system inventory and the
// substitutions made for offline reproduction, and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure. The root-level
// benchmarks in bench_test.go regenerate each experiment and measure the
// engine's worker scaling (BenchmarkEngineWorkers).
package repro
