// Package repro is a from-scratch Go reproduction of "LPO: Discovering
// Missed Peephole Optimizations with Large Language Models" (ASPLOS '26),
// including every substrate the paper's pipeline depends on: an LLVM IR
// subset with parser and printer, a concrete interpreter with Alive2-style
// poison/UB semantics, an InstCombine-like optimizer, an llvm-mca-style
// static performance model, a bounded translation validator, the Souper and
// Minotaur superoptimizer baselines, a synthetic corpus, and a calibrated
// simulated LLM provider.
//
// See README.md for the layout, DESIGN.md for the system inventory and the
// substitutions made for offline reproduction, and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure. The root-level
// benchmarks in bench_test.go regenerate each experiment.
package repro
