// Discovery runs a miniature RQ2 on the concurrent engine: the synthetic
// corpus is extracted as a stream, the worker pool hunts for missed
// optimizations over several rounds per window, and verified finds are
// printed in deterministic (source) order as they are reassembled.
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/alive"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/extract"
	"repro/internal/llm"
)

func main() {
	ex := extract.New(extract.Options{})
	src := engine.Corpus(corpus.Options{Seed: 11, ModulesPerProject: 2, FuncsPerModule: 4}, ex)

	sim := llm.NewSim("Llama3.3", 11)
	eng := engine.New(sim, engine.Config{
		Workers: 4,
		Rounds:  8,
		Verify:  alive.Options{Samples: 512, Seed: 11},
	})

	results, stats := eng.Run(context.Background(), src)
	found := 0
	for res := range results {
		if res.Outcome == engine.Found {
			found++
			fmt.Printf("missed optimization in %s (@%s): %d->%d instrs (round %d)\n",
				res.Seq.Module, res.Seq.Func, res.InstrsBefore, res.InstrsAfter, res.Round)
		}
	}

	st := ex.Stats()
	fmt.Printf("\nextraction: %d raw, %d duplicates removed, %d already optimizable, %d kept\n",
		st.Sequences, st.Duplicates, st.Optimizable, st.Kept)
	stats.Print(os.Stdout)
	fmt.Printf("\n%d verified missed optimizations discovered\n", found)
}
