// Discovery runs a miniature RQ2: generate the synthetic corpus, extract
// unique windows, and let the simulated local model hunt for missed
// optimizations, printing each verified find.
package main

import (
	"fmt"

	"repro/internal/alive"
	"repro/internal/corpus"
	"repro/internal/extract"
	"repro/internal/llm"
	"repro/internal/lpo"
)

func main() {
	projects := corpus.Generate(corpus.Options{Seed: 11, ModulesPerProject: 2, FuncsPerModule: 4})
	cs := corpus.Summarize(projects)
	fmt.Printf("corpus: %d projects, %d modules, %d functions\n", cs.Projects, cs.Modules, cs.Funcs)

	ex := extract.New(extract.Options{})
	var seqs []*extract.Sequence
	for _, p := range projects {
		for _, m := range p.Modules {
			seqs = append(seqs, ex.Module(m)...)
		}
	}
	st := ex.Stats()
	fmt.Printf("extraction: %d raw, %d duplicates removed, %d already optimizable, %d kept\n\n",
		st.Sequences, st.Duplicates, st.Optimizable, st.Kept)

	sim := llm.NewSim("Llama3.3", 11)
	pipe := lpo.New(sim, lpo.Config{Verify: alive.Options{Samples: 512, Seed: 11}})
	found := 0
	for _, s := range seqs {
		for round := 0; round < 8; round++ {
			res := pipe.OptimizeSeq(s.Fn, round)
			if res.Outcome == lpo.Found {
				found++
				fmt.Printf("missed optimization in %s (@%s): %d->%d instrs\n",
					s.Module, s.Func, res.InstrsBefore, res.InstrsAfter)
				break
			}
		}
	}
	fmt.Printf("\n%d verified missed optimizations discovered\n", found)
}
