// Clamp walks the paper's Figure 1 + Figure 3 end to end: extract the
// vectorized clamp window from the module, force the syntax-error feedback
// round (Figure 3b/3c), and show the loop recovering to the verified rewrite
// (Figure 3d).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/alive"
	"repro/internal/engine"
	"repro/internal/extract"
	"repro/internal/ir"
	"repro/internal/llm"
	"repro/internal/parser"
)

// The straight-line body of the paper's Figure 1d vector.body block.
const module = `define <4 x i8> @clamp_body(i64 %i, ptr %inp) {
  %0 = getelementptr inbounds nuw i32, ptr %inp, i64 %i
  %wide.load = load <4 x i32>, ptr %0, align 4
  %3 = icmp slt <4 x i32> %wide.load, zeroinitializer
  %5 = tail call <4 x i32> @llvm.umin.v4i32(<4 x i32> %wide.load, <4 x i32> splat (i32 255))
  %7 = trunc nuw <4 x i32> %5 to <4 x i8>
  %9 = select <4 x i1> %3, <4 x i8> zeroinitializer, <4 x i8> %7
  ret <4 x i8> %9
}`

func main() {
	m, err := parser.Parse(module)
	if err != nil {
		log.Fatal(err)
	}
	// Step 1: extraction (Algorithm 2).
	ex := extract.New(extract.Options{})
	seqs := ex.Module(m)
	var window *ir.Func
	for _, s := range seqs {
		if s.Fn.NumInstrs(true) >= 5 {
			window = s.Fn
		}
	}
	if window == nil {
		log.Fatal("clamp window not extracted")
	}
	fmt.Println("extracted window (paper Figure 3a):")
	fmt.Println(window)

	// Steps 2-7: drive the loop until a round exercises the syntax-error
	// channel, then print the full exchange.
	sim := llm.NewSim("Gemini2.0T", 7)
	sim.Calibrate(ir.Hash(window), llm.Calibration{Minus: 0, Plus: 5})
	eng := engine.New(sim, engine.Config{Verify: alive.Options{Samples: 1024, Seed: 7}})
	for round := 0; round < 64; round++ {
		res := eng.OptimizeSeq(context.Background(), window, round)
		if len(res.Attempts) == 2 && !res.Attempts[0].Parsed && res.Outcome == engine.Found {
			fmt.Println("attempt 1: syntactically invalid candidate (paper Figure 3b):")
			fmt.Println(res.Attempts[0].Candidate)
			fmt.Println("\nopt feedback (paper Figure 3c):")
			fmt.Println(res.Attempts[0].Feedback)
			fmt.Println("\nattempt 2: corrected and verified candidate (paper Figure 3d):")
			fmt.Println(res.Cand)
			fmt.Printf("instructions %d -> %d, cycles %d -> %d\n",
				res.InstrsBefore, res.InstrsAfter, res.CyclesBefore, res.CyclesAfter)
			return
		}
	}
	log.Fatal("the syntax-error round never fired")
}
