// Casestudies replays the paper's Figure 4: the three confirmed missed
// optimizations that neither Souper nor Minotaur can detect, with each
// tool's failure mode demonstrated live.
package main

import (
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := experiments.PrintFigure4(os.Stdout, 1); err != nil {
		log.Fatal(err)
	}
}
