// Quickstart: run one instruction sequence through the whole LPO loop — the
// paper's Figure 1b clamp pattern — and print every stage.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/alive"
	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/llm"
	"repro/internal/parser"
)

const clamp = `define i8 @src(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`

func main() {
	src, err := parser.ParseFunc(clamp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("suboptimal sequence (paper Figure 1b):")
	fmt.Println(src)

	// A simulated reasoning model that always finds the rewrite.
	sim := llm.NewSim("Gemini2.0T", 42)
	sim.Calibrate(ir.Hash(src), llm.Calibration{Minus: 5, Plus: 5})

	eng := engine.New(sim, engine.Config{Verify: alive.Options{Samples: 2048, Seed: 42}})
	res := eng.OptimizeSeq(context.Background(), src, 0)
	fmt.Printf("pipeline outcome: %s\n", res.Outcome)
	if res.Outcome != engine.Found {
		log.Fatalf("expected a verified optimization, got %v", res.Outcome)
	}
	fmt.Println("\nverified optimization (paper Figure 1c):")
	fmt.Println(res.Cand)
	fmt.Printf("instructions: %d -> %d, estimated cycles: %d -> %d\n",
		res.InstrsBefore, res.InstrsAfter, res.CyclesBefore, res.CyclesAfter)
	fmt.Printf("tokens used: %d in / %d out, virtual latency %.1fs\n",
		res.Usage.InputTokens, res.Usage.OutputTokens, res.Usage.VirtualSeconds)
}
