package opt

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/alive"
	"repro/internal/ir"
)

// randFunc builds a random straight-line integer function with poison flags
// and min/max intrinsics — the space the optimizer operates on.
func randFunc(rng *rand.Rand) *ir.Func {
	widths := []ir.IntType{ir.I8, ir.I16, ir.I32}
	ty := widths[rng.Intn(len(widths))]
	nParams := 1 + rng.Intn(2)
	var params []*ir.Param
	var values []ir.Value
	for i := 0; i < nParams; i++ {
		p := &ir.Param{Nm: fmt.Sprintf("a%d", i), Ty: ty}
		params = append(params, p)
		values = append(values, p)
	}
	ops := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr,
		ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr, ir.OpUDiv, ir.OpURem}
	var instrs []*ir.Instr
	n := 2 + rng.Intn(5)
	for i := 0; i < n; i++ {
		var in *ir.Instr
		switch rng.Intn(8) {
		case 0: // intrinsic min/max
			bases := []string{"umin", "umax", "smin", "smax"}
			base := bases[rng.Intn(len(bases))]
			a := values[rng.Intn(len(values))]
			b := ir.Value(ir.CInt(ty, int64(rng.Intn(256))))
			if rng.Intn(2) == 0 {
				b = values[rng.Intn(len(values))]
			}
			in = ir.CallI(fmt.Sprintf("v%d", i), ir.IntrinsicName(base, ty), ty, a, b)
		case 1: // icmp + select
			a := values[rng.Intn(len(values))]
			preds := []ir.IPred{ir.EQ, ir.NE, ir.ULT, ir.SLT, ir.SGT, ir.UGT}
			cmp := ir.ICmpI(fmt.Sprintf("c%d", i), preds[rng.Intn(len(preds))],
				a, ir.CInt(ty, int64(rng.Intn(64))))
			instrs = append(instrs, cmp)
			in = ir.Sel(fmt.Sprintf("v%d", i), cmp,
				values[rng.Intn(len(values))], values[rng.Intn(len(values))])
		default:
			op := ops[rng.Intn(len(ops))]
			a := values[rng.Intn(len(values))]
			var b ir.Value
			switch op {
			case ir.OpShl, ir.OpLShr, ir.OpAShr:
				b = ir.CInt(ty, int64(rng.Intn(ty.W+2))) // may exceed width: poison
			case ir.OpUDiv, ir.OpURem:
				b = ir.CInt(ty, int64(rng.Intn(16))) // may be zero: must not fold
			default:
				if rng.Intn(2) == 0 {
					b = values[rng.Intn(len(values))]
				} else {
					b = ir.CInt(ty, int64(rng.Intn(512)-128))
				}
			}
			var flags ir.Flags
			if op == ir.OpAdd || op == ir.OpSub || op == ir.OpMul || op == ir.OpShl {
				if rng.Intn(3) == 0 {
					flags |= ir.NUW
				}
				if rng.Intn(3) == 0 {
					flags |= ir.NSW
				}
			}
			in = ir.Bin(op, fmt.Sprintf("v%d", i), flags, a, b)
		}
		instrs = append(instrs, in)
		values = append(values, in)
	}
	last := instrs[len(instrs)-1]
	instrs = append(instrs, ir.RetI(last))
	return &ir.Func{Name: "fuzz", Ret: ty, Params: params,
		Blocks: []*ir.Block{{Name: "entry", Instrs: instrs}}}
}

// TestFuzzOptimizerRefinement is the repository's strongest correctness
// coupling: on hundreds of random functions, the optimizer's output (with
// the baseline rules, with each patch, and with the full knowledge base)
// must verify as a refinement of its input, and must be idempotent.
func TestFuzzOptimizerRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(20260611))
	configs := []struct {
		name  string
		rules []string
	}{
		{"baseline", nil},
		{"all-patches", PatchIDs()},
		{"knowledge-base", AllRuleNames()},
	}
	iters := 120
	if testing.Short() {
		iters = 25
	}
	for i := 0; i < iters; i++ {
		f := randFunc(rng)
		if err := ir.VerifyFunc(f); err != nil {
			t.Fatalf("generator produced invalid IR: %v\n%s", err, f)
		}
		for _, cfg := range configs {
			g := Run(f, Options{Patches: cfg.rules})
			if err := ir.VerifyFunc(g); err != nil {
				t.Fatalf("[%s] optimizer produced invalid IR: %v\ninput:\n%s\noutput:\n%s",
					cfg.name, err, f, g)
			}
			r := alive.Verify(f, g, alive.Options{Samples: 384, Seed: uint64(i)})
			if r.Verdict != alive.Correct {
				t.Fatalf("[%s] optimizer broke refinement on fuzz case %d:\ninput:\n%s\noutput:\n%s\n%s",
					cfg.name, i, f, g, r.CE.Format())
			}
			g2 := Run(g, Options{Patches: cfg.rules})
			if ir.Hash(g) != ir.Hash(g2) {
				t.Fatalf("[%s] optimizer not idempotent on fuzz case %d:\nfirst:\n%s\nsecond:\n%s",
					cfg.name, i, g, g2)
			}
		}
	}
}

// TestFuzzExtremeConstants drives the optimizer over boundary constants
// (INT_MIN, -1, width-1 shifts) where wrap/poison bugs hide.
func TestFuzzExtremeConstants(t *testing.T) {
	consts := []int64{0, 1, -1, 127, -128, 128, 255, -127}
	ops := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpLShr, ir.OpAShr, ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem}
	for _, op := range ops {
		for _, c1 := range consts {
			for _, c2 := range consts {
				x := &ir.Param{Nm: "x", Ty: ir.I8}
				a := ir.Bin(op, "a", ir.NoFlags, x, ir.CInt(ir.I8, c1))
				b := ir.Bin(op, "b", ir.NoFlags, a, ir.CInt(ir.I8, c2))
				f := ir.NewFunc("f", ir.I8, []*ir.Param{x}, []*ir.Instr{a, b, ir.RetI(b)})
				g := RunO3(f)
				r := alive.Verify(f, g, alive.Options{Seed: 1}) // 8 bits: exhaustive
				if r.Verdict != alive.Correct {
					t.Fatalf("%s with %d then %d broke refinement:\n%s\n->\n%s\n%s",
						op.Name(), c1, c2, f, g, r.CE.Format())
				}
			}
		}
	}
}
