// Package opt models LLVM's `opt -O3` on peephole-sized IR: constant
// folding, operand canonicalization and dead code elimination around a
// registry of first-class rewrite rules, run to a fixpoint.
//
// Every rewrite the optimizer can perform is a *Rule (rules.go) with an ID,
// a provenance, the root opcodes it fires on, a pattern doc string and a
// synthetic example. Three rule packs register themselves:
//
//   - baseline: the InstSimplify identities (simplify.go) and the
//     InstCombine-style rewrites (rewrite.go) that reproduce the paper's
//     *baseline* optimizer — always enabled;
//   - patch: the fixes that later landed in LLVM (patches.go, paper
//     Table 5 / Figure 5), switched on individually via Options.Patches to
//     model the compiler after the corresponding fix;
//   - kb: the simulated LLM's knowledge base (kb.go) — rewrites no compiler
//     version performs, which is what makes them discoverable "missed
//     optimizations".
//
// Run resolves Options into a RuleSet once per call: an opcode-indexed
// dispatch table in deterministic rule order, so the per-instruction hot
// path walks only the few rules rooted at that instruction's opcode (the
// seed implementation re-sorted the enabled rule names for every
// instruction of every fixpoint iteration). Callers that optimize many
// functions with one configuration prebuild the table with NewRuleSet and
// pass it via Options.Rules. RunWithStats additionally reports per-rule hit
// counts, which back rule-level attribution end to end: engine.Stats
// aggregates them and the experiment harness prints which rule closed each
// benchmark.
package opt

import (
	"repro/internal/ir"
)

// Options configures a pipeline run.
type Options struct {
	// MaxIters bounds the number of fixpoint iterations (default 25).
	MaxIters int
	// Patches enables the named optional rules: issue IDs from the paper's
	// Table 5 (modelling LLVM after the corresponding fix landed) and "kb:"
	// knowledge-base rules. Unknown names are ignored.
	Patches []string
	// DisableIntrinsicCanon turns off the select->min/max canonicalization
	// family; used by ablation benchmarks.
	DisableIntrinsicCanon bool
	// Rules, when non-nil, is a prebuilt rule selection that overrides
	// Patches and DisableIntrinsicCanon. Build one with NewRuleSet to reuse
	// the opcode-indexed dispatch table across many Run calls.
	Rules *RuleSet
}

// RunStats reports per-run observability: how many fixpoint iterations ran
// and how often each rule fired, keyed by rule ID.
type RunStats struct {
	Iters    int
	RuleHits map[string]int
}

// RunO3 optimizes a clone of f with the default baseline pipeline.
func RunO3(f *ir.Func) *ir.Func { return Run(f, Options{}) }

// Run optimizes a clone of f according to opts and returns the result.
// The input function is never mutated.
func Run(f *ir.Func, opts Options) *ir.Func {
	g, _ := RunWithStats(f, opts)
	return g
}

// RunWithStats is Run plus per-rule attribution for the run.
func RunWithStats(f *ir.Func, opts Options) (*ir.Func, RunStats) {
	maxIters := opts.MaxIters
	if maxIters == 0 {
		maxIters = 25
	}
	rs := opts.Rules
	if rs == nil {
		rs = NewRuleSet(opts)
	}
	g := ir.CloneFunc(f)
	tr := &transform{fn: g, rs: rs, hits: make(map[string]int)}
	tr.seedNames()
	stats := RunStats{RuleHits: tr.hits}
	for iter := 0; iter < maxIters; iter++ {
		stats.Iters++
		changed := tr.iterate()
		changed = tr.dce() || changed
		if !changed {
			break
		}
	}
	return g, stats
}

// transform holds the per-run rewriting state.
type transform struct {
	fn   *ir.Func
	rs   *RuleSet
	hits map[string]int

	repl  map[ir.Value]ir.Value
	used  map[string]bool
	fresh int
}

func (t *transform) seedNames() {
	t.used = make(map[string]bool)
	for _, p := range t.fn.Params {
		t.used[p.Nm] = true
	}
	for _, in := range t.fn.Instrs() {
		if in.HasResult() {
			t.used[in.Nm] = true
		}
	}
}

func (t *transform) freshName() string {
	for {
		name := "t" + itoa(t.fresh)
		t.fresh++
		if !t.used[name] {
			t.used[name] = true
			return name
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// resolve follows the replacement map transitively.
func (t *transform) resolve(v ir.Value) ir.Value {
	for {
		n, ok := t.repl[v]
		if !ok {
			return v
		}
		v = n
	}
}

// iterate runs one rewriting sweep over the function; it reports whether
// anything changed.
func (t *transform) iterate() bool {
	changed := false
	t.repl = make(map[ir.Value]ir.Value)
	for _, b := range t.fn.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			// Rewrite operands through the replacement map first.
			for ai, a := range in.Args {
				if r := t.resolve(a); r != a {
					in.Args[ai] = r
					changed = true
				}
			}
			// 1. Constant folding.
			if c, ok := t.constFold(in); ok {
				t.repl[in] = c
				changed = true
				continue
			}
			// 2. In-place canonicalization (operand order, op strength).
			if t.canonicalize(in) {
				changed = true
			}
			// 3. Registry dispatch, indexed by the (possibly canonicalized)
			//    opcode: the simplify identities come first in each dispatch
			//    list, then the rewrites that emit replacement instructions.
			//    A rule may also delete a void instruction outright (nil
			//    value).
			if news, v, ok := t.applyRules(in, out); ok {
				out = append(out, news...)
				if v != nil {
					t.repl[in] = v
				}
				changed = true
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	// Phi operands and later-block uses may still reference replaced values.
	if len(t.repl) > 0 {
		for _, b := range t.fn.Blocks {
			for _, in := range b.Instrs {
				for ai, a := range in.Args {
					if r := t.resolve(a); r != a {
						in.Args[ai] = r
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// dce removes instructions whose results are unused and that have no side
// effects; it reports whether anything was removed.
func (t *transform) dce() bool {
	live := make(map[*ir.Instr]bool)
	var mark func(v ir.Value)
	mark = func(v ir.Value) {
		in, ok := v.(*ir.Instr)
		if !ok || live[in] {
			return
		}
		live[in] = true
		for _, a := range in.Args {
			mark(a)
		}
	}
	for _, b := range t.fn.Blocks {
		for _, in := range b.Instrs {
			if in.HasSideEffects() || in.IsTerminator() || in.Op == ir.OpPhi {
				mark(in)
			}
		}
	}
	changed := false
	for _, b := range t.fn.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			if live[in] {
				out = append(out, in)
			} else {
				changed = true
			}
		}
		b.Instrs = out
	}
	return changed
}
