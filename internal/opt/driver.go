// Package opt models LLVM's `opt -O3` on peephole-sized IR: an
// InstCombine-style pattern rewriter plus constant folding, operand
// canonicalization and dead code elimination, run to a fixpoint.
//
// The rule base intentionally reproduces only the *baseline* optimizer: the
// paper's benchmark suites are missed optimizations, i.e. rewrites the
// baseline must NOT perform. Fixes that later landed in LLVM are modelled as
// patch rules that can be switched on individually (Options.Patches), which
// is how the Table 5 / Figure 5 experiments compare compiler versions.
package opt

import (
	"sort"

	"repro/internal/ir"
)

// Options configures a pipeline run.
type Options struct {
	// MaxIters bounds the number of fixpoint iterations (default 25).
	MaxIters int
	// Patches enables the named patch rules (issue IDs from the paper's
	// Table 5), modelling LLVM after the corresponding fix landed.
	Patches []string
	// DisableIntrinsicCanon turns off the select->min/max canonicalization
	// family; used by ablation benchmarks.
	DisableIntrinsicCanon bool
}

// RunO3 optimizes a clone of f with the default baseline pipeline.
func RunO3(f *ir.Func) *ir.Func { return Run(f, Options{}) }

// Run optimizes a clone of f according to opts and returns the result.
// The input function is never mutated.
func Run(f *ir.Func, opts Options) *ir.Func {
	maxIters := opts.MaxIters
	if maxIters == 0 {
		maxIters = 25
	}
	g := ir.CloneFunc(f)
	patches := make(map[string]bool, len(opts.Patches))
	for _, p := range opts.Patches {
		patches[p] = true
	}
	tr := &transform{fn: g, patches: patches, noIntrinsicCanon: opts.DisableIntrinsicCanon}
	tr.seedNames()
	for iter := 0; iter < maxIters; iter++ {
		changed := tr.iterate()
		changed = tr.dce() || changed
		if !changed {
			break
		}
	}
	return g
}

// transform holds the per-run rewriting state.
type transform struct {
	fn               *ir.Func
	patches          map[string]bool
	noIntrinsicCanon bool

	repl  map[ir.Value]ir.Value
	used  map[string]bool
	fresh int
}

func (t *transform) seedNames() {
	t.used = make(map[string]bool)
	for _, p := range t.fn.Params {
		t.used[p.Nm] = true
	}
	for _, in := range t.fn.Instrs() {
		if in.HasResult() {
			t.used[in.Nm] = true
		}
	}
}

func (t *transform) freshName() string {
	for {
		name := "t" + itoa(t.fresh)
		t.fresh++
		if !t.used[name] {
			t.used[name] = true
			return name
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// resolve follows the replacement map transitively.
func (t *transform) resolve(v ir.Value) ir.Value {
	for {
		n, ok := t.repl[v]
		if !ok {
			return v
		}
		v = n
	}
}

// iterate runs one rewriting sweep over the function; it reports whether
// anything changed.
func (t *transform) iterate() bool {
	changed := false
	t.repl = make(map[ir.Value]ir.Value)
	for _, b := range t.fn.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			// Rewrite operands through the replacement map first.
			for ai, a := range in.Args {
				if r := t.resolve(a); r != a {
					in.Args[ai] = r
					changed = true
				}
			}
			// 1. Constant folding.
			if c, ok := t.constFold(in); ok {
				t.repl[in] = c
				changed = true
				continue
			}
			// 2. In-place canonicalization (operand order, op strength).
			if t.canonicalize(in) {
				changed = true
			}
			// 3. Value simplification: replace with an existing value or
			//    constant.
			if v, ok := t.simplify(in); ok {
				t.repl[in] = v
				changed = true
				continue
			}
			// 4. Rewrites that emit replacement instructions. A rule may
			//    also delete a void instruction outright (nil value).
			if news, v, ok := t.rewrite(in, out); ok {
				out = append(out, news...)
				if v != nil {
					t.repl[in] = v
				}
				changed = true
				continue
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
	// Phi operands and later-block uses may still reference replaced values.
	if len(t.repl) > 0 {
		for _, b := range t.fn.Blocks {
			for _, in := range b.Instrs {
				for ai, a := range in.Args {
					if r := t.resolve(a); r != a {
						in.Args[ai] = r
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// dce removes instructions whose results are unused and that have no side
// effects; it reports whether anything was removed.
func (t *transform) dce() bool {
	live := make(map[*ir.Instr]bool)
	var mark func(v ir.Value)
	mark = func(v ir.Value) {
		in, ok := v.(*ir.Instr)
		if !ok || live[in] {
			return
		}
		live[in] = true
		for _, a := range in.Args {
			mark(a)
		}
	}
	for _, b := range t.fn.Blocks {
		for _, in := range b.Instrs {
			if in.HasSideEffects() || in.IsTerminator() || in.Op == ir.OpPhi {
				mark(in)
			}
		}
	}
	changed := false
	for _, b := range t.fn.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			if live[in] {
				out = append(out, in)
			} else {
				changed = true
			}
		}
		b.Instrs = out
	}
	return changed
}

// EnabledPatches lists the patch rule names compiled into the optimizer, in
// sorted order. Used by documentation and the experiment harness.
func EnabledPatches() []string {
	names := make([]string, 0, len(patchRules))
	for n := range patchRules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
