package opt

import (
	"repro/internal/ir"
)

// simplify tries to replace an instruction with an existing value or a
// constant (InstSimplify-style identities). Every rule here is a refinement:
// the replacement's behaviours are a subset of the original's on all inputs.
func (t *transform) simplify(in *ir.Instr) (ir.Value, bool) {
	switch in.Op {
	case ir.OpAdd:
		if isZeroConst(in.Args[1]) {
			return in.Args[0], true
		}
	case ir.OpSub:
		if isZeroConst(in.Args[1]) {
			return in.Args[0], true
		}
		if sameValue(in.Args[0], in.Args[1]) {
			return ir.SplatInt(in.Ty, 0), true
		}
	case ir.OpMul:
		if isZeroConst(in.Args[1]) {
			return ir.SplatInt(in.Ty, 0), true
		}
		if c, ok := constIntOf(in.Args[1]); ok && c == 1 {
			return in.Args[0], true
		}
	case ir.OpUDiv, ir.OpSDiv:
		if c, ok := constIntOf(in.Args[1]); ok && c == 1 {
			return in.Args[0], true
		}
		if isZeroConst(in.Args[0]) {
			// 0/X is 0 (if X is 0 the original is UB, so 0 refines it).
			return ir.SplatInt(in.Ty, 0), true
		}
	case ir.OpURem:
		if c, ok := constIntOf(in.Args[1]); ok && c == 1 {
			return ir.SplatInt(in.Ty, 0), true
		}
		if isZeroConst(in.Args[0]) {
			return ir.SplatInt(in.Ty, 0), true
		}
	case ir.OpSRem:
		if c, ok := constIntOf(in.Args[1]); ok {
			w := scalarWidth(in)
			if c == 1 || ir.SignExt(c, w) == -1 {
				return ir.SplatInt(in.Ty, 0), true
			}
		}
		if isZeroConst(in.Args[0]) {
			return ir.SplatInt(in.Ty, 0), true
		}
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if isZeroConst(in.Args[1]) {
			return in.Args[0], true
		}
		if isZeroConst(in.Args[0]) {
			return ir.SplatInt(in.Ty, 0), true
		}
		if c, ok := constIntOf(in.Args[1]); ok && c >= uint64(scalarWidth(in)) {
			return &ir.PoisonVal{Ty: in.Ty}, true
		}
	case ir.OpAnd:
		if isZeroConst(in.Args[1]) {
			return ir.SplatInt(in.Ty, 0), true
		}
		if isAllOnesConst(in.Args[1]) {
			return in.Args[0], true
		}
		if sameValue(in.Args[0], in.Args[1]) {
			return in.Args[0], true
		}
	case ir.OpOr:
		if isZeroConst(in.Args[1]) {
			return in.Args[0], true
		}
		if isAllOnesConst(in.Args[1]) {
			return ir.SplatInt(in.Ty, -1), true
		}
		if sameValue(in.Args[0], in.Args[1]) {
			return in.Args[0], true
		}
	case ir.OpXor:
		if isZeroConst(in.Args[1]) {
			return in.Args[0], true
		}
		if sameValue(in.Args[0], in.Args[1]) {
			return ir.SplatInt(in.Ty, 0), true
		}
		// xor (xor X, C), C -> X (same constant cancels; the reassociation
		// in canonicalize handles differing constants).
		if inner, ok := asInstr(in.Args[0], ir.OpXor); ok && sameValue(inner.Args[1], in.Args[1]) {
			return inner.Args[0], true
		}
	case ir.OpICmp:
		if v, ok := t.simplifyICmp(in); ok {
			return v, true
		}
	case ir.OpSelect:
		if c, ok := constIntOf(in.Args[0]); ok && !ir.IsVector(in.Args[0].Type()) {
			if c&1 == 1 {
				return in.Args[1], true
			}
			return in.Args[2], true
		}
		if sameValue(in.Args[1], in.Args[2]) {
			return in.Args[1], true
		}
		// select C, true, false -> C (i1 only).
		if ir.Equal(in.Ty, ir.I1) {
			tc, okT := constIntOf(in.Args[1])
			fc, okF := constIntOf(in.Args[2])
			if okT && okF && tc&1 == 1 && fc&1 == 0 {
				return in.Args[0], true
			}
		}
	case ir.OpTrunc:
		// trunc (zext/sext X) back to the original type -> X.
		if inner, ok := in.Args[0].(*ir.Instr); ok && (inner.Op == ir.OpZExt || inner.Op == ir.OpSExt) {
			if ir.Equal(inner.Args[0].Type(), in.Ty) {
				return inner.Args[0], true
			}
		}
	case ir.OpFreeze:
		if ir.IsConst(in.Args[0]) {
			switch in.Args[0].(type) {
			case *ir.PoisonVal, *ir.Undef:
				return ir.ZeroValue(in.Ty), true
			default:
				return in.Args[0], true
			}
		}
		// freeze (freeze X) -> freeze X.
		if inner, ok := asInstr(in.Args[0], ir.OpFreeze); ok {
			return inner, true
		}
	case ir.OpCall:
		if v, ok := t.simplifyIntrinsic(in); ok {
			return v, true
		}
	}
	return nil, false
}

func (t *transform) simplifyICmp(in *ir.Instr) (ir.Value, bool) {
	x, y := in.Args[0], in.Args[1]
	boolConst := func(b bool) ir.Value {
		if ir.IsVector(in.Ty) {
			v := int64(0)
			if b {
				v = 1
			}
			return ir.SplatInt(in.Ty, v)
		}
		return ir.CBool(b)
	}
	if sameValue(x, y) {
		switch in.IPredV {
		case ir.EQ, ir.ULE, ir.UGE, ir.SLE, ir.SGE:
			return boolConst(true), true
		default:
			return boolConst(false), true
		}
	}
	c, ok := constIntOf(y)
	if !ok || !ir.IsInt(x.Type()) {
		return nil, false
	}
	w := scalarWidth(x)
	mask := ir.MaskW(w)
	switch in.IPredV {
	case ir.ULT:
		if c == 0 {
			return boolConst(false), true
		}
	case ir.UGE:
		if c == 0 {
			return boolConst(true), true
		}
	case ir.UGT:
		if c == mask {
			return boolConst(false), true
		}
	case ir.ULE:
		if c == mask {
			return boolConst(true), true
		}
	case ir.SLT:
		if c == signedMinPattern(w) {
			return boolConst(false), true
		}
	case ir.SGE:
		if c == signedMinPattern(w) {
			return boolConst(true), true
		}
	case ir.SGT:
		if c == signedMaxPattern(w) {
			return boolConst(false), true
		}
	case ir.SLE:
		if c == signedMaxPattern(w) {
			return boolConst(true), true
		}
	}
	return nil, false
}

func (t *transform) simplifyIntrinsic(in *ir.Instr) (ir.Value, bool) {
	base := ir.IntrinsicBase(in.Callee)
	if len(in.Args) != 2 {
		return nil, false
	}
	x, y := in.Args[0], in.Args[1]
	switch base {
	case "umin", "umax", "smin", "smax":
		if sameValue(x, y) {
			return x, true
		}
	}
	c, ok := constIntOf(y)
	if !ok {
		return nil, false
	}
	w := scalarWidth(in)
	mask := ir.MaskW(w)
	switch base {
	case "umin":
		if c == 0 {
			return ir.SplatInt(in.Ty, 0), true
		}
		if c == mask {
			return x, true
		}
	case "umax":
		if c == 0 {
			return x, true
		}
		if c == mask {
			return ir.SplatInt(in.Ty, -1), true
		}
	case "smin":
		if c == signedMinPattern(w) {
			return ir.SplatInt(in.Ty, ir.SignExt(c, w)), true
		}
		if c == signedMaxPattern(w) {
			return x, true
		}
	case "smax":
		if c == signedMinPattern(w) {
			return x, true
		}
		if c == signedMaxPattern(w) {
			return ir.SplatInt(in.Ty, ir.SignExt(c, w)), true
		}
	}
	return nil, false
}
