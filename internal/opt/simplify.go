package opt

import (
	"repro/internal/ir"
)

// This file holds the InstSimplify-style identities: rules that replace an
// instruction with an existing value or a constant, never emitting new
// instructions. Every rule here is a refinement — the replacement's
// behaviours are a subset of the original's on all inputs. Each opcode family
// registers one rule with baseline provenance, so the identities are
// enumerable and attributable like every other rewrite; they are registered
// before the emitting rewrites, preserving the pipeline order
// fold -> canonicalize -> simplify -> rewrite within each dispatch list.

// simp adapts a value-producing simplification to the ruleFn contract.
func simp(fn func(t *transform, in *ir.Instr) (ir.Value, bool)) ruleFn {
	return func(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
		v, ok := fn(t, in)
		return nil, v, ok
	}
}

func baselineSimplifyRules() []*Rule {
	mk := func(id, doc, example string, fn func(*transform, *ir.Instr) (ir.Value, bool), roots ...ir.Opcode) *Rule {
		return &Rule{
			ID: id, Name: id, Provenance: ProvBaseline,
			Roots: roots, Doc: doc, Example: example, apply: simp(fn),
		}
	}
	return []*Rule{
		mk("baseline:simplify-add", "add X, 0 -> X",
			`define i32 @f(i32 %x) {
  %r = add i32 %x, 0
  ret i32 %r
}`, simplifyAdd, ir.OpAdd),
		mk("baseline:simplify-sub", "sub X, X -> 0",
			`define i32 @f(i32 %x) {
  %r = sub i32 %x, %x
  ret i32 %r
}`, simplifySub, ir.OpSub),
		mk("baseline:simplify-mul", "mul X, 0 -> 0; mul X, 1 -> X",
			`define i32 @f(i32 %x) {
  %r = mul i32 %x, 0
  ret i32 %r
}`, simplifyMul, ir.OpMul),
		mk("baseline:simplify-div", "udiv/sdiv X, 1 -> X; 0/X -> 0",
			`define i32 @f(i32 %x) {
  %r = udiv i32 %x, 1
  ret i32 %r
}`, simplifyDiv, ir.OpUDiv, ir.OpSDiv),
		mk("baseline:simplify-urem", "urem X, 1 -> 0; urem 0, X -> 0",
			`define i32 @f(i32 %x) {
  %r = urem i32 %x, 1
  ret i32 %r
}`, simplifyURem, ir.OpURem),
		mk("baseline:simplify-srem", "srem X, 1/-1 -> 0; srem 0, X -> 0",
			`define i8 @f(i8 %x) {
  %r = srem i8 %x, -1
  ret i8 %r
}`, simplifySRem, ir.OpSRem),
		mk("baseline:simplify-shift", "shift X, 0 -> X; shift 0, C -> 0; oversized shift -> poison",
			`define i32 @f(i32 %x) {
  %r = shl i32 %x, 0
  ret i32 %r
}`, simplifyShift, ir.OpShl, ir.OpLShr, ir.OpAShr),
		mk("baseline:simplify-and", "and X, 0 -> 0; and X, -1 -> X; and X, X -> X",
			`define i32 @f(i32 %x) {
  %r = and i32 %x, 0
  ret i32 %r
}`, simplifyAnd, ir.OpAnd),
		mk("baseline:simplify-or", "or X, 0 -> X; or X, -1 -> -1; or X, X -> X",
			`define i32 @f(i32 %x) {
  %r = or i32 %x, 0
  ret i32 %r
}`, simplifyOr, ir.OpOr),
		mk("baseline:simplify-xor", "xor X, 0 -> X; xor X, X -> 0; xor (xor X, C), C -> X",
			`define i32 @f(i32 %x) {
  %r = xor i32 %x, %x
  ret i32 %r
}`, simplifyXor, ir.OpXor),
		mk("baseline:simplify-icmp", "icmp X, X -> const; range-impossible icmp X, C -> const",
			`define i1 @f(i32 %x) {
  %r = icmp ult i32 %x, 0
  ret i1 %r
}`, simplifyICmpRule, ir.OpICmp),
		mk("baseline:simplify-select", "select const/equal-arm folds; select C, true, false -> C",
			`define i32 @f(i1 %c, i32 %x) {
  %r = select i1 %c, i32 %x, i32 %x
  ret i32 %r
}`, simplifySelect, ir.OpSelect),
		mk("baseline:simplify-trunc", "trunc (zext/sext X) back to X's type -> X",
			`define i8 @f(i8 %x) {
  %z = zext i8 %x to i32
  %r = trunc i32 %z to i8
  ret i8 %r
}`, simplifyTrunc, ir.OpTrunc),
		mk("baseline:simplify-freeze", "freeze const -> const; freeze (freeze X) -> freeze X",
			`define i8 @f(i8 %x) {
  %a = freeze i8 %x
  %b = freeze i8 %a
  ret i8 %b
}`, simplifyFreeze, ir.OpFreeze),
		mk("baseline:simplify-minmax", "min/max identities: equal args, dominating constants",
			`define i8 @f(i8 %x) {
  %r = call i8 @llvm.umin.i8(i8 %x, i8 0)
  ret i8 %r
}`, simplifyIntrinsic, ir.OpCall),
	}
}

func simplifyAdd(_ *transform, in *ir.Instr) (ir.Value, bool) {
	if isZeroConst(in.Args[1]) {
		return in.Args[0], true
	}
	return nil, false
}

func simplifySub(_ *transform, in *ir.Instr) (ir.Value, bool) {
	if isZeroConst(in.Args[1]) {
		return in.Args[0], true
	}
	if sameValue(in.Args[0], in.Args[1]) {
		return ir.SplatInt(in.Ty, 0), true
	}
	return nil, false
}

func simplifyMul(_ *transform, in *ir.Instr) (ir.Value, bool) {
	if isZeroConst(in.Args[1]) {
		return ir.SplatInt(in.Ty, 0), true
	}
	if c, ok := constIntOf(in.Args[1]); ok && c == 1 {
		return in.Args[0], true
	}
	return nil, false
}

func simplifyDiv(_ *transform, in *ir.Instr) (ir.Value, bool) {
	if c, ok := constIntOf(in.Args[1]); ok && c == 1 {
		return in.Args[0], true
	}
	if isZeroConst(in.Args[0]) {
		// 0/X is 0 (if X is 0 the original is UB, so 0 refines it).
		return ir.SplatInt(in.Ty, 0), true
	}
	return nil, false
}

func simplifyURem(_ *transform, in *ir.Instr) (ir.Value, bool) {
	if c, ok := constIntOf(in.Args[1]); ok && c == 1 {
		return ir.SplatInt(in.Ty, 0), true
	}
	if isZeroConst(in.Args[0]) {
		return ir.SplatInt(in.Ty, 0), true
	}
	return nil, false
}

func simplifySRem(_ *transform, in *ir.Instr) (ir.Value, bool) {
	if c, ok := constIntOf(in.Args[1]); ok {
		w := scalarWidth(in)
		if c == 1 || ir.SignExt(c, w) == -1 {
			return ir.SplatInt(in.Ty, 0), true
		}
	}
	if isZeroConst(in.Args[0]) {
		return ir.SplatInt(in.Ty, 0), true
	}
	return nil, false
}

func simplifyShift(_ *transform, in *ir.Instr) (ir.Value, bool) {
	if isZeroConst(in.Args[1]) {
		return in.Args[0], true
	}
	if isZeroConst(in.Args[0]) {
		return ir.SplatInt(in.Ty, 0), true
	}
	if c, ok := constIntOf(in.Args[1]); ok && c >= uint64(scalarWidth(in)) {
		return &ir.PoisonVal{Ty: in.Ty}, true
	}
	return nil, false
}

func simplifyAnd(_ *transform, in *ir.Instr) (ir.Value, bool) {
	if isZeroConst(in.Args[1]) {
		return ir.SplatInt(in.Ty, 0), true
	}
	if isAllOnesConst(in.Args[1]) {
		return in.Args[0], true
	}
	if sameValue(in.Args[0], in.Args[1]) {
		return in.Args[0], true
	}
	return nil, false
}

func simplifyOr(_ *transform, in *ir.Instr) (ir.Value, bool) {
	if isZeroConst(in.Args[1]) {
		return in.Args[0], true
	}
	if isAllOnesConst(in.Args[1]) {
		return ir.SplatInt(in.Ty, -1), true
	}
	if sameValue(in.Args[0], in.Args[1]) {
		return in.Args[0], true
	}
	return nil, false
}

func simplifyXor(_ *transform, in *ir.Instr) (ir.Value, bool) {
	if isZeroConst(in.Args[1]) {
		return in.Args[0], true
	}
	if sameValue(in.Args[0], in.Args[1]) {
		return ir.SplatInt(in.Ty, 0), true
	}
	// xor (xor X, C), C -> X (same constant cancels; the reassociation
	// in canonicalize handles differing constants).
	if inner, ok := asInstr(in.Args[0], ir.OpXor); ok && sameValue(inner.Args[1], in.Args[1]) {
		return inner.Args[0], true
	}
	return nil, false
}

func simplifySelect(_ *transform, in *ir.Instr) (ir.Value, bool) {
	if c, ok := constIntOf(in.Args[0]); ok && !ir.IsVector(in.Args[0].Type()) {
		if c&1 == 1 {
			return in.Args[1], true
		}
		return in.Args[2], true
	}
	if sameValue(in.Args[1], in.Args[2]) {
		return in.Args[1], true
	}
	// select C, true, false -> C (i1 only).
	if ir.Equal(in.Ty, ir.I1) {
		tc, okT := constIntOf(in.Args[1])
		fc, okF := constIntOf(in.Args[2])
		if okT && okF && tc&1 == 1 && fc&1 == 0 {
			return in.Args[0], true
		}
	}
	return nil, false
}

func simplifyTrunc(_ *transform, in *ir.Instr) (ir.Value, bool) {
	// trunc (zext/sext X) back to the original type -> X.
	if inner, ok := in.Args[0].(*ir.Instr); ok && (inner.Op == ir.OpZExt || inner.Op == ir.OpSExt) {
		if ir.Equal(inner.Args[0].Type(), in.Ty) {
			return inner.Args[0], true
		}
	}
	return nil, false
}

func simplifyFreeze(_ *transform, in *ir.Instr) (ir.Value, bool) {
	if ir.IsConst(in.Args[0]) {
		switch in.Args[0].(type) {
		case *ir.PoisonVal, *ir.Undef:
			return ir.ZeroValue(in.Ty), true
		default:
			return in.Args[0], true
		}
	}
	// freeze (freeze X) -> freeze X.
	if inner, ok := asInstr(in.Args[0], ir.OpFreeze); ok {
		return inner, true
	}
	return nil, false
}

func simplifyICmpRule(t *transform, in *ir.Instr) (ir.Value, bool) {
	return t.simplifyICmp(in)
}

func (t *transform) simplifyICmp(in *ir.Instr) (ir.Value, bool) {
	x, y := in.Args[0], in.Args[1]
	boolConst := func(b bool) ir.Value {
		if ir.IsVector(in.Ty) {
			v := int64(0)
			if b {
				v = 1
			}
			return ir.SplatInt(in.Ty, v)
		}
		return ir.CBool(b)
	}
	if sameValue(x, y) {
		switch in.IPredV {
		case ir.EQ, ir.ULE, ir.UGE, ir.SLE, ir.SGE:
			return boolConst(true), true
		default:
			return boolConst(false), true
		}
	}
	c, ok := constIntOf(y)
	if !ok || !ir.IsInt(x.Type()) {
		return nil, false
	}
	w := scalarWidth(x)
	mask := ir.MaskW(w)
	switch in.IPredV {
	case ir.ULT:
		if c == 0 {
			return boolConst(false), true
		}
	case ir.UGE:
		if c == 0 {
			return boolConst(true), true
		}
	case ir.UGT:
		if c == mask {
			return boolConst(false), true
		}
	case ir.ULE:
		if c == mask {
			return boolConst(true), true
		}
	case ir.SLT:
		if c == signedMinPattern(w) {
			return boolConst(false), true
		}
	case ir.SGE:
		if c == signedMinPattern(w) {
			return boolConst(true), true
		}
	case ir.SGT:
		if c == signedMaxPattern(w) {
			return boolConst(false), true
		}
	case ir.SLE:
		if c == signedMaxPattern(w) {
			return boolConst(true), true
		}
	}
	return nil, false
}

func simplifyIntrinsic(_ *transform, in *ir.Instr) (ir.Value, bool) {
	base := ir.IntrinsicBase(in.Callee)
	if len(in.Args) != 2 {
		return nil, false
	}
	x, y := in.Args[0], in.Args[1]
	switch base {
	case "umin", "umax", "smin", "smax":
		if sameValue(x, y) {
			return x, true
		}
	}
	c, ok := constIntOf(y)
	if !ok {
		return nil, false
	}
	w := scalarWidth(in)
	mask := ir.MaskW(w)
	switch base {
	case "umin":
		if c == 0 {
			return ir.SplatInt(in.Ty, 0), true
		}
		if c == mask {
			return x, true
		}
	case "umax":
		if c == 0 {
			return x, true
		}
		if c == mask {
			return ir.SplatInt(in.Ty, -1), true
		}
	case "smin":
		if c == signedMinPattern(w) {
			return ir.SplatInt(in.Ty, ir.SignExt(c, w)), true
		}
		if c == signedMaxPattern(w) {
			return x, true
		}
	case "smax":
		if c == signedMinPattern(w) {
			return x, true
		}
		if c == signedMaxPattern(w) {
			return ir.SplatInt(in.Ty, ir.SignExt(c, w)), true
		}
	}
	return nil, false
}
