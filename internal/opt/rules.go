package opt

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Provenance records where a rule comes from: the baseline optimizer, a
// modelled LLVM fix (paper Table 5), or the simulated LLM's knowledge base.
type Provenance string

// Provenance values.
const (
	ProvBaseline Provenance = "baseline"
	ProvPatch    Provenance = "patch"
	ProvKB       Provenance = "kb"
	// ProvLearned marks rules synthesized at runtime by internal/generalize
	// from verified discovery findings. Learned rules never enter the init
	// registry; they are attached to selections with RuleSet.WithRules.
	ProvLearned Provenance = "learned"
)

// ruleFn is the rewrite contract every registered rule implements: given an
// instruction (and the instructions already emitted before it in the current
// sweep), return the instructions to insert, the value replacing the original
// result (nil deletes a void instruction), and whether the rule fired.
type ruleFn func(t *transform, in *ir.Instr, prior []*ir.Instr) ([]*ir.Instr, ir.Value, bool)

// Rule is one first-class rewrite rule in the registry. Rules are enumerable
// (Rules, cmd/lpo-opt -rules), attributable (RunStats.RuleHits, Attribute)
// and selectable by enable name (Options.Patches); the apply function itself
// stays private to the package.
type Rule struct {
	// ID uniquely identifies the rule, e.g. "baseline:zext-trunc",
	// "157371/neg-via-xor" or "kb:rotate". Hit counters are keyed by ID.
	ID string
	// Name is the enable name used in Options.Patches. Patch rules share
	// their issue ID (157371 landed as two patches, so two rules share the
	// name "157371"); baseline and knowledge-base rules have Name == ID.
	// Baseline rules are always enabled regardless of Options.Patches.
	Name string
	// Provenance classifies the rule (baseline / patch / kb).
	Provenance Provenance
	// Roots are the opcodes the rule can fire on; dispatch tables are indexed
	// by them. A rule is only ever invoked on instructions whose opcode is in
	// Roots.
	Roots []ir.Opcode
	// Doc is the one-line pattern the rule implements.
	Doc string
	// Example is a synthetic .ll function the rule fires on. The registry
	// self-test proves every rule fires on its Example and that the rewrite
	// is a refinement per internal/alive.
	Example string

	apply ruleFn
}

// registry holds every rule in deterministic order: baseline rules in
// pipeline order (simplify identities before emitting rewrites), then the
// optional patch and knowledge-base rules sorted by enable name.
var (
	registry       []*Rule
	ruleByID       map[string]*Rule
	optionalByName map[string][]*Rule
)

func init() {
	registry = append(registry, baselineSimplifyRules()...)
	registry = append(registry, baselineRewriteRules()...)
	optional := append(patchRuleDefs(), kbRuleDefs()...)
	// Sorting by enable name (stable, so multi-rule patches keep their
	// intra-patch order) reproduces the seed dispatcher's sorted-name scan
	// and makes every accessor below deterministic.
	sort.SliceStable(optional, func(i, j int) bool { return optional[i].Name < optional[j].Name })
	registry = append(registry, optional...)

	ruleByID = make(map[string]*Rule, len(registry))
	optionalByName = make(map[string][]*Rule)
	for _, r := range registry {
		if r.ID == "" || r.Name == "" || len(r.Roots) == 0 || r.apply == nil {
			panic("opt: incomplete rule registration: " + r.ID)
		}
		if _, dup := ruleByID[r.ID]; dup {
			panic("opt: duplicate rule ID " + r.ID)
		}
		ruleByID[r.ID] = r
		if r.Provenance != ProvBaseline {
			optionalByName[r.Name] = append(optionalByName[r.Name], r)
		}
	}
	// Prebuild the common selections: the two baseline-only sets cover every
	// Run with no optional rules enabled (the dominant case — extraction
	// canonicalizes each window with the plain baseline), which the seed
	// dispatcher served with zero setup cost, and the full set backs the
	// knowledge-base consumers (llm.Sim, engine attribution).
	baselineSet = buildRuleSet(Options{})
	baselineNoCanonSet = buildRuleSet(Options{DisableIntrinsicCanon: true})
	fullSet = buildRuleSet(Options{Patches: AllRuleNames()})
}

// Shared selections (immutable after init, safe for concurrent use).
var baselineSet, baselineNoCanonSet, fullSet *RuleSet

// FullRuleSet returns the shared selection with every patch and
// knowledge-base rule enabled — the "ideal optimizer" the simulated LLM
// proposes from and the registry view attribution runs against.
func FullRuleSet() *RuleSet { return fullSet }

// Rules returns every registered rule in deterministic order (baseline rules
// first, then patches and knowledge base sorted by enable name). Callers must
// treat the returned rules as read-only.
func Rules() []*Rule { return append([]*Rule(nil), registry...) }

// RuleByID returns the registered rule with the given ID, or nil.
func RuleByID(id string) *Rule { return ruleByID[id] }

// PatchIDs returns the issue IDs with modelled fixes (paper Table 5), sorted.
func PatchIDs() []string { return namesWithProvenance(ProvPatch) }

// KBNames returns the knowledge-base rule names (without the patch rules),
// sorted.
func KBNames() []string { return namesWithProvenance(ProvKB) }

// AllRuleNames returns every optional enable name — modelled patches plus the
// LLM knowledge base — in sorted order. Enabling all of them yields the
// "ideal optimizer" the simulated LLM aspires to.
func AllRuleNames() []string {
	return append(PatchIDs(), KBNames()...)
}

func namesWithProvenance(p Provenance) []string {
	var names []string
	seen := make(map[string]bool)
	for _, r := range registry {
		if r.Provenance == p && !seen[r.Name] {
			seen[r.Name] = true
			names = append(names, r.Name)
		}
	}
	sort.Strings(names)
	return names
}

// DynamicApply is the rewrite contract for rules constructed at runtime
// (learned rules). It mirrors ruleFn but exposes only the fresh-name
// generator instead of the whole transform, keeping the package's rewriting
// state private.
type DynamicApply func(fresh func() string, in *ir.Instr, prior []*ir.Instr) ([]*ir.Instr, ir.Value, bool)

// DynamicSpec describes a runtime-constructed rule.
type DynamicSpec struct {
	ID      string // must not collide with a registry rule ID
	Name    string // enable name (defaults to ID)
	Doc     string
	Example string
	Roots   []ir.Opcode
	Apply   DynamicApply
}

// NewDynamicRule builds a first-class rule (provenance ProvLearned) from an
// externally-compiled matcher/rewriter. The rule does not join the init
// registry — attach it to a selection with RuleSet.WithRules — but once
// attached it is dispatched, attributed and counted exactly like a
// registered rule.
func NewDynamicRule(s DynamicSpec) (*Rule, error) {
	if s.ID == "" || len(s.Roots) == 0 || s.Apply == nil {
		return nil, fmt.Errorf("opt: dynamic rule needs an ID, root opcodes and an apply function")
	}
	if _, taken := ruleByID[s.ID]; taken {
		return nil, fmt.Errorf("opt: dynamic rule ID %q collides with a registry rule", s.ID)
	}
	name := s.Name
	if name == "" {
		name = s.ID
	}
	apply := s.Apply
	return &Rule{
		ID: s.ID, Name: name, Provenance: ProvLearned,
		Roots: append([]ir.Opcode(nil), s.Roots...), Doc: s.Doc, Example: s.Example,
		apply: func(t *transform, in *ir.Instr, prior []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
			return apply(t.freshName, in, prior)
		},
	}, nil
}

// opcodeLimit sizes the dispatch tables; opcodes are small contiguous ints.
const opcodeLimit = int(ir.OpUnreachable) + 1

// RuleSet is an immutable selection of rules with a precomputed dispatch
// table indexed by root opcode. Run builds one per call from Options; callers
// that optimize many functions with the same configuration (the simulated
// LLM, the engine's attribution pass) build one with NewRuleSet and reuse it
// via Options.Rules.
type RuleSet struct {
	rules []*Rule
	names []string // enabled optional names, sorted
	byID  map[string]*Rule
	index [opcodeLimit][]*Rule
}

// NewRuleSet resolves opts.Patches against the registry: baseline rules are
// always included (minus the select->min/max family when
// opts.DisableIntrinsicCanon is set), optional rules are included when their
// enable name is listed. Unknown names are ignored, duplicates are deduped,
// and the resulting rule order is deterministic regardless of the order of
// opts.Patches. opts.Rules and opts.MaxIters are ignored here. Baseline-only
// selections are shared, so the common no-patches Run pays no setup cost.
func NewRuleSet(opts Options) *RuleSet {
	if len(opts.Patches) == 0 {
		if opts.DisableIntrinsicCanon {
			return baselineNoCanonSet
		}
		return baselineSet
	}
	return buildRuleSet(opts)
}

func buildRuleSet(opts Options) *RuleSet {
	enabled := make(map[string]bool, len(opts.Patches))
	for _, n := range opts.Patches {
		enabled[n] = true
	}
	rs := &RuleSet{byID: make(map[string]*Rule)}
	seenName := make(map[string]bool)
	for _, r := range registry {
		switch {
		case r.Provenance == ProvBaseline:
			if opts.DisableIntrinsicCanon && r.ID == ruleIDSelectMinMax {
				continue
			}
		default:
			if !enabled[r.Name] {
				continue
			}
			if !seenName[r.Name] {
				seenName[r.Name] = true
				rs.names = append(rs.names, r.Name)
			}
		}
		rs.rules = append(rs.rules, r)
		rs.byID[r.ID] = r
		for _, op := range r.Roots {
			rs.index[op] = append(rs.index[op], r)
		}
	}
	sort.Strings(rs.names)
	return rs
}

// WithRules returns a new selection extending rs with the given rules
// (typically learned rules from a rulebook): the extra rules are
// deduplicated by ID, sorted by ID for determinism, and appended after the
// registry rules in every dispatch list. rs itself is never mutated, so the
// shared baseline selections stay immutable.
func (rs *RuleSet) WithRules(extra ...*Rule) *RuleSet {
	var add []*Rule
	for _, r := range extra {
		if r == nil || rs.byID[r.ID] != nil {
			continue
		}
		dup := false
		for _, a := range add {
			if a.ID == r.ID {
				dup = true
				break
			}
		}
		if !dup {
			add = append(add, r)
		}
	}
	if len(add) == 0 {
		return rs
	}
	sort.Slice(add, func(i, j int) bool { return add[i].ID < add[j].ID })
	n := &RuleSet{
		rules: append([]*Rule(nil), rs.rules...),
		names: append([]string(nil), rs.names...),
		byID:  make(map[string]*Rule, len(rs.byID)+len(add)),
		index: rs.index,
	}
	for id, r := range rs.byID {
		n.byID[id] = r
	}
	seenName := make(map[string]bool, len(n.names))
	for _, nm := range n.names {
		seenName[nm] = true
	}
	for _, r := range add {
		if r.ID == "" || len(r.Roots) == 0 || r.apply == nil {
			panic("opt: incomplete rule in WithRules: " + r.ID)
		}
		n.rules = append(n.rules, r)
		n.byID[r.ID] = r
		if r.Provenance != ProvBaseline && !seenName[r.Name] {
			seenName[r.Name] = true
			n.names = append(n.names, r.Name)
		}
		for _, op := range r.Roots {
			// Copy-on-extend: the array assignment above shares the backing
			// slices with rs, so never append in place.
			n.index[op] = append(append([]*Rule(nil), n.index[op]...), r)
		}
	}
	sort.Strings(n.names)
	return n
}

// Rules returns the selected rules in dispatch order (read-only).
func (rs *RuleSet) Rules() []*Rule { return append([]*Rule(nil), rs.rules...) }

// Names returns the enabled optional enable names, sorted.
func (rs *RuleSet) Names() []string { return append([]string(nil), rs.names...) }

// Len is the number of selected rules.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// RuleByID returns the selected rule with the given ID, or nil. Unlike the
// package-level RuleByID it also resolves dynamic (learned) rules attached
// with WithRules.
func (rs *RuleSet) RuleByID(id string) *Rule { return rs.byID[id] }

// rulesFor returns the dispatch list for one root opcode.
func (rs *RuleSet) rulesFor(op ir.Opcode) []*Rule {
	if int(op) < 0 || int(op) >= opcodeLimit {
		return nil
	}
	return rs.index[op]
}

// applyRules dispatches the instruction through the opcode-indexed table and
// applies the first rule that fires, recording a hit against its ID.
func (t *transform) applyRules(in *ir.Instr, prior []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	for _, r := range t.rs.rulesFor(in.Op) {
		if news, v, ok := r.apply(t, in, prior); ok {
			t.hits[r.ID]++
			return news, v, true
		}
	}
	return nil, nil, false
}

// Attribute reports which optional (patch / knowledge-base / learned) rules
// fire when optimizing f with rs, keyed by rule ID. Baseline rules are
// filtered out: the result names the missed optimizations that close the
// window, not the canonicalization cleanup around them. An empty map means
// the rule set does not improve f beyond the baseline rules.
func Attribute(f *ir.Func, rs *RuleSet) map[string]int {
	if rs == nil {
		rs = baselineSet
	}
	_, stats := RunWithStats(f, Options{Rules: rs})
	out := make(map[string]int)
	for id, n := range stats.RuleHits {
		if r := rs.RuleByID(id); r != nil && r.Provenance != ProvBaseline {
			out[id] = n
		}
	}
	return out
}

// OptionalRuleHits filters a RunStats.RuleHits map down to the optional
// (patch / knowledge-base) rules, dropping the baseline cleanup around them.
// It is the one place the attribution provenance filter lives.
func OptionalRuleHits(hits map[string]int) map[string]int {
	out := make(map[string]int)
	for id, n := range hits {
		if r := ruleByID[id]; r != nil && r.Provenance != ProvBaseline {
			out[id] = n
		}
	}
	return out
}

// AttributedIDs is Attribute flattened to sorted rule IDs, for reports.
func AttributedIDs(f *ir.Func, rs *RuleSet) []string {
	hits := Attribute(f, rs)
	ids := make([]string, 0, len(hits))
	for id := range hits {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
