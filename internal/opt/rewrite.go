package opt

import (
	"sort"

	"repro/internal/ir"
)

// rewrite applies rules that replace an instruction with one or more new
// instructions (or an existing value). It returns the instructions to
// insert, the value that replaces the original result, and success.
func (t *transform) rewrite(in *ir.Instr, prior []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if !t.noIntrinsicCanon {
		if news, v, ok := t.selectToMinMax(in); ok {
			return news, v, ok
		}
	}
	if news, v, ok := t.selectBoolInvert(in); ok {
		return news, v, ok
	}
	if news, v, ok := t.zextOfTrunc(in); ok {
		return news, v, ok
	}
	if news, v, ok := t.andOfZextCover(in); ok {
		return news, v, ok
	}
	if news, v, ok := t.udivUremPow2(in); ok {
		return news, v, ok
	}
	// Optional rules: the modelled LLVM fixes (Table 5 / Figure 5) and the
	// LLM knowledge base, applied in deterministic name order.
	if len(t.patches) > 0 {
		names := make([]string, 0, len(t.patches))
		for n := range t.patches {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			rules := patchRules[n]
			if kb, ok := kbRules[n]; ok {
				rules = kb
			}
			for _, fn := range rules {
				if news, v, applied := fn(t, in, prior); applied {
					return news, v, true
				}
			}
		}
	}
	return nil, nil, false
}

// selectToMinMax canonicalizes select(icmp pred A, B), A, B (and the
// swapped-arm form) into the matching min/max intrinsic, as InstCombine does
// for directly-matching operand shapes.
func (t *transform) selectToMinMax(in *ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpSelect || !ir.IsInt(in.Ty) {
		return nil, nil, false
	}
	cmp, ok := in.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp {
		return nil, nil, false
	}
	a, b := cmp.Args[0], cmp.Args[1]
	tv, fv := in.Args[1], in.Args[2]
	if !ir.Equal(a.Type(), in.Ty) {
		return nil, nil, false
	}
	var pred ir.IPred
	switch {
	case sameValue(tv, a) && sameValue(fv, b):
		pred = cmp.IPredV
	case sameValue(tv, b) && sameValue(fv, a):
		pred = cmp.IPredV.Inverse()
	default:
		return nil, nil, false
	}
	var base string
	switch pred {
	case ir.SLT, ir.SLE:
		base = "smin"
	case ir.SGT, ir.SGE:
		base = "smax"
	case ir.ULT, ir.ULE:
		base = "umin"
	case ir.UGT, ir.UGE:
		base = "umax"
	default:
		return nil, nil, false
	}
	call := ir.CallI(t.freshName(), ir.IntrinsicName(base, in.Ty), in.Ty, tv, fv)
	return []*ir.Instr{call}, call, true
}

// selectBoolInvert rewrites select C, false, true -> xor C, true.
func (t *transform) selectBoolInvert(in *ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpSelect || !ir.Equal(in.Ty, ir.I1) || ir.IsVector(in.Args[0].Type()) {
		return nil, nil, false
	}
	tc, okT := constIntOf(in.Args[1])
	fc, okF := constIntOf(in.Args[2])
	if !okT || !okF || tc&1 != 0 || fc&1 != 1 {
		return nil, nil, false
	}
	x := ir.Bin(ir.OpXor, t.freshName(), ir.NoFlags, in.Args[0], ir.CBool(true))
	return []*ir.Instr{x}, x, true
}

// zextOfTrunc rewrites zext (trunc X) back to X's type as a mask:
// plain trunc -> and X, lowmask; trunc nuw -> X itself.
func (t *transform) zextOfTrunc(in *ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpZExt {
		return nil, nil, false
	}
	inner, ok := asInstr(in.Args[0], ir.OpTrunc)
	if !ok || !ir.Equal(inner.Args[0].Type(), in.Ty) {
		return nil, nil, false
	}
	if inner.Flags.Has(ir.NUW) {
		return nil, inner.Args[0], true
	}
	lowBits := scalarWidth(inner)
	mask := ir.SplatInt(in.Ty, int64(ir.MaskW(lowBits)))
	and := ir.Bin(ir.OpAnd, t.freshName(), ir.NoFlags, inner.Args[0], mask)
	return []*ir.Instr{and}, and, true
}

// andOfZextCover simplifies and (zext X), C -> zext X when C covers every
// bit X can set.
func (t *transform) andOfZextCover(in *ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpAnd {
		return nil, nil, false
	}
	inner, ok := asInstr(in.Args[0], ir.OpZExt)
	if !ok {
		return nil, nil, false
	}
	c, ok2 := constIntOf(in.Args[1])
	if !ok2 {
		return nil, nil, false
	}
	innerBits := scalarWidth(inner.Args[0])
	if c&ir.MaskW(innerBits) == ir.MaskW(innerBits) {
		return nil, inner, true
	}
	return nil, nil, false
}

// udivUremPow2 rewrites unsigned division and remainder by powers of two
// into shifts and masks.
func (t *transform) udivUremPow2(in *ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpUDiv && in.Op != ir.OpURem {
		return nil, nil, false
	}
	c, ok := constIntOf(in.Args[1])
	if !ok || c == 0 || c&(c-1) != 0 {
		return nil, nil, false
	}
	k := int64(0)
	for v := c; v > 1; v >>= 1 {
		k++
	}
	if in.Op == ir.OpUDiv {
		flags := ir.NoFlags
		if in.Flags.Has(ir.Exact) {
			flags = ir.Exact
		}
		sh := ir.Bin(ir.OpLShr, t.freshName(), flags, in.Args[0], ir.SplatInt(in.Ty, k))
		return []*ir.Instr{sh}, sh, true
	}
	and := ir.Bin(ir.OpAnd, t.freshName(), ir.NoFlags, in.Args[0], ir.SplatInt(in.Ty, int64(c-1)))
	return []*ir.Instr{and}, and, true
}
