package opt

import (
	"repro/internal/ir"
)

// This file holds the baseline InstCombine-style rewrites: rules that replace
// an instruction with one or more new instructions (or an existing value).
// They register themselves in the rule registry (rules.go) with baseline
// provenance, so they are always enabled; dispatch happens through the
// RuleSet's opcode-indexed table, never by scanning unrelated rules.

// ruleIDSelectMinMax is the intrinsic-canonicalization family gated by
// Options.DisableIntrinsicCanon.
const ruleIDSelectMinMax = "baseline:select-minmax"

func baselineRewriteRules() []*Rule {
	return []*Rule{
		{
			ID: ruleIDSelectMinMax, Name: ruleIDSelectMinMax, Provenance: ProvBaseline,
			Roots: []ir.Opcode{ir.OpSelect},
			Doc:   "select (icmp pred A, B), A, B -> smin/smax/umin/umax(A, B)",
			Example: `define i32 @f(i32 %a, i32 %b) {
  %c = icmp slt i32 %a, %b
  %r = select i1 %c, i32 %a, i32 %b
  ret i32 %r
}`,
			apply: rewriteSelectToMinMax,
		},
		{
			ID: "baseline:select-not", Name: "baseline:select-not", Provenance: ProvBaseline,
			Roots: []ir.Opcode{ir.OpSelect},
			Doc:   "select C, false, true -> xor C, true",
			Example: `define i1 @f(i1 %c) {
  %r = select i1 %c, i1 false, i1 true
  ret i1 %r
}`,
			apply: rewriteSelectBoolInvert,
		},
		{
			ID: "baseline:zext-trunc", Name: "baseline:zext-trunc", Provenance: ProvBaseline,
			Roots: []ir.Opcode{ir.OpZExt},
			Doc:   "zext (trunc X) -> and X, lowmask (or X itself for trunc nuw)",
			Example: `define i32 @f(i32 %x) {
  %t = trunc i32 %x to i8
  %r = zext i8 %t to i32
  ret i32 %r
}`,
			apply: rewriteZextOfTrunc,
		},
		{
			ID: "baseline:and-zext-cover", Name: "baseline:and-zext-cover", Provenance: ProvBaseline,
			Roots: []ir.Opcode{ir.OpAnd},
			Doc:   "and (zext X), C -> zext X when C covers every bit X can set",
			Example: `define i32 @f(i8 %x) {
  %z = zext i8 %x to i32
  %r = and i32 %z, 255
  ret i32 %r
}`,
			apply: rewriteAndOfZextCover,
		},
		{
			ID: "baseline:divrem-pow2", Name: "baseline:divrem-pow2", Provenance: ProvBaseline,
			Roots: []ir.Opcode{ir.OpUDiv, ir.OpURem},
			Doc:   "udiv/urem X, 2^k -> lshr X, k / and X, 2^k-1",
			Example: `define i32 @f(i32 %x) {
  %r = udiv i32 %x, 8
  ret i32 %r
}`,
			apply: rewriteUdivUremPow2,
		},
	}
}

// rewriteSelectToMinMax canonicalizes select(icmp pred A, B), A, B (and the
// swapped-arm form) into the matching min/max intrinsic, as InstCombine does
// for directly-matching operand shapes.
func rewriteSelectToMinMax(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpSelect || !ir.IsInt(in.Ty) {
		return nil, nil, false
	}
	cmp, ok := in.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp {
		return nil, nil, false
	}
	a, b := cmp.Args[0], cmp.Args[1]
	tv, fv := in.Args[1], in.Args[2]
	if !ir.Equal(a.Type(), in.Ty) {
		return nil, nil, false
	}
	var pred ir.IPred
	switch {
	case sameValue(tv, a) && sameValue(fv, b):
		pred = cmp.IPredV
	case sameValue(tv, b) && sameValue(fv, a):
		pred = cmp.IPredV.Inverse()
	default:
		return nil, nil, false
	}
	var base string
	switch pred {
	case ir.SLT, ir.SLE:
		base = "smin"
	case ir.SGT, ir.SGE:
		base = "smax"
	case ir.ULT, ir.ULE:
		base = "umin"
	case ir.UGT, ir.UGE:
		base = "umax"
	default:
		return nil, nil, false
	}
	call := ir.CallI(t.freshName(), ir.IntrinsicName(base, in.Ty), in.Ty, tv, fv)
	return []*ir.Instr{call}, call, true
}

// rewriteSelectBoolInvert rewrites select C, false, true -> xor C, true.
func rewriteSelectBoolInvert(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpSelect || !ir.Equal(in.Ty, ir.I1) || ir.IsVector(in.Args[0].Type()) {
		return nil, nil, false
	}
	tc, okT := constIntOf(in.Args[1])
	fc, okF := constIntOf(in.Args[2])
	if !okT || !okF || tc&1 != 0 || fc&1 != 1 {
		return nil, nil, false
	}
	x := ir.Bin(ir.OpXor, t.freshName(), ir.NoFlags, in.Args[0], ir.CBool(true))
	return []*ir.Instr{x}, x, true
}

// rewriteZextOfTrunc rewrites zext (trunc X) back to X's type as a mask:
// plain trunc -> and X, lowmask; trunc nuw -> X itself.
func rewriteZextOfTrunc(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpZExt {
		return nil, nil, false
	}
	inner, ok := asInstr(in.Args[0], ir.OpTrunc)
	if !ok || !ir.Equal(inner.Args[0].Type(), in.Ty) {
		return nil, nil, false
	}
	if inner.Flags.Has(ir.NUW) {
		return nil, inner.Args[0], true
	}
	lowBits := scalarWidth(inner)
	mask := ir.SplatInt(in.Ty, int64(ir.MaskW(lowBits)))
	and := ir.Bin(ir.OpAnd, t.freshName(), ir.NoFlags, inner.Args[0], mask)
	return []*ir.Instr{and}, and, true
}

// rewriteAndOfZextCover simplifies and (zext X), C -> zext X when C covers
// every bit X can set.
func rewriteAndOfZextCover(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpAnd {
		return nil, nil, false
	}
	inner, ok := asInstr(in.Args[0], ir.OpZExt)
	if !ok {
		return nil, nil, false
	}
	c, ok2 := constIntOf(in.Args[1])
	if !ok2 {
		return nil, nil, false
	}
	innerBits := scalarWidth(inner.Args[0])
	if c&ir.MaskW(innerBits) == ir.MaskW(innerBits) {
		return nil, inner, true
	}
	return nil, nil, false
}

// rewriteUdivUremPow2 rewrites unsigned division and remainder by powers of
// two into shifts and masks.
func rewriteUdivUremPow2(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpUDiv && in.Op != ir.OpURem {
		return nil, nil, false
	}
	c, ok := constIntOf(in.Args[1])
	if !ok || c == 0 || c&(c-1) != 0 {
		return nil, nil, false
	}
	k := int64(0)
	for v := c; v > 1; v >>= 1 {
		k++
	}
	if in.Op == ir.OpUDiv {
		flags := ir.NoFlags
		if in.Flags.Has(ir.Exact) {
			flags = ir.Exact
		}
		sh := ir.Bin(ir.OpLShr, t.freshName(), flags, in.Args[0], ir.SplatInt(in.Ty, k))
		return []*ir.Instr{sh}, sh, true
	}
	and := ir.Bin(ir.OpAnd, t.freshName(), ir.NoFlags, in.Args[0], ir.SplatInt(in.Ty, int64(c-1)))
	return []*ir.Instr{and}, and, true
}
