package opt

import (
	"sort"
	"testing"

	"repro/internal/alive"
	"repro/internal/ir"
	"repro/internal/parser"
)

// TestRegistryInvariants checks the structural contract of the registry:
// every rule is fully described, IDs are unique (init panics otherwise, but
// the accessors must agree too), provenances are valid, and the name
// accessors are sorted and stable.
func TestRegistryInvariants(t *testing.T) {
	rules := Rules()
	if len(rules) == 0 {
		t.Fatal("registry is empty")
	}
	seen := make(map[string]bool)
	for _, r := range rules {
		if r.ID == "" || r.Name == "" || r.Doc == "" || r.Example == "" || len(r.Roots) == 0 {
			t.Errorf("rule %q is incompletely described: %+v", r.ID, r)
		}
		if seen[r.ID] {
			t.Errorf("duplicate rule ID %q", r.ID)
		}
		seen[r.ID] = true
		switch r.Provenance {
		case ProvBaseline:
			if r.Name != r.ID {
				t.Errorf("baseline rule %q must have Name == ID, got %q", r.ID, r.Name)
			}
		case ProvPatch, ProvKB:
		default:
			t.Errorf("rule %q has unknown provenance %q", r.ID, r.Provenance)
		}
		if got := RuleByID(r.ID); got != r {
			t.Errorf("RuleByID(%q) does not round-trip", r.ID)
		}
	}
	for name, names := range map[string][]string{
		"PatchIDs":     PatchIDs(),
		"KBNames":      KBNames(),
		"AllRuleNames": AllRuleNames(),
	} {
		if !sort.StringsAreSorted(names) {
			t.Errorf("%s is not sorted: %v", name, names)
		}
	}
	if len(PatchIDs())+len(KBNames()) != len(AllRuleNames()) {
		t.Error("AllRuleNames must be the union of PatchIDs and KBNames")
	}
}

// TestRuleSetSelectionIsDeterministic builds the same selection from
// differently-ordered (and duplicated) Patches inputs and requires the
// identical dispatch order — the property that keeps llm.Sim's seeded
// proposals reproducible.
func TestRuleSetSelectionIsDeterministic(t *testing.T) {
	forward := AllRuleNames()
	backward := make([]string, len(forward))
	for i, n := range forward {
		backward[len(forward)-1-i] = n
	}
	withDups := append(append([]string(nil), backward...), forward...)
	ids := func(rs *RuleSet) []string {
		var out []string
		for _, r := range rs.Rules() {
			out = append(out, r.ID)
		}
		return out
	}
	a := ids(NewRuleSet(Options{Patches: forward}))
	b := ids(NewRuleSet(Options{Patches: backward}))
	c := ids(NewRuleSet(Options{Patches: withDups}))
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("selection order depends on input order at %d: %s / %s / %s",
				i, a[i], b[i], c[i])
		}
	}
	if len(a) != len(b) || len(a) != len(c) {
		t.Fatalf("selection sizes differ: %d / %d / %d", len(a), len(b), len(c))
	}
	names := NewRuleSet(Options{Patches: withDups}).Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("RuleSet.Names not sorted: %v", names)
	}
	if len(names) != len(forward) {
		t.Fatalf("duplicated input changed the enabled-name set: %d vs %d", len(names), len(forward))
	}
}

// TestRuleSetHonorsOptions checks selection behaviour: unknown names are
// ignored, DisableIntrinsicCanon drops the select->min/max family, and
// baseline rules are always present.
func TestRuleSetHonorsOptions(t *testing.T) {
	base := NewRuleSet(Options{})
	for _, r := range base.Rules() {
		if r.Provenance != ProvBaseline {
			t.Fatalf("empty selection contains optional rule %s", r.ID)
		}
	}
	if got := NewRuleSet(Options{Patches: []string{"no-such-rule"}}).Len(); got != base.Len() {
		t.Fatalf("unknown enable name changed the selection: %d vs %d", got, base.Len())
	}
	noCanon := NewRuleSet(Options{DisableIntrinsicCanon: true})
	if noCanon.Len() != base.Len()-1 {
		t.Fatalf("DisableIntrinsicCanon should drop exactly one rule: %d vs %d",
			noCanon.Len(), base.Len())
	}
	for _, r := range noCanon.Rules() {
		if r.ID == ruleIDSelectMinMax {
			t.Fatal("DisableIntrinsicCanon left the select->min/max rule enabled")
		}
	}
}

// TestRuleSoundnessSweep is the registry self-test the issue tracker calls
// the "rule soundness sweep": every registered rule must fire on its own
// Example (proved by its hit counter, so multi-rule patches cannot lean on a
// sibling), and the resulting rewrite must be a refinement of the input per
// internal/alive.
func TestRuleSoundnessSweep(t *testing.T) {
	for _, r := range Rules() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			f, err := parser.ParseFunc(r.Example)
			if err != nil {
				t.Fatalf("example does not parse: %v\n%s", err, r.Example)
			}
			opts := Options{}
			if r.Provenance != ProvBaseline {
				opts.Patches = []string{r.Name}
			}
			g, stats := RunWithStats(f, opts)
			if stats.RuleHits[r.ID] == 0 {
				t.Fatalf("rule did not fire on its example (hits: %v):\n%s\n->\n%s",
					stats.RuleHits, f, g)
			}
			if err := ir.VerifyFunc(g); err != nil {
				t.Fatalf("rewrite produced invalid IR: %v\n%s", err, g)
			}
			v := alive.Verify(f, g, alive.Options{Samples: 1024, Seed: 7})
			if v.Verdict != alive.Correct {
				msg := v.Err
				if v.CE != nil {
					msg = v.CE.Format()
				}
				t.Fatalf("rewrite is not a refinement:\n%s\n->\n%s\n%s", f, g, msg)
			}
		})
	}
}

// TestRunWithStatsCountsHits pins the end-to-end hit accounting on a known
// pattern: the clamp benchmark closed by patch 143636.
func TestRunWithStatsCountsHits(t *testing.T) {
	f := parser.MustParseFunc(`define i8 @src(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`)
	_, stats := RunWithStats(f, Options{Patches: []string{"143636"}})
	if stats.RuleHits["143636/clamp-smax"] == 0 {
		t.Fatalf("expected the clamp rule to be attributed, got %v", stats.RuleHits)
	}
	if stats.Iters == 0 {
		t.Fatal("iteration count missing")
	}
	kb := NewRuleSet(Options{Patches: AllRuleNames()})
	ids := AttributedIDs(f, kb)
	if len(ids) == 0 || ids[0] != "143636/clamp-smax" {
		t.Fatalf("AttributedIDs = %v, want the clamp rule first", ids)
	}
	for _, id := range ids {
		if RuleByID(id).Provenance == ProvBaseline {
			t.Fatalf("attribution leaked a baseline rule: %v", ids)
		}
	}
}
