package opt

import (
	"repro/internal/ir"
)

// asInstr returns v as a defining instruction with the given opcode.
func asInstr(v ir.Value, op ir.Opcode) (*ir.Instr, bool) {
	in, ok := v.(*ir.Instr)
	if !ok || in.Op != op {
		return nil, false
	}
	return in, true
}

// asIntrinsic returns v as a call to the given intrinsic base name.
func asIntrinsic(v ir.Value, base string) (*ir.Instr, bool) {
	in, ok := v.(*ir.Instr)
	if !ok || in.Op != ir.OpCall || ir.IntrinsicBase(in.Callee) != base {
		return nil, false
	}
	return in, true
}

// constIntOf returns the uniform integer bit pattern of a constant operand.
func constIntOf(v ir.Value) (uint64, bool) { return ir.IntConstValue(v) }

// scalarWidth returns the lane bit width of an integer-typed value.
func scalarWidth(v ir.Value) int { return ir.ScalarBits(ir.Elem(v.Type())) }

// isZeroConst reports whether v is the all-zero integer constant.
func isZeroConst(v ir.Value) bool {
	c, ok := constIntOf(v)
	return ok && c&ir.MaskW(scalarWidth(v)) == 0
}

// isAllOnesConst reports whether v is the all-ones integer constant.
func isAllOnesConst(v ir.Value) bool {
	c, ok := constIntOf(v)
	w := scalarWidth(v)
	return ok && c&ir.MaskW(w) == ir.MaskW(w)
}

// sameValue reports whether two operands are the identical SSA value or
// identical constants.
func sameValue(a, b ir.Value) bool {
	if a == b {
		return true
	}
	if ir.IsConst(a) && ir.IsConst(b) && ir.Equal(a.Type(), b.Type()) {
		ca, oka := constIntOf(a)
		cb, okb := constIntOf(b)
		if oka && okb {
			return ca == cb
		}
	}
	return false
}

// signedMin and signedMax return the extreme signed values at width w as bit
// patterns.
func signedMinPattern(w int) uint64 { return uint64(1) << uint(w-1) }
func signedMaxPattern(w int) uint64 { return ir.MaskW(w) >> 1 }

// uminU, umaxU, sminS, smaxS compute bounds used by min/max folding.
func uminU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func umaxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func sminS(a, b, w uint64) uint64 {
	if ir.SignExt(a, int(w)) < ir.SignExt(b, int(w)) {
		return a
	}
	return b
}

func smaxS(a, b, w uint64) uint64 {
	if ir.SignExt(a, int(w)) > ir.SignExt(b, int(w)) {
		return a
	}
	return b
}
