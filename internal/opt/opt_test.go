package opt

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/parser"
)

func optimize(t *testing.T, src string, opts Options) *ir.Func {
	t.Helper()
	f, err := parser.ParseFunc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := Run(f, opts)
	if err := ir.VerifyFunc(g); err != nil {
		t.Fatalf("optimized function does not verify: %v\n%s", err, g)
	}
	return g
}

func TestConstantFolding(t *testing.T) {
	g := optimize(t, `define i32 @f() {
  %a = add i32 2, 3
  %b = mul i32 %a, 4
  %c = shl i32 %b, 1
  ret i32 %c
}`, Options{})
	if n := g.NumInstrs(true); n != 0 {
		t.Fatalf("expected full folding, %d instrs remain:\n%s", n, g)
	}
	ret := g.Entry().Terminator()
	if c, ok := ret.Args[0].(*ir.ConstInt); !ok || c.V != 40 {
		t.Fatalf("expected ret i32 40, got %s", ret)
	}
}

func TestIdentitySimplifications(t *testing.T) {
	cases := []struct{ name, src string }{
		{"add0", `define i32 @f(i32 %x) { %r = add i32 %x, 0 ret i32 %r }`},
		{"mul1", `define i32 @f(i32 %x) { %r = mul i32 %x, 1 ret i32 %r }`},
		{"and-1", `define i32 @f(i32 %x) { %r = and i32 %x, -1 ret i32 %r }`},
		{"or0", `define i32 @f(i32 %x) { %r = or i32 %x, 0 ret i32 %r }`},
		{"xor0", `define i32 @f(i32 %x) { %r = xor i32 %x, 0 ret i32 %r }`},
		{"shl0", `define i32 @f(i32 %x) { %r = shl i32 %x, 0 ret i32 %r }`},
		{"udiv1", `define i32 @f(i32 %x) { %r = udiv i32 %x, 1 ret i32 %r }`},
		{"sub0", `define i32 @f(i32 %x) { %r = sub i32 %x, 0 ret i32 %r }`},
		{"selSame", `define i32 @f(i1 %c, i32 %x) { %r = select i1 %c, i32 %x, i32 %x ret i32 %r }`},
		{"uminMax", `define i8 @f(i8 %x) { %r = call i8 @llvm.umin.i8(i8 %x, i8 -1) ret i8 %r }`},
		{"umax0", `define i8 @f(i8 %x) { %r = call i8 @llvm.umax.i8(i8 %x, i8 0) ret i8 %r }`},
		{"freezeFreeze", `define i8 @f(i8 %x) { %a = freeze i8 %x %b = freeze i8 %a ret i8 %b }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := optimize(t, tc.src, Options{})
			if n := g.NumInstrs(true); n > 1 {
				t.Fatalf("expected at most one instruction, got %d:\n%s", n, g)
			}
		})
	}
}

func TestXorChainCancels(t *testing.T) {
	g := optimize(t, `define i32 @f(i32 %x) {
  %a = xor i32 %x, 1234
  %b = xor i32 %a, 1234
  ret i32 %b
}`, Options{})
	if n := g.NumInstrs(true); n != 0 {
		t.Fatalf("xor chain should cancel, got:\n%s", g)
	}
}

func TestCanonicalizeConstantRHS(t *testing.T) {
	g := optimize(t, `define i32 @f(i32 %x) {
  %r = add i32 7, %x
  ret i32 %r
}`, Options{})
	in := g.Entry().Instrs[0]
	if ir.IsConst(in.Args[0]) || !ir.IsConst(in.Args[1]) {
		t.Fatalf("constant should be canonicalized to RHS: %s", in)
	}
}

func TestSubToAdd(t *testing.T) {
	g := optimize(t, `define i32 @f(i32 %x) {
  %r = sub i32 %x, 5
  ret i32 %r
}`, Options{})
	in := g.Entry().Instrs[0]
	if in.Op != ir.OpAdd {
		t.Fatalf("sub x, c should canonicalize to add: %s", in)
	}
	if c, ok := constIntOf(in.Args[1]); !ok || ir.SignExt(c, 32) != -5 {
		t.Fatalf("expected add %%x, -5, got %s", in)
	}
}

func TestMulPow2ToShl(t *testing.T) {
	g := optimize(t, `define i32 @f(i32 %x) {
  %r = mul nsw i32 %x, 8
  ret i32 %r
}`, Options{})
	in := g.Entry().Instrs[0]
	if in.Op != ir.OpShl {
		t.Fatalf("mul by 8 should become shl: %s", in)
	}
	if c, _ := constIntOf(in.Args[1]); c != 3 {
		t.Fatalf("expected shift by 3, got %s", in)
	}
}

func TestAddChainReassociates(t *testing.T) {
	g := optimize(t, `define i32 @f(i32 %x) {
  %a = add i32 %x, 10
  %b = add i32 %a, 20
  ret i32 %b
}`, Options{})
	if n := g.NumInstrs(true); n != 1 {
		t.Fatalf("add chain should fuse, got:\n%s", g)
	}
	if c, _ := constIntOf(g.Entry().Instrs[0].Args[1]); c != 30 {
		t.Fatalf("expected add %%x, 30:\n%s", g)
	}
}

func TestMinMaxChainCompresses(t *testing.T) {
	g := optimize(t, `define i32 @f(i32 %x) {
  %a = call i32 @llvm.umin.i32(i32 %x, i32 100)
  %b = call i32 @llvm.umin.i32(i32 %a, i32 50)
  ret i32 %b
}`, Options{})
	if n := g.NumInstrs(true); n != 1 {
		t.Fatalf("umin chain should compress:\n%s", g)
	}
	if c, _ := constIntOf(g.Entry().Instrs[0].Args[1]); c != 50 {
		t.Fatalf("expected umin(x, 50):\n%s", g)
	}
}

func TestSelectCanonicalizesToSmax(t *testing.T) {
	g := optimize(t, `define i32 @f(i32 %x) {
  %c = icmp sgt i32 %x, 0
  %r = select i1 %c, i32 %x, i32 0
  ret i32 %r
}`, Options{})
	if n := g.NumInstrs(true); n != 1 {
		t.Fatalf("expected one instruction:\n%s", g)
	}
	in := g.Entry().Instrs[0]
	if in.Op != ir.OpCall || ir.IntrinsicBase(in.Callee) != "smax" {
		t.Fatalf("expected smax canonicalization, got %s", in)
	}
}

func TestDCE(t *testing.T) {
	g := optimize(t, `define i32 @f(i32 %x) {
  %dead = mul i32 %x, %x
  %dead2 = add i32 %dead, 3
  %r = add i32 %x, 1
  ret i32 %r
}`, Options{})
	if n := g.NumInstrs(true); n != 1 {
		t.Fatalf("dead code should be removed:\n%s", g)
	}
}

func TestDivByZeroNotFolded(t *testing.T) {
	g := optimize(t, `define i32 @f() {
  %r = udiv i32 10, 0
  ret i32 %r
}`, Options{})
	if n := g.NumInstrs(true); n != 1 {
		t.Fatalf("udiv by zero must be preserved:\n%s", g)
	}
}

// The paper's suboptimal functions must remain unoptimized by the baseline
// pipeline: they are the missed optimizations LPO is supposed to find.
func TestBaselineMissesPaperPatterns(t *testing.T) {
	cases := []struct {
		name, src string
		instrs    int // expected surviving instruction count (excluding ret)
	}{
		{"fig1b-clamp", `define i8 @src(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`, 4},
		{"fig4a-loadmerge", `define i32 @src(ptr %0) {
  %2 = load i16, ptr %0, align 2
  %3 = getelementptr i8, ptr %0, i64 2
  %4 = load i16, ptr %3, align 1
  %5 = zext i16 %4 to i32
  %6 = shl nuw i32 %5, 16
  %7 = zext i16 %2 to i32
  %8 = or disjoint i32 %6, %7
  ret i32 %8
}`, 7},
		{"fig4b-umaxchain", `define i8 @src(i8 %0) {
  %2 = call i8 @llvm.umax.i8(i8 %0, i8 1)
  %3 = shl nuw i8 %2, 1
  %4 = call i8 @llvm.umax.i8(i8 %3, i8 16)
  ret i8 %4
}`, 3},
		{"fig4c-fcmpord", `define i1 @src(double %0) {
  %2 = fcmp ord double %0, 0.000000e+00
  %3 = select i1 %2, double %0, double 0.000000e+00
  %4 = fcmp oeq double %3, 1.000000e+00
  ret i1 %4
}`, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := optimize(t, tc.src, Options{})
			if n := g.NumInstrs(true); n != tc.instrs {
				t.Fatalf("baseline changed the function (want %d instrs, got %d):\n%s",
					tc.instrs, n, g)
			}
		})
	}
}

// With the corresponding patch enabled, each paper pattern optimizes to the
// paper's target shape.
func TestPatchesFixPaperPatterns(t *testing.T) {
	cases := []struct {
		name, patch, src string
		maxInstrs        int
		wantSubstr       string
	}{
		{"clamp", "143636", `define i8 @src(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`, 3, "llvm.smax.i32"},
		{"loadmerge", "128134", `define i32 @src(ptr %0) {
  %2 = load i16, ptr %0, align 2
  %3 = getelementptr i8, ptr %0, i64 2
  %4 = load i16, ptr %3, align 1
  %5 = zext i16 %4 to i32
  %6 = shl nuw i32 %5, 16
  %7 = zext i16 %2 to i32
  %8 = or disjoint i32 %6, %7
  ret i32 %8
}`, 1, "load i32, ptr %0"},
		{"umaxchain", "142711", `define i8 @src(i8 %0) {
  %2 = call i8 @llvm.umax.i8(i8 %0, i8 1)
  %3 = shl nuw i8 %2, 1
  %4 = call i8 @llvm.umax.i8(i8 %3, i8 16)
  ret i8 %4
}`, 2, "llvm.umax.i8"},
		{"fcmpord", "133367", `define i1 @src(double %0) {
  %2 = fcmp ord double %0, 0.000000e+00
  %3 = select i1 %2, double %0, double 0.000000e+00
  %4 = fcmp oeq double %3, 1.000000e+00
  ret i1 %4
}`, 1, "fcmp oeq double %0"},
		{"negxor", "157371", `define i32 @f(i32 %x) {
  %n = xor i32 %x, -1
  %r = add i32 %n, 1
  ret i32 %r
}`, 1, "sub i32 0, %x"},
		{"andashr", "163108", `define i32 @f(i32 %x) {
  %s = ashr i32 %x, 31
  %r = and i32 %s, %x
  ret i32 %r
}`, 1, "llvm.smin.i32"},
		{"absorption", "163108", `define i32 @f(i32 %x, i32 %y) {
  %a = and i32 %x, %y
  %r = or i32 %a, %x
  ret i32 %r
}`, 0, "ret i32 %x"},
		{"complmask", "142674", `define i32 @f(i32 %x) {
  %a = and i32 %x, -16
  %b = and i32 %x, 15
  %r = or i32 %a, %b
  ret i32 %r
}`, 0, "ret i32 %x"},
		{"lshrshl", "143211", `define i32 @f(i32 %x) {
  %a = shl i32 %x, 8
  %b = lshr i32 %a, 8
  ret i32 %b
}`, 1, "and i32 %x, 16777215"},
		{"selzeroone", "154238", `define i32 @f(i1 %c) {
  %r = select i1 %c, i32 1, i32 0
  ret i32 %r
}`, 1, "zext i1 %c to i32"},
		{"uminzext", "157315", `define i32 @f(i8 %x) {
  %z = zext i8 %x to i32
  %r = call i32 @llvm.umin.i32(i32 %z, i32 255)
  ret i32 %r
}`, 1, "zext i8 %x to i32"},
		{"ashrshl", "157370", `define i32 @f(i32 %x) {
  %a = shl i32 %x, 24
  %b = ashr i32 %a, 24
  ret i32 %b
}`, 2, "sext i8"},
		{"mulminus1", "157371", `define i32 @f(i32 %x) {
  %r = mul i32 %x, -1
  ret i32 %r
}`, 1, "sub i32 0, %x"},
		{"xorneg", "157524", `define i32 @f(i32 %x) {
  %n = sub i32 0, %x
  %r = xor i32 %n, -1
  ret i32 %r
}`, 1, "add i32 %x, -1"},
		{"shllshr", "166973", `define i32 @f(i32 %x) {
  %a = lshr i32 %x, 8
  %b = shl i32 %a, 8
  ret i32 %b
}`, 1, "and i32 %x, -256"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := optimize(t, tc.src, Options{Patches: []string{tc.patch}})
			if n := g.NumInstrs(true); n > tc.maxInstrs {
				t.Fatalf("patch %s did not fire (want <= %d instrs, got %d):\n%s",
					tc.patch, tc.maxInstrs, n, g)
			}
			if !strings.Contains(g.String(), tc.wantSubstr) {
				t.Fatalf("patched output missing %q:\n%s", tc.wantSubstr, g)
			}
		})
	}
}

// Patched results must agree with the original on concrete inputs.
func TestPatchesPreserveSemantics(t *testing.T) {
	srcs := map[string]string{
		"143636": `define i8 @src(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`,
		"142674": `define i8 @src(i8 %0) {
  %2 = call i8 @llvm.umax.i8(i8 %0, i8 1)
  %3 = shl nuw i8 %2, 1
  %4 = call i8 @llvm.umax.i8(i8 %3, i8 16)
  ret i8 %4
}`,
		"142711": `define i8 @f(i8 %x) {
  %s = ashr i8 %x, 7
  %r = and i8 %s, %x
  ret i8 %r
}`,
		"143211": `define i8 @f(i8 %x) {
  %a = shl i8 %x, 3
  %b = lshr i8 %a, 3
  ret i8 %b
}`,
		"157370": `define i8 @f(i8 %x) {
  %a = shl i8 %x, 4
  %b = ashr i8 %a, 4
  ret i8 %b
}`,
		"157524": `define i8 @f(i8 %x) {
  %n = sub i8 0, %x
  %r = xor i8 %n, -1
  ret i8 %r
}`,
		"166973": `define i8 @f(i8 %x) {
  %a = shl i8 %x, 3
  %b = lshr i8 %x, 5
  %r = or i8 %a, %b
  ret i8 %r
}`,
	}
	for patch, src := range srcs {
		t.Run(patch, func(t *testing.T) {
			f := parser.MustParseFunc(src)
			g := Run(f, Options{Patches: []string{patch}})
			// Exhaustive check over the 8-bit (or sampled 32-bit) domain.
			w := ir.ScalarBits(f.Params[0].Ty)
			var inputs []uint64
			if w <= 8 {
				for v := uint64(0); v <= ir.MaskW(w); v++ {
					inputs = append(inputs, v)
				}
			} else {
				inputs = []uint64{0, 1, 2, 127, 128, 255, 256, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF}
			}
			for _, v := range inputs {
				env := interp.Env{Args: []interp.RVal{interp.Scalar(f.Params[0].Ty, v)}}
				r1 := interp.Exec(f, env)
				r2 := interp.Exec(g, env)
				if r1.UB {
					continue // tgt may do anything
				}
				if r2.UB {
					t.Fatalf("input %d: patched function introduced UB: %s", v, r2.UBReason)
				}
				for i := range r1.Ret.Lanes {
					if r1.Ret.Lanes[i].Poison {
						continue // tgt lane unconstrained
					}
					if r2.Ret.Lanes[i].Poison || r2.Ret.Lanes[i].V != r1.Ret.Lanes[i].V {
						t.Fatalf("input %d: %s != %s\noriginal:\n%s\npatched:\n%s",
							v, r1.Ret.Format(), r2.Ret.Format(), f, g)
					}
				}
			}
		})
	}
}

func TestVectorClampPatch(t *testing.T) {
	src := `define <4 x i8> @src(<4 x i32> %v) {
  %c = icmp slt <4 x i32> %v, zeroinitializer
  %m = tail call <4 x i32> @llvm.umin.v4i32(<4 x i32> %v, <4 x i32> splat (i32 255))
  %t = trunc nuw <4 x i32> %m to <4 x i8>
  %r = select <4 x i1> %c, <4 x i8> zeroinitializer, <4 x i8> %t
  ret <4 x i8> %r
}`
	g := optimize(t, src, Options{Patches: []string{"143636"}})
	if !strings.Contains(g.String(), "llvm.smax.v4i32") {
		t.Fatalf("vector clamp patch did not fire:\n%s", g)
	}
}

func TestOptimizerIsIdempotent(t *testing.T) {
	srcs := []string{
		`define i32 @f(i32 %x) { %a = add i32 %x, 10 %b = add i32 %a, 20 ret i32 %b }`,
		`define i8 @f(i8 %x) { %a = call i8 @llvm.umin.i8(i8 %x, i8 100) %b = call i8 @llvm.umin.i8(i8 %a, i8 50) ret i8 %b }`,
		`define i32 @f(i32 %x) { %c = icmp sgt i32 %x, 0 %r = select i1 %c, i32 %x, i32 0 ret i32 %r }`,
	}
	for _, src := range srcs {
		f := parser.MustParseFunc(src)
		g1 := RunO3(f)
		g2 := RunO3(g1)
		if ir.Hash(g1) != ir.Hash(g2) {
			t.Fatalf("optimizer not idempotent:\nfirst:\n%s\nsecond:\n%s", g1, g2)
		}
	}
}
