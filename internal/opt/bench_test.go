package opt

import (
	"sort"
	"testing"

	"repro/internal/parser"
)

// dispatchSrc is a straight-line function chosen so that no rule fires: the
// benchmark then measures pure dispatch cost (guard checks and rule lookup),
// which is what the registry refactor changed. Every instruction still has
// candidate rules rooted at its opcode, so both strategies do real work.
const dispatchSrc = `define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, %y
  %b = xor i32 %a, %y
  %c = or i32 %b, %x
  %d = and i32 %c, %y
  %e = shl i32 %d, %x
  %s = sub i32 %e, %x
  %g = icmp ult i32 %s, %y
  %h = select i1 %g, i32 %s, i32 %x
  %m = call i32 @llvm.umin.i32(i32 %h, i32 %y)
  ret i32 %m
}`

// BenchmarkRewriteDispatch compares the seed dispatch strategy (re-sort the
// enabled rule names and scan every optional rule, per instruction) against
// the registry's opcode-indexed tables, with all patches and the full
// knowledge base enabled. The acceptance bar of the registry refactor is
// that opcode-index is no slower than seed-linear-scan.
func BenchmarkRewriteDispatch(b *testing.B) {
	f := parser.MustParseFunc(dispatchSrc)
	all := AllRuleNames()
	rs := NewRuleSet(Options{Patches: all})
	tr := &transform{fn: f, rs: rs, hits: make(map[string]int)}
	tr.seedNames()
	instrs := f.Instrs()

	b.Run("opcode-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, in := range instrs {
				if _, _, ok := tr.applyRules(in, nil); ok {
					b.Fatal("benchmark function must be a dispatch no-op")
				}
			}
		}
	})

	// The seed path: the hardcoded baseline rewrite chain, then the enabled
	// optional names re-sorted per instruction and every one of their rules
	// scanned regardless of root opcode (rewrite.go:33-48 at the seed).
	enabled := make(map[string]bool, len(all))
	for _, n := range all {
		enabled[n] = true
	}
	baselineChain := []ruleFn{
		rewriteSelectToMinMax, rewriteSelectBoolInvert, rewriteZextOfTrunc,
		rewriteAndOfZextCover, rewriteUdivUremPow2,
	}
	b.Run("seed-linear-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, in := range instrs {
				fired := false
				for _, fn := range baselineChain {
					if _, _, ok := fn(tr, in, nil); ok {
						fired = true
						break
					}
				}
				if !fired && len(enabled) > 0 {
					names := make([]string, 0, len(enabled))
					for n := range enabled {
						names = append(names, n)
					}
					sort.Strings(names)
				scan:
					for _, n := range names {
						for _, r := range optionalByName[n] {
							if _, _, ok := r.apply(tr, in, nil); ok {
								fired = true
								break scan
							}
						}
					}
				}
				if fired {
					b.Fatal("benchmark function must be a dispatch no-op")
				}
			}
		}
	})
}

// BenchmarkRuleSetBuild measures the once-per-Run cost of resolving Options
// into an opcode-indexed RuleSet with everything enabled.
func BenchmarkRuleSetBuild(b *testing.B) {
	all := AllRuleNames()
	for i := 0; i < b.N; i++ {
		NewRuleSet(Options{Patches: all})
	}
}
