package opt

import (
	"math"

	"repro/internal/ir"
)

// patchRuleDefs lists the modelled LLVM fixes keyed by the paper's
// fixed-issue IDs (Table 5); issues 157371 and 163108 landed as two patches
// each, so they contribute two rules sharing one enable name. The pattern
// families are synthetic reconstructions aligned with the paper's case
// studies (§4.3): 128134 is the consecutive load merge (Figure 4a/4d),
// 142711 is the umax-shl chain (Figure 4b/4e), and 133367 is the
// fcmp-ord-select elimination (Figure 4c/4f). Each family is a genuine
// refinement the baseline optimizer misses.
func patchRuleDefs() []*Rule {
	mk := func(id, name, doc, example string, fn ruleFn, roots ...ir.Opcode) *Rule {
		return &Rule{
			ID: id, Name: name, Provenance: ProvPatch,
			Roots: roots, Doc: doc, Example: example, apply: fn,
		}
	}
	return []*Rule{
		mk("128134/load-merge", "128134",
			"or disjoint (shl (zext (load hi)), w/2), zext (load lo) -> wide load",
			`define i32 @src(ptr %0) {
  %2 = load i16, ptr %0, align 2
  %3 = getelementptr i8, ptr %0, i64 2
  %4 = load i16, ptr %3, align 1
  %5 = zext i16 %4 to i32
  %6 = shl nuw i32 %5, 16
  %7 = zext i16 %2 to i32
  %8 = or disjoint i32 %6, %7
  ret i32 %8
}`, patchLoadMerge, ir.OpOr),
		mk("133367/fcmp-ord-select", "133367",
			"fcmp oeq (select (fcmp ord X, _), X, 0), C -> fcmp oeq X, C",
			`define i1 @src(double %0) {
  %2 = fcmp ord double %0, 0.000000e+00
  %3 = select i1 %2, double %0, double 0.000000e+00
  %4 = fcmp oeq double %3, 1.000000e+00
  ret i1 %4
}`, patchFcmpOrdSelect, ir.OpFCmp),
		mk("142674/compl-mask-or", "142674",
			"or (and X, C), (and X, ~C) -> X",
			`define i32 @f(i32 %x) {
  %a = and i32 %x, -16
  %b = and i32 %x, 15
  %r = or i32 %a, %b
  ret i32 %r
}`, patchComplMaskOr, ir.OpOr),
		mk("142711/umax-shl-chain", "142711",
			"umax (shl nuw (umax(X, C1)), k), C2 -> umax (shl nuw X, k), C2 when C1<<k <= C2",
			`define i8 @src(i8 %0) {
  %2 = call i8 @llvm.umax.i8(i8 %0, i8 1)
  %3 = shl nuw i8 %2, 1
  %4 = call i8 @llvm.umax.i8(i8 %3, i8 16)
  ret i8 %4
}`, patchUmaxShlChain, ir.OpCall),
		mk("143211/lshr-shl-mask", "143211",
			"lshr (shl X, C), C -> and X, lowmask",
			`define i32 @f(i32 %x) {
  %a = shl i32 %x, 8
  %b = lshr i32 %a, 8
  ret i32 %b
}`, patchLshrShlMask, ir.OpLShr),
		mk("143636/clamp-smax", "143636",
			"select (X<0), 0, umin(X, C) -> umin(smax(X, 0), C)",
			`define i8 @src(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`, patchClampSmax, ir.OpSelect),
		mk("154238/select-zero-one", "154238",
			"select C, 1, 0 -> zext C",
			`define i32 @f(i1 %c) {
  %r = select i1 %c, i32 1, i32 0
  ret i32 %r
}`, patchSelectZeroOne, ir.OpSelect),
		mk("157315/umin-zext-cover", "157315",
			"umin (zext X, C>=xmax) -> zext X",
			`define i32 @f(i8 %x) {
  %z = zext i8 %x to i32
  %r = call i32 @llvm.umin.i32(i32 %z, i32 255)
  ret i32 %r
}`, patchUminZextCover, ir.OpCall),
		mk("157370/ashr-shl-sext", "157370",
			"ashr (shl X, C), C -> sext (trunc X)",
			`define i32 @f(i32 %x) {
  %a = shl i32 %x, 24
  %b = ashr i32 %a, 24
  ret i32 %b
}`, patchAshrShlSext, ir.OpAShr),
		mk("157371/mul-minus-one", "157371",
			"mul X, -1 -> sub 0, X",
			`define i32 @f(i32 %x) {
  %r = mul i32 %x, -1
  ret i32 %r
}`, patchMulMinusOne, ir.OpMul),
		mk("157371/neg-via-xor", "157371",
			"add (xor X, -1), 1 -> sub 0, X",
			`define i32 @f(i32 %x) {
  %n = xor i32 %x, -1
  %r = add i32 %n, 1
  ret i32 %r
}`, patchNegViaXor, ir.OpAdd),
		mk("157524/xor-neg-not", "157524",
			"xor (sub 0, X), -1 -> add X, -1",
			`define i32 @f(i32 %x) {
  %n = sub i32 0, %x
  %r = xor i32 %n, -1
  ret i32 %r
}`, patchXorNegNot, ir.OpXor),
		mk("163108/absorption", "163108",
			"or (X, and(X, Y)) -> X; and (X, or(X, Y)) -> X",
			`define i32 @f(i32 %x, i32 %y) {
  %a = and i32 %x, %y
  %r = or i32 %a, %x
  ret i32 %r
}`, patchAbsorption, ir.OpOr, ir.OpAnd),
		mk("163108/and-ashr-sign", "163108",
			"and (ashr X, w-1), X -> smin(X, 0)",
			`define i32 @f(i32 %x) {
  %s = ashr i32 %x, 31
  %r = and i32 %s, %x
  ret i32 %r
}`, patchAndAshrSign, ir.OpAnd),
		mk("166973/shl-lshr-mask", "166973",
			"shl (lshr X, C), C -> and X, highmask",
			`define i32 @f(i32 %x) {
  %a = lshr i32 %x, 8
  %b = shl i32 %a, 8
  ret i32 %b
}`, patchShlLshrMask, ir.OpShl),
	}
}

func patchClampSmax(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpSelect {
		return nil, nil, false
	}
	cmp, ok := in.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp || cmp.IPredV != ir.SLT || !isZeroConst(cmp.Args[1]) {
		return nil, nil, false
	}
	x := cmp.Args[0]
	if !isZeroConst(in.Args[1]) {
		return nil, nil, false
	}
	makeClamp := func(umin *ir.Instr) (*ir.Instr, *ir.Instr) {
		ty := x.Type()
		smax := ir.CallI(t.freshName(), ir.IntrinsicName("smax", ty), ty, x, ir.SplatInt(ty, 0))
		umin2 := ir.CallI(t.freshName(), umin.Callee, ty, smax, umin.Args[1])
		return smax, umin2
	}
	// Form A: select(X<0, 0, umin(X, C)).
	if umin, ok := asIntrinsic(in.Args[2], "umin"); ok && sameValue(umin.Args[0], x) {
		smax, umin2 := makeClamp(umin)
		return []*ir.Instr{smax, umin2}, umin2, true
	}
	// Form B: select(X<0, 0, trunc [nuw] (umin(X, C))).
	if tr, ok := asInstr(in.Args[2], ir.OpTrunc); ok {
		if umin, ok2 := asIntrinsic(tr.Args[0], "umin"); ok2 && sameValue(umin.Args[0], x) {
			if c, okc := constIntOf(umin.Args[1]); okc && c <= ir.MaskW(scalarWidth(in)) {
				smax, umin2 := makeClamp(umin)
				tr2 := ir.Conv(ir.OpTrunc, t.freshName(), umin2, in.Ty, tr.Flags)
				return []*ir.Instr{smax, umin2, tr2}, tr2, true
			}
		}
	}
	return nil, nil, false
}

func patchLoadMerge(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpOr || !in.Flags.Has(ir.Disjoint) || ir.IsVector(in.Ty) {
		return nil, nil, false
	}
	match := func(hiSide, loSide ir.Value) ([]*ir.Instr, ir.Value, bool) {
		shl, ok := asInstr(hiSide, ir.OpShl)
		if !ok {
			return nil, nil, false
		}
		shAmt, ok := constIntOf(shl.Args[1])
		if !ok {
			return nil, nil, false
		}
		zextHi, ok := asInstr(shl.Args[0], ir.OpZExt)
		if !ok {
			return nil, nil, false
		}
		zextLo, ok := asInstr(loSide, ir.OpZExt)
		if !ok {
			return nil, nil, false
		}
		loadHi, ok := asInstr(zextHi.Args[0], ir.OpLoad)
		if !ok {
			return nil, nil, false
		}
		loadLo, ok := asInstr(zextLo.Args[0], ir.OpLoad)
		if !ok {
			return nil, nil, false
		}
		halfBits := scalarWidth(loadLo)
		if scalarWidth(loadHi) != halfBits || int(shAmt) != halfBits ||
			scalarWidth(in) != 2*halfBits {
			return nil, nil, false
		}
		// The high load must be at loPtr + halfBits/8 bytes.
		gep, ok := asInstr(loadHi.Args[0], ir.OpGEP)
		if !ok || len(gep.Args) != 2 || gep.Args[0] != loadLo.Args[0] {
			return nil, nil, false
		}
		idx, ok := constIntOf(gep.Args[1])
		if !ok {
			return nil, nil, false
		}
		offBytes := int64(idx) * int64(ir.StoreBytes(gep.ElemTy))
		if offBytes != int64(halfBits/8) {
			return nil, nil, false
		}
		align := loadLo.Align
		wide := ir.LoadI(t.freshName(), in.Ty, loadLo.Args[0], align)
		return []*ir.Instr{wide}, wide, true
	}
	if news, v, ok := match(in.Args[0], in.Args[1]); ok {
		return news, v, ok
	}
	return match(in.Args[1], in.Args[0])
}

func patchUmaxShlChain(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	outer, ok := asIntrinsic(in, "umax")
	if !ok || len(in.Args) != 2 {
		return nil, nil, false
	}
	c2, ok := constIntOf(outer.Args[1])
	if !ok {
		return nil, nil, false
	}
	shl, ok := asInstr(outer.Args[0], ir.OpShl)
	if !ok || !shl.Flags.Has(ir.NUW) {
		return nil, nil, false
	}
	k, ok := constIntOf(shl.Args[1])
	if !ok {
		return nil, nil, false
	}
	innerMax, ok := asIntrinsic(shl.Args[0], "umax")
	if !ok || len(innerMax.Args) != 2 {
		return nil, nil, false
	}
	c1, ok := constIntOf(innerMax.Args[1])
	if !ok {
		return nil, nil, false
	}
	w := uint64(scalarWidth(in))
	if k >= w || c1 > ir.MaskW(int(w))>>k { // C1<<k must not overflow
		return nil, nil, false
	}
	if c1<<k > c2 {
		return nil, nil, false
	}
	x := innerMax.Args[0]
	shl2 := ir.Bin(ir.OpShl, t.freshName(), shl.Flags, x, shl.Args[1])
	umax2 := ir.CallI(t.freshName(), outer.Callee, in.Ty, shl2, outer.Args[1])
	return []*ir.Instr{shl2, umax2}, umax2, true
}

func patchFcmpOrdSelect(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpFCmp || in.FPredV != ir.OEQ {
		return nil, nil, false
	}
	c, ok := in.Args[1].(*ir.ConstFloat)
	if !ok || c.F == 0 || math.IsNaN(c.F) {
		return nil, nil, false
	}
	sel, ok := asInstr(in.Args[0], ir.OpSelect)
	if !ok {
		return nil, nil, false
	}
	ord, ok := asInstr(sel.Args[0], ir.OpFCmp)
	if !ok || ord.FPredV != ir.ORD {
		return nil, nil, false
	}
	x := ord.Args[0]
	if k, isC := ord.Args[1].(*ir.ConstFloat); !isC || math.IsNaN(k.F) {
		return nil, nil, false
	}
	if sel.Args[1] != x {
		return nil, nil, false
	}
	if z, isC := sel.Args[2].(*ir.ConstFloat); !isC || z.F != 0 {
		return nil, nil, false
	}
	cmp := ir.FCmpI(t.freshName(), ir.OEQ, x, in.Args[1])
	return []*ir.Instr{cmp}, cmp, true
}

// patchComplMaskOr rewrites or (and X, C1), (and X, C2) -> X when C1 and C2
// are disjoint and together cover every bit.
func patchComplMaskOr(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpOr {
		return nil, nil, false
	}
	a, ok1 := asInstr(in.Args[0], ir.OpAnd)
	b, ok2 := asInstr(in.Args[1], ir.OpAnd)
	if !ok1 || !ok2 || a.Args[0] != b.Args[0] {
		return nil, nil, false
	}
	c1, okc1 := constIntOf(a.Args[1])
	c2, okc2 := constIntOf(b.Args[1])
	if !okc1 || !okc2 {
		return nil, nil, false
	}
	mask := ir.MaskW(scalarWidth(in))
	if c1&c2 != 0 || (c1|c2)&mask != mask {
		return nil, nil, false
	}
	return nil, a.Args[0], true
}

// patchAbsorption rewrites or(X, and(X, Y)) -> X and and(X, or(X, Y)) -> X.
func patchAbsorption(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	var innerOp ir.Opcode
	switch in.Op {
	case ir.OpOr:
		innerOp = ir.OpAnd
	case ir.OpAnd:
		innerOp = ir.OpOr
	default:
		return nil, nil, false
	}
	match := func(x, other ir.Value) (ir.Value, bool) {
		inner, ok := asInstr(other, innerOp)
		if !ok {
			return nil, false
		}
		if inner.Args[0] == x || inner.Args[1] == x {
			return x, true
		}
		return nil, false
	}
	if v, ok := match(in.Args[0], in.Args[1]); ok {
		return nil, v, true
	}
	if v, ok := match(in.Args[1], in.Args[0]); ok {
		return nil, v, true
	}
	return nil, nil, false
}

func patchAndAshrSign(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpAnd {
		return nil, nil, false
	}
	match := func(a, b ir.Value) ([]*ir.Instr, ir.Value, bool) {
		sh, ok := asInstr(a, ir.OpAShr)
		if !ok {
			return nil, nil, false
		}
		c, ok := constIntOf(sh.Args[1])
		if !ok || int(c) != scalarWidth(in)-1 || sh.Args[0] != b {
			return nil, nil, false
		}
		smin := ir.CallI(t.freshName(), ir.IntrinsicName("smin", in.Ty), in.Ty, b, ir.SplatInt(in.Ty, 0))
		return []*ir.Instr{smin}, smin, true
	}
	if news, v, ok := match(in.Args[0], in.Args[1]); ok {
		return news, v, ok
	}
	return match(in.Args[1], in.Args[0])
}

func patchLshrShlMask(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpLShr {
		return nil, nil, false
	}
	c, ok := constIntOf(in.Args[1])
	if !ok {
		return nil, nil, false
	}
	shl, ok := asInstr(in.Args[0], ir.OpShl)
	if !ok {
		return nil, nil, false
	}
	c2, ok := constIntOf(shl.Args[1])
	if !ok || c != c2 || c >= uint64(scalarWidth(in)) {
		return nil, nil, false
	}
	mask := ir.MaskW(scalarWidth(in)) >> c
	and := ir.Bin(ir.OpAnd, t.freshName(), ir.NoFlags, shl.Args[0],
		ir.SplatInt(in.Ty, ir.SignExt(mask, scalarWidth(in))))
	return []*ir.Instr{and}, and, true
}

// patchShlLshrMask rewrites shl (lshr X, C), C -> and X, (mask << C).
func patchShlLshrMask(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpShl || in.Flags != ir.NoFlags {
		return nil, nil, false
	}
	c, ok := constIntOf(in.Args[1])
	if !ok {
		return nil, nil, false
	}
	lshr, ok := asInstr(in.Args[0], ir.OpLShr)
	if !ok || lshr.Flags != ir.NoFlags {
		return nil, nil, false
	}
	c2, ok := constIntOf(lshr.Args[1])
	if !ok || c != c2 || c >= uint64(scalarWidth(in)) {
		return nil, nil, false
	}
	w := scalarWidth(in)
	mask := (ir.MaskW(w) << c) & ir.MaskW(w)
	and := ir.Bin(ir.OpAnd, t.freshName(), ir.NoFlags, lshr.Args[0],
		ir.SplatInt(in.Ty, ir.SignExt(mask, w)))
	return []*ir.Instr{and}, and, true
}

func patchSelectZeroOne(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpSelect || !ir.IsInt(in.Ty) || scalarWidth(in) == 1 {
		return nil, nil, false
	}
	if ir.Lanes(in.Args[0].Type()) != ir.Lanes(in.Ty) {
		return nil, nil, false
	}
	tc, okT := constIntOf(in.Args[1])
	fc, okF := constIntOf(in.Args[2])
	if !okT || !okF || tc != 1 || fc != 0 {
		return nil, nil, false
	}
	z := ir.Conv(ir.OpZExt, t.freshName(), in.Args[0], in.Ty, ir.NoFlags)
	return []*ir.Instr{z}, z, true
}

func patchUminZextCover(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	um, ok := asIntrinsic(in, "umin")
	if !ok || len(in.Args) != 2 {
		return nil, nil, false
	}
	z, ok := asInstr(um.Args[0], ir.OpZExt)
	if !ok {
		return nil, nil, false
	}
	c, ok := constIntOf(um.Args[1])
	if !ok {
		return nil, nil, false
	}
	if c >= ir.MaskW(scalarWidth(z.Args[0])) {
		return nil, z, true
	}
	return nil, nil, false
}

func patchAshrShlSext(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpAShr {
		return nil, nil, false
	}
	c, ok := constIntOf(in.Args[1])
	if !ok {
		return nil, nil, false
	}
	shl, ok := asInstr(in.Args[0], ir.OpShl)
	if !ok || shl.Flags != ir.NoFlags {
		return nil, nil, false
	}
	c2, ok := constIntOf(shl.Args[1])
	if !ok || c != c2 {
		return nil, nil, false
	}
	w := scalarWidth(in)
	if int(c) <= 0 || int(c) >= w {
		return nil, nil, false
	}
	narrow := ir.WithLanes(in.Ty, ir.IntT(w-int(c)))
	tr := ir.Conv(ir.OpTrunc, t.freshName(), shl.Args[0], narrow, ir.NoFlags)
	se := ir.Conv(ir.OpSExt, t.freshName(), tr, in.Ty, ir.NoFlags)
	return []*ir.Instr{tr, se}, se, true
}

func patchMulMinusOne(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpMul || !isAllOnesConst(in.Args[1]) {
		return nil, nil, false
	}
	neg := &ir.Instr{Op: ir.OpSub, Nm: t.freshName(), Ty: in.Ty,
		Args: []ir.Value{ir.SplatInt(in.Ty, 0), in.Args[0]}}
	return []*ir.Instr{neg}, neg, true
}

func patchNegViaXor(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpAdd {
		return nil, nil, false
	}
	c, ok := constIntOf(in.Args[1])
	if !ok || c != 1 {
		return nil, nil, false
	}
	not, ok := asInstr(in.Args[0], ir.OpXor)
	if !ok || !isAllOnesConst(not.Args[1]) {
		return nil, nil, false
	}
	neg := &ir.Instr{Op: ir.OpSub, Nm: t.freshName(), Ty: in.Ty,
		Args: []ir.Value{ir.SplatInt(in.Ty, 0), not.Args[0]}}
	return []*ir.Instr{neg}, neg, true
}

func patchXorNegNot(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpXor || !isAllOnesConst(in.Args[1]) {
		return nil, nil, false
	}
	sub, ok := asInstr(in.Args[0], ir.OpSub)
	if !ok || !isZeroConst(sub.Args[0]) || sub.Flags != ir.NoFlags {
		return nil, nil, false
	}
	add := ir.Bin(ir.OpAdd, t.freshName(), ir.NoFlags, sub.Args[1], ir.SplatInt(in.Ty, -1))
	return []*ir.Instr{add}, add, true
}
