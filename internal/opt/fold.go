package opt

import (
	"math"

	"repro/internal/interp"
	"repro/internal/ir"
)

// constFold evaluates an instruction whose operands are all constants by
// executing it in the interpreter, and converts the result back into a
// constant. Folding is skipped when evaluation would be UB (e.g. division
// by a constant zero must be preserved) or when the opcode touches memory
// or control flow.
func (t *transform) constFold(in *ir.Instr) (ir.Value, bool) {
	switch in.Op {
	case ir.OpLoad, ir.OpStore, ir.OpGEP, ir.OpPhi, ir.OpBr, ir.OpRet,
		ir.OpUnreachable, ir.OpPtrToInt, ir.OpIntToPtr:
		return nil, false
	case ir.OpCall:
		if !interp.SupportedIntrinsic(in.Callee) {
			return nil, false
		}
	}
	if !in.HasResult() {
		return nil, false
	}
	for _, a := range in.Args {
		if !ir.IsConst(a) {
			return nil, false
		}
		if _, isUndef := a.(*ir.Undef); isUndef {
			// Folding undef requires choice semantics; leave it alone.
			return nil, false
		}
	}
	// Wrap the single instruction into a zero-parameter function and run it.
	clone := &ir.Instr{
		Op: in.Op, Nm: "v", Ty: in.Ty, Args: append([]ir.Value(nil), in.Args...),
		IPredV: in.IPredV, FPredV: in.FPredV, Flags: in.Flags,
		Callee: in.Callee, ElemTy: in.ElemTy, Align: in.Align,
	}
	fn := ir.NewFunc("fold", in.Ty, nil, []*ir.Instr{clone, ir.RetI(clone)})
	res := interp.Exec(fn, interp.Env{})
	if res.UB || !res.Completed {
		return nil, false
	}
	return ConstFromRVal(in.Ty, res.Ret)
}

// ConstFromRVal converts an interpreter value back into an IR constant.
func ConstFromRVal(ty ir.Type, rv interp.RVal) (ir.Value, bool) {
	elem := ir.Elem(ty)
	one := func(l interp.Word) (ir.Value, bool) {
		if l.Poison {
			return &ir.PoisonVal{Ty: elem}, true
		}
		switch e := elem.(type) {
		case ir.IntType:
			return &ir.ConstInt{Ty: e, V: l.V & ir.MaskW(e.W)}, true
		case ir.FloatType:
			// Reconstruct the float from its bits.
			return &ir.ConstFloat{Ty: e, F: bitsToFloat(e.W, l.V)}, true
		case ir.PtrType:
			if l.V == 0 {
				return &ir.Null{}, true
			}
			return nil, false
		}
		return nil, false
	}
	if !ir.IsVector(ty) {
		if len(rv.Lanes) != 1 {
			return nil, false
		}
		return one(rv.Lanes[0])
	}
	vt := ty.(ir.VecType)
	allPoison, allZero, uniform := true, true, true
	for i, l := range rv.Lanes {
		if !l.Poison {
			allPoison = false
		}
		if l.Poison || l.V != 0 {
			allZero = false
		}
		if l.Poison != rv.Lanes[0].Poison || l.V != rv.Lanes[0].V {
			_ = i
			uniform = false
		}
	}
	if allPoison {
		return &ir.PoisonVal{Ty: ty}, true
	}
	if allZero {
		return &ir.Zero{Ty: ty}, true
	}
	if uniform && !rv.Lanes[0].Poison {
		e, ok := one(rv.Lanes[0])
		if !ok {
			return nil, false
		}
		return &ir.Splat{Ty: vt, Elem: e}, true
	}
	elems := make([]ir.Value, len(rv.Lanes))
	for i, l := range rv.Lanes {
		e, ok := one(l)
		if !ok {
			return nil, false
		}
		elems[i] = e
	}
	return &ir.ConstVec{Ty: vt, Elems: elems}, true
}

func bitsToFloat(w int, bits uint64) float64 {
	if w == 32 {
		return float64(math.Float32frombits(uint32(bits)))
	}
	return math.Float64frombits(bits)
}
