package opt

import (
	"repro/internal/ir"
)

// canonicalize applies in-place rewrites that keep the instruction but
// normalize its shape: constants on the right-hand side, sub->add,
// mul-by-power-of-two->shl, reassociation of constant chains, and min/max
// chain compression. It reports whether the instruction changed.
func (t *transform) canonicalize(in *ir.Instr) bool {
	changed := false
	switch {
	case in.Op.IsIntBinary() && in.Op.IsCommutative():
		// Constant operands go on the RHS (LLVM's complexity ordering).
		if ir.IsConst(in.Args[0]) && !ir.IsConst(in.Args[1]) {
			in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
			changed = true
		}
	case in.Op == ir.OpICmp:
		if ir.IsConst(in.Args[0]) && !ir.IsConst(in.Args[1]) {
			in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
			in.IPredV = in.IPredV.Swapped()
			changed = true
		}
	case in.Op == ir.OpCall:
		switch ir.IntrinsicBase(in.Callee) {
		case "umin", "umax", "smin", "smax":
			if len(in.Args) == 2 && ir.IsConst(in.Args[0]) && !ir.IsConst(in.Args[1]) {
				in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
				changed = true
			}
		}
	}

	// sub X, C -> add X, -C.
	if in.Op == ir.OpSub && ir.IsInt(in.Ty) {
		if c, ok := constIntOf(in.Args[1]); ok {
			w := scalarWidth(in)
			in.Op = ir.OpAdd
			in.Args[1] = ir.SplatInt(in.Ty, -ir.SignExt(c, w))
			in.Flags = ir.NoFlags
			changed = true
		}
	}

	// mul X, 2^k -> shl X, k (flags carry over).
	if in.Op == ir.OpMul {
		if c, ok := constIntOf(in.Args[1]); ok && c != 0 && c&(c-1) == 0 && c != 1 {
			k := int64(0)
			for v := c; v > 1; v >>= 1 {
				k++
			}
			in.Op = ir.OpShl
			in.Args[1] = ir.SplatInt(in.Ty, k)
			changed = true
		}
	}

	// Reassociate constant chains: (X op C1) op C2 -> X op (C1 # C2).
	if in.Op == ir.OpAdd || in.Op == ir.OpAnd || in.Op == ir.OpOr || in.Op == ir.OpXor || in.Op == ir.OpMul {
		if c2, ok := constIntOf(in.Args[1]); ok {
			if inner, ok2 := asInstr(in.Args[0], in.Op); ok2 {
				if c1, ok3 := constIntOf(inner.Args[1]); ok3 {
					w := scalarWidth(in)
					mask := ir.MaskW(w)
					var folded uint64
					switch in.Op {
					case ir.OpAdd:
						folded = (c1 + c2) & mask
					case ir.OpAnd:
						folded = c1 & c2
					case ir.OpOr:
						folded = c1 | c2
					case ir.OpXor:
						folded = c1 ^ c2
					case ir.OpMul:
						folded = (c1 * c2) & mask
					}
					in.Args[0] = inner.Args[0]
					in.Args[1] = ir.SplatInt(in.Ty, ir.SignExt(folded, w))
					in.Flags = ir.NoFlags
					changed = true
				}
			}
		}
	}

	// shl (shl X, C1), C2 -> shl X, C1+C2 when in range.
	if in.Op == ir.OpShl {
		if c2, ok := constIntOf(in.Args[1]); ok {
			if inner, ok2 := asInstr(in.Args[0], ir.OpShl); ok2 {
				if c1, ok3 := constIntOf(inner.Args[1]); ok3 {
					w := uint64(scalarWidth(in))
					if c1+c2 < w {
						in.Args[0] = inner.Args[0]
						in.Args[1] = ir.SplatInt(in.Ty, int64(c1+c2))
						in.Flags = ir.NoFlags
						changed = true
					}
				}
			}
		}
	}

	// Compress min/max chains with constants:
	// umin(umin(X, C1), C2) -> umin(X, min(C1, C2)), etc.
	if in.Op == ir.OpCall && len(in.Args) == 2 {
		base := ir.IntrinsicBase(in.Callee)
		switch base {
		case "umin", "umax", "smin", "smax":
			if c2, ok := constIntOf(in.Args[1]); ok {
				if inner, ok2 := asIntrinsic(in.Args[0], base); ok2 && len(inner.Args) == 2 {
					if c1, ok3 := constIntOf(inner.Args[1]); ok3 {
						w := uint64(scalarWidth(in))
						var folded uint64
						switch base {
						case "umin":
							folded = uminU(c1, c2)
						case "umax":
							folded = umaxU(c1, c2)
						case "smin":
							folded = sminS(c1, c2, w)
						case "smax":
							folded = smaxS(c1, c2, w)
						}
						in.Args[0] = inner.Args[0]
						in.Args[1] = ir.SplatInt(in.Ty, ir.SignExt(folded, int(w)))
						changed = true
					}
				}
			}
		}
	}

	// Compose conversion chains of the same direction:
	// zext (zext X) -> zext X, sext (sext X) -> sext X, trunc (trunc X) -> trunc X.
	if in.Op == ir.OpZExt || in.Op == ir.OpSExt || in.Op == ir.OpTrunc {
		if inner, ok := asInstr(in.Args[0], in.Op); ok {
			in.Args[0] = inner.Args[0]
			in.Flags = ir.NoFlags
			changed = true
		}
	}
	return changed
}
