package opt

import (
	"repro/internal/ir"
)

// kbRuleDefs lists rewrite rules known to the *simulated LLM* but
// deliberately absent from both the baseline optimizer and the patch set:
// together with the patch rules they form the knowledge base that
// internal/llm consults when proposing candidates. Keeping them inside this
// package reuses the tested rewrite engine and guarantees every
// knowledge-base proposal is expressible as a (sound) rewrite.
//
// Rule names carry a "kb:" prefix so they can never be confused with the
// modelled LLVM patches.
func kbRuleDefs() []*Rule {
	mk := func(id, doc, example string, fn ruleFn, roots ...ir.Opcode) *Rule {
		return &Rule{
			ID: id, Name: id, Provenance: ProvKB,
			Roots: roots, Doc: doc, Example: example, apply: fn,
		}
	}
	return []*Rule{
		mk("kb:rotate", "or (shl X, C), (lshr X, w-C) -> fshl",
			`define i32 @f(i32 %x) {
  %a = shl i32 %x, 8
  %b = lshr i32 %x, 24
  %r = or i32 %a, %b
  ret i32 %r
}`, kbRotate, ir.OpOr),
		mk("kb:sat-umax", "uadd.sat(usub.sat(V, C), C) -> umax(V, C)",
			`define i8 @f(i8 %x) {
  %s = call i8 @llvm.usub.sat.i8(i8 %x, i8 10)
  %r = call i8 @llvm.uadd.sat.i8(i8 %s, i8 10)
  ret i8 %r
}`, kbSatUmax, ir.OpCall),
		mk("kb:minmax-const", "umin(umax(V, hi), lo), lo < hi -> lo",
			`define i8 @f(i8 %x) {
  %a = call i8 @llvm.umax.i8(i8 %x, i8 100)
  %r = call i8 @llvm.umin.i8(i8 %a, i8 10)
  ret i8 %r
}`, kbMinMaxConst, ir.OpCall),
		mk("kb:umin-umax-leaf", "umin(V, umax(V, U)) -> V",
			`define i8 @f(i8 %x, i8 %y) {
  %a = call i8 @llvm.umax.i8(i8 %x, i8 %y)
  %r = call i8 @llvm.umin.i8(i8 %x, i8 %a)
  ret i8 %r
}`, kbUminUmaxLeaf, ir.OpCall),
		mk("kb:dead-store", "store (load P), P -> (removed)",
			`define void @f(ptr %p) {
  %v = load i32, ptr %p, align 4
  store i32 %v, ptr %p, align 4
  ret void
}`, kbDeadStore, ir.OpStore),
		mk("kb:ctpop-bit", "ctpop (and X, 1) -> and X, 1",
			`define i8 @f(i8 %x) {
  %a = and i8 %x, 1
  %r = call i8 @llvm.ctpop.i8(i8 %a)
  ret i8 %r
}`, kbCtpopBit, ir.OpCall),
		mk("kb:xor-and-or", "xor (and X, Y), (or X, Y) -> xor X, Y",
			`define i8 @f(i8 %x, i8 %y) {
  %a = and i8 %x, %y
  %o = or i8 %x, %y
  %r = xor i8 %a, %o
  ret i8 %r
}`, kbXorAndOr, ir.OpXor),
		mk("kb:sub-or-and", "sub (or X, Y), (and X, Y) -> xor X, Y",
			`define i8 @f(i8 %x, i8 %y) {
  %o = or i8 %x, %y
  %a = and i8 %x, %y
  %r = sub i8 %o, %a
  ret i8 %r
}`, kbSubOrAnd, ir.OpSub),
		mk("kb:add-and-or", "add (and X, Y), (or X, Y) -> add X, Y",
			`define i8 @f(i8 %x, i8 %y) {
  %a = and i8 %x, %y
  %o = or i8 %x, %y
  %r = add i8 %a, %o
  ret i8 %r
}`, kbAddAndOr, ir.OpAdd),
		mk("kb:select-eq-zero", "select (icmp eq X, 0), 0, X -> X",
			`define i8 @f(i8 %x) {
  %c = icmp eq i8 %x, 0
  %r = select i1 %c, i8 0, i8 %x
  ret i8 %r
}`, kbSelectEqZero, ir.OpSelect),
		mk("kb:and-not-self", "and (xor X, -1), X -> 0",
			`define i8 @f(i8 %x) {
  %n = xor i8 %x, -1
  %r = and i8 %n, %x
  ret i8 %r
}`, kbAndNotSelf, ir.OpAnd),
		mk("kb:or-not-self", "or (xor X, -1), X -> -1",
			`define i8 @f(i8 %x) {
  %n = xor i8 %x, -1
  %r = or i8 %n, %x
  ret i8 %r
}`, kbOrNotSelf, ir.OpOr),
		mk("kb:icmp-known-bits", "icmp ult (and X, L), H, L < H -> true",
			`define i1 @f(i8 %x) {
  %a = and i8 %x, 15
  %r = icmp ult i8 %a, 16
  ret i1 %r
}`, kbICmpKnownBits, ir.OpICmp),
		mk("kb:mul-udiv-cancel", "udiv (mul nuw X, C), C -> X",
			`define i8 @f(i8 %x) {
  %m = mul nuw i8 %x, 3
  %r = udiv i8 %m, 3
  ret i8 %r
}`, kbMulUdivCancel, ir.OpUDiv),
		mk("kb:fneg-fneg", "fneg (fneg X) -> X",
			`define double @f(double %x) {
  %a = fneg double %x
  %r = fneg double %a
  ret double %r
}`, kbFnegFneg, ir.OpFNeg),
		mk("kb:and-lshr-bit", "and (lshr X, w-1), 1 -> lshr X, w-1",
			`define i8 @f(i8 %x) {
  %s = lshr i8 %x, 7
  %r = and i8 %s, 1
  ret i8 %r
}`, kbAndLshrBit, ir.OpAnd),
		mk("kb:sub-add-cancel", "sub (add X, Y), Y -> X",
			`define i8 @f(i8 %x, i8 %y) {
  %a = add i8 %x, %y
  %r = sub i8 %a, %y
  ret i8 %r
}`, kbSubAddCancel, ir.OpSub),
		mk("kb:add-sub-cancel", "add (sub X, Y), Y -> X",
			`define i8 @f(i8 %x, i8 %y) {
  %s = sub i8 %x, %y
  %r = add i8 %s, %y
  ret i8 %r
}`, kbAddSubCancel, ir.OpAdd),
		mk("kb:compl-mask-self", "or (and X, Y), (and X, ~Y) -> X",
			`define i8 @f(i8 %x, i8 %y) {
  %n = xor i8 %y, -1
  %a = and i8 %x, %y
  %b = and i8 %x, %n
  %r = or i8 %a, %b
  ret i8 %r
}`, kbComplMaskSelf, ir.OpOr),
	}
}

func kbRotate(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpOr || !ir.IsInt(in.Ty) {
		return nil, nil, false
	}
	w := uint64(scalarWidth(in))
	match := func(a, b ir.Value) ([]*ir.Instr, ir.Value, bool) {
		shl, ok := asInstr(a, ir.OpShl)
		if !ok {
			return nil, nil, false
		}
		lshr, ok := asInstr(b, ir.OpLShr)
		if !ok || shl.Args[0] != lshr.Args[0] {
			return nil, nil, false
		}
		c1, ok1 := constIntOf(shl.Args[1])
		c2, ok2 := constIntOf(lshr.Args[1])
		if !ok1 || !ok2 || c1 == 0 || c1 >= w || c1+c2 != w {
			return nil, nil, false
		}
		x := shl.Args[0]
		rot := ir.CallI(t.freshName(), ir.IntrinsicName("fshl", in.Ty), in.Ty,
			x, x, ir.SplatInt(in.Ty, int64(c1)))
		return []*ir.Instr{rot}, rot, true
	}
	if news, v, ok := match(in.Args[0], in.Args[1]); ok {
		return news, v, ok
	}
	return match(in.Args[1], in.Args[0])
}

func kbSatUmax(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	add, ok := asIntrinsic(in, "uadd.sat")
	if !ok || len(in.Args) != 2 {
		return nil, nil, false
	}
	c, ok := constIntOf(add.Args[1])
	if !ok {
		return nil, nil, false
	}
	sub, ok := asIntrinsic(add.Args[0], "usub.sat")
	if !ok || len(sub.Args) != 2 {
		return nil, nil, false
	}
	c2, ok := constIntOf(sub.Args[1])
	if !ok || c != c2 {
		return nil, nil, false
	}
	umax := ir.CallI(t.freshName(), ir.IntrinsicName("umax", in.Ty), in.Ty,
		sub.Args[0], add.Args[1])
	return []*ir.Instr{umax}, umax, true
}

func kbMinMaxConst(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	um, ok := asIntrinsic(in, "umin")
	if !ok || len(in.Args) != 2 {
		return nil, nil, false
	}
	lo, ok := constIntOf(um.Args[1])
	if !ok {
		return nil, nil, false
	}
	umax, ok := asIntrinsic(um.Args[0], "umax")
	if !ok || len(umax.Args) != 2 {
		return nil, nil, false
	}
	hi, ok := constIntOf(umax.Args[1])
	if !ok || lo >= hi {
		return nil, nil, false
	}
	return nil, ir.SplatInt(in.Ty, ir.SignExt(lo, scalarWidth(in))), true
}

func kbUminUmaxLeaf(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	um, ok := asIntrinsic(in, "umin")
	if !ok || len(in.Args) != 2 {
		return nil, nil, false
	}
	match := func(v, other ir.Value) (ir.Value, bool) {
		umax, ok := asIntrinsic(other, "umax")
		if !ok {
			return nil, false
		}
		if umax.Args[0] == v || umax.Args[1] == v {
			return v, true
		}
		return nil, false
	}
	if v, ok := match(um.Args[0], um.Args[1]); ok {
		return nil, v, true
	}
	if v, ok := match(um.Args[1], um.Args[0]); ok {
		return nil, v, true
	}
	return nil, nil, false
}

// kbDeadStore removes a store that writes back a value just loaded from the
// same address, provided no other store intervenes.
func kbDeadStore(_ *transform, in *ir.Instr, prior []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpStore {
		return nil, nil, false
	}
	load, ok := asInstr(in.Args[0], ir.OpLoad)
	if !ok || load.Args[0] != in.Args[1] || !ir.Equal(load.Ty, in.Args[0].Type()) {
		return nil, nil, false
	}
	seen := false
	for _, p := range prior {
		if p == load {
			seen = true
			continue
		}
		if seen && p.Op == ir.OpStore {
			return nil, nil, false
		}
	}
	if !seen {
		return nil, nil, false
	}
	// Dropping the store: no replacement value, no new instructions.
	return nil, nil, true
}

func kbCtpopBit(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	ct, ok := asIntrinsic(in, "ctpop")
	if !ok || len(in.Args) != 1 {
		return nil, nil, false
	}
	and, ok := asInstr(ct.Args[0], ir.OpAnd)
	if !ok {
		return nil, nil, false
	}
	if c, okc := constIntOf(and.Args[1]); !okc || c != 1 {
		return nil, nil, false
	}
	return nil, and, true
}

func kbPairBin(in *ir.Instr, opA, opB ir.Opcode) (x, y ir.Value, ok bool) {
	a, ok1 := asInstr(in.Args[0], opA)
	b, ok2 := asInstr(in.Args[1], opB)
	if !ok1 || !ok2 {
		return nil, nil, false
	}
	if a.Args[0] == b.Args[0] && a.Args[1] == b.Args[1] {
		return a.Args[0], a.Args[1], true
	}
	if a.Args[0] == b.Args[1] && a.Args[1] == b.Args[0] {
		return a.Args[0], a.Args[1], true
	}
	return nil, nil, false
}

func kbXorAndOr(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpXor {
		return nil, nil, false
	}
	x, y, ok := kbPairBin(in, ir.OpAnd, ir.OpOr)
	if !ok {
		x, y, ok = kbPairBin(in, ir.OpOr, ir.OpAnd)
	}
	if !ok {
		return nil, nil, false
	}
	r := ir.Bin(ir.OpXor, t.freshName(), ir.NoFlags, x, y)
	return []*ir.Instr{r}, r, true
}

func kbSubOrAnd(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpSub {
		return nil, nil, false
	}
	x, y, ok := kbPairBin(in, ir.OpOr, ir.OpAnd)
	if !ok {
		return nil, nil, false
	}
	r := ir.Bin(ir.OpXor, t.freshName(), ir.NoFlags, x, y)
	return []*ir.Instr{r}, r, true
}

func kbAddAndOr(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpAdd {
		return nil, nil, false
	}
	x, y, ok := kbPairBin(in, ir.OpAnd, ir.OpOr)
	if !ok {
		x, y, ok = kbPairBin(in, ir.OpOr, ir.OpAnd)
	}
	if !ok {
		return nil, nil, false
	}
	r := ir.Bin(ir.OpAdd, t.freshName(), ir.NoFlags, x, y)
	return []*ir.Instr{r}, r, true
}

func kbSelectEqZero(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpSelect {
		return nil, nil, false
	}
	cmp, ok := in.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp || cmp.IPredV != ir.EQ || !isZeroConst(cmp.Args[1]) {
		return nil, nil, false
	}
	x := cmp.Args[0]
	if isZeroConst(in.Args[1]) && in.Args[2] == x {
		return nil, x, true
	}
	return nil, nil, false
}

func kbNotOf(v ir.Value) (ir.Value, bool) {
	x, ok := asInstr(v, ir.OpXor)
	if !ok || !isAllOnesConst(x.Args[1]) {
		return nil, false
	}
	return x.Args[0], true
}

func kbAndNotSelf(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpAnd {
		return nil, nil, false
	}
	if n, ok := kbNotOf(in.Args[0]); ok && n == in.Args[1] {
		return nil, ir.SplatInt(in.Ty, 0), true
	}
	if n, ok := kbNotOf(in.Args[1]); ok && n == in.Args[0] {
		return nil, ir.SplatInt(in.Ty, 0), true
	}
	return nil, nil, false
}

func kbOrNotSelf(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpOr {
		return nil, nil, false
	}
	if n, ok := kbNotOf(in.Args[0]); ok && n == in.Args[1] {
		return nil, ir.SplatInt(in.Ty, -1), true
	}
	if n, ok := kbNotOf(in.Args[1]); ok && n == in.Args[0] {
		return nil, ir.SplatInt(in.Ty, -1), true
	}
	return nil, nil, false
}

func kbICmpKnownBits(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpICmp || in.IPredV != ir.ULT {
		return nil, nil, false
	}
	h, ok := constIntOf(in.Args[1])
	if !ok {
		return nil, nil, false
	}
	and, ok := asInstr(in.Args[0], ir.OpAnd)
	if !ok {
		return nil, nil, false
	}
	l, ok := constIntOf(and.Args[1])
	if !ok || l >= h {
		return nil, nil, false
	}
	if ir.IsVector(in.Ty) {
		return nil, ir.SplatInt(in.Ty, 1), true
	}
	return nil, ir.CBool(true), true
}

func kbMulUdivCancel(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpUDiv {
		return nil, nil, false
	}
	c, ok := constIntOf(in.Args[1])
	if !ok || c == 0 {
		return nil, nil, false
	}
	mul, ok := asInstr(in.Args[0], ir.OpMul)
	if !ok || !mul.Flags.Has(ir.NUW) {
		return nil, nil, false
	}
	c2, ok := constIntOf(mul.Args[1])
	if !ok || c != c2 {
		return nil, nil, false
	}
	return nil, mul.Args[0], true
}

func kbFnegFneg(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpFNeg {
		return nil, nil, false
	}
	inner, ok := asInstr(in.Args[0], ir.OpFNeg)
	if !ok {
		return nil, nil, false
	}
	return nil, inner.Args[0], true
}

func kbAndLshrBit(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpAnd {
		return nil, nil, false
	}
	c, ok := constIntOf(in.Args[1])
	if !ok || c != 1 {
		return nil, nil, false
	}
	sh, ok := asInstr(in.Args[0], ir.OpLShr)
	if !ok {
		return nil, nil, false
	}
	amt, ok := constIntOf(sh.Args[1])
	if !ok || int(amt) != scalarWidth(in)-1 {
		return nil, nil, false
	}
	return nil, sh, true
}

func kbSubAddCancel(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpSub {
		return nil, nil, false
	}
	add, ok := asInstr(in.Args[0], ir.OpAdd)
	if !ok || add.Flags != ir.NoFlags {
		return nil, nil, false
	}
	if add.Args[0] == in.Args[1] {
		return nil, add.Args[1], true
	}
	if add.Args[1] == in.Args[1] {
		return nil, add.Args[0], true
	}
	return nil, nil, false
}

func kbAddSubCancel(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpAdd {
		return nil, nil, false
	}
	match := func(a, b ir.Value) (ir.Value, bool) {
		sub, ok := asInstr(a, ir.OpSub)
		if !ok || sub.Flags != ir.NoFlags {
			return nil, false
		}
		if sub.Args[1] == b {
			return sub.Args[0], true
		}
		return nil, false
	}
	if v, ok := match(in.Args[0], in.Args[1]); ok {
		return nil, v, true
	}
	if v, ok := match(in.Args[1], in.Args[0]); ok {
		return nil, v, true
	}
	return nil, nil, false
}

func kbComplMaskSelf(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpOr {
		return nil, nil, false
	}
	a, ok1 := asInstr(in.Args[0], ir.OpAnd)
	b, ok2 := asInstr(in.Args[1], ir.OpAnd)
	if !ok1 || !ok2 {
		return nil, nil, false
	}
	// Find the shared X and check the masks are Y and ~Y.
	for _, xi := range []int{0, 1} {
		for _, yi := range []int{0, 1} {
			x := a.Args[xi]
			if b.Args[yi] != x {
				continue
			}
			y := a.Args[1-xi]
			if n, ok := kbNotOf(b.Args[1-yi]); ok && n == y {
				return nil, x, true
			}
			if n, ok := kbNotOf(y); ok && n == b.Args[1-yi] {
				return nil, x, true
			}
		}
	}
	return nil, nil, false
}
