package opt

import (
	"repro/internal/ir"
)

// kbRules are rewrite rules known to the *simulated LLM* but deliberately
// absent from both the baseline optimizer and the patch set: together with
// patchRules they form the knowledge base that internal/llm consults when
// proposing candidates. Keeping them inside this package reuses the tested
// rewrite engine and guarantees every knowledge-base proposal is expressible
// as a (sound) rewrite.
//
// Rule names carry a "kb:" prefix so they can never be confused with the
// modelled LLVM patches.
var kbRules = map[string][]patchFn{
	"kb:rotate":          {kbRotate},        // or (shl X, C), (lshr X, w-C) -> fshl
	"kb:sat-umax":        {kbSatUmax},       // uadd.sat(usub.sat(V,C),C)    -> umax(V,C)
	"kb:minmax-const":    {kbMinMaxConst},   // umin(umax(V,hi),lo), lo<hi   -> lo
	"kb:umin-umax-leaf":  {kbUminUmaxLeaf},  // umin(V, umax(V,U))           -> V
	"kb:dead-store":      {kbDeadStore},     // store (load P), P            -> (removed)
	"kb:ctpop-bit":       {kbCtpopBit},      // ctpop (and X, 1)             -> and X, 1
	"kb:xor-and-or":      {kbXorAndOr},      // xor (and X,Y), (or X,Y)      -> xor X, Y
	"kb:sub-or-and":      {kbSubOrAnd},      // sub (or X,Y), (and X,Y)      -> xor X, Y
	"kb:add-and-or":      {kbAddAndOr},      // add (and X,Y), (or X,Y)      -> add X, Y
	"kb:select-eq-zero":  {kbSelectEqZero},  // select (icmp eq X,0), 0, X   -> X
	"kb:and-not-self":    {kbAndNotSelf},    // and (xor X,-1), X            -> 0
	"kb:or-not-self":     {kbOrNotSelf},     // or (xor X,-1), X             -> -1
	"kb:icmp-known-bits": {kbICmpKnownBits}, // icmp ult (and X,L), H, L<H   -> true
	"kb:mul-udiv-cancel": {kbMulUdivCancel}, // udiv (mul nuw X,C), C        -> X
	"kb:fneg-fneg":       {kbFnegFneg},      // fneg (fneg X)                -> X
	"kb:and-lshr-bit":    {kbAndLshrBit},    // and (lshr X,w-1), 1          -> lshr X, w-1
	"kb:sub-add-cancel":  {kbSubAddCancel},  // sub (add X,Y), Y             -> X
	"kb:add-sub-cancel":  {kbAddSubCancel},  // add (sub X,Y), Y             -> X
	"kb:compl-mask-self": {kbComplMaskSelf}, // or (and X,Y), (and X, ~Y)    -> X
}

// KBNames returns the knowledge-base rule names (without the patch rules).
func KBNames() []string {
	names := make([]string, 0, len(kbRules))
	for n := range kbRules {
		names = append(names, n)
	}
	return names
}

// AllRuleNames returns every optional rule: modelled patches plus the LLM
// knowledge base. Enabling all of them yields the "ideal optimizer" the
// simulated LLM aspires to.
func AllRuleNames() []string {
	return append(PatchIDs(), KBNames()...)
}

func kbRotate(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpOr || !ir.IsInt(in.Ty) {
		return nil, nil, false
	}
	w := uint64(scalarWidth(in))
	match := func(a, b ir.Value) ([]*ir.Instr, ir.Value, bool) {
		shl, ok := asInstr(a, ir.OpShl)
		if !ok {
			return nil, nil, false
		}
		lshr, ok := asInstr(b, ir.OpLShr)
		if !ok || shl.Args[0] != lshr.Args[0] {
			return nil, nil, false
		}
		c1, ok1 := constIntOf(shl.Args[1])
		c2, ok2 := constIntOf(lshr.Args[1])
		if !ok1 || !ok2 || c1 == 0 || c1 >= w || c1+c2 != w {
			return nil, nil, false
		}
		x := shl.Args[0]
		rot := ir.CallI(t.freshName(), ir.IntrinsicName("fshl", in.Ty), in.Ty,
			x, x, ir.SplatInt(in.Ty, int64(c1)))
		return []*ir.Instr{rot}, rot, true
	}
	if news, v, ok := match(in.Args[0], in.Args[1]); ok {
		return news, v, ok
	}
	return match(in.Args[1], in.Args[0])
}

func kbSatUmax(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	add, ok := asIntrinsic(in, "uadd.sat")
	if !ok || len(in.Args) != 2 {
		return nil, nil, false
	}
	c, ok := constIntOf(add.Args[1])
	if !ok {
		return nil, nil, false
	}
	sub, ok := asIntrinsic(add.Args[0], "usub.sat")
	if !ok || len(sub.Args) != 2 {
		return nil, nil, false
	}
	c2, ok := constIntOf(sub.Args[1])
	if !ok || c != c2 {
		return nil, nil, false
	}
	umax := ir.CallI(t.freshName(), ir.IntrinsicName("umax", in.Ty), in.Ty,
		sub.Args[0], add.Args[1])
	return []*ir.Instr{umax}, umax, true
}

func kbMinMaxConst(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	um, ok := asIntrinsic(in, "umin")
	if !ok || len(in.Args) != 2 {
		return nil, nil, false
	}
	lo, ok := constIntOf(um.Args[1])
	if !ok {
		return nil, nil, false
	}
	umax, ok := asIntrinsic(um.Args[0], "umax")
	if !ok || len(umax.Args) != 2 {
		return nil, nil, false
	}
	hi, ok := constIntOf(umax.Args[1])
	if !ok || lo >= hi {
		return nil, nil, false
	}
	return nil, ir.SplatInt(in.Ty, ir.SignExt(lo, scalarWidth(in))), true
}

func kbUminUmaxLeaf(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	um, ok := asIntrinsic(in, "umin")
	if !ok || len(in.Args) != 2 {
		return nil, nil, false
	}
	match := func(v, other ir.Value) (ir.Value, bool) {
		umax, ok := asIntrinsic(other, "umax")
		if !ok {
			return nil, false
		}
		if umax.Args[0] == v || umax.Args[1] == v {
			return v, true
		}
		return nil, false
	}
	if v, ok := match(um.Args[0], um.Args[1]); ok {
		return nil, v, true
	}
	if v, ok := match(um.Args[1], um.Args[0]); ok {
		return nil, v, true
	}
	return nil, nil, false
}

// kbDeadStore removes a store that writes back a value just loaded from the
// same address, provided no other store intervenes.
func kbDeadStore(_ *transform, in *ir.Instr, prior []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpStore {
		return nil, nil, false
	}
	load, ok := asInstr(in.Args[0], ir.OpLoad)
	if !ok || load.Args[0] != in.Args[1] || !ir.Equal(load.Ty, in.Args[0].Type()) {
		return nil, nil, false
	}
	seen := false
	for _, p := range prior {
		if p == load {
			seen = true
			continue
		}
		if seen && p.Op == ir.OpStore {
			return nil, nil, false
		}
	}
	if !seen {
		return nil, nil, false
	}
	// Dropping the store: no replacement value, no new instructions.
	return nil, nil, true
}

func kbCtpopBit(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	ct, ok := asIntrinsic(in, "ctpop")
	if !ok || len(in.Args) != 1 {
		return nil, nil, false
	}
	and, ok := asInstr(ct.Args[0], ir.OpAnd)
	if !ok {
		return nil, nil, false
	}
	if c, okc := constIntOf(and.Args[1]); !okc || c != 1 {
		return nil, nil, false
	}
	return nil, and, true
}

func kbPairBin(in *ir.Instr, opA, opB ir.Opcode) (x, y ir.Value, ok bool) {
	a, ok1 := asInstr(in.Args[0], opA)
	b, ok2 := asInstr(in.Args[1], opB)
	if !ok1 || !ok2 {
		return nil, nil, false
	}
	if a.Args[0] == b.Args[0] && a.Args[1] == b.Args[1] {
		return a.Args[0], a.Args[1], true
	}
	if a.Args[0] == b.Args[1] && a.Args[1] == b.Args[0] {
		return a.Args[0], a.Args[1], true
	}
	return nil, nil, false
}

func kbXorAndOr(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpXor {
		return nil, nil, false
	}
	x, y, ok := kbPairBin(in, ir.OpAnd, ir.OpOr)
	if !ok {
		x, y, ok = kbPairBin(in, ir.OpOr, ir.OpAnd)
	}
	if !ok {
		return nil, nil, false
	}
	r := ir.Bin(ir.OpXor, t.freshName(), ir.NoFlags, x, y)
	return []*ir.Instr{r}, r, true
}

func kbSubOrAnd(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpSub {
		return nil, nil, false
	}
	x, y, ok := kbPairBin(in, ir.OpOr, ir.OpAnd)
	if !ok {
		return nil, nil, false
	}
	r := ir.Bin(ir.OpXor, t.freshName(), ir.NoFlags, x, y)
	return []*ir.Instr{r}, r, true
}

func kbAddAndOr(t *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpAdd {
		return nil, nil, false
	}
	x, y, ok := kbPairBin(in, ir.OpAnd, ir.OpOr)
	if !ok {
		x, y, ok = kbPairBin(in, ir.OpOr, ir.OpAnd)
	}
	if !ok {
		return nil, nil, false
	}
	r := ir.Bin(ir.OpAdd, t.freshName(), ir.NoFlags, x, y)
	return []*ir.Instr{r}, r, true
}

func kbSelectEqZero(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpSelect {
		return nil, nil, false
	}
	cmp, ok := in.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp || cmp.IPredV != ir.EQ || !isZeroConst(cmp.Args[1]) {
		return nil, nil, false
	}
	x := cmp.Args[0]
	if isZeroConst(in.Args[1]) && in.Args[2] == x {
		return nil, x, true
	}
	return nil, nil, false
}

func kbNotOf(v ir.Value) (ir.Value, bool) {
	x, ok := asInstr(v, ir.OpXor)
	if !ok || !isAllOnesConst(x.Args[1]) {
		return nil, false
	}
	return x.Args[0], true
}

func kbAndNotSelf(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpAnd {
		return nil, nil, false
	}
	if n, ok := kbNotOf(in.Args[0]); ok && n == in.Args[1] {
		return nil, ir.SplatInt(in.Ty, 0), true
	}
	if n, ok := kbNotOf(in.Args[1]); ok && n == in.Args[0] {
		return nil, ir.SplatInt(in.Ty, 0), true
	}
	return nil, nil, false
}

func kbOrNotSelf(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpOr {
		return nil, nil, false
	}
	if n, ok := kbNotOf(in.Args[0]); ok && n == in.Args[1] {
		return nil, ir.SplatInt(in.Ty, -1), true
	}
	if n, ok := kbNotOf(in.Args[1]); ok && n == in.Args[0] {
		return nil, ir.SplatInt(in.Ty, -1), true
	}
	return nil, nil, false
}

func kbICmpKnownBits(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpICmp || in.IPredV != ir.ULT {
		return nil, nil, false
	}
	h, ok := constIntOf(in.Args[1])
	if !ok {
		return nil, nil, false
	}
	and, ok := asInstr(in.Args[0], ir.OpAnd)
	if !ok {
		return nil, nil, false
	}
	l, ok := constIntOf(and.Args[1])
	if !ok || l >= h {
		return nil, nil, false
	}
	if ir.IsVector(in.Ty) {
		return nil, ir.SplatInt(in.Ty, 1), true
	}
	return nil, ir.CBool(true), true
}

func kbMulUdivCancel(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpUDiv {
		return nil, nil, false
	}
	c, ok := constIntOf(in.Args[1])
	if !ok || c == 0 {
		return nil, nil, false
	}
	mul, ok := asInstr(in.Args[0], ir.OpMul)
	if !ok || !mul.Flags.Has(ir.NUW) {
		return nil, nil, false
	}
	c2, ok := constIntOf(mul.Args[1])
	if !ok || c != c2 {
		return nil, nil, false
	}
	return nil, mul.Args[0], true
}

func kbFnegFneg(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpFNeg {
		return nil, nil, false
	}
	inner, ok := asInstr(in.Args[0], ir.OpFNeg)
	if !ok {
		return nil, nil, false
	}
	return nil, inner.Args[0], true
}

func kbAndLshrBit(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpAnd {
		return nil, nil, false
	}
	c, ok := constIntOf(in.Args[1])
	if !ok || c != 1 {
		return nil, nil, false
	}
	sh, ok := asInstr(in.Args[0], ir.OpLShr)
	if !ok {
		return nil, nil, false
	}
	amt, ok := constIntOf(sh.Args[1])
	if !ok || int(amt) != scalarWidth(in)-1 {
		return nil, nil, false
	}
	return nil, sh, true
}

func kbSubAddCancel(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpSub {
		return nil, nil, false
	}
	add, ok := asInstr(in.Args[0], ir.OpAdd)
	if !ok || add.Flags != ir.NoFlags {
		return nil, nil, false
	}
	if add.Args[0] == in.Args[1] {
		return nil, add.Args[1], true
	}
	if add.Args[1] == in.Args[1] {
		return nil, add.Args[0], true
	}
	return nil, nil, false
}

func kbAddSubCancel(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpAdd {
		return nil, nil, false
	}
	match := func(a, b ir.Value) (ir.Value, bool) {
		sub, ok := asInstr(a, ir.OpSub)
		if !ok || sub.Flags != ir.NoFlags {
			return nil, false
		}
		if sub.Args[1] == b {
			return sub.Args[0], true
		}
		return nil, false
	}
	if v, ok := match(in.Args[0], in.Args[1]); ok {
		return nil, v, true
	}
	if v, ok := match(in.Args[1], in.Args[0]); ok {
		return nil, v, true
	}
	return nil, nil, false
}

func kbComplMaskSelf(_ *transform, in *ir.Instr, _ []*ir.Instr) ([]*ir.Instr, ir.Value, bool) {
	if in.Op != ir.OpOr {
		return nil, nil, false
	}
	a, ok1 := asInstr(in.Args[0], ir.OpAnd)
	b, ok2 := asInstr(in.Args[1], ir.OpAnd)
	if !ok1 || !ok2 {
		return nil, nil, false
	}
	// Find the shared X and check the masks are Y and ~Y.
	for _, xi := range []int{0, 1} {
		for _, yi := range []int{0, 1} {
			x := a.Args[xi]
			if b.Args[yi] != x {
				continue
			}
			y := a.Args[1-xi]
			if n, ok := kbNotOf(b.Args[1-yi]); ok && n == y {
				return nil, x, true
			}
			if n, ok := kbNotOf(y); ok && n == b.Args[1-yi] {
				return nil, x, true
			}
		}
	}
	return nil, nil, false
}
