// Package benchdata holds the reconstructed benchmark registries for the
// paper's evaluation: the 25 previously-reported missed optimizations of RQ1
// (Table 2), the 62 optimizations LPO found in the wild for RQ2 (Table 3),
// and the per-patch metadata of Table 5.
//
// The issue numbers, statuses and aggregate counts are the paper's; the IR
// contents of each issue are NOT public in the paper, so each case carries a
// synthetic (src, tgt) pair drawn from a family of real missed-optimization
// shapes. Families are chosen so that the baselines' published behaviour
// emerges from our Souper/Minotaur reimplementations by construction:
// pure-integer narrow patterns are Souper-reachable, leaf rewrites are
// Minotaur-reachable, and vector/FP/memory/intrinsic patterns are out of
// reach for both — mirroring the support matrices the paper describes.
package benchdata

import "fmt"

// Pair is a source function and its known-good optimized form. Src and Tgt
// are .ll texts; Tgt always refines Src and passes the interestingness check
// against it (guarded by tests).
type Pair struct {
	Src string
	Tgt string
}

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

func signed(v uint64, w int) int64 {
	if w < 64 && v&(uint64(1)<<uint(w-1)) != 0 {
		return int64(v | ^mask(w))
	}
	return int64(v)
}

// --- Scalar integer families (Souper-reachable) ---

// famShlLshrRound: lshr (shl X, C), C  ->  and X, mask>>C.
func famShlLshrRound(w, c int) Pair {
	m := signed((mask(w) >> uint(c)), w)
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%a = shl i%d %%x, %d
  %%b = lshr i%d %%a, %d
  ret i%d %%b
}`, w, w, w, c, w, c, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  %%r = and i%d %%x, %d
  ret i%d %%r
}`, w, w, w, m, w),
	}
}

// famLshrShlRound: shl (lshr X, C), C  ->  and X, mask<<C.
func famLshrShlRound(w, c int) Pair {
	m := signed((mask(w)<<uint(c))&mask(w), w)
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%a = lshr i%d %%x, %d
  %%b = shl i%d %%a, %d
  ret i%d %%b
}`, w, w, w, c, w, c, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  %%r = and i%d %%x, %d
  ret i%d %%r
}`, w, w, w, m, w),
	}
}

// famXorAndOr: xor (and X, Y), (or X, Y)  ->  xor X, Y.
func famXorAndOr(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x, i%d %%y) {
  %%a = and i%d %%x, %%y
  %%o = or i%d %%x, %%y
  %%r = xor i%d %%a, %%o
  ret i%d %%r
}`, w, w, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x, i%d %%y) {
  %%r = xor i%d %%x, %%y
  ret i%d %%r
}`, w, w, w, w, w),
	}
}

// famSubOrAnd: sub (or X, Y), (and X, Y)  ->  xor X, Y.
func famSubOrAnd(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x, i%d %%y) {
  %%o = or i%d %%x, %%y
  %%a = and i%d %%x, %%y
  %%r = sub i%d %%o, %%a
  ret i%d %%r
}`, w, w, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x, i%d %%y) {
  %%r = xor i%d %%x, %%y
  ret i%d %%r
}`, w, w, w, w, w),
	}
}

// famAddAndOr: add (and X, Y), (or X, Y)  ->  add X, Y.
func famAddAndOr(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x, i%d %%y) {
  %%a = and i%d %%x, %%y
  %%o = or i%d %%x, %%y
  %%r = add i%d %%a, %%o
  ret i%d %%r
}`, w, w, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x, i%d %%y) {
  %%r = add i%d %%x, %%y
  ret i%d %%r
}`, w, w, w, w, w),
	}
}

// famNegViaXor: add (xor X, -1), 1  ->  sub 0, X.
func famNegViaXor(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%n = xor i%d %%x, -1
  %%r = add i%d %%n, 1
  ret i%d %%r
}`, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  %%r = sub i%d 0, %%x
  ret i%d %%r
}`, w, w, w, w),
	}
}

// famXorNegNot: xor (sub 0, X), -1  ->  add X, -1.
func famXorNegNot(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%n = sub i%d 0, %%x
  %%r = xor i%d %%n, -1
  ret i%d %%r
}`, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  %%r = add i%d %%x, -1
  ret i%d %%r
}`, w, w, w, w),
	}
}

// famAndLshrBit: and (lshr X, w-1), 1  ->  lshr X, w-1.
func famAndLshrBit(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%s = lshr i%d %%x, %d
  %%r = and i%d %%s, 1
  ret i%d %%r
}`, w, w, w, w-1, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  %%r = lshr i%d %%x, %d
  ret i%d %%r
}`, w, w, w, w-1, w),
	}
}

// famAshrShlSext: ashr (shl X, C), C  ->  sext (trunc X).
func famAshrShlSext(w, c int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%a = shl i%d %%x, %d
  %%b = ashr i%d %%a, %d
  ret i%d %%b
}`, w, w, w, c, w, c, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  %%t = trunc i%d %%x to i%d
  %%r = sext i%d %%t to i%d
  ret i%d %%r
}`, w, w, w, w-c, w-c, w, w),
	}
}

// famComplMaskOr: or (and X, C), (and X, ~C)  ->  X.
func famComplMaskOr(w int, m uint64) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%a = and i%d %%x, %d
  %%b = and i%d %%x, %d
  %%r = or i%d %%a, %%b
  ret i%d %%r
}`, w, w, w, signed(m&mask(w), w), w, signed(^m&mask(w), w), w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  ret i%d %%x
}`, w, w, w),
	}
}

// famAbsorbOr: or (and X, Y), X  ->  X.
func famAbsorbOr(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x, i%d %%y) {
  %%a = and i%d %%x, %%y
  %%r = or i%d %%a, %%x
  ret i%d %%r
}`, w, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x, i%d %%y) {
  ret i%d %%x
}`, w, w, w, w),
	}
}

// famAbsorbAnd: and (or X, Y), X  ->  X.
func famAbsorbAnd(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x, i%d %%y) {
  %%o = or i%d %%x, %%y
  %%r = and i%d %%o, %%x
  ret i%d %%r
}`, w, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x, i%d %%y) {
  ret i%d %%x
}`, w, w, w, w),
	}
}

// famSubAddCancel: sub (add X, Y), Y  ->  X.
func famSubAddCancel(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x, i%d %%y) {
  %%a = add i%d %%x, %%y
  %%r = sub i%d %%a, %%y
  ret i%d %%r
}`, w, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x, i%d %%y) {
  ret i%d %%x
}`, w, w, w, w),
	}
}

// famAddSubCancel: add (sub X, Y), Y  ->  X.
func famAddSubCancel(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x, i%d %%y) {
  %%a = sub i%d %%x, %%y
  %%r = add i%d %%a, %%y
  ret i%d %%r
}`, w, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x, i%d %%y) {
  ret i%d %%x
}`, w, w, w, w),
	}
}

// famMulUdivCancel: udiv (mul nuw X, 3), 3  ->  X.
func famMulUdivCancel(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%m = mul nuw i%d %%x, 3
  %%r = udiv i%d %%m, 3
  ret i%d %%r
}`, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  ret i%d %%x
}`, w, w, w),
	}
}

// famAndNotSelf: and (xor X, -1), X  ->  0.
func famAndNotSelf(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%n = xor i%d %%x, -1
  %%r = and i%d %%n, %%x
  ret i%d %%r
}`, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  ret i%d 0
}`, w, w, w),
	}
}

// famOrNotSelf: or (xor X, -1), X  ->  -1.
func famOrNotSelf(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%n = xor i%d %%x, -1
  %%r = or i%d %%n, %%x
  ret i%d %%r
}`, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  ret i%d -1
}`, w, w, w),
	}
}

// famICmpConstTrue: icmp ult (and X, L), H with L < H  ->  true.
func famICmpConstTrue(w int, lo, hi uint64) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i1 @src(i%d %%x) {
  %%a = and i%d %%x, %d
  %%c = icmp ult i%d %%a, %d
  ret i1 %%c
}`, w, w, lo, w, hi),
		Tgt: `define i1 @tgt(i` + itoa(w) + ` %x) {
  ret i1 true
}`,
	}
}

// famOrComplMaskSelf: or (and X, Y), (and X, ~Y)  ->  X (non-constant mask).
func famOrComplMaskSelf(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x, i%d %%y) {
  %%ny = xor i%d %%y, -1
  %%a = and i%d %%x, %%y
  %%b = and i%d %%x, %%ny
  %%r = or i%d %%a, %%b
  ret i%d %%r
}`, w, w, w, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x, i%d %%y) {
  ret i%d %%x
}`, w, w, w, w),
	}
}

// --- Intrinsic / vector / FP / memory families (baseline-tool-proof) ---

// famUmaxShlChain: umax(shl nuw (umax(X, C1)), C2) -> umax(shl nuw X, C2).
func famUmaxShlChain(w, c1, k, c2 int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%a = call i%d @llvm.umax.i%d(i%d %%x, i%d %d)
  %%s = shl nuw i%d %%a, %d
  %%r = call i%d @llvm.umax.i%d(i%d %%s, i%d %d)
  ret i%d %%r
}`, w, w, w, w, w, w, c1, w, k, w, w, w, w, c2, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  %%s = shl nuw i%d %%x, %d
  %%r = call i%d @llvm.umax.i%d(i%d %%s, i%d %d)
  ret i%d %%r
}`, w, w, w, k, w, w, w, w, c2, w),
	}
}

// famClampVec: the paper's Figure 1/3 clamp pattern on <n x iW> -> <n x iOW>.
func famClampVec(n, w, ow int, c uint64) Pair {
	vt := fmt.Sprintf("<%d x i%d>", n, w)
	vo := fmt.Sprintf("<%d x i%d>", n, ow)
	suf := fmt.Sprintf("v%di%d", n, w)
	return Pair{
		Src: fmt.Sprintf(`define %s @src(%s %%v) {
  %%c = icmp slt %s %%v, zeroinitializer
  %%m = tail call %s @llvm.umin.%s(%s %%v, %s splat (i%d %d))
  %%t = trunc nuw %s %%m to %s
  %%r = select <%d x i1> %%c, %s zeroinitializer, %s %%t
  ret %s %%r
}`, vo, vt, vt, vt, suf, vt, vt, w, c, vt, vo, n, vo, vo, vo),
		Tgt: fmt.Sprintf(`define %s @tgt(%s %%v) {
  %%a = tail call %s @llvm.smax.%s(%s %%v, %s zeroinitializer)
  %%m = tail call %s @llvm.umin.%s(%s %%a, %s splat (i%d %d))
  %%t = trunc nuw %s %%m to %s
  ret %s %%t
}`, vo, vt, vt, suf, vt, vt, vt, suf, vt, vt, w, c, vt, vo, vo),
	}
}

// famClampScalar: scalar clamp through trunc (Figure 1b/1c).
func famClampScalar(w, ow int, c uint64) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%c = icmp slt i%d %%x, 0
  %%m = tail call i%d @llvm.umin.i%d(i%d %%x, i%d %d)
  %%t = trunc nuw i%d %%m to i%d
  %%r = select i1 %%c, i%d 0, i%d %%t
  ret i%d %%r
}`, ow, w, w, w, w, w, w, c, w, ow, ow, ow, ow),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  %%a = tail call i%d @llvm.smax.i%d(i%d %%x, i%d 0)
  %%m = tail call i%d @llvm.umin.i%d(i%d %%a, i%d %d)
  %%t = trunc nuw i%d %%m to i%d
  ret i%d %%t
}`, ow, w, w, w, w, w, w, w, w, w, c, w, ow, ow),
	}
}

// famFcmpOrdSel: Figure 4c/4f — fcmp oeq (select (fcmp ord X, 0), X, 0), C.
func famFcmpOrdSel(ty string, c string) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i1 @src(%s %%x) {
  %%o = fcmp ord %s %%x, 0.000000e+00
  %%s = select i1 %%o, %s %%x, %s 0.000000e+00
  %%c = fcmp oeq %s %%s, %s
  ret i1 %%c
}`, ty, ty, ty, ty, ty, c),
		Tgt: fmt.Sprintf(`define i1 @tgt(%s %%x) {
  %%c = fcmp oeq %s %%x, %s
  ret i1 %%c
}`, ty, ty, c),
	}
}

// famLoadMerge: Figure 4a/4d — two consecutive loads merged into one.
func famLoadMerge(half int) Pair {
	full := half * 2
	off := half / 8
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(ptr %%p) {
  %%lo = load i%d, ptr %%p, align 2
  %%g = getelementptr i8, ptr %%p, i64 %d
  %%hi = load i%d, ptr %%g, align 1
  %%zh = zext i%d %%hi to i%d
  %%sh = shl nuw i%d %%zh, %d
  %%zl = zext i%d %%lo to i%d
  %%r = or disjoint i%d %%sh, %%zl
  ret i%d %%r
}`, full, half, off, half, half, full, full, half, half, full, full, full),
		Tgt: fmt.Sprintf(`define i%d @tgt(ptr %%p) {
  %%r = load i%d, ptr %%p, align 2
  ret i%d %%r
}`, full, full, full),
	}
}

// famSatUmax: uadd.sat(usub.sat(V, C), C)  ->  umax(V, C).
func famSatUmax(n, w int, c uint64) Pair {
	vt := fmt.Sprintf("<%d x i%d>", n, w)
	suf := fmt.Sprintf("v%di%d", n, w)
	return Pair{
		Src: fmt.Sprintf(`define %s @src(%s %%v) {
  %%a = call %s @llvm.usub.sat.%s(%s %%v, %s splat (i%d %d))
  %%b = call %s @llvm.uadd.sat.%s(%s %%a, %s splat (i%d %d))
  ret %s %%b
}`, vt, vt, vt, suf, vt, vt, w, c, vt, suf, vt, vt, w, c, vt),
		Tgt: fmt.Sprintf(`define %s @tgt(%s %%v) {
  %%r = call %s @llvm.umax.%s(%s %%v, %s splat (i%d %d))
  ret %s %%r
}`, vt, vt, vt, suf, vt, vt, w, c, vt),
	}
}

// famVecMinMaxConst: umin(umax(V, hi), lo) with lo < hi  ->  splat lo.
func famVecMinMaxConst(n, w int, hi, lo uint64) Pair {
	vt := fmt.Sprintf("<%d x i%d>", n, w)
	suf := fmt.Sprintf("v%di%d", n, w)
	return Pair{
		Src: fmt.Sprintf(`define %s @src(%s %%v) {
  %%a = call %s @llvm.umax.%s(%s %%v, %s splat (i%d %d))
  %%b = call %s @llvm.umin.%s(%s %%a, %s splat (i%d %d))
  ret %s %%b
}`, vt, vt, vt, suf, vt, vt, w, hi, vt, suf, vt, vt, w, lo, vt),
		Tgt: fmt.Sprintf(`define %s @tgt(%s %%v) {
  ret %s splat (i%d %d)
}`, vt, vt, vt, w, lo),
	}
}

// famVecUminUmaxLeaf: umin(V, umax(V, U))  ->  V.
func famVecUminUmaxLeaf(n, w int) Pair {
	vt := fmt.Sprintf("<%d x i%d>", n, w)
	suf := fmt.Sprintf("v%di%d", n, w)
	return Pair{
		Src: fmt.Sprintf(`define %s @src(%s %%v, %s %%u) {
  %%a = call %s @llvm.umax.%s(%s %%v, %s %%u)
  %%b = call %s @llvm.umin.%s(%s %%v, %s %%a)
  ret %s %%b
}`, vt, vt, vt, vt, suf, vt, vt, vt, suf, vt, vt, vt),
		Tgt: fmt.Sprintf(`define %s @tgt(%s %%v, %s %%u) {
  ret %s %%v
}`, vt, vt, vt, vt),
	}
}

// famVecXor: sub (or V, U), (and V, U)  ->  xor V, U on vectors.
func famVecXor(n, w int) Pair {
	vt := fmt.Sprintf("<%d x i%d>", n, w)
	return Pair{
		Src: fmt.Sprintf(`define %s @src(%s %%v, %s %%u) {
  %%o = or %s %%v, %%u
  %%a = and %s %%v, %%u
  %%r = sub %s %%o, %%a
  ret %s %%r
}`, vt, vt, vt, vt, vt, vt, vt),
		Tgt: fmt.Sprintf(`define %s @tgt(%s %%v, %s %%u) {
  %%r = xor %s %%v, %%u
  ret %s %%r
}`, vt, vt, vt, vt, vt),
	}
}

// famVecComplMask: vector complementary-mask identity.
func famVecComplMask(n, w int, m uint64) Pair {
	vt := fmt.Sprintf("<%d x i%d>", n, w)
	return Pair{
		Src: fmt.Sprintf(`define %s @src(%s %%v) {
  %%a = and %s %%v, splat (i%d %d)
  %%b = and %s %%v, splat (i%d %d)
  %%r = or %s %%a, %%b
  ret %s %%r
}`, vt, vt, vt, w, signed(m&mask(w), w), vt, w, signed(^m&mask(w), w), vt, vt),
		Tgt: fmt.Sprintf(`define %s @tgt(%s %%v) {
  ret %s %%v
}`, vt, vt, vt),
	}
}

// famVecAbsorbOr: vector or (and V, U), V  ->  V.
func famVecAbsorbOr(n, w int) Pair {
	vt := fmt.Sprintf("<%d x i%d>", n, w)
	return Pair{
		Src: fmt.Sprintf(`define %s @src(%s %%v, %s %%u) {
  %%a = and %s %%v, %%u
  %%r = or %s %%a, %%v
  ret %s %%r
}`, vt, vt, vt, vt, vt, vt),
		Tgt: fmt.Sprintf(`define %s @tgt(%s %%v, %s %%u) {
  ret %s %%v
}`, vt, vt, vt, vt),
	}
}

// famVecAddSubCancel: vector add (sub V, U), U  ->  V.
func famVecAddSubCancel(n, w int) Pair {
	vt := fmt.Sprintf("<%d x i%d>", n, w)
	return Pair{
		Src: fmt.Sprintf(`define %s @src(%s %%v, %s %%u) {
  %%a = sub %s %%v, %%u
  %%r = add %s %%a, %%u
  ret %s %%r
}`, vt, vt, vt, vt, vt, vt),
		Tgt: fmt.Sprintf(`define %s @tgt(%s %%v, %s %%u) {
  ret %s %%v
}`, vt, vt, vt, vt),
	}
}

// famRotate: or (shl X, C), (lshr X, w-C)  ->  fshl(X, X, C).
func famRotate(w, c int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%a = shl i%d %%x, %d
  %%b = lshr i%d %%x, %d
  %%r = or i%d %%a, %%b
  ret i%d %%r
}`, w, w, w, c, w, w-c, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  %%r = call i%d @llvm.fshl.i%d(i%d %%x, i%d %%x, i%d %d)
  ret i%d %%r
}`, w, w, w, w, w, w, w, c, w),
	}
}

// famCtpopBit: ctpop (and X, 1)  ->  and X, 1.
func famCtpopBit(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%a = and i%d %%x, 1
  %%r = call i%d @llvm.ctpop.i%d(i%d %%a)
  ret i%d %%r
}`, w, w, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  %%r = and i%d %%x, 1
  ret i%d %%r
}`, w, w, w, w),
	}
}

// famUminZextCover: umin (zext X, C >= Xmax)  ->  zext X.
func famUminZextCover(fromW, toW int, c uint64, vecN int) Pair {
	from, to, suf := fmt.Sprintf("i%d", fromW), fmt.Sprintf("i%d", toW), fmt.Sprintf("i%d", toW)
	splat := fmt.Sprintf("%d", c)
	if vecN > 0 {
		from = fmt.Sprintf("<%d x i%d>", vecN, fromW)
		to = fmt.Sprintf("<%d x i%d>", vecN, toW)
		suf = fmt.Sprintf("v%di%d", vecN, toW)
		splat = fmt.Sprintf("splat (i%d %d)", toW, c)
	}
	return Pair{
		Src: fmt.Sprintf(`define %s @src(%s %%x) {
  %%z = zext %s %%x to %s
  %%r = call %s @llvm.umin.%s(%s %%z, %s %s)
  ret %s %%r
}`, to, from, from, to, to, suf, to, to, splat, to),
		Tgt: fmt.Sprintf(`define %s @tgt(%s %%x) {
  %%z = zext %s %%x to %s
  ret %s %%z
}`, to, from, from, to, to),
	}
}

// famSelectZeroOneVec: select C, splat 1, zeroinitializer  ->  zext C.
func famSelectZeroOneVec(n, w int) Pair {
	vt := fmt.Sprintf("<%d x i%d>", n, w)
	ct := fmt.Sprintf("<%d x i1>", n)
	return Pair{
		Src: fmt.Sprintf(`define %s @src(%s %%c) {
  %%r = select %s %%c, %s splat (i%d 1), %s zeroinitializer
  ret %s %%r
}`, vt, ct, ct, vt, w, vt, vt),
		Tgt: fmt.Sprintf(`define %s @tgt(%s %%c) {
  %%r = zext %s %%c to %s
  ret %s %%r
}`, vt, ct, ct, vt, vt),
	}
}

// famMulMinusOneVec: mul V, splat -1  ->  sub 0, V.
func famMulMinusOneVec(n, w int) Pair {
	vt := fmt.Sprintf("<%d x i%d>", n, w)
	return Pair{
		Src: fmt.Sprintf(`define %s @src(%s %%v) {
  %%r = mul %s %%v, splat (i%d -1)
  ret %s %%r
}`, vt, vt, vt, w, vt),
		Tgt: fmt.Sprintf(`define %s @tgt(%s %%v) {
  %%r = sub %s zeroinitializer, %%v
  ret %s %%r
}`, vt, vt, vt, vt),
	}
}

// famXorNegNotVec: vector xor (sub 0, V), -1  ->  add V, -1.
func famXorNegNotVec(n, w int) Pair {
	vt := fmt.Sprintf("<%d x i%d>", n, w)
	return Pair{
		Src: fmt.Sprintf(`define %s @src(%s %%v) {
  %%n = sub %s zeroinitializer, %%v
  %%r = xor %s %%n, splat (i%d -1)
  ret %s %%r
}`, vt, vt, vt, vt, w, vt),
		Tgt: fmt.Sprintf(`define %s @tgt(%s %%v) {
  %%r = add %s %%v, splat (i%d -1)
  ret %s %%r
}`, vt, vt, vt, w, vt),
	}
}

// famDeadStore: store (load P), P  ->  nothing.
func famDeadStore(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define void @src(ptr %%p) {
  %%v = load i%d, ptr %%p, align 4
  store i%d %%v, ptr %%p, align 4
  ret void
}`, w, w),
		Tgt: `define void @tgt(ptr %p) {
  ret void
}`,
	}
}

// famFnegFneg: fneg (fneg X)  ->  X. (The tempting -x + -y == -(x+y)
// rewrite is NOT sound without nsz because of IEEE signed zeros; double
// negation is a pure sign-bit round trip and holds bitwise.)
func famFnegFneg(ty string) Pair {
	return Pair{
		Src: fmt.Sprintf(`define %s @src(%s %%x) {
  %%a = fneg %s %%x
  %%b = fneg %s %%a
  ret %s %%b
}`, ty, ty, ty, ty, ty),
		Tgt: fmt.Sprintf(`define %s @tgt(%s %%x) {
  ret %s %%x
}`, ty, ty, ty),
	}
}

// famSelectEqZero: select (icmp eq X, 0), 0, X  ->  X.
func famSelectEqZero(w int) Pair {
	return Pair{
		Src: fmt.Sprintf(`define i%d @src(i%d %%x) {
  %%c = icmp eq i%d %%x, 0
  %%r = select i1 %%c, i%d 0, i%d %%x
  ret i%d %%r
}`, w, w, w, w, w, w),
		Tgt: fmt.Sprintf(`define i%d @tgt(i%d %%x) {
  ret i%d %%x
}`, w, w, w),
	}
}

// famMulUdivCancelVec: vector mul nuw / udiv cancel.
func famMulUdivCancelVec(n, w int) Pair {
	vt := fmt.Sprintf("<%d x i%d>", n, w)
	return Pair{
		Src: fmt.Sprintf(`define %s @src(%s %%v) {
  %%m = mul nuw %s %%v, splat (i%d 3)
  %%r = udiv %s %%m, splat (i%d 3)
  ret %s %%r
}`, vt, vt, vt, w, vt, w, vt),
		Tgt: fmt.Sprintf(`define %s @tgt(%s %%v) {
  ret %s %%v
}`, vt, vt, vt),
	}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
