package benchdata

// Status is the triage outcome of a reported missed optimization (Table 3).
type Status string

// Statuses from the paper's Table 3.
const (
	Confirmed   Status = "Confirmed"
	Fixed       Status = "Fixed"
	Unconfirmed Status = "Unconfirmed"
	Duplicate   Status = "Duplicate"
	Wontfix     Status = "Wontfix"
)

// Finding is one of the 62 missed optimizations LPO found and reported.
type Finding struct {
	IssueID string
	Status  Status
	Pair    Pair
	// Family is a short label for the pattern family, used by the corpus
	// generator to plant instances and by reports.
	Family string
}

// RQ2Findings returns the Table 3 registry. Statuses are the paper's; the
// IR family per issue is synthetic (chosen so that our Souper/Minotaur
// reimplementations reproduce the paper's aggregate detection counts — see
// families.go).
func RQ2Findings() []*Finding {
	return []*Finding{
		{IssueID: "128134", Status: Fixed, Family: "load-merge", Pair: famLoadMerge(16)},
		{IssueID: "128460", Status: Confirmed, Family: "ashr-shl-wide", Pair: famAshrShlSext(64, 8)},
		{IssueID: "130954", Status: Wontfix, Family: "rotate", Pair: famRotate(32, 8)},
		{IssueID: "132628", Status: Wontfix, Family: "lshr-shl-wide", Pair: famLshrShlRound(64, 16)},
		{IssueID: "133367", Status: Fixed, Family: "fcmp-ord-select", Pair: famFcmpOrdSel("double", "1.000000e+00")},
		{IssueID: "139641", Status: Confirmed, Family: "or-not-self", Pair: famOrNotSelf(16)},
		{IssueID: "139786", Status: Confirmed, Family: "clamp-vec", Pair: famClampVec(4, 32, 8, 255)},
		{IssueID: "142674", Status: Fixed, Family: "compl-mask", Pair: famComplMaskOr(8, 0xF0)},
		{IssueID: "142711", Status: Fixed, Family: "umax-shl-chain", Pair: famUmaxShlChain(8, 1, 1, 16)},
		{IssueID: "143030", Status: Unconfirmed, Family: "sat-umax", Pair: famSatUmax(8, 8, 32)},
		{IssueID: "143211", Status: Fixed, Family: "shl-lshr-round", Pair: famShlLshrRound(8, 3)},
		{IssueID: "143630", Status: Unconfirmed, Family: "xor-and-or", Pair: famXorAndOr(16)},
		{IssueID: "143636", Status: Fixed, Family: "clamp-scalar", Pair: famClampScalar(32, 8, 255)},
		{IssueID: "143649", Status: Unconfirmed, Family: "ctpop-bit", Pair: famCtpopBit(16)},
		{IssueID: "143957", Status: Confirmed, Family: "icmp-const-wide", Pair: famICmpConstTrue(64, 7, 9)},
		{IssueID: "144020", Status: Confirmed, Family: "add-and-or", Pair: famAddAndOr(8)},
		{IssueID: "152237", Status: Confirmed, Family: "absorb-or", Pair: famAbsorbOr(8)},
		{IssueID: "152788", Status: Unconfirmed, Family: "icmp-const-wide", Pair: famICmpConstTrue(64, 15, 16)},
		{IssueID: "152797", Status: Confirmed, Family: "shl-lshr-wide", Pair: famShlLshrRound(64, 8)},
		{IssueID: "152804", Status: Confirmed, Family: "and-not-self", Pair: famAndNotSelf(16)},
		{IssueID: "153991", Status: Confirmed, Family: "rotate", Pair: famRotate(16, 4)},
		{IssueID: "153999", Status: Duplicate, Family: "clamp-vec", Pair: famClampVec(8, 16, 8, 127)},
		{IssueID: "154000", Status: Duplicate, Family: "icmp-const", Pair: famICmpConstTrue(8, 7, 8)},
		{IssueID: "154025", Status: Unconfirmed, Family: "icmp-const-wide", Pair: famICmpConstTrue(64, 31, 33)},
		{IssueID: "154035", Status: Unconfirmed, Family: "fneg-fneg", Pair: famFnegFneg("double")},
		{IssueID: "154238", Status: Fixed, Family: "select-zero-one", Pair: famSelectZeroOneVec(4, 32)},
		{IssueID: "154242", Status: Confirmed, Family: "lshr-shl-round", Pair: famLshrShlRound(8, 4)},
		{IssueID: "154246", Status: Confirmed, Family: "vec-compl-mask", Pair: famVecComplMask(4, 8, 0x0F)},
		{IssueID: "154258", Status: Unconfirmed, Family: "sub-add-cancel", Pair: famSubAddCancel(8)},
		{IssueID: "157315", Status: Fixed, Family: "umin-zext", Pair: famUminZextCover(8, 32, 255, 4)},
		{IssueID: "157370", Status: Fixed, Family: "ashr-shl-sext", Pair: famAshrShlSext(8, 4)},
		{IssueID: "157371", Status: Fixed, Family: "mul-minus-one-vec", Pair: famMulMinusOneVec(4, 32)},
		{IssueID: "157372", Status: Duplicate, Family: "mul-minus-one-vec", Pair: famMulMinusOneVec(8, 16)},
		{IssueID: "157486", Status: Confirmed, Family: "umax-shl-chain", Pair: famUmaxShlChain(16, 2, 1, 64)},
		{IssueID: "157524", Status: Fixed, Family: "xor-neg-not-vec", Pair: famXorNegNotVec(4, 16)},
		{IssueID: "163084", Status: Confirmed, Family: "and-lshr-bit", Pair: famAndLshrBit(16)},
		{IssueID: "163093", Status: Unconfirmed, Family: "sat-umax", Pair: famSatUmax(4, 16, 100)},
		{IssueID: "163108", Status: Fixed, Family: "absorb-and", Pair: famAbsorbAnd(8)},
		{IssueID: "163109", Status: Confirmed, Family: "load-merge", Pair: famLoadMerge(8)},
		{IssueID: "163110", Status: Confirmed, Family: "vec-xor", Pair: famVecXor(4, 16)},
		{IssueID: "163112", Status: Confirmed, Family: "vec-add-sub-cancel", Pair: famVecAddSubCancel(4, 16)},
		{IssueID: "163115", Status: Confirmed, Family: "clamp-vec", Pair: famClampVec(2, 64, 8, 255)},
		{IssueID: "166878", Status: Confirmed, Family: "rotate", Pair: famRotate(64, 32)},
		{IssueID: "166885", Status: Confirmed, Family: "dead-store", Pair: famDeadStore(32)},
		{IssueID: "166887", Status: Unconfirmed, Family: "add-sub-cancel", Pair: famAddSubCancel(8)},
		{IssueID: "166890", Status: Unconfirmed, Family: "vec-umin-umax-leaf", Pair: famVecUminUmaxLeaf(8, 8)},
		{IssueID: "166973", Status: Fixed, Family: "lshr-shl-round", Pair: famLshrShlRound(32, 8)},
		{IssueID: "167003", Status: Confirmed, Family: "neg-via-xor", Pair: famNegViaXor(16)},
		{IssueID: "167014", Status: Confirmed, Family: "fcmp-ord-select", Pair: famFcmpOrdSel("float", "3.000000e+00")},
		{IssueID: "167055", Status: Confirmed, Family: "umin-zext", Pair: famUminZextCover(16, 64, 65535, 0)},
		{IssueID: "167059", Status: Unconfirmed, Family: "sat-umax", Pair: famSatUmax(2, 32, 7)},
		{IssueID: "167079", Status: Unconfirmed, Family: "vec-minmax-const", Pair: famVecMinMaxConst(4, 16, 10, 5)},
		{IssueID: "167090", Status: Unconfirmed, Family: "xor-neg-not", Pair: famXorNegNot(16)},
		{IssueID: "167094", Status: Duplicate, Family: "ctpop-bit", Pair: famCtpopBit(8)},
		{IssueID: "167096", Status: Confirmed, Family: "fneg-fneg", Pair: famFnegFneg("float")},
		{IssueID: "167173", Status: Confirmed, Family: "sub-add-cancel", Pair: famSubAddCancel(16)},
		{IssueID: "167178", Status: Unconfirmed, Family: "and-lshr-bit", Pair: famAndLshrBit(8)},
		{IssueID: "167183", Status: Confirmed, Family: "compl-mask", Pair: famComplMaskOr(16, 0xFF00)},
		{IssueID: "167190", Status: Confirmed, Family: "dead-store", Pair: famDeadStore(64)},
		{IssueID: "167199", Status: Wontfix, Family: "rotate", Pair: famRotate(8, 1)},
		{IssueID: "170020", Status: Confirmed, Family: "vec-absorb-or", Pair: famVecAbsorbOr(4, 32)},
		{IssueID: "170071", Status: Confirmed, Family: "clamp-vec", Pair: famClampVec(4, 16, 8, 255)},
	}
}

// PaperRQ2Counts holds Table 3's headline numbers.
var PaperRQ2Counts = struct {
	Total, Confirmed, Fixed, Duplicate, Wontfix, Unconfirmed int
	SouperDefault, SouperDefaultCF                           int
	SouperEnum, SouperEnumCF                                 int
	Minotaur, MinotaurCF                                     int
}{
	Total: 62, Confirmed: 28, Fixed: 13, Duplicate: 4, Wontfix: 3, Unconfirmed: 14,
	SouperDefault: 6, SouperDefaultCF: 3,
	SouperEnum: 20, SouperEnumCF: 14,
	Minotaur: 13, MinotaurCF: 10,
}

// PatchImpact is one row of the paper's Table 5: the LLVM Opt Benchmark
// impact and compile-time delta of an accepted patch.
type PatchImpact struct {
	PatchID   string  // issue ID, possibly with a (n) suffix for multi-patch fixes
	IssueID   string  // plain issue ID (keys into opt's patch rules)
	IRFiles   int     // paper: #impacted IR files (-1 = N/A)
	Projects  int     // paper: #impacted projects (-1 = N/A)
	DeltaPct  float64 // paper: compile-time delta, percent (+ = slower); NaN-like -999 = N/A
	HasDelta  bool
	HasCounts bool
}

// Table5 returns the paper's Table 5 rows.
func Table5() []PatchImpact {
	return []PatchImpact{
		{PatchID: "128134", IssueID: "128134", IRFiles: 54, Projects: 13, DeltaPct: 0.02, HasDelta: true, HasCounts: true},
		{PatchID: "133367", IssueID: "133367", IRFiles: 122, Projects: 18, HasCounts: true},
		{PatchID: "142674", IssueID: "142674", IRFiles: 251, Projects: 15, DeltaPct: 0.05, HasDelta: true, HasCounts: true},
		{PatchID: "142711", IssueID: "142711", IRFiles: 10, Projects: 1, DeltaPct: -0.00, HasDelta: true, HasCounts: true},
		{PatchID: "143211", IssueID: "143211", IRFiles: 16, Projects: 4, HasCounts: true},
		{PatchID: "143636", IssueID: "143636", IRFiles: 2476, Projects: 68, DeltaPct: 0.02, HasDelta: true, HasCounts: true},
		{PatchID: "154238", IssueID: "154238", IRFiles: 10, Projects: 4, HasCounts: true},
		{PatchID: "157315", IssueID: "157315", IRFiles: 6, Projects: 2, DeltaPct: 0.00, HasDelta: true, HasCounts: true},
		{PatchID: "157370", IssueID: "157370", DeltaPct: 0.04, HasDelta: true},
		{PatchID: "157371 (1)", IssueID: "157371", IRFiles: 10, Projects: 13, HasCounts: true},
		{PatchID: "157371 (2)", IssueID: "157371", IRFiles: 28, Projects: 1, DeltaPct: 0.02, HasDelta: true, HasCounts: true},
		{PatchID: "157524", IssueID: "157524", DeltaPct: -0.03, HasDelta: true},
		{PatchID: "163108 (1)", IssueID: "163108", IRFiles: 3055, Projects: 93, DeltaPct: -0.05, HasDelta: true, HasCounts: true},
		{PatchID: "163108 (2)", IssueID: "163108", IRFiles: 28, Projects: 4, DeltaPct: -0.01, HasDelta: true, HasCounts: true},
		{PatchID: "166973", IssueID: "166973", IRFiles: 759, Projects: 62, HasCounts: true},
	}
}

// FindingByID returns the RQ2 finding with the given issue ID, or nil.
func FindingByID(id string) *Finding {
	for _, f := range RQ2Findings() {
		if f.IssueID == id {
			return f
		}
	}
	return nil
}
