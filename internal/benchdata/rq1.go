package benchdata

// ModelNames lists the six models of Table 1/Table 2 in column order.
var ModelNames = []string{"Gemma3", "Llama3.3", "Gemini2.0", "Gemini2.0T", "GPT-4.1", "o4-mini"}

// Cell is the per-(benchmark, model) calibration from the paper's Table 2:
// how many of the five rounds succeeded without feedback (LPO-) and with the
// full closed loop (LPO).
type Cell struct {
	Minus int // LPO- successes out of 5
	Plus  int // LPO successes out of 5
}

// RQ1Case is one of the 25 previously-reported missed optimizations.
type RQ1Case struct {
	IssueID string
	Pair    Pair
	// Cal maps model name -> Table 2 calibration; absent models never
	// detect the case.
	Cal map[string]Cell
}

// RQ1Cases returns the Table 2 benchmark suite. IR contents are synthetic
// family instances (see package comment); calibration counts are arranged to
// reproduce the paper's per-model Total and Average rows exactly.
func RQ1Cases() []*RQ1Case {
	return []*RQ1Case{
		{IssueID: "104875", Pair: famFcmpOrdSel("double", "2.000000e+00"), Cal: map[string]Cell{
			"Gemini2.0T": {1, 5}, "o4-mini": {0, 1}}},
		{IssueID: "107228", Pair: famShlLshrRound(8, 1), Cal: map[string]Cell{
			"Llama3.3": {5, 5}, "Gemini2.0T": {2, 5}, "GPT-4.1": {0, 4}, "o4-mini": {4, 5}}},
		{IssueID: "108451", Pair: famAndNotSelf(8), Cal: map[string]Cell{
			"Llama3.3": {5, 5}, "Gemini2.0": {5, 5}, "Gemini2.0T": {5, 5}, "GPT-4.1": {1, 4}, "o4-mini": {2, 5}}},
		{IssueID: "108559", Pair: famXorAndOr(8), Cal: map[string]Cell{
			"Llama3.3": {5, 5}, "Gemini2.0": {4, 5}, "Gemini2.0T": {3, 5}, "GPT-4.1": {1, 4}, "o4-mini": {4, 5}}},
		{IssueID: "110591", Pair: famClampVec(4, 32, 8, 255), Cal: map[string]Cell{
			"Llama3.3": {5, 5}, "Gemini2.0": {5, 5}, "Gemini2.0T": {5, 5}, "GPT-4.1": {2, 5}, "o4-mini": {3, 5}}},
		{IssueID: "115466", Pair: famSubOrAnd(8), Cal: map[string]Cell{
			"Gemma3": {1, 1}, "Llama3.3": {5, 5}, "Gemini2.0": {5, 5}, "Gemini2.0T": {5, 5}, "GPT-4.1": {3, 4}, "o4-mini": {5, 5}}},
		{IssueID: "118155", Pair: famUmaxShlChain(16, 2, 1, 32), Cal: map[string]Cell{
			"Gemma3": {3, 3}, "Gemini2.0T": {0, 4}}},
		{IssueID: "122235", Pair: famSelectEqZero(32), Cal: map[string]Cell{
			"Gemini2.0": {0, 1}, "Gemini2.0T": {5, 5}, "GPT-4.1": {0, 2}, "o4-mini": {2, 5}}},
		{IssueID: "122388", Pair: famLoadMerge(8), Cal: map[string]Cell{
			"Gemini2.0": {4, 4}, "Gemini2.0T": {0, 2}, "GPT-4.1": {1, 2}, "o4-mini": {2, 3}}},
		{IssueID: "126056", Pair: famOrNotSelf(8), Cal: map[string]Cell{
			"Gemini2.0": {1, 4}, "Gemini2.0T": {5, 5}, "GPT-4.1": {1, 4}, "o4-mini": {5, 5}}},
		{IssueID: "128475", Pair: famAndLshrBit(8), Cal: map[string]Cell{
			"Gemini2.0T": {4, 5}, "GPT-4.1": {0, 2}, "o4-mini": {0, 2}}},
		{IssueID: "128778", Pair: famXorNegNot(8), Cal: map[string]Cell{
			"Gemini2.0": {0, 1}, "Gemini2.0T": {3, 3}, "o4-mini": {3, 5}}},
		{IssueID: "129947", Pair: famSatUmax(4, 8, 16), Cal: map[string]Cell{
			"Gemini2.0T": {0, 1}}},
		{IssueID: "131444", Pair: famMulUdivCancelVec(2, 32), Cal: map[string]Cell{}},
		{IssueID: "131824", Pair: famNegViaXor(8), Cal: map[string]Cell{
			"Gemini2.0T": {0, 3}, "o4-mini": {0, 1}}},
		{IssueID: "132508", Pair: famICmpConstTrue(64, 7, 9), Cal: map[string]Cell{
			"Gemma3": {0, 2}, "Llama3.3": {1, 5}, "Gemini2.0": {0, 1}, "Gemini2.0T": {3, 5}, "GPT-4.1": {2, 3}, "o4-mini": {3, 5}}},
		{IssueID: "134318", Pair: famFnegFneg("double"), Cal: map[string]Cell{}},
		{IssueID: "135411", Pair: famOrComplMaskSelf(8), Cal: map[string]Cell{
			"Llama3.3": {0, 5}, "Gemini2.0": {5, 5}, "Gemini2.0T": {1, 1}, "o4-mini": {5, 5}}},
		{IssueID: "137161", Pair: famVecMinMaxConst(4, 16, 10, 5), Cal: map[string]Cell{
			"Gemini2.0T": {0, 2}}},
		{IssueID: "141479", Pair: famComplMaskOr(8, 0xF0), Cal: map[string]Cell{
			"Gemini2.0T": {5, 5}, "o4-mini": {4, 5}}},
		{IssueID: "141753", Pair: famAddAndOr(8), Cal: map[string]Cell{
			"Gemini2.0T": {0, 1}, "o4-mini": {0, 1}}},
		{IssueID: "141930", Pair: famShlLshrRound(8, 2), Cal: map[string]Cell{
			"Gemini2.0": {0, 1}, "Gemini2.0T": {5, 5}, "GPT-4.1": {0, 2}, "o4-mini": {5, 5}}},
		{IssueID: "142497", Pair: famCtpopBit(8), Cal: map[string]Cell{
			"Gemini2.0T": {0, 1}, "GPT-4.1": {0, 1}}},
		{IssueID: "142593", Pair: famLshrShlRound(8, 4), Cal: map[string]Cell{
			"o4-mini": {3, 3}}},
		{IssueID: "143259", Pair: famDeadStore(32), Cal: map[string]Cell{}},
	}
}

// PaperRQ1Totals is the paper's Table 2 "Total" row (benchmarks detected at
// least once in five rounds), per model, for LPO- and LPO.
var PaperRQ1Totals = map[string]Cell{
	"Gemma3":     {2, 3},
	"Llama3.3":   {6, 7},
	"Gemini2.0":  {7, 11},
	"Gemini2.0T": {14, 21},
	"GPT-4.1":    {7, 12},
	"o4-mini":    {14, 18},
}

// PaperRQ1Averages is the paper's Table 2 "Average" row (successful
// benchmarks per round), per model, for LPO- and LPO, times 10 to stay
// integral (e.g. 10.4 -> 104).
var PaperRQ1Averages = map[string][2]int{
	"Gemma3":     {8, 12},
	"Llama3.3":   {52, 70},
	"Gemini2.0":  {58, 74},
	"Gemini2.0T": {104, 156},
	"GPT-4.1":    {22, 74},
	"o4-mini":    {100, 142},
}

// PaperRQ1Baselines records the paper's baseline totals on Table 2:
// Souper default 3, Souper with Enum 1-3 up to 14 (15 in total counting the
// default-only case), Minotaur 3.
var PaperRQ1Baselines = struct {
	SouperDefault, SouperEnum, SouperTotal, Minotaur int
}{3, 14, 15, 3}
