package benchdata

import (
	"testing"

	"repro/internal/alive"
	"repro/internal/ir"
	"repro/internal/mca"
	"repro/internal/opt"
	"repro/internal/parser"
)

// checkPair validates the core contract of every registry entry: both sides
// parse, the target refines the source, the baseline optimizer cannot already
// shrink the source (otherwise it would not be a *missed* optimization), and
// the target is "interesting" (fewer instructions, fewer estimated cycles,
// or at least syntactically different at equal size).
func checkPair(t *testing.T, id string, p Pair) {
	t.Helper()
	src, err := parser.ParseFunc(p.Src)
	if err != nil {
		t.Fatalf("%s: src does not parse: %v\n%s", id, err, p.Src)
	}
	tgt, err := parser.ParseFunc(p.Tgt)
	if err != nil {
		t.Fatalf("%s: tgt does not parse: %v\n%s", id, err, p.Tgt)
	}
	optimized := opt.RunO3(src)
	if optimized.NumInstrs(true) < src.NumInstrs(true) {
		t.Fatalf("%s: baseline optimizer already improves the source:\n%s\n->\n%s",
			id, src, optimized)
	}
	r := alive.Verify(src, tgt, alive.Options{Seed: 42, Samples: 1024})
	if r.Verdict != alive.Correct {
		msg := r.Err
		if r.CE != nil {
			msg = r.CE.Format()
		}
		t.Fatalf("%s: target does not refine source:\n%s", id, msg)
	}
	model := mca.BTVer2()
	sr, tr := mca.Analyze(src, model), mca.Analyze(tgt, model)
	interesting := tr.Instructions < sr.Instructions ||
		tr.TotalCycles < sr.TotalCycles ||
		(tr.Instructions == sr.Instructions && tr.TotalCycles == sr.TotalCycles &&
			ir.Hash(src) != ir.Hash(tgt))
	if !interesting {
		t.Fatalf("%s: target is not interesting: src %d instrs/%d cycles, tgt %d instrs/%d cycles",
			id, sr.Instructions, sr.TotalCycles, tr.Instructions, tr.TotalCycles)
	}
}

func TestRQ1PairsAreValid(t *testing.T) {
	cases := RQ1Cases()
	if len(cases) != 25 {
		t.Fatalf("expected 25 RQ1 cases, got %d", len(cases))
	}
	seen := make(map[string]bool)
	for _, c := range cases {
		if seen[c.IssueID] {
			t.Fatalf("duplicate issue ID %s", c.IssueID)
		}
		seen[c.IssueID] = true
		t.Run(c.IssueID, func(t *testing.T) { checkPair(t, c.IssueID, c.Pair) })
	}
}

func TestRQ1CalibrationMatchesPaperTotals(t *testing.T) {
	totals := make(map[string]Cell)
	sums := make(map[string][2]int)
	for _, c := range RQ1Cases() {
		for model, cell := range c.Cal {
			if cell.Minus > cell.Plus {
				t.Fatalf("%s/%s: LPO- count %d exceeds LPO count %d",
					c.IssueID, model, cell.Minus, cell.Plus)
			}
			if cell.Plus > 5 || cell.Minus < 0 {
				t.Fatalf("%s/%s: counts out of range", c.IssueID, model)
			}
			tot := totals[model]
			if cell.Minus > 0 {
				tot.Minus++
			}
			if cell.Plus > 0 {
				tot.Plus++
			}
			totals[model] = tot
			s := sums[model]
			s[0] += cell.Minus
			s[1] += cell.Plus
			sums[model] = s
		}
	}
	for model, want := range PaperRQ1Totals {
		if totals[model] != want {
			t.Errorf("%s: totals = %+v, paper says %+v", model, totals[model], want)
		}
	}
	for model, want := range PaperRQ1Averages {
		// Average per round x10 = sum * 10 / 5 = sum * 2.
		got := [2]int{sums[model][0] * 2, sums[model][1] * 2}
		if got != want {
			t.Errorf("%s: averages x10 = %v, paper says %v", model, got, want)
		}
	}
}

func TestRQ2FindingsAreValid(t *testing.T) {
	findings := RQ2Findings()
	if len(findings) != 62 {
		t.Fatalf("expected 62 findings, got %d", len(findings))
	}
	seen := make(map[string]bool)
	for _, f := range findings {
		if seen[f.IssueID] {
			t.Fatalf("duplicate issue ID %s", f.IssueID)
		}
		seen[f.IssueID] = true
		t.Run(f.IssueID, func(t *testing.T) { checkPair(t, f.IssueID, f.Pair) })
	}
}

func TestRQ2StatusCountsMatchPaper(t *testing.T) {
	counts := make(map[Status]int)
	for _, f := range RQ2Findings() {
		counts[f.Status]++
	}
	want := PaperRQ2Counts
	if counts[Confirmed] != want.Confirmed || counts[Fixed] != want.Fixed ||
		counts[Duplicate] != want.Duplicate || counts[Wontfix] != want.Wontfix ||
		counts[Unconfirmed] != want.Unconfirmed {
		t.Fatalf("status counts %v do not match the paper's 28/13/4/3/14", counts)
	}
}

func TestTable5ReferencesRealPatches(t *testing.T) {
	known := make(map[string]bool)
	for _, id := range opt.PatchIDs() {
		known[id] = true
	}
	rows := Table5()
	if len(rows) != 15 {
		t.Fatalf("Table 5 should have 15 patch rows, got %d", len(rows))
	}
	for _, row := range rows {
		if !known[row.IssueID] {
			t.Errorf("Table 5 row %s references unknown patch %s", row.PatchID, row.IssueID)
		}
		if FindingByID(row.IssueID) == nil {
			t.Errorf("Table 5 row %s has no RQ2 finding", row.PatchID)
		}
		if FindingByID(row.IssueID).Status != Fixed {
			t.Errorf("Table 5 row %s should reference a Fixed issue", row.PatchID)
		}
	}
}

// The full knowledge base (patch rules + kb rules) must rewrite every
// registry source into something that refines it — this is what the
// simulated LLM emits as a candidate when it "finds" an optimization.
func TestKnowledgeBaseCoversAllCases(t *testing.T) {
	all := opt.AllRuleNames()
	check := func(t *testing.T, id string, p Pair) {
		t.Helper()
		src := parser.MustParseFunc(p.Src)
		ideal := opt.Run(src, opt.Options{Patches: all})
		if ir.Hash(ideal) == ir.Hash(src) {
			t.Fatalf("%s: knowledge base has no rewrite for:\n%s", id, src)
		}
		r := alive.Verify(src, ideal, alive.Options{Seed: 11, Samples: 1024})
		if r.Verdict != alive.Correct {
			t.Fatalf("%s: knowledge base rewrite does not refine:\n%s\n%s", id, ideal, r.CE.Format())
		}
	}
	for _, c := range RQ1Cases() {
		t.Run("rq1-"+c.IssueID, func(t *testing.T) { check(t, c.IssueID, c.Pair) })
	}
	for _, f := range RQ2Findings() {
		t.Run("rq2-"+f.IssueID, func(t *testing.T) { check(t, f.IssueID, f.Pair) })
	}
}

// Every fixed RQ2 finding must be optimized by its own patch rule: enabling
// the patch must make the baseline optimizer rewrite the source.
func TestPatchesCoverFixedFindings(t *testing.T) {
	for _, f := range RQ2Findings() {
		if f.Status != Fixed {
			continue
		}
		t.Run(f.IssueID, func(t *testing.T) {
			src := parser.MustParseFunc(f.Pair.Src)
			patched := opt.Run(src, opt.Options{Patches: []string{f.IssueID}})
			if ir.Hash(patched) == ir.Hash(src) {
				t.Fatalf("patch %s does not fire on its own finding:\n%s", f.IssueID, src)
			}
			r := alive.Verify(src, patched, alive.Options{Seed: 9, Samples: 1024})
			if r.Verdict != alive.Correct {
				t.Fatalf("patch %s output does not refine:\n%s\n%s", f.IssueID, patched, r.CE.Format())
			}
		})
	}
}
