package ir

// CloneFunc returns a deep copy of f. Instructions and parameters are fresh
// objects; constants are shared (they are immutable).
func CloneFunc(f *Func) *Func {
	vmap := make(map[Value]Value)
	nf := &Func{Name: f.Name, Ret: f.Ret}
	for _, p := range f.Params {
		np := &Param{Nm: p.Nm, Ty: p.Ty}
		vmap[p] = np
		nf.Params = append(nf.Params, np)
	}
	// First pass: create instruction shells so forward references (phis)
	// can be resolved.
	type pair struct{ old, new *Instr }
	var all []pair
	for _, b := range f.Blocks {
		nb := &Block{Name: b.Name}
		for _, in := range b.Instrs {
			ni := &Instr{
				Op: in.Op, Nm: in.Nm, Ty: in.Ty, IPredV: in.IPredV,
				FPredV: in.FPredV, Flags: in.Flags, Callee: in.Callee,
				ElemTy: in.ElemTy, Align: in.Align,
			}
			ni.Labels = append(ni.Labels, in.Labels...)
			vmap[in] = ni
			nb.Instrs = append(nb.Instrs, ni)
			all = append(all, pair{in, ni})
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	for _, pr := range all {
		for _, a := range pr.old.Args {
			if m, ok := vmap[a]; ok {
				pr.new.Args = append(pr.new.Args, m)
			} else {
				pr.new.Args = append(pr.new.Args, a)
			}
		}
	}
	return nf
}

// RenameValues rewrites all result and parameter names in f to sequential
// numeric names (%0, %1, ...) in definition order, matching how LLVM prints
// unnamed values. It mutates f in place and returns it.
func RenameValues(f *Func) *Func {
	n := 0
	next := func() string {
		s := itoa(n)
		n++
		return s
	}
	for _, p := range f.Params {
		p.Nm = next()
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.HasResult() {
				in.Nm = next()
			}
		}
	}
	return f
}
