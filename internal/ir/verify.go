package ir

import (
	"fmt"
)

// VerifyError describes a structural or type error found in a function.
type VerifyError struct {
	Func  string
	Instr string
	Msg   string
}

func (e *VerifyError) Error() string {
	if e.Instr != "" {
		return fmt.Sprintf("ir: function @%s: %q: %s", e.Func, e.Instr, e.Msg)
	}
	return fmt.Sprintf("ir: function @%s: %s", e.Func, e.Msg)
}

// VerifyFunc checks SSA well-formedness and basic type rules:
// defs dominate uses (straight-line approximation: defined earlier in the
// same block, in a preceding block, or a phi incoming value), unique result
// names, non-empty terminated blocks, and per-opcode operand typing.
func VerifyFunc(f *Func) error {
	errf := func(in *Instr, format string, args ...any) error {
		is := ""
		if in != nil {
			is = in.String()
		}
		return &VerifyError{Func: f.Name, Instr: is, Msg: fmt.Sprintf(format, args...)}
	}
	if len(f.Blocks) == 0 {
		return errf(nil, "function has no body")
	}
	defined := make(map[Value]bool)
	names := make(map[string]bool)
	for _, p := range f.Params {
		if names[p.Nm] {
			return errf(nil, "duplicate parameter name %%%s", p.Nm)
		}
		names[p.Nm] = true
		defined[p] = true
	}
	// Pre-collect all instruction results so phi forward references verify.
	resultOf := make(map[Value]bool)
	blockNames := make(map[string]bool)
	for _, b := range f.Blocks {
		if blockNames[b.Name] {
			return errf(nil, "duplicate block label %%%s", b.Name)
		}
		blockNames[b.Name] = true
		for _, in := range b.Instrs {
			if in.HasResult() {
				if names[in.Nm] {
					return errf(in, "duplicate result name %%%s", in.Nm)
				}
				names[in.Nm] = true
				resultOf[in] = true
			}
		}
	}
	for bi, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return errf(nil, "block %%%s is empty", b.Name)
		}
		for k, in := range b.Instrs {
			isLast := k == len(b.Instrs)-1
			if in.IsTerminator() != isLast {
				if in.IsTerminator() {
					return errf(in, "terminator in the middle of block %%%s", b.Name)
				}
				return errf(in, "block %%%s does not end with a terminator", b.Name)
			}
			for ai, a := range in.Args {
				if a == nil {
					return errf(in, "operand %d is nil", ai)
				}
				if IsConst(a) {
					continue
				}
				if in.Op == OpPhi {
					// Phi operands may be defined later (loop carried).
					if !defined[a] && !resultOf[a] {
						return errf(in, "phi operand %s is not defined in the function", a.Ident())
					}
					continue
				}
				if !defined[a] {
					if resultOf[a] {
						return errf(in, "use of %s before its definition", a.Ident())
					}
					return errf(in, "use of undefined value %s", a.Ident())
				}
			}
			if err := checkTypes(f, in, bi); err != nil {
				return err
			}
			if in.HasResult() {
				defined[in] = true
			}
		}
	}
	return nil
}

func checkTypes(f *Func, in *Instr, _ int) error {
	errf := func(format string, args ...any) error {
		return &VerifyError{Func: f.Name, Instr: in.String(), Msg: fmt.Sprintf(format, args...)}
	}
	argTy := func(i int) Type { return in.Args[i].Type() }
	want := func(n int) error {
		if len(in.Args) != n {
			return errf("expected %d operands, have %d", n, len(in.Args))
		}
		return nil
	}
	switch {
	case in.Op.IsIntBinary():
		if err := want(2); err != nil {
			return err
		}
		if !IsInt(in.Ty) {
			return errf("integer op on non-integer type %s", in.Ty)
		}
		if !Equal(argTy(0), in.Ty) || !Equal(argTy(1), in.Ty) {
			return errf("operand types %s, %s do not match result type %s", argTy(0), argTy(1), in.Ty)
		}
	case in.Op == OpFAdd || in.Op == OpFSub || in.Op == OpFMul || in.Op == OpFDiv:
		if err := want(2); err != nil {
			return err
		}
		if !IsFloat(in.Ty) {
			return errf("fp op on non-fp type %s", in.Ty)
		}
		if !Equal(argTy(0), in.Ty) || !Equal(argTy(1), in.Ty) {
			return errf("operand types do not match result type %s", in.Ty)
		}
	case in.Op == OpFNeg:
		if err := want(1); err != nil {
			return err
		}
		if !IsFloat(in.Ty) || !Equal(argTy(0), in.Ty) {
			return errf("fneg type mismatch")
		}
	case in.Op == OpICmp:
		if err := want(2); err != nil {
			return err
		}
		if !Equal(argTy(0), argTy(1)) {
			return errf("icmp operand types differ: %s vs %s", argTy(0), argTy(1))
		}
		if !IsInt(argTy(0)) && !IsPtr(Elem(argTy(0))) {
			return errf("icmp on non-integer type %s", argTy(0))
		}
		if !Equal(in.Ty, WithLanes(argTy(0), I1)) {
			return errf("icmp result must be %s, have %s", WithLanes(argTy(0), I1), in.Ty)
		}
	case in.Op == OpFCmp:
		if err := want(2); err != nil {
			return err
		}
		if !Equal(argTy(0), argTy(1)) || !IsFloat(argTy(0)) {
			return errf("fcmp operand type error")
		}
	case in.Op == OpSelect:
		if err := want(3); err != nil {
			return err
		}
		condOK := Equal(argTy(0), I1) || Equal(argTy(0), WithLanes(in.Ty, I1))
		if !condOK {
			return errf("select condition must be i1 or lane-matching vector of i1, have %s", argTy(0))
		}
		if !Equal(argTy(1), in.Ty) || !Equal(argTy(2), in.Ty) {
			return errf("select arms must match result type %s", in.Ty)
		}
	case in.Op == OpFreeze:
		if err := want(1); err != nil {
			return err
		}
		if !Equal(argTy(0), in.Ty) {
			return errf("freeze type mismatch")
		}
	case in.Op == OpZExt || in.Op == OpSExt:
		if err := want(1); err != nil {
			return err
		}
		if !IsInt(argTy(0)) || !IsInt(in.Ty) || Lanes(argTy(0)) != Lanes(in.Ty) {
			return errf("%s requires matching integer lane shapes", in.Op.Name())
		}
		if ScalarBits(argTy(0)) >= ScalarBits(in.Ty) {
			return errf("%s must widen: %s to %s", in.Op.Name(), argTy(0), in.Ty)
		}
	case in.Op == OpTrunc:
		if err := want(1); err != nil {
			return err
		}
		if !IsInt(argTy(0)) || !IsInt(in.Ty) || Lanes(argTy(0)) != Lanes(in.Ty) {
			return errf("trunc requires matching integer lane shapes")
		}
		if ScalarBits(argTy(0)) <= ScalarBits(in.Ty) {
			return errf("trunc must narrow: %s to %s", argTy(0), in.Ty)
		}
	case in.Op == OpGEP:
		if len(in.Args) < 2 {
			return errf("getelementptr needs a base pointer and at least one index")
		}
		if !IsPtr(argTy(0)) {
			return errf("getelementptr base must be ptr")
		}
		if in.ElemTy == nil {
			return errf("getelementptr missing element type")
		}
	case in.Op == OpLoad:
		if err := want(1); err != nil {
			return err
		}
		if !IsPtr(argTy(0)) {
			return errf("load address must be ptr")
		}
	case in.Op == OpStore:
		if err := want(2); err != nil {
			return err
		}
		if !IsPtr(argTy(1)) {
			return errf("store address must be ptr")
		}
	case in.Op == OpCall:
		if in.Callee == "" {
			return errf("call without callee")
		}
	case in.Op == OpBr:
		if len(in.Args) == 0 && len(in.Labels) != 1 {
			return errf("unconditional br needs one label")
		}
		if len(in.Args) == 1 && (len(in.Labels) != 2 || !Equal(argTy(0), I1)) {
			return errf("conditional br needs an i1 condition and two labels")
		}
		for _, l := range in.Labels {
			if f.BlockByName(l) == nil {
				return errf("br to unknown label %%%s", l)
			}
		}
	case in.Op == OpPhi:
		if len(in.Args) == 0 || len(in.Args) != len(in.Labels) {
			return errf("phi needs matching value/label pairs")
		}
		for _, a := range in.Args {
			if !Equal(a.Type(), in.Ty) {
				return errf("phi incoming type %s does not match %s", a.Type(), in.Ty)
			}
		}
	case in.Op == OpRet:
		if len(in.Args) == 1 {
			if !Equal(argTy(0), f.Ret) {
				return errf("ret type %s does not match function return type %s", argTy(0), f.Ret)
			}
		} else if !IsVoid(f.Ret) {
			return errf("ret void in a function returning %s", f.Ret)
		}
	case in.Op == OpExtractElt:
		if err := want(2); err != nil {
			return err
		}
		if !IsVector(argTy(0)) {
			return errf("extractelement needs a vector")
		}
	case in.Op == OpInsertElt:
		if err := want(3); err != nil {
			return err
		}
		if !IsVector(argTy(0)) || !Equal(argTy(0), in.Ty) {
			return errf("insertelement type error")
		}
	case in.Op == OpShuffle:
		if err := want(3); err != nil {
			return err
		}
		if !IsVector(argTy(0)) || !Equal(argTy(0), argTy(1)) {
			return errf("shufflevector input vectors must match")
		}
	}
	return nil
}

// VerifyModule verifies every function in the module.
func VerifyModule(m *Module) error {
	for _, f := range m.Funcs {
		if err := VerifyFunc(f); err != nil {
			return err
		}
	}
	return nil
}
