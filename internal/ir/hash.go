package ir

import (
	"hash/fnv"
	"io"
	"strconv"
)

// Hash computes a structural 64-bit digest of f that is independent of value
// names: parameters and instruction results are numbered canonically in
// definition order, so two functions that differ only in naming hash equal.
// The paper's extractor (Alg. 2 line 9) uses exactly such an opcode+operand
// hash for deduplication.
func Hash(f *Func) uint64 {
	h := fnv.New64a()
	idx := make(map[Value]int)
	n := 0
	for _, p := range f.Params {
		idx[p] = n
		n++
		io.WriteString(h, "p:"+p.Ty.String()+";")
	}
	io.WriteString(h, "r:"+f.Ret.String()+";")
	key := func(v Value) string {
		if i, ok := idx[v]; ok {
			return "v" + strconv.Itoa(i)
		}
		return "c:" + v.Type().String() + " " + v.Ident()
	}
	for _, b := range f.Blocks {
		io.WriteString(h, "b;")
		for _, in := range b.Instrs {
			io.WriteString(h, in.Op.Name())
			io.WriteString(h, "/"+strconv.FormatUint(uint64(in.Flags), 16))
			io.WriteString(h, "/"+in.Ty.String())
			if in.Op == OpICmp {
				io.WriteString(h, "/"+in.IPredV.Name())
			}
			if in.Op == OpFCmp {
				io.WriteString(h, "/"+in.FPredV.Name())
			}
			if in.Callee != "" {
				io.WriteString(h, "/@"+in.Callee)
			}
			if in.ElemTy != nil {
				io.WriteString(h, "/e"+in.ElemTy.String())
			}
			for _, a := range in.Args {
				io.WriteString(h, ","+key(a))
			}
			for _, l := range in.Labels {
				io.WriteString(h, ",%"+l)
			}
			io.WriteString(h, ";")
			if in.HasResult() {
				idx[in] = n
				n++
			}
		}
	}
	return h.Sum64()
}

// StructurallyEqual reports whether two functions are identical up to value
// naming.
func StructurallyEqual(a, b *Func) bool {
	return Hash(a) == Hash(b) && a.NumInstrs(false) == b.NumInstrs(false)
}
