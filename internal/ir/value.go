package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is anything that can appear as an instruction operand: function
// parameters, instruction results, and constants.
type Value interface {
	// Type returns the value's IR type.
	Type() Type
	// Ident renders the operand reference without its type, e.g. "%x",
	// "42", "true", "zeroinitializer", "splat (i32 255)".
	Ident() string
}

// Param is a function parameter.
type Param struct {
	Nm string
	Ty Type
}

func (p *Param) Type() Type    { return p.Ty }
func (p *Param) Ident() string { return "%" + p.Nm }

// ConstInt is an integer constant. V holds the bit pattern truncated to the
// type's width.
type ConstInt struct {
	Ty IntType
	V  uint64
}

// MaskW returns the bit mask for a w-bit integer.
func MaskW(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// SignExt sign-extends the w-bit pattern v to 64 bits and returns it as int64.
func SignExt(v uint64, w int) int64 {
	if w >= 64 {
		return int64(v)
	}
	v &= MaskW(w)
	if v&(uint64(1)<<uint(w-1)) != 0 {
		v |= ^MaskW(w)
	}
	return int64(v)
}

// CInt builds an integer constant of type t from a signed value, truncating
// to the type's width.
func CInt(t IntType, v int64) *ConstInt {
	return &ConstInt{Ty: t, V: uint64(v) & MaskW(t.W)}
}

// CBool builds an i1 constant.
func CBool(b bool) *ConstInt {
	if b {
		return &ConstInt{Ty: I1, V: 1}
	}
	return &ConstInt{Ty: I1, V: 0}
}

func (c *ConstInt) Type() Type { return c.Ty }

func (c *ConstInt) Ident() string {
	if c.Ty.W == 1 {
		if c.V&1 == 1 {
			return "true"
		}
		return "false"
	}
	return strconv.FormatInt(SignExt(c.V, c.Ty.W), 10)
}

// ConstFloat is a floating point constant. F always stores the value as a
// float64; for "float"-typed constants it must be exactly representable in
// binary32 (the printer does not check).
type ConstFloat struct {
	Ty FloatType
	F  float64
}

// CFloat builds a float constant.
func CFloat(t FloatType, f float64) *ConstFloat { return &ConstFloat{Ty: t, F: f} }

func (c *ConstFloat) Type() Type { return c.Ty }

func (c *ConstFloat) Ident() string {
	// LLVM prints simple values in scientific notation with 6 fractional
	// digits, e.g. 0.000000e+00, 1.000000e+00, 2.550000e+02.
	return fmt.Sprintf("%e", c.F)
}

// ConstVec is an explicit vector constant: <i32 1, i32 2, ...>.
type ConstVec struct {
	Ty    VecType
	Elems []Value
}

func (c *ConstVec) Type() Type { return c.Ty }

func (c *ConstVec) Ident() string {
	parts := make([]string, len(c.Elems))
	for i, e := range c.Elems {
		parts[i] = e.Type().String() + " " + e.Ident()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Splat is a splat vector constant: splat (i32 255).
type Splat struct {
	Ty   VecType
	Elem Value
}

// CSplat builds a splat constant vector of n lanes.
func CSplat(n int, elem Value) *Splat {
	return &Splat{Ty: VecT(n, elem.Type()), Elem: elem}
}

func (c *Splat) Type() Type { return c.Ty }

func (c *Splat) Ident() string {
	return "splat (" + c.Elem.Type().String() + " " + c.Elem.Ident() + ")"
}

// Zero is the zeroinitializer constant for vector types.
type Zero struct{ Ty Type }

func (c *Zero) Type() Type    { return c.Ty }
func (c *Zero) Ident() string { return "zeroinitializer" }

// Undef is the undef constant of any first-class type.
type Undef struct{ Ty Type }

func (c *Undef) Type() Type    { return c.Ty }
func (c *Undef) Ident() string { return "undef" }

// PoisonVal is the poison constant of any first-class type.
type PoisonVal struct{ Ty Type }

func (c *PoisonVal) Type() Type    { return c.Ty }
func (c *PoisonVal) Ident() string { return "poison" }

// Null is the null pointer constant.
type Null struct{}

func (c *Null) Type() Type    { return Ptr }
func (c *Null) Ident() string { return "null" }

// IsConst reports whether v is a constant (not a param or instruction).
func IsConst(v Value) bool {
	switch v.(type) {
	case *ConstInt, *ConstFloat, *ConstVec, *Splat, *Zero, *Undef, *PoisonVal, *Null:
		return true
	}
	return false
}

// IntConstValue returns the scalar integer constant bit pattern held by v
// (possibly behind a splat), and whether v is such a constant. Vector
// constants qualify only if all lanes agree.
func IntConstValue(v Value) (uint64, bool) {
	switch c := v.(type) {
	case *ConstInt:
		return c.V, true
	case *Splat:
		return IntConstValue(c.Elem)
	case *Zero:
		if IsInt(c.Ty) {
			return 0, true
		}
	case *ConstVec:
		var first uint64
		for i, e := range c.Elems {
			x, ok := IntConstValue(e)
			if !ok {
				return 0, false
			}
			if i == 0 {
				first = x
			} else if x != first {
				return 0, false
			}
		}
		if len(c.Elems) > 0 {
			return first, true
		}
	}
	return 0, false
}

// ZeroValue returns the all-zero constant of type t.
func ZeroValue(t Type) Value {
	switch x := t.(type) {
	case IntType:
		return &ConstInt{Ty: x, V: 0}
	case FloatType:
		return &ConstFloat{Ty: x, F: 0}
	case VecType:
		return &Zero{Ty: x}
	case PtrType:
		return &Null{}
	}
	return &Undef{Ty: t}
}

// SplatInt returns a constant of type t (scalar int or int vector) where all
// lanes hold the signed value v.
func SplatInt(t Type, v int64) Value {
	elem, ok := Elem(t).(IntType)
	if !ok {
		panic("ir.SplatInt: not an integer type: " + t.String())
	}
	c := CInt(elem, v)
	if vt, ok := t.(VecType); ok {
		if v == 0 {
			return &Zero{Ty: vt}
		}
		return &Splat{Ty: vt, Elem: c}
	}
	return c
}
