package ir

// Block is a basic block: a label and a sequence of instructions, the last
// of which is a terminator in well-formed functions.
type Block struct {
	Name   string
	Instrs []*Instr
}

// Terminator returns the block's final instruction if it is a terminator,
// else nil.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.IsTerminator() {
		return last
	}
	return nil
}

// Func is an IR function definition.
type Func struct {
	Name   string
	Ret    Type
	Params []*Param
	Blocks []*Block
}

// Entry returns the function's entry block, or nil for declarations.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// BlockByName returns the block with the given label, or nil.
func (f *Func) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// NumInstrs counts the instructions in the function, excluding terminators
// when excludeTerminators is set (the paper's instruction-count metric
// ignores the ret appended by wrapping).
func (f *Func) NumInstrs(excludeTerminators bool) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if excludeTerminators && in.IsTerminator() {
				continue
			}
			n++
		}
	}
	return n
}

// Instrs returns all instructions in block order.
func (f *Func) Instrs() []*Instr {
	var out []*Instr
	for _, b := range f.Blocks {
		out = append(out, b.Instrs...)
	}
	return out
}

// ParamByName returns the parameter with the given name, or nil.
func (f *Func) ParamByName(name string) *Param {
	for _, p := range f.Params {
		if p.Nm == name {
			return p
		}
	}
	return nil
}

// Module is a translation unit: an ordered list of function definitions.
type Module struct {
	Name  string
	Funcs []*Func
}

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// NewFunc builds a single-block function with the given instructions.
// The block is named "entry" implicitly (printed only when referenced).
func NewFunc(name string, ret Type, params []*Param, instrs []*Instr) *Func {
	return &Func{
		Name:   name,
		Ret:    ret,
		Params: params,
		Blocks: []*Block{{Name: "entry", Instrs: instrs}},
	}
}
