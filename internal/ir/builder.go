package ir

// Builder helpers construct well-typed instructions concisely. They are used
// pervasively by the optimizer, the benchmark registries and the tests.

// Bin builds an integer or FP binary operation; the result type is taken
// from the first operand.
func Bin(op Opcode, name string, flags Flags, a, b Value) *Instr {
	return &Instr{Op: op, Nm: name, Ty: a.Type(), Args: []Value{a, b}, Flags: flags}
}

// ICmpI builds an integer comparison; the result is i1 or a vector of i1.
func ICmpI(name string, p IPred, a, b Value) *Instr {
	return &Instr{Op: OpICmp, Nm: name, Ty: WithLanes(a.Type(), I1), Args: []Value{a, b}, IPredV: p}
}

// FCmpI builds a floating point comparison.
func FCmpI(name string, p FPred, a, b Value) *Instr {
	return &Instr{Op: OpFCmp, Nm: name, Ty: WithLanes(a.Type(), I1), Args: []Value{a, b}, FPredV: p}
}

// Sel builds a select instruction.
func Sel(name string, c, t, f Value) *Instr {
	return &Instr{Op: OpSelect, Nm: name, Ty: t.Type(), Args: []Value{c, t, f}}
}

// Conv builds a conversion to the given type.
func Conv(op Opcode, name string, a Value, to Type, flags Flags) *Instr {
	return &Instr{Op: op, Nm: name, Ty: to, Args: []Value{a}, Flags: flags}
}

// CallI builds an intrinsic call.
func CallI(name, callee string, ret Type, args ...Value) *Instr {
	return &Instr{Op: OpCall, Nm: name, Ty: ret, Args: args, Callee: callee, Flags: Tail}
}

// LoadI builds a load of the given type.
func LoadI(name string, ty Type, ptr Value, align int) *Instr {
	return &Instr{Op: OpLoad, Nm: name, Ty: ty, Args: []Value{ptr}, Align: align}
}

// StoreI builds a store.
func StoreI(v, ptr Value, align int) *Instr {
	return &Instr{Op: OpStore, Ty: Void, Args: []Value{v, ptr}, Align: align}
}

// GEPI builds a getelementptr with a single index.
func GEPI(name string, elem Type, ptr, idx Value, flags Flags) *Instr {
	return &Instr{Op: OpGEP, Nm: name, Ty: Ptr, Args: []Value{ptr, idx}, ElemTy: elem, Flags: flags}
}

// FreezeI builds a freeze.
func FreezeI(name string, a Value) *Instr {
	return &Instr{Op: OpFreeze, Nm: name, Ty: a.Type(), Args: []Value{a}}
}

// RetI builds a value return.
func RetI(v Value) *Instr {
	return &Instr{Op: OpRet, Ty: Void, Args: []Value{v}}
}

// RetVoid builds a void return.
func RetVoid() *Instr { return &Instr{Op: OpRet, Ty: Void} }

// BrI builds an unconditional branch.
func BrI(label string) *Instr {
	return &Instr{Op: OpBr, Ty: Void, Labels: []string{label}}
}

// CondBrI builds a conditional branch.
func CondBrI(cond Value, t, f string) *Instr {
	return &Instr{Op: OpBr, Ty: Void, Args: []Value{cond}, Labels: []string{t, f}}
}

// PhiI builds a phi node; vals and labels run in parallel.
func PhiI(name string, ty Type, vals []Value, labels []string) *Instr {
	return &Instr{Op: OpPhi, Nm: name, Ty: ty, Args: vals, Labels: labels}
}

// ExtractI builds an extractelement.
func ExtractI(name string, vec, idx Value) *Instr {
	v := vec.Type().(VecType)
	return &Instr{Op: OpExtractElt, Nm: name, Ty: v.Elem, Args: []Value{vec, idx}}
}

// InsertI builds an insertelement.
func InsertI(name string, vec, elem, idx Value) *Instr {
	return &Instr{Op: OpInsertElt, Nm: name, Ty: vec.Type(), Args: []Value{vec, elem, idx}}
}

// IntrinsicName builds an overloaded intrinsic name such as "llvm.umin.i32"
// or "llvm.smax.v4i32" from a base name and an overload type.
func IntrinsicName(base string, t Type) string {
	return "llvm." + base + "." + typeSuffix(t)
}

func typeSuffix(t Type) string {
	switch x := t.(type) {
	case VecType:
		return "v" + itoa(x.N) + typeSuffix(x.Elem)
	case IntType:
		return "i" + itoa(x.W)
	case FloatType:
		if x.W == 32 {
			return "f32"
		}
		return "f64"
	}
	return t.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// twoPartIntrinsicBases lists intrinsic base names that themselves contain a
// dot, so that IntrinsicBase("llvm.uadd.sat.i32") returns "uadd.sat".
var twoPartIntrinsicBases = []string{
	"uadd.sat", "usub.sat", "sadd.sat", "ssub.sat", "ushl.sat", "sshl.sat",
}

// IntrinsicBase extracts the base name from an overloaded intrinsic name:
// "llvm.umin.v4i32" -> "umin", "llvm.uadd.sat.i8" -> "uadd.sat".
// It returns "" for non-intrinsic callees.
func IntrinsicBase(callee string) string {
	const p = "llvm."
	if len(callee) < len(p) || callee[:len(p)] != p {
		return ""
	}
	rest := callee[len(p):]
	for _, b := range twoPartIntrinsicBases {
		if len(rest) >= len(b) && rest[:len(b)] == b {
			return b
		}
	}
	for i := 0; i < len(rest); i++ {
		if rest[i] == '.' {
			return rest[:i]
		}
	}
	return rest
}
