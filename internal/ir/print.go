package ir

import (
	"fmt"
	"strings"
)

// TypedOperand renders "type ident", e.g. "i32 %x".
func TypedOperand(v Value) string { return v.Type().String() + " " + v.Ident() }

func flagStr(f Flags, order ...Flags) string {
	var sb strings.Builder
	names := map[Flags]string{
		NUW: "nuw", NSW: "nsw", Exact: "exact", Disjoint: "disjoint",
		Inbounds: "inbounds", NNeg: "nneg",
	}
	for _, q := range order {
		if f.Has(q) {
			sb.WriteString(" ")
			sb.WriteString(names[q])
		}
	}
	return sb.String()
}

// String renders the instruction in .ll syntax (one line, no indentation).
func (i *Instr) String() string {
	var sb strings.Builder
	if i.HasResult() {
		sb.WriteString("%" + i.Nm + " = ")
	}
	switch {
	case i.Op.IsIntBinary():
		sb.WriteString(i.Op.Name())
		switch i.Op {
		case OpAdd, OpSub, OpMul, OpShl:
			sb.WriteString(flagStr(i.Flags, NUW, NSW))
		case OpUDiv, OpSDiv, OpLShr, OpAShr:
			sb.WriteString(flagStr(i.Flags, Exact))
		case OpOr:
			sb.WriteString(flagStr(i.Flags, Disjoint))
		}
		fmt.Fprintf(&sb, " %s %s, %s", i.Ty, i.Args[0].Ident(), i.Args[1].Ident())

	case i.Op == OpFAdd || i.Op == OpFSub || i.Op == OpFMul || i.Op == OpFDiv:
		fmt.Fprintf(&sb, "%s %s %s, %s", i.Op.Name(), i.Ty, i.Args[0].Ident(), i.Args[1].Ident())

	case i.Op == OpFNeg:
		fmt.Fprintf(&sb, "fneg %s %s", i.Ty, i.Args[0].Ident())

	case i.Op == OpICmp:
		fmt.Fprintf(&sb, "icmp %s %s %s, %s", i.IPredV.Name(), i.Args[0].Type(), i.Args[0].Ident(), i.Args[1].Ident())

	case i.Op == OpFCmp:
		fmt.Fprintf(&sb, "fcmp %s %s %s, %s", i.FPredV.Name(), i.Args[0].Type(), i.Args[0].Ident(), i.Args[1].Ident())

	case i.Op == OpSelect:
		fmt.Fprintf(&sb, "select %s, %s, %s",
			TypedOperand(i.Args[0]), TypedOperand(i.Args[1]), TypedOperand(i.Args[2]))

	case i.Op == OpFreeze:
		fmt.Fprintf(&sb, "freeze %s", TypedOperand(i.Args[0]))

	case i.Op.IsConversion():
		sb.WriteString(i.Op.Name())
		switch i.Op {
		case OpTrunc:
			sb.WriteString(flagStr(i.Flags, NUW, NSW))
		case OpZExt:
			sb.WriteString(flagStr(i.Flags, NNeg))
		}
		fmt.Fprintf(&sb, " %s to %s", TypedOperand(i.Args[0]), i.Ty)

	case i.Op == OpGEP:
		sb.WriteString("getelementptr")
		sb.WriteString(flagStr(i.Flags, Inbounds, NUW))
		fmt.Fprintf(&sb, " %s, %s", i.ElemTy, TypedOperand(i.Args[0]))
		for _, idx := range i.Args[1:] {
			fmt.Fprintf(&sb, ", %s", TypedOperand(idx))
		}

	case i.Op == OpLoad:
		fmt.Fprintf(&sb, "load %s, %s", i.Ty, TypedOperand(i.Args[0]))
		if i.Align > 0 {
			fmt.Fprintf(&sb, ", align %d", i.Align)
		}

	case i.Op == OpStore:
		fmt.Fprintf(&sb, "store %s, %s", TypedOperand(i.Args[0]), TypedOperand(i.Args[1]))
		if i.Align > 0 {
			fmt.Fprintf(&sb, ", align %d", i.Align)
		}

	case i.Op == OpCall:
		if i.Flags.Has(Tail) {
			sb.WriteString("tail ")
		}
		fmt.Fprintf(&sb, "call %s @%s(", i.Ty, i.Callee)
		for k, a := range i.Args {
			if k > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(TypedOperand(a))
		}
		sb.WriteString(")")

	case i.Op == OpExtractElt:
		fmt.Fprintf(&sb, "extractelement %s, %s", TypedOperand(i.Args[0]), TypedOperand(i.Args[1]))

	case i.Op == OpInsertElt:
		fmt.Fprintf(&sb, "insertelement %s, %s, %s",
			TypedOperand(i.Args[0]), TypedOperand(i.Args[1]), TypedOperand(i.Args[2]))

	case i.Op == OpShuffle:
		fmt.Fprintf(&sb, "shufflevector %s, %s, %s",
			TypedOperand(i.Args[0]), TypedOperand(i.Args[1]), TypedOperand(i.Args[2]))

	case i.Op == OpPhi:
		fmt.Fprintf(&sb, "phi %s ", i.Ty)
		for k := range i.Args {
			if k > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "[ %s, %%%s ]", i.Args[k].Ident(), i.Labels[k])
		}

	case i.Op == OpBr:
		if len(i.Args) == 0 {
			fmt.Fprintf(&sb, "br label %%%s", i.Labels[0])
		} else {
			fmt.Fprintf(&sb, "br %s, label %%%s, label %%%s",
				TypedOperand(i.Args[0]), i.Labels[0], i.Labels[1])
		}

	case i.Op == OpRet:
		if len(i.Args) == 0 {
			sb.WriteString("ret void")
		} else {
			fmt.Fprintf(&sb, "ret %s", TypedOperand(i.Args[0]))
		}

	case i.Op == OpUnreachable:
		sb.WriteString("unreachable")

	default:
		fmt.Fprintf(&sb, "<invalid op %d>", i.Op)
	}
	return sb.String()
}

// String renders the function definition in .ll syntax.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "define %s @%s(", f.Ret, f.Name)
	for k, p := range f.Params {
		if k > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %%%s", p.Ty, p.Nm)
	}
	sb.WriteString(") {\n")
	for bi, b := range f.Blocks {
		if bi > 0 || len(f.Blocks) > 1 {
			sb.WriteString(b.Name + ":\n")
		}
		for _, in := range b.Instrs {
			sb.WriteString("  " + in.String() + "\n")
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders the whole module.
func (m *Module) String() string {
	var sb strings.Builder
	for k, f := range m.Funcs {
		if k > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(f.String())
	}
	return sb.String()
}
