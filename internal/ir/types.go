// Package ir defines a compact model of the LLVM intermediate representation:
// types, constants, SSA instructions, basic blocks, functions and modules,
// together with a textual printer compatible with the .ll subset the LPO
// pipeline manipulates.
//
// The model deliberately covers only what peephole windows contain:
// fixed-width integers (i1..i64), float/double, fixed-length vectors, opaque
// pointers, and the straight-line and simple-CFG instructions that appear in
// the paper's figures (binary ops, comparisons, select, conversions,
// getelementptr, load/store, intrinsic calls, phi, br, ret).
package ir

import (
	"fmt"
)

// Type is the interface implemented by all IR types. Types are small value
// structs and are compared with Equal (structural equality).
type Type interface {
	// String renders the type in .ll syntax, e.g. "i32", "<4 x i8>", "ptr".
	String() string
	isType()
}

// IntType is an arbitrary-width integer type iN with 1 <= W <= 64.
type IntType struct{ W int }

// FloatType is an IEEE binary floating point type: W is 32 (float) or 64 (double).
type FloatType struct{ W int }

// VecType is a fixed-length vector <N x Elem> of integer or float elements.
type VecType struct {
	N    int
	Elem Type
}

// PtrType is the opaque pointer type "ptr".
type PtrType struct{}

// VoidType is the void type (function returns, store results).
type VoidType struct{}

// LabelType is the type of basic-block labels (br operands).
type LabelType struct{}

func (IntType) isType()   {}
func (FloatType) isType() {}
func (VecType) isType()   {}
func (PtrType) isType()   {}
func (VoidType) isType()  {}
func (LabelType) isType() {}

func (t IntType) String() string { return fmt.Sprintf("i%d", t.W) }

func (t FloatType) String() string {
	if t.W == 32 {
		return "float"
	}
	return "double"
}

func (t VecType) String() string { return fmt.Sprintf("<%d x %s>", t.N, t.Elem) }
func (PtrType) String() string   { return "ptr" }
func (VoidType) String() string  { return "void" }
func (LabelType) String() string { return "label" }

// Common type singletons.
var (
	I1   = IntType{1}
	I8   = IntType{8}
	I16  = IntType{16}
	I32  = IntType{32}
	I64  = IntType{64}
	F32  = FloatType{32}
	F64  = FloatType{64}
	Ptr  = PtrType{}
	Void = VoidType{}
)

// IntT returns the integer type with the given bit width.
func IntT(w int) IntType { return IntType{w} }

// VecT returns the vector type <n x elem>.
func VecT(n int, elem Type) VecType { return VecType{N: n, Elem: elem} }

// Equal reports whether two types are structurally identical.
func Equal(a, b Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	switch x := a.(type) {
	case IntType:
		y, ok := b.(IntType)
		return ok && x.W == y.W
	case FloatType:
		y, ok := b.(FloatType)
		return ok && x.W == y.W
	case VecType:
		y, ok := b.(VecType)
		return ok && x.N == y.N && Equal(x.Elem, y.Elem)
	case PtrType:
		_, ok := b.(PtrType)
		return ok
	case VoidType:
		_, ok := b.(VoidType)
		return ok
	case LabelType:
		_, ok := b.(LabelType)
		return ok
	}
	return false
}

// Lanes returns the number of lanes of t: N for vectors, 1 otherwise.
func Lanes(t Type) int {
	if v, ok := t.(VecType); ok {
		return v.N
	}
	return 1
}

// Elem returns the per-lane element type: Elem for vectors, t itself otherwise.
func Elem(t Type) Type {
	if v, ok := t.(VecType); ok {
		return v.Elem
	}
	return t
}

// IsInt reports whether t is an integer type or a vector of integers.
func IsInt(t Type) bool {
	_, ok := Elem(t).(IntType)
	return ok
}

// IsFloat reports whether t is a float type or a vector of floats.
func IsFloat(t Type) bool {
	_, ok := Elem(t).(FloatType)
	return ok
}

// IsVector reports whether t is a vector type.
func IsVector(t Type) bool {
	_, ok := t.(VecType)
	return ok
}

// IsPtr reports whether t is the pointer type.
func IsPtr(t Type) bool {
	_, ok := t.(PtrType)
	return ok
}

// IsVoid reports whether t is void.
func IsVoid(t Type) bool {
	_, ok := t.(VoidType)
	return ok
}

// ScalarBits returns the bit width of a scalar lane of t (pointer lanes count
// as 64 bits). It returns 0 for void/label.
func ScalarBits(t Type) int {
	switch e := Elem(t).(type) {
	case IntType:
		return e.W
	case FloatType:
		return e.W
	case PtrType:
		return 64
	default:
		return 0
	}
}

// StoreBytes returns the number of bytes a value of type t occupies in memory
// (lanes are padded to whole bytes, matching the layouts LPO windows use).
func StoreBytes(t Type) int {
	switch x := t.(type) {
	case VecType:
		return x.N * StoreBytes(x.Elem)
	case IntType:
		return (x.W + 7) / 8
	case FloatType:
		return x.W / 8
	case PtrType:
		return 8
	default:
		return 0
	}
}

// WithLanes returns t reshaped to the lane shape of ref: if ref is a vector,
// the result is a vector of t's element type with ref's lane count.
func WithLanes(ref Type, elem Type) Type {
	if v, ok := ref.(VecType); ok {
		return VecType{N: v.N, Elem: elem}
	}
	return elem
}
