package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeStringsAndEqual(t *testing.T) {
	cases := []struct {
		ty   Type
		want string
	}{
		{I1, "i1"}, {I8, "i8"}, {I32, "i32"}, {F32, "float"}, {F64, "double"},
		{Ptr, "ptr"}, {Void, "void"}, {VecT(4, I8), "<4 x i8>"},
		{VecT(2, F64), "<2 x double>"},
	}
	for _, c := range cases {
		if c.ty.String() != c.want {
			t.Errorf("%v prints %q, want %q", c.ty, c.ty.String(), c.want)
		}
		if !Equal(c.ty, c.ty) {
			t.Errorf("%v not equal to itself", c.ty)
		}
	}
	if Equal(I8, I16) || Equal(VecT(4, I8), VecT(8, I8)) || Equal(F32, I32) {
		t.Error("distinct types compare equal")
	}
}

func TestScalarBitsAndStoreBytes(t *testing.T) {
	if ScalarBits(VecT(4, I8)) != 8 || ScalarBits(I64) != 64 || ScalarBits(Ptr) != 64 {
		t.Error("ScalarBits wrong")
	}
	if StoreBytes(I1) != 1 || StoreBytes(I16) != 2 || StoreBytes(VecT(4, I32)) != 16 {
		t.Error("StoreBytes wrong")
	}
}

func TestSignExtMaskProperty(t *testing.T) {
	prop := func(v uint64, wRaw uint8) bool {
		w := int(wRaw%64) + 1
		s := SignExt(v, w)
		// Re-truncating the sign extension must recover the original bits.
		return uint64(s)&MaskW(w) == v&MaskW(w)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstIntPrinting(t *testing.T) {
	if CInt(I8, -1).Ident() != "-1" || CInt(I8, 255).Ident() != "-1" {
		t.Error("i8 255 must print as -1 (signed)")
	}
	if CBool(true).Ident() != "true" || CBool(false).Ident() != "false" {
		t.Error("i1 constants must print true/false")
	}
	if CInt(I32, 255).Ident() != "255" {
		t.Error("i32 255 must print as 255")
	}
}

func TestSplatIntShapes(t *testing.T) {
	if _, ok := SplatInt(I32, 5).(*ConstInt); !ok {
		t.Error("scalar SplatInt should be ConstInt")
	}
	if _, ok := SplatInt(VecT(4, I32), 0).(*Zero); !ok {
		t.Error("vector zero should be zeroinitializer")
	}
	if s, ok := SplatInt(VecT(4, I32), 7).(*Splat); !ok || s.Ident() != "splat (i32 7)" {
		t.Errorf("vector SplatInt should be a splat, got %v", SplatInt(VecT(4, I32), 7).Ident())
	}
}

func TestIntConstValueUniform(t *testing.T) {
	if v, ok := IntConstValue(CSplat(4, CInt(I8, 3))); !ok || v != 3 {
		t.Error("splat const value")
	}
	vec := &ConstVec{Ty: VecT(2, I8), Elems: []Value{CInt(I8, 1), CInt(I8, 2)}}
	if _, ok := IntConstValue(vec); ok {
		t.Error("non-uniform vector must not report a value")
	}
}

func TestPredicateAlgebra(t *testing.T) {
	for _, p := range []IPred{EQ, NE, UGT, UGE, ULT, ULE, SGT, SGE, SLT, SLE} {
		if p.Inverse().Inverse() != p {
			t.Errorf("double inverse of %s", p.Name())
		}
		if p.Swapped().Swapped() != p {
			t.Errorf("double swap of %s", p.Name())
		}
	}
	if SLT.Swapped() != SGT || ULT.Inverse() != UGE {
		t.Error("predicate algebra wrong")
	}
}

func TestIntrinsicNames(t *testing.T) {
	if IntrinsicName("umin", I32) != "llvm.umin.i32" {
		t.Error("scalar intrinsic name")
	}
	if IntrinsicName("smax", VecT(4, I32)) != "llvm.smax.v4i32" {
		t.Error("vector intrinsic name")
	}
	if IntrinsicBase("llvm.uadd.sat.i8") != "uadd.sat" {
		t.Error("two-part intrinsic base")
	}
	if IntrinsicBase("llvm.umin.v4i32") != "umin" {
		t.Error("simple intrinsic base")
	}
	if IntrinsicBase("not_an_intrinsic") != "" {
		t.Error("non-intrinsic base should be empty")
	}
}

func buildSample() *Func {
	x := &Param{Nm: "x", Ty: I32}
	a := Bin(OpAdd, "a", NSW, x, CInt(I32, 1))
	c := ICmpI("c", SLT, a, CInt(I32, 0))
	s := Sel("s", c, a, CInt(I32, 0))
	return NewFunc("f", I32, []*Param{x}, []*Instr{a, c, s, RetI(s)})
}

func TestHashIsNameIndependent(t *testing.T) {
	f := buildSample()
	g := CloneFunc(f)
	RenameValues(g)
	if Hash(f) != Hash(g) {
		t.Fatalf("renaming changed the hash:\n%s\n%s", f, g)
	}
	if !StructurallyEqual(f, g) {
		t.Fatal("renamed clone should be structurally equal")
	}
}

func TestHashDistinguishesStructure(t *testing.T) {
	f := buildSample()
	g := CloneFunc(f)
	g.Entry().Instrs[0].Flags = NUW // nsw -> nuw
	if Hash(f) == Hash(g) {
		t.Fatal("flag change must change the hash")
	}
	h := CloneFunc(f)
	h.Entry().Instrs[1].IPredV = SGT
	if Hash(f) == Hash(h) {
		t.Fatal("predicate change must change the hash")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := buildSample()
	g := CloneFunc(f)
	g.Entry().Instrs[0].Args[1] = CInt(I32, 99)
	if orig := f.Entry().Instrs[0].Args[1].(*ConstInt); orig.V == 99 {
		t.Fatal("clone shares mutable state with the original")
	}
	// Cloned instructions must reference cloned operands, not originals.
	if g.Entry().Instrs[1].Args[0] == f.Entry().Instrs[0] {
		t.Fatal("clone references original instruction")
	}
}

func TestVerifyCatchesBrokenFunctions(t *testing.T) {
	f := buildSample()
	f.Entry().Instrs = f.Entry().Instrs[:3] // drop the ret
	if err := VerifyFunc(f); err == nil {
		t.Fatal("missing terminator must fail verification")
	}
	g := buildSample()
	g.Entry().Instrs[2].Args[1] = &Param{Nm: "ghost", Ty: I32}
	if err := VerifyFunc(g); err == nil || !strings.Contains(err.Error(), "undefined value") {
		t.Fatalf("undefined operand must fail verification, got %v", err)
	}
	h := buildSample()
	h.Entry().Instrs[0].Nm = "x" // collides with the parameter
	if err := VerifyFunc(h); err == nil {
		t.Fatal("duplicate name must fail verification")
	}
}

func TestInstrStringFormats(t *testing.T) {
	x := &Param{Nm: "x", Ty: I32}
	cases := []struct {
		in   *Instr
		want string
	}{
		{Bin(OpAdd, "r", NUW|NSW, x, CInt(I32, 2)), "%r = add nuw nsw i32 %x, 2"},
		{Bin(OpOr, "r", Disjoint, x, x), "%r = or disjoint i32 %x, %x"},
		{Bin(OpUDiv, "r", Exact, x, CInt(I32, 4)), "%r = udiv exact i32 %x, 4"},
		{ICmpI("r", ULE, x, CInt(I32, 7)), "%r = icmp ule i32 %x, 7"},
		{Conv(OpTrunc, "r", x, I8, NUW), "%r = trunc nuw i32 %x to i8"},
		{CallI("r", "llvm.ctpop.i32", I32, x), "%r = tail call i32 @llvm.ctpop.i32(i32 %x)"},
		{FreezeI("r", x), "%r = freeze i32 %x"},
		{RetI(x), "ret i32 %x"},
		{RetVoid(), "ret void"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestNumInstrs(t *testing.T) {
	f := buildSample()
	if f.NumInstrs(true) != 3 || f.NumInstrs(false) != 4 {
		t.Fatalf("NumInstrs: %d/%d", f.NumInstrs(true), f.NumInstrs(false))
	}
}
