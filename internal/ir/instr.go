package ir

// Opcode enumerates the instruction set subset modelled by this package.
type Opcode int

// Instruction opcodes.
const (
	OpInvalid Opcode = iota

	// Integer binary operators.
	OpAdd
	OpSub
	OpMul
	OpUDiv
	OpSDiv
	OpURem
	OpSRem
	OpShl
	OpLShr
	OpAShr
	OpAnd
	OpOr
	OpXor

	// Floating point operators.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	// Comparisons and selection.
	OpICmp
	OpFCmp
	OpSelect
	OpFreeze

	// Conversions.
	OpZExt
	OpSExt
	OpTrunc
	OpFPExt
	OpFPTrunc
	OpSIToFP
	OpUIToFP
	OpFPToSI
	OpFPToUI
	OpBitcast
	OpPtrToInt
	OpIntToPtr

	// Memory.
	OpGEP
	OpLoad
	OpStore

	// Calls (intrinsics only in this subset).
	OpCall

	// Vector element manipulation.
	OpExtractElt
	OpInsertElt
	OpShuffle

	// Control flow.
	OpPhi
	OpBr
	OpRet
	OpUnreachable
)

var opcodeNames = map[Opcode]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpUDiv: "udiv", OpSDiv: "sdiv",
	OpURem: "urem", OpSRem: "srem", OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv", OpFNeg: "fneg",
	OpICmp: "icmp", OpFCmp: "fcmp", OpSelect: "select", OpFreeze: "freeze",
	OpZExt: "zext", OpSExt: "sext", OpTrunc: "trunc", OpFPExt: "fpext",
	OpFPTrunc: "fptrunc", OpSIToFP: "sitofp", OpUIToFP: "uitofp",
	OpFPToSI: "fptosi", OpFPToUI: "fptoui", OpBitcast: "bitcast",
	OpPtrToInt: "ptrtoint", OpIntToPtr: "inttoptr",
	OpGEP: "getelementptr", OpLoad: "load", OpStore: "store", OpCall: "call",
	OpExtractElt: "extractelement", OpInsertElt: "insertelement", OpShuffle: "shufflevector",
	OpPhi: "phi", OpBr: "br", OpRet: "ret", OpUnreachable: "unreachable",
}

// Name returns the .ll mnemonic of the opcode.
func (o Opcode) Name() string { return opcodeNames[o] }

// OpcodeByName maps .ll mnemonics back to opcodes; absent names map to OpInvalid.
func OpcodeByName(s string) Opcode {
	for op, n := range opcodeNames {
		if n == s {
			return op
		}
	}
	return OpInvalid
}

// IsBinary reports whether o is an integer or FP binary operator.
func (o Opcode) IsBinary() bool {
	return (o >= OpAdd && o <= OpXor) || (o >= OpFAdd && o <= OpFDiv)
}

// IsIntBinary reports whether o is an integer binary operator.
func (o Opcode) IsIntBinary() bool { return o >= OpAdd && o <= OpXor }

// IsConversion reports whether o is a conversion (cast) operator.
func (o Opcode) IsConversion() bool { return o >= OpZExt && o <= OpIntToPtr }

// IsTerminator reports whether o terminates a basic block.
func (o Opcode) IsTerminator() bool { return o == OpBr || o == OpRet || o == OpUnreachable }

// IsCommutative reports whether the operands of o may be swapped.
func (o Opcode) IsCommutative() bool {
	switch o {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpFAdd, OpFMul:
		return true
	}
	return false
}

// IPred is an integer comparison predicate.
type IPred int

// Integer comparison predicates.
const (
	IPredInvalid IPred = iota
	EQ
	NE
	UGT
	UGE
	ULT
	ULE
	SGT
	SGE
	SLT
	SLE
)

var ipredNames = map[IPred]string{
	EQ: "eq", NE: "ne", UGT: "ugt", UGE: "uge", ULT: "ult", ULE: "ule",
	SGT: "sgt", SGE: "sge", SLT: "slt", SLE: "sle",
}

// Name returns the .ll spelling of the predicate.
func (p IPred) Name() string { return ipredNames[p] }

// IPredByName maps spellings to predicates; absent names map to IPredInvalid.
func IPredByName(s string) IPred {
	for p, n := range ipredNames {
		if n == s {
			return p
		}
	}
	return IPredInvalid
}

// Swapped returns the predicate with operands exchanged (e.g. slt -> sgt).
func (p IPred) Swapped() IPred {
	switch p {
	case UGT:
		return ULT
	case UGE:
		return ULE
	case ULT:
		return UGT
	case ULE:
		return UGE
	case SGT:
		return SLT
	case SGE:
		return SLE
	case SLT:
		return SGT
	case SLE:
		return SGE
	}
	return p
}

// Inverse returns the logical negation of the predicate.
func (p IPred) Inverse() IPred {
	switch p {
	case EQ:
		return NE
	case NE:
		return EQ
	case UGT:
		return ULE
	case UGE:
		return ULT
	case ULT:
		return UGE
	case ULE:
		return UGT
	case SGT:
		return SLE
	case SGE:
		return SLT
	case SLT:
		return SGE
	case SLE:
		return SGT
	}
	return IPredInvalid
}

// IsSigned reports whether the predicate compares signed values.
func (p IPred) IsSigned() bool { return p >= SGT && p <= SLE }

// FPred is a floating point comparison predicate.
type FPred int

// Floating point comparison predicates.
const (
	FPredInvalid FPred = iota
	FPredFalse
	OEQ
	OGT
	OGE
	OLT
	OLE
	ONE
	ORD
	UEQ
	FUGT
	FUGE
	FULT
	FULE
	UNE
	UNO
	FPredTrue
)

var fpredNames = map[FPred]string{
	FPredFalse: "false", OEQ: "oeq", OGT: "ogt", OGE: "oge", OLT: "olt",
	OLE: "ole", ONE: "one", ORD: "ord", UEQ: "ueq", FUGT: "ugt", FUGE: "uge",
	FULT: "ult", FULE: "ule", UNE: "une", UNO: "uno", FPredTrue: "true",
}

// Name returns the .ll spelling of the predicate.
func (p FPred) Name() string { return fpredNames[p] }

// FPredByName maps spellings to predicates; absent names map to FPredInvalid.
func FPredByName(s string) FPred {
	for p, n := range fpredNames {
		if n == s {
			return p
		}
	}
	return FPredInvalid
}

// Flags is the set of instruction attributes that refine poison semantics or
// call/GEP behaviour.
type Flags uint32

// Instruction flags.
const (
	NUW      Flags = 1 << iota // no unsigned wrap (add/sub/mul/shl/trunc/GEP)
	NSW                        // no signed wrap (add/sub/mul/shl/trunc)
	Exact                      // exact division / shift right
	Disjoint                   // or with provably disjoint bits
	Inbounds                   // GEP stays within its object
	NNeg                       // zext of a non-negative value
	Tail                       // tail call marker
	NoFlags  Flags = 0
)

// Has reports whether all bits of q are set in f.
func (f Flags) Has(q Flags) bool { return f&q == q }

// Instr is a single SSA instruction. An Instr that produces a value is itself
// the Value representing its result.
type Instr struct {
	Op     Opcode
	Nm     string  // result name without the leading %; "" for void-valued
	Ty     Type    // result type; Void for store/br/unreachable and void ret
	Args   []Value // operands (for phi: incoming values)
	IPredV IPred   // valid when Op == OpICmp
	FPredV FPred   // valid when Op == OpFCmp
	Flags  Flags
	Callee string   // intrinsic name, e.g. "llvm.umin.i32", when Op == OpCall
	ElemTy Type     // GEP source element type
	Align  int      // load/store alignment (0 = unspecified)
	Labels []string // br successors; phi incoming block names
}

func (i *Instr) Type() Type    { return i.Ty }
func (i *Instr) Ident() string { return "%" + i.Nm }

// HasResult reports whether the instruction defines an SSA value.
func (i *Instr) HasResult() bool { return !IsVoid(i.Ty) }

// IsTerminator reports whether the instruction ends a basic block.
func (i *Instr) IsTerminator() bool { return i.Op.IsTerminator() }

// HasSideEffects reports whether the instruction may not be removed even
// when its result is unused. Dead loads and divisions ARE removable: deleting
// an instruction that could only have triggered UB makes the function more
// defined, which is a legal refinement (and matches LLVM's trivially-dead
// rules for non-volatile loads).
func (i *Instr) HasSideEffects() bool {
	switch i.Op {
	case OpStore, OpBr, OpRet, OpUnreachable:
		return true
	}
	return false
}

// MayTrap reports whether executing the instruction can raise UB (used by
// code motion and by the baselines' speculation checks, not by DCE).
func (i *Instr) MayTrap() bool {
	switch i.Op {
	case OpLoad, OpStore:
		return true
	case OpUDiv, OpSDiv, OpURem, OpSRem:
		if c, ok := IntConstValue(i.Args[1]); ok && c != 0 {
			return false
		}
		return true
	}
	return false
}

// DependsOn reports whether any operand of i is exactly the value v.
func (i *Instr) DependsOn(v Value) bool {
	for _, a := range i.Args {
		if a == v {
			return true
		}
	}
	return false
}
