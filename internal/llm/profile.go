// Package llm defines the chat-completion interface LPO drives and a
// deterministic simulated provider.
//
// The real system prompts proprietary models (paper Table 1); this offline
// reproduction substitutes a calibrated stochastic rewrite oracle (see
// DESIGN.md §3): whether a model "finds" a rewrite is drawn from seeded
// randomness calibrated against the paper's Table 2, but the *content* it
// emits — correct rewrites from the knowledge base, syntactically broken
// first drafts, or semantically wrong hallucinations — is real IR that the
// real verification pipeline accepts or refutes.
package llm

// Profile describes one model: identity (paper Table 1), a virtual
// throughput/cost model (paper Table 4), and error-channel rates.
type Profile struct {
	Name      string // display name, e.g. "Gemini2.0T"
	Version   string // API model id
	Reasoning bool
	Cutoff    string // knowledge cutoff (informational)

	// Virtual performance/cost model.
	TokensPerSecond float64 // output tokens per second
	PromptOverhead  float64 // seconds per request (network, prefill)
	ReasoningTokens int     // extra output tokens burned by reasoning models
	CostInPerMTok   float64 // USD per 1M input tokens (0 for local models)
	CostOutPerMTok  float64 // USD per 1M output tokens

	// Error channels.
	SyntaxErrRate float64 // P(first draft of a found rewrite is syntactically broken)
	DiscoverP     float64 // per-attempt find probability for uncalibrated prompts
}

// Profiles returns the models of the paper's Table 1 plus Gemini2.5 (used in
// RQ3 only). Throughput and cost constants are calibrated so Table 4's
// per-case times and total cost land near the paper's measurements.
func Profiles() map[string]Profile {
	return map[string]Profile{
		"Gemma3": {
			Name: "Gemma3", Version: "gemma3:27b", Cutoff: "08/2024",
			TokensPerSecond: 6, PromptOverhead: 0.6,
			SyntaxErrRate: 0.35, DiscoverP: 0.01,
		},
		"Llama3.3": {
			Name: "Llama3.3", Version: "llama3.3:70b", Cutoff: "12/2023",
			// A locally served 70B model: ~2 tokens/s under the shared-GPU
			// setup, which lands the Table 4 per-case time near 26 s.
			TokensPerSecond: 2.4, PromptOverhead: 1.2,
			SyntaxErrRate: 0.20, DiscoverP: 0.18,
		},
		"Gemini2.0": {
			Name: "Gemini2.0", Version: "gemini-2.0-flash", Cutoff: "08/2024",
			TokensPerSecond: 140, PromptOverhead: 0.5,
			CostInPerMTok: 0.10, CostOutPerMTok: 0.40,
			SyntaxErrRate: 0.12, DiscoverP: 0.2,
		},
		"Gemini2.0T": {
			Name: "Gemini2.0T", Version: "gemini-2.0-flash-thinking-exp-01-21",
			Reasoning: true, Cutoff: "08/2024",
			TokensPerSecond: 120, PromptOverhead: 0.6, ReasoningTokens: 1024,
			CostInPerMTok: 0.10, CostOutPerMTok: 0.40,
			SyntaxErrRate: 0.10, DiscoverP: 0.35,
		},
		"GPT-4.1": {
			Name: "GPT-4.1", Version: "gpt-4.1-2025-04-14", Cutoff: "06/2024",
			TokensPerSecond: 90, PromptOverhead: 0.7,
			CostInPerMTok: 2.0, CostOutPerMTok: 8.0,
			SyntaxErrRate: 0.08, DiscoverP: 0.22,
		},
		"o4-mini": {
			Name: "o4-mini", Version: "o4-mini-2025-04-16",
			Reasoning: true, Cutoff: "06/2024",
			TokensPerSecond: 80, PromptOverhead: 0.9, ReasoningTokens: 2048,
			CostInPerMTok: 1.1, CostOutPerMTok: 4.4,
			SyntaxErrRate: 0.06, DiscoverP: 0.33,
		},
		"Gemini2.5": {
			Name: "Gemini2.5", Version: "gemini-2.5-flash-lite",
			Reasoning: true, Cutoff: "01/2025",
			TokensPerSecond: 230, PromptOverhead: 0.4, ReasoningTokens: 1024,
			// Calibrated so 5,000 cases cost ~5.4 USD (paper §4.4).
			CostInPerMTok: 0.08, CostOutPerMTok: 0.75,
			SyntaxErrRate: 0.10, DiscoverP: 0.3,
		},
	}
}

// ProfileByName returns the named profile; it panics on unknown names to
// surface configuration mistakes early.
func ProfileByName(name string) Profile {
	p, ok := Profiles()[name]
	if !ok {
		panic("llm: unknown model " + name)
	}
	return p
}
