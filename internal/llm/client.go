package llm

import "context"

// Role of a chat message.
type Role string

// Chat roles.
const (
	RoleSystem    Role = "system"
	RoleUser      Role = "user"
	RoleAssistant Role = "assistant"
)

// Message is one chat turn.
type Message struct {
	Role    Role
	Content string
}

// Request is a chat-completion request. Round distinguishes repeated
// experiment rounds over the same prompt: a real API call would resample;
// the simulator folds Round into its seed.
type Request struct {
	Model    string
	Messages []Message
	Round    int
}

// Usage is the token/cost/latency accounting of one response. Latency and
// cost are *virtual*: they follow the profile's throughput and price tables
// rather than wall-clock time (DESIGN.md §3, substitution 4).
type Usage struct {
	InputTokens    int
	OutputTokens   int
	VirtualSeconds float64
	CostUSD        float64
	// Retries counts extra provider attempts spent by the Retrying wrapper
	// recovering from transient failures (0 when every request succeeds
	// first try).
	Retries int
}

// Add accumulates v into u field by field.
func (u *Usage) Add(v Usage) {
	u.InputTokens += v.InputTokens
	u.OutputTokens += v.OutputTokens
	u.VirtualSeconds += v.VirtualSeconds
	u.CostUSD += v.CostUSD
	u.Retries += v.Retries
}

// Response is a chat completion.
type Response struct {
	Text  string
	Usage Usage
}

// Client is the provider interface LPO drives. Implementations must be safe
// for concurrent Complete calls and must honor context cancellation: the
// engine fans requests out across a worker pool and cancels in-flight work
// when its context ends. Exactly one implementation exists in this offline
// reproduction (Sim); the interface keeps the pipeline compatible with a
// real HTTP-backed provider.
type Client interface {
	Complete(ctx context.Context, req Request) (Response, error)
	Profile() Profile
}

// EstimateTokens approximates the token count of a text the way API billing
// does (~4 characters per token).
func EstimateTokens(text string) int {
	n := len(text) / 4
	if n == 0 && len(text) > 0 {
		n = 1
	}
	return n
}
