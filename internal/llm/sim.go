package llm

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/parser"
)

// Calibration is the per-(model, benchmark) success calibration from the
// paper's Table 2: successes out of five rounds on the first attempt
// (Minus, the LPO- setting) and within the full feedback loop (Plus).
type Calibration struct {
	Minus int
	Plus  int
}

// Sim is the deterministic simulated model. Whether a rewrite is "found" is
// drawn from seeded randomness (calibrated per benchmark when a calibration
// entry exists, Profile.DiscoverP otherwise); the emitted text is real IR
// produced by the knowledge base, possibly corrupted through the paper's two
// observed failure channels (syntax errors, Figure 3b; semantically wrong
// candidates refuted by the verifier, §3).
type Sim struct {
	prof Profile
	seed uint64
	cal  map[uint64]Calibration // keyed by ir.Hash of the prompted function
	// kb is the full rule registry (patches + knowledge base) as an ordered
	// RuleSet: rule order is deterministic and the opcode-indexed dispatch
	// table is built once and shared across every Complete call.
	kb *opt.RuleSet
}

// NewSim builds a simulated client for the named model.
func NewSim(model string, seed uint64) *Sim {
	return &Sim{
		prof: ProfileByName(model),
		seed: seed,
		cal:  make(map[uint64]Calibration),
		kb:   opt.FullRuleSet(),
	}
}

// Profile returns the model profile.
func (s *Sim) Profile() Profile { return s.prof }

// Calibrate registers a Table 2 calibration entry for the function with the
// given structural hash. Calibrate must not be called concurrently with
// Complete; calibrate once up front, then hand the Sim to the engine.
func (s *Sim) Calibrate(h uint64, c Calibration) { s.cal[h] = c }

// SystemPrompt is the instruction LPO sends (paper Figure 2).
const SystemPrompt = "If the provided instruction sequence is suboptimal, " +
	"output the optimal and correct implementation. If the result is " +
	"incorrect, revise it based on the provided feedback."

// Complete implements Client. All per-call state is derived from the request
// alone, so concurrent Complete calls are safe. Cancellation is checked up
// front: a real provider would abort the HTTP round trip.
func (s *Sim) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	inTokens := 0
	attempt := 0
	firstUser := ""
	for _, m := range req.Messages {
		inTokens += EstimateTokens(m.Content)
		if m.Role == RoleUser {
			attempt++
			if firstUser == "" {
				firstUser = m.Content
			}
		}
	}
	if attempt == 0 {
		return Response{}, fmt.Errorf("llm: request has no user message")
	}
	text := s.respond(firstUser, attempt, req.Round)
	outTokens := EstimateTokens(text) + s.prof.ReasoningTokens
	usage := Usage{
		InputTokens:    inTokens,
		OutputTokens:   outTokens,
		VirtualSeconds: s.prof.PromptOverhead + float64(outTokens)/s.prof.TokensPerSecond,
		CostUSD: float64(inTokens)/1e6*s.prof.CostInPerMTok +
			float64(outTokens)/1e6*s.prof.CostOutPerMTok,
	}
	return Response{Text: text, Usage: usage}, nil
}

// respond produces the assistant turn for the given attempt.
func (s *Sim) respond(prompt string, attempt, round int) string {
	fnText := ExtractFunc(prompt)
	if fnText == "" {
		return "I could not find an LLVM IR function in the request."
	}
	src, err := parser.ParseFunc(fnText)
	if err != nil {
		return wrapIR(fnText)
	}
	h := ir.Hash(src)
	rng := s.rng(h, round)
	uChannel := rng.Float64()

	ideal := opt.Run(src, opt.Options{Rules: s.kb})
	known := ir.Hash(ideal) != h

	s1, s2 := s.successFor(h, round, rng)
	if !known {
		// Nothing in the knowledge base: echo the input (LPO will classify
		// it as uninteresting and move on — Alg. 1 line 16).
		return wrapIR(src.String())
	}
	if attempt <= 1 {
		if s1 {
			return wrapIR(ideal.String())
		}
		// First attempt fails: emit one of the two failure channels so the
		// feedback loop has something to repair.
		if uChannel < s.prof.SyntaxErrRate {
			return wrapIR(corruptSyntax(ideal))
		}
		if wrong, ok := hallucinate(ideal); ok {
			return wrapIR(wrong.String())
		}
		return wrapIR(src.String())
	}
	// Second (or later) attempt with feedback.
	if s2 {
		return wrapIR(ideal.String())
	}
	return wrapIR(src.String())
}

// successFor decides the two attempt outcomes for a given round. Calibrated
// prompts are *stratified*: within each block of five rounds the model
// succeeds on exactly Minus first attempts and Plus overall, in a
// hash-seeded round order — reproducing the paper's Table 2 cells exactly
// while still interleaving the failure channels. Uncalibrated prompts use
// independent Bernoulli draws at the profile's discovery rate.
func (s *Sim) successFor(h uint64, round int, rng *rand.Rand) (s1, s2 bool) {
	c, ok := s.cal[h]
	if !ok {
		return rng.Float64() < s.prof.DiscoverP, rng.Float64() < s.prof.DiscoverP
	}
	perm := s.rng(h, -1).Perm(5)
	slot := perm[((round%5)+5)%5]
	return slot < c.Minus, slot < c.Plus
}

func (s *Sim) rng(h uint64, round int) *rand.Rand {
	f := fnv.New64a()
	fmt.Fprintf(f, "%s|%d|%d|%d", s.prof.Name, s.seed, h, round)
	return rand.New(rand.NewSource(int64(f.Sum64())))
}

// wrapIR renders an assistant message around a function body the way chat
// models answer (prose + fenced code).
func wrapIR(fn string) string {
	return "Here is the optimized instruction sequence:\n\n```llvm\n" +
		strings.TrimRight(fn, "\n") + "\n```\n"
}

// ExtractFunc pulls the first complete "define ... { ... }" block out of a
// chat message (both prompts and the simulator's own answers use this).
func ExtractFunc(text string) string {
	idx := strings.Index(text, "define ")
	if idx < 0 {
		return ""
	}
	rest := text[idx:]
	end := strings.Index(rest, "\n}")
	if end < 0 {
		return ""
	}
	return rest[:end+2]
}

// corruptSyntax reproduces the paper's Figure 3b failure: a min/max
// intrinsic call written as a bare (non-existent) opcode, or a conversion
// missing its "to" keyword.
func corruptSyntax(f *ir.Func) string {
	text := f.String()
	for _, base := range []string{"smax", "smin", "umax", "umin"} {
		marker := "call"
		needle := "@llvm." + base + "."
		if i := strings.Index(text, needle); i >= 0 {
			// Rewrite "%n = tail call T @llvm.smax.suf(T %a, T %b)" into
			// "%n = smax T %a, T %b".
			lineStart := strings.LastIndex(text[:i], "\n") + 1
			lineEnd := i + strings.Index(text[i:], "\n")
			line := text[lineStart:lineEnd]
			eq := strings.Index(line, "= ")
			open := strings.Index(line, "(")
			if eq < 0 || open < 0 {
				continue
			}
			args := strings.TrimSuffix(strings.TrimSpace(line[open+1:]), ")")
			broken := line[:eq+2] + base + " " + args
			_ = marker
			return text[:lineStart] + broken + text[lineEnd:]
		}
	}
	if i := strings.Index(text, " to "); i >= 0 {
		return text[:i] + " " + text[i+4:]
	}
	if strings.Contains(text, "= ") {
		// Mangle the first opcode.
		return strings.Replace(text, "= ", "= optimize ", 1)
	}
	// Instruction-free bodies (identity/constant rewrites): break the ret so
	// the corruption is never a silent no-op.
	return strings.Replace(text, "ret ", "return ", 1)
}

// hallucinate derives a semantically wrong but well-formed candidate from a
// correct rewrite: the first integer constant is bumped by one, or a stray
// operation is appended to the returned value. It reports false when the
// function offers nothing to perturb (e.g. void results with no constants).
func hallucinate(f *ir.Func) (*ir.Func, bool) {
	g := ir.CloneFunc(f)
	for _, in := range g.Instrs() {
		for ai, a := range in.Args {
			switch c := a.(type) {
			case *ir.ConstInt:
				in.Args[ai] = ir.CInt(c.Ty, ir.SignExt(c.V, c.Ty.W)+1)
				return g, true
			case *ir.Splat:
				if e, ok := c.Elem.(*ir.ConstInt); ok {
					in.Args[ai] = &ir.Splat{Ty: c.Ty, Elem: ir.CInt(e.Ty, ir.SignExt(e.V, e.Ty.W)+1)}
					return g, true
				}
			}
		}
	}
	// No constants: twiddle the returned value.
	last := g.Blocks[len(g.Blocks)-1]
	term := last.Terminator()
	if term == nil || term.Op != ir.OpRet || len(term.Args) == 0 {
		return nil, false
	}
	rv := term.Args[0]
	switch {
	case ir.IsInt(rv.Type()):
		x := ir.Bin(ir.OpXor, "hallu", ir.NoFlags, rv, ir.SplatInt(rv.Type(), 1))
		last.Instrs = append(last.Instrs[:len(last.Instrs)-1], x, term)
		term.Args[0] = x
		return g, true
	case ir.IsFloat(rv.Type()) && !ir.IsVector(rv.Type()):
		one := &ir.ConstFloat{Ty: rv.Type().(ir.FloatType), F: 1}
		x := ir.Bin(ir.OpFAdd, "hallu", ir.NoFlags, rv, one)
		last.Instrs = append(last.Instrs[:len(last.Instrs)-1], x, term)
		term.Args[0] = x
		return g, true
	}
	return nil, false
}
