package llm

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// flakyClient fails its first failN Complete calls with err, then succeeds.
type flakyClient struct {
	failN int
	err   error
	calls int
}

func (c *flakyClient) Profile() Profile { return Profile{Name: "flaky"} }
func (c *flakyClient) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	c.calls++
	if c.calls <= c.failN {
		return Response{Usage: Usage{InputTokens: 1}}, c.err
	}
	return Response{Text: "ok", Usage: Usage{InputTokens: 1, OutputTokens: 2}}, nil
}

type transientErr struct{ transient bool }

func (e *transientErr) Error() string   { return fmt.Sprintf("transient=%v", e.transient) }
func (e *transientErr) Transient() bool { return e.transient }

// instantSleep records requested backoff delays without waiting.
func instantSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

// TestRetryRecoversTransient: two transient failures then success — the
// caller sees one successful response whose usage accumulates all three
// attempts and counts the retries.
func TestRetryRecoversTransient(t *testing.T) {
	var delays []time.Duration
	inner := &flakyClient{failN: 2, err: &transientErr{transient: true}}
	r := NewRetrying(inner, RetryPolicy{Seed: 9, Sleep: instantSleep(&delays)})
	resp, err := r.Complete(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "ok" || inner.calls != 3 {
		t.Fatalf("resp %q after %d calls", resp.Text, inner.calls)
	}
	if resp.Usage.Retries != 2 {
		t.Fatalf("Usage.Retries = %d, want 2", resp.Usage.Retries)
	}
	if resp.Usage.InputTokens != 3 {
		t.Fatalf("usage did not accumulate failed attempts: %+v", resp.Usage)
	}
	if len(delays) != 2 || delays[1] < delays[0] {
		t.Fatalf("backoff not increasing: %v", delays)
	}
}

// TestRetryJitterDeterministic: the same seed produces the same backoff
// schedule; a different seed does not.
func TestRetryJitterDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		var delays []time.Duration
		inner := &flakyClient{failN: 3, err: &transientErr{transient: true}}
		r := NewRetrying(inner, RetryPolicy{Seed: seed, Sleep: instantSleep(&delays)})
		if _, err := r.Complete(context.Background(), Request{}); err != nil {
			t.Fatal(err)
		}
		return delays
	}
	a, b := schedule(5), schedule(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed schedules differ: %v vs %v", a, b)
		}
	}
	c := schedule(6)
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Fatalf("different seeds produced identical jitter: %v", a)
	}
}

// TestRetryPermanentFailsFast: a permanent error is not retried.
func TestRetryPermanentFailsFast(t *testing.T) {
	perm := &transientErr{transient: false}
	inner := &flakyClient{failN: 10, err: perm}
	var delays []time.Duration
	r := NewRetrying(inner, RetryPolicy{Sleep: instantSleep(&delays)})
	_, err := r.Complete(context.Background(), Request{})
	if !errors.Is(err, perm) {
		t.Fatalf("want the permanent error back, got %v", err)
	}
	if inner.calls != 1 || len(delays) != 0 {
		t.Fatalf("permanent error retried: %d calls, %v", inner.calls, delays)
	}
}

// TestRetryExhaustion: transient failures beyond MaxAttempts surface the
// last error.
func TestRetryExhaustion(t *testing.T) {
	inner := &flakyClient{failN: 100, err: &transientErr{transient: true}}
	var delays []time.Duration
	r := NewRetrying(inner, RetryPolicy{MaxAttempts: 3, BreakerThreshold: -1, Sleep: instantSleep(&delays)})
	if _, err := r.Complete(context.Background(), Request{}); err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if inner.calls != 3 {
		t.Fatalf("MaxAttempts 3: %d calls", inner.calls)
	}
}

// TestRetryDeadline: the per-request deadline bounds the whole retry loop.
func TestRetryDeadline(t *testing.T) {
	inner := &flakyClient{failN: 100, err: &transientErr{transient: true}}
	r := NewRetrying(inner, RetryPolicy{
		MaxAttempts: 100,
		Deadline:    20 * time.Millisecond,
		BaseDelay:   5 * time.Millisecond,
	})
	start := time.Now()
	_, err := r.Complete(context.Background(), Request{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the loop: %v", elapsed)
	}
}

// TestCircuitBreaker: consecutive failures trip the breaker, shed requests
// return ErrCircuitOpen without touching the provider, every Nth rejected
// request probes, and a successful probe closes the circuit.
func TestCircuitBreaker(t *testing.T) {
	inner := &flakyClient{failN: 4, err: &transientErr{transient: true}}
	var delays []time.Duration
	r := NewRetrying(inner, RetryPolicy{
		MaxAttempts:      2,
		BreakerThreshold: 4,
		BreakerProbe:     3,
		Sleep:            instantSleep(&delays),
	})
	// Two requests x two attempts = four consecutive failures: trips.
	for i := 0; i < 2; i++ {
		if _, err := r.Complete(context.Background(), Request{}); err == nil {
			t.Fatal("failing provider reported success")
		}
	}
	if open, _ := r.Breaker(); !open {
		t.Fatal("breaker did not trip after threshold failures")
	}
	calls := inner.calls
	// Shed: the next two requests are rejected without a provider call.
	for i := 0; i < 2; i++ {
		if _, err := r.Complete(context.Background(), Request{}); !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("open breaker: want ErrCircuitOpen, got %v", err)
		}
	}
	if inner.calls != calls {
		t.Fatal("open breaker let non-probe requests through")
	}
	// Third rejected request is the probe; the provider has recovered
	// (failN exhausted), so the probe succeeds and closes the circuit.
	if _, err := r.Complete(context.Background(), Request{}); err != nil {
		t.Fatalf("probe request failed: %v", err)
	}
	if open, _ := r.Breaker(); open {
		t.Fatal("successful probe did not close the breaker")
	}
	if _, err := r.Complete(context.Background(), Request{}); err != nil {
		t.Fatalf("closed breaker rejected a request: %v", err)
	}
}

// TestIsTransientClassification pins the default classifier.
func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{ErrCircuitOpen, false},
		{&transientErr{transient: true}, true},
		{&transientErr{transient: false}, false},
		{errors.New("mystery network flake"), true},
		{fmt.Errorf("wrapped: %w", &transientErr{transient: false}), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
