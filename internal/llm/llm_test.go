package llm

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/parser"
)

func TestProfilesCoverPaperModels(t *testing.T) {
	want := []string{"Gemma3", "Llama3.3", "Gemini2.0", "Gemini2.0T", "GPT-4.1", "o4-mini", "Gemini2.5"}
	for _, name := range want {
		p := ProfileByName(name)
		if p.TokensPerSecond <= 0 {
			t.Errorf("%s: no throughput model", name)
		}
	}
	if !ProfileByName("Gemini2.0T").Reasoning || ProfileByName("Gemini2.0").Reasoning {
		t.Error("reasoning flags wrong")
	}
}

func TestExtractFunc(t *testing.T) {
	text := "some prose\n\ndefine i8 @f(i8 %x) {\n  ret i8 %x\n}\ntrailing"
	got := ExtractFunc(text)
	if !strings.HasPrefix(got, "define i8 @f") || !strings.HasSuffix(got, "\n}") {
		t.Fatalf("extraction wrong: %q", got)
	}
	if ExtractFunc("no ir here") != "" {
		t.Fatal("extraction should fail without a define")
	}
}

const kbCase = `define i8 @src(i8 %x, i8 %y) {
  %a = and i8 %x, %y
  %o = or i8 %x, %y
  %r = xor i8 %a, %o
  ret i8 %r
}`

func TestSimEmitsKnowledgeBaseRewrite(t *testing.T) {
	src := parser.MustParseFunc(kbCase)
	sim := NewSim("Gemini2.0T", 3)
	sim.Calibrate(ir.Hash(src), Calibration{Minus: 5, Plus: 5})
	resp, err := sim.Complete(context.Background(), Request{Messages: []Message{
		{Role: RoleSystem, Content: SystemPrompt},
		{Role: RoleUser, Content: "Optimize:\n" + src.String()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cand := ExtractFunc(resp.Text)
	f, perr := parser.ParseFunc(cand)
	if perr != nil {
		t.Fatalf("calibrated success must be valid IR: %v\n%s", perr, cand)
	}
	if f.NumInstrs(true) != 1 || !strings.Contains(cand, "xor i8 %x, %y") {
		t.Fatalf("expected the xor rewrite, got:\n%s", cand)
	}
	if resp.Usage.VirtualSeconds <= 0 || resp.Usage.OutputTokens <= 0 {
		t.Fatalf("usage accounting broken: %+v", resp.Usage)
	}
}

func TestSimEchoesUnknownWindows(t *testing.T) {
	src := parser.MustParseFunc(`define i8 @f(i8 %x, i8 %y) {
  %r = add i8 %x, %y
  ret i8 %r
}`)
	sim := NewSim("o4-mini", 3)
	resp, err := sim.Complete(context.Background(), Request{Messages: []Message{
		{Role: RoleUser, Content: src.String()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := parser.MustParseFunc(ExtractFunc(resp.Text))
	if ir.Hash(got) != ir.Hash(src) {
		t.Fatalf("unknown window should be echoed:\n%s", resp.Text)
	}
}

func TestStratifiedCalibrationIsExact(t *testing.T) {
	src := parser.MustParseFunc(kbCase)
	sim := NewSim("GPT-4.1", 9)
	sim.Calibrate(ir.Hash(src), Calibration{Minus: 2, Plus: 4})
	firstOK, secondOK := 0, 0
	for round := 0; round < 5; round++ {
		r1, _ := sim.Complete(context.Background(), Request{Round: round, Messages: []Message{
			{Role: RoleUser, Content: src.String()},
		}})
		if _, err := parser.ParseFunc(ExtractFunc(r1.Text)); err == nil {
			if f, _ := parser.ParseFunc(ExtractFunc(r1.Text)); f != nil && f.NumInstrs(true) == 1 {
				firstOK++
				continue
			}
		}
		// Second attempt with feedback.
		r2, _ := sim.Complete(context.Background(), Request{Round: round, Messages: []Message{
			{Role: RoleUser, Content: src.String()},
			{Role: RoleAssistant, Content: r1.Text},
			{Role: RoleUser, Content: "feedback"},
		}})
		if f, err := parser.ParseFunc(ExtractFunc(r2.Text)); err == nil && f.NumInstrs(true) == 1 {
			secondOK++
		}
	}
	if firstOK != 2 {
		t.Fatalf("first-attempt successes = %d, calibrated 2", firstOK)
	}
	if firstOK+secondOK != 4 {
		t.Fatalf("total successes = %d, calibrated 4", firstOK+secondOK)
	}
}

func TestCorruptSyntaxNeverSilentlyCorrect(t *testing.T) {
	// Every corruption must fail to parse — including instruction-free
	// identity rewrites, which once slipped through as valid IR.
	ideals := []string{
		`define i8 @f(i8 %x) { ret i8 %x }`,
		`define i8 @f(i8 %x) { ret i8 0 }`,
		`define void @f(ptr %p) { ret void }`,
		`define i8 @f(i8 %x) { %r = call i8 @llvm.smax.i8(i8 %x, i8 0) ret i8 %r }`,
		`define i16 @f(i8 %x) { %r = zext i8 %x to i16 ret i16 %r }`,
		`define i8 @f(i8 %x) { %r = add i8 %x, 1 ret i8 %r }`,
	}
	for _, src := range ideals {
		f := parser.MustParseFunc(src)
		broken := corruptSyntax(f)
		if _, err := parser.ParseFunc(broken); err == nil {
			t.Errorf("corruption is silently valid for:\n%s\nbroken:\n%s", src, broken)
		}
	}
}

func TestHallucinationsAreWellFormedButDifferent(t *testing.T) {
	ideals := []string{
		`define i8 @f(i8 %x) { %r = and i8 %x, 127 ret i8 %r }`,
		`define i8 @f(i8 %x) { ret i8 %x }`,
		`define i1 @f(i64 %x) { ret i1 true }`,
		`define <4 x i8> @f(<4 x i8> %v) { %r = call <4 x i8> @llvm.umax.v4i8(<4 x i8> %v, <4 x i8> splat (i8 16)) ret <4 x i8> %r }`,
	}
	for _, src := range ideals {
		f := parser.MustParseFunc(src)
		wrong, ok := hallucinate(f)
		if !ok {
			t.Errorf("no hallucination for:\n%s", src)
			continue
		}
		if err := ir.VerifyFunc(wrong); err != nil {
			t.Errorf("hallucination must be well-formed: %v\n%s", err, wrong)
		}
		if ir.Hash(wrong) == ir.Hash(f) {
			t.Errorf("hallucination identical to ideal:\n%s", wrong)
		}
	}
}

func TestCostAccounting(t *testing.T) {
	src := parser.MustParseFunc(kbCase)
	sim := NewSim("Gemini2.5", 1)
	resp, err := sim.Complete(context.Background(), Request{Messages: []Message{
		{Role: RoleUser, Content: src.String()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Usage.CostUSD <= 0 {
		t.Fatal("API model should report cost")
	}
	local := NewSim("Llama3.3", 1)
	resp2, _ := local.Complete(context.Background(), Request{Messages: []Message{
		{Role: RoleUser, Content: src.String()},
	}})
	if resp2.Usage.CostUSD != 0 {
		t.Fatal("local model should be free")
	}
	if resp2.Usage.VirtualSeconds <= resp.Usage.VirtualSeconds {
		t.Fatal("the local 70B model should be slower than the API model")
	}
}
