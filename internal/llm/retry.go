package llm

// Retrying is the fault-tolerance middleware for providers: exponential
// backoff with deterministic seeded jitter around transient failures, a
// per-request deadline, and a circuit breaker that sheds load onto the
// engine's degraded mode instead of failing campaigns when the provider is
// down for good. It is the production answer to the observation that both
// LPO-style fuzzing loops and superoptimizer services run unattended for
// days: a flaky provider must cost retries, not campaigns.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrCircuitOpen is returned by Retrying.Complete without touching the
// provider while the circuit breaker is open. It is permanent (not
// retryable); the engine reacts by switching the sequence to its degraded,
// knowledge-base-driven propose path.
var ErrCircuitOpen = errors.New("llm: circuit breaker open")

// transienter is the classification convention: errors that know whether
// they are worth retrying implement it (e.g. fault-injected errors, a real
// provider's 429/5xx wrappers).
type transienter interface{ Transient() bool }

// IsTransient is the default retry classification: context cancellation,
// deadline expiry and an open breaker are permanent; errors implementing
// Transient() bool speak for themselves; anything else — network flakes,
// provider 5xx — is presumed transient and retried.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrCircuitOpen) {
		return false
	}
	var t transienter
	if errors.As(err, &t) {
		return t.Transient()
	}
	return true
}

// RetryPolicy tunes a Retrying client. The zero value gets sensible
// defaults; set a field negative to disable it where noted.
type RetryPolicy struct {
	// MaxAttempts is the total Complete attempts per request, including the
	// first (default 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt n sleeps
	// BaseDelay<<n, jittered to [50%, 100%], capped at MaxDelay
	// (defaults 50ms and 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Deadline bounds each Complete call (all attempts and backoff sleeps
	// included) via a derived context; 0 means no per-request deadline.
	Deadline time.Duration
	// Seed fixes the jitter sequence so retry schedules replay
	// deterministically (default 1).
	Seed uint64
	// Classify decides whether an error is worth retrying (default
	// IsTransient). Permanent errors return immediately.
	Classify func(error) bool
	// BreakerThreshold trips the circuit after this many consecutive
	// failed requests (default 8; negative disables the breaker).
	BreakerThreshold int
	// BreakerProbe lets every Nth rejected request through as a probe while
	// the circuit is open (default 16); a successful probe closes the
	// circuit. Count-based rather than time-based so breaker behaviour is
	// deterministic under test.
	BreakerProbe int
	// Sleep is the backoff wait (default a context-aware timer). Tests
	// substitute an instant recorder.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Classify == nil {
		p.Classify = IsTransient
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 8
	}
	if p.BreakerProbe <= 0 {
		p.BreakerProbe = 16
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Retrying wraps a Client with the RetryPolicy. Safe for concurrent use —
// the jitter source and breaker state are mutex-guarded; the breaker is
// shared across all callers, which is the point: one provider outage trips
// one breaker for the whole engine.
type Retrying struct {
	inner Client
	p     RetryPolicy

	mu       sync.Mutex
	rng      *rand.Rand
	fails    int  // consecutive failed requests
	open     bool // breaker state
	rejected int  // requests shed since the breaker opened
}

// NewRetrying wraps inner with the policy (zero value = defaults).
func NewRetrying(inner Client, p RetryPolicy) *Retrying {
	p = p.withDefaults()
	return &Retrying{
		inner: inner,
		p:     p,
		rng:   rand.New(rand.NewSource(int64(p.Seed))),
	}
}

// Profile passes through to the wrapped client.
func (r *Retrying) Profile() Profile { return r.inner.Profile() }

// Breaker reports the breaker state: whether the circuit is open and how
// many requests it has shed since opening.
func (r *Retrying) Breaker() (open bool, rejected int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.open, r.rejected
}

// admit decides whether a request may reach the provider. While the circuit
// is open, every BreakerProbe-th rejected request is let through as a probe.
func (r *Retrying) admit() bool {
	if r.p.BreakerThreshold < 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.open {
		return true
	}
	r.rejected++
	return r.rejected%r.p.BreakerProbe == 0
}

// report folds one request outcome into the breaker.
func (r *Retrying) report(ok bool) {
	if r.p.BreakerThreshold < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ok {
		r.fails = 0
		r.open = false
		r.rejected = 0
		return
	}
	r.fails++
	if r.fails >= r.p.BreakerThreshold {
		r.open = true
	}
}

// backoff computes the jittered delay before retry number attempt (0-based:
// the wait after the first failure is attempt 0).
func (r *Retrying) backoff(attempt int) time.Duration {
	d := r.p.BaseDelay << uint(attempt)
	if d <= 0 || d > r.p.MaxDelay { // <<-overflow guards included
		d = r.p.MaxDelay
	}
	r.mu.Lock()
	u := r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(float64(d) * (0.5 + 0.5*u))
}

// Complete drives the wrapped client through the retry loop. Usage from
// every attempt (failed ones may still bill) accumulates into the returned
// response, and Usage.Retries counts the extra attempts this request cost.
func (r *Retrying) Complete(ctx context.Context, req Request) (Response, error) {
	if r.p.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.p.Deadline)
		defer cancel()
	}
	if !r.admit() {
		return Response{}, ErrCircuitOpen
	}
	var usage Usage
	for attempt := 0; ; attempt++ {
		resp, err := r.inner.Complete(ctx, req)
		usage.Add(resp.Usage)
		if err == nil {
			r.report(true)
			resp.Usage = usage
			resp.Usage.Retries += attempt
			return resp, nil
		}
		r.report(false)
		if !r.p.Classify(err) || attempt+1 >= r.p.MaxAttempts || ctx.Err() != nil {
			return Response{Usage: usage}, fmt.Errorf("llm: attempt %d: %w", attempt+1, err)
		}
		if serr := r.p.Sleep(ctx, r.backoff(attempt)); serr != nil {
			return Response{Usage: usage}, serr
		}
	}
}
