package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/alive"
	"repro/internal/benchdata"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/extract"
	"repro/internal/ir"
	"repro/internal/llm"
	"repro/internal/minotaur"
	"repro/internal/parser"
	"repro/internal/souper"
)

// RQ2Options sizes the Table 3 run.
type RQ2Options struct {
	Seed           uint64
	DiscoverRounds int // LPO rounds per sequence during discovery (default 25)
	Model          string
	CorpusOpts     corpus.Options
	Workers        int // engine worker pool (default GOMAXPROCS)
}

func (o RQ2Options) withDefaults() RQ2Options {
	if o.DiscoverRounds == 0 {
		o.DiscoverRounds = 25
	}
	if o.Model == "" {
		o.Model = "Llama3.3" // the paper's long-running local model
	}
	return o
}

// RQ2Row is one measured Table 3 row.
type RQ2Row struct {
	IssueID       string
	Status        benchdata.Status
	Family        string
	Discovered    bool     // found by the LPO discovery run over the corpus
	Rules         []string // registry rules (sorted IDs) that closed the finding
	SouperDefault bool
	SouperEnum    bool
	SouperTimeout bool // enum timed out at every level
	Minotaur      bool
	MinotaurCrash bool
}

// RQ2Report is the measured Table 3 plus corpus statistics.
type RQ2Report struct {
	Rows        []RQ2Row
	Extracted   extract.Stats
	CorpusStats corpus.Stats
	Discovered  int
}

// RunRQ2 reproduces Table 3: generate the corpus, extract unique sequences,
// run LPO discovery over the sequences that correspond to registry findings,
// and run the baselines on every finding.
func RunRQ2(opts RQ2Options) *RQ2Report {
	opts = opts.withDefaults()
	rep := &RQ2Report{}

	projects := corpus.Generate(opts.CorpusOpts)
	rep.CorpusStats = corpus.Summarize(projects)
	ex := extract.New(extract.Options{})
	byHash := make(map[uint64]*extract.Sequence)
	for _, p := range projects {
		for _, m := range p.Modules {
			for _, s := range ex.Module(m) {
				byHash[ir.Hash(s.Fn)] = s
			}
		}
	}
	rep.Extracted = ex.Stats()

	sim := llm.NewSim(opts.Model, opts.Seed)
	eng := engine.New(sim, engine.Config{
		Verify:  alive.Options{Samples: 512, Seed: opts.Seed},
		Workers: opts.Workers,
		Rounds:  opts.DiscoverRounds,
	})

	// Discovery: the registry instance must be present in the corpus
	// extraction (possibly canonicalized); then the engine must find it
	// within the round budget. Findings fan out across the worker pool;
	// ordered reassembly keeps results aligned with the findings list.
	findings := benchdata.RQ2Findings()
	srcs := make([]*ir.Func, len(findings))
	targets := make([]*ir.Func, len(findings))
	for i, f := range findings {
		srcs[i] = parser.MustParseFunc(f.Pair.Src)
		targets[i] = srcs[i]
		if s, ok := byHash[ir.Hash(srcs[i])]; ok {
			targets[i] = s.Fn
		}
	}
	discovered, _ := eng.RunAll(context.Background(), engine.Funcs(targets...))

	for i, f := range findings {
		row := RQ2Row{IssueID: f.IssueID, Status: f.Status, Family: f.Family}
		src := srcs[i]
		if discovered[i].Outcome == engine.Found {
			row.Discovered = true
			rep.Discovered++
			for id := range discovered[i].RuleHits {
				row.Rules = append(row.Rules, id)
			}
			sort.Strings(row.Rules)
		}

		// Baselines.
		if souper.Optimize(src, souper.Options{Enum: 0, Seed: opts.Seed}).Found {
			row.SouperDefault = true
		}
		timeouts := 0
		for e := 1; e <= 3; e++ {
			r := souper.Optimize(src, souper.Options{Enum: e, Seed: opts.Seed})
			if r.Found {
				row.SouperEnum = true
				break
			}
			if r.TimedOut {
				timeouts++
			}
		}
		row.SouperTimeout = !row.SouperEnum && timeouts == 3
		mr := minotaur.Optimize(src, minotaur.Options{Seed: opts.Seed})
		row.Minotaur = mr.Found
		row.MinotaurCrash = mr.Crashed
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// Counts aggregates the measured Table 3 statistics the paper reports.
func (r *RQ2Report) Counts() (total, confirmed, fixed, dup, wontfix int,
	souperD, souperDCF, souperE, souperECF, mino, minoCF int) {
	cf := func(s benchdata.Status) bool {
		return s == benchdata.Confirmed || s == benchdata.Fixed
	}
	for _, row := range r.Rows {
		total++
		switch row.Status {
		case benchdata.Confirmed:
			confirmed++
		case benchdata.Fixed:
			fixed++
		case benchdata.Duplicate:
			dup++
		case benchdata.Wontfix:
			wontfix++
		}
		if row.SouperDefault {
			souperD++
			if cf(row.Status) {
				souperDCF++
			}
		}
		if row.SouperEnum {
			souperE++
			if cf(row.Status) {
				souperECF++
			}
		}
		if row.Minotaur {
			mino++
			if cf(row.Status) {
				minoCF++
			}
		}
	}
	return
}

// Print renders the measured Table 3.
func (r *RQ2Report) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 3: %d missed optimizations found by LPO and reported to LLVM\n", len(r.Rows))
	fmt.Fprintf(w, "corpus: %d projects, %d modules, %d functions; extraction: %d raw sequences, %d duplicates eliminated, %d unique kept\n",
		r.CorpusStats.Projects, r.CorpusStats.Modules, r.CorpusStats.Funcs,
		r.Extracted.Sequences, r.Extracted.Duplicates, r.Extracted.Kept)
	fmt.Fprintf(w, "%-8s %-12s %-20s %-10s %-8s %-10s %-10s %s\n",
		"Issue", "Status", "Family", "LPO", "SouperD", "SouperE", "Minotaur", "Rule(s)")
	for _, row := range r.Rows {
		mark := func(b bool) string {
			if b {
				return "yes"
			}
			return ""
		}
		enum := mark(row.SouperEnum)
		if row.SouperTimeout {
			enum = "timeout"
		}
		mino := mark(row.Minotaur)
		if row.MinotaurCrash {
			mino = "crash"
		}
		fmt.Fprintf(w, "%-8s %-12s %-20s %-10s %-8s %-10s %-10s %s\n",
			row.IssueID, row.Status, row.Family, mark(row.Discovered),
			mark(row.SouperDefault), enum, mino, strings.Join(row.Rules, ","))
	}
	total, confirmed, fixed, dup, wontfix, sd, sdcf, se, secf, mn, mncf := r.Counts()
	fmt.Fprintf(w, "Measured: total %d, confirmed %d, fixed %d, duplicates %d, wontfix %d, discovered %d\n",
		total, confirmed, fixed, dup, wontfix, r.Discovered)
	fmt.Fprintf(w, "Baselines: SouperDefault %d (%d c/f), SouperEnum %d (%d c/f), Minotaur %d (%d c/f)\n",
		sd, sdcf, se, secf, mn, mncf)
	p := benchdata.PaperRQ2Counts
	fmt.Fprintf(w, "Paper:     SouperDefault %d (%d c/f), SouperEnum %d (%d c/f), Minotaur %d (%d c/f)\n",
		p.SouperDefault, p.SouperDefaultCF, p.SouperEnum, p.SouperEnumCF, p.Minotaur, p.MinotaurCF)
}
