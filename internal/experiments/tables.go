package experiments

import (
	"fmt"
	"io"

	"repro/internal/alive"
	"repro/internal/benchdata"
	"repro/internal/llm"
	"repro/internal/mca"
	"repro/internal/minotaur"
	"repro/internal/parser"
	"repro/internal/souper"
)

// PrintTable1 renders the model roster (paper Table 1).
func PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: selected LLMs")
	fmt.Fprintf(w, "%-12s %-38s %-10s %-8s\n", "Model", "Version", "Reasoning", "Cutoff")
	order := append([]string(nil), benchdata.ModelNames...)
	order = append(order, "Gemini2.5")
	for _, name := range order {
		p := llm.ProfileByName(name)
		reason := "No"
		if p.Reasoning {
			reason = "Yes"
		}
		fmt.Fprintf(w, "%-12s %-38s %-10s %-8s\n", p.Name, p.Version, reason, p.Cutoff)
	}
}

// PrintFigure4 replays the three confirmed case studies (paper Figure 4):
// each src/tgt pair is verified, its gain quantified, and both baselines'
// failure modes demonstrated.
func PrintFigure4(w io.Writer, seed uint64) error {
	cases := []struct{ id, label string }{
		{"128134", "case 1: consecutive loads merged into one (Fig. 4a/4d)"},
		{"142711", "case 2: redundant first clamp in a umax chain (Fig. 4b/4e)"},
		{"133367", "case 3: redundant NaN guard before fcmp oeq (Fig. 4c/4f)"},
	}
	cpu := mca.BTVer2()
	for _, c := range cases {
		f := benchdata.FindingByID(c.id)
		if f == nil {
			return fmt.Errorf("missing finding %s", c.id)
		}
		src := parser.MustParseFunc(f.Pair.Src)
		tgt := parser.MustParseFunc(f.Pair.Tgt)
		fmt.Fprintf(w, "%s (issue %s, %s)\n", c.label, c.id, f.Status)
		fmt.Fprintf(w, "--- src ---\n%s--- tgt ---\n%s", src, tgt)
		v := alive.Verify(src, tgt, alive.Options{Seed: seed})
		fmt.Fprintf(w, "alive: verdict=%v checked=%d exhaustive=%v\n", v.Verdict, v.Checked, v.Exhaustive)
		sr, tr := mca.Analyze(src, cpu), mca.Analyze(tgt, cpu)
		fmt.Fprintf(w, "mca:   %d -> %d instructions, %d -> %d cycles\n",
			sr.Instructions, tr.Instructions, sr.TotalCycles, tr.TotalCycles)
		s := souper.Optimize(src, souper.Options{Enum: 3, Seed: seed})
		switch {
		case s.Unsupported:
			fmt.Fprintf(w, "souper: unsupported (%s)\n", s.Reason)
		case s.Found:
			fmt.Fprintf(w, "souper: FOUND (unexpected for a case study)\n")
		default:
			fmt.Fprintf(w, "souper: not found (timeout=%v)\n", s.TimedOut)
		}
		m := minotaur.Optimize(src, minotaur.Options{Seed: seed})
		switch {
		case m.Crashed:
			fmt.Fprintf(w, "minotaur: crashed (%s)\n", m.Reason)
		case m.Unsupported:
			fmt.Fprintf(w, "minotaur: unsupported (%s)\n", m.Reason)
		case m.Found:
			fmt.Fprintf(w, "minotaur: FOUND (unexpected for a case study)\n")
		default:
			fmt.Fprintf(w, "minotaur: not found\n")
		}
		fmt.Fprintln(w)
	}
	return nil
}
