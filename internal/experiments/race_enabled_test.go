//go:build race

package experiments

// raceEnabled reports that the race detector is active: wall-clock
// measurements (the Table 5 compile-time delta) are dominated by the race
// runtime's instrumentation overhead and carry no signal, so timing-based
// assertions are skipped.
func init() { raceEnabled = true }
