package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/parser"
)

// specProgram is one synthetic SPEC CPU2017-style integer benchmark: a
// loop-heavy function whose body may contain one of the fixed suboptimal
// patterns. Performance is measured as dynamically executed instructions
// under the interpreter (the substitution for real SPEC runs, DESIGN.md §3).
type specProgram struct {
	Name    string
	Pattern string // patch ID whose pattern is embedded ("" = none)
	Src     string
	UsesPtr bool
}

// specLoop builds the common loop skeleton around a pattern body. The body
// receives %x (i32, derived from the induction variable) and must define
// %r (i32). A block of surrounding "application" work dilutes the pattern
// the way real hot loops do — this is why the paper measures speedups within
// noise: peephole windows are a tiny fraction of executed instructions.
func specLoop(name, body string) string {
	return fmt.Sprintf(`define i64 @%s(i64 %%n) {
entry:
  br label %%loop
loop:
  %%i = phi i64 [ 0, %%entry ], [ %%i.next, %%loop ]
  %%acc = phi i64 [ 0, %%entry ], [ %%acc.next, %%loop ]
  %%x = trunc i64 %%i to i32
  %%w0 = mul i32 %%x, 2654435761
  %%w1 = xor i32 %%w0, %%x
  %%w2 = lshr i32 %%w1, 13
  %%w3 = add i32 %%w2, %%w1
  %%w4 = and i32 %%w3, 262143
  %%w5 = or i32 %%w4, 1
  %%w6 = mul i32 %%w5, 13
  %%w7 = xor i32 %%w6, %%w2
  %%w8 = add i32 %%w7, %%w4
  %%w9 = ashr i32 %%w8, 2
%s
  %%mix = xor i32 %%r, %%w9
  %%rz = zext i32 %%mix to i64
  %%acc.next = add i64 %%acc, %%rz
  %%i.next = add nuw i64 %%i, 1
  %%done = icmp eq i64 %%i.next, %%n
  br i1 %%done, label %%exit, label %%loop
exit:
  ret i64 %%acc.next
}`, name, body)
}

// specPrograms mirrors the ten SPEC CPU2017 integer benchmarks the paper
// evaluates; each carries at most one fixed pattern so per-patch speedups
// stay small, exactly as the paper observes.
func specPrograms() []specProgram {
	progs := []specProgram{
		{Name: "perlbench", Pattern: "143636", Src: specLoop("perlbench", `  %c = icmp slt i32 %x, 0
  %m = tail call i32 @llvm.umin.i32(i32 %x, i32 255)
  %t = trunc nuw i32 %m to i8
  %sel = select i1 %c, i8 0, i8 %t
  %r = zext i8 %sel to i32`)},
		{Name: "gcc", Pattern: "143211", Src: specLoop("gcc", `  %a = shl i32 %x, 8
  %r = lshr i32 %a, 8`)},
		{Name: "mcf", Pattern: "157371", Src: specLoop("mcf", `  %nx = xor i32 %x, -1
  %neg = add i32 %nx, 1
  %r = xor i32 %neg, 11`)},
		{Name: "omnetpp", Pattern: "157524", Src: specLoop("omnetpp", `  %nz = sub i32 0, %x
  %r = xor i32 %nz, -1`)},
		{Name: "xalancbmk", Pattern: "166973", Src: specLoop("xalancbmk", `  %a = lshr i32 %x, 4
  %r = shl i32 %a, 4`)},
		{Name: "x264", Pattern: "142674", Src: specLoop("x264", `  %a = and i32 %x, -256
  %b = and i32 %x, 255
  %r = or i32 %a, %b`)},
		{Name: "deepsjeng", Pattern: "163108", Src: specLoop("deepsjeng", `  %m = and i32 %x, 4095
  %r = or i32 %m, %x`)},
		{Name: "leela", Pattern: "157370", Src: specLoop("leela", `  %a = shl i32 %x, 24
  %r = ashr i32 %a, 24`)},
		{Name: "exchange2", Pattern: "", Src: specLoop("exchange2", `  %a = mul i32 %x, 37
  %b = add i32 %a, 11
  %r = xor i32 %b, %x`)},
		{Name: "xz", Pattern: "", Src: specLoop("xz", `  %a = add i32 %x, 7
  %b = and i32 %a, %x
  %r = or i32 %b, 3`)},
	}
	return progs
}

// SpecRow is one patch's measured geometric-mean speedup.
type SpecRow struct {
	PatchID string
	Speedup float64  // >1 means the patch makes the programs faster
	Rules   []string // registry rules (sorted IDs) that fired across the suite
}

// SpecReport is the measured Figure 5.
type SpecReport struct {
	Rows   []SpecRow
	Yearly float64 // all patches vs none (the paper's year-over-year compare)
	Iters  int
}

// RunFigure5 reproduces Figure 5: for each patch, optimize the SPEC-like
// programs with and without it, execute them, and report the geometric mean
// of the dynamic-instruction-count ratios. Outputs are asserted equal, so
// this is also an end-to-end correctness check of the patched optimizer on
// looped code.
func RunFigure5(iters int) (*SpecReport, error) {
	if iters == 0 {
		iters = 500
	}
	progs := specPrograms()
	parsed := make([]*ir.Func, len(progs))
	for i, p := range progs {
		f, err := parser.ParseFunc(p.Src)
		if err != nil {
			return nil, fmt.Errorf("spec program %s: %w", p.Name, err)
		}
		parsed[i] = f
	}
	// The loop bodies execute tens of thousands of dynamic instructions per
	// program; run them through the compile-once evaluator instead of
	// re-walking the tree per instruction.
	run := func(f *ir.Func) (int, uint64, error) {
		env := interp.Env{
			Args:     []interp.RVal{interp.Scalar(ir.I64, uint64(iters))},
			MaxSteps: 1 << 24,
		}
		r := interp.NewEvaluator(interp.Compile(f)).Run(env)
		if r.UB || !r.Completed {
			return 0, 0, fmt.Errorf("program failed: ub=%v reason=%s", r.UB, r.UBReason)
		}
		return r.DynInstrs, r.Ret.Lanes[0].V, nil
	}
	baseInstrs := make([]int, len(progs))
	baseVals := make([]uint64, len(progs))
	for i, f := range parsed {
		g := opt.RunO3(f)
		n, v, err := run(g)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", progs[i].Name, err)
		}
		baseInstrs[i] = n
		baseVals[i] = v
	}
	rep := &SpecReport{Iters: iters}
	// measure optimizes the suite with the given rule selection, returning
	// the geometric-mean dynamic-instruction speedup and which non-baseline
	// registry rules fired (sorted IDs) — the rule-level attribution of the
	// speedup.
	measure := func(patches []string) (float64, []string, error) {
		rs := opt.NewRuleSet(opt.Options{Patches: patches})
		fired := make(map[string]bool)
		logSum := 0.0
		for i, f := range parsed {
			g, stats := opt.RunWithStats(f, opt.Options{Rules: rs})
			for id := range opt.OptionalRuleHits(stats.RuleHits) {
				fired[id] = true
			}
			n, v, err := run(g)
			if err != nil {
				return 0, nil, fmt.Errorf("%s patched: %w", progs[i].Name, err)
			}
			if v != baseVals[i] {
				return 0, nil, fmt.Errorf("%s: patched program computes %d, baseline %d",
					progs[i].Name, v, baseVals[i])
			}
			logSum += math.Log(float64(baseInstrs[i]) / float64(n))
		}
		ids := make([]string, 0, len(fired))
		for id := range fired {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		return math.Exp(logSum / float64(len(progs))), ids, nil
	}
	for _, id := range []string{"128134", "142674", "143211", "143636",
		"157315", "157370", "157524", "163108", "166973"} {
		s, rules, err := measure([]string{id})
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, SpecRow{PatchID: id, Speedup: s, Rules: rules})
	}
	yearly, _, err := measure(opt.PatchIDs())
	if err != nil {
		return nil, err
	}
	rep.Yearly = yearly
	return rep, nil
}

// Print renders the measured Figure 5.
func (r *SpecReport) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: SPEC-like integer suite speedups (dynamic instructions, %d iterations)\n", r.Iters)
	for _, row := range r.Rows {
		bar := int((row.Speedup - 0.9) * 200)
		if bar < 0 {
			bar = 0
		}
		if bar > 40 {
			bar = 40
		}
		rules := ""
		if len(row.Rules) > 0 {
			rules = "  [" + strings.Join(row.Rules, ", ") + "]"
		}
		fmt.Fprintf(w, "  %-8s %6.3fx %s%s\n", row.PatchID, row.Speedup, bars(bar), rules)
	}
	fmt.Fprintf(w, "  %-8s %6.3fx (all patches vs none — the paper's year-over-year compare)\n",
		"yearly", r.Yearly)
	fmt.Fprintln(w, "(paper: all individual-patch speedups within 2% of 1.0x; same for the yearly comparison)")
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
