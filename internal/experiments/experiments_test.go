package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/benchdata"
)

// The headline RQ1 reproduction: measured totals must match the paper's
// Table 2 Total row for every model, and the baselines must land exactly on
// the paper's counts.
func TestRQ1TotalsMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full RQ1 run is not short")
	}
	rep := RunRQ1(RQ1Options{Rounds: 5, Seed: 1})
	totals := rep.Totals()
	for model, want := range benchdata.PaperRQ1Totals {
		got := totals[model]
		// The simulator is stochastic per round; totals may wobble by one
		// benchmark around the calibration target.
		if absDiff(got.Minus, want.Minus) > 2 || absDiff(got.Plus, want.Plus) > 2 {
			t.Errorf("%s: measured totals %d/%d, paper %d/%d",
				model, got.Minus, got.Plus, want.Minus, want.Plus)
		}
		if got.Plus < got.Minus {
			t.Errorf("%s: LPO must dominate LPO-: %d/%d", model, got.Minus, got.Plus)
		}
	}
	d, e, tot, m := rep.BaselineTotals()
	want := benchdata.PaperRQ1Baselines
	if d != want.SouperDefault || e != want.SouperEnum || tot != want.SouperTotal || m != want.Minotaur {
		t.Errorf("baselines: measured %d/%d/%d/%d, paper %d/%d/%d/%d",
			d, e, tot, m, want.SouperDefault, want.SouperEnum, want.SouperTotal, want.Minotaur)
	}
	// Shape: reasoning models beat base models beat small open models.
	if !(totals["Gemini2.0T"].Plus > totals["Gemini2.0"].Plus &&
		totals["o4-mini"].Plus > totals["GPT-4.1"].Plus &&
		totals["Llama3.3"].Plus > totals["Gemma3"].Plus) {
		t.Errorf("model ordering broken: %+v", totals)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "Table 2") {
		t.Error("report rendering broken")
	}
}

// raceEnabled is set by race_enabled_test.go when built with -race.
var raceEnabled bool

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

func TestRQ2AggregatesMatchPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full RQ2 run is not short")
	}
	rep := RunRQ2(RQ2Options{Seed: 2})
	total, confirmed, fixed, dup, wontfix, sd, sdcf, se, secf, mn, mncf := rep.Counts()
	p := benchdata.PaperRQ2Counts
	if total != p.Total || confirmed != p.Confirmed || fixed != p.Fixed ||
		dup != p.Duplicate || wontfix != p.Wontfix {
		t.Errorf("status counts: got %d/%d/%d/%d/%d", total, confirmed, fixed, dup, wontfix)
	}
	if sd != p.SouperDefault || sdcf != p.SouperDefaultCF {
		t.Errorf("souper default: got %d (%d c/f), paper %d (%d c/f)", sd, sdcf, p.SouperDefault, p.SouperDefaultCF)
	}
	if se != p.SouperEnum || secf != p.SouperEnumCF {
		t.Errorf("souper enum: got %d (%d c/f), paper %d (%d c/f)", se, secf, p.SouperEnum, p.SouperEnumCF)
	}
	if mn != p.Minotaur || mncf != p.MinotaurCF {
		t.Errorf("minotaur: got %d (%d c/f), paper %d (%d c/f)", mn, mncf, p.Minotaur, p.MinotaurCF)
	}
	// Discovery must find the overwhelming majority of the 62 (the paper's
	// run was open-ended; ours is bounded by DiscoverRounds).
	if rep.Discovered < 55 {
		t.Errorf("discovery found only %d of 62", rep.Discovered)
	}
	// The corpus must exhibit heavy duplication like the real one.
	if rep.Extracted.Duplicates <= rep.Extracted.Kept {
		t.Errorf("expected duplicates to dominate: %+v", rep.Extracted)
	}
}

func TestRQ3ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full RQ3 run is not short")
	}
	rep := RunRQ3(RQ3Options{Sequences: 120, Seed: 3})
	byTool := map[string]RQ3Row{}
	for _, row := range rep.Rows {
		byTool[row.Tool] = row
	}
	llama := byTool["LPO/Llama3.3"].SecPerCase
	gemini := byTool["LPO/Gemini2.5"].SecPerCase
	sd := byTool["Souper/Default"].SecPerCase
	s1 := byTool["Souper/Enum=1"].SecPerCase
	s2 := byTool["Souper/Enum=2"].SecPerCase
	s3 := byTool["Souper/Enum=3"].SecPerCase
	// The paper's ordering: default < gemini < llama < enum1 < enum2 < enum3.
	if !(sd < gemini && gemini < llama && llama < s1 && s1 < s2 && s2 < s3) {
		t.Errorf("throughput ordering broken: default=%.1f gemini=%.1f llama=%.1f e1=%.1f e2=%.1f e3=%.1f",
			sd, gemini, llama, s1, s2, s3)
	}
	// Timeouts must grow with Enum.
	if !(byTool["Souper/Enum=1"].Timeouts <= byTool["Souper/Enum=2"].Timeouts &&
		byTool["Souper/Enum=2"].Timeouts <= byTool["Souper/Enum=3"].Timeouts) {
		t.Errorf("timeout ordering broken")
	}
	if byTool["LPO/Llama3.3"].Timeouts != 0 || byTool["LPO/Gemini2.5"].Timeouts != 0 {
		t.Error("LPO should not time out")
	}
}

func TestTable5ImpactShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 5 run is not short")
	}
	rep := RunTable5(4)
	if len(rep.Rows) != 15 {
		t.Fatalf("expected 15 rows, got %d", len(rep.Rows))
	}
	byID := map[string]Table5Row{}
	for _, row := range rep.Rows {
		byID[row.PatchID] = row
	}
	// Shape: the clamp (143636) and absorption (163108 (1)) patches touch
	// the most files, as in the paper.
	big := byID["143636"].IRFiles
	for _, row := range rep.Rows {
		if row.PatchID == "143636" || row.PatchID == "163108 (1)" || row.PatchID == "163108 (2)" {
			continue
		}
		if row.IRFiles > big*3 {
			t.Errorf("unexpectedly large impact for %s: %d vs clamp %d", row.PatchID, row.IRFiles, big)
		}
	}
	for _, row := range rep.Rows {
		if row.IRFiles == 0 {
			t.Errorf("patch %s touches no corpus file — planting broken", row.PatchID)
		}
		if !raceEnabled && math.Abs(row.DeltaPct) > 50 {
			// Wall-clock deltas are meaningless under the race detector's
			// instrumentation overhead; only assert them in normal builds.
			t.Errorf("compile-time delta implausible for %s: %+.1f%%", row.PatchID, row.DeltaPct)
		}
	}
}

func TestFigure5WithinNoise(t *testing.T) {
	rep, err := RunFigure5(300)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row.Speedup < 0.98 {
			t.Errorf("patch %s slows the suite down: %.3f", row.PatchID, row.Speedup)
		}
		if row.Speedup > 1.10 {
			t.Errorf("patch %s speedup implausibly large: %.3f", row.PatchID, row.Speedup)
		}
	}
	if rep.Yearly < 1.0 || rep.Yearly > 1.15 {
		t.Errorf("yearly comparison out of range: %.3f", rep.Yearly)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "yearly") {
		t.Error("figure rendering broken")
	}
}

func TestFigure4CaseStudies(t *testing.T) {
	var buf bytes.Buffer
	if err := PrintFigure4(&buf, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"souper: unsupported (memory",
		"souper: unsupported (intrinsic @llvm.umax.i8 is not supported)",
		"souper: unsupported (floating point is not supported)",
		"minotaur: crashed",
		"minotaur: not found",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 4 output missing %q\n%s", want, out)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	PrintTable1(&buf)
	for _, m := range benchdata.ModelNames {
		if !strings.Contains(buf.String(), m) {
			t.Errorf("table 1 missing %s", m)
		}
	}
}
