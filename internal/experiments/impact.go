package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/benchdata"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/opt"
)

// Table5Row is one measured patch-impact row.
type Table5Row struct {
	PatchID       string
	IRFiles       int     // corpus modules changed by the patch
	Projects      int     // corpus projects with at least one changed module
	DeltaPct      float64 // measured compile-time delta of our optimizer, percent
	PaperIRFiles  int
	PaperProjects int
	PaperDelta    float64
	PaperHasDelta bool
}

// Table5Report is the measured Table 5.
type Table5Report struct {
	Rows []Table5Row
}

// RunTable5 reproduces Table 5 on the synthetic corpus: for every accepted
// patch it counts the modules/projects whose code the patch rewrites, and
// measures the real wall-clock cost of running our optimizer over the whole
// corpus with and without the patch (the paper's compile-time-tracker
// methodology, substituted per DESIGN.md).
func RunTable5(seed uint64) *Table5Report {
	projects := corpus.Generate(corpus.Options{Seed: seed})

	type fnRef struct {
		fn      *ir.Func
		project int
		module  int
	}
	var fns []fnRef
	for pi, p := range projects {
		for mi, m := range p.Modules {
			for _, f := range m.Funcs {
				fns = append(fns, fnRef{fn: f, project: pi, module: pi*1000 + mi})
			}
		}
	}
	// The baseline and per-patch scans are pure hash computations; fan them
	// out (ParMap keeps results in index order, so counts are unchanged).
	ctx := context.Background()
	baseline := engine.ParMap(ctx, 0, fns, func(_ context.Context, _ int, f fnRef) uint64 {
		return ir.Hash(opt.RunO3(f.fn))
	})
	// Min-of-N over a multi-pass timing window keeps the wall-clock
	// measurement stable enough for the percent-level deltas the paper
	// reports (single passes over the corpus are tens of milliseconds and
	// far too noisy on shared machines). The rule selection is prebuilt
	// outside the window, exactly like a compiler builds its pass pipeline
	// once per invocation, so the delta isolates the patch's per-function
	// cost.
	const passes = 8
	timeAll := func(rules *opt.RuleSet) time.Duration {
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			for p := 0; p < passes; p++ {
				for _, f := range fns {
					opt.Run(f.fn, opt.Options{Rules: rules})
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	baseTime := timeAll(opt.NewRuleSet(opt.Options{}))

	rep := &Table5Report{}
	for _, row := range benchdata.Table5() {
		modules := map[int]bool{}
		prjs := map[int]bool{}
		patchSet := opt.NewRuleSet(opt.Options{Patches: []string{row.IssueID}})
		patched := engine.ParMap(ctx, 0, fns, func(_ context.Context, _ int, f fnRef) uint64 {
			return ir.Hash(opt.Run(f.fn, opt.Options{Rules: patchSet}))
		})
		for i, f := range fns {
			if patched[i] != baseline[i] {
				modules[f.module] = true
				prjs[f.project] = true
			}
		}
		patchTime := timeAll(patchSet)
		delta := (patchTime.Seconds() - baseTime.Seconds()) / baseTime.Seconds() * 100
		rep.Rows = append(rep.Rows, Table5Row{
			PatchID: row.PatchID, IRFiles: len(modules), Projects: len(prjs),
			DeltaPct:      delta,
			PaperIRFiles:  row.IRFiles,
			PaperProjects: row.Projects,
			PaperDelta:    row.DeltaPct,
			PaperHasDelta: row.HasDelta,
		})
	}
	return rep
}

// Print renders measured vs paper columns.
func (r *Table5Report) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 5: patch impact (measured on the synthetic corpus vs paper)")
	fmt.Fprintf(w, "%-12s %10s %10s %12s   %10s %10s %12s\n",
		"Patch", "files", "projects", "dT%%", "paper-files", "paper-prj", "paper-dT%%")
	for _, row := range r.Rows {
		paperFiles, paperPrj, paperD := "N/A", "N/A", "N/A"
		if row.PaperIRFiles > 0 {
			paperFiles = fmt.Sprintf("%d", row.PaperIRFiles)
			paperPrj = fmt.Sprintf("%d", row.PaperProjects)
		}
		if row.PaperHasDelta {
			paperD = fmt.Sprintf("%+.2f", row.PaperDelta)
		}
		fmt.Fprintf(w, "%-12s %10d %10d %+11.2f   %10s %10s %12s\n",
			row.PatchID, row.IRFiles, row.Projects, row.DeltaPct,
			paperFiles, paperPrj, paperD)
	}
	fmt.Fprintln(w, "(shape target: every patch touches few files relative to the corpus and has negligible compile-time cost)")
}
