package experiments

import (
	"strings"
	"testing"
)

// TestComparePerf pins the CI regression guard: ns/op past its tolerance,
// allocs/op past its tolerance (with the small-count slack), unmatched
// workloads ignored, tier-kill counters compared exactly.
func TestComparePerf(t *testing.T) {
	ref := &PerfSnapshot{
		Benches: []PerfBench{
			{Name: "fast", NsPerOp: 100, AllocsPerOp: 50},
			{Name: "lean", NsPerOp: 100, AllocsPerOp: 2},
			{Name: "retired", NsPerOp: 100, AllocsPerOp: 10},
		},
		TierKills: PerfTierKills{Pool: 1, Special: 1, Random: 1},
	}
	cur := &PerfSnapshot{
		Benches: []PerfBench{
			{Name: "fast", NsPerOp: 150, AllocsPerOp: 80},        // within both tolerances
			{Name: "lean", NsPerOp: 90, AllocsPerOp: 8},          // 4x allocs but inside the +8 slack
			{Name: "brandnew", NsPerOp: 9999, AllocsPerOp: 9999}, // no reference: ignored
		},
		TierKills: PerfTierKills{Pool: 1, Special: 1, Random: 1},
	}
	if regs := ComparePerf(cur, ref, 2.0, 2.0); len(regs) != 0 {
		t.Fatalf("clean snapshot flagged: %v", regs)
	}

	cur.Benches[0].NsPerOp = 250 // 2.5x > 2.0x
	regs := ComparePerf(cur, ref, 2.0, 2.0)
	if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("ns/op regression not flagged: %v", regs)
	}

	cur.Benches[0].NsPerOp = 100
	cur.Benches[0].AllocsPerOp = 120 // > 50*2 + 8
	regs = ComparePerf(cur, ref, 2.0, 2.0)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("allocs/op regression not flagged: %v", regs)
	}

	cur.Benches[0].AllocsPerOp = 50
	cur.TierKills.Pool = 0 // counterexample sharing broke
	regs = ComparePerf(cur, ref, 2.0, 2.0)
	if len(regs) != 1 || !strings.Contains(regs[0], "tier_kills") {
		t.Fatalf("tier-kill drift not flagged: %v", regs)
	}
	cur.TierKills.Pool = 1

	// The ingest-speedup floor only arms once the reference records one.
	cur.IngestSpeedup = 3
	if regs := ComparePerf(cur, ref, 2.0, 2.0); len(regs) != 0 {
		t.Fatalf("unarmed ingest floor flagged: %v", regs)
	}
	ref.IngestSpeedup = 20
	regs = ComparePerf(cur, ref, 2.0, 2.0)
	if len(regs) != 1 || !strings.Contains(regs[0], "ingest_speedup") {
		t.Fatalf("ingest speedup collapse not flagged: %v", regs)
	}
	cur.IngestSpeedup = minIngestSpeedup + 1 // above the floor, below the reference: fine
	if regs := ComparePerf(cur, ref, 2.0, 2.0); len(regs) != 0 {
		t.Fatalf("above-floor speedup flagged: %v", regs)
	}
}
