// Package experiments regenerates every table and figure of the paper's
// evaluation section from the substrate implementations: Table 1 (models),
// Table 2 (RQ1), Table 3 (RQ2), Table 4 (RQ3), Table 5 (patch impact) and
// Figure 5 (SPEC runtime), plus the Figure 3/4 walkthroughs used by the
// examples.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/alive"
	"repro/internal/benchdata"
	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/llm"
	"repro/internal/minotaur"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/souper"
)

// RQ1Options sizes the Table 2 run.
type RQ1Options struct {
	Rounds  int    // paper: 5
	Seed    uint64 // provider seed
	Models  []string
	Workers int // engine worker pool (default GOMAXPROCS)
}

func (o RQ1Options) withDefaults() RQ1Options {
	if o.Rounds == 0 {
		o.Rounds = 5
	}
	if len(o.Models) == 0 {
		o.Models = benchdata.ModelNames
	}
	return o
}

// RQ1Cell is the measured (LPO-, LPO) detection count for one benchmark and
// model.
type RQ1Cell struct{ Minus, Plus int }

// RQ1Report is the measured Table 2.
type RQ1Report struct {
	Rounds   int
	Models   []string
	Cases    []string
	Cells    map[string]map[string]RQ1Cell // issue -> model -> cell
	SouperD  map[string]bool
	SouperE  map[string]bool
	Minotaur map[string]bool
	// Attribution maps each benchmark to the registry rules (sorted IDs)
	// that close it — the rule-level answer to "which missed optimization
	// is this".
	Attribution map[string][]string
}

// RunRQ1 reproduces Table 2: every benchmark is run Rounds times per model
// with the full loop (LPO) and without feedback (LPO-), and each baseline is
// run once per benchmark.
func RunRQ1(opts RQ1Options) *RQ1Report {
	opts = opts.withDefaults()
	cases := benchdata.RQ1Cases()
	rep := &RQ1Report{
		Rounds: opts.Rounds, Models: opts.Models,
		Cells:   make(map[string]map[string]RQ1Cell),
		SouperD: make(map[string]bool), SouperE: make(map[string]bool),
		Minotaur: make(map[string]bool),
	}
	verify := alive.Options{Samples: 512, Seed: opts.Seed}
	// Benchmarks enter the pipeline in canonical form, exactly like
	// extracted sequences do (the extractor folds opt's canonicalization
	// into the kept window).
	canon := make(map[string]*ir.Func, len(cases))
	kb := opt.FullRuleSet()
	rep.Attribution = make(map[string][]string, len(cases))
	for _, c := range cases {
		canon[c.IssueID] = opt.RunO3(parser.MustParseFunc(c.Pair.Src))
		rep.Attribution[c.IssueID] = opt.AttributedIDs(canon[c.IssueID], kb)
	}
	for _, c := range cases {
		rep.Cases = append(rep.Cases, c.IssueID)
		rep.Cells[c.IssueID] = make(map[string]RQ1Cell)
		src := canon[c.IssueID]
		// Baselines.
		if souper.Optimize(src, souper.Options{Enum: 0, Seed: opts.Seed}).Found {
			rep.SouperD[c.IssueID] = true
		}
		for e := 1; e <= 3; e++ {
			if souper.Optimize(src, souper.Options{Enum: e, Seed: opts.Seed}).Found {
				rep.SouperE[c.IssueID] = true
				break
			}
		}
		if minotaur.Optimize(src, minotaur.Options{Seed: opts.Seed}).Found {
			rep.Minotaur[c.IssueID] = true
		}
	}
	// Per-round detection counts. Each (case, round, variant) trip through
	// the loop is independent, so both engine variants fan the cases out
	// across their worker pool with AllRounds recording every round's
	// outcome; ordered reassembly keeps cells aligned with the case list.
	ctx := context.Background()
	srcs := make([]*ir.Func, len(cases))
	for i, c := range cases {
		srcs[i] = canon[c.IssueID]
	}
	for _, model := range opts.Models {
		sim := llm.NewSim(model, opts.Seed)
		for _, c := range cases {
			src := canon[c.IssueID]
			if cell, ok := c.Cal[model]; ok {
				sim.Calibrate(ir.Hash(src), llm.Calibration{Minus: cell.Minus, Plus: cell.Plus})
			} else {
				sim.Calibrate(ir.Hash(src), llm.Calibration{})
			}
		}
		base := engine.Config{Verify: verify, Workers: opts.Workers,
			Rounds: opts.Rounds, AllRounds: true}
		fullCfg, minusCfg := base, base
		fullCfg.AttemptLimit = 2
		minusCfg.AttemptLimit = 1
		full, _ := engine.New(sim, fullCfg).RunAll(ctx, engine.Funcs(srcs...))
		minus, _ := engine.New(sim, minusCfg).RunAll(ctx, engine.Funcs(srcs...))
		for i, c := range cases {
			cell := RQ1Cell{}
			for _, o := range minus[i].RoundOutcomes {
				if o == engine.Found {
					cell.Minus++
				}
			}
			for _, o := range full[i].RoundOutcomes {
				if o == engine.Found {
					cell.Plus++
				}
			}
			rep.Cells[c.IssueID][model] = cell
		}
	}
	return rep
}

// Totals returns (LPO-, LPO) benchmarks detected at least once, per model.
func (r *RQ1Report) Totals() map[string]RQ1Cell {
	out := make(map[string]RQ1Cell)
	for _, model := range r.Models {
		var t RQ1Cell
		for _, id := range r.Cases {
			c := r.Cells[id][model]
			if c.Minus > 0 {
				t.Minus++
			}
			if c.Plus > 0 {
				t.Plus++
			}
		}
		out[model] = t
	}
	return out
}

// Averages returns average successes per round x100, per model.
func (r *RQ1Report) Averages() map[string][2]int {
	out := make(map[string][2]int)
	for _, model := range r.Models {
		sm, sp := 0, 0
		for _, id := range r.Cases {
			c := r.Cells[id][model]
			sm += c.Minus
			sp += c.Plus
		}
		out[model] = [2]int{sm * 100 / r.Rounds, sp * 100 / r.Rounds}
	}
	return out
}

// BaselineTotals returns (souper default, souper enum, souper total,
// minotaur) detections.
func (r *RQ1Report) BaselineTotals() (int, int, int, int) {
	total := map[string]bool{}
	for id := range r.SouperD {
		total[id] = true
	}
	for id := range r.SouperE {
		total[id] = true
	}
	return len(r.SouperD), len(r.SouperE), len(total), len(r.Minotaur)
}

// Print renders the measured Table 2 next to the paper's summary rows.
func (r *RQ1Report) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 2: detection of 25 previously reported missed optimizations (%d rounds)\n", r.Rounds)
	fmt.Fprintf(w, "%-8s", "Issue")
	for _, m := range r.Models {
		fmt.Fprintf(w, " %14s", m+" (-/+)")
	}
	fmt.Fprintf(w, " %8s %8s %8s\n", "SouperD", "SouperE", "Minotaur")
	ids := append([]string(nil), r.Cases...)
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(w, "%-8s", id)
		for _, m := range r.Models {
			c := r.Cells[id][m]
			if c.Minus == 0 && c.Plus == 0 {
				fmt.Fprintf(w, " %14s", "")
			} else {
				fmt.Fprintf(w, " %14s", fmt.Sprintf("%d/%d", c.Minus, c.Plus))
			}
		}
		mark := func(b bool) string {
			if b {
				return "yes"
			}
			return ""
		}
		fmt.Fprintf(w, " %8s %8s %8s\n", mark(r.SouperD[id]), mark(r.SouperE[id]), mark(r.Minotaur[id]))
	}
	fmt.Fprintf(w, "%-8s", "Total")
	totals := r.Totals()
	for _, m := range r.Models {
		t := totals[m]
		fmt.Fprintf(w, " %14s", fmt.Sprintf("%d/%d", t.Minus, t.Plus))
	}
	d, e, tot, mino := r.BaselineTotals()
	fmt.Fprintf(w, " %8d %8d %8d\n", d, e, mino)
	fmt.Fprintf(w, "(souper total incl. default-only: %d)\n", tot)
	fmt.Fprintf(w, "%-8s", "Avg")
	avgs := r.Averages()
	for _, m := range r.Models {
		a := avgs[m]
		fmt.Fprintf(w, " %14s", fmt.Sprintf("%.1f/%.1f", float64(a[0])/100, float64(a[1])/100))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Paper totals: Gemma3 2/3, Llama3.3 6/7, Gemini2.0 7/11, Gemini2.0T 14/21, GPT-4.1 7/12, o4-mini 14/18; Souper 3/14 (15 total), Minotaur 3")
	header := false
	for _, id := range ids {
		if len(r.Attribution[id]) == 0 {
			continue // no registry rule closes this benchmark
		}
		if !header {
			fmt.Fprintln(w, "Rule attribution (registry rule closing each benchmark):")
			header = true
		}
		fmt.Fprintf(w, "  %-8s %s\n", id, strings.Join(r.Attribution[id], ", "))
	}
}
