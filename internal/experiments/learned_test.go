package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/opt"
)

// The end-to-end discovery→learn→re-optimize loop: a deterministic run over
// (a slice of) the synthetic corpus must learn at least one rule that, once
// loaded from the serialized rulebook, closes corpus windows the
// baseline+patch rule set misses — and every learned rule must be
// alive-verified at two or more bit widths.
func TestLearnedRulebookClosesWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("full closure run is not short")
	}
	rep, err := RunLearnedClosure(LearnedClosureOptions{
		Seed:       11,
		Rounds:     8,
		CorpusOpts: corpus.Options{Seed: 11, ModulesPerProject: 2, FuncsPerModule: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Learned == 0 {
		t.Fatalf("discovery learned no rules (%d findings over %d windows)", rep.Found, rep.Windows)
	}
	if rep.ExtraClosed == 0 {
		t.Fatal("the rulebook closes no window the baseline+patch rule set misses")
	}
	for _, row := range rep.Rows {
		if len(row.Widths) < 2 {
			t.Errorf("rule %s verified at %v, want at least 2 widths", row.RuleID, row.Widths)
		}
		if !strings.HasPrefix(row.RuleID, "learned:") {
			t.Errorf("rule ID %q is not in the learned namespace", row.RuleID)
		}
		if r := opt.RuleByID(row.RuleID); r != nil {
			t.Errorf("learned rule %s leaked into the static registry", row.RuleID)
		}
	}
	// At least one learned rule must actually be the closer somewhere.
	closers := 0
	for _, row := range rep.Rows {
		closers += row.Windows
	}
	if closers == 0 {
		t.Fatalf("no learned rule is attributed any closed window: %+v", rep.Rows)
	}
	var buf bytes.Buffer
	rep.Print(&buf)
	if !strings.Contains(buf.String(), "Learned-rule closure") {
		t.Error("report rendering broken")
	}
}
