package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/alive"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/extract"
	"repro/internal/llm"
	"repro/internal/souper"
)

// RQ3Options sizes the Table 4 run. The paper uses 5,000 sampled sequences;
// the default here is smaller so the harness stays interactive — pass -n to
// lpo-bench for the full run (times are virtual either way).
type RQ3Options struct {
	Sequences int
	Seed      uint64
	Workers   int // engine worker pool (default GOMAXPROCS)
}

func (o RQ3Options) withDefaults() RQ3Options {
	if o.Sequences == 0 {
		o.Sequences = 250
	}
	return o
}

// RQ3Row is one tool's measured throughput.
type RQ3Row struct {
	Tool       string
	SecPerCase float64 // virtual seconds
	Timeouts   int
	TotalCost  float64 // USD (API-priced tools only)
	Cases      int
}

// RQ3Report is the measured Table 4.
type RQ3Report struct {
	Rows      []RQ3Row
	Sequences int
}

// RunRQ3 reproduces Table 4: sample sequences from the corpus extraction and
// measure average virtual time per case for LPO with a local and an API
// model, and Souper at Enum 0-3 with the 20-minute timeout.
func RunRQ3(opts RQ3Options) *RQ3Report {
	opts = opts.withDefaults()
	ctx := context.Background()
	ex := extract.New(extract.Options{})
	var seqs []*extract.Sequence
	// Scope the stream's context to the sampling loop: cancelling it stops
	// the Corpus producer goroutine once the sample is full.
	sampleCtx, stopSampling := context.WithCancel(ctx)
	src := engine.Corpus(corpus.Options{Seed: opts.Seed}, ex)
	for len(seqs) < opts.Sequences {
		s, ok, err := src.Next(sampleCtx)
		if err != nil || !ok {
			break
		}
		seqs = append(seqs, s)
	}
	stopSampling()
	rep := &RQ3Report{Sequences: len(seqs)}

	verify := alive.Options{Samples: 256, Seed: opts.Seed}
	for _, model := range []string{"Llama3.3", "Gemini2.5"} {
		sim := llm.NewSim(model, opts.Seed)
		eng := engine.New(sim, engine.Config{Verify: verify, Workers: opts.Workers})
		results, _ := eng.RunAll(ctx, engine.Sequences(seqs...))
		// Fold usage in stream order (not from the live Stats) so the float
		// sums are bit-identical for every worker count.
		var u llm.Usage
		for _, r := range results {
			u.Add(r.Usage)
		}
		rep.Rows = append(rep.Rows, RQ3Row{
			Tool:       "LPO/" + model,
			Cases:      len(seqs),
			SecPerCase: u.VirtualSeconds / float64(len(seqs)),
			TotalCost:  u.CostUSD,
		})
	}
	for enum := 0; enum <= 3; enum++ {
		name := "Souper/Default"
		if enum > 0 {
			name = fmt.Sprintf("Souper/Enum=%d", enum)
		}
		row := RQ3Row{Tool: name, Cases: len(seqs)}
		// The baseline sweep is provider-free; fan it out with ParMap and
		// fold the indexed results back in order so the sums stay
		// bit-identical to a sequential run.
		type souperOut struct {
			seconds  float64
			timedOut bool
		}
		outs := engine.ParMap(ctx, opts.Workers, seqs,
			func(_ context.Context, i int, s *extract.Sequence) souperOut {
				r := souper.Optimize(s.Fn, souper.Options{Enum: enum, Seed: opts.Seed + uint64(i)})
				return souperOut{seconds: r.VirtualSeconds, timedOut: r.TimedOut}
			})
		for _, o := range outs {
			row.SecPerCase += o.seconds
			if o.timedOut {
				row.Timeouts++
			}
		}
		row.SecPerCase /= float64(len(seqs))
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// Print renders the measured Table 4 next to the paper's numbers.
func (r *RQ3Report) Print(w io.Writer) {
	fmt.Fprintf(w, "Table 4: average virtual time per case over %d sampled sequences\n", r.Sequences)
	fmt.Fprintf(w, "%-16s %12s %10s %12s\n", "Tool", "s/case", "timeouts", "cost (USD)")
	for _, row := range r.Rows {
		cost := ""
		if row.TotalCost > 0 {
			// Scale the cost to the paper's 5,000-case experiment size.
			scaled := row.TotalCost * 5000 / float64(row.Cases)
			cost = fmt.Sprintf("%.2f/5k", scaled)
		}
		fmt.Fprintf(w, "%-16s %12.1f %10d %12s\n", row.Tool, row.SecPerCase, row.Timeouts, cost)
	}
	fmt.Fprintln(w, "Paper: LPO/Llama3.3 26.2, LPO/Gemini2.5 6.7 (5.4 USD/5k), Souper 2.8 / 37.2 (80 t/o) / 144.4 (412 t/o) / 183.7 (616 t/o)")
}
