package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/alive"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/extract"
	"repro/internal/generalize"
	"repro/internal/llm"
	"repro/internal/opt"
)

// LearnedClosureOptions sizes the discovery→learn→re-optimize experiment.
type LearnedClosureOptions struct {
	Seed       uint64
	Model      string // default Gemini2.0T
	Rounds     int    // discovery rounds per sequence (default 8)
	Workers    int
	CorpusOpts corpus.Options
}

func (o LearnedClosureOptions) withDefaults() LearnedClosureOptions {
	if o.Model == "" {
		o.Model = "Gemini2.0T"
	}
	if o.Rounds == 0 {
		o.Rounds = 8
	}
	return o
}

// LearnedClosureRow is one learned rule's corpus impact.
type LearnedClosureRow struct {
	RuleID  string
	Doc     string
	Widths  []int
	Windows int // corpus windows the rule closes that baseline+patches miss
}

// LearnedClosureReport is the learned-rule closure table: how much stronger
// the optimizer is after one discovery campaign feeds its rulebook back.
type LearnedClosureReport struct {
	Rows    []LearnedClosureRow
	Learned int // distinct rules learned
	Found   int // verified findings during discovery

	Windows     int // unique corpus windows scanned
	BaseClosed  int // windows the baseline+patch rule set already improves
	ExtraClosed int // windows additionally improved only with the rulebook
}

// RunLearnedClosure closes the loop end to end on the synthetic corpus:
// a discovery run with the generalize hook learns a rulebook, then every
// extracted corpus window is re-optimized twice — once with the full
// baseline+patch rule set and once with the learned rules loaded on top —
// and the windows only the learned rules close are counted per rule. It is
// the experiment backing the ROADMAP's "learned rules must compound across
// runs" goal.
func RunLearnedClosure(opts LearnedClosureOptions) (*LearnedClosureReport, error) {
	opts = opts.withDefaults()
	rep := &LearnedClosureReport{}

	// Extract every unique window from the corpus once; discovery and the
	// closure scan share the list so the numbers line up.
	projects := corpus.Generate(opts.CorpusOpts)
	ex := extract.New(extract.Options{})
	var seqs []*extract.Sequence
	for _, p := range projects {
		for _, m := range p.Modules {
			seqs = append(seqs, ex.Module(m)...)
		}
	}
	rep.Windows = len(seqs)

	// Discovery with the learn hook.
	eng := engine.New(llm.NewSim(opts.Model, opts.Seed), engine.Config{
		Workers: opts.Workers,
		Rounds:  opts.Rounds,
		Learn:   true,
		Verify:  alive.Options{Samples: 512, Seed: opts.Seed},
	})
	results, _ := eng.RunAll(context.Background(), engine.Sequences(seqs...))
	for _, r := range results {
		if r.Outcome == engine.Found {
			rep.Found++
		}
	}
	learned := eng.Learned()
	rep.Learned = len(learned)

	// Load the rulebook back (through the serialized form, so the scan
	// exercises exactly what a later run would load).
	data, err := eng.Rulebook().Encode()
	if err != nil {
		return nil, err
	}
	book, err := generalize.DecodeRulebook(data)
	if err != nil {
		return nil, err
	}
	compiled, err := book.Compile()
	if err != nil {
		return nil, err
	}
	ors, err := generalize.OptRules(compiled)
	if err != nil {
		return nil, err
	}
	baseSet := opt.NewRuleSet(opt.Options{Patches: opt.PatchIDs()})
	learnedSet := baseSet.WithRules(ors...)

	perRule := make(map[string]int)
	for _, s := range seqs {
		base := opt.Run(s.Fn, opt.Options{Rules: baseSet})
		if base.NumInstrs(true) < s.Fn.NumInstrs(true) {
			rep.BaseClosed++
		}
		with, stats := opt.RunWithStats(s.Fn, opt.Options{Rules: learnedSet})
		if with.NumInstrs(true) >= base.NumInstrs(true) {
			continue
		}
		rep.ExtraClosed++
		for id := range stats.RuleHits {
			if r := learnedSet.RuleByID(id); r != nil && r.Provenance == opt.ProvLearned {
				perRule[id]++
			}
		}
	}
	for _, r := range compiled {
		rep.Rows = append(rep.Rows, LearnedClosureRow{
			RuleID: r.ID, Doc: r.Doc, Widths: r.Widths, Windows: perRule[r.ID],
		})
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Windows != rep.Rows[j].Windows {
			return rep.Rows[i].Windows > rep.Rows[j].Windows
		}
		return rep.Rows[i].RuleID < rep.Rows[j].RuleID
	})
	return rep, nil
}

// Print renders the closure table.
func (r *LearnedClosureReport) Print(w io.Writer) {
	fmt.Fprintln(w, "Learned-rule closure: corpus windows closed by the rulebook that baseline+patches miss")
	fmt.Fprintf(w, "discovery: %d windows, %d verified findings, %d distinct rules learned\n",
		r.Windows, r.Found, r.Learned)
	fmt.Fprintf(w, "closure:   %d windows closed by baseline+patches, +%d more with the rulebook loaded\n",
		r.BaseClosed, r.ExtraClosed)
	fmt.Fprintf(w, "%-24s %-12s %8s   %s\n", "Rule", "Widths", "Windows", "Pattern")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-24s %-12s %8d   %s\n",
			row.RuleID, joinInts(row.Widths), row.Windows, row.Doc)
	}
}

func joinInts(xs []int) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", x)
	}
	return s
}
