package experiments

import (
	"encoding/json"
	"runtime"
	"sync"
	"testing"

	"repro/internal/alive"
	"repro/internal/generalize"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/parser"
)

// PerfSchema names the snapshot format; bump on breaking changes.
const PerfSchema = "lpo-bench-perf/1"

// PerfBench is one measured workload of the perf snapshot (see doc.go,
// "Performance", for the schema).
type PerfBench struct {
	// Name identifies the workload (stable across PRs).
	Name string `json:"name"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// Iterations is how many operations the measurement averaged over.
	Iterations int `json:"iterations"`
}

// PerfSnapshot is the machine-readable performance record emitted by
// `lpo-bench -json` so successive PRs have a trajectory to compare against.
type PerfSnapshot struct {
	Schema     string      `json:"schema"`
	GoMaxProcs int         `json:"go_max_procs"`
	GoVersion  string      `json:"go_version"`
	Benches    []PerfBench `json:"benchmarks"`
}

// Encode renders the snapshot as indented JSON.
func (s *PerfSnapshot) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// The perf workloads below are the single source of truth for both the
// root-level benchmarks (bench_test.go delegates to the Bench* functions)
// and the `lpo-bench -json` snapshot, so `go test -bench` output and the
// JSON artifact always measure the same work.

const perfClampSrc = `define i8 @src(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`

const perfClampTgt = `define i8 @tgt(i32 %0) {
  %2 = tail call i32 @llvm.smax.i32(i32 %0, i32 0)
  %3 = tail call i32 @llvm.umin.i32(i32 %2, i32 255)
  %4 = trunc nuw i32 %3 to i8
  ret i8 %4
}`

const perfSweepSrc = `define i16 @src(i16 %x, i16 %y) {
  %a = and i16 %x, %y
  %o = or i16 %x, %y
  %r = xor i16 %a, %o
  ret i16 %r
}`

const perfSweepTgt = `define i16 @tgt(i16 %x, i16 %y) {
  %r = xor i16 %x, %y
  ret i16 %r
}`

var (
	perfOnce                     sync.Once
	perfClampSrcF, perfClampTgtF *ir.Func
	perfSweepSrcF, perfSweepTgtF *ir.Func
)

func perfFuncs() {
	perfOnce.Do(func() {
		perfClampSrcF = parser.MustParseFunc(perfClampSrc)
		perfClampTgtF = parser.MustParseFunc(perfClampTgt)
		perfSweepSrcF = parser.MustParseFunc(perfSweepSrc)
		perfSweepTgtF = parser.MustParseFunc(perfSweepTgt)
	})
}

// BenchVerify measures the compile-once checker on a representative
// benchdata-style window (the paper's clamp case, 1024 samples) with a
// shared program cache — the engine verify stage's steady-state
// configuration.
func BenchVerify(b *testing.B) {
	perfFuncs()
	opts := alive.Options{Samples: 1024, Seed: 1, Programs: interp.NewCache()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := alive.Verify(perfClampSrcF, perfClampTgtF, opts); r.Verdict != alive.Correct {
			b.Fatal("verification regressed")
		}
	}
}

// BenchVerifyReference is the same workload through the pre-compile-once
// verification path, kept as the perf trajectory's baseline.
func BenchVerifyReference(b *testing.B) {
	perfFuncs()
	opts := alive.Options{Samples: 1024, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := alive.ReferenceVerify(perfClampSrcF, perfClampTgtF, opts); r.Verdict != alive.Correct {
			b.Fatal("verification regressed")
		}
	}
}

// BenchVerifyWidths measures a generalize-style width sweep (the same pair
// re-instantiated and re-verified at i8/i16/i32/i64) with the shared
// program cache.
func BenchVerifyWidths(b *testing.B) {
	perfFuncs()
	widths := []int{8, 16, 32, 64}
	opts := alive.Options{Samples: 256, Seed: 1, Programs: interp.NewCache()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wrs := alive.VerifyWidths(widths, opts, func(w int) (*ir.Func, *ir.Func, error) {
			s, err := generalize.Rewidth(perfSweepSrcF, w)
			if err != nil {
				return nil, nil, err
			}
			t, err := generalize.Rewidth(perfSweepTgtF, w)
			if err != nil {
				return nil, nil, err
			}
			return s, t, nil
		})
		for _, wr := range wrs {
			if wr.Verdict != alive.Correct {
				b.Fatal("width sweep regressed")
			}
		}
	}
}

// BenchInterpExec measures one execution of the clamp window through the
// reference tree-walker.
func BenchInterpExec(b *testing.B) {
	perfFuncs()
	env := interp.Env{Args: []interp.RVal{interp.Scalar(ir.I32, 1234)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		interp.Exec(perfClampSrcF, env)
	}
}

// BenchInterpCompiled is BenchInterpExec through a warm compiled evaluator:
// the per-execution cost once the window is compiled.
func BenchInterpCompiled(b *testing.B) {
	perfFuncs()
	ev := interp.NewEvaluator(interp.Compile(perfClampSrcF))
	env := interp.Env{Args: []interp.RVal{interp.Scalar(ir.I32, 1234)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Run(env)
	}
}

// BenchOptDispatchAllRules measures the opcode-indexed rewrite dispatch with
// every registry rule enabled over a prebuilt RuleSet.
func BenchOptDispatchAllRules(b *testing.B) {
	perfFuncs()
	rs := opt.NewRuleSet(opt.Options{Patches: opt.AllRuleNames()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Run(perfClampSrcF, opt.Options{Rules: rs})
	}
}

// BenchOptRunO3 measures the baseline optimizer pipeline.
func BenchOptRunO3(b *testing.B) {
	perfFuncs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.RunO3(perfClampSrcF)
	}
}

// perfWorkloads lists the snapshot entries in emission order.
var perfWorkloads = []struct {
	Name string
	Fn   func(*testing.B)
}{
	{"verify_checker", BenchVerify},
	{"verify_reference", BenchVerifyReference},
	{"verify_widths", BenchVerifyWidths},
	{"interp_exec", BenchInterpExec},
	{"interp_compiled", BenchInterpCompiled},
	{"opt_dispatch_all_rules", BenchOptDispatchAllRules},
	{"opt_run_o3", BenchOptRunO3},
}

// RunPerfSnapshot measures every perf workload with testing.Benchmark and
// returns the snapshot. Workload names map 1:1 onto the root-level
// benchmarks (BenchmarkVerify, BenchmarkVerifyReference,
// BenchmarkVerifyWidths, BenchmarkInterpExec, BenchmarkInterpCompiled and
// the opt dispatch pair), which delegate to the same Bench* functions.
func RunPerfSnapshot() *PerfSnapshot {
	snap := &PerfSnapshot{Schema: PerfSchema, GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version()}
	for _, w := range perfWorkloads {
		r := testing.Benchmark(w.Fn)
		snap.Benches = append(snap.Benches, PerfBench{
			Name:        w.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
	}
	return snap
}
