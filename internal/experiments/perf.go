package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/alive"
	"repro/internal/corpus"
	"repro/internal/generalize"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/store"
	"repro/internal/wasm"
)

// PerfSchema names the snapshot format; bump on breaking changes.
// Version 2 adds the verify_batch / interp_batch workloads and the
// tier_kills counters of the tiered verification scheduler. Version 3 adds
// the verify_multiblock / verify_memory workloads (batched execution of
// control flow and load/store programs) and the batch_coverage record
// measured over a corpus self-verification sweep. Version 4 adds the
// wasm_decode / wasm_lift workloads (the WebAssembly frontend over the
// embedded fixture corpus). Version 5 adds the store ingest workloads
// (store_commit / store_group_commit / ingest_throughput) and the
// ingest_speedup ratio the CI guard holds a floor on.
const PerfSchema = "lpo-bench-perf/5"

// PerfBench is one measured workload of the perf snapshot (see doc.go,
// "Performance", for the schema).
type PerfBench struct {
	// Name identifies the workload (stable across PRs).
	Name string `json:"name"`
	// NsPerOp is wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// Iterations is how many operations the measurement averaged over.
	Iterations int `json:"iterations"`
}

// PerfTierKills records the scheduler behaviour of a scripted
// refute-twice-then-verify sequence (see measureTierKills): which tier
// killed each wrong candidate. The second refutation of the same window
// must be a pool kill, so the counters double as a CI-visible functional
// check of counterexample sharing.
type PerfTierKills struct {
	Pool    int64 `json:"pool"`
	Special int64 `json:"special"`
	Random  int64 `json:"random"`
}

// PerfBatchCoverage records how a corpus self-verification sweep split
// between the lane-batched execution path and the per-vector fallback (see
// measureBatchCoverage). The split is deterministic for the fixed seed, so
// a change that silently knocks program shapes off the batched path is
// CI-visible even when every ns/op still passes.
type PerfBatchCoverage struct {
	Batched  int64   `json:"batched"`
	Fallback int64   `json:"fallback"`
	Coverage float64 `json:"coverage"` // Batched / (Batched + Fallback)
}

// PerfSnapshot is the machine-readable performance record emitted by
// `lpo-bench -json` so successive PRs have a trajectory to compare against.
type PerfSnapshot struct {
	Schema        string            `json:"schema"`
	GoMaxProcs    int               `json:"go_max_procs"`
	GoVersion     string            `json:"go_version"`
	Benches       []PerfBench       `json:"benchmarks"`
	TierKills     PerfTierKills     `json:"tier_kills"`
	BatchCoverage PerfBatchCoverage `json:"batch_coverage"`
	// IngestSpeedup is store_commit ns/op divided by ingest_throughput
	// ns/op: how many times faster a submission becomes durable on the
	// scaled path (group commit + shards + client batching, 8 concurrent
	// clients) than with one fsync per finding. ComparePerf holds a floor
	// on it once a reference has recorded one.
	IngestSpeedup float64 `json:"ingest_speedup,omitempty"`
}

// Encode renders the snapshot as indented JSON.
func (s *PerfSnapshot) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// DecodePerfSnapshot parses a snapshot previously written by Encode. Older
// schema versions decode too (unknown workloads are simply absent), so the
// regression guard can compare across schema bumps.
func DecodePerfSnapshot(data []byte) (*PerfSnapshot, error) {
	var s PerfSnapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// ComparePerf checks the current snapshot against a committed reference and
// returns one description per regression. A tracked workload is regressed
// when its ns/op exceeds nsTolerance times the reference (the CI guard uses
// 2.0 — generous enough for shared-runner noise, tight enough to catch a
// lost optimization), or when its allocs/op exceeds allocTolerance times the
// reference (allocation counts are near-deterministic, so growth past the
// factor is a real change in the code's allocation behaviour, not noise; a
// small absolute slack exempts workloads whose reference count is tiny).
// Workloads present on only one side are ignored, so adding or retiring
// benchmarks never breaks the guard. The tier-kill counters are
// deterministic (no timing involved) and compared exactly whenever the
// reference recorded any, so a broken counterexample-sharing path fails CI
// even though every ns/op may look fine.
func ComparePerf(cur, ref *PerfSnapshot, nsTolerance, allocTolerance float64) []string {
	refByName := make(map[string]PerfBench, len(ref.Benches))
	for _, b := range ref.Benches {
		refByName[b.Name] = b
	}
	var regressions []string
	for _, b := range cur.Benches {
		r, ok := refByName[b.Name]
		if !ok || r.NsPerOp <= 0 {
			continue
		}
		if b.NsPerOp > r.NsPerOp*nsTolerance {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs reference %.0f ns/op (%.2fx > %.1fx tolerance)",
				b.Name, b.NsPerOp, r.NsPerOp, b.NsPerOp/r.NsPerOp, nsTolerance))
		}
		// The +8 slack keeps sub-ten-alloc workloads from tripping the
		// guard on a one-or-two-alloc wobble.
		if limit := int64(float64(r.AllocsPerOp)*allocTolerance) + 8; b.AllocsPerOp > limit {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d allocs/op vs reference %d allocs/op (> %.1fx tolerance)",
				b.Name, b.AllocsPerOp, r.AllocsPerOp, allocTolerance))
		}
	}
	if ref.TierKills != (PerfTierKills{}) && cur.TierKills != ref.TierKills {
		regressions = append(regressions, fmt.Sprintf(
			"tier_kills: pool %d/special %d/random %d vs reference pool %d/special %d/random %d (scripted kill sequence is deterministic — counterexample sharing regressed)",
			cur.TierKills.Pool, cur.TierKills.Special, cur.TierKills.Random,
			ref.TierKills.Pool, ref.TierKills.Special, ref.TierKills.Random))
	}
	// Batch coverage is an absolute floor, not a relative tolerance: the
	// corpus sweep must keep >95% of its verify executions on the
	// lane-batched path. The gate only arms once a reference snapshot has
	// recorded the sweep (older schemas decode with a zero record).
	if ref.BatchCoverage.Batched+ref.BatchCoverage.Fallback > 0 &&
		cur.BatchCoverage.Coverage < minBatchCoverage {
		regressions = append(regressions, fmt.Sprintf(
			"batch_coverage: %.1f%% of corpus verify executions ran lane-batched (%d batched, %d fallback), floor is %.0f%%",
			100*cur.BatchCoverage.Coverage, cur.BatchCoverage.Batched,
			cur.BatchCoverage.Fallback, 100*minBatchCoverage))
	}
	// The ingest speedup is a floor too: the scaled submission path must
	// stay at least minIngestSpeedup times faster than one-fsync-per-finding.
	// Both sides of the ratio are measured in the same run on the same disk,
	// so the ratio is far more stable than either absolute number. The gate
	// arms once a reference snapshot has recorded one.
	if ref.IngestSpeedup > 0 && cur.IngestSpeedup < minIngestSpeedup {
		regressions = append(regressions, fmt.Sprintf(
			"ingest_speedup: scaled ingest is %.1fx the per-finding-fsync baseline, floor is %.0fx",
			cur.IngestSpeedup, minIngestSpeedup))
	}
	return regressions
}

// minBatchCoverage is the absolute floor ComparePerf enforces on the corpus
// sweep's lane-batched execution share.
const minBatchCoverage = 0.95

// minIngestSpeedup is the floor ComparePerf enforces on the scaled ingest
// path's advantage over the one-fsync-per-finding baseline.
const minIngestSpeedup = 10.0

// The perf workloads below are the single source of truth for both the
// root-level benchmarks (bench_test.go delegates to the Bench* functions)
// and the `lpo-bench -json` snapshot, so `go test -bench` output and the
// JSON artifact always measure the same work.

const perfClampSrc = `define i8 @src(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`

const perfClampTgt = `define i8 @tgt(i32 %0) {
  %2 = tail call i32 @llvm.smax.i32(i32 %0, i32 0)
  %3 = tail call i32 @llvm.umin.i32(i32 %2, i32 255)
  %4 = trunc nuw i32 %3 to i8
  ret i8 %4
}`

const perfMultiBlockSrc = `define i32 @src(i32 %x) {
entry:
  %c = icmp slt i32 %x, 0
  br i1 %c, label %neg, label %pos
neg:
  %n = sub i32 0, %x
  br label %join
pos:
  br label %join
join:
  %a = phi i32 [ %n, %neg ], [ %x, %pos ]
  %r = and i32 %a, 2147483647
  ret i32 %r
}`

const perfMultiBlockTgt = `define i32 @tgt(i32 %x) {
  %s = ashr i32 %x, 31
  %t = xor i32 %x, %s
  %a = sub i32 %t, %s
  %r = and i32 %a, 2147483647
  ret i32 %r
}`

const perfMemSrc = `define i8 @src(ptr %p, i32 %x) {
  %t = trunc i32 %x to i8
  %v = load i8, ptr %p
  %d = shl i8 %v, 1
  %s = add i8 %d, %t
  store i8 %s, ptr %p
  ret i8 %s
}`

const perfMemTgt = `define i8 @tgt(ptr %p, i32 %x) {
  %t = trunc i32 %x to i8
  %v = load i8, ptr %p
  %d = add i8 %v, %v
  %s = add i8 %d, %t
  store i8 %s, ptr %p
  ret i8 %s
}`

const perfSweepSrc = `define i16 @src(i16 %x, i16 %y) {
  %a = and i16 %x, %y
  %o = or i16 %x, %y
  %r = xor i16 %a, %o
  ret i16 %r
}`

const perfSweepTgt = `define i16 @tgt(i16 %x, i16 %y) {
  %r = xor i16 %x, %y
  ret i16 %r
}`

var (
	perfOnce                     sync.Once
	perfClampSrcF, perfClampTgtF *ir.Func
	perfSweepSrcF, perfSweepTgtF *ir.Func
	perfMBSrcF, perfMBTgtF       *ir.Func
	perfMemSrcF, perfMemTgtF     *ir.Func
)

func perfFuncs() {
	perfOnce.Do(func() {
		perfClampSrcF = parser.MustParseFunc(perfClampSrc)
		perfClampTgtF = parser.MustParseFunc(perfClampTgt)
		perfSweepSrcF = parser.MustParseFunc(perfSweepSrc)
		perfSweepTgtF = parser.MustParseFunc(perfSweepTgt)
		perfMBSrcF = parser.MustParseFunc(perfMultiBlockSrc)
		perfMBTgtF = parser.MustParseFunc(perfMultiBlockTgt)
		perfMemSrcF = parser.MustParseFunc(perfMemSrc)
		perfMemTgtF = parser.MustParseFunc(perfMemTgt)
	})
}

// BenchVerify measures the compile-once checker on a representative
// benchdata-style window (the paper's clamp case, 1024 samples) with a
// shared program cache — the engine verify stage's steady-state
// configuration.
func BenchVerify(b *testing.B) {
	perfFuncs()
	opts := alive.Options{Samples: 1024, Seed: 1, Programs: interp.NewCache()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := alive.Verify(perfClampSrcF, perfClampTgtF, opts); r.Verdict != alive.Correct {
			b.Fatal("verification regressed")
		}
	}
}

// BenchVerifyReference is the same workload through the pre-compile-once
// verification path, kept as the perf trajectory's baseline.
func BenchVerifyReference(b *testing.B) {
	perfFuncs()
	opts := alive.Options{Samples: 1024, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := alive.ReferenceVerify(perfClampSrcF, perfClampTgtF, opts); r.Verdict != alive.Correct {
			b.Fatal("verification regressed")
		}
	}
}

// BenchVerifyBatch measures the tiered checker in its steady state: one
// Checker reused across calls (the CEGIS pattern), so compilation, batch
// setup and the input-generator tables are all warm and each op is pure
// lane-batched verification work.
func BenchVerifyBatch(b *testing.B) {
	perfFuncs()
	c := alive.NewChecker(perfClampSrcF, perfClampTgtF,
		alive.Options{Samples: 1024, Seed: 1, Programs: interp.NewCache()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := c.Verify(); r.Verdict != alive.Correct {
			b.Fatal("verification regressed")
		}
	}
}

// BenchVerifyMultiBlock measures steady-state verification of a branchy
// window (an abs-value diamond with a phi join against its branch-free
// form) through a reused Checker — the masked multi-block scheduler is the
// whole workload, where the seed fell back to per-vector execution.
func BenchVerifyMultiBlock(b *testing.B) {
	perfFuncs()
	c := alive.NewChecker(perfMBSrcF, perfMBTgtF,
		alive.Options{Samples: 1024, Seed: 1, Programs: interp.NewCache()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := c.Verify(); r.Verdict != alive.Correct {
			b.Fatal("verification regressed")
		}
	}
}

// BenchVerifyMemory measures steady-state verification of a load/store
// window (shl-vs-add on a loaded byte, stored back) through a reused
// Checker — per-lane slab memories and the per-lane memory diff are the
// workload, where the seed fell back to per-vector execution.
func BenchVerifyMemory(b *testing.B) {
	perfFuncs()
	c := alive.NewChecker(perfMemSrcF, perfMemTgtF,
		alive.Options{Samples: 1024, Seed: 1, Programs: interp.NewCache()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := c.Verify(); r.Verdict != alive.Correct {
			b.Fatal("verification regressed")
		}
	}
}

// BenchVerifyWidths measures a generalize-style width sweep (the same pair
// re-instantiated and re-verified at i8/i16/i32/i64) with the shared
// program cache.
func BenchVerifyWidths(b *testing.B) {
	perfFuncs()
	widths := []int{8, 16, 32, 64}
	opts := alive.Options{Samples: 256, Seed: 1, Programs: interp.NewCache()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wrs := alive.VerifyWidths(widths, opts, func(w int) (*ir.Func, *ir.Func, error) {
			s, err := generalize.Rewidth(perfSweepSrcF, w)
			if err != nil {
				return nil, nil, err
			}
			t, err := generalize.Rewidth(perfSweepTgtF, w)
			if err != nil {
				return nil, nil, err
			}
			return s, t, nil
		})
		for _, wr := range wrs {
			if wr.Verdict != alive.Correct {
				b.Fatal("width sweep regressed")
			}
		}
	}
}

// BenchInterpExec measures one execution of the clamp window through the
// reference tree-walker.
func BenchInterpExec(b *testing.B) {
	perfFuncs()
	env := interp.Env{Args: []interp.RVal{interp.Scalar(ir.I32, 1234)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		interp.Exec(perfClampSrcF, env)
	}
}

// BenchInterpCompiled is BenchInterpExec through a warm compiled evaluator:
// the per-execution cost once the window is compiled.
func BenchInterpCompiled(b *testing.B) {
	perfFuncs()
	ev := interp.NewEvaluator(interp.Compile(perfClampSrcF))
	env := interp.Env{Args: []interp.RVal{interp.Scalar(ir.I32, 1234)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Run(env)
	}
}

// BenchInterpBatch executes one lane batch (interp.BatchWidth input
// vectors) of the clamp window through a warm evaluator per op — divide
// ns/op by interp.BatchWidth for the per-vector cost the batched verifier
// pays, against interp_compiled's per-vector dispatch cost.
func BenchInterpBatch(b *testing.B) {
	perfFuncs()
	ev := interp.NewEvaluator(interp.Compile(perfClampSrcF))
	args := []interp.RVal{interp.Scalar(ir.I32, 1234)}
	envs := make([]interp.Env, interp.BatchWidth)
	for i := range envs {
		envs[i] = interp.Env{Args: args}
	}
	out := make([]interp.Result, interp.BatchWidth)
	ev.RunBatch(envs, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.RunBatch(envs, out)
	}
}

// BenchWasmDecode measures decoding the whole embedded wasm fixture corpus
// from bytes to Module — the frontend's parse cost per campaign intake.
func BenchWasmDecode(b *testing.B) {
	fixtures := wasm.Fixtures()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, fx := range fixtures {
			if _, err := wasm.Decode(fx.Data); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchWasmLift measures lifting the decoded fixture corpus to SSA IR —
// stack-machine reconstruction, control-flow restructuring, and the
// verifier pass over every lifted function.
func BenchWasmLift(b *testing.B) {
	fixtures := wasm.Fixtures()
	mods := make([]*wasm.Module, len(fixtures))
	for i, fx := range fixtures {
		m, err := wasm.Decode(fx.Data)
		if err != nil {
			b.Fatal(err)
		}
		mods[i] = m
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range mods {
			if _, st := wasm.Lift(m, "bench"); st.Lifted == 0 {
				b.Fatal("lift regressed")
			}
		}
	}
}

// BenchOptDispatchAllRules measures the opcode-indexed rewrite dispatch with
// every registry rule enabled over a prebuilt RuleSet.
func BenchOptDispatchAllRules(b *testing.B) {
	perfFuncs()
	rs := opt.NewRuleSet(opt.Options{Patches: opt.AllRuleNames()})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Run(perfClampSrcF, opt.Options{Rules: rs})
	}
}

// BenchOptRunO3 measures the baseline optimizer pipeline.
func BenchOptRunO3(b *testing.B) {
	perfFuncs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.RunO3(perfClampSrcF)
	}
}

// --- Store ingest workloads ---
//
// Three points on the durability/throughput curve, all writing the same
// finding-sized records to a fresh store on local disk:
//
//   - store_commit: the pre-scaling baseline — one record, one Commit, one
//     fsync, serial. What every submission paid before group commit.
//   - store_group_commit: 8 concurrent clients each making every record
//     durable before the next (Put + Flush per op) against one
//     group-committed log — concurrent barriers share fsyncs.
//   - ingest_throughput: the full scaled path — 4 shards, group commit, 8
//     concurrent clients batching a Flush barrier every 32 records (the
//     persist workers' micro-batching pattern, which barriers once per
//     drained batch of up to 64 results).
//
// ingest_throughput ns/op versus store_commit ns/op is the snapshot's
// ingest_speedup ratio; ComparePerf keeps it above minIngestSpeedup.

// ingestClients is the concurrency of the ingest benchmarks — the paper
// setting of 8 submitting clients.
const ingestClients = 8

// perfFindingVal is a representative finding record body (~220 bytes of
// compact JSON, the size class the service persists per window).
var perfFindingVal = []byte(`{"window":"deadbeefcafef00d","status":"optimized","model":"Gemini2.0T","src":"%2 = icmp slt i32 %0, 0\n%3 = call i32 @llvm.umin.i32(i32 %0, i32 255)","tgt":"%2 = call i32 @llvm.smax.i32(i32 %0, i32 0)","cycles_saved":3}`)

// benchIngest drives b.N unique finding Puts through st from ingestClients
// concurrent goroutines, erecting a Flush durability barrier every
// flushEvery records per client (1 = every record durable before the next).
// Every client ends with a final barrier, so the measurement always covers
// full durability of all b.N records.
func benchIngest(b *testing.B, st store.Backend, flushEvery int) {
	var ctr uint64
	per := (b.N + ingestClients - 1) / ingestClients
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c := 0; c < ingestClients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("%016x", atomic.AddUint64(&ctr, 1))
				if _, err := st.Put(store.KindFinding, key, perfFindingVal); err != nil {
					b.Error(err)
					return
				}
				if (i+1)%flushEvery == 0 {
					if err := st.Flush(); err != nil {
						b.Error(err)
						return
					}
				}
			}
			if err := st.Flush(); err != nil {
				b.Error(err)
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
}

// BenchStoreCommit is the baseline the scaling work is measured against:
// one fsync per finding, serial — Put then Commit for every record, the
// durability discipline of the pre-group-commit submit path.
func BenchStoreCommit(b *testing.B) {
	dir, err := os.MkdirTemp("", "lpo-bench-store")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("%016x", i)
		if _, err := st.Put(store.KindFinding, key, perfFindingVal); err != nil {
			b.Fatal(err)
		}
		if err := st.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// BenchStoreGroupCommit keeps the strictest durability discipline — every
// record durable before its client continues — but runs 8 clients against
// a group-committed log, so concurrent barriers coalesce into shared
// fsyncs. MaxBatch is tuned to the client count so the committer fires as
// soon as every blocked client's record is pending.
func BenchStoreGroupCommit(b *testing.B) {
	dir, err := os.MkdirTemp("", "lpo-bench-store")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	st.StartGroupCommit(store.GroupCommitOptions{MaxDelay: 200 * time.Microsecond, MaxBatch: ingestClients})
	benchIngest(b, st, 1)
}

// BenchIngestThroughput is the full scaled ingest path: 4 shards, group
// commit at defaults, 8 concurrent clients each batching 32 records per
// durability barrier — the configuration the lpod persist workers run.
func BenchIngestThroughput(b *testing.B) {
	dir, err := os.MkdirTemp("", "lpo-bench-store")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.OpenSharded(dir, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	st.StartGroupCommit(store.GroupCommitOptions{})
	benchIngest(b, st, 32)
}

// perfWorkloads lists the snapshot entries in emission order.
var perfWorkloads = []struct {
	Name string
	Fn   func(*testing.B)
}{
	{"verify_checker", BenchVerify},
	{"verify_reference", BenchVerifyReference},
	{"verify_batch", BenchVerifyBatch},
	{"verify_multiblock", BenchVerifyMultiBlock},
	{"verify_memory", BenchVerifyMemory},
	{"verify_widths", BenchVerifyWidths},
	{"interp_exec", BenchInterpExec},
	{"interp_compiled", BenchInterpCompiled},
	{"interp_batch", BenchInterpBatch},
	{"wasm_decode", BenchWasmDecode},
	{"wasm_lift", BenchWasmLift},
	{"opt_dispatch_all_rules", BenchOptDispatchAllRules},
	{"opt_run_o3", BenchOptRunO3},
	{"store_commit", BenchStoreCommit},
	{"store_group_commit", BenchStoreGroupCommit},
	{"ingest_throughput", BenchIngestThroughput},
}

// RunPerfSnapshot measures every perf workload with testing.Benchmark and
// returns the snapshot. Workload names map 1:1 onto the root-level
// benchmarks (BenchmarkVerify, BenchmarkVerifyReference,
// BenchmarkVerifyBatch, BenchmarkVerifyWidths, BenchmarkInterpExec,
// BenchmarkInterpCompiled, BenchmarkInterpBatch and the opt dispatch pair),
// which delegate to the same Bench* functions.
func RunPerfSnapshot() *PerfSnapshot {
	snap := &PerfSnapshot{Schema: PerfSchema, GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version()}
	for _, w := range perfWorkloads {
		r := testing.Benchmark(w.Fn)
		snap.Benches = append(snap.Benches, PerfBench{
			Name:        w.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
	}
	snap.TierKills = measureTierKills()
	snap.BatchCoverage = measureBatchCoverage()
	var baseNs, scaledNs float64
	for _, b := range snap.Benches {
		switch b.Name {
		case "store_commit":
			baseNs = b.NsPerOp
		case "ingest_throughput":
			scaledNs = b.NsPerOp
		}
	}
	if scaledNs > 0 {
		snap.IngestSpeedup = baseNs / scaledNs
	}
	return snap
}

// measureBatchCoverage self-verifies a fixed slice of the generated corpus
// — the shapes a real extraction produces, including branches, memory
// access and vectors — and records how the executed input vectors split
// between the lane-batched path and the per-vector fallback. The sweep is
// deterministic for the fixed seed; ComparePerf fails CI when the batched
// share drops below minBatchCoverage.
func measureBatchCoverage() PerfBatchCoverage {
	projects := corpus.Generate(corpus.Options{Seed: 7, ModulesPerProject: 1, FuncsPerModule: 8})
	opts := alive.Options{Samples: 96, Seed: 7, Programs: interp.NewCache()}
	var cov PerfBatchCoverage
	n := 0
	for _, p := range projects {
		for _, m := range p.Modules {
			for _, f := range m.Funcs {
				if n >= 48 {
					break
				}
				n++
				res := alive.Verify(f, f, opts)
				cov.Batched += int64(res.Tiers.Batched)
				cov.Fallback += int64(res.Tiers.Fallback)
			}
		}
	}
	if total := cov.Batched + cov.Fallback; total > 0 {
		cov.Coverage = float64(cov.Batched) / float64(total)
	}
	return cov
}

// measureTierKills runs a fixed script of refuted verifications through one
// shared counterexample pool and records which scheduler tier killed each
// candidate:
//
//  1. add/add-nsw at i8 — the corner values catch the signed overflow
//     (special-tier kill) and the refuting input enters the pool;
//  2. a second wrong candidate for the same window — the pooled input kills
//     it on the first replayed vector (pool-tier kill);
//  3. an i32 identity rewrite broken only on x ≡ 777 (mod 1000), a residue
//     no corner value hits — only the random phase finds it (random-tier
//     kill).
//
// The counters are deterministic for the fixed seed, so the snapshot makes
// counterexample sharing itself CI-observable.
func measureTierKills() PerfTierKills {
	pool := alive.NewCEPool()
	opts := alive.Options{Samples: 4096, Seed: 1, Programs: interp.NewCache(), Pool: pool}
	src := parser.MustParseFunc(`define i8 @src(i8 %x, i8 %y) { %r = add i8 %x, %y ret i8 %r }`)
	nsw := parser.MustParseFunc(`define i8 @tgt(i8 %x, i8 %y) { %r = add nsw i8 %x, %y ret i8 %r }`)
	ident := parser.MustParseFunc(`define i8 @tgt(i8 %x, i8 %y) { ret i8 %x }`)
	randSrc := parser.MustParseFunc(`define i32 @src(i32 %x) { ret i32 %x }`)
	randTgt := parser.MustParseFunc(`define i32 @tgt(i32 %x) {
  %m = urem i32 %x, 1000
  %c = icmp eq i32 %m, 777
  %r = select i1 %c, i32 0, i32 %x
  ret i32 %r
}`)
	var kills PerfTierKills
	for _, pair := range [][2]*ir.Func{{src, nsw}, {src, ident}, {randSrc, randTgt}} {
		switch alive.Verify(pair[0], pair[1], opts).Tiers.KillTier {
		case alive.TierPool:
			kills.Pool++
		case alive.TierSpecial:
			kills.Special++
		case alive.TierRandom:
			kills.Random++
		}
	}
	return kills
}
