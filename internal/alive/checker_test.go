package alive

import (
	"fmt"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/parser"
)

// benchdataPairs parses every RQ1 and RQ2 (src, tgt) pair.
func benchdataPairs(t *testing.T) [][2]*ir.Func {
	t.Helper()
	var out [][2]*ir.Func
	add := func(p benchdata.Pair) {
		out = append(out, [2]*ir.Func{parser.MustParseFunc(p.Src), parser.MustParseFunc(p.Tgt)})
	}
	for _, c := range benchdata.RQ1Cases() {
		add(c.Pair)
	}
	for _, f := range benchdata.RQ2Findings() {
		add(f.Pair)
	}
	return out
}

func resultsEqual(a, b Result) string {
	if a.Verdict != b.Verdict {
		return fmt.Sprintf("verdict %v vs %v", a.Verdict, b.Verdict)
	}
	if a.Checked != b.Checked {
		return fmt.Sprintf("checked %d vs %d", a.Checked, b.Checked)
	}
	if a.Exhaustive != b.Exhaustive {
		return fmt.Sprintf("exhaustive %v vs %v", a.Exhaustive, b.Exhaustive)
	}
	if a.Err != b.Err {
		return fmt.Sprintf("err %q vs %q", a.Err, b.Err)
	}
	if (a.CE == nil) != (b.CE == nil) {
		return fmt.Sprintf("counterexample presence %v vs %v", a.CE != nil, b.CE != nil)
	}
	if a.CE != nil && a.CE.Format() != b.CE.Format() {
		return fmt.Sprintf("counterexample text:\n%s\nvs\n%s", a.CE.Format(), b.CE.Format())
	}
	return ""
}

// TestCheckerMatchesReferenceOnBenchdata runs every benchdata pair through
// the compiled checker and the reference Exec path, requiring identical
// verdicts, counts and byte-identical counterexample text. Cross-pairing
// sources with foreign targets provides the Incorrect/Unsupported cases.
func TestCheckerMatchesReferenceOnBenchdata(t *testing.T) {
	pairs := benchdataPairs(t)
	opts := Options{Seed: 11, Samples: 192, MemFills: 2}
	cache := interp.NewCache()
	cachedOpts := opts
	cachedOpts.Programs = cache
	for i, pr := range pairs {
		fast := Verify(pr[0], pr[1], cachedOpts)
		ref := ReferenceVerify(pr[0], pr[1], opts)
		if diff := resultsEqual(fast, ref); diff != "" {
			t.Fatalf("pair %d (%s): checker and reference disagree: %s", i, pr[0].Name, diff)
		}
		if fast.Verdict != Correct {
			t.Fatalf("pair %d: benchdata target must refine its source, got %v", i, fast.Verdict)
		}
		// Mispair with the next source's target: most such pairs are
		// refuted or unsupported, exercising the counterexample path.
		wrong := pairs[(i+1)%len(pairs)][1]
		fastW := Verify(pr[0], wrong, cachedOpts)
		refW := ReferenceVerify(pr[0], wrong, opts)
		if diff := resultsEqual(fastW, refW); diff != "" {
			t.Fatalf("mispair %d: checker and reference disagree: %s", i, diff)
		}
	}
	if cache.Len() == 0 {
		t.Fatal("program cache was never populated")
	}
}

// TestCheckerMatchesReferenceOnCorpus extends the differential to seeded
// random corpus functions (verified reflexively and against their optimized
// forms through both paths).
func TestCheckerMatchesReferenceOnCorpus(t *testing.T) {
	projects := corpus.Generate(corpus.Options{Seed: 17, ModulesPerProject: 1, FuncsPerModule: 6})
	opts := Options{Seed: 3, Samples: 96}
	n := 0
	for _, p := range projects {
		for _, m := range p.Modules {
			for _, f := range m.Funcs {
				if n >= 36 {
					return
				}
				n++
				fast := Verify(f, f, opts)
				ref := ReferenceVerify(f, f, opts)
				if diff := resultsEqual(fast, ref); diff != "" {
					t.Fatalf("corpus func %s: checker and reference disagree: %s", f.Name, diff)
				}
			}
		}
	}
}

// TestCheckerReuse exercises the CEGIS-style pattern: one Checker verified
// repeatedly must return identical results each time.
func TestCheckerReuse(t *testing.T) {
	src := parser.MustParseFunc(clampSrc)
	tgt := parser.MustParseFunc(clampTgt)
	c := NewChecker(src, tgt, Options{Seed: 5, Samples: 128})
	first := c.Verify()
	for i := 0; i < 3; i++ {
		if diff := resultsEqual(c.Verify(), first); diff != "" {
			t.Fatalf("repeat %d differs: %s", i, diff)
		}
	}
	if first.Verdict != Correct {
		t.Fatalf("clamp should verify, got %v", first.Verdict)
	}
}

// TestCheckerCounterexampleIsStable pins that counterexamples deep-copy the
// generator's reused buffers: two refuted runs must format identically, and
// the CE must not change after further verifications.
func TestCheckerCounterexampleIsStable(t *testing.T) {
	src := parser.MustParseFunc(`define i8 @src(i8 %x, i8 %y) { %r = add i8 %x, %y ret i8 %r }`)
	tgt := parser.MustParseFunc(`define i8 @tgt(i8 %x, i8 %y) { %r = add nsw i8 %x, %y ret i8 %r }`)
	r1 := Verify(src, tgt, Options{Seed: 1})
	if r1.Verdict != Incorrect {
		t.Fatalf("nsw strengthening must be refuted, got %v", r1.Verdict)
	}
	text := r1.CE.Format()
	r2 := Verify(src, tgt, Options{Seed: 1})
	if r2.CE.Format() != text {
		t.Fatalf("counterexamples differ across identical runs:\n%s\nvs\n%s", text, r2.CE.Format())
	}
	if ref := ReferenceVerify(src, tgt, Options{Seed: 1}); ref.CE.Format() != text {
		t.Fatalf("reference counterexample differs:\n%s\nvs\n%s", ref.CE.Format(), text)
	}
}

// TestVerifySteadyStateAllocs pins the perf contract of the tentpole: a full
// sampled Verify over the clamp window stays under a small constant
// allocation budget (the seed path allocated ~30k times for the same work).
func TestVerifySteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted by the race runtime")
	}
	src := parser.MustParseFunc(clampSrc)
	tgt := parser.MustParseFunc(clampTgt)
	opts := Options{Seed: 2, Samples: 1024, Programs: interp.NewCache()}
	Verify(src, tgt, opts) // warm the program cache
	allocs := testing.AllocsPerRun(5, func() {
		Verify(src, tgt, opts)
	})
	if allocs > 200 {
		t.Fatalf("Verify allocates %.0f times per call, want O(1) (<200)", allocs)
	}
}

var raceEnabled bool
