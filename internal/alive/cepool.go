package alive

// CEGIS-style counterexample sharing: most wrong candidates for a source
// window fail for the same reason, so an input vector that falsified one
// candidate very often falsifies the next. The CEPool collects every
// falsifying vector found during a campaign, keyed by the source window it
// refuted a candidate for, and the Checker replays the window's pooled
// vectors as verification tier 0 — killing repeat offenders after a handful
// of executions instead of hundreds. Souper/Minotaur-style CEGIS loops
// deposit and replay their counterexamples through the same pool.

import (
	"hash/fnv"
	"sync"

	"repro/internal/interp"
	"repro/internal/ir"
)

// defaultPoolCap bounds the vectors retained per source window. Falsifying
// vectors are few per window in practice; the cap only guards pathological
// candidates that each fail on a fresh input.
const defaultPoolCap = 32

// PoolVector is one stored falsifying input: the argument vector plus the
// initial memory contents behind each pointer argument (param order), both
// owned by the pool and treated as immutable.
type PoolVector struct {
	Inputs []interp.RVal
	Mem    [][]byte
}

// CEPoolStats is a snapshot of a pool's counters.
type CEPoolStats struct {
	Windows  int   // source windows with at least one vector
	Vectors  int   // vectors currently stored
	Deposits int64 // successful Add calls (duplicates excluded)
	Dups     int64 // Add calls dropped as duplicates
}

// CEPool is a campaign-scoped, concurrency-safe pool of counterexample
// input vectors, keyed by source window (WindowKey of the source function).
// A nil *CEPool is valid and stores nothing, so callers can thread an
// optional pool without nil checks.
type CEPool struct {
	mu      sync.Mutex
	cap     int
	buckets map[uint64]*ceBucket

	deposits, dups int64
}

type ceBucket struct {
	vecs []PoolVector
	seen map[uint64]bool // content hashes, for dedup
}

// NewCEPool returns an empty pool with the default per-window capacity.
func NewCEPool() *CEPool {
	return &CEPool{cap: defaultPoolCap, buckets: make(map[uint64]*ceBucket)}
}

// WindowKey is the pool key for a source function: its structural hash, the
// same identity the program cache and the engine's verify cache use.
func WindowKey(src *ir.Func) uint64 { return ir.Hash(src) }

// Add deposits a falsifying vector for the given window, cloning inputs and
// memory. Duplicate vectors (same values, poison marks and memory) and
// deposits beyond the per-window cap are dropped. It reports whether the
// vector was stored.
func (p *CEPool) Add(window uint64, inputs []interp.RVal, mem [][]byte) bool {
	if p == nil {
		return false
	}
	h := hashVector(inputs, mem)
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.buckets[window]
	if b == nil {
		b = &ceBucket{seen: make(map[uint64]bool)}
		p.buckets[window] = b
	}
	if b.seen[h] {
		p.dups++
		return false
	}
	if len(b.vecs) >= p.cap {
		return false
	}
	b.seen[h] = true
	b.vecs = append(b.vecs, PoolVector{Inputs: cloneRVals(inputs), Mem: cloneByteSlices(mem)})
	p.deposits++
	return true
}

// Vectors returns the stored vectors for a window, oldest first. The
// returned slice is a snapshot; its entries are shared and immutable.
func (p *CEPool) Vectors(window uint64) []PoolVector {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.buckets[window]
	if b == nil || len(b.vecs) == 0 {
		return nil
	}
	return append([]PoolVector(nil), b.vecs...)
}

// Stats returns a snapshot of the pool's counters. A nil pool reports zeros.
func (p *CEPool) Stats() CEPoolStats {
	if p == nil {
		return CEPoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := CEPoolStats{Windows: len(p.buckets), Deposits: p.deposits, Dups: p.dups}
	for _, b := range p.buckets {
		s.Vectors += len(b.vecs)
	}
	return s
}

// hashVector fingerprints an input vector plus memory for deduplication.
func hashVector(inputs []interp.RVal, mem [][]byte) uint64 {
	h := fnv.New64a()
	var buf [9]byte
	for _, v := range inputs {
		for _, l := range v.Lanes {
			for i := 0; i < 8; i++ {
				buf[i] = byte(l.V >> (8 * i))
			}
			buf[8] = 0
			if l.Poison {
				buf[8] = 1
			}
			h.Write(buf[:])
		}
		buf[8] = 2
		h.Write(buf[8:])
	}
	for _, m := range mem {
		h.Write(m)
		buf[8] = 3
		h.Write(buf[8:])
	}
	return h.Sum64()
}

// CEFilterVector adapts a counterexample into a CEGIS test-vector filter
// entry for superoptimizer loops (souper/minotaur): the refuting inputs
// plus the source's output on them, recomputed through the caller's
// compiled source evaluator. ok is false for poison-bearing inputs — they
// stay useful in the verification pool but cannot filter, because the
// source output is poison too. defined is false when the source run is UB,
// incomplete or poison-valued; callers keep the vector but skip the output
// comparison for it, mirroring their seeded test vectors.
func CEFilterVector(ce *CounterExample, srcEval *interp.Evaluator) (args []interp.RVal, want interp.RVal, defined, ok bool) {
	for _, in := range ce.Inputs {
		if in.AnyPoison() {
			return nil, interp.RVal{}, false, false
		}
	}
	r := srcEval.Run(interp.Env{Args: ce.Inputs})
	if r.Completed && !r.UB && !r.Ret.AnyPoison() {
		return ce.Inputs, r.Ret.Clone(), true, true
	}
	return ce.Inputs, interp.RVal{}, false, true
}

// RescaleVector adapts a pooled vector to a checker whose parameters may sit
// at a different bit width (the generalize width sweep re-instantiates the
// same shape at several widths): each lane is masked to the corresponding
// parameter's scalar width, poison marks survive. It reports false when the
// shapes are incompatible (different arity or lane counts).
func RescaleVector(params []*ir.Param, v PoolVector) (PoolVector, bool) {
	if len(v.Inputs) != len(params) {
		return PoolVector{}, false
	}
	out := PoolVector{Inputs: make([]interp.RVal, len(params)), Mem: v.Mem}
	for i, p := range params {
		in := v.Inputs[i]
		if len(in.Lanes) != ir.Lanes(p.Ty) {
			return PoolVector{}, false
		}
		mask := ir.MaskW(ir.ScalarBits(ir.Elem(p.Ty)))
		lanes := make([]interp.Word, len(in.Lanes))
		for l, w := range in.Lanes {
			if w.Poison {
				lanes[l] = interp.Word{Poison: true}
			} else {
				lanes[l] = interp.Word{V: w.V & mask}
			}
		}
		out.Inputs[i] = interp.RVal{Ty: p.Ty, Lanes: lanes}
	}
	return out, true
}
