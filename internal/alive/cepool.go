package alive

// CEGIS-style counterexample sharing: most wrong candidates for a source
// window fail for the same reason, so an input vector that falsified one
// candidate very often falsifies the next. The CEPool collects every
// falsifying vector found during a campaign, keyed by the source window it
// refuted a candidate for, and the Checker replays the window's pooled
// vectors as verification tier 0 — killing repeat offenders after a handful
// of executions instead of hundreds. Souper/Minotaur-style CEGIS loops
// deposit and replay their counterexamples through the same pool.

import (
	"hash/fnv"
	"sync"

	"repro/internal/interp"
	"repro/internal/ir"
)

// defaultPoolCap bounds the vectors retained per source window. Falsifying
// vectors are few per window in practice; the cap only guards pathological
// candidates that each fail on a fresh input.
const defaultPoolCap = 32

// PoolVector is one stored falsifying input: the argument vector plus the
// initial memory contents behind each pointer argument (param order), both
// owned by the pool and treated as immutable.
type PoolVector struct {
	Inputs []interp.RVal
	Mem    [][]byte
}

// WindowVector pairs a pooled vector with the window it refuted a candidate
// for — the unit the persistence hooks (Load, DrainPending) move between a
// pool and a store.
type WindowVector struct {
	Window uint64
	Vec    PoolVector
}

// CEPoolStats is a snapshot of a pool's counters.
type CEPoolStats struct {
	Windows   int   // source windows with at least one vector
	Vectors   int   // vectors currently stored
	Deposits  int64 // successful Add calls (duplicates excluded)
	Dups      int64 // Add calls dropped as duplicates
	Loaded    int64 // vectors installed by Load (store warm starts)
	Evictions int64 // vectors displaced by the per-window clock
}

// CEPool is a campaign-scoped, concurrency-safe pool of counterexample
// input vectors, keyed by source window (WindowKey of the source function).
// A nil *CEPool is valid and stores nothing, so callers can thread an
// optional pool without nil checks.
//
// Each window's vector list is bounded: past the per-window capacity a new
// deposit evicts an old vector chosen by the clock (second-chance) policy
// that interp.Cache uses — replayed vectors that actually falsify a
// candidate are marked referenced (Touch), and the clock hand sweeps past
// referenced entries (clearing the mark) until it finds an unreferenced
// victim. A long-running daemon therefore keeps the falsifiers that still
// kill candidates and sheds the ones that stopped earning their slot.
type CEPool struct {
	mu      sync.Mutex
	cap     int
	buckets map[uint64]*ceBucket

	// pending accumulates every Add since the last DrainPending — the flush
	// hook a persistent store uses to pick up new falsifiers incrementally.
	// Load does not mark pending (those vectors came FROM the store).
	pending []WindowVector

	deposits, dups, loaded, evictions int64
}

type ceSlot struct {
	vec  PoolVector
	hash uint64 // content hash, for dedup and eviction bookkeeping
	ref  bool   // clock reference bit: set when the vector kills a candidate
}

type ceBucket struct {
	slots []ceSlot
	seen  map[uint64]int // content hash -> slot index
	hand  int
}

// NewCEPool returns an empty pool with the default per-window capacity.
func NewCEPool() *CEPool {
	return &CEPool{cap: defaultPoolCap, buckets: make(map[uint64]*ceBucket)}
}

// WindowKey is the pool key for a source function: its structural hash, the
// same identity the program cache and the engine's verify cache use.
func WindowKey(src *ir.Func) uint64 { return ir.Hash(src) }

// Add deposits a falsifying vector for the given window, cloning inputs and
// memory. Duplicate vectors (same values, poison marks and memory) are
// dropped — but marked referenced, since the duplicate deposit proves the
// stored vector is still killing candidates. Past the per-window cap the
// clock evicts an unreferenced vector to make room. It reports whether a
// new vector was stored.
func (p *CEPool) Add(window uint64, inputs []interp.RVal, mem [][]byte) bool {
	if p == nil {
		return false
	}
	h := hashVector(inputs, mem)
	p.mu.Lock()
	defer p.mu.Unlock()
	v := PoolVector{Inputs: cloneRVals(inputs), Mem: cloneByteSlices(mem)}
	if !p.insert(window, v, h) {
		return false
	}
	p.deposits++
	p.pending = append(p.pending, WindowVector{Window: window, Vec: v})
	return true
}

// Load installs a vector that came from a persistent store, so a restarted
// campaign's tier-0 replay starts with the accumulated falsifier corpus.
// Unlike Add it does not mark the vector pending (it is already stored) and
// counts toward Loaded instead of Deposits. The vector is cloned.
func (p *CEPool) Load(window uint64, v PoolVector) bool {
	if p == nil {
		return false
	}
	h := hashVector(v.Inputs, v.Mem)
	p.mu.Lock()
	defer p.mu.Unlock()
	clone := PoolVector{Inputs: cloneRVals(v.Inputs), Mem: cloneByteSlices(v.Mem)}
	if !p.insert(window, clone, h) {
		return false
	}
	p.loaded++
	return true
}

// insert stores v under window with dedup and clock eviction. Caller holds
// the lock. dup vectors set the existing slot's reference bit.
func (p *CEPool) insert(window uint64, v PoolVector, h uint64) bool {
	b := p.buckets[window]
	if b == nil {
		b = &ceBucket{seen: make(map[uint64]int)}
		p.buckets[window] = b
	}
	if i, dup := b.seen[h]; dup {
		b.slots[i].ref = true
		p.dups++
		return false
	}
	if len(b.slots) < p.cap {
		b.seen[h] = len(b.slots)
		b.slots = append(b.slots, ceSlot{vec: v, hash: h})
		return true
	}
	// Clock sweep, mirroring interp.Cache: skip-and-clear referenced slots
	// until an unreferenced victim turns up.
	for {
		s := &b.slots[b.hand]
		if s.ref {
			s.ref = false
			b.hand = (b.hand + 1) % len(b.slots)
			continue
		}
		delete(b.seen, s.hash)
		p.evictions++
		*s = ceSlot{vec: v, hash: h}
		b.seen[h] = b.hand
		b.hand = (b.hand + 1) % len(b.slots)
		return true
	}
}

// Touch marks the stored copy of a vector as recently useful (it just
// falsified a candidate), protecting it from the next clock sweep. The
// checker calls this on every pool-tier kill.
func (p *CEPool) Touch(window uint64, inputs []interp.RVal, mem [][]byte) {
	if p == nil {
		return
	}
	h := hashVector(inputs, mem)
	p.mu.Lock()
	defer p.mu.Unlock()
	if b := p.buckets[window]; b != nil {
		if i, ok := b.seen[h]; ok {
			b.slots[i].ref = true
		}
	}
}

// Contains reports whether the pool currently holds this exact vector for
// the window — the liveness test store compaction uses to drop vectors the
// clock has evicted (they stopped killing candidates and lost their slot).
func (p *CEPool) Contains(window uint64, v PoolVector) bool {
	if p == nil {
		return false
	}
	h := hashVector(v.Inputs, v.Mem)
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.buckets[window]
	if b == nil {
		return false
	}
	_, ok := b.seen[h]
	return ok
}

// Vectors returns the stored vectors for a window, oldest first. The
// returned slice is a snapshot; its entries are shared and immutable.
func (p *CEPool) Vectors(window uint64) []PoolVector {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.buckets[window]
	if b == nil || len(b.slots) == 0 {
		return nil
	}
	out := make([]PoolVector, len(b.slots))
	for i, s := range b.slots {
		out[i] = s.vec
	}
	return out
}

// DrainPending returns every vector deposited since the last drain and
// clears the pending list — the flush hook a persistent store polls so the
// falsifier corpus survives restarts. Entries are shared and immutable;
// vectors evicted between deposit and drain are still returned (the store
// is append-only, and an evicted falsifier is still corpus).
func (p *CEPool) DrainPending() []WindowVector {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.pending
	p.pending = nil
	return out
}

// Stats returns a snapshot of the pool's counters. A nil pool reports zeros.
func (p *CEPool) Stats() CEPoolStats {
	if p == nil {
		return CEPoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := CEPoolStats{Windows: len(p.buckets), Deposits: p.deposits, Dups: p.dups,
		Loaded: p.loaded, Evictions: p.evictions}
	for _, b := range p.buckets {
		s.Vectors += len(b.slots)
	}
	return s
}

// hashVector fingerprints an input vector plus memory for deduplication.
func hashVector(inputs []interp.RVal, mem [][]byte) uint64 {
	h := fnv.New64a()
	var buf [9]byte
	for _, v := range inputs {
		for _, l := range v.Lanes {
			for i := 0; i < 8; i++ {
				buf[i] = byte(l.V >> (8 * i))
			}
			buf[8] = 0
			if l.Poison {
				buf[8] = 1
			}
			h.Write(buf[:])
		}
		buf[8] = 2
		h.Write(buf[8:])
	}
	for _, m := range mem {
		h.Write(m)
		buf[8] = 3
		h.Write(buf[8:])
	}
	return h.Sum64()
}

// CEFilterVector adapts a counterexample into a CEGIS test-vector filter
// entry for superoptimizer loops (souper/minotaur): the refuting inputs
// plus the source's output on them, recomputed through the caller's
// compiled source evaluator. ok is false for poison-bearing inputs — they
// stay useful in the verification pool but cannot filter, because the
// source output is poison too. defined is false when the source run is UB,
// incomplete or poison-valued; callers keep the vector but skip the output
// comparison for it, mirroring their seeded test vectors.
func CEFilterVector(ce *CounterExample, srcEval *interp.Evaluator) (args []interp.RVal, want interp.RVal, defined, ok bool) {
	for _, in := range ce.Inputs {
		if in.AnyPoison() {
			return nil, interp.RVal{}, false, false
		}
	}
	r := srcEval.Run(interp.Env{Args: ce.Inputs})
	if r.Completed && !r.UB && !r.Ret.AnyPoison() {
		return ce.Inputs, r.Ret.Clone(), true, true
	}
	return ce.Inputs, interp.RVal{}, false, true
}

// RescaleVector adapts a pooled vector to a checker whose parameters may sit
// at a different bit width (the generalize width sweep re-instantiates the
// same shape at several widths): each lane is masked to the corresponding
// parameter's scalar width, poison marks survive. It reports false when the
// shapes are incompatible (different arity or lane counts).
func RescaleVector(params []*ir.Param, v PoolVector) (PoolVector, bool) {
	if len(v.Inputs) != len(params) {
		return PoolVector{}, false
	}
	out := PoolVector{Inputs: make([]interp.RVal, len(params)), Mem: v.Mem}
	for i, p := range params {
		in := v.Inputs[i]
		if len(in.Lanes) != ir.Lanes(p.Ty) {
			return PoolVector{}, false
		}
		mask := ir.MaskW(ir.ScalarBits(ir.Elem(p.Ty)))
		lanes := make([]interp.Word, len(in.Lanes))
		for l, w := range in.Lanes {
			if w.Poison {
				lanes[l] = interp.Word{Poison: true}
			} else {
				lanes[l] = interp.Word{V: w.V & mask}
			}
		}
		out.Inputs[i] = interp.RVal{Ty: p.Ty, Lanes: lanes}
	}
	return out, true
}
