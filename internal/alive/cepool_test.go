package alive

import (
	"sync"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/parser"
)

func poolVec(vals ...uint64) []interp.RVal {
	out := make([]interp.RVal, len(vals))
	for i, v := range vals {
		out[i] = interp.Scalar(ir.I8, v)
	}
	return out
}

// TestCEPoolDedupAndCap pins deposit semantics: clones, duplicate
// rejection, the per-window cap, and nil-pool no-ops.
func TestCEPoolDedupAndCap(t *testing.T) {
	p := NewCEPool()
	if !p.Add(1, poolVec(1, 2), nil) {
		t.Fatal("first deposit rejected")
	}
	if p.Add(1, poolVec(1, 2), nil) {
		t.Fatal("duplicate deposit accepted")
	}
	if !p.Add(1, poolVec(2, 1), nil) {
		t.Fatal("distinct vector rejected")
	}
	if !p.Add(2, poolVec(1, 2), nil) {
		t.Fatal("same vector under another window rejected")
	}
	st := p.Stats()
	if st.Windows != 2 || st.Vectors != 3 || st.Deposits != 3 || st.Dups != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := len(p.Vectors(1)); got != 2 {
		t.Fatalf("window 1 has %d vectors, want 2", got)
	}
	// The pool clones: mutating the caller's buffer must not reach it.
	in := poolVec(9)
	p.Add(3, in, nil)
	in[0].Lanes[0].V = 42
	if p.Vectors(3)[0].Inputs[0].Lanes[0].V != 9 {
		t.Fatal("pool aliased the caller's buffer")
	}
	for i := uint64(0); i < defaultPoolCap*2; i++ {
		if !p.Add(4, poolVec(i), nil) {
			t.Fatalf("deposit %d rejected: the clock should evict, not drop", i)
		}
	}
	if got := len(p.Vectors(4)); got != defaultPoolCap {
		t.Fatalf("cap not enforced: %d vectors", got)
	}
	if ev := p.Stats().Evictions; ev != defaultPoolCap {
		t.Fatalf("evictions = %d, want %d", ev, defaultPoolCap)
	}
	var nilPool *CEPool
	if nilPool.Add(1, poolVec(1), nil) || nilPool.Vectors(1) != nil || nilPool.Stats() != (CEPoolStats{}) {
		t.Fatal("nil pool must be inert")
	}
}

// TestCEPoolConcurrency hammers one pool from concurrent depositors and
// readers; run under -race in CI this is the concurrency-safety guard.
func TestCEPoolConcurrency(t *testing.T) {
	p := NewCEPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				w := uint64(i % 5)
				p.Add(w, poolVec(uint64(g), uint64(i%16)), nil)
				for _, pv := range p.Vectors(w) {
					if len(pv.Inputs) != 2 {
						t.Error("malformed pooled vector")
						return
					}
				}
				_ = p.Stats()
			}
		}(g)
	}
	wg.Wait()
}

// TestCEPoolConcurrentVerify runs many checkers against one shared pool —
// the engine's steady state — and requires every verdict to stay correct.
func TestCEPoolConcurrentVerify(t *testing.T) {
	src := parser.MustParseFunc(`define i8 @src(i8 %x, i8 %y) { %r = add i8 %x, %y ret i8 %r }`)
	bad := parser.MustParseFunc(`define i8 @tgt(i8 %x, i8 %y) { %r = add nsw i8 %x, %y ret i8 %r }`)
	good := parser.MustParseFunc(`define i8 @tgt(i8 %x, i8 %y) { %r = add i8 %y, %x ret i8 %r }`)
	pool := NewCEPool()
	progs := interp.NewCache()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				opts := Options{Samples: 64, Seed: uint64(g*10 + i), Programs: progs, Pool: pool}
				if r := Verify(src, bad, opts); r.Verdict != Incorrect {
					t.Errorf("nsw strengthening must refute, got %v", r.Verdict)
					return
				}
				if r := Verify(src, good, opts); r.Verdict != Correct {
					t.Errorf("commuted add must verify, got %v", r.Verdict)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if ps := pool.Stats(); ps.Deposits == 0 {
		t.Fatal("no counterexamples pooled")
	}
}

// TestRescaleVector pins the width-sweep adaptation: values are masked to
// the new parameter width, poison survives, and shape mismatches are
// rejected.
func TestRescaleVector(t *testing.T) {
	params := parser.MustParseFunc(`define i8 @f(i8 %x, i8 %y) { ret i8 %x }`).Params
	wide := PoolVector{Inputs: []interp.RVal{
		interp.Scalar(ir.I32, 0x1FF),
		interp.PoisonRV(ir.I32),
	}}
	got, ok := RescaleVector(params, wide)
	if !ok {
		t.Fatal("compatible vector rejected")
	}
	if got.Inputs[0].Lanes[0].V != 0xFF {
		t.Fatalf("value not masked: %x", got.Inputs[0].Lanes[0].V)
	}
	if !got.Inputs[1].Lanes[0].Poison {
		t.Fatal("poison lost in rescale")
	}
	if _, ok := RescaleVector(params, PoolVector{Inputs: poolVec(1)}); ok {
		t.Fatal("arity mismatch accepted")
	}
}

// TestCEPoolClockEviction pins the second-chance policy: vectors marked
// referenced (Touch, or a duplicate re-deposit) survive the sweep that
// evicts unreferenced ones, mirroring interp.Cache.
func TestCEPoolClockEviction(t *testing.T) {
	p := NewCEPool()
	for i := uint64(0); i < defaultPoolCap; i++ {
		p.Add(1, poolVec(i), nil)
	}
	// Protect vector 0 via Touch and vector 1 via a duplicate deposit.
	p.Touch(1, poolVec(0), nil)
	if p.Add(1, poolVec(1), nil) {
		t.Fatal("duplicate deposit must not store")
	}
	// Two inserts at cap: the hand sweeps past the two referenced slots
	// (clearing their marks) and evicts the first unreferenced ones.
	p.Add(1, poolVec(100), nil)
	p.Add(1, poolVec(101), nil)
	have := make(map[uint64]bool)
	for _, v := range p.Vectors(1) {
		have[v.Inputs[0].Lanes[0].V] = true
	}
	if !have[0] || !have[1] {
		t.Fatal("referenced vectors were evicted")
	}
	if have[2] || have[3] {
		t.Fatal("unreferenced vectors survived a full sweep")
	}
	if !have[100] || !have[101] {
		t.Fatal("new vectors were not inserted")
	}
	st := p.Stats()
	if st.Vectors != defaultPoolCap || st.Evictions != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCEPoolLoadAndDrain pins the persistence hooks: Load installs without
// marking pending, Add marks pending exactly once, and DrainPending clears.
func TestCEPoolLoadAndDrain(t *testing.T) {
	p := NewCEPool()
	if !p.Load(7, PoolVector{Inputs: poolVec(1, 2)}) {
		t.Fatal("load rejected")
	}
	if p.Load(7, PoolVector{Inputs: poolVec(1, 2)}) {
		t.Fatal("duplicate load accepted")
	}
	p.Add(7, poolVec(3, 4), nil)
	p.Add(8, poolVec(5, 6), nil)
	st := p.Stats()
	if st.Loaded != 1 || st.Deposits != 2 || st.Vectors != 3 {
		t.Fatalf("stats = %+v", st)
	}
	drained := p.DrainPending()
	if len(drained) != 2 {
		t.Fatalf("drained %d vectors, want 2 (loads must not be pending)", len(drained))
	}
	if drained[0].Window != 7 || drained[1].Window != 8 {
		t.Fatalf("drained windows %d, %d", drained[0].Window, drained[1].Window)
	}
	if got := p.DrainPending(); got != nil {
		t.Fatalf("second drain returned %d vectors", len(got))
	}
	var nilPool *CEPool
	if nilPool.Load(1, PoolVector{}) || nilPool.DrainPending() != nil {
		t.Fatal("nil pool hooks must be inert")
	}
	nilPool.Touch(1, nil, nil)
}
