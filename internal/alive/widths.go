package alive

import "repro/internal/ir"

// WidthResult pairs a verification Result with the bit width it ran at.
type WidthResult struct {
	Width int
	Result
}

// VerifyWidths re-checks a width-parameterized transformation across a
// width sweep: inst instantiates the (source, target) pair at each width and
// each instantiation is verified independently. An instantiation error
// (e.g. a constant that does not survive the move to that width) yields an
// Unsupported result carrying the error, mirroring the fixable-error channel
// of single-pair verification. internal/generalize drives its
// over-generalization rejection through this helper, and cmd/lpo-verify
// -widths exposes it directly.
func VerifyWidths(widths []int, opts Options, inst func(w int) (src, tgt *ir.Func, err error)) []WidthResult {
	out := make([]WidthResult, 0, len(widths))
	for _, w := range widths {
		src, tgt, err := inst(w)
		if err != nil {
			out = append(out, WidthResult{Width: w, Result: Result{Verdict: Unsupported, Err: err.Error()}})
			continue
		}
		out = append(out, WidthResult{Width: w, Result: Verify(src, tgt, opts)})
	}
	return out
}
