package alive

import "repro/internal/ir"

// WidthResult pairs a verification Result with the bit width it ran at.
type WidthResult struct {
	Width int
	Result
}

// VerifyWidths re-checks a width-parameterized transformation across a
// width sweep: inst instantiates the (source, target) pair at each width and
// each instantiation is verified independently through a tiered, batched
// Checker. An instantiation error (e.g. a constant that does not survive
// the move to that width) yields an Unsupported result carrying the error,
// mirroring the fixable-error channel of single-pair verification.
//
// Counterexamples are shared across the sweep, CEGIS-style: a width that
// refutes the pair reseeds every later width's tier 0 with the rescaled
// falsifying vector (wrong abstractions usually fail the same way at every
// width, so the sweep rejects them after a handful of executions instead of
// a full sampling pass per width). Widths at which the pair verifies see
// the exact same input sequence as an unseeded run, so surviving sweeps are
// unaffected. internal/generalize drives its over-generalization rejection
// through this helper, and cmd/lpo-verify -widths exposes it directly.
func VerifyWidths(widths []int, opts Options, inst func(w int) (src, tgt *ir.Func, err error)) []WidthResult {
	out := make([]WidthResult, 0, len(widths))
	var carry []PoolVector // falsifying vectors from earlier widths
	for _, w := range widths {
		src, tgt, err := inst(w)
		if err != nil {
			out = append(out, WidthResult{Width: w, Result: Result{Verdict: Unsupported, Err: err.Error()}})
			continue
		}
		c := NewChecker(src, tgt, opts)
		for _, cv := range carry {
			if rv, ok := RescaleVector(src.Params, cv); ok {
				c.Seed([]PoolVector{rv})
			}
		}
		r := c.Verify()
		if r.Verdict == Incorrect && r.CE != nil {
			carry = append(carry, PoolVector{Inputs: r.CE.Inputs, Mem: r.CE.Memory})
		}
		out = append(out, WidthResult{Width: w, Result: r})
	}
	return out
}
