package alive

import (
	"math"
	"math/rand"

	"repro/internal/interp"
	"repro/internal/ir"
)

// inputGen produces the sequence of concrete environments to check:
// exhaustive enumeration when the non-pointer input bit budget fits the
// bound, otherwise structured corner values followed by seeded random
// samples; either way a poison trial per argument is appended.
//
// Vectors are generated lazily from the phase counters and the seeded rng —
// the exhaustive space (up to 2^MaxExhaustiveBits counter values times
// MemFills memories) is never materialized — and the argument buffers are
// reused between next calls: callers that retain inputs (counterexamples)
// must clone them. The emitted sequence is identical, value for value, to
// the historic eager queue (guarded by a fixed-seed equivalence test).
type inputGen struct {
	params     []*ir.Param
	opts       Options
	rng        *rand.Rand
	exhaustive bool

	fills    [][][]byte // initial memories, one entry per pointer param
	tables   [][]uint64 // per-param corner value tables
	specials int        // max table length across params (sampled phases)
	widths   []int      // per-param scalar lane width (hoisted type dispatch)
	masks    []uint64   // per-param lane mask
	isPtr    []bool     // per-param pointer flag

	phase int
	c     uint64 // exhaustive counter
	cmax  uint64
	fi    int // fill index within the current counter value
	k     int // per-phase item counter
	pi    int // poison phase: param being poisoned
	trial int // poison phase: trial within the param

	inputs   []interp.RVal
	memBytes [][]byte
}

// Generation phases, in emission order. Exhaustive runs skip the three
// sampled phases; both run the poison trials last.
const (
	phExhaust = iota
	phCorner
	phMixed
	phRandom
	phPoison
	phDone
)

func newInputGen(f *ir.Func, opts Options) *inputGen {
	g := &inputGen{params: f.Params, opts: opts}
	g.rng = rand.New(rand.NewSource(int64(opts.Seed) ^ 0x5eed))

	totalBits := 0
	numPtrs := 0
	for _, p := range f.Params {
		if ir.IsPtr(p.Ty) {
			numPtrs++
			continue
		}
		totalBits += ir.ScalarBits(ir.Elem(p.Ty)) * ir.Lanes(p.Ty)
	}
	g.exhaustive = totalBits <= opts.MaxExhaustiveBits
	g.fills = g.memoryFills(numPtrs, g.rng)

	g.tables = make([][]uint64, len(f.Params))
	g.widths = make([]int, len(f.Params))
	g.masks = make([]uint64, len(f.Params))
	g.isPtr = make([]bool, len(f.Params))
	for i, p := range f.Params {
		g.tables[i] = specialLanes(p.Ty)
		if n := len(g.tables[i]); n > g.specials {
			g.specials = n
		}
		g.widths[i] = ir.ScalarBits(ir.Elem(p.Ty))
		g.masks[i] = ir.MaskW(g.widths[i])
		g.isPtr[i] = ir.IsPtr(p.Ty)
	}

	g.inputs = make([]interp.RVal, len(f.Params))
	for i, p := range f.Params {
		g.inputs[i] = interp.RVal{Ty: p.Ty, Lanes: make([]interp.Word, ir.Lanes(p.Ty))}
	}

	if g.exhaustive {
		g.phase = phExhaust
		g.cmax = uint64(1) << uint(totalBits)
	} else {
		g.phase = phCorner
	}
	return g
}

// next advances to the following input vector, refreshing g.inputs and
// g.memBytes in place. It reports false when the sequence is exhausted.
func (g *inputGen) next() bool {
	for {
		switch g.phase {
		case phExhaust:
			if g.c >= g.cmax {
				g.phase = phPoison
				continue
			}
			// Rewrite the arguments on every emission, not just when the
			// counter advances: the batched checker rebinds g.inputs to a
			// different slot between calls, so fill-iteration vectors must
			// not rely on the previous slot's contents. The values are a
			// pure function of c, so the emitted sequence is unchanged.
			g.setFromCounter(g.c)
			g.memBytes = g.fills[g.fi]
			g.fi++
			if g.fi >= len(g.fills) {
				g.fi = 0
				g.c++
			}
			return true
		case phCorner:
			// Corner phase: uniform specials plus rotated mixes.
			if g.k >= g.specials {
				g.phase = phMixed
				g.k = 0
				continue
			}
			for i := range g.params {
				g.setSpecial(i, g.k)
			}
			g.memBytes = g.fills[g.k%len(g.fills)]
			g.k++
			return true
		case phMixed:
			// Mixed-corner phase: random picks from the specials table.
			if g.k >= g.opts.Samples/8 {
				g.phase = phRandom
				g.k = 0
				continue
			}
			for i := range g.params {
				g.setSpecial(i, g.rng.Intn(g.specials+1))
			}
			g.memBytes = g.fills[g.rng.Intn(len(g.fills))]
			g.k++
			return true
		case phRandom:
			if g.k >= g.opts.Samples {
				g.phase = phPoison
				continue
			}
			for i := range g.params {
				g.setRandom(i)
			}
			g.memBytes = g.fills[g.rng.Intn(len(g.fills))]
			g.k++
			return true
		case phPoison:
			// Poison trials: each argument poisoned once against two bases.
			// A poison pointer base would only exercise load-of-poison, so
			// pointer params are skipped as poison targets.
			for g.pi < len(g.params) && ir.IsPtr(g.params[g.pi].Ty) {
				g.pi++
			}
			if g.pi >= len(g.params) {
				g.phase = phDone
				continue
			}
			for j := range g.params {
				switch {
				case j == g.pi:
					g.setPoison(j)
				case g.trial == 0:
					g.setSpecial(j, 0)
				default:
					g.setRandom(j)
				}
			}
			g.memBytes = g.fills[g.trial%len(g.fills)]
			g.trial++
			if g.trial == 2 {
				g.trial = 0
				g.pi++
			}
			return true
		default:
			return false
		}
	}
}

// bind redirects the generator to write the next vector directly into args,
// whose shape must match the function's parameters (same arity and lane
// counts). The batched checker rotates the generator across its batch slots
// this way, eliding a staging copy per vector; every phase rewrites every
// argument on every next call, so stale slot contents never leak through.
func (g *inputGen) bind(args []interp.RVal) {
	g.inputs = args
}

// nextBatch fills up to len(slots) consecutive vectors of the generated
// sequence, writing each vector's arguments directly through the per-slot
// views (the batched checker points these at the evaluators' input columns,
// so generation lands straight in the batch arena with no staging Envs) and
// recording each slot's scheduler tier. fill, when non-nil, runs after each
// slot is emitted so the caller can snapshot g.memBytes into that slot's
// per-lane memory. Generation stays vector-major inside the batch — the rng
// draw order is part of the sequence contract (same-seed campaigns replay
// byte-identically) — only the destination is columnwise. Returns the
// number of slots filled; fewer than len(slots) means the sequence ended.
func (g *inputGen) nextBatch(slots [][]interp.RVal, tiers []int8, fill func(slot int)) int {
	n := 0
	for n < len(slots) {
		g.bind(slots[n])
		if !g.next() {
			break
		}
		tiers[n] = int8(g.tier())
		if fill != nil {
			fill(n)
		}
		n++
	}
	return n
}

// tier attributes the vector the latest next() emitted to a scheduler tier:
// random samples are TierRandom, every other phase (exhaustive enumeration,
// corner values, corner mixes, poison trials) is TierSpecial.
func (g *inputGen) tier() int {
	if g.phase == phRandom {
		return TierRandom
	}
	return TierSpecial
}

// setFromCounter maps the bits of c onto the non-pointer arguments.
func (g *inputGen) setFromCounter(c uint64) {
	bit := uint(0)
	for i := range g.params {
		lanes := g.inputs[i].Lanes
		if g.isPtr[i] {
			lanes[0] = interp.Word{} // replaced by the region base
			continue
		}
		w, mask := uint(g.widths[i]), g.masks[i]
		for l := range lanes {
			lanes[l] = interp.Word{V: (c >> bit) & mask}
			bit += w
		}
	}
}

// setSpecial writes the k-th corner argument of param i; lanes are rotated
// so vector corner cases are not all-uniform.
func (g *inputGen) setSpecial(i, k int) {
	table := g.tables[i]
	lanes := g.inputs[i].Lanes
	for l := range lanes {
		lanes[l] = interp.Word{V: table[(k+l)%len(table)]}
	}
}

// setRandom writes a uniformly random argument for param i.
func (g *inputGen) setRandom(i int) {
	mask := g.masks[i]
	lanes := g.inputs[i].Lanes
	for l := range lanes {
		lanes[l] = interp.Word{V: g.rng.Uint64() & mask}
	}
}

// setPoison writes an all-poison argument for param i.
func (g *inputGen) setPoison(i int) {
	lanes := g.inputs[i].Lanes
	for l := range lanes {
		lanes[l] = interp.Word{Poison: true}
	}
}

// memoryFills builds the initial memories tried per input vector: an
// all-zero fill, a ramp, and seeded random fills.
func (g *inputGen) memoryFills(numPtrs int, rng *rand.Rand) [][][]byte {
	if numPtrs == 0 {
		return [][][]byte{nil}
	}
	mk := func(gen func(i int) byte) [][]byte {
		out := make([][]byte, numPtrs)
		for p := 0; p < numPtrs; p++ {
			b := make([]byte, g.opts.MemSize)
			for i := range b {
				b[i] = gen(i + p*7)
			}
			out[p] = b
		}
		return out
	}
	fills := [][][]byte{
		mk(func(int) byte { return 0 }),
		mk(func(i int) byte { return byte(i) }),
	}
	for len(fills) < g.opts.MemFills {
		fills = append(fills, mk(func(int) byte { return byte(rng.Intn(256)) }))
	}
	return fills[:g.opts.MemFills]
}

// specialLanes returns the table of corner lane values for a lane type.
func specialLanes(ty ir.Type) []uint64 {
	elem := ir.Elem(ty)
	switch e := elem.(type) {
	case ir.IntType:
		w := e.W
		mask := ir.MaskW(w)
		vals := []uint64{0, 1, 2, 3, mask, mask >> 1, (mask >> 1) + 1, mask - 1,
			0x5555555555555555 & mask, 0xAAAAAAAAAAAAAAAA & mask}
		if w > 8 {
			vals = append(vals, 127, 128, 255, 256&mask, 0xFF00&mask)
		}
		return dedup(vals)
	case ir.FloatType:
		f := func(v float64) uint64 {
			if e.W == 32 {
				return uint64(math.Float32bits(float32(v)))
			}
			return math.Float64bits(v)
		}
		nan := uint64(math.Float64bits(math.NaN()))
		if e.W == 32 {
			nan = uint64(math.Float32bits(float32(math.NaN())))
		}
		return []uint64{f(0), f(math.Copysign(0, -1)), f(1), f(-1), f(2), f(0.5),
			nan, f(math.Inf(1)), f(math.Inf(-1)), f(255), f(256)}
	case ir.PtrType:
		return []uint64{0}
	}
	return []uint64{0}
}

func dedup(vals []uint64) []uint64 {
	seen := make(map[uint64]bool, len(vals))
	out := vals[:0]
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// specialArg builds the k-th corner argument of the given type; lanes are
// rotated so vector corner cases are not all-uniform. Retained for the
// reference path and the streaming-equivalence test.
func specialArg(ty ir.Type, k int) interp.RVal {
	table := specialLanes(ty)
	lanes := ir.Lanes(ty)
	rv := interp.RVal{Ty: ty, Lanes: make([]interp.Word, lanes)}
	for l := 0; l < lanes; l++ {
		rv.Lanes[l] = interp.Word{V: table[(k+l)%len(table)]}
	}
	return rv
}

// randomArg builds a uniformly random argument of the given type.
func randomArg(ty ir.Type, rng *rand.Rand) interp.RVal {
	lanes := ir.Lanes(ty)
	w := ir.ScalarBits(ir.Elem(ty))
	rv := interp.RVal{Ty: ty, Lanes: make([]interp.Word, lanes)}
	for l := 0; l < lanes; l++ {
		rv.Lanes[l] = interp.Word{V: rng.Uint64() & ir.MaskW(w)}
	}
	return rv
}
