package alive

import (
	"math"
	"math/rand"

	"repro/internal/interp"
	"repro/internal/ir"
)

// inputGen produces the sequence of concrete environments to check:
// exhaustive enumeration when the non-pointer input bit budget fits the
// bound, otherwise structured corner values followed by seeded random
// samples; either way a poison trial per argument is appended.
type inputGen struct {
	params     []*ir.Param
	opts       Options
	exhaustive bool

	queue []vecInput
	pos   int

	inputs   []interp.RVal
	memBytes [][]byte
}

type vecInput struct {
	args []interp.RVal
	mem  [][]byte
}

func newInputGen(f *ir.Func, opts Options) *inputGen {
	g := &inputGen{params: f.Params, opts: opts}
	rng := rand.New(rand.NewSource(int64(opts.Seed) ^ 0x5eed))

	totalBits := 0
	numPtrs := 0
	for _, p := range f.Params {
		if ir.IsPtr(p.Ty) {
			numPtrs++
			continue
		}
		totalBits += ir.ScalarBits(ir.Elem(p.Ty)) * ir.Lanes(p.Ty)
	}
	g.exhaustive = totalBits <= opts.MaxExhaustiveBits

	fills := g.memoryFills(numPtrs, rng)
	if g.exhaustive {
		for c := uint64(0); c < uint64(1)<<uint(totalBits); c++ {
			args := g.argsFromCounter(c)
			for _, m := range fills {
				g.queue = append(g.queue, vecInput{args: args, mem: m})
			}
		}
	} else {
		// Corner phase: uniform specials plus rotated mixes.
		specials := 0
		for _, p := range f.Params {
			if n := len(specialLanes(p.Ty)); n > specials {
				specials = n
			}
		}
		for k := 0; k < specials; k++ {
			args := make([]interp.RVal, len(f.Params))
			for i, p := range f.Params {
				args[i] = specialArg(p.Ty, k)
			}
			g.queue = append(g.queue, vecInput{args: args, mem: fills[k%len(fills)]})
		}
		// Mixed-corner phase: random picks from the specials table.
		for k := 0; k < opts.Samples/8; k++ {
			args := make([]interp.RVal, len(f.Params))
			for i, p := range f.Params {
				args[i] = specialArg(p.Ty, rng.Intn(specials+1))
			}
			g.queue = append(g.queue, vecInput{args: args, mem: fills[rng.Intn(len(fills))]})
		}
		// Random phase.
		for k := 0; k < opts.Samples; k++ {
			args := make([]interp.RVal, len(f.Params))
			for i, p := range f.Params {
				args[i] = randomArg(p.Ty, rng)
			}
			g.queue = append(g.queue, vecInput{args: args, mem: fills[rng.Intn(len(fills))]})
		}
	}
	// Poison trials: each argument poisoned once against two bases.
	for i, p := range f.Params {
		if ir.IsPtr(p.Ty) {
			continue // a poison pointer base would only exercise load-of-poison
		}
		for trial := 0; trial < 2; trial++ {
			args := make([]interp.RVal, len(f.Params))
			for j, q := range f.Params {
				if j == i {
					args[j] = interp.PoisonRV(q.Ty)
				} else if trial == 0 {
					args[j] = specialArg(q.Ty, 0)
				} else {
					args[j] = randomArg(q.Ty, rng)
				}
			}
			g.queue = append(g.queue, vecInput{args: args, mem: fills[trial%len(fills)]})
		}
	}
	return g
}

func (g *inputGen) next() bool {
	if g.pos >= len(g.queue) {
		return false
	}
	v := g.queue[g.pos]
	g.pos++
	g.inputs = v.args
	g.memBytes = v.mem
	return true
}

// argsFromCounter maps the bits of c onto the non-pointer arguments.
func (g *inputGen) argsFromCounter(c uint64) []interp.RVal {
	args := make([]interp.RVal, len(g.params))
	bit := uint(0)
	for i, p := range g.params {
		if ir.IsPtr(p.Ty) {
			args[i] = interp.Scalar(ir.Ptr, 0) // replaced by the region base
			continue
		}
		w := ir.ScalarBits(ir.Elem(p.Ty))
		lanes := ir.Lanes(p.Ty)
		rv := interp.RVal{Ty: p.Ty, Lanes: make([]interp.Word, lanes)}
		for l := 0; l < lanes; l++ {
			v := (c >> bit) & ir.MaskW(w)
			bit += uint(w)
			rv.Lanes[l] = interp.Word{V: v}
		}
		args[i] = rv
	}
	return args
}

// memoryFills builds the initial memories tried per input vector: an
// all-zero fill, a ramp, and seeded random fills.
func (g *inputGen) memoryFills(numPtrs int, rng *rand.Rand) [][][]byte {
	if numPtrs == 0 {
		return [][][]byte{nil}
	}
	mk := func(gen func(i int) byte) [][]byte {
		out := make([][]byte, numPtrs)
		for p := 0; p < numPtrs; p++ {
			b := make([]byte, g.opts.MemSize)
			for i := range b {
				b[i] = gen(i + p*7)
			}
			out[p] = b
		}
		return out
	}
	fills := [][][]byte{
		mk(func(int) byte { return 0 }),
		mk(func(i int) byte { return byte(i) }),
	}
	for len(fills) < g.opts.MemFills {
		fills = append(fills, mk(func(int) byte { return byte(rng.Intn(256)) }))
	}
	return fills[:g.opts.MemFills]
}

// specialLanes returns the table of corner lane values for a lane type.
func specialLanes(ty ir.Type) []uint64 {
	elem := ir.Elem(ty)
	switch e := elem.(type) {
	case ir.IntType:
		w := e.W
		mask := ir.MaskW(w)
		vals := []uint64{0, 1, 2, 3, mask, mask >> 1, (mask >> 1) + 1, mask - 1,
			0x5555555555555555 & mask, 0xAAAAAAAAAAAAAAAA & mask}
		if w > 8 {
			vals = append(vals, 127, 128, 255, 256&mask, 0xFF00&mask)
		}
		return dedup(vals)
	case ir.FloatType:
		f := func(v float64) uint64 {
			if e.W == 32 {
				return uint64(math.Float32bits(float32(v)))
			}
			return math.Float64bits(v)
		}
		nan := uint64(math.Float64bits(math.NaN()))
		if e.W == 32 {
			nan = uint64(math.Float32bits(float32(math.NaN())))
		}
		return []uint64{f(0), f(math.Copysign(0, -1)), f(1), f(-1), f(2), f(0.5),
			nan, f(math.Inf(1)), f(math.Inf(-1)), f(255), f(256)}
	case ir.PtrType:
		return []uint64{0}
	}
	return []uint64{0}
}

func dedup(vals []uint64) []uint64 {
	seen := make(map[uint64]bool, len(vals))
	out := vals[:0]
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// specialArg builds the k-th corner argument of the given type; lanes are
// rotated so vector corner cases are not all-uniform.
func specialArg(ty ir.Type, k int) interp.RVal {
	table := specialLanes(ty)
	lanes := ir.Lanes(ty)
	rv := interp.RVal{Ty: ty, Lanes: make([]interp.Word, lanes)}
	for l := 0; l < lanes; l++ {
		rv.Lanes[l] = interp.Word{V: table[(k+l)%len(table)]}
	}
	return rv
}

// randomArg builds a uniformly random argument of the given type.
func randomArg(ty ir.Type, rng *rand.Rand) interp.RVal {
	lanes := ir.Lanes(ty)
	w := ir.ScalarBits(ir.Elem(ty))
	rv := interp.RVal{Ty: ty, Lanes: make([]interp.Word, lanes)}
	for l := 0; l < lanes; l++ {
		rv.Lanes[l] = interp.Word{V: rng.Uint64() & ir.MaskW(w)}
	}
	return rv
}
