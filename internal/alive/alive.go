// Package alive is a bounded translation validator in the spirit of Alive2:
// it checks that a target function refines a source function, and produces a
// counterexample when it does not.
//
// Where Alive2 encodes the refinement obligation symbolically for an SMT
// solver, this implementation checks it concretely: exhaustively when the
// input space is small enough, and over structured corner values plus seeded
// random samples otherwise. Like Alive2 it is *bounded* validation — "correct"
// means "no counterexample found within the bound" — and the refinement
// relation is the same:
//
//   - if the source execution is UB, the target may do anything;
//   - per result lane, a poison source lane permits any target lane, and a
//     defined source lane requires an equal, non-poison target lane;
//   - bytes written by the source constrain the target's final memory the
//     same way.
//
// Verification is the discovery loop's inner loop, so it is built around a
// compile-once Checker: both functions are compiled to interp Programs
// (optionally via a shared Options.Programs cache), input vectors stream
// lazily through two reusable Evaluators, and a CounterExample is
// materialized only on an actual violation — a steady-state Verify performs
// O(1) amortized allocations per input vector. ReferenceVerify keeps the
// historic Exec-per-input path as the semantic baseline.
package alive

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/interp"
	"repro/internal/ir"
)

// Verdict classifies a verification run.
type Verdict int

// Verdicts.
const (
	// Correct means no refinement violation was found within the bound.
	Correct Verdict = iota
	// Incorrect means a counterexample was found.
	Incorrect
	// Unsupported means the pair could not be checked (e.g. signature
	// mismatch); Err carries an Alive2-style fixable error message.
	Unsupported
)

// Options bound the verification effort.
type Options struct {
	// MaxExhaustiveBits is the largest total input bit budget that is
	// enumerated exhaustively (default 16).
	MaxExhaustiveBits int
	// Samples is the number of random input vectors when not exhaustive
	// (default 4096).
	Samples int
	// Seed makes the random sampling reproducible.
	Seed uint64
	// MemSize is the byte size of the region behind each pointer argument
	// (default 64).
	MemSize int
	// MemFills is how many distinct initial memories are tried per input
	// vector when pointers are present (default 4).
	MemFills int
	// Programs optionally caches compiled programs across Verify calls,
	// keyed by structural hash. Callers that verify the same functions
	// repeatedly (the engine verify stage, generalize width sweeps, CEGIS
	// loops) share one cache so each distinct function compiles once. Nil
	// compiles per call. The cache never changes a verdict: programs are a
	// pure function of the IR.
	Programs *interp.Cache
	// Pool optionally shares counterexamples across Verify calls: inputs
	// that falsified any previous candidate for the same source window are
	// replayed first (verification tier 0), killing repeat offenders in a
	// handful of executions. Nil disables sharing. Replayed vectors are
	// re-executed, so an Incorrect verdict always carries a genuine,
	// freshly-checked counterexample.
	Pool *CEPool
}

func (o Options) withDefaults() Options {
	if o.MaxExhaustiveBits == 0 {
		o.MaxExhaustiveBits = 16
	}
	if o.Samples == 0 {
		o.Samples = 4096
	}
	if o.MemSize == 0 {
		o.MemSize = 64
	}
	if o.MemFills == 0 {
		o.MemFills = 4
	}
	return o
}

// CounterExample captures one refinement violation.
type CounterExample struct {
	Params  []*ir.Param
	Inputs  []interp.RVal
	Memory  [][]byte // initial contents of each pointer region, in param order
	SrcRet  interp.RVal
	TgtRet  interp.RVal
	SrcUB   bool
	TgtUB   bool
	TgtWhy  string
	MemDiff string // description of a memory refinement violation, if any
}

// Format renders the counterexample in the style Alive2 prints and LPO feeds
// back to the LLM.
func (ce *CounterExample) Format() string {
	var sb strings.Builder
	sb.WriteString("Transformation doesn't verify!\n")
	switch {
	case ce.TgtUB:
		sb.WriteString("ERROR: Source is guaranteed to be defined, target is undefined\n")
	case ce.MemDiff != "":
		sb.WriteString("ERROR: Mismatch in memory\n")
	default:
		sb.WriteString("ERROR: Value mismatch\n")
	}
	sb.WriteString("Example:\n")
	for i, p := range ce.Params {
		fmt.Fprintf(&sb, "%s %%%s = %s\n", p.Ty, p.Nm, ce.Inputs[i].Format())
	}
	memIdx := 0
	for _, p := range ce.Params {
		if ir.IsPtr(p.Ty) && memIdx < len(ce.Memory) {
			fmt.Fprintf(&sb, "memory at %%%s = % x\n", p.Nm, ce.Memory[memIdx])
			memIdx++
		}
	}
	if ce.SrcUB {
		sb.WriteString("Source value: UB\n")
	} else {
		fmt.Fprintf(&sb, "Source value: %s\n", ce.SrcRet.Format())
	}
	switch {
	case ce.TgtUB:
		fmt.Fprintf(&sb, "Target value: UB (%s)\n", ce.TgtWhy)
	default:
		fmt.Fprintf(&sb, "Target value: %s\n", ce.TgtRet.Format())
	}
	if ce.MemDiff != "" {
		sb.WriteString(ce.MemDiff + "\n")
	}
	return sb.String()
}

// Verification tiers, cheapest kill first. TierNone marks a Result without
// a violation.
const (
	TierNone    = 0 // no violation found
	TierPool    = 1 // replayed counterexample from the shared CEPool
	TierSpecial = 2 // exhaustive / corner / mixed / poison phases
	TierRandom  = 3 // random sampling phase
)

// TierStats breaks a Verify run down by scheduler tier: how many input
// vectors each tier contributed and which tier found the violation (if
// any). Checked on the enclosing Result is the sum of the per-tier counts.
type TierStats struct {
	PoolChecked    int // tier 0: pooled/seeded counterexample replays
	SpecialChecked int // tier 1: exhaustive enumeration and special values
	RandomChecked  int // tier 2: random samples
	KillTier       int // Tier* constant of the violating vector, TierNone if none

	// Batched and Fallback split Checked by execution path: vectors run on
	// the lane-batched fast path versus per-vector execution (tier-0
	// replays and non-batchable programs). Batched+Fallback == Checked.
	Batched  int
	Fallback int
}

func (t *TierStats) count(tier int) {
	switch tier {
	case TierPool:
		t.PoolChecked++
	case TierSpecial:
		t.SpecialChecked++
	case TierRandom:
		t.RandomChecked++
	}
}

// Result is the outcome of Verify.
type Result struct {
	Verdict    Verdict
	CE         *CounterExample
	Err        string // set for Unsupported
	Checked    int    // input vectors actually executed
	Exhaustive bool   // true if the whole input space was covered
	Tiers      TierStats
}

// Checker is a compiled (source, target) refinement obligation: both
// functions are lowered once into interp Programs and every Verify call
// streams input vectors through two reusable evaluators. Build one with
// NewChecker and reuse it when the same pair is re-verified (CEGIS rounds);
// the one-shot Verify wrapper covers everything else. A Checker is not safe
// for concurrent use (the evaluators share scratch); compile one per
// goroutine — the underlying Programs may be shared via Options.Programs.
type Checker struct {
	src, tgt *ir.Func
	opts     Options
	sigErr   string

	se, te           *interp.Evaluator
	srcMem, tgtMem   *interp.Memory
	srcRegs, tgtRegs []*interp.Region // pointer-param regions, in param order
	ptrParams        []int            // param indices of pointer type
	args             []interp.RVal    // per-vector argument buffer
	baseArgs         []interp.RVal    // prebuilt region-base pointers per param

	winKey  uint64 // pool key of the source window (lazy)
	haveKey bool
	seeds   []PoolVector // extra tier-0 vectors (width-sweep reseeding)

	// Lane-batched streaming state, built lazily when both programs are
	// batchable (everything except dynamic-vector-constant programs). The
	// generator writes each vector directly into the source evaluator's
	// input columns (bArgs views them per batch slot), the columns are
	// bulk-copied into the target evaluator, and both sides run with
	// RunBatchFilled — no per-vector staging or scatter at all. Pairs with
	// pointer parameters additionally carry per-lane slab memories: each
	// batch slot's regions are reset to that vector's initial fill before
	// the runs and diffed lane against lane afterwards.
	bArgs            [][]interp.RVal // per batch slot: views into srcCols
	srcCols, tgtCols [][]interp.Word // per param: the evaluators' input columns
	bTiers           []int8
	srcRes           []interp.Result
	tgtRes           []interp.Result
	srcBM, tgtBM     *interp.BatchMems // per-lane memories (pointer params only)
	bFills           [][][]byte        // per slot: initial region fill, per ptr param
	ptrSave          [][]interp.Word   // per ptr param: raw generated words, per slot
}

// NewChecker compiles src and tgt (through opts.Programs when set) and
// prepares the reusable execution state.
func NewChecker(src, tgt *ir.Func, opts Options) *Checker {
	opts = opts.withDefaults()
	c := &Checker{src: src, tgt: tgt, opts: opts}
	if err := signatureError(src, tgt); err != "" {
		c.sigErr = err
		return c
	}
	c.se = interp.NewEvaluator(opts.Programs.Program(src))
	c.te = interp.NewEvaluator(opts.Programs.Program(tgt))
	c.args = make([]interp.RVal, len(src.Params))
	c.baseArgs = make([]interp.RVal, len(src.Params))
	for i, p := range src.Params {
		if !ir.IsPtr(p.Ty) {
			continue
		}
		c.ptrParams = append(c.ptrParams, i)
		c.baseArgs[i] = interp.Scalar(ir.Ptr, regionBase(i))
	}
	if len(c.ptrParams) > 0 {
		c.srcMem, c.tgtMem = interp.NewMemory(), interp.NewMemory()
		for _, i := range c.ptrParams {
			p := src.Params[i]
			c.srcRegs = append(c.srcRegs, c.srcMem.AddRegion(p.Nm, regionBase(i), opts.MemSize))
			c.tgtRegs = append(c.tgtRegs, c.tgtMem.AddRegion(p.Nm, regionBase(i), opts.MemSize))
		}
	}
	return c
}

// regionBase is the fixed base address of the region behind pointer
// parameter i; distinct parameters never alias.
func regionBase(i int) uint64 { return uint64(0x10000 + i*0x1000) }

// Seed adds extra tier-0 vectors that subsequent Verify calls replay before
// the generated sequence, alongside any Options.Pool entries. VerifyWidths
// uses this to reseed each width of a sweep with the (rescaled)
// counterexamples earlier widths produced.
func (c *Checker) Seed(vecs []PoolVector) {
	c.seeds = append(c.seeds, vecs...)
}

// windowKey returns (and caches) the pool key of the source window.
func (c *Checker) windowKey() uint64 {
	if !c.haveKey {
		c.winKey = WindowKey(c.src)
		c.haveKey = true
	}
	return c.winKey
}

// Verify runs the tiered scheduler: tier 0 replays pooled/seeded
// counterexamples for this source window, then the generated input sequence
// streams through — lane-batched when both programs take the batch fast
// path — with the exhaustive/special phases attributed to tier 1 and the
// random phases to tier 2. The generated sequence, the first violating
// vector and the resulting counterexample are identical to the historic
// per-vector path (and to ReferenceVerify); only tier 0 can find a
// violation earlier, and only when a previous candidate for the same window
// already failed on that input. Any violation deposits its vector into
// Options.Pool. Verify may be called repeatedly (e.g. with the checker
// reused across CEGIS rounds).
func (c *Checker) Verify() Result {
	if c.sigErr != "" {
		return Result{Verdict: Unsupported, Err: c.sigErr}
	}
	res := Result{}
	// Tier 0: replay counterexamples that killed earlier candidates for
	// this window, plus explicitly seeded vectors.
	if c.opts.Pool != nil || len(c.seeds) > 0 {
		key := c.windowKey()
		pooled := c.opts.Pool.Vectors(key)
		for vi, pv := range append(pooled, c.seeds...) {
			if !c.compatible(pv) {
				continue
			}
			res.Checked++
			res.Tiers.PoolChecked++
			res.Tiers.Fallback++
			if ce := c.checkVector(pv.Inputs, pv.Mem); ce != nil {
				res.Verdict = Incorrect
				res.CE = ce
				res.Tiers.KillTier = TierPool
				// Seed-sourced kills (width-sweep reseeds) are new to this
				// window and worth pooling; a pool-sourced kill is already
				// stored — mark it referenced instead so the per-window
				// clock keeps vectors that still earn their slot.
				if vi >= len(pooled) {
					c.opts.Pool.Add(key, ce.Inputs, ce.Memory)
				} else {
					c.opts.Pool.Touch(key, pv.Inputs, pv.Mem)
				}
				return res
			}
		}
	}
	gen := newInputGen(c.src, c.opts)
	res.Exhaustive = gen.exhaustive
	if c.se.Program().Batchable() && c.te.Program().Batchable() {
		return c.verifyBatched(gen, res)
	}
	for gen.next() {
		res.Checked++
		tier := gen.tier()
		res.Tiers.count(tier)
		res.Tiers.Fallback++
		if ce := c.checkVector(gen.inputs, gen.memBytes); ce != nil {
			res.Verdict = Incorrect
			res.CE = ce
			res.Tiers.KillTier = tier
			c.deposit(ce)
			return res
		}
	}
	res.Verdict = Correct
	return res
}

// compatible reports whether a pooled/seeded vector fits this checker's
// signature (vectors stored under a window key always do; seeded vectors
// from other widths are pre-rescaled but still validated here).
func (c *Checker) compatible(pv PoolVector) bool {
	if len(pv.Inputs) != len(c.src.Params) || len(pv.Mem) != len(c.ptrParams) {
		return false
	}
	for i, p := range c.src.Params {
		if len(pv.Inputs[i].Lanes) != ir.Lanes(p.Ty) {
			return false
		}
	}
	return true
}

// deposit shares a fresh counterexample's input vector with later
// verifications of the same window.
func (c *Checker) deposit(ce *CounterExample) {
	if c.opts.Pool != nil {
		c.opts.Pool.Add(c.windowKey(), ce.Inputs, ce.Memory)
	}
}

// verifyBatched streams the generator through both compiled programs in
// lane batches of interp.BatchWidth. Violations are scanned in generation
// order within each batch, so the first violating vector — and therefore
// Checked and the counterexample — match the per-vector path bit for bit.
// Pointer-parameter pairs run against per-lane slab memories: the fill
// hook snapshots each vector's initial memory into its lane (and saves the
// raw generated pointer words for counterexample fidelity) before the
// columns' pointer slots are pinned to the fixed region bases.
func (c *Checker) verifyBatched(gen *inputGen, res Result) Result {
	c.initBatch()
	retVoid := ir.IsVoid(c.src.Ret)
	fpBits := retFPBits(c.src.Ret)
	var fill func(int)
	var srcMems, tgtMems []*interp.Memory
	if len(c.ptrParams) > 0 {
		srcMems, tgtMems = c.srcBM.Mems, c.tgtBM.Mems
		fill = func(b int) {
			for j, pi := range c.ptrParams {
				c.ptrSave[j][b] = c.srcCols[pi][b]
				c.srcCols[pi][b] = interp.Word{V: regionBase(pi)}
				copy(c.bFills[b][j], gen.memBytes[j])
				c.srcBM.ResetLane(j, b, gen.memBytes[j])
				c.tgtBM.ResetLane(j, b, gen.memBytes[j])
			}
		}
	}
	for {
		n := gen.nextBatch(c.bArgs, c.bTiers, fill)
		if n == 0 {
			break
		}
		for k := range c.srcCols {
			lanesPerVec := len(c.srcCols[k]) / interp.BatchWidth
			copy(c.tgtCols[k][:n*lanesPerVec], c.srcCols[k][:n*lanesPerVec])
		}
		// The gate above checked Batchable on both programs, so neither call
		// can fail; a non-nil error here is a bug in the gate.
		if err := c.se.RunBatchFilled(n, c.srcRes[:n], srcMems); err != nil {
			panic(err)
		}
		if err := c.te.RunBatchFilled(n, c.tgtRes[:n], tgtMems); err != nil {
			panic(err)
		}
		for i := 0; i < n; i++ {
			res.Checked++
			res.Tiers.count(int(c.bTiers[i]))
			res.Tiers.Batched++
			rs, rt := &c.srcRes[i], &c.tgtRes[i]
			if !rs.Completed || rs.UB {
				continue // out of budget or source UB: target unconstrained
			}
			if !rt.Completed {
				continue
			}
			diff := ""
			if !rt.UB && (retVoid || refinesLanes(rs.Ret.Lanes, rt.Ret.Lanes, fpBits)) {
				if len(c.ptrParams) > 0 {
					diff = memDiff(c.srcBM.Mems[i], c.tgtBM.Mems[i])
				}
				if diff == "" {
					continue
				}
			}
			inputs := cloneRVals(c.bArgs[i])
			for j, pi := range c.ptrParams {
				inputs[pi].Lanes[0] = c.ptrSave[j][i]
			}
			var memCopy [][]byte
			if c.bFills != nil {
				memCopy = cloneByteSlices(c.bFills[i])
			}
			ce := &CounterExample{Params: c.src.Params,
				Inputs: inputs, Memory: memCopy,
				SrcRet: rs.Ret.Clone(), TgtRet: rt.Ret.Clone(),
				SrcUB: rs.UB, TgtUB: rt.UB, TgtWhy: rt.UBReason, MemDiff: diff}
			res.Verdict = Incorrect
			res.CE = ce
			res.Tiers.KillTier = int(c.bTiers[i])
			c.deposit(ce)
			return res
		}
	}
	res.Verdict = Correct
	return res
}

// initBatch wires the generator-facing argument views straight into the
// source evaluator's input columns (one RVal view per batch slot and
// parameter), so filling a batch writes the arena directly and the target
// side needs only one bulk column copy per parameter. Pairs with pointer
// parameters also build the per-lane slab memories, the per-slot fill
// snapshots behind counterexamples, and the raw-pointer-word save area.
func (c *Checker) initBatch() {
	if c.bArgs != nil {
		return
	}
	np := len(c.src.Params)
	c.bTiers = make([]int8, interp.BatchWidth)
	c.srcRes = make([]interp.Result, interp.BatchWidth)
	c.tgtRes = make([]interp.Result, interp.BatchWidth)
	c.srcCols = make([][]interp.Word, np)
	c.tgtCols = make([][]interp.Word, np)
	for i := range c.src.Params {
		// Verify gated on Batchable for both programs, so neither call can
		// fail here.
		col, err := c.se.ArgColumn(i)
		if err != nil {
			panic(err)
		}
		c.srcCols[i] = col
		if col, err = c.te.ArgColumn(i); err != nil {
			panic(err)
		}
		c.tgtCols[i] = col
	}
	c.bArgs = make([][]interp.RVal, interp.BatchWidth)
	vals := make([]interp.RVal, interp.BatchWidth*np)
	for b := 0; b < interp.BatchWidth; b++ {
		args := vals[b*np : (b+1)*np : (b+1)*np]
		for i, p := range c.src.Params {
			n := ir.Lanes(p.Ty)
			args[i] = interp.RVal{Ty: p.Ty, Lanes: c.srcCols[i][b*n : (b+1)*n : (b+1)*n]}
		}
		c.bArgs[b] = args
	}
	if len(c.ptrParams) == 0 {
		return
	}
	c.srcBM = interp.NewBatchMems(interp.BatchWidth)
	c.tgtBM = interp.NewBatchMems(interp.BatchWidth)
	for _, i := range c.ptrParams {
		p := c.src.Params[i]
		c.srcBM.AddRegion(p.Nm, regionBase(i), c.opts.MemSize)
		c.tgtBM.AddRegion(p.Nm, regionBase(i), c.opts.MemSize)
	}
	c.ptrSave = make([][]interp.Word, len(c.ptrParams))
	for j := range c.ptrSave {
		c.ptrSave[j] = make([]interp.Word, interp.BatchWidth)
	}
	c.bFills = make([][][]byte, interp.BatchWidth)
	fillBuf := make([]byte, interp.BatchWidth*len(c.ptrParams)*c.opts.MemSize)
	for b := range c.bFills {
		fl := make([][]byte, len(c.ptrParams))
		for j := range fl {
			off := (b*len(c.ptrParams) + j) * c.opts.MemSize
			fl[j] = fillBuf[off : off+c.opts.MemSize : off+c.opts.MemSize]
		}
		c.bFills[b] = fl
	}
}

// checkVector runs both compiled functions on one concrete input vector and
// checks the refinement obligation, materializing a counterexample only on
// violation. inputs and memBytes are borrowed from the generator and cloned
// if retained.
func (c *Checker) checkVector(inputs []interp.RVal, memBytes [][]byte) *CounterExample {
	for _, i := range c.ptrParams {
		if inputs[i].AnyPoison() {
			// A poison pointer base changes the region layout; defer to the
			// reference path for exactness (the generator never emits this).
			return checkOne(c.src, c.tgt, c.src.Params, inputs, memBytes, c.opts)
		}
	}
	copy(c.args, inputs)
	for _, i := range c.ptrParams {
		c.args[i] = c.baseArgs[i]
	}
	resetRegions(c.srcRegs, memBytes)
	rs := c.se.Run(interp.Env{Args: c.args, Mem: c.srcMem})
	if !rs.Completed {
		return nil // out of budget: inconclusive, skip this input
	}
	if rs.UB {
		return nil // source UB: target unconstrained
	}
	resetRegions(c.tgtRegs, memBytes)
	rt := c.te.Run(interp.Env{Args: c.args, Mem: c.tgtMem})
	if !rt.Completed {
		return nil
	}
	violation := func() *CounterExample {
		return &CounterExample{Params: c.src.Params,
			Inputs: cloneRVals(inputs), Memory: cloneByteSlices(memBytes),
			SrcRet: rs.Ret.Clone(), TgtRet: rt.Ret.Clone(),
			SrcUB: rs.UB, TgtUB: rt.UB, TgtWhy: rt.UBReason}
	}
	if rt.UB {
		return violation()
	}
	if !retRefines(c.src.Ret, rs.Ret, rt.Ret) {
		return violation()
	}
	if c.srcMem != nil {
		if diff := memDiff(c.srcMem, c.tgtMem); diff != "" {
			ce := violation()
			ce.MemDiff = diff
			return ce
		}
	}
	return nil
}

// resetRegions restores the prebuilt regions to the given initial contents
// and clears their poison shadows.
func resetRegions(regs []*interp.Region, memBytes [][]byte) {
	for j, r := range regs {
		copy(r.Data, memBytes[j])
		for i := range r.Poison {
			r.Poison[i] = false
		}
	}
}

func cloneRVals(vals []interp.RVal) []interp.RVal {
	out := make([]interp.RVal, len(vals))
	for i, v := range vals {
		out[i] = v.Clone()
	}
	return out
}

func cloneByteSlices(bs [][]byte) [][]byte {
	if bs == nil {
		return nil
	}
	out := make([][]byte, len(bs))
	for i, b := range bs {
		out[i] = append([]byte(nil), b...)
	}
	return out
}

// retRefines checks the return value refinement obligation. For floating
// point lanes, any NaN refines any NaN: LLVM's FP arithmetic produces a
// nondeterministic quiet NaN, which Alive2 models as a free choice on both
// sides.
func retRefines(retTy ir.Type, srcRet, tgtRet interp.RVal) bool {
	if ir.IsVoid(retTy) {
		return true
	}
	return refinesLanes(srcRet.Lanes, tgtRet.Lanes, retFPBits(retTy))
}

// retFPBits returns the lane width for NaN-refinement, 0 for non-FP types.
func retFPBits(retTy ir.Type) int {
	if ir.IsFloat(retTy) {
		return ir.ScalarBits(ir.Elem(retTy))
	}
	return 0
}

// refinesLanes is the lane-wise refinement core with the type dispatch
// hoisted out (the batched checker calls it once per vector).
func refinesLanes(src, tgt []interp.Word, fpBits int) bool {
	for i := range src {
		sl := src[i]
		if sl.Poison {
			continue
		}
		tl := tgt[i]
		if tl.Poison {
			return false
		}
		if tl.V == sl.V {
			continue
		}
		if fpBits > 0 && isNaNBits(fpBits, sl.V) && isNaNBits(fpBits, tl.V) {
			continue
		}
		return false
	}
	return true
}

// memDiff checks the memory refinement obligation: bytes the source leaves
// defined must match in the target's final memory. It returns a description
// of the first violation, or "".
func memDiff(srcMem, tgtMem *interp.Memory) string {
	for ri := range srcMem.Regions {
		sr, tr := srcMem.Regions[ri], tgtMem.Regions[ri]
		for bi := range sr.Data {
			if sr.Poison[bi] {
				continue
			}
			if tr.Poison[bi] || tr.Data[bi] != sr.Data[bi] {
				return fmt.Sprintf(
					"Mismatch in %s at byte %d: source has 0x%02x, target has 0x%02x (poison=%v)",
					sr.Name, bi, sr.Data[bi], tr.Data[bi], tr.Poison[bi])
			}
		}
	}
	return ""
}

// Verify checks whether tgt refines src within the given bounds, compiling
// both sides once and streaming input vectors through the compiled
// evaluators. Callers that re-verify the same pair should build a Checker
// (or share an Options.Programs cache) instead of paying NewChecker per call.
func Verify(src, tgt *ir.Func, opts Options) Result {
	return NewChecker(src, tgt, opts).Verify()
}

// ReferenceVerify is the historic verification path: it re-walks both
// functions with the reference interpreter (interp.Exec) on every input
// vector. It checks the exact same sequence and obligation as Verify — the
// two must agree bit for bit (guarded by differential tests) — and is kept
// as the semantic baseline and the perf trajectory's "before" point.
func ReferenceVerify(src, tgt *ir.Func, opts Options) Result {
	opts = opts.withDefaults()
	if err := signatureError(src, tgt); err != "" {
		return Result{Verdict: Unsupported, Err: err}
	}
	gen := newInputGen(src, opts)
	res := Result{Exhaustive: gen.exhaustive}
	for gen.next() {
		res.Checked++
		tier := gen.tier()
		res.Tiers.count(tier)
		res.Tiers.Fallback++
		if ce := checkOne(src, tgt, gen.params, gen.inputs, gen.memBytes, opts); ce != nil {
			res.Verdict = Incorrect
			res.CE = ce
			res.Tiers.KillTier = tier
			return res
		}
	}
	res.Verdict = Correct
	return res
}

// isNaNBits reports whether the given IEEE bit pattern at width w is a NaN.
func isNaNBits(w int, bits uint64) bool {
	if w == 32 {
		f := math.Float32frombits(uint32(bits))
		return f != f
	}
	f := math.Float64frombits(bits)
	return math.IsNaN(f)
}

// signatureError mirrors Alive2's "could not translate" fixable errors.
func signatureError(src, tgt *ir.Func) string {
	if len(src.Params) != len(tgt.Params) {
		return fmt.Sprintf("ERROR: signature mismatch: source has %d arguments, target has %d",
			len(src.Params), len(tgt.Params))
	}
	for i := range src.Params {
		if !ir.Equal(src.Params[i].Ty, tgt.Params[i].Ty) {
			return fmt.Sprintf("ERROR: signature mismatch: argument %d is %s in source but %s in target",
				i, src.Params[i].Ty, tgt.Params[i].Ty)
		}
	}
	if !ir.Equal(src.Ret, tgt.Ret) {
		return fmt.Sprintf("ERROR: signature mismatch: return type is %s in source but %s in target",
			src.Ret, tgt.Ret)
	}
	return ""
}

// checkOne runs both functions through the reference interpreter on one
// concrete environment and checks the refinement obligation. It returns a
// counterexample or nil; the counterexample is only materialized on an
// actual violation (inputs are cloned because the generator reuses its
// buffers).
func checkOne(src, tgt *ir.Func, params []*ir.Param, inputs []interp.RVal,
	memBytes [][]byte, opts Options) *CounterExample {
	buildEnv := func() (interp.Env, *interp.Memory) {
		mem := interp.NewMemory()
		args := make([]interp.RVal, len(inputs))
		copy(args, inputs)
		mi := 0
		for i, p := range params {
			if ir.IsPtr(p.Ty) && !args[i].AnyPoison() {
				r := mem.AddRegion(p.Nm, regionBase(i), opts.MemSize)
				copy(r.Data, memBytes[mi])
				mi++
				args[i] = interp.Scalar(ir.Ptr, regionBase(i))
			}
		}
		return interp.Env{Args: args, Mem: mem}, mem
	}
	srcEnv, srcMem := buildEnv()
	tgtEnv, tgtMem := buildEnv()
	rs := interp.Exec(src, srcEnv)
	if !rs.Completed {
		return nil // out of budget: inconclusive, skip this input
	}
	if rs.UB {
		return nil // source UB: target unconstrained
	}
	rt := interp.Exec(tgt, tgtEnv)
	if !rt.Completed {
		return nil
	}
	violation := func() *CounterExample {
		return &CounterExample{Params: params,
			Inputs: cloneRVals(inputs), Memory: cloneByteSlices(memBytes),
			SrcRet: rs.Ret, TgtRet: rt.Ret,
			SrcUB: rs.UB, TgtUB: rt.UB, TgtWhy: rt.UBReason}
	}
	if rt.UB {
		return violation()
	}
	if !retRefines(src.Ret, rs.Ret, rt.Ret) {
		return violation()
	}
	if diff := memDiff(srcMem, tgtMem); diff != "" {
		ce := violation()
		ce.MemDiff = diff
		return ce
	}
	return nil
}
