// Package alive is a bounded translation validator in the spirit of Alive2:
// it checks that a target function refines a source function, and produces a
// counterexample when it does not.
//
// Where Alive2 encodes the refinement obligation symbolically for an SMT
// solver, this implementation checks it concretely: exhaustively when the
// input space is small enough, and over structured corner values plus seeded
// random samples otherwise. Like Alive2 it is *bounded* validation — "correct"
// means "no counterexample found within the bound" — and the refinement
// relation is the same:
//
//   - if the source execution is UB, the target may do anything;
//   - per result lane, a poison source lane permits any target lane, and a
//     defined source lane requires an equal, non-poison target lane;
//   - bytes written by the source constrain the target's final memory the
//     same way.
package alive

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/interp"
	"repro/internal/ir"
)

// Verdict classifies a verification run.
type Verdict int

// Verdicts.
const (
	// Correct means no refinement violation was found within the bound.
	Correct Verdict = iota
	// Incorrect means a counterexample was found.
	Incorrect
	// Unsupported means the pair could not be checked (e.g. signature
	// mismatch); Err carries an Alive2-style fixable error message.
	Unsupported
)

// Options bound the verification effort.
type Options struct {
	// MaxExhaustiveBits is the largest total input bit budget that is
	// enumerated exhaustively (default 16).
	MaxExhaustiveBits int
	// Samples is the number of random input vectors when not exhaustive
	// (default 4096).
	Samples int
	// Seed makes the random sampling reproducible.
	Seed uint64
	// MemSize is the byte size of the region behind each pointer argument
	// (default 64).
	MemSize int
	// MemFills is how many distinct initial memories are tried per input
	// vector when pointers are present (default 4).
	MemFills int
}

func (o Options) withDefaults() Options {
	if o.MaxExhaustiveBits == 0 {
		o.MaxExhaustiveBits = 16
	}
	if o.Samples == 0 {
		o.Samples = 4096
	}
	if o.MemSize == 0 {
		o.MemSize = 64
	}
	if o.MemFills == 0 {
		o.MemFills = 4
	}
	return o
}

// CounterExample captures one refinement violation.
type CounterExample struct {
	Params  []*ir.Param
	Inputs  []interp.RVal
	Memory  [][]byte // initial contents of each pointer region, in param order
	SrcRet  interp.RVal
	TgtRet  interp.RVal
	SrcUB   bool
	TgtUB   bool
	TgtWhy  string
	MemDiff string // description of a memory refinement violation, if any
}

// Format renders the counterexample in the style Alive2 prints and LPO feeds
// back to the LLM.
func (ce *CounterExample) Format() string {
	var sb strings.Builder
	sb.WriteString("Transformation doesn't verify!\n")
	switch {
	case ce.TgtUB:
		sb.WriteString("ERROR: Source is guaranteed to be defined, target is undefined\n")
	case ce.MemDiff != "":
		sb.WriteString("ERROR: Mismatch in memory\n")
	default:
		sb.WriteString("ERROR: Value mismatch\n")
	}
	sb.WriteString("Example:\n")
	for i, p := range ce.Params {
		fmt.Fprintf(&sb, "%s %%%s = %s\n", p.Ty, p.Nm, ce.Inputs[i].Format())
	}
	memIdx := 0
	for _, p := range ce.Params {
		if ir.IsPtr(p.Ty) && memIdx < len(ce.Memory) {
			fmt.Fprintf(&sb, "memory at %%%s = % x\n", p.Nm, ce.Memory[memIdx])
			memIdx++
		}
	}
	if ce.SrcUB {
		sb.WriteString("Source value: UB\n")
	} else {
		fmt.Fprintf(&sb, "Source value: %s\n", ce.SrcRet.Format())
	}
	switch {
	case ce.TgtUB:
		fmt.Fprintf(&sb, "Target value: UB (%s)\n", ce.TgtWhy)
	default:
		fmt.Fprintf(&sb, "Target value: %s\n", ce.TgtRet.Format())
	}
	if ce.MemDiff != "" {
		sb.WriteString(ce.MemDiff + "\n")
	}
	return sb.String()
}

// Result is the outcome of Verify.
type Result struct {
	Verdict    Verdict
	CE         *CounterExample
	Err        string // set for Unsupported
	Checked    int    // input vectors actually executed
	Exhaustive bool   // true if the whole input space was covered
}

// Verify checks whether tgt refines src within the given bounds.
func Verify(src, tgt *ir.Func, opts Options) Result {
	opts = opts.withDefaults()
	if err := signatureError(src, tgt); err != "" {
		return Result{Verdict: Unsupported, Err: err}
	}
	gen := newInputGen(src, opts)
	res := Result{Exhaustive: gen.exhaustive}
	for gen.next() {
		res.Checked++
		if ce := checkOne(src, tgt, gen.params, gen.inputs, gen.memBytes, opts); ce != nil {
			res.Verdict = Incorrect
			res.CE = ce
			return res
		}
	}
	res.Verdict = Correct
	return res
}

// isNaNBits reports whether the given IEEE bit pattern at width w is a NaN.
func isNaNBits(w int, bits uint64) bool {
	if w == 32 {
		f := math.Float32frombits(uint32(bits))
		return f != f
	}
	f := math.Float64frombits(bits)
	return math.IsNaN(f)
}

// signatureError mirrors Alive2's "could not translate" fixable errors.
func signatureError(src, tgt *ir.Func) string {
	if len(src.Params) != len(tgt.Params) {
		return fmt.Sprintf("ERROR: signature mismatch: source has %d arguments, target has %d",
			len(src.Params), len(tgt.Params))
	}
	for i := range src.Params {
		if !ir.Equal(src.Params[i].Ty, tgt.Params[i].Ty) {
			return fmt.Sprintf("ERROR: signature mismatch: argument %d is %s in source but %s in target",
				i, src.Params[i].Ty, tgt.Params[i].Ty)
		}
	}
	if !ir.Equal(src.Ret, tgt.Ret) {
		return fmt.Sprintf("ERROR: signature mismatch: return type is %s in source but %s in target",
			src.Ret, tgt.Ret)
	}
	return ""
}

// checkOne runs both functions on one concrete environment and checks the
// refinement obligation. It returns a counterexample or nil.
func checkOne(src, tgt *ir.Func, params []*ir.Param, inputs []interp.RVal,
	memBytes [][]byte, opts Options) *CounterExample {
	buildEnv := func() (interp.Env, *interp.Memory) {
		mem := interp.NewMemory()
		args := make([]interp.RVal, len(inputs))
		copy(args, inputs)
		mi := 0
		for i, p := range params {
			if ir.IsPtr(p.Ty) && !args[i].AnyPoison() {
				base := uint64(0x10000 + i*0x1000)
				r := mem.AddRegion(p.Nm, base, opts.MemSize)
				copy(r.Data, memBytes[mi])
				mi++
				args[i] = interp.Scalar(ir.Ptr, base)
			}
		}
		return interp.Env{Args: args, Mem: mem}, mem
	}
	srcEnv, srcMem := buildEnv()
	tgtEnv, tgtMem := buildEnv()
	rs := interp.Exec(src, srcEnv)
	if !rs.Completed {
		return nil // out of budget: inconclusive, skip this input
	}
	if rs.UB {
		return nil // source UB: target unconstrained
	}
	rt := interp.Exec(tgt, tgtEnv)
	if !rt.Completed {
		return nil
	}
	ce := &CounterExample{Params: params, Inputs: inputs, Memory: memBytes,
		SrcRet: rs.Ret, TgtRet: rt.Ret, SrcUB: rs.UB, TgtUB: rt.UB, TgtWhy: rt.UBReason}
	if rt.UB {
		return ce
	}
	// Return value refinement. For floating point lanes, any NaN refines any
	// NaN: LLVM's FP arithmetic produces a nondeterministic quiet NaN, which
	// Alive2 models as a free choice on both sides.
	if !ir.IsVoid(src.Ret) {
		elem := ir.Elem(src.Ret)
		fpBits := 0
		if ir.IsFloat(src.Ret) {
			fpBits = ir.ScalarBits(elem)
		}
		for i := range rs.Ret.Lanes {
			sl := rs.Ret.Lanes[i]
			if sl.Poison {
				continue
			}
			tl := rt.Ret.Lanes[i]
			if tl.Poison {
				return ce
			}
			if tl.V == sl.V {
				continue
			}
			if fpBits > 0 && isNaNBits(fpBits, sl.V) && isNaNBits(fpBits, tl.V) {
				continue
			}
			return ce
		}
	}
	// Memory refinement: bytes the source leaves defined must match.
	for ri := range srcMem.Regions {
		sr, tr := srcMem.Regions[ri], tgtMem.Regions[ri]
		for bi := range sr.Data {
			if sr.Poison[bi] {
				continue
			}
			if tr.Poison[bi] || tr.Data[bi] != sr.Data[bi] {
				ce.MemDiff = fmt.Sprintf(
					"Mismatch in %s at byte %d: source has 0x%02x, target has 0x%02x (poison=%v)",
					sr.Name, bi, sr.Data[bi], tr.Data[bi], tr.Poison[bi])
				return ce
			}
		}
	}
	return nil
}
