package alive

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/parser"
)

// TestPoolKillsRepeatOffender is the CEGIS contract of the tiered
// scheduler: the input that refuted one candidate kills the next wrong
// candidate for the same window in tier 0, after a handful of executions
// instead of a sampling pass — and the counterexample it reports is a
// genuine, freshly re-executed violation.
func TestPoolKillsRepeatOffender(t *testing.T) {
	src := parser.MustParseFunc(`define i8 @src(i8 %x, i8 %y) { %r = add i8 %x, %y ret i8 %r }`)
	nsw := parser.MustParseFunc(`define i8 @tgt(i8 %x, i8 %y) { %r = add nsw i8 %x, %y ret i8 %r }`)
	ident := parser.MustParseFunc(`define i8 @tgt2(i8 %x, i8 %y) { ret i8 %x }`)
	pool := NewCEPool()
	opts := Options{Seed: 1, Samples: 256, Programs: interp.NewCache(), Pool: pool}

	r1 := Verify(src, nsw, opts)
	if r1.Verdict != Incorrect || r1.Tiers.KillTier == TierPool {
		t.Fatalf("first refutation: verdict %v, tier %d", r1.Verdict, r1.Tiers.KillTier)
	}
	if pool.Stats().Deposits != 1 {
		t.Fatalf("deposits = %d, want 1", pool.Stats().Deposits)
	}
	r2 := Verify(src, ident, opts)
	if r2.Verdict != Incorrect {
		t.Fatalf("identity rewrite must refute, got %v", r2.Verdict)
	}
	if r2.Tiers.KillTier != TierPool {
		t.Fatalf("second candidate killed by tier %d, want pool (%d)", r2.Tiers.KillTier, TierPool)
	}
	if r2.Checked != 1 || r2.Tiers.PoolChecked != 1 {
		t.Fatalf("pool kill took %d executions (pool %d), want 1", r2.Checked, r2.Tiers.PoolChecked)
	}
	// The pooled CE must be a real violation of THIS candidate: source and
	// target outputs recomputed for the replayed input.
	ce := r2.CE
	if ce == nil || ce.SrcRet.Equal(ce.TgtRet) {
		t.Fatalf("pool-kill counterexample is not a genuine violation: %+v", ce)
	}
	// A correct pair is unaffected by the pool: the pooled vector replays
	// (it cannot falsify a refinement that holds) and the full sequence
	// still passes.
	comm := parser.MustParseFunc(`define i8 @tgt3(i8 %x, i8 %y) { %r = add i8 %y, %x ret i8 %r }`)
	r3 := Verify(src, comm, opts)
	if r3.Verdict != Correct || r3.Tiers.PoolChecked == 0 {
		t.Fatalf("correct pair: verdict %v, pool checked %d", r3.Verdict, r3.Tiers.PoolChecked)
	}
}

// TestTierAccounting pins that Checked is the sum of the per-tier counters
// on both the batched and the reference paths, and that correct runs
// report TierNone.
func TestTierAccounting(t *testing.T) {
	src := parser.MustParseFunc(clampSrc)
	tgt := parser.MustParseFunc(clampTgt)
	for _, res := range []Result{
		Verify(src, tgt, Options{Seed: 3, Samples: 128}),
		ReferenceVerify(src, tgt, Options{Seed: 3, Samples: 128}),
	} {
		if res.Verdict != Correct || res.Tiers.KillTier != TierNone {
			t.Fatalf("verdict %v, kill tier %d", res.Verdict, res.Tiers.KillTier)
		}
		sum := res.Tiers.PoolChecked + res.Tiers.SpecialChecked + res.Tiers.RandomChecked
		if sum != res.Checked {
			t.Fatalf("tier counts %+v do not sum to Checked %d", res.Tiers, res.Checked)
		}
		if res.Tiers.SpecialChecked == 0 || res.Tiers.RandomChecked == 0 {
			t.Fatalf("sampled run should exercise special and random tiers: %+v", res.Tiers)
		}
	}
}

// TestVerifyWidthsReseedsPool pins the sweep-level counterexample carry: a
// width refuted early reseeds later widths, which then die on a rescaled
// replay (tier 0) instead of a fresh search — while a correct pair's sweep
// is byte-for-byte what an unseeded sweep produces.
func TestVerifyWidthsReseedsPool(t *testing.T) {
	src := parser.MustParseFunc(`define i8 @src(i8 %x, i8 %y) { %r = add i8 %x, %y ret i8 %r }`)
	tgt := parser.MustParseFunc(`define i8 @tgt(i8 %x, i8 %y) { ret i8 %x }`)
	opts := Options{Seed: 1, Samples: 128, Programs: interp.NewCache()}
	inst := func(s, d *ir.Func) func(w int) (*ir.Func, *ir.Func, error) {
		return func(w int) (*ir.Func, *ir.Func, error) {
			sw, err := rewidthFunc(s, w)
			if err != nil {
				return nil, nil, err
			}
			dw, err := rewidthFunc(d, w)
			if err != nil {
				return nil, nil, err
			}
			return sw, dw, nil
		}
	}
	wrs := VerifyWidths([]int{8, 16, 32}, opts, inst(src, tgt))
	if wrs[0].Verdict != Incorrect || wrs[0].Tiers.KillTier == TierPool {
		t.Fatalf("width 8: verdict %v tier %d", wrs[0].Verdict, wrs[0].Tiers.KillTier)
	}
	for _, wr := range wrs[1:] {
		if wr.Verdict != Incorrect {
			t.Fatalf("width %d: verdict %v", wr.Width, wr.Verdict)
		}
		if wr.Tiers.KillTier != TierPool || wr.Checked != 1 {
			t.Fatalf("width %d: tier %d after %d executions, want pool kill on replay",
				wr.Width, wr.Tiers.KillTier, wr.Checked)
		}
	}
	// Correct pairs: seeded and unseeded sweeps must match exactly.
	good := parser.MustParseFunc(`define i8 @tgt(i8 %x, i8 %y) { %r = add i8 %y, %x ret i8 %r }`)
	a := VerifyWidths([]int{8, 16, 32}, opts, inst(src, good))
	b := VerifyWidths([]int{8, 16, 32}, opts, inst(src, good))
	for i := range a {
		if a[i].Verdict != Correct || a[i].Checked != b[i].Checked {
			t.Fatalf("width %d: sweep not reproducible: %+v vs %+v", a[i].Width, a[i].Result, b[i].Result)
		}
	}
}

// rewidthFunc re-types an all-i8 scalar function at width w by textual
// substitution (a minimal local stand-in for generalize.Rewidth, which this
// package cannot import).
func rewidthFunc(f *ir.Func, w int) (*ir.Func, error) {
	return parser.ParseFunc(strings.ReplaceAll(f.String(), "i8", ir.IntT(w).String()))
}
