package alive

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/parser"
)

const clampSrc = `define i8 @src(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`

const clampTgt = `define i8 @tgt(i32 %0) {
  %2 = tail call i32 @llvm.smax.i32(i32 %0, i32 0)
  %3 = tail call i32 @llvm.umin.i32(i32 %2, i32 255)
  %4 = trunc nuw i32 %3 to i8
  ret i8 %4
}`

func verify(t *testing.T, src, tgt string, opts Options) Result {
	t.Helper()
	sf := parser.MustParseFunc(src)
	tf := parser.MustParseFunc(tgt)
	return Verify(sf, tf, opts)
}

func TestClampTransformationVerifies(t *testing.T) {
	r := verify(t, clampSrc, clampTgt, Options{Seed: 1})
	if r.Verdict != Correct {
		msg := ""
		if r.CE != nil {
			msg = r.CE.Format()
		}
		t.Fatalf("expected Correct, got %v\n%s", r.Verdict, msg)
	}
	if r.Checked == 0 {
		t.Fatal("no inputs were checked")
	}
}

func TestBrokenClampIsRefuted(t *testing.T) {
	// Dropping the negative-input guard is wrong: x < 0 must clamp to 0,
	// but umin(x, 255) on a negative x yields 255.
	broken := `define i8 @tgt(i32 %0) {
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  ret i8 %4
}`
	r := verify(t, clampSrc, broken, Options{Seed: 1})
	if r.Verdict != Incorrect {
		t.Fatalf("expected Incorrect, got %v", r.Verdict)
	}
	msg := r.CE.Format()
	if !strings.Contains(msg, "Transformation doesn't verify!") {
		t.Fatalf("counterexample missing header:\n%s", msg)
	}
	if !strings.Contains(msg, "Source value:") || !strings.Contains(msg, "Target value:") {
		t.Fatalf("counterexample missing values:\n%s", msg)
	}
}

func TestTargetMorePoisonousIsRefuted(t *testing.T) {
	src := `define i8 @src(i8 %x, i8 %y) {
  %r = add i8 %x, %y
  ret i8 %r
}`
	tgt := `define i8 @tgt(i8 %x, i8 %y) {
  %r = add nsw i8 %x, %y
  ret i8 %r
}`
	r := verify(t, src, tgt, Options{Seed: 1})
	if r.Verdict != Incorrect {
		t.Fatalf("adding nsw must be refuted, got %v", r.Verdict)
	}
	if !r.Exhaustive {
		t.Fatal("16-bit input space should be checked exhaustively")
	}
}

func TestDroppingPoisonFlagIsAllowed(t *testing.T) {
	src := `define i8 @src(i8 %x, i8 %y) {
  %r = add nsw i8 %x, %y
  ret i8 %r
}`
	tgt := `define i8 @tgt(i8 %x, i8 %y) {
  %r = add i8 %x, %y
  ret i8 %r
}`
	r := verify(t, src, tgt, Options{Seed: 1})
	if r.Verdict != Correct {
		t.Fatalf("dropping nsw is a refinement, got %v\n%s", r.Verdict, r.CE.Format())
	}
}

func TestTargetUBIsRefuted(t *testing.T) {
	src := `define i8 @src(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}`
	tgt := `define i8 @tgt(i8 %x) {
  %d = udiv i8 1, %x
  %r = add i8 %x, 1
  ret i8 %r
}`
	r := verify(t, src, tgt, Options{Seed: 1})
	if r.Verdict != Incorrect {
		t.Fatalf("introducing division UB must be refuted, got %v", r.Verdict)
	}
	if !r.CE.TgtUB {
		t.Fatal("counterexample should flag target UB")
	}
	if !strings.Contains(r.CE.Format(), "target is undefined") {
		t.Fatalf("unexpected message:\n%s", r.CE.Format())
	}
}

func TestSignatureMismatch(t *testing.T) {
	src := `define i8 @src(i8 %x) { ret i8 %x }`
	tgt := `define i8 @tgt(i8 %x, i8 %y) { ret i8 %x }`
	r := verify(t, src, tgt, Options{})
	if r.Verdict != Unsupported || !strings.Contains(r.Err, "signature mismatch") {
		t.Fatalf("expected signature mismatch, got %v %q", r.Verdict, r.Err)
	}
	tgt2 := `define i16 @tgt(i8 %x) { %r = zext i8 %x to i16 ret i16 %r }`
	r = verify(t, src, tgt2, Options{})
	if r.Verdict != Unsupported || !strings.Contains(r.Err, "return type") {
		t.Fatalf("expected return type mismatch, got %v %q", r.Verdict, r.Err)
	}
}

func TestLoadMergeVerifies(t *testing.T) {
	src := `define i32 @src(ptr %0) {
  %2 = load i16, ptr %0, align 2
  %3 = getelementptr i8, ptr %0, i64 2
  %4 = load i16, ptr %3, align 1
  %5 = zext i16 %4 to i32
  %6 = shl nuw i32 %5, 16
  %7 = zext i16 %2 to i32
  %8 = or disjoint i32 %6, %7
  ret i32 %8
}`
	tgt := `define i32 @tgt(ptr %0) {
  %2 = load i32, ptr %0, align 2
  ret i32 %2
}`
	r := verify(t, src, tgt, Options{Seed: 2})
	if r.Verdict != Correct {
		t.Fatalf("load merge should verify, got %v\n%s", r.Verdict, r.CE.Format())
	}
}

func TestWrongLoadOffsetIsRefuted(t *testing.T) {
	src := `define i16 @src(ptr %0) {
  %2 = getelementptr i8, ptr %0, i64 2
  %3 = load i16, ptr %2, align 1
  ret i16 %3
}`
	tgt := `define i16 @tgt(ptr %0) {
  %2 = load i16, ptr %0, align 1
  ret i16 %2
}`
	r := verify(t, src, tgt, Options{Seed: 2})
	if r.Verdict != Incorrect {
		t.Fatalf("different load offsets must be refuted, got %v", r.Verdict)
	}
}

func TestStoreRefinement(t *testing.T) {
	src := `define void @src(ptr %p, i8 %x) {
  %d = shl i8 %x, 1
  store i8 %d, ptr %p
  ret void
}`
	good := `define void @tgt(ptr %p, i8 %x) {
  %d = add i8 %x, %x
  store i8 %d, ptr %p
  ret void
}`
	bad := `define void @tgt(ptr %p, i8 %x) {
  %d = shl i8 %x, 2
  store i8 %d, ptr %p
  ret void
}`
	if r := verify(t, src, good, Options{Seed: 3}); r.Verdict != Correct {
		t.Fatalf("x*2 == x+x on stores, got %v\n%s", r.Verdict, r.CE.Format())
	}
	r := verify(t, src, bad, Options{Seed: 3})
	if r.Verdict != Incorrect {
		t.Fatalf("different stored bytes must be refuted, got %v", r.Verdict)
	}
	if !strings.Contains(r.CE.Format(), "memory") {
		t.Fatalf("memory mismatch should be reported:\n%s", r.CE.Format())
	}
}

func TestUmaxChainVerifies(t *testing.T) {
	src := `define i8 @src(i8 %0) {
  %2 = call i8 @llvm.umax.i8(i8 %0, i8 1)
  %3 = shl nuw i8 %2, 1
  %4 = call i8 @llvm.umax.i8(i8 %3, i8 16)
  ret i8 %4
}`
	tgt := `define i8 @tgt(i8 %0) {
  %2 = shl nuw i8 %0, 1
  %3 = call i8 @llvm.umax.i8(i8 %2, i8 16)
  ret i8 %3
}`
	r := verify(t, src, tgt, Options{Seed: 4})
	if r.Verdict != Correct {
		t.Fatalf("umax chain should verify, got %v\n%s", r.Verdict, r.CE.Format())
	}
	if !r.Exhaustive {
		t.Fatal("8-bit input should be exhaustive")
	}
}

func TestFcmpOrdSelectVerifies(t *testing.T) {
	src := `define i1 @src(double %0) {
  %2 = fcmp ord double %0, 0.000000e+00
  %3 = select i1 %2, double %0, double 0.000000e+00
  %4 = fcmp oeq double %3, 1.000000e+00
  ret i1 %4
}`
	tgt := `define i1 @tgt(double %0) {
  %2 = fcmp oeq double %0, 1.000000e+00
  ret i1 %2
}`
	r := verify(t, src, tgt, Options{Seed: 5})
	if r.Verdict != Correct {
		t.Fatalf("fcmp-ord-select should verify, got %v\n%s", r.Verdict, r.CE.Format())
	}
}

func TestFcmpOrdSelectZeroConstantIsRefuted(t *testing.T) {
	// With C == 0.0 the rewrite is wrong: NaN input gives true in src
	// (select yields 0.0, 0.0 == 0.0) but false in tgt (NaN == 0.0).
	src := `define i1 @src(double %0) {
  %2 = fcmp ord double %0, 0.000000e+00
  %3 = select i1 %2, double %0, double 0.000000e+00
  %4 = fcmp oeq double %3, 0.000000e+00
  ret i1 %4
}`
	tgt := `define i1 @tgt(double %0) {
  %2 = fcmp oeq double %0, 0.000000e+00
  ret i1 %2
}`
	r := verify(t, src, tgt, Options{Seed: 5})
	if r.Verdict != Incorrect {
		t.Fatalf("C==0 variant must be refuted (NaN), got %v", r.Verdict)
	}
}

func TestRefinementIsReflexive(t *testing.T) {
	for _, src := range []string{
		clampSrc,
		`define i8 @f(i8 %x) { %r = add nsw i8 %x, 1 ret i8 %r }`,
		`define <4 x i32> @f(<4 x i32> %v) { %r = add <4 x i32> %v, %v ret <4 x i32> %r }`,
		`define i1 @f(double %x) { %r = fcmp ord double %x, 1.000000e+00 ret i1 %r }`,
	} {
		f := parser.MustParseFunc(src)
		r := Verify(f, ir.CloneFunc(f), Options{Seed: 6, Samples: 512})
		if r.Verdict != Correct {
			t.Fatalf("function should refine itself:\n%s\n%s", src, r.CE.Format())
		}
	}
}

// The optimizer's output must always refine its input: this couples the two
// substrates the way InstCombine and Alive2 are coupled in LLVM's workflow.
func TestOptimizerOutputRefinesInput(t *testing.T) {
	srcs := []string{
		`define i8 @f(i8 %x) { %a = add i8 %x, 10 %b = add i8 %a, 20 ret i8 %b }`,
		`define i8 @f(i8 %x) { %a = mul nsw i8 %x, 8 ret i8 %a }`,
		`define i8 @f(i8 %x) { %a = sub i8 %x, 5 ret i8 %a }`,
		`define i8 @f(i8 %x) { %c = icmp sgt i8 %x, 0 %r = select i1 %c, i8 %x, i8 0 ret i8 %r }`,
		`define i8 @f(i8 %x) { %a = call i8 @llvm.umin.i8(i8 %x, i8 100) %b = call i8 @llvm.umin.i8(i8 %a, i8 50) ret i8 %b }`,
		`define i8 @f(i8 %x) { %a = udiv i8 %x, 8 ret i8 %a }`,
		`define i8 @f(i8 %x) { %a = urem i8 %x, 16 ret i8 %a }`,
		`define i8 @f(i8 %x) { %t = trunc i8 %x to i4 %z = zext i4 %t to i8 ret i8 %z }`,
		`define i8 @f(i8 %x, i8 %y) { %a = xor i8 %x, %y %b = xor i8 %a, %y ret i8 %b }`,
		`define i1 @f(i8 %x) { %c = icmp ult i8 %x, 0 ret i1 %c }`,
	}
	for _, src := range srcs {
		f := parser.MustParseFunc(src)
		g := opt.RunO3(f)
		r := Verify(f, g, Options{Seed: 7})
		if r.Verdict != Correct {
			t.Fatalf("optimizer broke refinement:\noriginal:\n%s\noptimized:\n%s\n%s",
				f, g, r.CE.Format())
		}
	}
}

// Patched optimizations must also refine, exhaustively at 8 bits.
func TestPatchedOptimizerRefines(t *testing.T) {
	cases := map[string]string{
		"157371": `define i8 @f(i8 %x) { %n = xor i8 %x, -1 %r = add i8 %n, 1 ret i8 %r }`,
		"163108": `define i8 @f(i8 %x) { %s = ashr i8 %x, 7 %r = and i8 %s, %x ret i8 %r }`,
		"143211": `define i8 @f(i8 %x) { %a = shl i8 %x, 3 %b = lshr i8 %a, 3 ret i8 %b }`,
		"154238": `define i8 @f(i1 %c) { %r = select i1 %c, i8 1, i8 0 ret i8 %r }`,
		"157370": `define i8 @f(i8 %x) { %a = shl i8 %x, 4 %b = ashr i8 %a, 4 ret i8 %b }`,
		"157524": `define i8 @f(i8 %x) { %n = sub i8 0, %x %r = xor i8 %n, -1 ret i8 %r }`,
		"166973": `define i8 @f(i8 %x) { %a = lshr i8 %x, 3 %b = shl i8 %a, 3 ret i8 %b }`,
		"142674": `define i8 @f(i8 %x) { %a = and i8 %x, -16 %b = and i8 %x, 15 %r = or i8 %a, %b ret i8 %r }`,
	}
	for patch, src := range cases {
		f := parser.MustParseFunc(src)
		g := opt.Run(f, opt.Options{Patches: []string{patch}})
		r := Verify(f, g, Options{Seed: 8})
		if r.Verdict != Correct {
			t.Fatalf("patch %s broke refinement:\noriginal:\n%s\npatched:\n%s\n%s",
				patch, f, g, r.CE.Format())
		}
	}
}
