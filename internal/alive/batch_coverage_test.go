package alive

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

// batchedPairs are (src, tgt, wantCorrect) triples whose shapes used to
// force the per-vector fallback: memory access, multi-block control flow,
// and both at once. All are batchable now.
var batchedPairs = []struct {
	name    string
	src     string
	tgt     string
	correct bool
}{
	{"mem-correct",
		`define void @src(ptr %p, i8 %x) { %d = shl i8 %x, 1 store i8 %d, ptr %p ret void }`,
		`define void @tgt(ptr %p, i8 %x) { %d = add i8 %x, %x store i8 %d, ptr %p ret void }`,
		true},
	{"mem-refuted",
		`define void @src(ptr %p, i8 %x) { %d = shl i8 %x, 1 store i8 %d, ptr %p ret void }`,
		`define void @tgt(ptr %p, i8 %x) { %d = shl i8 %x, 2 store i8 %d, ptr %p ret void }`,
		false},
	{"load-refuted",
		`define i16 @src(ptr %0) { %2 = getelementptr i8, ptr %0, i64 2 %3 = load i16, ptr %2, align 1 ret i16 %3 }`,
		`define i16 @tgt(ptr %0) { %2 = load i16, ptr %0, align 1 ret i16 %2 }`,
		false},
	{"branch-correct",
		`define i8 @src(i8 %x) {
entry:
  %c = icmp ult i8 %x, 10
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %r = phi i8 [ 1, %a ], [ 0, %b ]
  ret i8 %r
}`,
		`define i8 @tgt(i8 %x) {
  %c = icmp ult i8 %x, 10
  %r = zext i1 %c to i8
  ret i8 %r
}`,
		true},
	{"branch-refuted",
		`define i8 @src(i8 %x) {
entry:
  %c = icmp ult i8 %x, 10
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %r = phi i8 [ 1, %a ], [ 0, %b ]
  ret i8 %r
}`,
		`define i8 @tgt(i8 %x) {
  %c = icmp ule i8 %x, 10
  %r = zext i1 %c to i8
  ret i8 %r
}`,
		false},
	{"branch-mem-refuted",
		`define i8 @src(ptr %p, i8 %x) {
entry:
  %c = icmp eq i8 %x, 0
  br i1 %c, label %zero, label %nz
zero:
  ret i8 0
nz:
  %v = load i8, ptr %p
  %r = udiv i8 %v, %x
  store i8 %r, ptr %p
  ret i8 %r
}`,
		`define i8 @tgt(ptr %p, i8 %x) {
entry:
  %c = icmp eq i8 %x, 0
  br i1 %c, label %zero, label %nz
nz:
  %v = load i8, ptr %p
  %r = udiv i8 %v, %x
  ret i8 %r
zero:
  ret i8 0
}`,
		false},
}

// TestBatchedMatchesReferenceOnMemoryAndBranches is the tentpole's
// differential: memory-touching and multi-block pairs — the shapes that
// used to fall back to per-vector execution — run entirely on the
// lane-batched path and must agree with ReferenceVerify on verdict, counts
// and byte-identical counterexample text.
func TestBatchedMatchesReferenceOnMemoryAndBranches(t *testing.T) {
	for _, tc := range batchedPairs {
		t.Run(tc.name, func(t *testing.T) {
			src := parser.MustParseFunc(tc.src)
			tgt := parser.MustParseFunc(tc.tgt)
			opts := Options{Seed: 7, Samples: 160, MemFills: 3}
			fast := Verify(src, tgt, opts)
			ref := ReferenceVerify(src, tgt, opts)
			if diff := resultsEqual(fast, ref); diff != "" {
				t.Fatalf("batched and reference disagree: %s", diff)
			}
			if got := fast.Verdict == Correct; got != tc.correct {
				extra := ""
				if fast.CE != nil {
					extra = "\n" + fast.CE.Format()
				}
				t.Fatalf("verdict %v, want correct=%v%s", fast.Verdict, tc.correct, extra)
			}
			if fast.Tiers.Fallback != 0 || fast.Tiers.Batched != fast.Checked {
				t.Fatalf("pair should run fully batched: batched %d fallback %d checked %d",
					fast.Tiers.Batched, fast.Tiers.Fallback, fast.Checked)
			}
		})
	}
}

// TestBatchCoverageCounters pins the Batched/Fallback split: the two always
// sum to Checked, batchable pairs run fully batched, and dynamic-vector
// programs (the one remaining fallback class) count every vector as
// fallback.
func TestBatchCoverageCounters(t *testing.T) {
	for _, tc := range batchedPairs {
		src := parser.MustParseFunc(tc.src)
		tgt := parser.MustParseFunc(tc.tgt)
		res := Verify(src, tgt, Options{Seed: 9, Samples: 64})
		if res.Tiers.Batched+res.Tiers.Fallback != res.Checked {
			t.Fatalf("%s: batched %d + fallback %d != checked %d",
				tc.name, res.Tiers.Batched, res.Tiers.Fallback, res.Checked)
		}
	}

	// A dynamic vector constant keeps the program on the per-vector path.
	dyn := parser.MustParseFunc(
		`define <2 x i8> @f(<2 x i8> %v, i8 %x) { %r = add <2 x i8> %v, splat (i8 %x) ret <2 x i8> %r }`)
	res := Verify(dyn, dyn, Options{Seed: 9, Samples: 64})
	if res.Verdict != Correct {
		t.Fatalf("reflexive verify must hold, got %v", res.Verdict)
	}
	if res.Tiers.Batched != 0 || res.Tiers.Fallback != res.Checked || res.Checked == 0 {
		t.Fatalf("dynamic-vector pair should be all fallback: batched %d fallback %d checked %d",
			res.Tiers.Batched, res.Tiers.Fallback, res.Checked)
	}

	ref := ReferenceVerify(dyn, dyn, Options{Seed: 9, Samples: 64})
	if ref.Tiers.Fallback != ref.Checked {
		t.Fatalf("reference path counts every vector as fallback: %+v", ref.Tiers)
	}
}

// TestBatchedMemoryCounterexampleText pins counterexample fidelity on the
// batched memory path: the report must include the raw generated pointer
// argument, the initial memory fill, and the memory-mismatch description,
// all byte-identical to the reference path.
func TestBatchedMemoryCounterexampleText(t *testing.T) {
	src := parser.MustParseFunc(
		`define void @src(ptr %p, i8 %x) { store i8 %x, ptr %p ret void }`)
	tgt := parser.MustParseFunc(
		`define void @tgt(ptr %p, i8 %x) { %d = add i8 %x, 1 store i8 %d, ptr %p ret void }`)
	opts := Options{Seed: 13}
	fast := Verify(src, tgt, opts)
	if fast.Verdict != Incorrect {
		t.Fatalf("stored bytes differ, want Incorrect, got %v", fast.Verdict)
	}
	text := fast.CE.Format()
	if !strings.Contains(text, "memory at %p") || !strings.Contains(text, "Mismatch in p at byte") {
		t.Fatalf("memory counterexample incomplete:\n%s", text)
	}
	ref := ReferenceVerify(src, tgt, opts)
	if ref.CE.Format() != text {
		t.Fatalf("batched and reference counterexamples differ:\n%s\nvs\n%s", text, ref.CE.Format())
	}
}
