package alive

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/parser"
)

// eagerVec is one pre-materialized input vector of the historic eager
// generator, replicated below as the equivalence reference.
type eagerVec struct {
	args []interp.RVal
	mem  [][]byte
}

// eagerQueue is a verbatim replica of the pre-streaming inputGen: it builds
// the whole queue up front, drawing from the rng in the historic order. The
// streaming generator must emit the exact same sequence.
func eagerQueue(f *ir.Func, opts Options) ([]eagerVec, bool) {
	rng := rand.New(rand.NewSource(int64(opts.Seed) ^ 0x5eed))
	totalBits := 0
	numPtrs := 0
	for _, p := range f.Params {
		if ir.IsPtr(p.Ty) {
			numPtrs++
			continue
		}
		totalBits += ir.ScalarBits(ir.Elem(p.Ty)) * ir.Lanes(p.Ty)
	}
	exhaustive := totalBits <= opts.MaxExhaustiveBits

	mkFills := func() [][][]byte {
		if numPtrs == 0 {
			return [][][]byte{nil}
		}
		mk := func(gen func(i int) byte) [][]byte {
			out := make([][]byte, numPtrs)
			for p := 0; p < numPtrs; p++ {
				b := make([]byte, opts.MemSize)
				for i := range b {
					b[i] = gen(i + p*7)
				}
				out[p] = b
			}
			return out
		}
		fills := [][][]byte{
			mk(func(int) byte { return 0 }),
			mk(func(i int) byte { return byte(i) }),
		}
		for len(fills) < opts.MemFills {
			fills = append(fills, mk(func(int) byte { return byte(rng.Intn(256)) }))
		}
		return fills[:opts.MemFills]
	}
	fills := mkFills()

	argsFromCounter := func(c uint64) []interp.RVal {
		args := make([]interp.RVal, len(f.Params))
		bit := uint(0)
		for i, p := range f.Params {
			if ir.IsPtr(p.Ty) {
				args[i] = interp.Scalar(ir.Ptr, 0)
				continue
			}
			w := ir.ScalarBits(ir.Elem(p.Ty))
			lanes := ir.Lanes(p.Ty)
			rv := interp.RVal{Ty: p.Ty, Lanes: make([]interp.Word, lanes)}
			for l := 0; l < lanes; l++ {
				v := (c >> bit) & ir.MaskW(w)
				bit += uint(w)
				rv.Lanes[l] = interp.Word{V: v}
			}
			args[i] = rv
		}
		return args
	}

	var queue []eagerVec
	if exhaustive {
		for c := uint64(0); c < uint64(1)<<uint(totalBits); c++ {
			args := argsFromCounter(c)
			for _, m := range fills {
				queue = append(queue, eagerVec{args: args, mem: m})
			}
		}
	} else {
		specials := 0
		for _, p := range f.Params {
			if n := len(specialLanes(p.Ty)); n > specials {
				specials = n
			}
		}
		for k := 0; k < specials; k++ {
			args := make([]interp.RVal, len(f.Params))
			for i, p := range f.Params {
				args[i] = specialArg(p.Ty, k)
			}
			queue = append(queue, eagerVec{args: args, mem: fills[k%len(fills)]})
		}
		for k := 0; k < opts.Samples/8; k++ {
			args := make([]interp.RVal, len(f.Params))
			for i, p := range f.Params {
				args[i] = specialArg(p.Ty, rng.Intn(specials+1))
			}
			queue = append(queue, eagerVec{args: args, mem: fills[rng.Intn(len(fills))]})
		}
		for k := 0; k < opts.Samples; k++ {
			args := make([]interp.RVal, len(f.Params))
			for i, p := range f.Params {
				args[i] = randomArg(p.Ty, rng)
			}
			queue = append(queue, eagerVec{args: args, mem: fills[rng.Intn(len(fills))]})
		}
	}
	for i, p := range f.Params {
		if ir.IsPtr(p.Ty) {
			continue
		}
		for trial := 0; trial < 2; trial++ {
			args := make([]interp.RVal, len(f.Params))
			for j, q := range f.Params {
				if j == i {
					args[j] = interp.PoisonRV(q.Ty)
				} else if trial == 0 {
					args[j] = specialArg(q.Ty, 0)
				} else {
					args[j] = randomArg(q.Ty, rng)
				}
			}
			queue = append(queue, eagerVec{args: args, mem: fills[trial%len(fills)]})
		}
	}
	return queue, exhaustive
}

func fmtVec(args []interp.RVal, mem [][]byte) string {
	s := ""
	for _, a := range args {
		s += a.Format() + "; "
	}
	for _, m := range mem {
		s += fmt.Sprintf("%x;", m)
	}
	return s
}

// TestStreamingInputGenMatchesEagerReference locks the streaming generator
// to the historic eager queue: same length, same values, same memory fills,
// same order, for a spread of signatures and seeds.
func TestStreamingInputGenMatchesEagerReference(t *testing.T) {
	funcs := []string{
		`define i8 @f(i8 %x, i8 %y) { %r = add i8 %x, %y ret i8 %r }`,                               // exhaustive
		`define i8 @f(i32 %x) { %r = trunc i32 %x to i8 ret i8 %r }`,                                // sampled scalar
		`define i1 @f(double %x) { %r = fcmp ord double %x, %x ret i1 %r }`,                         // float corners
		`define <4 x i8> @f(<4 x i8> %v, <4 x i8> %w) { %r = and <4 x i8> %v, %w ret <4 x i8> %r }`, // sampled vector
		`define i8 @f(ptr %p) { %r = load i8, ptr %p ret i8 %r }`,                                   // exhaustive + memory
		`define i16 @f(ptr %p, ptr %q, i32 %x) { %r = trunc i32 %x to i16 ret i16 %r }`,             // sampled + two regions
		`define i8 @f() { ret i8 7 }`,                                                               // no params
	}
	for fi, src := range funcs {
		f := parser.MustParseFunc(src)
		for _, seed := range []uint64{0, 1, 42} {
			opts := Options{Seed: seed, Samples: 64, MemFills: 3, MemSize: 16}.withDefaults()
			want, wantExh := eagerQueue(f, opts)
			g := newInputGen(f, opts)
			if g.exhaustive != wantExh {
				t.Fatalf("func %d seed %d: exhaustive=%v, want %v", fi, seed, g.exhaustive, wantExh)
			}
			i := 0
			for g.next() {
				if i >= len(want) {
					t.Fatalf("func %d seed %d: streaming emits more than %d vectors", fi, seed, len(want))
				}
				got := fmtVec(g.inputs, g.memBytes)
				exp := fmtVec(want[i].args, want[i].mem)
				if got != exp {
					t.Fatalf("func %d seed %d vector %d differs:\ngot  %s\nwant %s", fi, seed, i, got, exp)
				}
				i++
			}
			if i != len(want) {
				t.Fatalf("func %d seed %d: streaming emitted %d vectors, eager %d", fi, seed, i, len(want))
			}
		}
	}
}
