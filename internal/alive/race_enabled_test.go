//go:build race

package alive

// raceEnabled reports that the race detector is active; allocation-count
// assertions are skipped because the race runtime's instrumentation
// allocates on its own.
func init() { raceEnabled = true }
