package parser

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// The verbatim IR functions from the paper's figures.
var paperFuncs = map[string]string{
	"fig1b": `define i8 @src(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`,
	"fig1c": `define i8 @tgt(i32 %0) {
  %2 = tail call i32 @llvm.smax.i32(i32 %0, i32 0)
  %3 = tail call i32 @llvm.umin.i32(i32 %2, i32 255)
  %4 = trunc nuw i32 %3 to i8
  ret i8 %4
}`,
	"fig3a": `define <4 x i8> @src(i64 %a0, ptr %a1) {
entry:
  %0 = getelementptr inbounds nuw i32, ptr %a1, i64 %a0
  %wide.load = load <4 x i32>, ptr %0, align 4
  %3 = icmp slt <4 x i32> %wide.load, zeroinitializer
  %5 = tail call <4 x i32> @llvm.umin.v4i32(<4 x i32> %wide.load, <4 x i32> splat (i32 255))
  %7 = trunc nuw <4 x i32> %5 to <4 x i8>
  %9 = select <4 x i1> %3, <4 x i8> zeroinitializer, <4 x i8> %7
  ret <4 x i8> %9
}`,
	"fig3d": `define <4 x i8> @src(i64 %a0, ptr %a1) {
entry:
  %0 = getelementptr inbounds nuw i32, ptr %a1, i64 %a0
  %wide.load = load <4 x i32>, ptr %0, align 4
  %smax_val = tail call <4 x i32> @llvm.smax.v4i32(<4 x i32> %wide.load, <4 x i32> zeroinitializer)
  %smin_val = tail call <4 x i32> @llvm.smin.v4i32(<4 x i32> %smax_val, <4 x i32> splat (i32 255))
  %result = trunc nuw <4 x i32> %smin_val to <4 x i8>
  ret <4 x i8> %result
}`,
	"fig4a": `define i32 @src(ptr %0) {
  %2 = load i16, ptr %0, align 2
  %3 = getelementptr i8, ptr %0, i64 2
  %4 = load i16, ptr %3, align 1
  %5 = zext i16 %4 to i32
  %6 = shl nuw i32 %5, 16
  %7 = zext i16 %2 to i32
  %8 = or disjoint i32 %6, %7
  ret i32 %8
}`,
	"fig4b": `define i8 @src(i8 %0) {
  %2 = call i8 @llvm.umax.i8(i8 %0, i8 1)
  %3 = shl nuw i8 %2, 1
  %4 = call i8 @llvm.umax.i8(i8 %3, i8 16)
  ret i8 %4
}`,
	"fig4c": `define i1 @src(double %0) {
  %2 = fcmp ord double %0, 0.000000e+00
  %3 = select i1 %2, double %0, double 0.000000e+00
  %4 = fcmp oeq double %3, 1.000000e+00
  ret i1 %4
}`,
	"fig4d": `define i32 @tgt(ptr %0) {
  %2 = load i32, ptr %0, align 2
  ret i32 %2
}`,
	"fig4e": `define i8 @tgt(i8 %0) {
  %2 = shl nuw i8 %0, 1
  %3 = call i8 @llvm.umax.i8(i8 %2, i8 16)
  ret i8 %3
}`,
	"fig4f": `define i1 @tgt(double %0) {
  %2 = fcmp oeq double %0, 1.000000e+00
  ret i1 %2
}`,
}

func TestParsePaperFigures(t *testing.T) {
	for name, src := range paperFuncs {
		t.Run(name, func(t *testing.T) {
			f, err := ParseFunc(src)
			if err != nil {
				t.Fatalf("parse failed: %v", err)
			}
			if err := ir.VerifyFunc(f); err != nil {
				t.Fatalf("verify failed: %v", err)
			}
		})
	}
}

func TestRoundTripPaperFigures(t *testing.T) {
	for name, src := range paperFuncs {
		t.Run(name, func(t *testing.T) {
			f1, err := ParseFunc(src)
			if err != nil {
				t.Fatalf("first parse failed: %v", err)
			}
			printed := f1.String()
			f2, err := ParseFunc(printed)
			if err != nil {
				t.Fatalf("reparse of printed form failed: %v\nprinted:\n%s", err, printed)
			}
			if ir.Hash(f1) != ir.Hash(f2) {
				t.Fatalf("round trip changed structure:\noriginal:\n%s\nreparsed:\n%s", printed, f2)
			}
			if printed != f2.String() {
				t.Fatalf("printing is not a fixpoint:\nfirst:\n%s\nsecond:\n%s", printed, f2)
			}
		})
	}
}

func TestParseMultiBlockFunction(t *testing.T) {
	src := `define i64 @sum(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %loop ]
  %acc.next = add i64 %acc, %i
  %i.next = add nuw i64 %i, 1
  %done = icmp eq i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}`
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	if len(f.Blocks) != 3 {
		t.Fatalf("expected 3 blocks, got %d", len(f.Blocks))
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("verify failed: %v", err)
	}
	// Round trip.
	f2, err := ParseFunc(f.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, f.String())
	}
	if ir.Hash(f) != ir.Hash(f2) {
		t.Fatal("multi-block round trip changed structure")
	}
}

func TestSyntaxErrorMessageMatchesOptStyle(t *testing.T) {
	// The paper's Figure 3b: the LLM emitted "smax" as a bare opcode, which
	// opt rejects with "expected instruction opcode".
	src := `define <4 x i8> @src(i64 %a0, ptr %a1) {
entry:
  %smax_0 = smax <4 x i32> %wide.load, zeroinitializer
  ret <4 x i8> zeroinitializer
}`
	_, err := ParseFunc(src)
	if err == nil {
		t.Fatal("expected a syntax error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "error: expected instruction opcode") {
		t.Fatalf("unexpected message: %q", msg)
	}
	if !strings.Contains(msg, "%smax_0 = smax") {
		t.Fatalf("message should quote the offending line, got: %q", msg)
	}
	if !strings.Contains(msg, "^") {
		t.Fatalf("message should include a caret, got: %q", msg)
	}
}

func TestUseOfUndefinedValue(t *testing.T) {
	src := `define i32 @f(i32 %x) {
  %y = add i32 %x, %zzz
  ret i32 %y
}`
	_, err := ParseFunc(src)
	if err == nil {
		t.Fatal("expected an undefined-value error")
	}
	if !strings.Contains(err.Error(), "use of undefined value '%zzz'") {
		t.Fatalf("unexpected message: %q", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"bad type", "define wat @f() {\n ret void\n}", "expected type"},
		{"missing paren", "define void @f( {\n ret void\n}", "expected type"},
		{"bad predicate", "define i1 @f(i32 %x) {\n %c = icmp wat i32 %x, 0\n ret i1 %c\n}", "expected icmp predicate"},
		{"store with name", "define void @f(i32 %x, ptr %p) {\n %s = store i32 %x, ptr %p\n ret void\n}", "produces no result"},
		{"trunc widen", "define i64 @f(i32 %x) {\n %t = trunc i32 %x to i64\n ret i64 %t\n}", "trunc must narrow"},
		{"vector arity", "define <2 x i32> @f() {\n ret <2 x i32> <i32 1, i32 2, i32 3>\n}", "3 elements"},
		{"ret type mismatch", "define i64 @f(i32 %x) {\n ret i32 %x\n}", "does not match function return type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseFunc(tc.src)
			if err == nil {
				t.Fatalf("expected error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), tc.want)
			}
		})
	}
}

func TestParseConstants(t *testing.T) {
	src := `define <4 x i32> @f(<4 x i32> %v) {
  %a = add <4 x i32> %v, splat (i32 -7)
  %b = add <4 x i32> %a, <i32 1, i32 2, i32 3, i32 4>
  %c = add <4 x i32> %b, zeroinitializer
  %d = select <4 x i1> <i1 true, i1 false, i1 true, i1 false>, <4 x i32> %c, <4 x i32> undef
  ret <4 x i32> %d
}`
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	f2, err := ParseFunc(f.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, f.String())
	}
	if ir.Hash(f) != ir.Hash(f2) {
		t.Fatal("constant round trip changed structure")
	}
}

func TestParseFloatForms(t *testing.T) {
	src := `define double @f(double %x) {
  %a = fadd double %x, 1.5
  %b = fmul double %a, 2.550000e+02
  %c = fadd double %b, 0x3FF0000000000000
  ret double %c
}`
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	// 0x3FF0000000000000 is 1.0.
	instrs := f.Entry().Instrs
	cf, ok := instrs[2].Args[1].(*ir.ConstFloat)
	if !ok || cf.F != 1.0 {
		t.Fatalf("hex float parsed wrong: %#v", instrs[2].Args[1])
	}
}

func TestUnnamedResultsAutoNumber(t *testing.T) {
	src := `define i32 @f(i32 %0) {
  %2 = add i32 %0, 1
  ret i32 %2
}`
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	if f.Params[0].Nm != "0" {
		t.Fatalf("param name: %q", f.Params[0].Nm)
	}
}
