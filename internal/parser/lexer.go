// Package parser implements a lexer and recursive-descent parser for the
// LLVM .ll subset modelled by internal/ir. Diagnostics mimic the style of
// LLVM's opt front end ("error: expected instruction opcode" with the
// offending line and a caret), because LPO forwards these messages verbatim
// to the LLM as repair feedback.
package parser

import (
	"strings"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tLocal  // %name
	tGlobal // @name
	tInt    // integer literal (possibly negative)
	tFloat  // float literal (scientific, decimal, or 0x hex bits)
	tPunct  // single punctuation rune
)

type token struct {
	kind tokKind
	text string // for locals/globals the text excludes the sigil
	line int    // 1-based
	col  int    // 1-based byte column of the first rune
}

type lexer struct {
	src   string
	lines []string
	pos   int
	line  int
	col   int
	toks  []token
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || c == '$' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '-'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// lex tokenizes src. Unknown bytes become single-rune punctuation tokens so
// the parser can produce a positioned diagnostic.
func lex(src string) *lexer {
	l := &lexer{src: src, lines: strings.Split(src, "\n"), line: 1, col: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.advance(1)
		case c == ' ' || c == '\t' || c == '\r':
			l.advance(1)
		case c == ';':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case c == '%' || c == '@':
			kind := tLocal
			if c == '@' {
				kind = tGlobal
			}
			startLine, startCol := l.line, l.col
			l.advance(1)
			start := l.pos
			if l.pos < len(l.src) && l.src[l.pos] == '"' {
				// Quoted name: @"foo bar".
				l.advance(1)
				qs := l.pos
				for l.pos < len(l.src) && l.src[l.pos] != '"' {
					l.advance(1)
				}
				name := l.src[qs:l.pos]
				if l.pos < len(l.src) {
					l.advance(1)
				}
				l.emitAt(kind, name, startLine, startCol)
				continue
			}
			for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
				l.advance(1)
			}
			l.emitAt(kind, l.src[start:l.pos], startLine, startCol)
		case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			l.lexNumber()
		case isIdentStart(c):
			startLine, startCol := l.line, l.col
			start := l.pos
			for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
				l.advance(1)
			}
			l.emitAt(tIdent, l.src[start:l.pos], startLine, startCol)
		default:
			l.emitAt(tPunct, string(c), l.line, l.col)
			l.advance(1)
		}
	}
	l.toks = append(l.toks, token{kind: tEOF, line: l.line, col: l.col})
	return l
}

func (l *lexer) lexNumber() {
	startLine, startCol := l.line, l.col
	start := l.pos
	if l.src[l.pos] == '-' {
		l.advance(1)
	}
	if l.pos+1 < len(l.src) && l.src[l.pos] == '0' && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
		l.advance(2)
		for l.pos < len(l.src) && isHex(l.src[l.pos]) {
			l.advance(1)
		}
		l.emitAt(tFloat, l.src[start:l.pos], startLine, startCol)
		return
	}
	isFloat := false
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.advance(1)
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		isFloat = true
		l.advance(1)
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.advance(1)
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		isFloat = true
		l.advance(1)
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.advance(1)
		}
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.advance(1)
		}
	}
	kind := tInt
	if isFloat {
		kind = tFloat
	}
	l.emitAt(kind, l.src[start:l.pos], startLine, startCol)
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) emitAt(kind tokKind, text string, line, col int) {
	l.toks = append(l.toks, token{kind: kind, text: text, line: line, col: col})
}
