package parser

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/ir"
)

// The golden round-trip sweep: for every benchdata finding pair (the RQ1
// benchmark suite and the RQ2 registry), parse→print→parse must be the
// identity — the printed text re-parses to a structurally identical
// function and re-prints byte-for-byte. This pins the parser and printer
// against each other across every IR shape the reproduction exercises
// (scalars, vectors, FP, intrinsics, memory, flags, predicates).
func TestBenchdataRoundTrip(t *testing.T) {
	type namedPair struct {
		name string
		pair benchdata.Pair
	}
	var pairs []namedPair
	for _, c := range benchdata.RQ1Cases() {
		pairs = append(pairs, namedPair{name: "rq1-" + c.IssueID, pair: c.Pair})
	}
	for _, f := range benchdata.RQ2Findings() {
		pairs = append(pairs, namedPair{name: "rq2-" + f.IssueID, pair: f.Pair})
	}
	if len(pairs) < 80 {
		t.Fatalf("sweep lost coverage: only %d pairs", len(pairs))
	}
	for _, np := range pairs {
		np := np
		t.Run(np.name, func(t *testing.T) {
			for side, text := range map[string]string{"src": np.pair.Src, "tgt": np.pair.Tgt} {
				f1, err := ParseFunc(text)
				if err != nil {
					t.Fatalf("%s does not parse: %v\n%s", side, err, text)
				}
				if err := ir.VerifyFunc(f1); err != nil {
					t.Fatalf("%s is not well-formed: %v", side, err)
				}
				printed := f1.String()
				f2, err := ParseFunc(printed)
				if err != nil {
					t.Fatalf("%s printed form does not re-parse: %v\n%s", side, err, printed)
				}
				if !ir.StructurallyEqual(f1, f2) {
					t.Fatalf("%s round trip changed the function:\n%s\nvs\n%s", side, f1, f2)
				}
				if reprinted := f2.String(); reprinted != printed {
					t.Fatalf("%s print is not a fixpoint:\n%q\nvs\n%q", side, printed, reprinted)
				}
			}
		})
	}
}

// The printer must also be stable through the error path: a diagnostic for
// every truncated prefix, never a panic (the fuzz-shaped guard the golden
// sweep implies).
func TestRoundTripTruncationsDiagnose(t *testing.T) {
	text := benchdata.RQ2Findings()[0].Pair.Src
	for i := 1; i < len(text)-1; i += 7 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on truncation at %d: %v", i, r)
				}
			}()
			if _, err := ParseFunc(text[:i]); err == nil {
				// Some prefixes are legitimately complete functions; they
				// must round-trip like everything else.
				f, _ := ParseFunc(text[:i])
				if f == nil {
					t.Fatalf("nil function without error at %d", i)
				}
			} else if _, ok := err.(*ParseError); !ok {
				t.Fatalf("truncation at %d produced a non-positioned error: %v (%T)", i, err, err)
			}
		}()
	}
}
