package parser

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// ParseError is a structured, positioned parse diagnostic. Line and Col are
// 1-based; both are 0 when the error has no single source position (e.g. a
// post-parse verification failure). The rendered message follows LLVM's opt
// front end — "line:col: error: <msg>", the offending source line, and a
// caret — because LPO forwards these messages verbatim to the LLM as repair
// feedback, and positions make the repair actionable.
type ParseError struct {
	Line int
	Col  int
	Msg  string
	Src  string // the offending source line ("" when unavailable)
}

// NewParseError builds a positioned diagnostic.
func NewParseError(msg string, line, col int, src string) *ParseError {
	return &ParseError{Line: line, Col: col, Msg: msg, Src: src}
}

func (e *ParseError) Error() string {
	var sb strings.Builder
	if e.Line > 0 {
		fmt.Fprintf(&sb, "%d:%d: ", e.Line, e.Col)
	}
	fmt.Fprintf(&sb, "error: %s", e.Msg)
	if e.Src != "" {
		sb.WriteString("\n")
		sb.WriteString(e.Src)
		sb.WriteString("\n")
		for i := 1; i < e.Col; i++ {
			sb.WriteString(" ")
		}
		sb.WriteString("^")
	}
	return sb.String()
}

// forwardRef is a placeholder operand for a %name not yet defined at its use
// site; it is patched after the whole function body has been parsed.
type forwardRef struct {
	name string
	ty   ir.Type
}

func (r *forwardRef) Type() ir.Type { return r.ty }
func (r *forwardRef) Ident() string { return "%" + r.name }

type parser struct {
	toks  []token
	i     int
	lines []string

	// Per-function state.
	vals    map[string]ir.Value
	fwd     []*forwardRef
	nextNum int
}

// Parse parses an .ll module. Unrecognized top-level constructs (declares,
// attributes, metadata) are skipped; only define bodies are materialized.
func Parse(src string) (*ir.Module, error) {
	l := lex(src)
	p := &parser{toks: l.toks, lines: l.lines}
	m := &ir.Module{}
	for {
		t := p.peek()
		if t.kind == tEOF {
			break
		}
		if t.kind == tIdent && t.text == "define" {
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			m.Funcs = append(m.Funcs, f)
			continue
		}
		// Skip any other top-level token (declares, target lines, etc.).
		p.next()
	}
	if len(m.Funcs) == 0 {
		return nil, p.errAt(p.peek(), "expected at least one function definition")
	}
	for _, f := range m.Funcs {
		if err := ir.VerifyFunc(f); err != nil {
			return nil, &ParseError{Msg: err.Error()}
		}
	}
	return m, nil
}

// ParseFunc parses a module and returns its first function.
func ParseFunc(src string) (*ir.Func, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return m.Funcs[0], nil
}

// MustParseFunc is ParseFunc that panics on error; intended for tests and
// static registries.
func MustParseFunc(src string) *ir.Func {
	f, err := ParseFunc(src)
	if err != nil {
		panic(fmt.Sprintf("parser.MustParseFunc: %v\nsource:\n%s", err, src))
	}
	return f
}

func (p *parser) peek() token  { return p.toks[p.i] }
func (p *parser) peek2() token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) errAt(t token, format string, args ...any) error {
	srcLine := ""
	if t.line-1 >= 0 && t.line-1 < len(p.lines) {
		srcLine = p.lines[t.line-1]
	}
	return NewParseError(fmt.Sprintf(format, args...), t.line, t.col, srcLine)
}

func (p *parser) expectPunct(s string) error {
	t := p.peek()
	if t.kind == tPunct && t.text == s {
		p.next()
		return nil
	}
	return p.errAt(t, "expected '%s'", s)
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == tPunct && t.text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) acceptIdent(s string) bool {
	t := p.peek()
	if t.kind == tIdent && t.text == s {
		p.next()
		return true
	}
	return false
}

// parseType parses a first-class type.
func (p *parser) parseType() (ir.Type, error) {
	t := p.peek()
	switch {
	case t.kind == tIdent && len(t.text) > 1 && t.text[0] == 'i' && allDigits(t.text[1:]):
		w, _ := strconv.Atoi(t.text[1:])
		if w < 1 || w > 64 {
			return nil, p.errAt(t, "unsupported integer width i%d", w)
		}
		p.next()
		return ir.IntT(w), nil
	case t.kind == tIdent && t.text == "float":
		p.next()
		return ir.F32, nil
	case t.kind == tIdent && t.text == "double":
		p.next()
		return ir.F64, nil
	case t.kind == tIdent && t.text == "ptr":
		p.next()
		return ir.Ptr, nil
	case t.kind == tIdent && t.text == "void":
		p.next()
		return ir.Void, nil
	case t.kind == tIdent && t.text == "label":
		p.next()
		return ir.LabelType{}, nil
	case t.kind == tPunct && t.text == "<":
		p.next()
		nt := p.peek()
		if nt.kind != tInt {
			return nil, p.errAt(nt, "expected vector length")
		}
		n, _ := strconv.Atoi(nt.text)
		p.next()
		if !p.acceptIdent("x") {
			return nil, p.errAt(p.peek(), "expected 'x' in vector type")
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(">"); err != nil {
			return nil, err
		}
		return ir.VecT(n, elem), nil
	}
	return nil, p.errAt(t, "expected type")
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// parseValue parses an operand of the given type.
func (p *parser) parseValue(ty ir.Type) (ir.Value, error) {
	t := p.peek()
	switch {
	case t.kind == tLocal:
		p.next()
		if v, ok := p.vals[t.text]; ok {
			return v, nil
		}
		r := &forwardRef{name: t.text, ty: ty}
		p.fwd = append(p.fwd, r)
		return r, nil
	case t.kind == tInt:
		it, ok := ty.(ir.IntType)
		if !ok {
			return nil, p.errAt(t, "integer constant for non-integer type %s", ty)
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			// Very large unsigned patterns print as negative in LLVM, but
			// accept the raw u64 form too.
			u, uerr := strconv.ParseUint(t.text, 10, 64)
			if uerr != nil {
				return nil, p.errAt(t, "invalid integer literal")
			}
			v = int64(u)
		}
		p.next()
		return ir.CInt(it, v), nil
	case t.kind == tFloat:
		ft, ok := ty.(ir.FloatType)
		if !ok {
			return nil, p.errAt(t, "floating point constant for non-fp type %s", ty)
		}
		p.next()
		if strings.HasPrefix(t.text, "0x") || strings.HasPrefix(t.text, "0X") {
			bits, err := strconv.ParseUint(t.text[2:], 16, 64)
			if err != nil {
				return nil, p.errAt(t, "invalid hex float literal")
			}
			return ir.CFloat(ft, math.Float64frombits(bits)), nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errAt(t, "invalid float literal")
		}
		return ir.CFloat(ft, f), nil
	case t.kind == tIdent:
		switch t.text {
		case "true", "false":
			if !ir.Equal(ty, ir.I1) {
				return nil, p.errAt(t, "boolean constant for type %s", ty)
			}
			p.next()
			return ir.CBool(t.text == "true"), nil
		case "zeroinitializer":
			p.next()
			return &ir.Zero{Ty: ty}, nil
		case "undef":
			p.next()
			return &ir.Undef{Ty: ty}, nil
		case "poison":
			p.next()
			return &ir.PoisonVal{Ty: ty}, nil
		case "null":
			p.next()
			return &ir.Null{}, nil
		case "splat":
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			et, err := p.parseType()
			if err != nil {
				return nil, err
			}
			ev, err := p.parseValue(et)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			vt, ok := ty.(ir.VecType)
			if !ok {
				return nil, p.errAt(t, "splat constant for non-vector type %s", ty)
			}
			return &ir.Splat{Ty: vt, Elem: ev}, nil
		}
	case t.kind == tPunct && t.text == "<":
		vt, ok := ty.(ir.VecType)
		if !ok {
			return nil, p.errAt(t, "vector constant for non-vector type %s", ty)
		}
		p.next()
		var elems []ir.Value
		for {
			et, err := p.parseType()
			if err != nil {
				return nil, err
			}
			ev, err := p.parseValue(et)
			if err != nil {
				return nil, err
			}
			elems = append(elems, ev)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(">"); err != nil {
			return nil, err
		}
		if len(elems) != vt.N {
			return nil, p.errAt(t, "vector constant has %d elements, type needs %d", len(elems), vt.N)
		}
		return &ir.ConstVec{Ty: vt, Elems: elems}, nil
	}
	return nil, p.errAt(t, "expected value")
}

// parseTypedValue parses "type value".
func (p *parser) parseTypedValue() (ir.Value, error) {
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	return p.parseValue(ty)
}

func (p *parser) define(name string, v ir.Value) {
	p.vals[name] = v
}

func (p *parser) freshName() string {
	s := strconv.Itoa(p.nextNum)
	p.nextNum++
	return s
}

func (p *parser) parseFunc() (*ir.Func, error) {
	p.vals = make(map[string]ir.Value)
	p.fwd = nil
	p.nextNum = 0
	p.next() // "define"
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	gt := p.peek()
	if gt.kind != tGlobal {
		return nil, p.errAt(gt, "expected function name")
	}
	p.next()
	f := &ir.Func{Name: gt.text, Ret: ret}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if !p.acceptPunct(")") {
		for {
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			name := ""
			if nt := p.peek(); nt.kind == tLocal {
				p.next()
				name = nt.text
			} else {
				name = p.freshName()
			}
			if allDigits(name) {
				if n, _ := strconv.Atoi(name); n >= p.nextNum {
					p.nextNum = n + 1
				}
			}
			prm := &ir.Param{Nm: name, Ty: pt}
			f.Params = append(f.Params, prm)
			p.define(name, prm)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	cur := &ir.Block{Name: "entry"}
	f.Blocks = append(f.Blocks, cur)
	started := false
	for {
		t := p.peek()
		if t.kind == tPunct && t.text == "}" {
			p.next()
			break
		}
		if t.kind == tEOF {
			return nil, p.errAt(t, "expected instruction or '}'")
		}
		// Block label: ident followed by ':'.
		if t.kind == tIdent && p.peek2().kind == tPunct && p.peek2().text == ":" {
			p.next()
			p.next()
			if !started && len(cur.Instrs) == 0 {
				cur.Name = t.text
			} else {
				cur = &ir.Block{Name: t.text}
				f.Blocks = append(f.Blocks, cur)
			}
			started = true
			continue
		}
		in, err := p.parseInstr()
		if err != nil {
			return nil, err
		}
		started = true
		cur.Instrs = append(cur.Instrs, in)
	}
	if err := p.patchForwardRefs(f); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) patchForwardRefs(f *ir.Func) error {
	if len(p.fwd) == 0 {
		return nil
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for ai, a := range in.Args {
				if r, ok := a.(*forwardRef); ok {
					v, found := p.vals[r.name]
					if !found {
						// Mimic LLVM's message for undefined locals.
						return fmt.Errorf("error: use of undefined value '%%%s'", r.name)
					}
					in.Args[ai] = v
				}
			}
		}
	}
	return nil
}

var fastMathFlags = map[string]bool{
	"nnan": true, "ninf": true, "nsz": true, "arcp": true,
	"contract": true, "afn": true, "reassoc": true, "fast": true,
}

func (p *parser) skipFastMath() {
	for {
		t := p.peek()
		if t.kind == tIdent && fastMathFlags[t.text] {
			p.next()
			continue
		}
		return
	}
}

// parseInstr parses one instruction (with optional "%name =" result).
func (p *parser) parseInstr() (*ir.Instr, error) {
	name := ""
	named := false
	if t := p.peek(); t.kind == tLocal && p.peek2().kind == tPunct && p.peek2().text == "=" {
		p.next()
		p.next()
		name = t.text
		named = true
	}
	opTok := p.peek()
	if opTok.kind != tIdent {
		return nil, p.errAt(opTok, "expected instruction opcode")
	}
	in, err := p.parseInstrBody(opTok)
	if err != nil {
		return nil, err
	}
	if in.HasResult() {
		if !named {
			name = p.freshName()
		} else if allDigits(name) {
			if n, _ := strconv.Atoi(name); n >= p.nextNum {
				p.nextNum = n + 1
			}
		}
		in.Nm = name
		p.define(name, in)
	} else if named {
		return nil, p.errAt(opTok, "instruction '%s' produces no result", opTok.text)
	}
	return in, nil
}

func (p *parser) parseInstrBody(opTok token) (*ir.Instr, error) {
	switch opTok.text {
	case "add", "sub", "mul", "udiv", "sdiv", "urem", "srem",
		"shl", "lshr", "ashr", "and", "or", "xor":
		p.next()
		op := ir.OpcodeByName(opTok.text)
		var flags ir.Flags
		for {
			switch {
			case p.acceptIdent("nuw"):
				flags |= ir.NUW
			case p.acceptIdent("nsw"):
				flags |= ir.NSW
			case p.acceptIdent("exact"):
				flags |= ir.Exact
			case p.acceptIdent("disjoint"):
				flags |= ir.Disjoint
			default:
				goto flagsDone
			}
		}
	flagsDone:
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		a, err := p.parseValue(ty)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		b, err := p.parseValue(ty)
		if err != nil {
			return nil, err
		}
		return &ir.Instr{Op: op, Ty: ty, Args: []ir.Value{a, b}, Flags: flags}, nil

	case "fadd", "fsub", "fmul", "fdiv":
		p.next()
		p.skipFastMath()
		op := ir.OpcodeByName(opTok.text)
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		a, err := p.parseValue(ty)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		b, err := p.parseValue(ty)
		if err != nil {
			return nil, err
		}
		return &ir.Instr{Op: op, Ty: ty, Args: []ir.Value{a, b}}, nil

	case "fneg":
		p.next()
		p.skipFastMath()
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		a, err := p.parseValue(ty)
		if err != nil {
			return nil, err
		}
		return &ir.Instr{Op: ir.OpFNeg, Ty: ty, Args: []ir.Value{a}}, nil

	case "icmp":
		p.next()
		pt := p.peek()
		pred := ir.IPredByName(pt.text)
		if pt.kind != tIdent || pred == ir.IPredInvalid {
			return nil, p.errAt(pt, "expected icmp predicate")
		}
		p.next()
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		a, err := p.parseValue(ty)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		b, err := p.parseValue(ty)
		if err != nil {
			return nil, err
		}
		return &ir.Instr{Op: ir.OpICmp, Ty: ir.WithLanes(ty, ir.I1), Args: []ir.Value{a, b}, IPredV: pred}, nil

	case "fcmp":
		p.next()
		p.skipFastMath()
		pt := p.peek()
		pred := ir.FPredByName(pt.text)
		if pt.kind != tIdent || pred == ir.FPredInvalid {
			return nil, p.errAt(pt, "expected fcmp predicate")
		}
		p.next()
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		a, err := p.parseValue(ty)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		b, err := p.parseValue(ty)
		if err != nil {
			return nil, err
		}
		return &ir.Instr{Op: ir.OpFCmp, Ty: ir.WithLanes(ty, ir.I1), Args: []ir.Value{a, b}, FPredV: pred}, nil

	case "select":
		p.next()
		p.skipFastMath()
		c, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		tv, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		fv, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		return &ir.Instr{Op: ir.OpSelect, Ty: tv.Type(), Args: []ir.Value{c, tv, fv}}, nil

	case "freeze":
		p.next()
		v, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		return &ir.Instr{Op: ir.OpFreeze, Ty: v.Type(), Args: []ir.Value{v}}, nil

	case "zext", "sext", "trunc", "fpext", "fptrunc", "sitofp", "uitofp",
		"fptosi", "fptoui", "bitcast", "ptrtoint", "inttoptr":
		p.next()
		op := ir.OpcodeByName(opTok.text)
		var flags ir.Flags
		for {
			switch {
			case op == ir.OpTrunc && p.acceptIdent("nuw"):
				flags |= ir.NUW
			case op == ir.OpTrunc && p.acceptIdent("nsw"):
				flags |= ir.NSW
			case op == ir.OpZExt && p.acceptIdent("nneg"):
				flags |= ir.NNeg
			default:
				goto convFlagsDone
			}
		}
	convFlagsDone:
		v, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if !p.acceptIdent("to") {
			return nil, p.errAt(p.peek(), "expected 'to' in conversion")
		}
		to, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return &ir.Instr{Op: op, Ty: to, Args: []ir.Value{v}, Flags: flags}, nil

	case "tail", "call":
		var flags ir.Flags
		if opTok.text == "tail" {
			p.next()
			flags |= ir.Tail
			if !p.acceptIdent("call") {
				return nil, p.errAt(p.peek(), "expected 'call' after 'tail'")
			}
		} else {
			p.next()
		}
		p.skipFastMath()
		ret, err := p.parseType()
		if err != nil {
			return nil, err
		}
		ct := p.peek()
		if ct.kind != tGlobal {
			return nil, p.errAt(ct, "expected callee name")
		}
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var args []ir.Value
		if !p.acceptPunct(")") {
			for {
				a, err := p.parseTypedValue()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.acceptPunct(",") {
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		return &ir.Instr{Op: ir.OpCall, Ty: ret, Args: args, Callee: ct.text, Flags: flags}, nil

	case "getelementptr":
		p.next()
		var flags ir.Flags
		for {
			switch {
			case p.acceptIdent("inbounds"):
				flags |= ir.Inbounds
			case p.acceptIdent("nuw"):
				flags |= ir.NUW
			case p.acceptIdent("nusw"):
				// Accepted and folded into inbounds-like handling.
				flags |= ir.NUW
			default:
				goto gepFlagsDone
			}
		}
	gepFlagsDone:
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		base, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		args := []ir.Value{base}
		for p.acceptPunct(",") {
			idx, err := p.parseTypedValue()
			if err != nil {
				return nil, err
			}
			args = append(args, idx)
		}
		if len(args) < 2 {
			return nil, p.errAt(p.peek(), "expected getelementptr index")
		}
		return &ir.Instr{Op: ir.OpGEP, Ty: ir.Ptr, Args: args, ElemTy: elem, Flags: flags}, nil

	case "load":
		p.next()
		p.acceptIdent("volatile")
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		ptr, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		align := 0
		if p.acceptPunct(",") {
			if !p.acceptIdent("align") {
				return nil, p.errAt(p.peek(), "expected 'align'")
			}
			at := p.peek()
			if at.kind != tInt {
				return nil, p.errAt(at, "expected alignment value")
			}
			align, _ = strconv.Atoi(at.text)
			p.next()
		}
		return &ir.Instr{Op: ir.OpLoad, Ty: ty, Args: []ir.Value{ptr}, Align: align}, nil

	case "store":
		p.next()
		p.acceptIdent("volatile")
		v, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		ptr, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		align := 0
		if p.acceptPunct(",") {
			if !p.acceptIdent("align") {
				return nil, p.errAt(p.peek(), "expected 'align'")
			}
			at := p.peek()
			if at.kind != tInt {
				return nil, p.errAt(at, "expected alignment value")
			}
			align, _ = strconv.Atoi(at.text)
			p.next()
		}
		return &ir.Instr{Op: ir.OpStore, Ty: ir.Void, Args: []ir.Value{v, ptr}, Align: align}, nil

	case "extractelement":
		p.next()
		vec, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		idx, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		vt, ok := vec.Type().(ir.VecType)
		if !ok {
			return nil, p.errAt(opTok, "extractelement requires a vector operand")
		}
		return &ir.Instr{Op: ir.OpExtractElt, Ty: vt.Elem, Args: []ir.Value{vec, idx}}, nil

	case "insertelement":
		p.next()
		vec, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		elem, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		idx, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		return &ir.Instr{Op: ir.OpInsertElt, Ty: vec.Type(), Args: []ir.Value{vec, elem, idx}}, nil

	case "shufflevector":
		p.next()
		a, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		b, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		mask, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		mt, ok := mask.Type().(ir.VecType)
		if !ok {
			return nil, p.errAt(opTok, "shufflevector mask must be a vector")
		}
		at := a.Type().(ir.VecType)
		return &ir.Instr{Op: ir.OpShuffle, Ty: ir.VecT(mt.N, at.Elem), Args: []ir.Value{a, b, mask}}, nil

	case "phi":
		p.next()
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		var vals []ir.Value
		var labels []string
		for {
			if err := p.expectPunct("["); err != nil {
				return nil, err
			}
			v, err := p.parseValue(ty)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
			lt := p.peek()
			if lt.kind != tLocal {
				return nil, p.errAt(lt, "expected phi incoming label")
			}
			p.next()
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			vals = append(vals, v)
			labels = append(labels, lt.text)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		return &ir.Instr{Op: ir.OpPhi, Ty: ty, Args: vals, Labels: labels}, nil

	case "br":
		p.next()
		if p.acceptIdent("label") {
			lt := p.peek()
			if lt.kind != tLocal {
				return nil, p.errAt(lt, "expected branch target label")
			}
			p.next()
			return &ir.Instr{Op: ir.OpBr, Ty: ir.Void, Labels: []string{lt.text}}, nil
		}
		cond, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if !p.acceptIdent("label") {
			return nil, p.errAt(p.peek(), "expected 'label'")
		}
		t1 := p.peek()
		if t1.kind != tLocal {
			return nil, p.errAt(t1, "expected branch target label")
		}
		p.next()
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if !p.acceptIdent("label") {
			return nil, p.errAt(p.peek(), "expected 'label'")
		}
		t2 := p.peek()
		if t2.kind != tLocal {
			return nil, p.errAt(t2, "expected branch target label")
		}
		p.next()
		return &ir.Instr{Op: ir.OpBr, Ty: ir.Void, Args: []ir.Value{cond}, Labels: []string{t1.text, t2.text}}, nil

	case "ret":
		p.next()
		if p.acceptIdent("void") {
			return &ir.Instr{Op: ir.OpRet, Ty: ir.Void}, nil
		}
		v, err := p.parseTypedValue()
		if err != nil {
			return nil, err
		}
		return &ir.Instr{Op: ir.OpRet, Ty: ir.Void, Args: []ir.Value{v}}, nil

	case "unreachable":
		p.next()
		return &ir.Instr{Op: ir.OpUnreachable, Ty: ir.Void}, nil
	}
	return nil, p.errAt(opTok, "expected instruction opcode")
}
