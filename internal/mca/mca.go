// Package mca is a static machine-code performance estimator in the spirit
// of llvm-mca: given a straight-line instruction window, it reports the
// instruction count and an estimated total cycle count for a fixed number of
// iterations on a simple out-of-order CPU model.
//
// The paper's interestingness check (§3.3) compares the original and
// candidate windows on exactly two metrics — instruction count and llvm-mca
// "Total Cycles" on a btver2-like target — so the model only needs to rank
// windows, not to predict absolute performance. The estimator models three
// bounds and takes the max, which is how llvm-mca's steady state behaves for
// windows without loop-carried dependencies:
//
//	cyclesPerIter = max(resource pressure, uops / dispatch width)
//	total         = iterations * cyclesPerIter + pipeline fill (critical path)
package mca

import (
	"math"

	"repro/internal/ir"
)

// InstClass buckets opcodes by execution resource.
type InstClass int

// Instruction classes.
const (
	ClassALU InstClass = iota
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassFPAdd
	ClassFPMul
	ClassFPDiv
	ClassFCmp
	ClassMinMax
	ClassCast
	ClassSelect
	ClassShuffle
	ClassFree // constants-only artifacts; never emitted
)

// Cost is the latency / reciprocal-throughput / micro-op triple of a class.
type Cost struct {
	Latency     int
	RThroughput float64
	MicroOps    int
}

// CPUModel is a named cost table.
type CPUModel struct {
	Name          string
	DispatchWidth int
	Costs         map[InstClass]Cost
	// VectorFactor scales throughput cost for each 128 bits of vector width
	// beyond the first (AMD Jaguar splits 256-bit ops).
	VectorFactor float64
}

// BTVer2 approximates AMD Jaguar (the btver2 target the paper uses with
// llvm-mca). Values follow the published instruction tables' orders of
// magnitude; only relative ranking matters for the interestingness check.
func BTVer2() *CPUModel {
	return &CPUModel{
		Name:          "btver2",
		DispatchWidth: 2,
		VectorFactor:  2,
		Costs: map[InstClass]Cost{
			ClassALU:     {Latency: 1, RThroughput: 0.5, MicroOps: 1},
			ClassMul:     {Latency: 3, RThroughput: 1, MicroOps: 1},
			ClassDiv:     {Latency: 25, RThroughput: 25, MicroOps: 2},
			ClassLoad:    {Latency: 5, RThroughput: 1, MicroOps: 1},
			ClassStore:   {Latency: 3, RThroughput: 1, MicroOps: 1},
			ClassFPAdd:   {Latency: 3, RThroughput: 1, MicroOps: 1},
			ClassFPMul:   {Latency: 2, RThroughput: 1, MicroOps: 1},
			ClassFPDiv:   {Latency: 19, RThroughput: 19, MicroOps: 1},
			ClassFCmp:    {Latency: 2, RThroughput: 1, MicroOps: 1},
			ClassMinMax:  {Latency: 1, RThroughput: 0.5, MicroOps: 1},
			ClassCast:    {Latency: 1, RThroughput: 0.5, MicroOps: 1},
			ClassSelect:  {Latency: 1, RThroughput: 0.5, MicroOps: 1},
			ClassShuffle: {Latency: 1, RThroughput: 0.5, MicroOps: 1},
		},
	}
}

// Classify buckets an instruction.
func Classify(in *ir.Instr) InstClass {
	switch in.Op {
	case ir.OpMul:
		return ClassMul
	case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
		return ClassDiv
	case ir.OpLoad:
		return ClassLoad
	case ir.OpStore:
		return ClassStore
	case ir.OpFAdd, ir.OpFSub, ir.OpFNeg:
		return ClassFPAdd
	case ir.OpFMul:
		return ClassFPMul
	case ir.OpFDiv:
		return ClassFPDiv
	case ir.OpFCmp:
		return ClassFCmp
	case ir.OpSelect:
		return ClassSelect
	case ir.OpCall:
		switch ir.IntrinsicBase(in.Callee) {
		case "umin", "umax", "smin", "smax", "abs":
			return ClassMinMax
		case "fshl", "fshr", "bswap", "bitreverse", "ctpop", "ctlz", "cttz":
			return ClassALU
		case "fabs", "minnum", "maxnum":
			return ClassFPAdd
		default:
			return ClassALU
		}
	case ir.OpZExt, ir.OpSExt, ir.OpTrunc, ir.OpBitcast, ir.OpFPExt,
		ir.OpFPTrunc, ir.OpSIToFP, ir.OpUIToFP, ir.OpFPToSI, ir.OpFPToUI,
		ir.OpPtrToInt, ir.OpIntToPtr:
		return ClassCast
	case ir.OpExtractElt, ir.OpInsertElt, ir.OpShuffle:
		return ClassShuffle
	default:
		return ClassALU
	}
}

// Report is the analysis result.
type Report struct {
	Model        string
	Iterations   int
	Instructions int     // static instruction count (terminators excluded)
	MicroOps     int     // per iteration
	TotalCycles  int     // estimated cycles for Iterations iterations
	RThroughput  float64 // block reciprocal throughput (cycles/iteration)
	CriticalPath int     // latency of the longest dependency chain
}

// DefaultIterations matches llvm-mca's default of 100 iterations.
const DefaultIterations = 100

// Analyze estimates the performance of f's straight-line body on the model.
// GEPs fold into addressing modes and are free, as llvm-mca reports for x86.
func Analyze(f *ir.Func, model *CPUModel) Report {
	return AnalyzeIterations(f, model, DefaultIterations)
}

// AnalyzeIterations is Analyze with an explicit iteration count.
func AnalyzeIterations(f *ir.Func, model *CPUModel, iterations int) Report {
	rep := Report{Model: model.Name, Iterations: iterations}
	depth := make(map[ir.Value]int) // finish time of each value's def chain
	var resource float64
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.IsTerminator() || in.Op == ir.OpPhi {
				continue
			}
			if in.Op == ir.OpGEP {
				// Address computation folds into the memory operation.
				start := 0
				for _, a := range in.Args {
					if d, ok := depth[a]; ok && d > start {
						start = d
					}
				}
				depth[in] = start
				continue
			}
			rep.Instructions++
			cls := Classify(in)
			cost := model.Costs[cls]
			scale := 1.0
			if v, ok := in.Ty.(ir.VecType); ok {
				bits := v.N * ir.ScalarBits(v.Elem)
				if bits > 128 {
					scale = model.VectorFactor * float64((bits+127)/128) / 2
				}
			}
			rep.MicroOps += cost.MicroOps
			resource += cost.RThroughput * scale
			start := 0
			for _, a := range in.Args {
				if d, ok := depth[a]; ok && d > start {
					start = d
				}
			}
			finish := start + cost.Latency
			depth[in] = finish
			if finish > rep.CriticalPath {
				rep.CriticalPath = finish
			}
		}
	}
	dispatchBound := float64(rep.MicroOps) / float64(model.DispatchWidth)
	perIter := math.Max(resource, dispatchBound)
	rep.RThroughput = perIter
	rep.TotalCycles = int(math.Ceil(float64(iterations)*perIter)) + rep.CriticalPath
	return rep
}
