package mca

import (
	"testing"

	"repro/internal/parser"
)

func TestFewerInstructionsFewerCycles(t *testing.T) {
	src := parser.MustParseFunc(`define i8 @src(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`)
	tgt := parser.MustParseFunc(`define i8 @tgt(i32 %0) {
  %2 = tail call i32 @llvm.smax.i32(i32 %0, i32 0)
  %3 = tail call i32 @llvm.umin.i32(i32 %2, i32 255)
  %4 = trunc nuw i32 %3 to i8
  ret i8 %4
}`)
	m := BTVer2()
	rs := Analyze(src, m)
	rt := Analyze(tgt, m)
	if rs.Instructions != 4 || rt.Instructions != 3 {
		t.Fatalf("instruction counts: src=%d tgt=%d", rs.Instructions, rt.Instructions)
	}
	if rt.TotalCycles >= rs.TotalCycles {
		t.Fatalf("tgt should be faster: src=%d tgt=%d cycles", rs.TotalCycles, rt.TotalCycles)
	}
}

func TestDivisionDominatesCost(t *testing.T) {
	div := parser.MustParseFunc(`define i32 @f(i32 %x, i32 %y) {
  %r = udiv i32 %x, %y
  ret i32 %r
}`)
	add := parser.MustParseFunc(`define i32 @f(i32 %x, i32 %y) {
  %r = add i32 %x, %y
  ret i32 %r
}`)
	m := BTVer2()
	if Analyze(div, m).TotalCycles <= 5*Analyze(add, m).TotalCycles {
		t.Fatal("division should be far more expensive than addition")
	}
}

func TestGEPIsFree(t *testing.T) {
	withGEP := parser.MustParseFunc(`define i32 @f(ptr %p, i64 %i) {
  %g = getelementptr i32, ptr %p, i64 %i
  %v = load i32, ptr %g
  ret i32 %v
}`)
	plain := parser.MustParseFunc(`define i32 @f(ptr %p) {
  %v = load i32, ptr %p
  ret i32 %v
}`)
	m := BTVer2()
	a, b := Analyze(withGEP, m), Analyze(plain, m)
	if a.Instructions != b.Instructions {
		t.Fatalf("GEP should not count as an instruction: %d vs %d", a.Instructions, b.Instructions)
	}
	if a.TotalCycles != b.TotalCycles {
		t.Fatalf("GEP should be free: %d vs %d cycles", a.TotalCycles, b.TotalCycles)
	}
}

func TestCriticalPathReflectsDependencies(t *testing.T) {
	chain := parser.MustParseFunc(`define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  %b = add i32 %a, 2
  %c = add i32 %b, 3
  %d = add i32 %c, 4
  ret i32 %d
}`)
	wide := parser.MustParseFunc(`define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  %b = add i32 %x, 2
  %c = add i32 %x, 3
  %d = add i32 %x, 4
  ret i32 %d
}`)
	m := BTVer2()
	rc, rw := Analyze(chain, m), Analyze(wide, m)
	if rc.CriticalPath <= rw.CriticalPath {
		t.Fatalf("dependency chain should have a longer critical path: %d vs %d",
			rc.CriticalPath, rw.CriticalPath)
	}
}

func TestWideVectorsCostMore(t *testing.T) {
	narrow := parser.MustParseFunc(`define <4 x i32> @f(<4 x i32> %v) {
  %r = add <4 x i32> %v, %v
  ret <4 x i32> %r
}`)
	wide := parser.MustParseFunc(`define <8 x i32> @f(<8 x i32> %v) {
  %r = add <8 x i32> %v, %v
  ret <8 x i32> %r
}`)
	m := BTVer2()
	if Analyze(wide, m).RThroughput <= Analyze(narrow, m).RThroughput {
		t.Fatal("256-bit vector ops should have higher reciprocal throughput")
	}
}

func TestEmptyBodyZeroCost(t *testing.T) {
	f := parser.MustParseFunc(`define i32 @f(i32 %x) { ret i32 %x }`)
	r := Analyze(f, BTVer2())
	if r.Instructions != 0 || r.TotalCycles != 0 {
		t.Fatalf("empty body should be free: %+v", r)
	}
}
