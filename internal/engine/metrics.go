package engine

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/alive"
	"repro/internal/llm"
	"repro/internal/wasm"
)

// StageMetrics is a snapshot of one pipeline stage's counters.
type StageMetrics struct {
	Invocations int
	// Seconds is the stage's accumulated latency: virtual seconds for the
	// propose stage (the provider's throughput model), measured wall seconds
	// for the local preprocess/filter/verify stages.
	Seconds float64
}

// Stats aggregates a run. All methods are safe to call concurrently with a
// run in flight; numbers are final once the result channel has closed. An
// Engine accumulates stats across runs until Reset is called.
type Stats struct {
	mu        sync.Mutex
	sequences int
	byOutcome map[Outcome]int
	usage     llm.Usage
	stages    map[string]*StageMetrics
	cacheHits int
	storeHits int
	ruleHits  map[string]int
	learned   int
	panics    int // sequences recovered from a worker panic (quarantined)
	degraded  int // sequences answered by the KB proposer (circuit open)

	// Tiered-verification counters (see alive.TierStats): how many refuted
	// candidates each scheduler tier killed, and the total input vectors
	// the verify stage executed, split by execution path (lane-batched
	// versus per-vector fallback).
	poolKills, specialKills, randomKills int
	verifyExecs                          int
	batchedExecs, fallbackExecs          int

	// Lift-coverage counters (wasm frontend): how many functions the wasm
	// lifter saw across submitted modules, how many made it into the
	// engine, and why the rest were skipped.
	lift wasm.LiftStats
}

// TierKills is a snapshot of the per-tier kill counters of the verify
// stage's scheduler.
type TierKills struct {
	Pool    int // tier 0: replayed counterexamples from the campaign pool
	Special int // tier 1: exhaustive/corner/poison phases
	Random  int // tier 2: random sampling
}

func newStats() *Stats {
	return &Stats{
		byOutcome: make(map[Outcome]int),
		stages:    make(map[string]*StageMetrics),
		ruleHits:  make(map[string]int),
	}
}

func (s *Stats) recordResult(r Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sequences++
	s.byOutcome[r.Outcome]++
	s.usage.Add(r.Usage)
	for id, n := range r.RuleHits {
		s.ruleHits[id] += n
	}
	if r.Learned != nil {
		s.learned++
	}
}

func (s *Stats) recordStage(name string, seconds float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.stages[name]
	if m == nil {
		m = &StageMetrics{}
		s.stages[name] = m
	}
	m.Invocations++
	m.Seconds += seconds
}

func (s *Stats) recordCacheHit() {
	s.mu.Lock()
	s.cacheHits++
	s.mu.Unlock()
}

func (s *Stats) recordStoreHit() {
	s.mu.Lock()
	s.storeHits++
	s.mu.Unlock()
}

func (s *Stats) recordPanic() {
	s.mu.Lock()
	s.panics++
	s.mu.Unlock()
}

func (s *Stats) recordDegraded() {
	s.mu.Lock()
	s.degraded++
	s.mu.Unlock()
}

// recordVerify tallies one actual (non-cached) verification: the tier that
// killed the candidate (alive.TierNone..TierRandom), how many input vectors
// ran, and how they split between the lane-batched path and the per-vector
// fallback.
func (s *Stats) recordVerify(checked int, tiers alive.TierStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.verifyExecs += checked
	s.batchedExecs += tiers.Batched
	s.fallbackExecs += tiers.Fallback
	switch tiers.KillTier {
	case alive.TierPool:
		s.poolKills++
	case alive.TierSpecial:
		s.specialKills++
	case alive.TierRandom:
		s.randomKills++
	}
}

// RecordLift folds one module's wasm lift coverage into the run's stats.
// The wasm sources call it as they lift; services submitting lifted
// functions directly call it themselves.
func (s *Stats) RecordLift(st wasm.LiftStats) {
	s.mu.Lock()
	s.lift.Merge(st)
	s.mu.Unlock()
}

// LiftCoverage returns a copy of the accumulated wasm lift-coverage
// counters: functions seen, lifted, skipped, and the per-reason skip tally.
// All zero when no wasm module fed this run.
func (s *Stats) LiftCoverage() wasm.LiftStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := wasm.LiftStats{}
	out.Merge(s.lift)
	return out
}

// Sequences is the number of sequences that have completed the loop.
func (s *Stats) Sequences() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sequences
}

// Outcome returns the tally for one outcome.
func (s *Stats) Outcome(o Outcome) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byOutcome[o]
}

// ByOutcome returns a copy of the outcome tallies.
func (s *Stats) ByOutcome() map[Outcome]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Outcome]int, len(s.byOutcome))
	for k, v := range s.byOutcome {
		out[k] = v
	}
	return out
}

// Usage returns the accumulated provider usage.
func (s *Stats) Usage() llm.Usage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usage
}

// Stage returns a snapshot of one stage's metrics (see StageNames).
func (s *Stats) Stage(name string) StageMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.stages[name]; m != nil {
		return *m
	}
	return StageMetrics{}
}

// RuleHits returns a copy of the per-rule attribution tallies: how often
// each registry rule (keyed by rule ID) closed a verified finding.
func (s *Stats) RuleHits() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.ruleHits))
	for k, v := range s.ruleHits {
		out[k] = v
	}
	return out
}

// VerifyCacheHits is the number of verifications skipped by the cache.
func (s *Stats) VerifyCacheHits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cacheHits
}

// StoreHits is the number of sequences short-circuited by Config.Lookup —
// results served from a persistent store instead of recomputed.
func (s *Stats) StoreHits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.storeHits
}

// Panics is the number of sequences recovered from a worker panic — each
// one produced an OutcomePanicked result and a quarantine entry
// (Engine.Quarantined) instead of crashing the campaign.
func (s *Stats) Panics() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.panics
}

// DegradedSeqs is the number of sequences answered by the knowledge-base
// proposer while the provider's circuit breaker was open.
func (s *Stats) DegradedSeqs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// TierKills returns how many refuted candidates each verification tier
// killed (actual verifications only; cache hits don't re-count).
func (s *Stats) TierKills() TierKills {
	s.mu.Lock()
	defer s.mu.Unlock()
	return TierKills{Pool: s.poolKills, Special: s.specialKills, Random: s.randomKills}
}

// VerifyExecs is the total number of input vectors the verify stage
// executed across all verifications.
func (s *Stats) VerifyExecs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.verifyExecs
}

// BatchExecs splits VerifyExecs by execution path: vectors run on the
// lane-batched interpreter versus the per-vector fallback (tier-0 replays
// and non-batchable programs). batched+fallback == VerifyExecs.
func (s *Stats) BatchExecs() (batched, fallback int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batchedExecs, s.fallbackExecs
}

// BatchCoverage is the fraction of verify executions that ran lane-batched,
// in [0, 1]; it reports 1 when nothing has run yet.
func (s *Stats) BatchCoverage() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.verifyExecs == 0 {
		return 1
	}
	return float64(s.batchedExecs) / float64(s.verifyExecs)
}

// LearnedFindings is the number of Found results backed by a learned rule
// (Config.Learn). Distinct rules are on Engine.Learned; this counts results.
func (s *Stats) LearnedFindings() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.learned
}

// Reset clears every counter (typically between runs of a reused Engine).
func (s *Stats) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sequences = 0
	s.byOutcome = make(map[Outcome]int)
	s.usage = llm.Usage{}
	s.stages = make(map[string]*StageMetrics)
	s.cacheHits = 0
	s.storeHits = 0
	s.ruleHits = make(map[string]int)
	s.learned = 0
	s.panics = 0
	s.degraded = 0
	s.poolKills, s.specialKills, s.randomKills = 0, 0, 0
	s.verifyExecs = 0
	s.batchedExecs, s.fallbackExecs = 0, 0
	s.lift = wasm.LiftStats{}
}

// Print renders a human-readable summary of the run.
func (s *Stats) Print(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(w, "sequences: %d\n", s.sequences)
	outs := make([]string, 0, len(s.byOutcome))
	for o := range s.byOutcome {
		outs = append(outs, string(o))
	}
	sort.Strings(outs)
	for _, o := range outs {
		fmt.Fprintf(w, "  %-14s %d\n", o, s.byOutcome[Outcome(o)])
	}
	fmt.Fprintf(w, "usage: %d in / %d out tokens, %.1f virtual s, $%.4f\n",
		s.usage.InputTokens, s.usage.OutputTokens, s.usage.VirtualSeconds, s.usage.CostUSD)
	for _, name := range StageNames() {
		if m := s.stages[name]; m != nil {
			fmt.Fprintf(w, "stage %-11s %6d calls, %8.2fs\n", name, m.Invocations, m.Seconds)
		}
	}
	if s.cacheHits > 0 {
		fmt.Fprintf(w, "verify cache hits: %d\n", s.cacheHits)
	}
	if s.storeHits > 0 {
		fmt.Fprintf(w, "store hits (results served from a prior campaign): %d\n", s.storeHits)
	}
	if s.verifyExecs > 0 {
		fmt.Fprintf(w, "verify executions: %d vectors (kills: pool %d, special %d, random %d)\n",
			s.verifyExecs, s.poolKills, s.specialKills, s.randomKills)
		fmt.Fprintf(w, "batch coverage: %.1f%% (%d batched, %d per-vector fallback)\n",
			100*float64(s.batchedExecs)/float64(s.verifyExecs), s.batchedExecs, s.fallbackExecs)
	}
	if s.lift.Funcs > 0 {
		fmt.Fprintf(w, "wasm lift coverage: %s\n", s.lift.String())
	}
	if s.panics > 0 {
		fmt.Fprintf(w, "panics recovered (windows quarantined): %d\n", s.panics)
	}
	if s.degraded > 0 {
		fmt.Fprintf(w, "degraded sequences (KB proposer, circuit open): %d\n", s.degraded)
	}
	if s.learned > 0 {
		fmt.Fprintf(w, "findings backing learned rules: %d\n", s.learned)
	}
	if len(s.ruleHits) > 0 {
		fmt.Fprintln(w, "rule attribution (verified findings):")
		ids := make([]string, 0, len(s.ruleHits))
		for id := range s.ruleHits {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Fprintf(w, "  %-28s %d\n", id, s.ruleHits[id])
		}
	}
}
