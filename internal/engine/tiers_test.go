package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/alive"
	"repro/internal/llm"
	"repro/internal/parser"
)

// TestEngineTierKillStats pins the campaign-level wiring of the tiered
// scheduler: the engine installs a counterexample pool beside its program
// cache, refuted candidates deposit into it, and Stats aggregates per-tier
// kill counters and verify executions.
func TestEngineTierKillStats(t *testing.T) {
	pair := clampCase()
	src := parser.MustParseFunc(pair.Src)
	sim := calibratedSim(t, "GPT-4.1", src, llm.Calibration{Minus: 1, Plus: 4})
	e := New(sim, Config{Verify: alive.Options{Samples: 512, Seed: 5}})
	if e.CEPool() == nil {
		t.Fatal("engine must install a campaign counterexample pool")
	}
	refuted := 0
	for round := 0; round < 20; round++ {
		res := e.OptimizeSeq(context.Background(), src, round)
		for _, att := range res.Attempts {
			// A parsed attempt whose feedback is a counterexample was
			// refuted mid-round (the round may still end Found).
			if att.Parsed && strings.HasPrefix(att.Feedback, "Transformation doesn't verify") {
				refuted++
			}
		}
	}
	if refuted == 0 {
		t.Fatal("calibration 1/4 over 20 rounds should refute some candidates")
	}
	kills := e.stats.TierKills()
	if kills.Pool+kills.Special+kills.Random == 0 {
		t.Fatalf("refutations not attributed to any tier: %+v", kills)
	}
	if e.stats.VerifyExecs() == 0 {
		t.Fatal("verify executions not recorded")
	}
	batched, fallback := e.stats.BatchExecs()
	if batched+fallback != e.stats.VerifyExecs() {
		t.Fatalf("batched %d + fallback %d != verify execs %d",
			batched, fallback, e.stats.VerifyExecs())
	}
	if cov := e.stats.BatchCoverage(); cov < 0.95 {
		t.Fatalf("batch coverage %.3f, want >0.95 (clamp candidates are all batchable)", cov)
	}
	if e.CEPool().Stats().Deposits == 0 {
		t.Fatal("refuting inputs not deposited into the campaign pool")
	}
	// The generalize sweep gets its own campaign pool: sweep deposits
	// include vectors rescaled from other widths, which are not in any
	// window's generated sequence — sharing them with the verify stage
	// would make verdicts scheduling-dependent.
	if e.cfg.Generalize.Verify.Pool == nil {
		t.Fatal("generalize sweep must have a campaign pool")
	}
	if e.cfg.Generalize.Verify.Pool == e.cfg.Verify.Pool {
		t.Fatal("generalize sweep must not share the verify stage's pool")
	}
}
