package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/alive"
	"repro/internal/extract"
	"repro/internal/ir"
	"repro/internal/llm"
	"repro/internal/parser"
)

// panicOnClient panics whenever a request mentions the marker, standing in
// for a provider-adjacent bug that explodes on one specific window.
type panicOnClient struct {
	llm.Client
	marker string
}

func (c panicOnClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	for _, m := range req.Messages {
		if strings.Contains(m.Content, c.marker) {
			panic("injected: provider exploded on " + c.marker)
		}
	}
	return c.Client.Complete(ctx, req)
}

// downClient is a provider that is down for good: every call fails with a
// transient-looking error, so a Retrying wrapper keeps retrying until its
// breaker trips.
type downClient struct{}

func (downClient) Profile() llm.Profile { return llm.Profile{Name: "down"} }
func (downClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	return llm.Response{}, errors.New("provider down")
}

// TestPanicIsolationQuarantinesWindow pins the tentpole contract: a panic
// inside one sequence yields OutcomePanicked and a quarantine entry for that
// window only — the campaign continues and the other windows still complete.
func TestPanicIsolationQuarantinesWindow(t *testing.T) {
	pair := clampCase()
	good := parser.MustParseFunc(pair.Src)
	bad := parser.MustParseFunc(`define i8 @panicme(i8 %x) {
  %r = add i8 %x, 0
  ret i8 %r
}`)
	sim := calibratedSim(t, "Gemini2.0T", good, llm.Calibration{Minus: 5, Plus: 5})
	e := New(panicOnClient{Client: sim, marker: "@panicme"},
		Config{Workers: 2, Verify: alive.Options{Samples: 128, Seed: 3}})
	results, stats := e.RunAll(context.Background(), Funcs(good, bad, good))
	if len(results) != 3 {
		t.Fatalf("campaign did not survive the panic: %d results", len(results))
	}
	if results[0].Outcome != Found || results[2].Outcome != Found {
		t.Fatalf("healthy windows affected by the panic: %v / %v",
			results[0].Outcome, results[2].Outcome)
	}
	r := results[1]
	if r.Outcome != Panicked || r.Err == nil ||
		!strings.Contains(r.Err.Error(), "provider exploded") {
		t.Fatalf("panicked window result wrong: %v err=%v", r.Outcome, r.Err)
	}
	if stats.Panics() != 1 || stats.Outcome(Panicked) != 1 {
		t.Fatalf("panic accounting wrong: Panics=%d outcomes=%v",
			stats.Panics(), stats.ByOutcome())
	}
	q := e.Quarantined()
	want := ir.Hash(bad)
	if len(q) != 1 || q[0] != windowHex(want) {
		t.Fatalf("quarantine list wrong: %v (want [%s])", q, windowHex(want))
	}
	var buf strings.Builder
	stats.Print(&buf)
	if !strings.Contains(buf.String(), "panics recovered") {
		t.Fatalf("stats rendering missing panic line:\n%s", buf.String())
	}
}

func windowHex(h uint64) string {
	const hex = "0123456789abcdef"
	out := make([]byte, 16)
	for i := 15; i >= 0; i-- {
		out[i] = hex[h&0xf]
		h >>= 4
	}
	return string(out)
}

// TestDegradedModeKBProposer pins the circuit-open fallback: once the
// breaker trips, sequences skip the provider and the knowledge base plays
// the proposer — windows the registry can close are still Found, marked
// Degraded, with the rule attribution intact.
func TestDegradedModeKBProposer(t *testing.T) {
	pair := clampCase()
	src := parser.MustParseFunc(pair.Src)
	r := llm.NewRetrying(downClient{}, llm.RetryPolicy{
		MaxAttempts:      1,
		BreakerThreshold: 1,
		BreakerProbe:     1 << 20, // no probes during the test
		Sleep:            func(context.Context, time.Duration) error { return nil },
	})
	e := New(r, Config{Verify: alive.Options{Samples: 256, Seed: 3}})

	// First sequence trips the breaker and fails conventionally.
	first := e.OptimizeSeq(context.Background(), src, 0)
	if first.Outcome != Errored || first.Degraded {
		t.Fatalf("pre-trip sequence should Errored undegraded: %v", first.Outcome)
	}
	if open, _ := r.Breaker(); !open {
		t.Fatal("breaker did not trip")
	}

	// With the circuit open the KB proposer takes over.
	res := e.OptimizeSeq(context.Background(), src, 1)
	if !res.Degraded {
		t.Fatalf("circuit-open sequence not marked degraded: %+v", res.Outcome)
	}
	if res.Outcome != Found || res.Cand == nil {
		t.Fatalf("KB proposer missed the clamp window: %v", res.Outcome)
	}
	if !strings.Contains(res.Cand.String(), "llvm.smax") {
		t.Fatalf("expected the smax rewrite, got:\n%s", res.Cand)
	}
	if res.RuleHits["143636/clamp-smax"] == 0 {
		t.Fatalf("degraded finding lost rule attribution: %v", res.RuleHits)
	}
	if res.InstrsAfter >= res.InstrsBefore {
		t.Fatalf("degraded finding should shrink the window: %d -> %d",
			res.InstrsBefore, res.InstrsAfter)
	}
	if e.Stats().DegradedSeqs() != 1 {
		t.Fatalf("DegradedSeqs = %d, want 1", e.Stats().DegradedSeqs())
	}

	// A window the registry cannot close degrades to NoProposal, not Errored:
	// the campaign keeps moving.
	opaque := parser.MustParseFunc(`define i8 @opaque(i8 %x, i8 %y) {
  %r = udiv i8 %x, %y
  ret i8 %r
}`)
	res = e.OptimizeSeq(context.Background(), opaque, 0)
	if !res.Degraded || res.Outcome == Errored || res.Outcome == Found {
		t.Fatalf("uncloseable window: degraded=%v outcome=%v", res.Degraded, res.Outcome)
	}
}

// hangClient never answers until its context ends.
type hangClient struct{}

func (hangClient) Profile() llm.Profile { return llm.Profile{Name: "hang"} }
func (hangClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	<-ctx.Done()
	return llm.Response{}, ctx.Err()
}

// TestStageTimeoutBoundsPropose: a provider that never answers fails the
// sequence with Errored (deadline), not a hang and not Canceled — the
// caller's context is still live.
func TestStageTimeoutBoundsPropose(t *testing.T) {
	pair := clampCase()
	src := parser.MustParseFunc(pair.Src)
	e := New(hangClient{}, Config{StageTimeout: 20 * time.Millisecond,
		Verify: alive.Options{Samples: 64, Seed: 3}})
	start := time.Now()
	res := e.OptimizeSeq(context.Background(), src, 0)
	if res.Outcome != Errored || !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("hung propose: outcome=%v err=%v", res.Outcome, res.Err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stage timeout did not bound the propose stage")
	}
}

// TestRunBounded pins the CPU-stage deadline helper: inline without a
// timeout, ErrStageTimeout on overrun, and panics propagate before the
// deadline instead of being lost.
func TestRunBounded(t *testing.T) {
	e := New(downClient{}, Config{})
	ran := false
	if err := e.runBounded("x", func() { ran = true }); err != nil || !ran {
		t.Fatalf("no-timeout runBounded: ran=%v err=%v", ran, err)
	}

	e = New(downClient{}, Config{StageTimeout: 10 * time.Millisecond})
	release := make(chan struct{})
	defer close(release)
	err := e.runBounded(StageVerify, func() { <-release })
	if !errors.Is(err, ErrStageTimeout) {
		t.Fatalf("overrun stage: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("pre-deadline panic swallowed")
			}
		}()
		e.runBounded(StageVerify, func() { panic("boom") })
	}()
}

// TestTrySubmitQueueFull pins the non-blocking admission path services use
// for 429s.
func TestTrySubmitQueueFull(t *testing.T) {
	q := NewQueue(1)
	fn := parser.MustParseFunc(`define i8 @f(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}`)
	seq := &extract.Sequence{Fn: fn, Len: fn.NumInstrs(true)}
	if err := q.TrySubmit(seq); err != nil {
		t.Fatalf("empty queue rejected submit: %v", err)
	}
	if err := q.TrySubmit(seq); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue: want ErrQueueFull, got %v", err)
	}
	q.Close()
	if err := q.TrySubmit(seq); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("closed queue: want ErrQueueClosed, got %v", err)
	}
}
