package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/ir"
	"repro/internal/llm"
	"repro/internal/parser"
)

// TestSubmitterIncremental pins the submission API: windows pushed
// incrementally produce one result each, in submission order, and Close
// drains the run cleanly.
func TestSubmitterIncremental(t *testing.T) {
	eng := New(llm.NewSim("Gemini2.0T", 1), Config{Workers: 4, Rounds: 2})
	sub := eng.Submitter(context.Background())

	windows := []*ir.Func{
		parser.MustParseFunc(`define i16 @a(i16 %x, i16 %y) {
  %a = and i16 %x, %y
  %o = or i16 %x, %y
  %r = xor i16 %a, %o
  ret i16 %r
}`),
		parser.MustParseFunc(`define i8 @b(i8 %x) { %r = add i8 %x, 0 ret i8 %r }`),
		parser.MustParseFunc(`define i8 @c(i8 %x) { %r = mul i8 %x, 2 ret i8 %r }`),
	}
	var got []Result
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := range sub.Results() {
			got = append(got, r)
		}
	}()
	for _, fn := range windows {
		if err := sub.Submit(context.Background(), fn); err != nil {
			t.Error(err)
		}
	}
	sub.Close()
	wg.Wait()

	if len(got) != len(windows) {
		t.Fatalf("%d results for %d submissions", len(got), len(windows))
	}
	for i, r := range got {
		if r.Index != i {
			t.Fatalf("result %d has index %d: submission order lost", i, r.Index)
		}
		if ir.Hash(r.Src) != ir.Hash(windows[i]) {
			t.Fatalf("result %d is for the wrong window", i)
		}
	}
	if err := sub.Submit(context.Background(), windows[0]); err != ErrQueueClosed {
		t.Fatalf("submit after close = %v, want ErrQueueClosed", err)
	}
}

// TestSubmitterCancel pins that cancelling the context unblocks a pending
// Submit and closes the result stream.
func TestSubmitterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	eng := New(llm.NewSim("Gemini2.0T", 1), Config{Workers: 1, QueueSize: 1})
	sub := eng.Submitter(ctx)
	cancel()
	fn := parser.MustParseFunc(`define i8 @f(i8 %x) { %r = add i8 %x, 1 ret i8 %r }`)
	// After cancellation the feeder stops pulling; Submit must not hang.
	deadline := time.After(5 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if err := sub.Submit(ctx, fn); err != nil {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("Submit hung after context cancellation")
	}
	for range sub.Results() {
	}
}

// TestLookupShortCircuit pins the store-backed path: a Lookup hit is
// returned as the sequence's result without any provider round, marked
// Cached and counted in Stats.StoreHits; misses run the loop as usual.
func TestLookupShortCircuit(t *testing.T) {
	hit := parser.MustParseFunc(`define i16 @a(i16 %x, i16 %y) {
  %a = and i16 %x, %y
  %o = or i16 %x, %y
  %r = xor i16 %a, %o
  ret i16 %r
}`)
	miss := parser.MustParseFunc(`define i8 @b(i8 %x) { %r = add i8 %x, 0 ret i8 %r }`)
	cached := Result{Outcome: Found, InstrsBefore: 4, InstrsAfter: 2}
	lookups := 0
	eng := New(llm.NewSim("Gemini2.0T", 1), Config{
		Workers: 1,
		Lookup: func(src *ir.Func) (Result, bool) {
			lookups++
			if ir.Hash(src) == ir.Hash(hit) {
				return cached, true
			}
			return Result{}, false
		},
	})
	results, stats := eng.RunAll(context.Background(), Funcs(hit, miss))
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	if !results[0].Cached || results[0].Outcome != Found || results[0].InstrsAfter != 2 {
		t.Fatalf("lookup hit not served: %+v", results[0])
	}
	if results[0].Src == nil {
		t.Fatal("cached result lost its source window")
	}
	if results[1].Cached {
		t.Fatal("lookup miss marked cached")
	}
	if lookups != 2 {
		t.Fatalf("lookup consulted %d times, want 2", lookups)
	}
	if stats.StoreHits() != 1 {
		t.Fatalf("StoreHits = %d, want 1", stats.StoreHits())
	}
	// The cached window consumed no provider tokens.
	if results[0].Usage.InputTokens != 0 {
		t.Fatal("short-circuited sequence still reached the provider")
	}
}
