// Package engine is the concurrent discovery API for the paper's Algorithm 1.
// It replaces the old sequential lpo.Pipeline: an Engine drives a pool of
// workers over a Source of extracted instruction sequences, pushing each one
// through the composable stage chain Propose → Preprocess → Filter → Verify
// (with the paper's feedback loop between attempts), and streams Results back
// in source order.
//
// The engine is context-aware end to end — cancelling the context passed to
// Run stops the feeder, the workers, and any in-flight provider call — and
// deterministic: for a fixed provider seed the set and order of emitted
// results is identical regardless of the worker count, because each sequence's
// trip through the loop depends only on (sequence, round) and results are
// reassembled in input order before they are emitted.
package engine

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/alive"
	"repro/internal/extract"
	"repro/internal/generalize"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/llm"
	"repro/internal/mca"
	"repro/internal/opt"
)

// Config tunes the engine. The zero value reproduces the paper's settings
// (ATTEMPT_LIMIT = 2, btver2 interestingness model, one round) with one
// worker per CPU.
type Config struct {
	// Workers is the size of the worker pool (default runtime.GOMAXPROCS).
	Workers int
	// QueueSize bounds the input and result queues (default 2*Workers), so a
	// slow consumer exerts backpressure on the Source instead of buffering
	// the whole corpus in memory.
	QueueSize int
	// Rounds is how many provider rounds to try per sequence (default 1).
	// Unless AllRounds is set, a sequence stops at its first Found round.
	Rounds int
	// AllRounds runs every round even after a Found and records each round's
	// outcome in Result.RoundOutcomes (used by the RQ1 detection matrix).
	AllRounds bool
	// DedupSequences makes the engine skip sequences whose structural hash it
	// has already processed (Outcome Duplicate). Useful when combining
	// sources that were not already deduplicated by one shared Extractor.
	DedupSequences bool

	// Learn lifts every verified Found rewrite into a candidate generalized
	// rule via internal/generalize: constants become symbolic expressions of
	// the bit width, the abstraction is re-verified across a width sweep,
	// and survivors are collected on the engine (Learned, Rulebook) and
	// attached to their Result. Generalization work is deduplicated across
	// workers by witness-pair hash.
	Learn bool
	// Generalize bounds the learn stage (zero value = generalize defaults).
	Generalize generalize.Options

	// StageTimeout bounds each propose, verify and generalize invocation
	// (0 = unbounded). The propose bound rides the request context; the
	// CPU-bound stages are bounded from outside and a timed-out stage fails
	// its sequence with ErrStageTimeout instead of stalling the pool.
	StageTimeout time.Duration

	// Lookup optionally short-circuits sequences whose outcome a previous
	// campaign already computed: it is consulted once per sequence (after
	// per-run dedup, before any provider round), and a hit is returned as
	// the sequence's Result — marked Cached, counted in Stats.StoreHits —
	// without touching the provider or the verifier. cmd/lpo -store and the
	// lpod service back it with the persistent content-addressed store
	// (internal/store), which is what makes resubmitting an overlapping
	// corpus pay only for windows nobody has processed before.
	Lookup func(src *ir.Func) (Result, bool)

	AttemptLimit int         // max LLM attempts per sequence (paper: 2)
	Opt          opt.Options // optimizer used for candidate preprocessing
	Verify       alive.Options
	CPU          *mca.CPUModel
	// DisableInterestingness skips the interestingness filter (ablation).
	DisableInterestingness bool
	// DisableOptPreprocess skips running opt on candidates (ablation).
	DisableOptPreprocess bool
	// DisableVerifyCache disables the cross-worker verification cache.
	DisableVerifyCache bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 2 * c.Workers
	}
	if c.Rounds <= 0 {
		c.Rounds = 1
	}
	if c.AttemptLimit == 0 {
		c.AttemptLimit = 2
	}
	if c.CPU == nil {
		c.CPU = mca.BTVer2()
	}
	return c
}

// Outcome classifies one sequence's trip through the loop.
type Outcome string

// Outcomes.
const (
	Found         Outcome = "found"         // verified missed optimization
	Uninteresting Outcome = "uninteresting" // candidate no better than the original
	Refuted       Outcome = "refuted"       // all attempts failed verification
	SyntaxFailed  Outcome = "syntax-failed" // all attempts failed to parse
	NoProposal    Outcome = "no-proposal"   // LLM echoed the input
	Errored       Outcome = "error"         // provider or source error
	Canceled      Outcome = "canceled"      // context ended mid-sequence
	Duplicate     Outcome = "duplicate"     // engine-level dedup hit
	Panicked      Outcome = "panicked"      // sequence panicked; window quarantined
)

// Attempt records one iteration of the loop for reporting and tests.
type Attempt struct {
	Candidate string // raw LLM text (IR extracted)
	Feedback  string // feedback generated FROM this attempt ("" if none)
	Parsed    bool
	Verified  bool
}

// Result is the outcome for one instruction sequence.
type Result struct {
	Seq   *extract.Sequence // provenance (nil when the input was a bare func)
	Index int               // position in the source stream
	Round int               // round that decided the outcome

	Outcome  Outcome
	Src      *ir.Func
	Cand     *ir.Func // verified candidate (Outcome == Found)
	Attempts []Attempt
	Err      error // set for Errored / Canceled

	// RoundOutcomes holds every round's outcome when Config.AllRounds.
	RoundOutcomes []Outcome

	Usage llm.Usage // accumulated over all attempts and rounds
	// Gain metrics for found optimizations.
	InstrsBefore, InstrsAfter int
	CyclesBefore, CyclesAfter int

	// RuleHits attributes a Found outcome to the registry rules that close
	// the source window (optional patch/KB rules only, keyed by rule ID).
	// Nil for every other outcome.
	RuleHits map[string]int

	// Learned is the width-generalized rule lifted from this Found rewrite
	// when Config.Learn is set. Duplicate witnesses across sequences share
	// one rule instance; nil when learning is off or the rewrite does not
	// generalize.
	Learned *generalize.Rule

	// Cached marks a result served by Config.Lookup (a previous campaign's
	// stored outcome) rather than computed by this run — consumers that
	// persist results use it to avoid re-writing what the store gave them.
	Cached bool

	// Degraded marks a result computed without the provider: the circuit
	// breaker was open, so the knowledge base played the proposer (see
	// degradedSeq). Degraded results are servable but not persisted — a
	// resubmission after the provider recovers recomputes them for real.
	Degraded bool
}

// String renders a result for logs.
func (r Result) String() string {
	return fmt.Sprintf("%s: %d->%d instrs, %d->%d cycles",
		r.Outcome, r.InstrsBefore, r.InstrsAfter, r.CyclesBefore, r.CyclesAfter)
}

// Engine binds the provider and the substrate stages together behind a
// concurrent batch API. Build one with New, then call Run (streaming) or
// RunAll (collecting); OptimizeSeq is the single-sequence entry point the
// batch machinery itself uses.
type Engine struct {
	client llm.Client
	cfg    Config
	stats  *Stats
	// kb is the full rule registry as a prebuilt dispatch table, used to
	// attribute Found results to the rules that close the window; optSet is
	// the prebuilt selection for Config.Opt, shared by every preprocess call.
	kb     *opt.RuleSet
	optSet *opt.RuleSet

	vmu    sync.Mutex
	vcache map[verifyKey]*verifyEntry

	dmu  sync.Mutex
	seen map[uint64]bool

	// Learned-rule state (Config.Learn): lcache singleflights generalization
	// by witness-pair hash, learned collects distinct rules by ID.
	lmu     sync.Mutex
	lcache  map[uint64]*learnEntry
	learned map[string]*generalize.Rule

	// Quarantine: windows whose processing panicked, keyed by 16-hex window
	// hash (see runSeqIsolated). A quarantined window produced an
	// OutcomePanicked result and is never retried within this engine's life.
	qmu         sync.Mutex
	quarantined []string
}

// learnEntry is a singleflight slot for one witness pair: the first worker
// to claim the key runs the width sweep inside once; later workers block on
// it and share the (possibly nil) outcome.
type learnEntry struct {
	once sync.Once
	rule *generalize.Rule
}

type verifyKey struct{ src, cand uint64 }

// verifyEntry is a singleflight cache slot: the first worker to claim the
// key computes the verdict inside once; later workers block on it. A panic
// during the computation is captured in panicked and re-raised for every
// waiter — the zero alive.Result would otherwise read as a Correct verdict,
// silently accepting an unverified candidate.
type verifyEntry struct {
	once     sync.Once
	res      alive.Result
	panicked any
}

// New builds an engine with the given client and config defaults applied.
func New(client llm.Client, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	optSet := cfg.Opt.Rules
	if optSet == nil {
		optSet = opt.NewRuleSet(cfg.Opt)
	}
	// One compiled-program cache backs the verify stage and the generalize
	// width sweeps: every distinct window and candidate compiles once per
	// engine, across workers and rounds.
	if cfg.Verify.Programs == nil {
		cfg.Verify.Programs = interp.NewCache()
	}
	if cfg.Generalize.Verify.Programs == nil {
		cfg.Generalize.Verify.Programs = cfg.Verify.Programs
	}
	// One campaign-wide counterexample pool sits beside it: every falsified
	// candidate deposits its refuting input, and verification tier 0
	// replays the window's pooled inputs against later candidates (CEGIS).
	// Verify-stage deposits always come from the window's own generated
	// input sequence, so replaying them can never flip a verdict the
	// sequence itself would not have flipped — the engine's
	// any-worker-count determinism survives. The generalize width sweeps
	// get their own campaign-scoped pool: sweep deposits include vectors
	// rescaled from other widths, which are NOT in any window's generated
	// sequence, so sharing one pool with the verify stage would make
	// verdicts depend on whether a concurrent sweep deposited first.
	if cfg.Verify.Pool == nil {
		cfg.Verify.Pool = alive.NewCEPool()
	}
	if cfg.Generalize.Verify.Pool == nil {
		cfg.Generalize.Verify.Pool = alive.NewCEPool()
	}
	return &Engine{
		client:  client,
		cfg:     cfg,
		stats:   newStats(),
		kb:      opt.FullRuleSet(),
		optSet:  optSet,
		vcache:  make(map[verifyKey]*verifyEntry),
		seen:    make(map[uint64]bool),
		lcache:  make(map[uint64]*learnEntry),
		learned: make(map[string]*generalize.Rule),
	}
}

// Learned returns the distinct rules learned so far (Config.Learn), sorted
// by ID. Like Stats it may be read while a run is in flight and accumulates
// across runs of a reused engine.
func (e *Engine) Learned() []*generalize.Rule {
	e.lmu.Lock()
	defer e.lmu.Unlock()
	out := make([]*generalize.Rule, 0, len(e.learned))
	for _, r := range e.learned {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Rulebook serializes the learned rules for later runs (cmd/lpo -learn).
func (e *Engine) Rulebook() *generalize.Rulebook {
	return generalize.NewRulebook(e.Learned())
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns the engine's accumulating counters. The same object is
// returned by Run; exposing it here lets sources that feed the engine
// (e.g. the wasm lift sources) record coverage before Run is called.
func (e *Engine) Stats() *Stats { return e.stats }

// CEPool returns the campaign's shared counterexample pool (never nil after
// New), for observability and cross-campaign reuse.
func (e *Engine) CEPool() *alive.CEPool { return e.cfg.Verify.Pool }

// item is one unit of scheduled work.
type item struct {
	idx int
	seq *extract.Sequence
}

// Run streams every sequence of src through the discovery loop using the
// configured worker pool and emits one Result per input on the returned
// channel, in input order. The returned Stats is live — its accessors are
// safe to call while the run is in flight — and is quiescent once the
// channel closes. Cancelling ctx drains the run promptly: remaining
// sequences are skipped and the channel closes. The caller must either
// drain the channel or cancel ctx — abandoning the channel with a live
// context leaks the pool.
//
// The same Engine may be reused for several runs; Stats accumulates across
// them (call Stats.Reset between runs for per-run numbers).
func (e *Engine) Run(ctx context.Context, src Source) (<-chan Result, *Stats) {
	out := make(chan Result)
	items := make(chan item, e.cfg.QueueSize)
	results := make(chan Result, e.cfg.QueueSize)

	// Feeder: pull from the source until it drains, the context ends, or it
	// fails. A source error becomes a final Errored result so the consumer
	// sees it in-band.
	go func() {
		defer close(items)
		for idx := 0; ; idx++ {
			seq, ok, err := src.Next(ctx)
			if err != nil {
				if ctx.Err() != nil {
					return // cancellation is not a source failure
				}
				res := Result{Index: idx, Outcome: Errored, Err: err}
				e.stats.recordResult(res)
				select {
				case results <- res:
				case <-ctx.Done():
				}
				return
			}
			if !ok {
				return
			}
			select {
			case items <- item{idx: idx, seq: seq}:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range items {
				var res Result
				if ctx.Err() != nil {
					res = Result{Index: it.idx, Seq: it.seq, Src: it.seq.Fn,
						Outcome: Canceled, Err: ctx.Err()}
				} else {
					// runSeqIsolated is the panic boundary: a panicking
					// window yields OutcomePanicked and a quarantine entry
					// instead of killing the pool.
					res = e.runSeqIsolated(ctx, it)
				}
				e.stats.recordResult(res)
				select {
				case results <- res:
				case <-ctx.Done():
					// Consumer is gone; keep draining items so the feeder
					// never blocks, but stop forwarding.
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reassembler: emit results in input order so output is deterministic
	// regardless of worker count and scheduling.
	go func() {
		defer close(out)
		pending := make(map[int]Result)
		next := 0
		for res := range results {
			pending[res.Index] = res
			for {
				r, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				select {
				case out <- r:
				case <-ctx.Done():
					// Keep consuming `results` (loop continues) so workers
					// and feeder unwind; just stop emitting.
				}
			}
		}
	}()

	return out, e.stats
}

// RunAll collects a Run into a slice, in input order.
func (e *Engine) RunAll(ctx context.Context, src Source) ([]Result, *Stats) {
	ch, stats := e.Run(ctx, src)
	var out []Result
	for r := range ch {
		out = append(out, r)
	}
	return out, stats
}

// runSeq drives one scheduled sequence through its round budget.
func (e *Engine) runSeq(ctx context.Context, it item) Result {
	if e.cfg.DedupSequences && it.seq.Fn != nil {
		h := ir.Hash(it.seq.Fn)
		e.dmu.Lock()
		dup := e.seen[h]
		if !dup {
			e.seen[h] = true
		}
		e.dmu.Unlock()
		if dup {
			return Result{Index: it.idx, Seq: it.seq, Src: it.seq.Fn, Outcome: Duplicate}
		}
	}
	if e.cfg.Lookup != nil && it.seq.Fn != nil {
		if r, ok := e.cfg.Lookup(it.seq.Fn); ok {
			r.Index = it.idx
			r.Seq = it.seq
			if r.Src == nil {
				r.Src = it.seq.Fn
			}
			r.Cached = true
			e.stats.recordStoreHit()
			return r
		}
	}

	var agg Result
	var usage llm.Usage
	var roundOutcomes []Outcome
	firstFound := -1
	for round := 0; round < e.cfg.Rounds; round++ {
		r := e.OptimizeSeq(ctx, it.seq.Fn, round)
		usage.Add(r.Usage)
		if e.cfg.AllRounds {
			roundOutcomes = append(roundOutcomes, r.Outcome)
		}
		keep := firstFound < 0 // before the first Found, the latest round is representative
		if r.Outcome == Found && firstFound < 0 {
			firstFound = round
			keep = true
		}
		if keep {
			agg = r
			agg.Round = round
		}
		if r.Outcome == Canceled {
			break
		}
		if r.Outcome == Found && !e.cfg.AllRounds {
			break
		}
	}
	agg.Index = it.idx
	agg.Seq = it.seq
	agg.Usage = usage
	agg.RoundOutcomes = roundOutcomes
	if e.cfg.Learn && agg.Outcome == Found && agg.Cand != nil {
		agg.Learned = e.learn(agg.Src, agg.Cand, it.seq)
	}
	return agg
}

// learn runs the post-verify generalize hook on one Found witness pair,
// singleflighted across workers and rounds by the pair's structural hash:
// only the first sighting pays for the width sweep, and rules that hash to
// an already-learned ID collapse onto the existing instance.
func (e *Engine) learn(src, cand *ir.Func, seq *extract.Sequence) *generalize.Rule {
	key := ir.Hash(src) ^ bits.RotateLeft64(ir.Hash(cand), 1)
	e.lmu.Lock()
	ent, hit := e.lcache[key]
	if !hit {
		ent = &learnEntry{}
		e.lcache[key] = ent
	}
	e.lmu.Unlock()
	ent.once.Do(func() {
		start := time.Now()
		var res generalize.Result
		err := e.runBounded(StageGeneralize, func() {
			res = generalize.Generalize(src, cand, e.cfg.Generalize)
		})
		e.stats.recordStage(StageGeneralize, time.Since(start).Seconds())
		if err != nil || res.Rule == nil {
			// A timed-out sweep learns nothing; the finding itself stands.
			return
		}
		e.lmu.Lock()
		defer e.lmu.Unlock()
		if prev, dup := e.learned[res.Rule.ID]; dup {
			ent.rule = prev
			return
		}
		if seq != nil && seq.Module != "" {
			res.Rule.Origin = seq.Module + ":" + seq.Func
		}
		e.learned[res.Rule.ID] = res.Rule
		ent.rule = res.Rule
	})
	return ent.rule
}
