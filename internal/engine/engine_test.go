package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/alive"
	"repro/internal/benchdata"
	"repro/internal/generalize"
	"repro/internal/ir"
	"repro/internal/llm"
	"repro/internal/opt"
	"repro/internal/parser"
)

// calibratedSim builds a Sim whose calibration forces deterministic-enough
// behaviour for a benchmark: Plus=5/Minus=5 always finds on attempt 1,
// Minus=0/Plus=5 always needs the feedback round, 0/0 never finds.
func calibratedSim(t *testing.T, model string, src *ir.Func, c llm.Calibration) *llm.Sim {
	t.Helper()
	sim := llm.NewSim(model, 7)
	sim.Calibrate(ir.Hash(src), c)
	return sim
}

func clampCase() benchdata.Pair {
	for _, c := range benchdata.RQ1Cases() {
		if c.IssueID == "110591" {
			return c.Pair
		}
	}
	panic("missing case")
}

func TestEngineFindsClampFirstAttempt(t *testing.T) {
	pair := clampCase()
	src := parser.MustParseFunc(pair.Src)
	sim := calibratedSim(t, "Gemini2.0T", src, llm.Calibration{Minus: 5, Plus: 5})
	e := New(sim, Config{Verify: alive.Options{Samples: 512, Seed: 3}})
	res := e.OptimizeSeq(context.Background(), src, 0)
	if res.Outcome != Found {
		t.Fatalf("expected Found, got %v (attempts: %+v)", res.Outcome, res.Attempts)
	}
	if len(res.Attempts) != 1 || !res.Attempts[0].Verified {
		t.Fatalf("expected a single verified attempt, got %+v", res.Attempts)
	}
	if res.InstrsAfter >= res.InstrsBefore {
		t.Fatalf("found optimization should shrink the window: %d -> %d",
			res.InstrsBefore, res.InstrsAfter)
	}
	if !strings.Contains(res.Cand.String(), "llvm.smax") {
		t.Fatalf("expected the smax rewrite, got:\n%s", res.Cand)
	}
}

func TestEngineUsesFeedbackLoop(t *testing.T) {
	pair := clampCase()
	src := parser.MustParseFunc(pair.Src)
	sim := calibratedSim(t, "Gemini2.0T", src, llm.Calibration{Minus: 0, Plus: 5})
	e := New(sim, Config{Verify: alive.Options{Samples: 512, Seed: 3}})
	res := e.OptimizeSeq(context.Background(), src, 0)
	if res.Outcome != Found {
		t.Fatalf("expected Found via feedback, got %v (attempts: %+v)", res.Outcome, res.Attempts)
	}
	if len(res.Attempts) != 2 {
		t.Fatalf("expected two attempts, got %d", len(res.Attempts))
	}
	first := res.Attempts[0]
	if first.Verified {
		t.Fatal("first attempt should have failed")
	}
	if first.Feedback == "" {
		t.Fatal("first attempt should have produced feedback")
	}
	// The feedback is either an opt-style syntax diagnostic or an
	// Alive2-style counterexample (the paper's two repair channels).
	if !strings.Contains(first.Feedback, "error:") &&
		!strings.Contains(first.Feedback, "Transformation doesn't verify!") {
		t.Fatalf("unexpected feedback: %q", first.Feedback)
	}
	if !res.Attempts[1].Verified {
		t.Fatal("second attempt should verify")
	}
}

func TestAttemptLimitOneDisablesFeedback(t *testing.T) {
	pair := clampCase()
	src := parser.MustParseFunc(pair.Src)
	sim := calibratedSim(t, "Gemini2.0T", src, llm.Calibration{Minus: 0, Plus: 5})
	e := New(sim, Config{AttemptLimit: 1, Verify: alive.Options{Samples: 512, Seed: 3}})
	res := e.OptimizeSeq(context.Background(), src, 0)
	if res.Outcome == Found {
		t.Fatal("LPO- (no feedback) should not find this calibrated case")
	}
	if len(res.Attempts) != 1 {
		t.Fatalf("expected one attempt, got %d", len(res.Attempts))
	}
}

func TestNoProposalWhenModelCannotFind(t *testing.T) {
	pair := clampCase()
	src := parser.MustParseFunc(pair.Src)
	sim := calibratedSim(t, "Gemma3", src, llm.Calibration{Minus: 0, Plus: 0})
	e := New(sim, Config{Verify: alive.Options{Samples: 256, Seed: 3}})
	res := e.OptimizeSeq(context.Background(), src, 0)
	if res.Outcome == Found {
		t.Fatal("calibrated-to-zero case should never be found")
	}
}

func TestHallucinationsAreRefutedNotAccepted(t *testing.T) {
	// Run many rounds on a case where the model often needs feedback; no
	// wrong candidate may ever be recorded as Found with a failing verify.
	pair := clampCase()
	src := parser.MustParseFunc(pair.Src)
	sim := calibratedSim(t, "GPT-4.1", src, llm.Calibration{Minus: 1, Plus: 4})
	e := New(sim, Config{Verify: alive.Options{Samples: 512, Seed: 5}})
	foundRounds := 0
	for round := 0; round < 20; round++ {
		res := e.OptimizeSeq(context.Background(), src, round)
		if res.Outcome == Found {
			foundRounds++
			r := alive.Verify(src, res.Cand, alive.Options{Samples: 2048, Seed: uint64(round)})
			if r.Verdict != alive.Correct {
				t.Fatalf("round %d: accepted candidate fails re-verification:\n%s", round, res.Cand)
			}
		}
	}
	if foundRounds == 0 {
		t.Fatal("expected some rounds to succeed")
	}
	if foundRounds == 20 {
		t.Fatal("expected some rounds to fail (calibration is 4/5)")
	}
}

func TestInterestingnessRules(t *testing.T) {
	cfg := Config{}.withDefaults()
	src := parser.MustParseFunc(`define i8 @f(i8 %x) {
  %a = add i8 %x, 1
  %b = add i8 %a, 2
  ret i8 %b
}`)
	smaller := parser.MustParseFunc(`define i8 @f(i8 %x) {
  %a = add i8 %x, 3
  ret i8 %a
}`)
	identical := parser.MustParseFunc(src.String())
	differentSameSize := parser.MustParseFunc(`define i8 @f(i8 %x) {
  %a = add i8 %x, 2
  %b = add i8 %a, 1
  ret i8 %b
}`)
	if !Interesting(src, smaller, cfg.CPU) {
		t.Fatal("fewer instructions must be interesting")
	}
	if Interesting(src, identical, cfg.CPU) {
		t.Fatal("identical candidate must be uninteresting")
	}
	if !Interesting(src, differentSameSize, cfg.CPU) {
		t.Fatal("same-size but different candidate must be interesting")
	}
	slower := parser.MustParseFunc(`define i8 @f(i8 %x) {
  %a = udiv i8 %x, 3
  %b = mul i8 %a, 3
  ret i8 %b
}`)
	if Interesting(src, slower, cfg.CPU) {
		t.Fatal("slower same-count candidate must be uninteresting")
	}
}

func TestRunAggregatesStats(t *testing.T) {
	pair := clampCase()
	src := parser.MustParseFunc(pair.Src)
	other := parser.MustParseFunc(`define i8 @g(i8 %x, i8 %y) {
  %a = and i8 %x, %y
  %o = or i8 %x, %y
  %r = xor i8 %a, %o
  ret i8 %r
}`)
	sim := llm.NewSim("Gemini2.0T", 7)
	sim.Calibrate(ir.Hash(src), llm.Calibration{Minus: 5, Plus: 5})
	sim.Calibrate(ir.Hash(other), llm.Calibration{Minus: 5, Plus: 5})
	e := New(sim, Config{Workers: 2, Verify: alive.Options{Samples: 256, Seed: 3}})
	results, stats := e.RunAll(context.Background(), Funcs(src, other))
	if len(results) != 2 {
		t.Fatalf("expected 2 results, got %d", len(results))
	}
	found := 0
	for _, r := range results {
		if r.Outcome == Found {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("expected 2 found, got %d (%v)", found, stats.ByOutcome())
	}
	if stats.Sequences() != 2 || stats.Usage().VirtualSeconds <= 0 {
		t.Fatalf("stats not aggregated: %d sequences, %+v", stats.Sequences(), stats.Usage())
	}
	if stats.Outcome(Found) != 2 {
		t.Fatalf("outcome tally wrong: %v", stats.ByOutcome())
	}
	if p := stats.Stage(StagePropose); p.Invocations < 2 || p.Seconds <= 0 {
		t.Fatalf("propose stage metrics missing: %+v", p)
	}
	if v := stats.Stage(StageVerify); v.Invocations < 2 {
		t.Fatalf("verify stage metrics missing: %+v", v)
	}
}

func TestFoundResultsCarryRuleAttribution(t *testing.T) {
	pair := clampCase()
	src := parser.MustParseFunc(pair.Src)
	sim := calibratedSim(t, "Gemini2.0T", src, llm.Calibration{Minus: 5, Plus: 5})
	e := New(sim, Config{Verify: alive.Options{Samples: 512, Seed: 3}})
	results, stats := e.RunAll(context.Background(), Funcs(src))
	if results[0].Outcome != Found {
		t.Fatalf("expected Found, got %v", results[0].Outcome)
	}
	if results[0].RuleHits["143636/clamp-smax"] == 0 {
		t.Fatalf("clamp finding not attributed to its rule: %v", results[0].RuleHits)
	}
	for id := range results[0].RuleHits {
		r := opt.RuleByID(id)
		if r == nil {
			t.Fatalf("attribution names unregistered rule %q", id)
		}
		if r.Provenance == opt.ProvBaseline {
			t.Fatalf("attribution leaked baseline rule %q", id)
		}
	}
	// The engine-level stats aggregate the same attribution.
	if stats.RuleHits()["143636/clamp-smax"] == 0 {
		t.Fatalf("stats missing rule attribution: %v", stats.RuleHits())
	}
	var buf strings.Builder
	stats.Print(&buf)
	if !strings.Contains(buf.String(), "143636/clamp-smax") {
		t.Fatalf("stats rendering missing attribution:\n%s", buf.String())
	}
	stats.Reset()
	if len(stats.RuleHits()) != 0 {
		t.Fatal("Reset did not clear rule attribution")
	}
}

func TestResultsArriveInSourceOrder(t *testing.T) {
	pair := clampCase()
	src := parser.MustParseFunc(pair.Src)
	sim := calibratedSim(t, "Gemini2.0T", src, llm.Calibration{Minus: 5, Plus: 5})
	fns := make([]*ir.Func, 24)
	for i := range fns {
		fns[i] = src
	}
	e := New(sim, Config{Workers: 8, Verify: alive.Options{Samples: 128, Seed: 3}})
	results, _ := e.RunAll(context.Background(), Funcs(fns...))
	if len(results) != len(fns) {
		t.Fatalf("expected %d results, got %d", len(fns), len(results))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d — reassembly broken", i, r.Index)
		}
	}
}

func TestVerifyCacheSharedAcrossWorkers(t *testing.T) {
	pair := clampCase()
	src := parser.MustParseFunc(pair.Src)
	sim := calibratedSim(t, "Gemini2.0T", src, llm.Calibration{Minus: 5, Plus: 5})
	fns := make([]*ir.Func, 16)
	for i := range fns {
		fns[i] = src
	}
	e := New(sim, Config{Workers: 4, Verify: alive.Options{Samples: 256, Seed: 3}})
	results, stats := e.RunAll(context.Background(), Funcs(fns...))
	for _, r := range results {
		if r.Outcome != Found {
			t.Fatalf("expected every copy to be Found, got %v", r.Outcome)
		}
	}
	// 16 identical windows propose the same candidate: one real verification,
	// fifteen cache hits.
	if hits := stats.VerifyCacheHits(); hits != len(fns)-1 {
		t.Fatalf("expected %d cache hits, got %d", len(fns)-1, hits)
	}
}

func TestEngineDedupSequences(t *testing.T) {
	pair := clampCase()
	src := parser.MustParseFunc(pair.Src)
	sim := calibratedSim(t, "Gemini2.0T", src, llm.Calibration{Minus: 5, Plus: 5})
	e := New(sim, Config{Workers: 1, DedupSequences: true,
		Verify: alive.Options{Samples: 128, Seed: 3}})
	results, stats := e.RunAll(context.Background(), Funcs(src, src, src))
	if results[0].Outcome != Found {
		t.Fatalf("first copy should be Found, got %v", results[0].Outcome)
	}
	if results[1].Outcome != Duplicate || results[2].Outcome != Duplicate {
		t.Fatalf("later copies should be Duplicate, got %v / %v",
			results[1].Outcome, results[2].Outcome)
	}
	if stats.Outcome(Duplicate) != 2 {
		t.Fatalf("duplicate tally wrong: %v", stats.ByOutcome())
	}
}

func TestFigure3SyntaxErrorLoop(t *testing.T) {
	// Reproduce the paper's Figure 3 walk: force the syntax-error channel by
	// scanning rounds until the first attempt is a parse failure, then check
	// the loop recovers using the opt error message.
	pair := clampCase()
	src := parser.MustParseFunc(pair.Src)
	sim := llm.NewSim("Gemini2.0T", 7)
	sim.Calibrate(ir.Hash(src), llm.Calibration{Minus: 0, Plus: 5})
	e := New(sim, Config{Verify: alive.Options{Samples: 256, Seed: 3}})
	for round := 0; round < 64; round++ {
		res := e.OptimizeSeq(context.Background(), src, round)
		if len(res.Attempts) == 2 && !res.Attempts[0].Parsed {
			if !strings.Contains(res.Attempts[0].Feedback, "error:") {
				t.Fatalf("syntax feedback missing opt-style message: %q", res.Attempts[0].Feedback)
			}
			if res.Outcome != Found {
				t.Fatalf("loop should recover from the syntax error, got %v", res.Outcome)
			}
			return
		}
	}
	t.Fatal("syntax-error channel never fired in 64 rounds")
}

// TestEngineLearnsRules pins the post-verify generalize hook: a calibrated
// run over a knowledge-base window must emit a Found result carrying a
// learned rule, dedupe repeat witnesses onto one instance, and produce a
// rulebook whose compiled rules close the same window at other widths under
// a baseline-only selection.
func TestEngineLearnsRules(t *testing.T) {
	src := parser.MustParseFunc(`define i16 @src(i16 %x, i16 %y) {
  %a = and i16 %x, %y
  %o = or i16 %x, %y
  %r = xor i16 %a, %o
  ret i16 %r
}`)
	sim := calibratedSim(t, "Gemini2.0T", src, llm.Calibration{Minus: 5, Plus: 5})
	e := New(sim, Config{
		Learn:   true,
		Verify:  alive.Options{Samples: 512, Seed: 3},
		Workers: 2,
	})
	// The same window twice: the second Found must reuse the cached rule.
	results, stats := e.RunAll(context.Background(), Funcs(src, ir.CloneFunc(src)))
	if len(results) != 2 {
		t.Fatalf("expected 2 results, got %d", len(results))
	}
	for i, res := range results {
		if res.Outcome != Found {
			t.Fatalf("result %d: expected Found, got %v", i, res.Outcome)
		}
		if res.Learned == nil {
			t.Fatalf("result %d carries no learned rule", i)
		}
	}
	if results[0].Learned != results[1].Learned {
		t.Fatal("duplicate witnesses must share one learned rule instance")
	}
	rules := e.Learned()
	if len(rules) != 1 {
		t.Fatalf("expected 1 distinct learned rule, got %d", len(rules))
	}
	if len(rules[0].Widths) < 2 {
		t.Fatalf("learned rule verified at %v, want at least 2 widths", rules[0].Widths)
	}
	if stats.LearnedFindings() != 2 {
		t.Fatalf("LearnedFindings = %d, want 2", stats.LearnedFindings())
	}
	if g := stats.Stage(StageGeneralize); g.Invocations != 1 {
		t.Fatalf("generalize stage ran %d times, want 1 (dedup)", g.Invocations)
	}
	// Round-trip the rulebook and close the window at a different width
	// with baseline-only rules plus the learned rule.
	data, err := e.Rulebook().Encode()
	if err != nil {
		t.Fatal(err)
	}
	book, err := generalize.DecodeRulebook(data)
	if err != nil {
		t.Fatal(err)
	}
	learned, err := book.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ors, err := generalize.OptRules(learned)
	if err != nil {
		t.Fatal(err)
	}
	rs := opt.NewRuleSet(opt.Options{}).WithRules(ors...)
	win := parser.MustParseFunc(`define i32 @f(i32 %p, i32 %q) {
  %a = and i32 %p, %q
  %o = or i32 %p, %q
  %r = xor i32 %a, %o
  ret i32 %r
}`)
	if got := opt.Run(win, opt.Options{Rules: rs}); got.NumInstrs(true) != 1 {
		t.Fatalf("rulebook rule did not close the i32 window:\n%s", got)
	}
}

// TestProgramCacheSharedByVerifyAndGeneralize pins the compile-once wiring:
// one interp.Cache backs both the verify stage and the learn stage's width
// sweeps, and a campaign populates it.
func TestProgramCacheSharedByVerifyAndGeneralize(t *testing.T) {
	src := parser.MustParseFunc(`define i16 @src(i16 %x, i16 %y) {
  %a = and i16 %x, %y
  %o = or i16 %x, %y
  %r = xor i16 %a, %o
  ret i16 %r
}`)
	sim := calibratedSim(t, "Gemini2.0T", src, llm.Calibration{Minus: 5, Plus: 5})
	e := New(sim, Config{Learn: true, Verify: alive.Options{Samples: 128, Seed: 3}})
	cfg := e.Config()
	if cfg.Verify.Programs == nil {
		t.Fatal("engine did not install a program cache")
	}
	if cfg.Generalize.Verify.Programs != cfg.Verify.Programs {
		t.Fatal("generalize width sweeps must share the verify stage's program cache")
	}
	results, _ := e.RunAll(context.Background(), Funcs(src))
	if results[0].Outcome != Found {
		t.Fatalf("expected Found, got %v", results[0].Outcome)
	}
	if results[0].Learned == nil {
		t.Fatal("expected a learned rule")
	}
	// At minimum the window, its candidate, and the width-sweep
	// instantiations were compiled through the shared cache.
	if n := cfg.Verify.Programs.Len(); n < 4 {
		t.Fatalf("program cache holds %d entries, want the campaign's windows, candidates and width sweeps (>= 4)", n)
	}
}
