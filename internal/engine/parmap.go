package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ParMap applies fn to every item on a bounded worker pool and returns the
// results in input order, so output is deterministic regardless of worker
// count. workers <= 0 uses GOMAXPROCS. When ctx ends early, the remaining
// slots keep their zero value; fn should check ctx itself if it is
// expensive. It backs the non-LLM fan-outs (patch-impact scans, baseline
// sweeps, batch opt) that do not need the full engine.
func ParMap[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) R) []R {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	out := make([]R, len(items))
	if len(items) == 0 {
		return out
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(items) || ctx.Err() != nil {
					return
				}
				out[i] = fn(ctx, i, items[i])
			}
		}()
	}
	wg.Wait()
	return out
}
