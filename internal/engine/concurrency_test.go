package engine

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/alive"
	"repro/internal/corpus"
	"repro/internal/extract"
	"repro/internal/ir"
	"repro/internal/llm"
)

// corpusSeqs extracts a deterministic batch of sequences for batch tests.
func corpusSeqs(t testing.TB, n int) []*extract.Sequence {
	t.Helper()
	projects := corpus.Generate(corpus.Options{Seed: 5, ModulesPerProject: 2, FuncsPerModule: 6})
	ex := extract.New(extract.Options{})
	var seqs []*extract.Sequence
	for _, p := range projects {
		for _, m := range p.Modules {
			seqs = append(seqs, ex.Module(m)...)
			if len(seqs) >= n {
				return seqs[:n]
			}
		}
	}
	return seqs
}

// fingerprint reduces a result to the fields that must not depend on
// scheduling: stream position, outcome, the found rewrite, the exact
// proposal sequence (every attempt's candidate text, in order), and the
// rule attribution.
type fingerprint struct {
	index     int
	outcome   Outcome
	cand      uint64
	round     int
	proposals string
	rules     string
}

func fingerprints(results []Result) []fingerprint {
	out := make([]fingerprint, len(results))
	for i, r := range results {
		fp := fingerprint{index: r.Index, outcome: r.Outcome, round: r.Round}
		if r.Cand != nil {
			fp.cand = ir.Hash(r.Cand)
		}
		var props []string
		for _, a := range r.Attempts {
			props = append(props, a.Candidate)
		}
		fp.proposals = strings.Join(props, "\x00")
		var rules []string
		for id := range r.RuleHits {
			rules = append(rules, id)
		}
		sort.Strings(rules)
		fp.rules = strings.Join(rules, ",")
		out[i] = fp
	}
	return out
}

// TestDeterministicAcrossWorkerCounts is the acceptance bar of the redesign:
// workers=8 must produce the identical ordered result stream as workers=1
// for the same seed.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	seqs := corpusSeqs(t, 60)
	run := func(workers int) []Result {
		sim := llm.NewSim("Gemini2.0T", 11)
		e := New(sim, Config{
			Workers: workers,
			Rounds:  4,
			Verify:  alive.Options{Samples: 128, Seed: 11},
		})
		results, _ := e.RunAll(context.Background(), Sequences(seqs...))
		return results
	}
	serial := run(1)
	parallel := run(8)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	sfp, pfp := fingerprints(serial), fingerprints(parallel)
	foundSerial, foundParallel := 0, 0
	for i := range sfp {
		if sfp[i] != pfp[i] {
			t.Fatalf("result %d differs between workers=1 and workers=8:\n%+v\nvs\n%+v",
				i, sfp[i], pfp[i])
		}
		if sfp[i].outcome == Found {
			foundSerial++
		}
		if pfp[i].outcome == Found {
			foundParallel++
		}
	}
	if foundSerial != foundParallel {
		t.Fatalf("found sets differ: %d vs %d", foundSerial, foundParallel)
	}
	if foundSerial == 0 {
		t.Fatal("batch found nothing — the determinism check is vacuous")
	}
}

// TestSameSeedRunsProposeIdenticalCandidates is the regression test for the
// registry's determinism guarantee: the knowledge base reaches llm.Sim as an
// ordered RuleSet (the seed code leaked map-iteration order through
// opt.AllRuleNames), so two engines built the same way must propose the
// byte-identical candidate sequence — across fresh runs and worker counts.
func TestSameSeedRunsProposeIdenticalCandidates(t *testing.T) {
	seqs := corpusSeqs(t, 40)
	run := func(workers int) []fingerprint {
		sim := llm.NewSim("Gemini2.0T", 13)
		e := New(sim, Config{
			Workers: workers,
			Rounds:  2,
			Verify:  alive.Options{Samples: 64, Seed: 13},
		})
		results, _ := e.RunAll(context.Background(), Sequences(seqs...))
		return fingerprints(results)
	}
	first := run(1)
	again := run(1)
	wide := run(6)
	proposed := 0
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("two same-seed runs diverged at result %d:\n%+v\nvs\n%+v",
				i, first[i], again[i])
		}
		if first[i] != wide[i] {
			t.Fatalf("worker count changed result %d:\n%+v\nvs\n%+v",
				i, first[i], wide[i])
		}
		if first[i].proposals != "" {
			proposed++
		}
	}
	if proposed == 0 {
		t.Fatal("no proposals at all — the regression test is vacuous")
	}
}

// TestConcurrentRunIsRaceClean exercises every concurrent structure (worker
// pool, streaming source, verify cache, stats, extractor dedup) under
// `go test -race ./internal/engine`.
func TestConcurrentRunIsRaceClean(t *testing.T) {
	projects := corpus.Generate(corpus.Options{Seed: 7, ModulesPerProject: 2, FuncsPerModule: 5})
	ex := extract.New(extract.Options{})
	var mods []*ir.Module
	for _, p := range projects {
		mods = append(mods, p.Modules...)
	}
	sim := llm.NewSim("Llama3.3", 7)
	e := New(sim, Config{
		Workers: 8, QueueSize: 4, Rounds: 2,
		Verify: alive.Options{Samples: 64, Seed: 7},
	})
	results, stats := e.Run(context.Background(), Modules(ex, mods...))
	n := 0
	for r := range results {
		n++
		// Read live stats concurrently with the run to exercise the locks.
		_ = stats.Sequences()
		_ = stats.Usage()
		_ = stats.Stage(StageVerify)
		if r.Outcome == Errored {
			t.Fatalf("unexpected error result: %v", r.Err)
		}
	}
	if n == 0 {
		t.Fatal("streaming source yielded nothing")
	}
	if stats.Sequences() != n {
		t.Fatalf("stats saw %d sequences, channel delivered %d", stats.Sequences(), n)
	}
	if got := ex.Stats().Kept; got != n {
		t.Fatalf("extractor kept %d, engine processed %d", got, n)
	}
}

// TestCancellationDrainsCleanly cancels mid-batch and requires the result
// channel to close promptly with no further work.
func TestCancellationDrainsCleanly(t *testing.T) {
	seqs := corpusSeqs(t, 80)
	sim := llm.NewSim("Gemini2.0T", 3)
	e := New(sim, Config{Workers: 4, Rounds: 8, Verify: alive.Options{Samples: 256, Seed: 3}})
	ctx, cancel := context.WithCancel(context.Background())
	results, stats := e.Run(ctx, Sequences(seqs...))
	delivered := 0
	for r := range results {
		delivered++
		if delivered == 5 {
			cancel()
		}
		_ = r
	}
	// The channel closed (or the range would still be blocking). Everything
	// scheduled before the cancel finished or was marked Canceled; nothing
	// hangs and the counts are consistent.
	if delivered == 0 {
		t.Fatal("no results before cancellation")
	}
	if delivered > len(seqs) {
		t.Fatalf("delivered %d results for %d inputs", delivered, len(seqs))
	}
	if stats.Sequences() < delivered {
		t.Fatalf("stats recorded %d, delivered %d", stats.Sequences(), delivered)
	}
	cancel()
}

// TestCancelBeforeRun returns immediately with a closed, empty channel.
func TestCancelBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sim := llm.NewSim("Gemini2.0T", 3)
	e := New(sim, Config{Workers: 2})
	results, _ := e.Run(ctx, Sequences(corpusSeqs(t, 10)...))
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-results:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("cancelled run did not drain")
		}
	}
}

// TestSourceErrorSurfacesInBand: a failing source ends the run with a final
// Errored result instead of hanging or panicking.
func TestSourceErrorSurfacesInBand(t *testing.T) {
	ex := extract.New(extract.Options{})
	sim := llm.NewSim("Gemini2.0T", 3)
	e := New(sim, Config{Workers: 2})
	results, _ := e.RunAll(context.Background(), File("/nonexistent/path.ll", ex))
	if len(results) != 1 {
		t.Fatalf("expected exactly the error result, got %d results", len(results))
	}
	if results[0].Outcome != Errored || results[0].Err == nil {
		t.Fatalf("expected Errored with err, got %+v", results[0])
	}
	if errors.Is(results[0].Err, context.Canceled) {
		t.Fatal("source error must not be misreported as cancellation")
	}
}

// TestStreamSourceReportsCancellation: a stream source whose binding context
// was cancelled must not masquerade as a normally drained stream to a later
// caller holding a live context.
func TestStreamSourceReportsCancellation(t *testing.T) {
	projects := corpus.Generate(corpus.Options{Seed: 9, ModulesPerProject: 1, FuncsPerModule: 4})
	src := Modules(extract.New(extract.Options{}), projects[0].Modules[0])
	bindCtx, cancel := context.WithCancel(context.Background())
	if _, ok, err := src.Next(bindCtx); err != nil || !ok {
		t.Fatalf("first pull failed: ok=%v err=%v", ok, err)
	}
	cancel()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, ok, err := src.Next(context.Background())
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("expected context.Canceled, got %v", err)
			}
			return // cancellation surfaced — not a silent drain
		}
		if !ok {
			t.Fatal("cancelled stream reported a clean drain")
		}
		if time.Now().After(deadline) {
			t.Fatal("stream kept producing after its binding context was cancelled")
		}
	}
}

func TestParMapOrdered(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out := ParMap(context.Background(), 7, items, func(_ context.Context, i, v int) int {
		return v * v
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
	if len(ParMap(context.Background(), 3, nil, func(_ context.Context, _ int, v int) int { return v })) != 0 {
		t.Fatal("empty input must give empty output")
	}
}
