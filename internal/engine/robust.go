package engine

// Fault tolerance for the discovery loop. Three mechanisms keep a campaign
// alive when individual windows or the provider misbehave:
//
//   - Panic isolation: a panic anywhere inside one sequence's trip through
//     the loop is recovered in the worker, converted to an OutcomePanicked
//     result, and the window is quarantined — the campaign continues and the
//     other windows are unaffected.
//   - Stage deadlines: Config.StageTimeout bounds each propose, verify and
//     generalize invocation so one pathological window cannot stall the
//     pool (the substrate stages are CPU-bound and not context-aware, so
//     the bound is enforced from outside).
//   - Degraded discovery: when the provider's circuit breaker is open
//     (llm.ErrCircuitOpen from a Retrying client), the knowledge base plays
//     the proposer — rule-driven rewrites still flow through the normal
//     filter and verify stages, so the campaign keeps finding what the
//     registry can close while the provider is down.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/alive"
	"repro/internal/ir"
	"repro/internal/mca"
	"repro/internal/opt"
)

// ErrStageTimeout marks a stage abandoned by Config.StageTimeout. The
// sequence that hit it reports Errored; the stage's goroutine is left to
// finish in the background (its result may still land in the verify cache).
var ErrStageTimeout = errors.New("engine: stage deadline exceeded")

// runSeqIsolated is the worker's panic boundary around one sequence: a panic
// inside any stage becomes an OutcomePanicked result and quarantines the
// window instead of killing the process.
func (e *Engine) runSeqIsolated(ctx context.Context, it item) (res Result) {
	defer func() {
		if pv := recover(); pv != nil {
			var src *ir.Func
			if it.seq != nil {
				src = it.seq.Fn
			}
			res = Result{
				Index:   it.idx,
				Seq:     it.seq,
				Src:     src,
				Outcome: Panicked,
				Err:     fmt.Errorf("engine: sequence panicked: %v", pv),
			}
			e.quarantine(src)
			e.stats.recordPanic()
		}
	}()
	return e.runSeq(ctx, it)
}

// quarantine records a window whose processing panicked, keyed by the 16-hex
// hash the store and service use for findings.
func (e *Engine) quarantine(src *ir.Func) {
	if src == nil {
		return
	}
	key := fmt.Sprintf("%016x", ir.Hash(src))
	e.qmu.Lock()
	defer e.qmu.Unlock()
	for _, q := range e.quarantined {
		if q == key {
			return
		}
	}
	e.quarantined = append(e.quarantined, key)
}

// Quarantined returns the window hashes (16-hex, occurrence order) whose
// processing panicked. Like Stats it may be read during a run and
// accumulates across runs of a reused engine.
func (e *Engine) Quarantined() []string {
	e.qmu.Lock()
	defer e.qmu.Unlock()
	return append([]string(nil), e.quarantined...)
}

// runBounded enforces Config.StageTimeout around one CPU-bound stage call.
// With no timeout configured it runs f inline. On timeout the goroutine is
// abandoned (it keeps running to completion); a panic inside f before the
// deadline propagates to the caller, and one after the deadline is swallowed
// by the buffered channel rather than escaping into the runtime.
func (e *Engine) runBounded(stage string, f func()) error {
	if e.cfg.StageTimeout <= 0 {
		f()
		return nil
	}
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		f()
	}()
	t := time.NewTimer(e.cfg.StageTimeout)
	defer t.Stop()
	select {
	case pv := <-done:
		if pv != nil {
			panic(pv)
		}
		return nil
	case <-t.C:
		return fmt.Errorf("engine: stage %s: %w", stage, ErrStageTimeout)
	}
}

// verifyBounded is the verify stage behind the stage deadline.
func (e *Engine) verifyBounded(src, cand *ir.Func) (alive.Result, error) {
	var res alive.Result
	if err := e.runBounded(StageVerify, func() { res = e.verify(src, cand) }); err != nil {
		return alive.Result{}, err
	}
	return res, nil
}

// degradedSeq is the propose-free discovery path used while the provider's
// circuit breaker is open: the full rule registry (baseline + patch + KB)
// plays the proposer, and the normal filter and verify stages still gate the
// outcome. Results are marked Degraded so consumers can serve them without
// persisting them — once the provider recovers, a resubmission recomputes
// the window with the real proposer.
func (e *Engine) degradedSeq(res Result, src *ir.Func) Result {
	res.Degraded = true
	e.stats.recordDegraded()
	o := e.cfg.Opt
	o.Rules = e.kb
	start := time.Now()
	cand := opt.Run(src, o)
	e.stats.recordStage(StagePreprocess, time.Since(start).Seconds())
	if ir.Hash(cand) == ir.Hash(src) {
		res.Outcome = NoProposal
		return res
	}
	att := Attempt{Candidate: cand.String(), Parsed: true}
	if !e.cfg.DisableInterestingness && !e.filter(src, cand) {
		res.Attempts = append(res.Attempts, att)
		res.Outcome = Uninteresting
		return res
	}
	verdict, verr := e.verifyBounded(src, cand)
	if verr != nil {
		res.Outcome, res.Err = Errored, verr
		return res
	}
	if verdict.Verdict != alive.Correct {
		// A registry rewrite should always refine; treat a miss as Refuted
		// rather than trusting it.
		res.Attempts = append(res.Attempts, att)
		res.Outcome = Refuted
		return res
	}
	att.Verified = true
	res.Attempts = append(res.Attempts, att)
	res.Outcome = Found
	res.Cand = cand
	res.RuleHits = e.attribute(src)
	rep := mca.Analyze(cand, e.cfg.CPU)
	res.InstrsAfter = rep.Instructions
	res.CyclesAfter = rep.TotalCycles
	return res
}
