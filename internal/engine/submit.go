package engine

// The submission API: where Run drives the engine from a finite Source that
// drains, a long-running service (cmd/lpod) feeds windows incrementally as
// they arrive over HTTP. Queue is a Source whose items are pushed by
// Submit, and Submitter binds a Queue to a live Run so a daemon can keep
// one warm engine — program cache, CEPool, verify cache, learned rules —
// across millions of submissions.

import (
	"context"
	"errors"
	"sync"

	"repro/internal/extract"
	"repro/internal/ir"
)

// ErrQueueClosed is returned by Submit after Close.
var ErrQueueClosed = errors.New("engine: submit queue closed")

// ErrQueueFull is returned by TrySubmit when the queue's buffer is full —
// the non-blocking admission signal a service turns into 429 Too Many
// Requests instead of letting slow engine workers wedge its handlers.
var ErrQueueFull = errors.New("engine: submit queue full")

// Queue is a Source fed incrementally by Submit instead of drained from a
// fixed corpus. The engine's feeder pulls from it like any other Source;
// Close marks the end of the stream, after which already-submitted items
// still drain. Submit blocks while the engine's bounded queues are full, so
// backpressure reaches the submitter exactly like it reaches a corpus
// feeder.
type Queue struct {
	ch     chan *extract.Sequence
	closed chan struct{}
	once   sync.Once
}

// NewQueue builds a queue with the given buffer (values below 1 get an
// unbuffered channel: each Submit rendezvouses with the feeder).
func NewQueue(buffer int) *Queue {
	if buffer < 0 {
		buffer = 0
	}
	return &Queue{ch: make(chan *extract.Sequence, buffer), closed: make(chan struct{})}
}

// Submit enqueues one sequence, blocking while the queue is full. It fails
// with ErrQueueClosed after Close and with ctx.Err() if the context ends
// while blocked.
func (q *Queue) Submit(ctx context.Context, seq *extract.Sequence) error {
	select {
	case <-q.closed:
		return ErrQueueClosed
	default:
	}
	select {
	case q.ch <- seq:
		return nil
	case <-q.closed:
		return ErrQueueClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TrySubmit enqueues one sequence without blocking: it fails with
// ErrQueueFull when the buffer is full and ErrQueueClosed after Close.
func (q *Queue) TrySubmit(seq *extract.Sequence) error {
	select {
	case <-q.closed:
		return ErrQueueClosed
	default:
	}
	select {
	case q.ch <- seq:
		return nil
	case <-q.closed:
		return ErrQueueClosed
	default:
		return ErrQueueFull
	}
}

// Close ends the stream: Submit starts failing, and once the buffered items
// drain, Next reports the source as drained (which lets the engine's run
// finish and its result channel close). Close is idempotent.
func (q *Queue) Close() { q.once.Do(func() { close(q.closed) }) }

// Next implements Source. It blocks until an item is submitted, the queue
// is closed and drained, or ctx ends.
func (q *Queue) Next(ctx context.Context) (*extract.Sequence, bool, error) {
	select {
	case seq := <-q.ch:
		return seq, true, nil
	default:
	}
	select {
	case seq := <-q.ch:
		return seq, true, nil
	case <-q.closed:
		// Closed: hand out whatever is still buffered, then report drained.
		select {
		case seq := <-q.ch:
			return seq, true, nil
		default:
			return nil, false, nil
		}
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// Submitter is a live engine run fed by Submit calls: the streaming
// counterpart of RunAll for long-running services. Build one with
// Engine.Submitter, push windows with Submit/SubmitSeq, consume Results
// (emitted in submission order, exactly one per submission), and Close to
// drain. The zero-memory contract of Run applies: abandon Results only by
// cancelling the context passed to Submitter.
type Submitter struct {
	q       *Queue
	results <-chan Result
	stats   *Stats
}

// Submitter starts a Run over a fresh submit queue and returns the handle.
// The run lives until Close drains it or ctx is cancelled. The engine's
// caches, counterexample pool and learned-rule state are shared with any
// other runs of the same Engine, which is the point: a daemon keeps them
// warm across submissions.
func (e *Engine) Submitter(ctx context.Context) *Submitter {
	q := NewQueue(e.cfg.QueueSize)
	results, stats := e.Run(ctx, q)
	return &Submitter{q: q, results: results, stats: stats}
}

// Submit wraps a bare window function as a sequence and enqueues it.
func (s *Submitter) Submit(ctx context.Context, fn *ir.Func) error {
	return s.q.Submit(ctx, &extract.Sequence{Fn: fn, Len: fn.NumInstrs(true)})
}

// SubmitSeq enqueues an already-extracted sequence.
func (s *Submitter) SubmitSeq(ctx context.Context, seq *extract.Sequence) error {
	return s.q.Submit(ctx, seq)
}

// TrySubmit is the non-blocking Submit: ErrQueueFull when the engine's
// queue has no room, so a service can shed load with 429 instead of
// blocking its handler.
func (s *Submitter) TrySubmit(fn *ir.Func) error {
	return s.q.TrySubmit(&extract.Sequence{Fn: fn, Len: fn.NumInstrs(true)})
}

// Results is the engine's ordered result stream: one Result per submission,
// in submission order. The channel closes after Close once every
// outstanding submission has drained.
func (s *Submitter) Results() <-chan Result { return s.results }

// Stats exposes the live run statistics (same object as Engine stats).
func (s *Submitter) Stats() *Stats { return s.stats }

// Close stops accepting submissions and lets the run drain; pending
// submissions still produce Results. Idempotent.
func (s *Submitter) Close() { s.q.Close() }
