package engine

import (
	"context"
	"os"
	"sync"

	"repro/internal/corpus"
	"repro/internal/extract"
	"repro/internal/ir"
	"repro/internal/parser"
	"repro/internal/wasm"
)

// Source streams instruction sequences into the engine. Next returns the
// next sequence, ok=false once the source is drained, or an error (which
// aborts the run with a final Errored result). Next is called from a single
// feeder goroutine, so implementations need not be re-entrant; they should
// respect ctx so a cancelled run stops producing promptly. Stream-backed
// sources (Modules, File, Corpus) bind their producer to the first Next
// call's context — consume them under a single context.
type Source interface {
	Next(ctx context.Context) (*extract.Sequence, bool, error)
}

// sliceSource serves pre-extracted sequences.
type sliceSource struct {
	seqs []*extract.Sequence
	i    int
}

func (s *sliceSource) Next(ctx context.Context) (*extract.Sequence, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	if s.i >= len(s.seqs) {
		return nil, false, nil
	}
	s.i++
	return s.seqs[s.i-1], true, nil
}

// Sequences is a slice-backed Source over already-extracted sequences.
func Sequences(seqs ...*extract.Sequence) Source {
	return &sliceSource{seqs: seqs}
}

// Funcs wraps bare functions (benchmark cases, registry pairs) as a Source.
func Funcs(fns ...*ir.Func) Source {
	seqs := make([]*extract.Sequence, len(fns))
	for i, fn := range fns {
		seqs[i] = &extract.Sequence{Fn: fn, Len: fn.NumInstrs(true)}
	}
	return &sliceSource{seqs: seqs}
}

// streamSource adapts a push-style producer (the extractor's Stream) into
// the pull-style Source. The producer goroutine starts lazily on the first
// Next, is bound to that first call's context, and stops as soon as that
// context ends. Consume a stream source with one context: if the binding
// context is cancelled, any later Next reports the cancellation error
// rather than silently presenting a truncated stream as drained.
type streamSource struct {
	once    sync.Once
	produce func(ctx context.Context, emit func(*extract.Sequence) bool) error
	ch      chan *extract.Sequence
	errc    chan error
}

func newStreamSource(produce func(ctx context.Context, emit func(*extract.Sequence) bool) error) *streamSource {
	return &streamSource{
		produce: produce,
		ch:      make(chan *extract.Sequence),
		errc:    make(chan error, 1),
	}
}

func (s *streamSource) Next(ctx context.Context) (*extract.Sequence, bool, error) {
	s.once.Do(func() {
		go func() {
			defer close(s.ch)
			emit := func(seq *extract.Sequence) bool {
				select {
				case s.ch <- seq:
					return true
				case <-ctx.Done():
					return false
				}
			}
			err := s.produce(ctx, emit)
			if err == nil {
				// A producer stopped by cancellation must not look like a
				// normally drained stream to a caller holding another
				// (live) context.
				err = ctx.Err()
			}
			if err != nil {
				s.errc <- err
			}
		}()
	})
	select {
	case seq, ok := <-s.ch:
		if !ok {
			select {
			case err := <-s.errc:
				return nil, false, err
			default:
			}
			return nil, false, nil
		}
		return seq, true, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// Modules streams the extraction of the given modules through ex, emitting
// each kept sequence as soon as Algorithm 2 finds it. The extractor's dedup
// set spans all modules (and any other source sharing ex).
func Modules(ex *extract.Extractor, mods ...*ir.Module) Source {
	return newStreamSource(func(ctx context.Context, emit func(*extract.Sequence) bool) error {
		for _, m := range mods {
			if ctx.Err() != nil {
				return nil
			}
			ex.Stream(m, emit)
		}
		return nil
	})
}

// File lazily parses an .ll file and streams its extracted sequences.
func File(path string, ex *extract.Extractor) Source {
	return newStreamSource(func(ctx context.Context, emit func(*extract.Sequence) bool) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		m, err := parser.Parse(string(data))
		if err != nil {
			return err
		}
		ex.Stream(m, emit)
		return nil
	})
}

// WasmModules lifts decoded wasm modules to IR and streams the extraction
// of every lifted function. Per-module lift coverage (functions lifted,
// skipped, and why) is folded into stats when non-nil — pass the owning
// engine's Stats so `lpo -stats` and /v1/stats report it.
func WasmModules(ex *extract.Extractor, stats *Stats, mods ...*wasm.Module) Source {
	return newStreamSource(func(ctx context.Context, emit func(*extract.Sequence) bool) error {
		for _, wm := range mods {
			if ctx.Err() != nil {
				return nil
			}
			name := wm.Name
			if name == "" {
				name = "wasm"
			}
			m, st := wasm.Lift(wm, name)
			if stats != nil {
				stats.RecordLift(st)
			}
			ex.Stream(m, emit)
		}
		return nil
	})
}

// WasmFile lazily reads and decodes a .wasm binary and streams the
// extraction of its lifted functions.
func WasmFile(path string, ex *extract.Extractor, stats *Stats) Source {
	return newStreamSource(func(ctx context.Context, emit func(*extract.Sequence) bool) error {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		wm, err := wasm.Decode(data)
		if err != nil {
			return err
		}
		wm.Name = path
		m, st := wasm.Lift(wm, path)
		if stats != nil {
			stats.RecordLift(st)
		}
		ex.Stream(m, emit)
		return nil
	})
}

// WasmCorpus streams the extraction of the embedded wasm fixture corpus
// (corpus.WasmModules), recording lift coverage into stats when non-nil.
func WasmCorpus(ex *extract.Extractor, stats *Stats) Source {
	return newStreamSource(func(ctx context.Context, emit func(*extract.Sequence) bool) error {
		mods, err := corpus.WasmModules()
		if err != nil {
			return err
		}
		for _, wm := range mods {
			if ctx.Err() != nil {
				return nil
			}
			name := wm.Name
			if name == "" {
				name = "wasm"
			}
			m, st := wasm.Lift(wm, name)
			if stats != nil {
				stats.RecordLift(st)
			}
			ex.Stream(m, emit)
		}
		return nil
	})
}

// Corpus lazily generates the synthetic corpus and streams the extraction of
// every module of every project.
func Corpus(copts corpus.Options, ex *extract.Extractor) Source {
	return newStreamSource(func(ctx context.Context, emit func(*extract.Sequence) bool) error {
		for _, p := range corpus.Generate(copts) {
			for _, m := range p.Modules {
				if ctx.Err() != nil {
					return nil
				}
				ex.Stream(m, emit)
			}
		}
		return nil
	})
}
