package engine

// This file holds the four pipeline stages of Algorithm 1, each instrumented
// with per-stage metrics: Propose (the provider call), Preprocess (syntax
// check + opt canonicalization), Filter (the §3.3 interestingness model) and
// Verify (the translation validator, behind a cross-worker cache).

import (
	"context"
	"errors"
	"time"

	"repro/internal/alive"
	"repro/internal/ir"
	"repro/internal/llm"
	"repro/internal/mca"
	"repro/internal/opt"
	"repro/internal/parser"
)

// Stage names, in pipeline order. Stats.Stage accepts these. The generalize
// stage only runs when Config.Learn is set (the post-verify hook that lifts
// Found rewrites into learned rules).
const (
	StagePropose    = "propose"
	StagePreprocess = "preprocess"
	StageFilter     = "filter"
	StageVerify     = "verify"
	StageGeneralize = "generalize"
)

// StageNames lists the pipeline stages in execution order.
func StageNames() []string {
	return []string{StagePropose, StagePreprocess, StageFilter, StageVerify, StageGeneralize}
}

// prompt renders the initial user message for a sequence.
func prompt(src *ir.Func) string {
	return "Optimize the following LLVM IR instruction sequence. " +
		"Reply with a complete function that is a correct refinement:\n\n" +
		src.String()
}

// propose is stage 1: one provider round trip. Its stage latency is the
// response's *virtual* latency (the profile's throughput model), not wall
// time, matching the rest of the reproduction's accounting. Config.
// StageTimeout rides the request context — providers are context-aware, so
// no outside enforcement is needed.
func (e *Engine) propose(ctx context.Context, messages []llm.Message, round int) (llm.Response, error) {
	if e.cfg.StageTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.StageTimeout)
		defer cancel()
	}
	resp, err := e.client.Complete(ctx, llm.Request{
		Model:    e.client.Profile().Name,
		Messages: messages,
		Round:    round,
	})
	e.stats.recordStage(StagePropose, resp.Usage.VirtualSeconds)
	return resp, err
}

// preprocess is stage 2: parse the candidate and canonicalize it with opt.
// The returned error is the positioned parser diagnostic fed back verbatim.
func (e *Engine) preprocess(candidate string) (*ir.Func, error) {
	start := time.Now()
	defer func() { e.stats.recordStage(StagePreprocess, time.Since(start).Seconds()) }()
	cand, err := parser.ParseFunc(candidate)
	if err != nil {
		return nil, err
	}
	if !e.cfg.DisableOptPreprocess {
		// The rule selection for Config.Opt is prebuilt once in New; only
		// the iteration bound still comes from the per-run options.
		o := e.cfg.Opt
		o.Rules = e.optSet
		cand = opt.Run(cand, o)
	}
	return cand, nil
}

// filter is stage 3: the interestingness check.
func (e *Engine) filter(src, cand *ir.Func) bool {
	start := time.Now()
	defer func() { e.stats.recordStage(StageFilter, time.Since(start).Seconds()) }()
	return Interesting(src, cand, e.cfg.CPU)
}

// verify is stage 4: refinement checking, memoized across workers by the
// structural hashes of the pair. alive.Verify is a pure function of
// (src, cand, options), so the cache never changes an outcome — it only
// skips redundant re-verification when different workers (or rounds)
// produce the same candidate for the same window.
func (e *Engine) verify(src, cand *ir.Func) alive.Result {
	start := time.Now()
	defer func() { e.stats.recordStage(StageVerify, time.Since(start).Seconds()) }()
	if e.cfg.DisableVerifyCache {
		res := alive.Verify(src, cand, e.cfg.Verify)
		e.stats.recordVerify(res.Checked, res.Tiers)
		return res
	}
	key := verifyKey{src: ir.Hash(src), cand: ir.Hash(cand)}
	e.vmu.Lock()
	ent, hit := e.vcache[key]
	if !hit {
		ent = &verifyEntry{}
		e.vcache[key] = ent
	}
	e.vmu.Unlock()
	if hit {
		e.stats.recordCacheHit()
	}
	// Singleflight: concurrent workers hitting the same pair wait for one
	// verification instead of racing to compute it twice.
	ent.once.Do(func() {
		defer func() {
			if pv := recover(); pv != nil {
				// Park the panic on the entry and re-raise: once.Do marks the
				// slot done even on panic, so every waiter must re-raise too —
				// the zero ent.res would otherwise read as a Correct verdict.
				ent.panicked = pv
				panic(pv)
			}
		}()
		ent.res = alive.Verify(src, cand, e.cfg.Verify)
		e.stats.recordVerify(ent.res.Checked, ent.res.Tiers)
	})
	if ent.panicked != nil {
		panic(ent.panicked)
	}
	return ent.res
}

// OptimizeSeq runs Algorithm 1's inner loop (lines 6-24) on one wrapped
// sequence: up to AttemptLimit trips through Propose → Preprocess → Filter →
// Verify, feeding each failure back to the provider. round seeds the
// provider so repeated rounds resample. It is safe to call concurrently.
func (e *Engine) OptimizeSeq(ctx context.Context, src *ir.Func, round int) Result {
	res := Result{Outcome: NoProposal, Src: src, Round: round}
	srcRep := mca.Analyze(src, e.cfg.CPU)
	res.InstrsBefore = srcRep.Instructions
	res.CyclesBefore = srcRep.TotalCycles

	messages := []llm.Message{
		{Role: llm.RoleSystem, Content: llm.SystemPrompt},
		{Role: llm.RoleUser, Content: prompt(src)},
	}
	sawRefutation := false
	sawSyntaxError := false
	for attempt := 0; attempt < e.cfg.AttemptLimit; attempt++ {
		resp, err := e.propose(ctx, messages, round)
		if err != nil {
			if errors.Is(err, llm.ErrCircuitOpen) {
				// Provider down for good (breaker open): fall back to the
				// knowledge-base proposer instead of failing the sequence.
				return e.degradedSeq(res, src)
			}
			res.Outcome = Errored
			if ctx.Err() != nil {
				res.Outcome = Canceled
			}
			res.Err = err
			return res
		}
		res.Usage.Add(resp.Usage)
		messages = append(messages, llm.Message{Role: llm.RoleAssistant, Content: resp.Text})

		att := Attempt{Candidate: llm.ExtractFunc(resp.Text)}
		cand, perr := e.preprocess(att.Candidate)
		if perr != nil {
			att.Feedback = perr.Error()
			res.Attempts = append(res.Attempts, att)
			sawSyntaxError = true
			messages = append(messages, llm.Message{Role: llm.RoleUser, Content: att.Feedback})
			continue
		}
		att.Parsed = true
		if !e.cfg.DisableInterestingness && !e.filter(src, cand) {
			res.Attempts = append(res.Attempts, att)
			res.Outcome = NoProposal
			if ir.Hash(cand) != ir.Hash(src) {
				res.Outcome = Uninteresting
			}
			return res // Alg. 1 line 16: abandon the sequence.
		}
		verdict, verr := e.verifyBounded(src, cand)
		if verr != nil {
			res.Attempts = append(res.Attempts, att)
			res.Outcome, res.Err = Errored, verr
			return res
		}
		switch verdict.Verdict {
		case alive.Correct:
			att.Verified = true
			res.Attempts = append(res.Attempts, att)
			res.Outcome = Found
			res.Cand = cand
			res.RuleHits = e.attribute(src)
			rep := mca.Analyze(cand, e.cfg.CPU)
			res.InstrsAfter = rep.Instructions
			res.CyclesAfter = rep.TotalCycles
			return res
		case alive.Incorrect:
			att.Feedback = verdict.CE.Format()
		case alive.Unsupported:
			att.Feedback = verdict.Err
		}
		res.Attempts = append(res.Attempts, att)
		sawRefutation = true
		messages = append(messages, llm.Message{Role: llm.RoleUser, Content: att.Feedback})
	}
	switch {
	case sawRefutation:
		res.Outcome = Refuted
	case sawSyntaxError:
		res.Outcome = SyntaxFailed
	}
	return res
}

// attribute names the registry rules (patch/KB provenance only) that close
// the src window, keyed by rule ID. It is the registry view of "which missed
// optimization is this": running the full rule set over the source and
// recording which non-baseline rules fire. Nil when no optional rule applies
// (e.g. a provider that found a rewrite outside the knowledge base).
func (e *Engine) attribute(src *ir.Func) map[string]int {
	hits := opt.Attribute(src, e.kb)
	if len(hits) == 0 {
		return nil
	}
	return hits
}

// Interesting implements the paper's §3.3 check: a candidate is worth
// verifying if it has fewer instructions, fewer estimated cycles, or the
// same of both while being syntactically different (enabling later folds).
func Interesting(src, cand *ir.Func, cpu *mca.CPUModel) bool {
	sr := mca.Analyze(src, cpu)
	cr := mca.Analyze(cand, cpu)
	if cr.Instructions < sr.Instructions || cr.TotalCycles < sr.TotalCycles {
		return true
	}
	return cr.Instructions == sr.Instructions && cr.TotalCycles == sr.TotalCycles &&
		ir.Hash(src) != ir.Hash(cand)
}
