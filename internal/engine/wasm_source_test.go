package engine

import (
	"context"
	"testing"

	"repro/internal/alive"
	"repro/internal/extract"
	"repro/internal/llm"
	"repro/internal/wasm"
)

// TestWasmCorpusSource is the engine half of the ISSUE's acceptance test: a
// campaign over the embedded wasm fixture corpus must lift the subset
// functions, discover at least one verified missed optimization (the
// planted and/or/xor windows), and account for every function in the lift
// coverage counters.
func TestWasmCorpusSource(t *testing.T) {
	ex := extract.New(extract.Options{})
	eng := New(llm.NewSim("Gemini2.0T", 1), Config{
		Rounds: 8,
		Verify: alive.Options{Samples: 128, Seed: 1},
	})
	results, stats := eng.Run(context.Background(), WasmCorpus(ex, eng.Stats()))
	found := 0
	for res := range results {
		switch res.Outcome {
		case Found:
			found++
		case Errored:
			t.Fatal(res.Err)
		}
	}
	if found == 0 {
		t.Fatal("wasm corpus campaign found nothing; the planted windows should be Found")
	}
	lc := stats.LiftCoverage()
	if lc.Funcs == 0 || lc.Lifted == 0 {
		t.Fatalf("no lift coverage recorded: %+v", lc)
	}
	if lc.Lifted+lc.Skipped != lc.Funcs {
		t.Fatalf("lift coverage does not add up: %+v", lc)
	}
	if lc.Skipped == 0 || len(lc.Reasons) == 0 {
		t.Fatalf("the mixed fixture should skip functions with reasons: %+v", lc)
	}
}

// TestWasmModulesSource drives one decoded module through the source and
// checks the per-module tally lands on the engine stats.
func TestWasmModulesSource(t *testing.T) {
	data := wasm.MustEncode(&wasm.Module{
		Types: []wasm.FuncType{{Params: []wasm.ValType{wasm.I32, wasm.I32}, Results: []wasm.ValType{wasm.I32}}},
		Funcs: []*wasm.Function{{
			TypeIdx: 0, Name: "pair",
			Body: []wasm.Instr{
				wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op(wasm.OpI32And),
				wasm.LocalGet(0), wasm.LocalGet(1), wasm.Op(wasm.OpI32Or),
				wasm.Op(wasm.OpI32Xor), wasm.End(),
			},
		}},
		Exports: []wasm.Export{{Name: "pair", Kind: 0, Index: 0}},
	})
	wm, err := wasm.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	ex := extract.New(extract.Options{})
	eng := New(llm.NewSim("Gemini2.0T", 1), Config{
		Rounds: 8,
		Verify: alive.Options{Samples: 128, Seed: 1},
	})
	results, stats := eng.Run(context.Background(), WasmModules(ex, eng.Stats(), wm))
	var seqs int
	for res := range results {
		if res.Outcome == Errored {
			t.Fatal(res.Err)
		}
		seqs++
	}
	if seqs == 0 {
		t.Fatal("no sequences extracted from the lifted module")
	}
	if lc := stats.LiftCoverage(); lc.Lifted != 1 || lc.Funcs != 1 {
		t.Fatalf("lift coverage = %+v, want 1/1", lc)
	}
}
