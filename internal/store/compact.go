package store

// Compaction: rewrite a record log without the records a policy drops
// (dead or evicted pool vectors, superseded rules), reclaiming disk without
// tombstones. The swap is atomic-or-nothing: the kept records are framed
// into <log>.compact, fsynced, and renamed over the log; a crash at any
// point before the rename leaves the original log authoritative (openLog
// deletes a leftover temp), and a crash after it finds a complete,
// self-consistent log. Records accepted but not yet durable ride along —
// they are written into the compacted log, so compaction doubles as a
// commit for the pending batch.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// compactSuffix names the temp file of an in-progress compaction.
const compactSuffix = ".compact"

// CompactStats reports what one Compact rewrite did.
type CompactStats struct {
	Kept        int   // records carried into the new log
	Dropped     int   // records the keep policy discarded
	BytesBefore int64 // log size before the rewrite
	BytesAfter  int64 // log size after
}

// Compact rewrites the log keeping only records for which keep returns true
// (nil keeps everything — still useful: it folds the pending batch in and
// drops bytes shadowed by duplicate frames). The store is stop-the-world
// for the duration: Puts, Gets and Commits block until the swap completes.
// On error the original log and in-memory state are untouched.
//
// Compaction renumbers record positions, so a Snapshot captured before
// Compact loses its point-in-time guarantee: it degrades to reading the
// compacted state (dropped records vanish from it; Scan stops at the new
// length). Callers holding snapshots across an admin-triggered compaction
// observe the compacted log, never garbage.
func (s *Store) Compact(keep func(kind Kind, key string, val []byte) bool) (CompactStats, error) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()

	var st CompactStats
	st.BytesBefore = s.size

	kept := make([]record, 0, len(s.recs))
	buf := []byte(magic)
	for _, rec := range s.recs {
		if keep != nil && !keep(rec.kind, rec.key, rec.val) {
			st.Dropped++
			continue
		}
		kept = append(kept, rec)
		buf = appendRecord(buf, rec)
	}
	st.Kept = len(kept)
	st.BytesAfter = int64(len(buf))

	path := filepath.Join(s.dir, s.name)
	tmpPath := path + compactSuffix
	if err := s.writeCompactTemp(tmpPath, buf); err != nil {
		os.Remove(tmpPath)
		return st, fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return st, fmt.Errorf("store: compact: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return st, fmt.Errorf("store: compact: %w", err)
	}

	// The rename replaced the path; the old descriptor still points at the
	// old inode, so swap in a descriptor for the new log before dropping it.
	osf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return st, fmt.Errorf("store: compact: reopening log: %w", err)
	}
	var nf File = osf
	if s.wrap != nil {
		nf = s.wrap(osf)
	}
	if _, err := nf.Seek(int64(len(buf)), io.SeekStart); err != nil {
		nf.Close()
		return st, fmt.Errorf("store: compact: %w", err)
	}
	s.f.Close()
	s.f = nf

	s.recs = kept
	s.idx = make(map[string]int, len(kept))
	s.byK = [4]int{}
	for i, rec := range kept {
		s.idx[indexKey(rec.kind, rec.key)] = i
		s.count(rec.kind, 1)
	}
	s.size = int64(len(buf))
	s.durable = s.size
	s.dirty = nil
	s.compactions++
	return st, nil
}

// writeCompactTemp writes and fsyncs the full compacted log image. The temp
// write goes through the store's write-layer shim too, so chaos tests can
// fail a compaction mid-write — which must leave the original log intact.
func (s *Store) writeCompactTemp(tmpPath string, buf []byte) error {
	osf, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var f File = osf
	if s.wrap != nil {
		f = s.wrap(osf)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
