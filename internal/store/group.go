package store

// Group commit: the durability path for hot ingest. One committer goroutine
// per log turns any number of concurrent Flush callers into one framed
// batch and one fsync (leader/follower: whoever wakes the committer first
// leads; everyone who registered before the batch commits rides along).
// Because Commit performs its disk I/O without the index lock, writers keep
// Put-ing WHILE the current batch fsyncs — those records form the next
// batch, so the batch size adapts to how slow the disk is.

import (
	"runtime"
	"sync"
	"time"
)

// GroupCommitOptions tunes the committer. The zero value picks defaults.
type GroupCommitOptions struct {
	// MaxDelay is the coalescing window: after the committer wakes it waits
	// up to MaxDelay for more records before committing, unless MaxBatch
	// records are already pending. 0 means the default (500µs); negative
	// disables coalescing (commit immediately on wake).
	MaxDelay time.Duration
	// MaxBatch commits the batch early once this many records are pending.
	// 0 means the default (512).
	MaxBatch int
	// RetryDelay is how long the committer waits after a FAILED commit
	// before retrying the pending batch on its own — the "no accepted
	// record lost" backstop that drains a backlog even when no new traffic
	// arrives to trigger a Flush. 0 means the default (500ms); negative
	// disables background retry.
	RetryDelay time.Duration
}

func (o GroupCommitOptions) withDefaults() GroupCommitOptions {
	if o.MaxDelay == 0 {
		o.MaxDelay = 500 * time.Microsecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 512
	}
	if o.RetryDelay == 0 {
		o.RetryDelay = 500 * time.Millisecond
	}
	return o
}

// committer is the per-log group-commit worker.
type committer struct {
	s    *Store
	opts GroupCommitOptions

	mu      sync.Mutex
	waiters []chan<- error

	wake chan struct{} // 1-buffered doorbell
	stop chan struct{}
	done chan struct{}
}

// StartGroupCommit starts the committer goroutine. After this, Flush
// coalesces concurrent durability barriers into shared fsyncs; plain Commit
// still works (it serializes with the committer on commitMu). Idempotent —
// a second call while a committer is running is a no-op.
func (s *Store) StartGroupCommit(opts GroupCommitOptions) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gc != nil {
		return
	}
	c := &committer{
		s:    s,
		opts: opts.withDefaults(),
		wake: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.gc = c
	go c.run()
}

// StopGroupCommit stops the committer after a final commit attempt of
// whatever is pending. Safe to call when no committer is running.
func (s *Store) StopGroupCommit() {
	s.mu.Lock()
	c := s.gc
	s.gc = nil
	s.mu.Unlock()
	if c == nil {
		return
	}
	close(c.stop)
	<-c.done
}

// Flush is the durability barrier: it returns once every record Put before
// the call is durable on disk, or with the error of the commit attempt that
// should have covered it (the batch then stays pending, exactly as after a
// failed Commit). With a committer running, concurrent Flushes share one
// fsync; without one, Flush degrades to a plain Commit.
func (s *Store) Flush() error {
	s.mu.Lock()
	if len(s.dirty) == 0 {
		// Everything accepted so far is durable. (Commit covers all dirty
		// records and holds mu while updating, so an empty dirty list under
		// mu really means "nothing pending".)
		s.mu.Unlock()
		return nil
	}
	c := s.gc
	s.mu.Unlock()

	if c == nil {
		return s.Commit()
	}
	ch := make(chan error, 1)
	c.mu.Lock()
	c.waiters = append(c.waiters, ch)
	c.mu.Unlock()
	c.ring()
	select {
	case err := <-ch:
		return err
	case <-c.done:
		// The committer shut down concurrently. Its final drain may or may
		// not have claimed this waiter; if not, commit directly.
		select {
		case err := <-ch:
			return err
		default:
			return s.Commit()
		}
	}
}

// ring rings the doorbell without blocking (a pending ring is enough).
func (c *committer) ring() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// run is the committer loop: wait for a doorbell (or a retry deadline),
// coalesce briefly, commit once, notify every waiter registered before the
// commit. A waiter that registers mid-commit is picked up by the next round
// — its records are covered either by this batch (if its Put preceded the
// batch snapshot) or by the next one; either way the notification it gets
// reflects a commit attempt that covered its records.
func (c *committer) run() {
	defer close(c.done)
	var retry <-chan time.Time
	for {
		select {
		case <-c.stop:
			// Final drain: one last attempt so a clean shutdown never
			// leaves records pending just because nobody called Flush.
			// Claim waiters BEFORE committing — anyone registering later
			// falls back through the done channel and commits directly.
			ws := c.take()
			c.notify(ws, c.s.Commit())
			return
		case <-c.wake:
		case <-retry:
		}
		retry = nil
		c.coalesce()
		ws := c.take()
		err := c.s.Commit()
		c.notify(ws, err)
		if err != nil && c.opts.RetryDelay > 0 {
			retry = time.After(c.opts.RetryDelay)
		}
	}
}

// coalesce lets the batch grow while records are still arriving and returns
// as soon as it stalls: two consecutive looks (a scheduler yield apart) at
// the same pending count mean every writer that was going to join this
// batch has — more waiting would only add latency, not amortization. MaxBatch
// caps the batch outright and MaxDelay is the hard time cap (it is a
// backstop, not the expected exit: OS timer granularity is orders of
// magnitude coarser than a commit cycle, so an arrival-driven exit is what
// keeps group-commit latency scheduler-bound instead of timer-bound).
func (c *committer) coalesce() {
	if c.opts.MaxDelay <= 0 {
		return
	}
	deadline := time.Now().Add(c.opts.MaxDelay)
	last := -1
	for {
		c.s.mu.RLock()
		n := len(c.s.dirty)
		c.s.mu.RUnlock()
		if n >= c.opts.MaxBatch || n == last {
			return
		}
		last = n
		select {
		case <-c.stop:
			return
		default:
		}
		runtime.Gosched()
		if time.Now().After(deadline) {
			return
		}
	}
}

// take claims the current waiter list.
func (c *committer) take() []chan<- error {
	c.mu.Lock()
	ws := c.waiters
	c.waiters = nil
	c.mu.Unlock()
	return ws
}

// notify delivers the commit outcome to every claimed waiter.
func (c *committer) notify(ws []chan<- error, err error) {
	for _, ch := range ws {
		ch <- err
	}
}
