package store

import (
	"bytes"
	"testing"

	"repro/internal/fault"
)

// wrapFault adapts fault.NewFile to OpenWith's shim signature.
func wrapFault(inj *fault.Injector) func(File) File {
	return func(f File) File { return fault.NewFile(f, inj) }
}

// TestCommitFailureRetry pins the degraded-durability contract: a failed
// Commit loses nothing — the record stays readable, pending, and the next
// Commit makes it durable.
func TestCommitFailureRetry(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(7, fault.Plan{
		fault.SiteStoreSync: {ErrorRate: 1, Budget: 1},
	})
	// recover() on an empty file syncs the header; spend no budget there.
	inj.Disable()
	s, err := OpenWith(dir, wrapFault(inj))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(KindFinding, "aaaa", []byte("finding-a")); err != nil {
		t.Fatal(err)
	}
	inj.Enable()

	if err := s.Commit(); err == nil {
		t.Fatal("Commit succeeded despite injected fsync failure")
	}
	st := s.Stats()
	if st.CommitFails != 1 || st.Pending != 1 {
		t.Fatalf("after failed commit: CommitFails=%d Pending=%d", st.CommitFails, st.Pending)
	}
	// The record is still servable from memory.
	if v, ok := s.Get(KindFinding, "aaaa"); !ok || !bytes.Equal(v, []byte("finding-a")) {
		t.Fatalf("accepted record lost after failed commit: %q %v", v, ok)
	}
	// A duplicate Put is still deduplicated while pending.
	if added, _ := s.Put(KindFinding, "aaaa", []byte("finding-a")); added {
		t.Fatal("pending record not visible to dedup")
	}

	// Budget exhausted: the retry succeeds and drains the batch.
	if err := s.Commit(); err != nil {
		t.Fatalf("retry commit failed: %v", err)
	}
	st = s.Stats()
	if st.Pending != 0 || st.CommitFails != 1 {
		t.Fatalf("after retry: Pending=%d CommitFails=%d", st.Pending, st.CommitFails)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A clean reopen sees the record: durability really happened.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok := s2.Get(KindFinding, "aaaa"); !ok || !bytes.Equal(v, []byte("finding-a")) {
		t.Fatalf("reopened store missing record: %q %v", v, ok)
	}
	if s2.Stats().Recovered != 0 {
		t.Fatalf("clean shutdown left torn bytes: %+v", s2.Stats())
	}
}

// TestRecoveryAfterTornCommit pins crash recovery when the rollback itself
// fails: a partial append whose cleanup truncate is also blocked leaves torn
// bytes on disk, and Open truncates them back to the last intact record. No
// committed record is lost.
func TestRecoveryAfterTornCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(KindFinding, "aaaa", []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen through the fault shim: the next commit's Write lands only half
	// the batch, and the rollback Truncate is blocked too — the torn tail
	// stays on disk, as after a crash or a wedged disk.
	inj := fault.New(11, fault.Plan{
		fault.SiteStoreWrite:    {ErrorRate: 1, Budget: 1},
		fault.SiteStoreTruncate: {ErrorRate: 1, Budget: 1},
	})
	s, err = OpenWith(dir, wrapFault(inj))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(KindFinding, "bbbb", []byte("torn")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err == nil {
		t.Fatal("Commit succeeded despite injected partial write")
	}
	// Abandon the store without Close, like a crash.

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Stats().Recovered == 0 {
		t.Fatalf("no torn tail recovered: %+v", s2.Stats())
	}
	if v, ok := s2.Get(KindFinding, "aaaa"); !ok || !bytes.Equal(v, []byte("committed")) {
		t.Fatalf("committed record lost to recovery: %q %v", v, ok)
	}
	if _, ok := s2.Get(KindFinding, "bbbb"); ok {
		t.Fatal("torn record resurrected")
	}
	// The recovered log accepts the record again and commits cleanly.
	if added, err := s2.Put(KindFinding, "bbbb", []byte("torn")); err != nil || !added {
		t.Fatalf("re-Put after recovery: added=%v err=%v", added, err)
	}
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
}
