package store

// Sharded fans one logical content-addressed store over N independent
// append-only shard logs (dir/lpod-00.log … dir/lpod-NN.log, hex-numbered)
// so concurrent submissions stop contending on a single file and a single
// fsync queue. Records are routed by window-hash prefix: the shard of a key
// is a hash of everything before the first '/', which is the 16-hex window
// hash for findings and pool vectors — so a window's finding and its
// counterexample vectors always share a shard, and per-shard append order
// is a durability order for that window. Rule keys (content-derived IDs)
// spread by the same function.
//
// Each shard is a full Store: its own log, index, committer, recovery and
// snapshot isolation. A logical operation touches exactly one shard (Put,
// Get, Has) or visits shards in shard order (Scan, Keys); Flush and Commit
// fan out to every shard in parallel.

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Backend is the store surface the service layer runs against — satisfied
// by both *Store (one log) and *Sharded (N logs).
type Backend interface {
	Put(kind Kind, key string, val []byte) (added bool, err error)
	Get(kind Kind, key string) ([]byte, bool)
	Has(kind Kind, key string) bool
	Len(kind Kind) int
	Keys(kind Kind) []string
	Scan(kind Kind, fn func(key string, val []byte) bool)
	Commit() error
	Flush() error
	StartGroupCommit(GroupCommitOptions)
	StopGroupCommit()
	Compact(keep func(kind Kind, key string, val []byte) bool) (CompactStats, error)
	Stats() Stats
	Dir() string
	Close() error
}

var (
	_ Backend = (*Store)(nil)
	_ Backend = (*Sharded)(nil)
)

// MaxShards bounds the shard count (the two-hex-digit file naming).
const MaxShards = 256

// shardName is the log file name of shard i.
func shardName(i int) string { return fmt.Sprintf("lpod-%02x.log", i) }

// shardCount counts the contiguous shard logs present in dir (0 when the
// directory holds no sharded store). A gap in the numbering is an error —
// it means someone deleted a shard file, which would silently lose records.
func shardCount(dir string) (int, error) {
	n := 0
	for i := 0; i < MaxShards; i++ {
		if _, err := os.Stat(filepath.Join(dir, shardName(i))); err != nil {
			break
		}
		n++
	}
	// Anything matching the shard pattern beyond the contiguous prefix is a
	// hole in the numbering.
	matches, _ := filepath.Glob(filepath.Join(dir, "lpod-??.log"))
	if len(matches) != n {
		return 0, fmt.Errorf("store: %s holds %d shard logs but the contiguous prefix is %d (missing shard file?)", dir, len(matches), n)
	}
	return n, nil
}

// ShardCount reports how many shard logs a directory holds (0 for a plain
// or empty store) — how tooling decides between Open and OpenSharded.
func ShardCount(dir string) (int, error) { return shardCount(dir) }

// Sharded is an open sharded store.
type Sharded struct {
	dir    string
	shards []*Store
}

// OpenSharded opens (or creates) a sharded store with n shards in dir. If
// dir already holds a sharded store, its existing shard count WINS over n —
// resharding in place would re-route keys away from their records. If dir
// holds a legacy single-log store (lpod.log), its records are migrated into
// the shards first (idempotent: a crash mid-migration re-runs it on the
// next open; the legacy log is renamed away only after every record is
// durable in its shard).
func OpenSharded(dir string, n int) (*Sharded, error) {
	return OpenShardedWith(dir, n, nil)
}

// OpenShardedWith is OpenSharded with a write-layer shim applied to every
// shard log (see OpenWith).
func OpenShardedWith(dir string, n int, wrap func(File) File) (*Sharded, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if existing, err := shardCount(dir); err != nil {
		return nil, err
	} else if existing > 0 {
		n = existing
	}
	if n <= 0 {
		n = 1
	}
	if n > MaxShards {
		return nil, fmt.Errorf("store: %d shards exceeds the maximum %d", n, MaxShards)
	}
	sh := &Sharded{dir: dir}
	for i := 0; i < n; i++ {
		s, err := openLog(dir, shardName(i), wrap)
		if err != nil {
			sh.Close()
			return nil, err
		}
		sh.shards = append(sh.shards, s)
	}
	if err := sh.migrateLegacy(wrap); err != nil {
		sh.Close()
		return nil, err
	}
	return sh, nil
}

// migrateLegacy folds a pre-sharding lpod.log into the shards. Every record
// is re-Put (content-addressed dedup makes reruns free), committed durable,
// and only then is the legacy log renamed to lpod.log.migrated — so a crash
// at any point leaves a state the next open completes from.
func (sh *Sharded) migrateLegacy(wrap func(File) File) error {
	legacy := filepath.Join(sh.dir, LogName)
	if _, err := os.Stat(legacy); err != nil {
		return nil
	}
	old, err := openLog(sh.dir, LogName, wrap)
	if err != nil {
		return fmt.Errorf("store: migrating legacy log: %w", err)
	}
	for _, kind := range []Kind{KindFinding, KindRule, KindVector} {
		var ferr error
		old.Scan(kind, func(key string, val []byte) bool {
			_, ferr = sh.Put(kind, key, val)
			return ferr == nil
		})
		if ferr != nil {
			old.Close()
			return fmt.Errorf("store: migrating legacy log: %w", ferr)
		}
	}
	if err := sh.Commit(); err != nil {
		old.Close()
		return err
	}
	if err := old.Close(); err != nil {
		return err
	}
	return os.Rename(legacy, legacy+".migrated")
}

// shardFor routes a key: hash the window-hash prefix (everything before the
// first '/', i.e. the whole key for findings and rules, the window half for
// vector keys) so all records of one window land on one shard.
func (sh *Sharded) shardFor(key string) *Store {
	prefix := key
	if i := strings.IndexByte(key, '/'); i >= 0 {
		prefix = key[:i]
	}
	h := fnv.New32a()
	h.Write([]byte(prefix))
	return sh.shards[int(h.Sum32())%len(sh.shards)]
}

// N reports the shard count.
func (sh *Sharded) N() int { return len(sh.shards) }

// Shard returns shard i — per-shard access for tests and tooling.
func (sh *Sharded) Shard(i int) *Store { return sh.shards[i] }

// Put routes the record to its key's shard.
func (sh *Sharded) Put(kind Kind, key string, val []byte) (bool, error) {
	return sh.shardFor(key).Put(kind, key, val)
}

// Get reads from the key's shard.
func (sh *Sharded) Get(kind Kind, key string) ([]byte, bool) {
	return sh.shardFor(key).Get(kind, key)
}

// Has reports whether the key's shard holds the record.
func (sh *Sharded) Has(kind Kind, key string) bool {
	return sh.shardFor(key).Has(kind, key)
}

// Len sums the kind's record count over all shards.
func (sh *Sharded) Len(kind Kind) int {
	n := 0
	for _, s := range sh.shards {
		n += s.Len(kind)
	}
	return n
}

// Keys returns the kind's keys across all shards in sorted order.
func (sh *Sharded) Keys(kind Kind) []string {
	var out []string
	for _, s := range sh.shards {
		out = append(out, s.Keys(kind)...)
	}
	sort.Strings(out)
	return out
}

// Scan visits every shard in shard order; within a shard, records appear in
// append order under that shard's snapshot isolation.
func (sh *Sharded) Scan(kind Kind, fn func(key string, val []byte) bool) {
	for _, s := range sh.shards {
		stop := false
		s.Scan(kind, func(key string, val []byte) bool {
			if !fn(key, val) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// fanOut runs fn on every shard concurrently and returns the first error.
func (sh *Sharded) fanOut(fn func(*Store) error) error {
	errs := make([]error, len(sh.shards))
	var wg sync.WaitGroup
	for i, s := range sh.shards {
		wg.Add(1)
		go func(i int, s *Store) {
			defer wg.Done()
			errs[i] = fn(s)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Commit commits every shard (in parallel); the first failure is returned
// but every shard still gets its attempt.
func (sh *Sharded) Commit() error { return sh.fanOut((*Store).Commit) }

// Flush is the logical durability barrier: it returns once every record Put
// before the call — on any shard — is durable. Shards flush in parallel, so
// the barrier costs one fsync latency, not N.
func (sh *Sharded) Flush() error { return sh.fanOut((*Store).Flush) }

// StartGroupCommit starts a committer per shard.
func (sh *Sharded) StartGroupCommit(opts GroupCommitOptions) {
	for _, s := range sh.shards {
		s.StartGroupCommit(opts)
	}
}

// StopGroupCommit stops every shard's committer.
func (sh *Sharded) StopGroupCommit() {
	for _, s := range sh.shards {
		s.StopGroupCommit()
	}
}

// Compact compacts every shard under the same keep policy (see
// Store.Compact) and aggregates the per-shard stats. Shards compact one at
// a time, so at most one shard is stop-the-world at any moment.
func (sh *Sharded) Compact(keep func(kind Kind, key string, val []byte) bool) (CompactStats, error) {
	var total CompactStats
	for _, s := range sh.shards {
		cs, err := s.Compact(keep)
		total.Kept += cs.Kept
		total.Dropped += cs.Dropped
		total.BytesBefore += cs.BytesBefore
		total.BytesAfter += cs.BytesAfter
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Stats aggregates every shard's counters.
func (sh *Sharded) Stats() Stats {
	var t Stats
	for _, s := range sh.shards {
		ss := s.Stats()
		t.Records += ss.Records
		t.Findings += ss.Findings
		t.Rules += ss.Rules
		t.Vectors += ss.Vectors
		t.Bytes += ss.Bytes
		t.PutNew += ss.PutNew
		t.PutDup += ss.PutDup
		t.GetHits += ss.GetHits
		t.GetMisses += ss.GetMisses
		t.Recovered += ss.Recovered
		t.Pending += ss.Pending
		t.CommitFails += ss.CommitFails
		t.Commits += ss.Commits
		t.Compactions += ss.Compactions
	}
	t.Shards = len(sh.shards)
	return t
}

// Dir returns the store's directory.
func (sh *Sharded) Dir() string { return sh.dir }

// Close closes every shard, returning the first error.
func (sh *Sharded) Close() error {
	var first error
	for _, s := range sh.shards {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
