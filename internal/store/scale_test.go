package store

// Tests for the ingest-scaling layers: group commit (coalesced fsyncs with
// per-waiter notification), sharded stores (routing, migration, aggregate
// stats), and compaction (crash-safe tail swap, pending-batch fold-in).

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/fault"
)

// TestGroupCommitCoalesces drives many concurrent writers through Flush and
// checks that (a) every record is durable when its Flush returns and (b) the
// committer actually amortized: far fewer fsync batches than records.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.StartGroupCommit(GroupCommitOptions{})

	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("%02d%04d", w, i)
				if _, err := s.Put(KindFinding, key, []byte(key)); err != nil {
					errs[w] = err
					return
				}
				if err := s.Flush(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := s.Stats()
	if st.PutNew != writers*perWriter {
		t.Fatalf("PutNew = %d, want %d", st.PutNew, writers*perWriter)
	}
	if st.Pending != 0 {
		t.Fatalf("Pending = %d after all Flushes returned", st.Pending)
	}
	// 8 concurrent writers × 50 barriers each must share fsyncs; anything
	// close to one commit per record means coalescing never happened.
	if st.Commits >= st.PutNew {
		t.Fatalf("no amortization: %d commits for %d records", st.Commits, st.PutNew)
	}
	t.Logf("amortization: %d records / %d commits = %.1f per fsync",
		st.PutNew, st.Commits, float64(st.PutNew)/float64(st.Commits))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	if n := s2.Len(KindFinding); n != writers*perWriter {
		t.Fatalf("reopen holds %d findings, want %d", n, writers*perWriter)
	}
}

// TestGroupCommitFailureNotifiesWaiter pins the degraded path under group
// commit: a Flush whose batch fails to fsync returns the error, the record
// stays pending and servable, and a later Flush drains it.
func TestGroupCommitFailureNotifiesWaiter(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(7, fault.Plan{
		fault.SiteStoreSync: {ErrorRate: 1, Budget: 1},
	})
	inj.Disable() // spend no budget on the header sync in recover()
	s, err := OpenWith(dir, wrapFault(inj))
	if err != nil {
		t.Fatal(err)
	}
	// Disable background retry so the injected failure is observed by THIS
	// Flush rather than silently repaired behind it.
	s.StartGroupCommit(GroupCommitOptions{RetryDelay: -1})
	if _, err := s.Put(KindFinding, "aaaa", []byte("finding-a")); err != nil {
		t.Fatal(err)
	}
	inj.Enable()

	if err := s.Flush(); err == nil {
		t.Fatal("Flush reported durable despite injected fsync failure")
	}
	st := s.Stats()
	if st.CommitFails != 1 || st.Pending != 1 {
		t.Fatalf("after failed flush: CommitFails=%d Pending=%d", st.CommitFails, st.Pending)
	}
	if v, ok := s.Get(KindFinding, "aaaa"); !ok || !bytes.Equal(v, []byte("finding-a")) {
		t.Fatalf("accepted record lost after failed flush: %q %v", v, ok)
	}

	// Budget exhausted: the next barrier succeeds.
	if err := s.Flush(); err != nil {
		t.Fatalf("retry flush failed: %v", err)
	}
	if st := s.Stats(); st.Pending != 0 {
		t.Fatalf("Pending = %d after successful flush", st.Pending)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitStop pins shutdown: StopGroupCommit commits what is
// pending, and Flush after stop degrades to a plain Commit instead of
// hanging on a dead committer.
func TestGroupCommitStop(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.StartGroupCommit(GroupCommitOptions{})
	if _, err := s.Put(KindFinding, "aaaa", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.StopGroupCommit()
	if st := s.Stats(); st.Pending != 0 {
		t.Fatalf("stop left %d records pending", st.Pending)
	}
	s.Put(KindFinding, "bbbb", []byte("w"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Pending != 0 {
		t.Fatalf("post-stop Flush left %d records pending", st.Pending)
	}
	s.StopGroupCommit() // idempotent
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRouting pins the shard layout: records land on the shard of
// their window-hash prefix (a window's finding and vectors colocate), stats
// aggregate, Keys sort globally, and a reopen recovers every shard.
func TestShardedRouting(t *testing.T) {
	dir := t.TempDir()
	sh, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sh.N() != 4 {
		t.Fatalf("N = %d, want 4", sh.N())
	}
	windows := []string{"0a1b", "ffee", "1234", "dead", "beef", "c0de"}
	for _, w := range windows {
		if added, err := sh.Put(KindFinding, w, []byte("f-"+w)); err != nil || !added {
			t.Fatalf("put %s: added=%v err=%v", w, added, err)
		}
		sh.Put(KindVector, w+"/11", []byte("v1"))
		sh.Put(KindVector, w+"/22", []byte("v2"))
	}
	// Colocating: a window's finding and its vectors share a shard.
	for _, w := range windows {
		fs := sh.shardFor(w)
		if sh.shardFor(w+"/11") != fs || sh.shardFor(w+"/22") != fs {
			t.Fatalf("window %s vectors routed off its finding's shard", w)
		}
		if !fs.Has(KindFinding, w) {
			t.Fatalf("finding %s not on its routed shard", w)
		}
	}
	// Shard files exist and at least two shards got traffic (six windows
	// over four shards collide into one shard only with probability ~4^-5).
	used := 0
	for i := 0; i < sh.N(); i++ {
		if _, err := os.Stat(filepath.Join(dir, shardName(i))); err != nil {
			t.Fatalf("missing shard log %d: %v", i, err)
		}
		if sh.Shard(i).Len(KindFinding) > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("all findings on %d shard(s); routing is not spreading", used)
	}
	if n := sh.Len(KindFinding); n != len(windows) {
		t.Fatalf("Len = %d, want %d", n, len(windows))
	}
	keys := sh.Keys(KindFinding)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys not sorted: %v", keys)
		}
	}
	st := sh.Stats()
	if st.Shards != 4 || st.Findings != len(windows) || st.Vectors != 2*len(windows) {
		t.Fatalf("aggregate stats = %+v", st)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	// Plain Open must refuse a sharded dir rather than see an empty store.
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a sharded directory")
	}

	// Reopen recovers all shards; a different n loses to the on-disk count.
	sh2, err := OpenSharded(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	if sh2.N() != 4 {
		t.Fatalf("reopen resharded: N = %d, want 4", sh2.N())
	}
	for _, w := range windows {
		if v, ok := sh2.Get(KindFinding, w); !ok || !bytes.Equal(v, []byte("f-"+w)) {
			t.Fatalf("reopen lost %s: %q %v", w, v, ok)
		}
	}
}

// TestShardedMigratesLegacyLog pins the upgrade path: OpenSharded on a
// pre-sharding store folds lpod.log into the shards, renames it away, and a
// second open is a no-op.
func TestShardedMigratesLegacyLog(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("%04x", i*257)
		s.Put(KindFinding, key, []byte("legacy-"+key))
		s.Put(KindVector, key+"/aa", []byte("vec"))
	}
	s.Put(KindRule, "rule-1", []byte("rule-body"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	sh, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n := sh.Len(KindFinding); n != 20 {
		t.Fatalf("migrated %d findings, want 20", n)
	}
	if _, ok := sh.Get(KindRule, "rule-1"); !ok {
		t.Fatal("rule lost in migration")
	}
	if sh.Stats().Pending != 0 {
		t.Fatal("migration left records pending")
	}
	if _, err := os.Stat(filepath.Join(dir, LogName)); !os.IsNotExist(err) {
		t.Fatalf("legacy log still present: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, LogName+".migrated")); err != nil {
		t.Fatalf("migrated legacy log not retained: %v", err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	sh2, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	if n := sh2.Len(KindFinding); n != 20 {
		t.Fatalf("post-migration reopen holds %d findings, want 20", n)
	}
}

// TestShardedMissingShardFile pins the hole check: deleting a middle shard
// log must fail the open loudly instead of silently dropping its records.
func TestShardedMissingShardFile(t *testing.T) {
	dir := t.TempDir()
	sh, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	sh.Close()
	if err := os.Remove(filepath.Join(dir, shardName(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(dir, 4); err == nil {
		t.Fatal("OpenSharded accepted a directory with a missing shard log")
	}
}

// TestCompact pins the rewrite: dropped records vanish (from memory, disk,
// and a reopen), kept records survive byte-identical, the pending batch is
// folded in durable, and the log shrinks.
func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("%04x", i)
		s.Put(KindFinding, key, []byte("keep-"+key))
		s.Put(KindVector, key+"/aa", bytes.Repeat([]byte("x"), 128))
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// One record accepted but not yet durable: compaction must carry it.
	s.Put(KindFinding, "ffff", []byte("pending"))

	before := s.Stats()
	cs, err := s.Compact(func(kind Kind, key string, val []byte) bool {
		return kind != KindVector
	})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Kept != 11 || cs.Dropped != 10 {
		t.Fatalf("compact stats = %+v", cs)
	}
	if cs.BytesAfter >= cs.BytesBefore {
		t.Fatalf("log did not shrink: %+v", cs)
	}
	st := s.Stats()
	if st.Vectors != 0 || st.Findings != 11 || st.Pending != 0 || st.Compactions != 1 {
		t.Fatalf("post-compact stats = %+v", st)
	}
	if st.Bytes >= before.Bytes {
		t.Fatalf("Bytes %d did not shrink from %d", st.Bytes, before.Bytes)
	}
	if v, ok := s.Get(KindFinding, "ffff"); !ok || !bytes.Equal(v, []byte("pending")) {
		t.Fatal("pending record lost by compaction")
	}
	// The compacted log keeps appending normally.
	s.Put(KindFinding, "eeee", []byte("after"))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	if s2.Len(KindVector) != 0 {
		t.Fatal("dropped vectors resurrected on reopen")
	}
	for _, key := range []string{"0000", "ffff", "eeee"} {
		if _, ok := s2.Get(KindFinding, key); !ok {
			t.Fatalf("reopen lost finding %s", key)
		}
	}
	if s2.Stats().Recovered != 0 {
		t.Fatalf("compacted log has torn bytes: %+v", s2.Stats())
	}
}

// TestCompactInterruptedLeavesOriginal pins the crash-safety of the tail
// swap from both sides: a failed temp write aborts with the original log
// (and in-memory state) untouched, and a leftover temp from a crashed
// compaction is discarded by the next open.
func TestCompactInterruptedLeavesOriginal(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(13, fault.Plan{
		fault.SiteStoreWrite: {ErrorRate: 1, Budget: 1},
	})
	inj.Disable()
	s, err := OpenWith(dir, wrapFault(inj))
	if err != nil {
		t.Fatal(err)
	}
	s.Put(KindFinding, "aaaa", []byte("v"))
	s.Put(KindVector, "aaaa/11", []byte("vec"))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}

	// The compaction's temp write fails: atomic-or-nothing means no state
	// change and no temp debris.
	inj.Enable()
	if _, err := s.Compact(func(kind Kind, _ string, _ []byte) bool { return kind != KindVector }); err == nil {
		t.Fatal("Compact succeeded despite injected write failure")
	}
	st := s.Stats()
	if st.Vectors != 1 || st.Findings != 1 || st.Compactions != 0 {
		t.Fatalf("failed compact mutated state: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, LogName+compactSuffix)); !os.IsNotExist(err) {
		t.Fatalf("failed compact left temp file: %v", err)
	}
	// The store still works end to end after the aborted compaction.
	s.Put(KindFinding, "bbbb", []byte("w"))
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash AFTER writing the temp but BEFORE the rename: the next open
	// deletes the temp and serves the original log.
	tmp := filepath.Join(dir, LogName+compactSuffix)
	if err := os.WriteFile(tmp, []byte(magic), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("open kept the stale compact temp: %v", err)
	}
	if s2.Len(KindFinding) != 2 || s2.Len(KindVector) != 1 {
		t.Fatalf("original log not authoritative after crashed compaction: %+v", s2.Stats())
	}
}

// TestShardedConcurrentFlush exercises the logical durability barrier under
// concurrent multi-shard traffic with per-shard committers running.
func TestShardedConcurrentFlush(t *testing.T) {
	dir := t.TempDir()
	sh, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	sh.StartGroupCommit(GroupCommitOptions{})

	const writers, perWriter = 6, 30
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("%02x%04x", w, i)
				if _, err := sh.Put(KindFinding, key, []byte(key)); err != nil {
					errs[w] = err
					return
				}
				if i%8 == 7 {
					if err := sh.Flush(); err != nil {
						errs[w] = err
						return
					}
				}
			}
			errs[w] = sh.Flush()
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := sh.Stats(); st.Pending != 0 || st.PutNew != writers*perWriter {
		t.Fatalf("after barriers: %+v", st)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	sh2, err := OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	if n := sh2.Len(KindFinding); n != writers*perWriter {
		t.Fatalf("reopen holds %d findings, want %d", n, writers*perWriter)
	}
}
