package store

// Typed payloads for the three record kinds. Findings and pool vectors are
// encoded as indented JSON with a trailing newline, like rulebooks, and the
// encodings are deterministic: resubmitting a corpus against a warm store
// must serve byte-identical findings, so the stored bytes ARE the wire
// format — the HTTP layer returns them verbatim.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"repro/internal/alive"
	"repro/internal/interp"
	"repro/internal/ir"
)

// WindowKey renders an ir.Hash window hash as the store's key string
// (16 lower-case hex digits, the format the HTTP API uses in paths).
func WindowKey(h uint64) string { return fmt.Sprintf("%016x", h) }

// ParseWindowKey parses a WindowKey back into the hash. It accepts any
// 1..16-digit hex string so hand-typed curl requests work.
func ParseWindowKey(s string) (uint64, error) {
	if len(s) == 0 || len(s) > 16 {
		return 0, fmt.Errorf("store: %q is not a window hash", s)
	}
	h, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("store: %q is not a window hash", s)
	}
	return h, nil
}

// Finding is the persisted outcome of one window's trip through the
// discovery loop — enough to serve the result without recomputing it and to
// reconstruct an engine Result for short-circuiting. Src and Cand are the
// canonical ir printouts of the window and (for found outcomes) the
// verified candidate.
type Finding struct {
	Window       string         `json:"window"`
	Outcome      string         `json:"outcome"`
	Round        int            `json:"round,omitempty"`
	Src          string         `json:"src"`
	Cand         string         `json:"cand,omitempty"`
	InstrsBefore int            `json:"instrs_before,omitempty"`
	InstrsAfter  int            `json:"instrs_after,omitempty"`
	CyclesBefore int            `json:"cycles_before,omitempty"`
	CyclesAfter  int            `json:"cycles_after,omitempty"`
	RuleHits     map[string]int `json:"rule_hits,omitempty"`
	LearnedID    string         `json:"learned_rule,omitempty"`
}

// Encode renders the finding as indented JSON with a trailing newline.
// Encoding is deterministic (struct field order; the one map is sorted by
// encoding/json), which is what makes stored findings byte-stable.
func (f *Finding) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeFinding parses a finding previously written by Encode.
func DecodeFinding(data []byte) (*Finding, error) {
	var f Finding
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("store: finding: %w", err)
	}
	return &f, nil
}

// PoolVec is one persisted counterexample vector of the falsifier corpus:
// the window it refuted a candidate for, the argument vector, and the
// initial memory behind each pointer argument.
type PoolVec struct {
	Window string    `json:"window"`
	Inputs []RValRec `json:"inputs"`
	Mem    [][]byte  `json:"mem,omitempty"`
}

// RValRec is the serialized form of one interp.RVal.
type RValRec struct {
	Ty    string    `json:"ty"`
	Lanes []LaneRec `json:"lanes"`
}

// LaneRec is one serialized lane. JSON round-trips uint64 exactly in Go.
type LaneRec struct {
	V      uint64 `json:"v"`
	Poison bool   `json:"p,omitempty"`
}

// NewPoolVec converts a pooled vector for persistence.
func NewPoolVec(window uint64, v alive.PoolVector) PoolVec {
	pv := PoolVec{Window: WindowKey(window), Mem: v.Mem}
	for _, in := range v.Inputs {
		rec := RValRec{Ty: in.Ty.String(), Lanes: make([]LaneRec, len(in.Lanes))}
		for i, l := range in.Lanes {
			rec.Lanes[i] = LaneRec{V: l.V, Poison: l.Poison}
		}
		pv.Inputs = append(pv.Inputs, rec)
	}
	return pv
}

// Vector converts a persisted vector back into pool form.
func (pv *PoolVec) Vector() (window uint64, v alive.PoolVector, err error) {
	window, err = ParseWindowKey(pv.Window)
	if err != nil {
		return 0, alive.PoolVector{}, err
	}
	v = alive.PoolVector{Mem: pv.Mem}
	for _, rec := range pv.Inputs {
		ty, err := parseType(rec.Ty)
		if err != nil {
			return 0, alive.PoolVector{}, err
		}
		rv := interp.RVal{Ty: ty, Lanes: make([]interp.Word, len(rec.Lanes))}
		for i, l := range rec.Lanes {
			rv.Lanes[i] = interp.Word{V: l.V, Poison: l.Poison}
		}
		v.Inputs = append(v.Inputs, rv)
	}
	return window, v, nil
}

// Encode renders the vector record as compact JSON.
func (pv *PoolVec) Encode() ([]byte, error) { return json.Marshal(pv) }

// DecodePoolVec parses a vector record previously written by Encode.
func DecodePoolVec(data []byte) (*PoolVec, error) {
	var pv PoolVec
	if err := json.Unmarshal(data, &pv); err != nil {
		return nil, fmt.Errorf("store: pool vector: %w", err)
	}
	return &pv, nil
}

// VectorKey builds the KindVector store key for an encoded vector record:
// the window hash plus a content hash of the encoding, so every distinct
// vector of a window is its own immutable record.
func VectorKey(window uint64, encoded []byte) string {
	h := fnv.New64a()
	h.Write(encoded)
	return WindowKey(window) + "/" + fmt.Sprintf("%016x", h.Sum64())
}

// parseType parses the .ll type syntax RValRec stores: iN, float, double,
// ptr, and fixed-length vectors thereof.
func parseType(s string) (ir.Type, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "float":
		return ir.F32, nil
	case s == "double":
		return ir.F64, nil
	case s == "ptr":
		return ir.Ptr, nil
	case strings.HasPrefix(s, "i"):
		w, err := strconv.Atoi(s[1:])
		if err != nil || w < 1 || w > 64 {
			return nil, fmt.Errorf("store: bad type %q", s)
		}
		return ir.IntT(w), nil
	case strings.HasPrefix(s, "<") && strings.HasSuffix(s, ">"):
		body := s[1 : len(s)-1]
		n, elemStr, ok := strings.Cut(body, " x ")
		if !ok {
			return nil, fmt.Errorf("store: bad type %q", s)
		}
		lanes, err := strconv.Atoi(strings.TrimSpace(n))
		if err != nil || lanes < 1 {
			return nil, fmt.Errorf("store: bad type %q", s)
		}
		elem, err := parseType(elemStr)
		if err != nil {
			return nil, err
		}
		return ir.VecT(lanes, elem), nil
	}
	return nil, fmt.Errorf("store: bad type %q", s)
}
