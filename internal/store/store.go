// Package store is the persistent content-addressed store behind lpod,
// the discovery-as-a-service daemon: campaign state that used to die with
// each CLI run — findings, learned rulebook entries, pooled counterexample
// vectors — survives on disk so overlapping campaigns are incremental and
// a resubmitted window pays only for work nobody has done before.
//
// The on-disk format is an append-only record log (dir/lpod.log for a
// plain store; dir/lpod-00.log … for the sharded variant, see Sharded):
// an 8-byte magic header followed by length-prefixed, CRC-framed records.
// Every record is immutable and content-addressed — the key of a finding
// is the ir.Hash of its source window, the key of a rulebook entry is its
// content-derived rule ID, the key of a counterexample vector includes the
// hash of the vector itself — so a key is written at most once and its
// value never changes. That makes the concurrency story simple:
//
//   - Writes land in the in-memory index immediately (visible to readers)
//     and are framed to disk in one batch per Commit, which fsyncs — so
//     durability is paid per batch, not per record. A failed Commit rolls
//     the log back to its last durable length and keeps the batch pending:
//     the next Commit retries everything, so a transient write or fsync
//     failure (disk full, injected fault) degrades durability temporarily
//     without losing an accepted record or corrupting earlier ones.
//   - Readers are snapshot-isolated for free: Snapshot captures the current
//     record count, and a snapshot reader observes exactly the records that
//     existed at capture time, concurrent appends notwithstanding.
//   - Crash recovery on Open scans the log and truncates a torn tail (a
//     partially written final record) back to the last intact record; an
//     interrupted batch loses at most its own unsynced records, never
//     earlier ones.
//
// Three mechanisms scale the hot ingest path beyond one fsync per record
// (doc.go, "Scaling the Store"):
//
//   - Group commit (StartGroupCommit + Flush): concurrent writers' records
//     coalesce into one framed batch and one fsync, with per-waiter
//     durability notification.
//   - Sharding (Sharded): a logical store fanned over N independent shard
//     logs keyed by window-hash prefix, each with its own committer.
//   - Compaction (Compact): rewrite a log without records a policy drops
//     (dead pool vectors, superseded rules), with a crash-safe tail swap.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the write seam of the record log: the slice of *os.File the store
// actually uses. OpenWith lets callers interpose a shim here — the
// fault-injection harness (internal/fault.File) wraps it to chaos-test
// partial appends, failed fsyncs and blocked truncates without touching a
// real disk's failure modes.
type File interface {
	Write(p []byte) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	Close() error
}

// Kind partitions the key space: the same key string may exist once per kind.
type Kind uint8

// Record kinds.
const (
	// KindFinding holds one window's discovery outcome (a codec.go Finding),
	// keyed by the 16-hex ir.Hash of the source window.
	KindFinding Kind = 1
	// KindRule holds one learned rulebook entry (generalize.Entry JSON),
	// keyed by its content-derived rule ID.
	KindRule Kind = 2
	// KindVector holds one pooled counterexample vector (a codec.go PoolVec),
	// keyed by "<window-hash>/<vector-hash>".
	KindVector Kind = 3
)

func (k Kind) String() string {
	switch k {
	case KindFinding:
		return "finding"
	case KindRule:
		return "rule"
	case KindVector:
		return "vector"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// magic identifies (and versions) the log format; bump the trailing digit on
// breaking changes.
const magic = "LPODSTR1"

// LogName is the record log's file name inside the store directory.
const LogName = "lpod.log"

// maxKeyLen and maxValLen bound a decoded record's claimed sizes so a
// corrupt length prefix cannot force a giant allocation during recovery.
const (
	maxKeyLen = 1 << 10
	maxValLen = 1 << 26
)

type record struct {
	kind Kind
	key  string
	val  []byte
}

// Stats is a snapshot of a store's counters.
type Stats struct {
	Records   int   // records currently held (all kinds)
	Findings  int   // records of KindFinding
	Rules     int   // records of KindRule
	Vectors   int   // records of KindVector
	Bytes     int64 // log size in bytes (including header and any unsynced tail)
	PutNew    int64 // Put calls that appended a new record
	PutDup    int64 // Put calls dropped as already-present (content-address hit)
	GetHits   int64 // Get/Has calls that found their key
	GetMisses int64 // Get/Has calls that did not
	Recovered int64 // torn-tail bytes truncated by Open (0 after a clean shutdown)
	Pending   int   // records accepted but not yet durable (retried by the next Commit)
	// CommitFails counts failed Commit batches (each rolled back and left
	// pending for retry) — the store's degraded-durability signal, surfaced
	// by lpod's /v1/healthz.
	CommitFails int64
	// Commits counts successful non-empty Commit batches; Commits vs PutNew
	// is the group-commit amortization ratio (records per fsync).
	Commits int64
	// Compactions counts completed Compact rewrites of the log.
	Compactions int64
	// Shards is how many shard logs back these stats: 1 for a plain Store,
	// N for a Sharded aggregate.
	Shards int
}

// Store is an open store: the append-only log plus the in-memory hash index
// over it. It is safe for concurrent use; the writer appends while any
// number of readers Get/Has/Scan, and Snapshot gives a reader a stable
// point-in-time view.
type Store struct {
	// commitMu serializes the disk half of Commit (and Compact). The record
	// write + fsync run with mu RELEASED, so readers and writers proceed
	// while a batch is being made durable — that is what lets concurrent
	// Puts pile into the next group-commit batch during the current fsync.
	commitMu sync.Mutex

	mu      sync.RWMutex
	dir     string
	name    string          // log file name inside dir (LogName, or lpod-NN.log for a shard)
	wrap    func(File) File // write-layer shim, retained for compaction rewrites
	f       File
	recs    []record
	idx     map[string]int // indexKey(kind,key) -> position in recs (first write wins)
	byK     [4]int         // record count per kind (index by Kind)
	size    int64          // bytes in the log, including accepted-but-not-durable records
	durable int64          // bytes known durable on disk (after the last successful Commit)
	dirty   []int          // positions in recs accepted since the last successful Commit
	gc      *committer     // group-commit worker; nil until StartGroupCommit

	putNew      int64
	putDup      int64
	getHits     int64
	getMisses   int64
	recovered   int64
	commitFails int64
	commits     int64
	compactions int64
}

func indexKey(kind Kind, key string) string {
	return string([]byte{byte(kind), 0}) + key
}

// Open opens (or creates) the store in dir, recovering from a torn tail if
// the previous process crashed mid-append. The directory is created if
// missing.
func Open(dir string) (*Store, error) { return OpenWith(dir, nil) }

// OpenWith is Open with a write-layer shim: when wrap is non-nil the record
// log is accessed through wrap(file) instead of the raw *os.File. Chaos
// tests interpose fault injection here; production callers pass nil.
func OpenWith(dir string, wrap func(File) File) (*Store, error) {
	if n, err := shardCount(dir); err == nil && n > 0 {
		return nil, fmt.Errorf("store: %s is a sharded store (%d shards); use OpenSharded", dir, n)
	}
	return openLog(dir, LogName, wrap)
}

// openLog opens one record log (the whole store, or one shard of a Sharded).
func openLog(dir, name string, wrap func(File) File) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// A leftover .compact temp file is an interrupted compaction that never
	// reached its rename: the original log is still authoritative, so the
	// temp is just deleted (Compact is atomic-or-nothing).
	os.Remove(filepath.Join(dir, name+compactSuffix))
	path := filepath.Join(dir, name)
	osf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var f File = osf
	if wrap != nil {
		f = wrap(osf)
	}
	s := &Store{dir: dir, name: name, wrap: wrap, f: f, idx: make(map[string]int)}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover reads the log, builds the index, and truncates a torn tail. On an
// empty file it writes the header.
func (s *Store) recover() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if info.Size() == 0 {
		if _, err := s.f.Write([]byte(magic)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.size = int64(len(magic))
		s.durable = s.size
		return nil
	}
	r := bufio.NewReader(io.NewSectionReader(s.f, 0, info.Size()))
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(r, hdr); err != nil || string(hdr) != magic {
		return fmt.Errorf("store: %s is not a lpod store log", filepath.Join(s.dir, LogName))
	}
	good := int64(len(magic))
	for {
		rec, n, err := readRecord(r)
		if err != nil {
			// A short, torn or CRC-corrupt tail is the signature of a crash
			// mid-append: keep the intact prefix and drop the rest.
			break
		}
		// Content-addressed: a duplicate key carries the same bytes, so the
		// first occurrence wins and later ones are skipped.
		if _, dup := s.idx[indexKey(rec.kind, rec.key)]; !dup {
			s.idx[indexKey(rec.kind, rec.key)] = len(s.recs)
			s.recs = append(s.recs, rec)
			s.count(rec.kind, 1)
		}
		good += int64(n)
	}
	if good < info.Size() {
		s.recovered = info.Size() - good
		if err := s.f.Truncate(good); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if _, err := s.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.size = good
	s.durable = good
	return nil
}

func (s *Store) count(k Kind, d int) {
	if int(k) < len(s.byK) {
		s.byK[k] += d
	}
}

// Record framing: kind(1) keyLen(2 BE) valLen(4 BE) key val crc32(4 BE,
// IEEE, over everything before it). The CRC makes a torn tail detectable
// even when the lengths happen to be intact.
func appendRecord(buf []byte, rec record) []byte {
	start := len(buf)
	buf = append(buf, byte(rec.kind))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(rec.key)))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rec.val)))
	buf = append(buf, rec.key...)
	buf = append(buf, rec.val...)
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.BigEndian.AppendUint32(buf, crc)
}

func readRecord(r *bufio.Reader) (record, int, error) {
	var hdr [7]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return record{}, 0, err
	}
	keyLen := int(binary.BigEndian.Uint16(hdr[1:3]))
	valLen := int(binary.BigEndian.Uint32(hdr[3:7]))
	if keyLen > maxKeyLen || valLen > maxValLen {
		return record{}, 0, fmt.Errorf("store: implausible record lengths")
	}
	body := make([]byte, keyLen+valLen+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return record{}, 0, err
	}
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, body[:keyLen+valLen])
	if crc != binary.BigEndian.Uint32(body[keyLen+valLen:]) {
		return record{}, 0, fmt.Errorf("store: record checksum mismatch")
	}
	rec := record{
		kind: Kind(hdr[0]),
		key:  string(body[:keyLen]),
		val:  body[keyLen : keyLen+valLen : keyLen+valLen],
	}
	return rec, 7 + len(body), nil
}

// Put accepts one record unless the (kind, key) pair is already present —
// the store is content-addressed, so a duplicate Put is a cache hit, not an
// update. The record is immediately visible to readers; call Commit to make
// the batch durable. Put never touches the disk, so it cannot fail on I/O:
// an accepted record stays pending (and servable from memory) across any
// number of failed Commits until one succeeds. added reports whether a new
// record was accepted.
func (s *Store) Put(kind Kind, key string, val []byte) (added bool, err error) {
	if len(key) > maxKeyLen {
		return false, fmt.Errorf("store: key too long (%d bytes)", len(key))
	}
	if len(val) > maxValLen {
		return false, fmt.Errorf("store: value too long (%d bytes)", len(val))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.idx[indexKey(kind, key)]; dup {
		s.putDup++
		return false, nil
	}
	rec := record{kind: kind, key: key, val: append([]byte(nil), val...)}
	s.idx[indexKey(kind, key)] = len(s.recs)
	s.dirty = append(s.dirty, len(s.recs))
	s.recs = append(s.recs, rec)
	s.count(kind, 1)
	s.size += frameLen(rec)
	s.putNew++
	return true, nil
}

// frameLen is the on-disk size of one record's frame (see appendRecord).
func frameLen(rec record) int64 {
	return int64(7 + len(rec.key) + len(rec.val) + 4)
}

// Commit frames every pending record, appends the batch at the log's
// durable length, and fsyncs: everything Put before Commit returns nil is
// durable. On failure the log is rolled back (best effort) to its last
// durable length and the whole batch stays pending — the next Commit
// retries it from scratch, so callers may simply keep going in a degraded
// mode and re-Commit later. Committing with nothing pending is a cheap
// no-op.
//
// The write + fsync run without the index lock: concurrent Puts (and Gets)
// proceed during the disk wait and land in the next batch — the natural
// batching that group commit (StartGroupCommit + Flush) builds on.
func (s *Store) Commit() error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return s.commitSerialized()
}

// commitSerialized is Commit's body; the caller holds commitMu, which is
// what keeps the durable offset and the log tail consistent across the
// unlocked disk I/O.
func (s *Store) commitSerialized() error {
	s.mu.Lock()
	n := len(s.dirty)
	if n == 0 {
		s.mu.Unlock()
		return nil
	}
	var buf []byte
	for _, i := range s.dirty[:n] {
		buf = appendRecord(buf, s.recs[i])
	}
	off := s.durable
	s.mu.Unlock()

	err := func() error {
		if _, err := s.f.Seek(off, io.SeekStart); err != nil {
			return err
		}
		if _, err := s.f.Write(buf); err != nil {
			return err
		}
		return s.f.Sync()
	}()

	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		// Roll back any torn tail so the retry appends onto an intact
		// prefix. Best effort: if the truncate fails too (a crashed or
		// wedged disk), Open's torn-tail recovery handles the leftovers.
		s.f.Truncate(off)
		s.commitFails++
		return fmt.Errorf("store: commit: %w", err)
	}
	s.durable = off + int64(len(buf))
	s.commits++
	// Records Put during the fsync extended dirty past n; they stay pending
	// for the next batch.
	s.dirty = s.dirty[n:]
	return nil
}

// Get returns the value stored under (kind, key). The returned bytes are
// shared and must not be mutated.
func (s *Store) Get(kind Kind, key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.idx[indexKey(kind, key)]
	if !ok {
		s.getMisses++
		return nil, false
	}
	s.getHits++
	return s.recs[i].val, true
}

// Has reports whether (kind, key) is present, counting toward the hit/miss
// counters like Get.
func (s *Store) Has(kind Kind, key string) bool {
	_, ok := s.Get(kind, key)
	return ok
}

// Len reports how many records of the given kind the store holds.
func (s *Store) Len(kind Kind) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(kind) < len(s.byK) {
		return s.byK[kind]
	}
	return 0
}

// Keys returns the keys of the given kind in sorted order.
func (s *Store) Keys(kind Kind) []string {
	s.mu.RLock()
	var out []string
	for _, rec := range s.recs {
		if rec.kind == kind {
			out = append(out, rec.key)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Scan calls fn for every record of the given kind in append order,
// stopping early when fn returns false. The value bytes are shared and must
// not be mutated or retained past fn.
func (s *Store) Scan(kind Kind, fn func(key string, val []byte) bool) {
	s.Snapshot().Scan(kind, fn)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Records:     len(s.recs),
		Findings:    s.byK[KindFinding],
		Rules:       s.byK[KindRule],
		Vectors:     s.byK[KindVector],
		Bytes:       s.size,
		PutNew:      s.putNew,
		PutDup:      s.putDup,
		GetHits:     s.getHits,
		GetMisses:   s.getMisses,
		Recovered:   s.recovered,
		Pending:     len(s.dirty),
		CommitFails: s.commitFails,
		Commits:     s.commits,
		Compactions: s.compactions,
		Shards:      1,
	}
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close stops the group committer (if running), commits any pending batch,
// and closes the log.
func (s *Store) Close() error {
	s.StopGroupCommit()
	if err := s.Commit(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// Snapshot is a point-in-time view of the store: it observes exactly the
// records present when it was captured, no matter how many appends land
// afterwards. Snapshots are cheap (two words) and need no release.
type Snapshot struct {
	s *Store
	n int
}

// Snapshot captures the current record count as an isolated read view.
func (s *Store) Snapshot() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Snapshot{s: s, n: len(s.recs)}
}

// Len reports how many records (of all kinds) the snapshot observes.
func (v Snapshot) Len() int { return v.n }

// Get returns the value stored under (kind, key) if the record existed at
// capture time. Reads through a snapshot do not move the store's hit/miss
// counters — those track the service's dedup traffic, not internal scans.
func (v Snapshot) Get(kind Kind, key string) ([]byte, bool) {
	v.s.mu.RLock()
	defer v.s.mu.RUnlock()
	i, ok := v.s.idx[indexKey(kind, key)]
	if !ok || i >= v.n {
		return nil, false
	}
	return v.s.recs[i].val, true
}

// Has reports whether (kind, key) existed at capture time.
func (v Snapshot) Has(kind Kind, key string) bool {
	_, ok := v.Get(kind, key)
	return ok
}

// Scan calls fn for every record of the given kind that existed at capture
// time, in append order, stopping early when fn returns false.
func (v Snapshot) Scan(kind Kind, fn func(key string, val []byte) bool) {
	for i := 0; i < v.n; i++ {
		v.s.mu.RLock()
		if i >= len(v.s.recs) {
			// A Compact since capture shrank the log past this snapshot's
			// horizon; the remaining positions no longer exist.
			v.s.mu.RUnlock()
			return
		}
		rec := v.s.recs[i]
		v.s.mu.RUnlock()
		if rec.kind != kind {
			continue
		}
		if !fn(rec.key, rec.val) {
			return
		}
	}
}
