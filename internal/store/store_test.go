package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/alive"
	"repro/internal/interp"
	"repro/internal/ir"
)

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreRoundTrip pins the basics: put/get across all kinds, dedup of
// duplicate keys, counters, and persistence across a clean reopen.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	if added, err := s.Put(KindFinding, "aa", []byte("v1")); err != nil || !added {
		t.Fatalf("put: added=%v err=%v", added, err)
	}
	if added, err := s.Put(KindFinding, "aa", []byte("v1")); err != nil || added {
		t.Fatalf("duplicate put: added=%v err=%v", added, err)
	}
	// Same key under another kind is a distinct record.
	if added, _ := s.Put(KindRule, "aa", []byte("rule")); !added {
		t.Fatal("kind must partition the key space")
	}
	s.Put(KindVector, "aa/bb", []byte("vec"))
	if v, ok := s.Get(KindFinding, "aa"); !ok || string(v) != "v1" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	if _, ok := s.Get(KindFinding, "zz"); ok {
		t.Fatal("phantom key")
	}
	st := s.Stats()
	if st.Records != 3 || st.Findings != 1 || st.Rules != 1 || st.Vectors != 1 ||
		st.PutNew != 3 || st.PutDup != 1 || st.GetHits != 1 || st.GetMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	if v, ok := s2.Get(KindFinding, "aa"); !ok || string(v) != "v1" {
		t.Fatalf("reopened get = %q, %v", v, ok)
	}
	if st := s2.Stats(); st.Records != 3 || st.Recovered != 0 {
		t.Fatalf("reopened stats = %+v", st)
	}
	if keys := s2.Keys(KindFinding); len(keys) != 1 || keys[0] != "aa" {
		t.Fatalf("keys = %v", keys)
	}
}

// TestStoreCrashRecovery is the durability round-trip the ISSUE asks for:
// write records, truncate the log mid-record (a simulated crash during an
// append), and reopen — the intact prefix must be recovered, the torn tail
// dropped, and the store must accept appends again.
func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 10; i++ {
		s.Put(KindFinding, fmt.Sprintf("%016x", i), bytes.Repeat([]byte{byte(i)}, 100))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, LogName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the middle of the last record.
	if err := os.Truncate(path, info.Size()-50); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	st := s2.Stats()
	if st.Records != 9 {
		t.Fatalf("recovered %d records, want 9", st.Records)
	}
	if st.Recovered == 0 {
		t.Fatal("recovery did not report truncated bytes")
	}
	for i := 0; i < 9; i++ {
		v, ok := s2.Get(KindFinding, fmt.Sprintf("%016x", i))
		if !ok || len(v) != 100 || v[0] != byte(i) {
			t.Fatalf("record %d corrupted after recovery", i)
		}
	}
	// The store keeps working after recovery, and the re-put of the lost
	// record is a fresh append.
	if added, err := s2.Put(KindFinding, fmt.Sprintf("%016x", 9), []byte("again")); err != nil || !added {
		t.Fatalf("post-recovery put: added=%v err=%v", added, err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openT(t, dir)
	defer s3.Close()
	if st := s3.Stats(); st.Records != 10 || st.Recovered != 0 {
		t.Fatalf("stats after clean reopen = %+v", st)
	}
}

// TestStoreCorruptTailCRC flips a byte inside the last record: the CRC must
// reject it and recovery must keep the prefix.
func TestStoreCorruptTailCRC(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Put(KindFinding, "one", []byte("first"))
	s.Put(KindFinding, "two", []byte("second"))
	s.Close()
	path := filepath.Join(dir, LogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 0xFF // inside the last record's value/crc area
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	if _, ok := s2.Get(KindFinding, "one"); !ok {
		t.Fatal("intact prefix lost")
	}
	if _, ok := s2.Get(KindFinding, "two"); ok {
		t.Fatal("corrupt record survived its CRC")
	}
	if st := s2.Stats(); st.Recovered == 0 {
		t.Fatal("corruption not reported as recovered bytes")
	}
}

// TestStoreNotAStore rejects files that are not lpod logs.
func TestStoreNotAStore(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LogName), []byte("something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("foreign file accepted as a store log")
	}
}

// TestStoreSnapshotIsolation pins the reader contract: a snapshot observes
// exactly the records present at capture, concurrent appends notwithstanding.
func TestStoreSnapshotIsolation(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	defer s.Close()
	s.Put(KindFinding, "before", []byte("b"))
	snap := s.Snapshot()
	s.Put(KindFinding, "after", []byte("a"))
	if !snap.Has(KindFinding, "before") {
		t.Fatal("snapshot lost a pre-capture record")
	}
	if snap.Has(KindFinding, "after") {
		t.Fatal("snapshot observed a post-capture append")
	}
	if s.Snapshot().Len() != 2 || snap.Len() != 1 {
		t.Fatal("snapshot lengths drifted")
	}
	var keys []string
	snap.Scan(KindFinding, func(k string, v []byte) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 1 || keys[0] != "before" {
		t.Fatalf("snapshot scan = %v", keys)
	}
}

// TestStoreConcurrent hammers one store from concurrent writers and
// (snapshot) readers; under -race this is the concurrency guard for the
// submit/dedup path.
func TestStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("%016x", i%20) // heavy key contention
				if _, err := s.Put(KindFinding, key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if v, ok := s.Get(KindFinding, key); !ok || string(v) != key {
					t.Error("read-own-write failed")
					return
				}
				snap := s.Snapshot()
				n := 0
				snap.Scan(KindFinding, func(k string, v []byte) bool {
					n++
					return true
				})
				if n > snap.Len() {
					t.Error("snapshot scan exceeded its view")
					return
				}
				if i%10 == 0 {
					if err := s.Commit(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	if st := s2.Stats(); st.Records != 20 {
		t.Fatalf("recovered %d records, want 20 (dedup by content address)", st.Records)
	}
}

// TestCodecRoundTrip pins the typed payloads: findings and pool vectors
// (including vectors, poison and pointer memory) survive encode/decode, and
// finding encoding is byte-deterministic.
func TestCodecRoundTrip(t *testing.T) {
	f := &Finding{
		Window: WindowKey(0xdeadbeef), Outcome: "found", Round: 2,
		Src: "define ...", Cand: "define ...",
		InstrsBefore: 4, InstrsAfter: 2, CyclesBefore: 7, CyclesAfter: 3,
		RuleHits: map[string]int{"patch:x": 1}, LearnedID: "learned:abc",
	}
	enc1, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	enc2, _ := f.Encode()
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("finding encoding is not deterministic")
	}
	back, err := DecodeFinding(enc1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Window != f.Window || back.Outcome != f.Outcome || back.Round != f.Round ||
		back.LearnedID != f.LearnedID || back.RuleHits["patch:x"] != 1 {
		t.Fatalf("finding round trip: %+v", back)
	}

	vec := alive.PoolVector{
		Inputs: []interp.RVal{
			interp.Scalar(ir.I32, 0xFFFF_FFFF),
			{Ty: ir.VecT(2, ir.I8), Lanes: []interp.Word{{V: 1}, {Poison: true}}},
			interp.Scalar(ir.Ptr, 0x10000),
		},
		Mem: [][]byte{{1, 2, 3, 4}},
	}
	pv := NewPoolVec(42, vec)
	enc, err := pv.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePoolVec(enc)
	if err != nil {
		t.Fatal(err)
	}
	window, v2, err := got.Vector()
	if err != nil {
		t.Fatal(err)
	}
	if window != 42 || len(v2.Inputs) != 3 || len(v2.Mem) != 1 {
		t.Fatalf("vector round trip: window=%d %+v", window, v2)
	}
	if v2.Inputs[0].Lanes[0].V != 0xFFFF_FFFF || !ir.Equal(v2.Inputs[0].Ty, ir.I32) {
		t.Fatal("scalar lane lost")
	}
	if !v2.Inputs[1].Lanes[1].Poison || !ir.Equal(v2.Inputs[1].Ty, ir.VecT(2, ir.I8)) {
		t.Fatal("vector poison lane lost")
	}
	if !ir.Equal(v2.Inputs[2].Ty, ir.Ptr) || !bytes.Equal(v2.Mem[0], []byte{1, 2, 3, 4}) {
		t.Fatal("pointer/memory lost")
	}
	if VectorKey(42, enc) != VectorKey(42, enc) || VectorKey(42, enc) == VectorKey(42, []byte("x")) {
		t.Fatal("vector key not content-derived")
	}

	if _, err := ParseWindowKey("not-hex"); err == nil {
		t.Fatal("bad window key accepted")
	}
	h, err := ParseWindowKey(WindowKey(0xabc))
	if err != nil || h != 0xabc {
		t.Fatalf("window key round trip: %x, %v", h, err)
	}
}
