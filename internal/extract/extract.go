// Package extract implements the paper's Algorithm 2: harvesting all unique
// dependent instruction sequences from the basic blocks of LLVM IR modules,
// wrapping each sequence as a standalone function, filtering out sequences
// the baseline optimizer can already improve, and deduplicating by structural
// hash.
package extract

import (
	"fmt"
	"sync"

	"repro/internal/ir"
	"repro/internal/opt"
)

// Options configures an Extractor.
type Options struct {
	// MinLen drops sequences shorter than this many instructions
	// (default 2 — single instructions rarely manifest missed peepholes and
	// dominate the sequence count otherwise).
	MinLen int
	// MaxLen caps sequence length (0 = unlimited).
	MaxLen int
	// Opt configures the "can LLVM already optimize this?" filter.
	Opt opt.Options
}

// Sequence is one wrapped instruction sequence with its provenance.
type Sequence struct {
	Fn     *ir.Func // the wrapped function (canonicalized)
	Module string
	Func   string
	Block  string
	Len    int // original sequence length (before wrapping)
}

// Stats counts the fate of extracted sequences across an Extractor's
// lifetime (paper: ~800 K unique sequences, ~8.7 M duplicates eliminated).
type Stats struct {
	Sequences   int // raw dependent sequences found
	TooShort    int // dropped by MinLen/MaxLen
	Optimizable int // dropped: baseline opt already improves them
	Duplicates  int // dropped: structural hash already seen
	Kept        int
	Unsupported int // dropped: not wrappable (phi/label operands, void mid-results)
}

// Extractor holds the cross-module dedup set. The dedup set and counters are
// guarded by a mutex, so one Extractor may be shared across concurrent
// extraction workers (the engine's streaming sources do exactly that);
// deduplication stays global across all of them.
type Extractor struct {
	opts  Options
	mu    sync.Mutex
	dedup map[uint64]bool
	stats Stats
}

// New returns an Extractor with an empty dedup set.
func New(opts Options) *Extractor {
	if opts.MinLen == 0 {
		opts.MinLen = 2
	}
	return &Extractor{opts: opts, dedup: make(map[uint64]bool)}
}

// Stats returns a copy of the running counters.
func (e *Extractor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// claim atomically tests-and-inserts a structural hash into the dedup set,
// reporting whether the caller owns the first sighting.
func (e *Extractor) claim(digest uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dedup[digest] {
		e.stats.Duplicates++
		return false
	}
	e.dedup[digest] = true
	e.stats.Kept++
	return true
}

func (e *Extractor) count(f func(*Stats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}

// Module extracts all unique, not-already-optimizable sequences from m.
func (e *Extractor) Module(m *ir.Module) []*Sequence {
	var out []*Sequence
	e.Stream(m, func(s *Sequence) bool {
		out = append(out, s)
		return true
	})
	return out
}

// Stream extracts sequences from m and hands each kept one to yield as soon
// as it is found, without materializing the whole slice. Extraction stops
// early when yield returns false. Stream is safe to call concurrently on
// different modules of the same Extractor.
func (e *Extractor) Stream(m *ir.Module, yield func(*Sequence) bool) {
	for _, f := range m.Funcs {
		for _, bb := range f.Blocks {
			for _, seq := range SeqsFromBlock(bb) {
				e.count(func(s *Stats) { s.Sequences++ })
				if len(seq) < e.opts.MinLen || (e.opts.MaxLen > 0 && len(seq) > e.opts.MaxLen) {
					e.count(func(s *Stats) { s.TooShort++ })
					continue
				}
				wrapped, err := WrapAsFunc(seq, "src")
				if err != nil {
					e.count(func(s *Stats) { s.Unsupported++ })
					continue
				}
				// Line 7-8 of Alg. 2: if LLVM can further optimize the
				// isolated sequence, skip it — the missed-optimization
				// search should only see code the compiler thinks is final.
				optimized := opt.Run(wrapped, e.opts.Opt)
				if optimized.NumInstrs(true) < wrapped.NumInstrs(true) {
					e.count(func(s *Stats) { s.Optimizable++ })
					continue
				}
				// Pure canonicalization (same size, different shape) is
				// folded into the kept sequence so every consumer sees the
				// canonical form.
				if !ir.StructurallyEqual(optimized, wrapped) {
					wrapped = optimized
				}
				if !e.claim(ir.Hash(wrapped)) {
					continue
				}
				if !yield(&Sequence{
					Fn: wrapped, Module: m.Name, Func: f.Name, Block: bb.Name, Len: len(seq),
				}) {
					return
				}
			}
		}
	}
}

// SeqsFromBlock is the paper's ExtractSeqsFromBB: it walks the block's
// instructions in reverse order and grows every dependent sequence that uses
// the current instruction's result, creating a fresh sequence when nothing
// does. Terminators and phis are skipped (LPO targets straight-line windows;
// phi inputs become function arguments when wrapping).
func SeqsFromBlock(bb *ir.Block) [][]*ir.Instr {
	var seqSet [][]*ir.Instr
	for i := len(bb.Instrs) - 1; i >= 0; i-- {
		inst := bb.Instrs[i]
		if inst.IsTerminator() || inst.Op == ir.OpPhi {
			continue
		}
		added := false
		newSet := make([][]*ir.Instr, 0, len(seqSet)+1)
		for _, seq := range seqSet {
			if dependsOn(seq, inst) {
				grown := make([]*ir.Instr, 0, len(seq)+1)
				grown = append(grown, inst)
				grown = append(grown, seq...)
				newSet = append(newSet, grown)
				added = true
			} else {
				newSet = append(newSet, seq)
			}
		}
		if !added {
			newSet = append(newSet, []*ir.Instr{inst})
		}
		seqSet = newSet
	}
	return seqSet
}

// dependsOn reports whether any instruction in seq uses inst's result.
func dependsOn(seq []*ir.Instr, inst *ir.Instr) bool {
	for _, s := range seq {
		if s.DependsOn(inst) {
			return true
		}
	}
	return false
}

// WrapAsFunc turns a dependent instruction sequence into a standalone
// function: operands not defined inside the sequence become parameters
// (named a0, a1, ... in order of first use), and a return of the last
// value-producing instruction is appended (ret void if the sequence ends in
// a store).
func WrapAsFunc(seq []*ir.Instr, name string) (*ir.Func, error) {
	inSeq := make(map[*ir.Instr]bool, len(seq))
	for _, in := range seq {
		inSeq[in] = true
	}
	vmap := make(map[ir.Value]ir.Value)
	var params []*ir.Param
	paramFor := func(v ir.Value) (ir.Value, error) {
		if m, ok := vmap[v]; ok {
			return m, nil
		}
		if _, isLabel := v.Type().(ir.LabelType); isLabel {
			return nil, fmt.Errorf("extract: label operand cannot become a parameter")
		}
		if ir.IsVoid(v.Type()) {
			return nil, fmt.Errorf("extract: void operand cannot become a parameter")
		}
		p := &ir.Param{Nm: "a" + itoa(len(params)), Ty: v.Type()}
		params = append(params, p)
		vmap[v] = p
		return p, nil
	}
	var instrs []*ir.Instr
	for _, in := range seq {
		ni := &ir.Instr{
			Op: in.Op, Nm: in.Nm, Ty: in.Ty, IPredV: in.IPredV, FPredV: in.FPredV,
			Flags: in.Flags, Callee: in.Callee, ElemTy: in.ElemTy, Align: in.Align,
		}
		for _, a := range in.Args {
			switch {
			case ir.IsConst(a):
				ni.Args = append(ni.Args, a)
			default:
				if def, ok := a.(*ir.Instr); ok && inSeq[def] {
					ni.Args = append(ni.Args, vmap[def])
					continue
				}
				p, err := paramFor(a)
				if err != nil {
					return nil, err
				}
				ni.Args = append(ni.Args, p)
			}
		}
		vmap[in] = ni
		instrs = append(instrs, ni)
	}
	last := instrs[len(instrs)-1]
	var ret ir.Type = ir.Void
	if last.HasResult() {
		ret = last.Ty
		instrs = append(instrs, ir.RetI(last))
	} else {
		instrs = append(instrs, ir.RetVoid())
	}
	f := &ir.Func{Name: name, Ret: ret, Params: params,
		Blocks: []*ir.Block{{Name: "entry", Instrs: instrs}}}
	if err := ir.VerifyFunc(f); err != nil {
		return nil, err
	}
	return f, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
