package extract

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/ir"
	"repro/internal/parser"
)

func TestSeqsFromBlockShape(t *testing.T) {
	f := parser.MustParseFunc(`define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  %b = mul i32 %a, %x
  %c = xor i32 %x, 5
  ret i32 %b
}`)
	seqs := SeqsFromBlock(f.Entry())
	if len(seqs) != 2 {
		t.Fatalf("expected 2 dependent sequences, got %d", len(seqs))
	}
	// One sequence is [a b], the other [c].
	var lens []int
	for _, s := range seqs {
		lens = append(lens, len(s))
	}
	if !(lens[0] == 1 && lens[1] == 2 || lens[0] == 2 && lens[1] == 1) {
		t.Fatalf("unexpected sequence lengths %v", lens)
	}
	for _, s := range seqs {
		if len(s) == 2 {
			if s[0].Nm != "a" || s[1].Nm != "b" {
				t.Fatalf("dependent sequence should be [a b] in program order, got [%s %s]",
					s[0].Nm, s[1].Nm)
			}
		}
	}
}

func TestSeqsSkipTerminatorsAndPhis(t *testing.T) {
	f := parser.MustParseFunc(`define i64 @f(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]
  %i2 = add i64 %i, 1
  %d = icmp eq i64 %i2, %n
  br i1 %d, label %out, label %loop
out:
  ret i64 %i2
}`)
	seqs := SeqsFromBlock(f.Blocks[1])
	for _, s := range seqs {
		for _, in := range s {
			if in.IsTerminator() || in.Op == ir.OpPhi {
				t.Fatalf("sequence contains %s", in)
			}
		}
	}
}

func TestWrapAsFunc(t *testing.T) {
	f := parser.MustParseFunc(`define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, 1
  %b = mul i32 %a, %y
  ret i32 %b
}`)
	seqs := SeqsFromBlock(f.Entry())
	if len(seqs) != 1 {
		t.Fatalf("expected one sequence, got %d", len(seqs))
	}
	w, err := WrapAsFunc(seqs[0], "src")
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Params) != 2 {
		t.Fatalf("free operands should become parameters:\n%s", w)
	}
	if w.Params[0].Nm != "a0" || w.Params[1].Nm != "a1" {
		t.Fatalf("parameters should be named a0, a1:\n%s", w)
	}
	if !ir.Equal(w.Ret, ir.I32) {
		t.Fatalf("return type should be i32:\n%s", w)
	}
	if err := ir.VerifyFunc(w); err != nil {
		t.Fatal(err)
	}
}

func TestWrapStoreSequenceReturnsVoid(t *testing.T) {
	f := parser.MustParseFunc(`define void @f(ptr %p, i32 %x) {
  %d = shl i32 %x, 1
  store i32 %d, ptr %p, align 4
  ret void
}`)
	seqs := SeqsFromBlock(f.Entry())
	if len(seqs) != 1 {
		t.Fatalf("expected one sequence, got %d", len(seqs))
	}
	w, err := WrapAsFunc(seqs[0], "src")
	if err != nil {
		t.Fatal(err)
	}
	if !ir.IsVoid(w.Ret) {
		t.Fatalf("store-terminated sequence should return void:\n%s", w)
	}
	if !strings.Contains(w.String(), "ret void") {
		t.Fatalf("missing ret void:\n%s", w)
	}
}

// The paper's Figure 1d module (simplified to one straight-line block) must
// yield the Figure 3a wrapped sequence.
func TestExtractClampSequence(t *testing.T) {
	m, err := parser.Parse(`define <4 x i8> @clamp_body(i64 %i, ptr %inp) {
  %0 = getelementptr inbounds nuw i32, ptr %inp, i64 %i
  %wide.load = load <4 x i32>, ptr %0, align 4
  %3 = icmp slt <4 x i32> %wide.load, zeroinitializer
  %5 = tail call <4 x i32> @llvm.umin.v4i32(<4 x i32> %wide.load, <4 x i32> splat (i32 255))
  %7 = trunc nuw <4 x i32> %5 to <4 x i8>
  %9 = select <4 x i1> %3, <4 x i8> zeroinitializer, <4 x i8> %7
  ret <4 x i8> %9
}`)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{})
	seqs := e.Module(m)
	var hit *Sequence
	for _, s := range seqs {
		txt := s.Fn.String()
		if strings.Contains(txt, "llvm.umin.v4i32") && strings.Contains(txt, "select") &&
			strings.Contains(txt, "load") {
			hit = s
		}
	}
	if hit == nil {
		t.Fatalf("expected the clamp sequence to be extracted; got %d sequences", len(seqs))
	}
	// Compare against the paper's Figure 3a. Parameter order differs from
	// the paper (we number parameters in first-use order, and the GEP's base
	// pointer is used before the index), which does not change the window.
	want := parser.MustParseFunc(`define <4 x i8> @src(ptr %a0, i64 %a1) {
entry:
  %0 = getelementptr inbounds nuw i32, ptr %a0, i64 %a1
  %wide.load = load <4 x i32>, ptr %0, align 4
  %3 = icmp slt <4 x i32> %wide.load, zeroinitializer
  %5 = tail call <4 x i32> @llvm.umin.v4i32(<4 x i32> %wide.load, <4 x i32> splat (i32 255))
  %7 = trunc nuw <4 x i32> %5 to <4 x i8>
  %9 = select <4 x i1> %3, <4 x i8> zeroinitializer, <4 x i8> %7
  ret <4 x i8> %9
}`)
	if ir.Hash(hit.Fn) != ir.Hash(want) {
		t.Fatalf("extracted sequence differs from Figure 3a:\ngot:\n%s\nwant:\n%s", hit.Fn, want)
	}
}

func TestDeduplication(t *testing.T) {
	src := `define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  %b = mul i32 %a, %a
  ret i32 %b
}`
	m1, _ := parser.Parse(src)
	m2, _ := parser.Parse(src)
	e := New(Options{})
	s1 := e.Module(m1)
	s2 := e.Module(m2)
	if len(s1) != 1 || len(s2) != 0 {
		t.Fatalf("dedup failed: first=%d second=%d", len(s1), len(s2))
	}
	if e.Stats().Duplicates != 1 {
		t.Fatalf("expected 1 duplicate, got %+v", e.Stats())
	}
}

func TestOptimizableSequencesFiltered(t *testing.T) {
	m, _ := parser.Parse(`define i32 @f(i32 %x) {
  %a = add i32 %x, 10
  %b = add i32 %a, 20
  ret i32 %b
}`)
	e := New(Options{})
	seqs := e.Module(m)
	if len(seqs) != 0 {
		t.Fatalf("foldable add chain should be filtered, got %d sequences", len(seqs))
	}
	if e.Stats().Optimizable != 1 {
		t.Fatalf("expected 1 optimizable-filtered sequence, got %+v", e.Stats())
	}
}

func TestMinLenFilter(t *testing.T) {
	m, _ := parser.Parse(`define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, %y
  ret i32 %a
}`)
	e := New(Options{MinLen: 2})
	if seqs := e.Module(m); len(seqs) != 0 {
		t.Fatalf("singleton sequence should be dropped, got %d", len(seqs))
	}
}

func TestExtractedSequencesAreCanonical(t *testing.T) {
	// Constant on the LHS is not canonical; the extractor should keep the
	// canonicalized form so downstream consumers agree with opt's output.
	m, _ := parser.Parse(`define i32 @f(i32 %x, i32 %y) {
  %a = add i32 7, %x
  %b = mul i32 %a, %y
  ret i32 %b
}`)
	e := New(Options{})
	seqs := e.Module(m)
	if len(seqs) != 1 {
		t.Fatalf("expected one sequence, got %d", len(seqs))
	}
	txt := seqs[0].Fn.String()
	if strings.Contains(txt, "add i32 7,") {
		t.Fatalf("sequence was not canonicalized:\n%s", txt)
	}
}

func TestConcurrentStreamSharesDedup(t *testing.T) {
	// Two goroutines stream the same module through one Extractor: the
	// shared dedup set must keep exactly one copy of every unique sequence
	// (the duplicate tally absorbs the rest), with no data race.
	src := `define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, %y
  %b = mul i32 %a, %x
  ret i32 %b
}
define i32 @g(i32 %x) {
  %a = shl i32 %x, 3
  %b = xor i32 %a, 7
  ret i32 %b
}`
	m, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	baseline := New(Options{})
	want := len(baseline.Module(m))
	if want == 0 {
		t.Fatal("test module yields no sequences")
	}

	const goroutines = 8
	ex := New(Options{})
	var mu sync.Mutex
	var kept []*Sequence
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ex.Stream(m, func(s *Sequence) bool {
				mu.Lock()
				kept = append(kept, s)
				mu.Unlock()
				return true
			})
		}()
	}
	wg.Wait()
	if len(kept) != want {
		t.Fatalf("concurrent streams kept %d sequences, want %d", len(kept), want)
	}
	st := ex.Stats()
	if st.Kept != want {
		t.Fatalf("stats kept %d, want %d", st.Kept, want)
	}
	hashes := map[uint64]bool{}
	for _, s := range kept {
		if h := ir.Hash(s.Fn); hashes[h] {
			t.Fatal("duplicate sequence escaped the shared dedup set")
		} else {
			hashes[h] = true
		}
	}
	if st.Duplicates == 0 {
		t.Fatal("expected the redundant streams to be counted as duplicates")
	}
}
