// Package interp is a concrete evaluator for the IR subset: it executes
// functions on explicit inputs with Alive2-compatible poison and undefined
// behaviour semantics. It backs the refinement verifier (internal/alive),
// the superoptimizer baselines' counterexample-guided search, and the SPEC
// performance simulation.
package interp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ir"
)

// Word is one scalar lane: a bit pattern plus a poison marker. Floating
// point lanes store IEEE bits at the lane's width.
type Word struct {
	V      uint64
	Poison bool
}

// RVal is a runtime value: one lane for scalars, N lanes for vectors.
type RVal struct {
	Ty    ir.Type
	Lanes []Word
}

// Scalar builds a single-lane runtime value, masking to the type's width.
func Scalar(ty ir.Type, v uint64) RVal {
	return RVal{Ty: ty, Lanes: []Word{{V: v & ir.MaskW(ir.ScalarBits(ty))}}}
}

// PoisonRV builds an all-poison value of the given type.
func PoisonRV(ty ir.Type) RVal {
	n := ir.Lanes(ty)
	lanes := make([]Word, n)
	for i := range lanes {
		lanes[i].Poison = true
	}
	return RVal{Ty: ty, Lanes: lanes}
}

// VecOf builds a vector value from raw lane patterns.
func VecOf(ty ir.VecType, vals ...uint64) RVal {
	mask := ir.MaskW(ir.ScalarBits(ty.Elem))
	lanes := make([]Word, len(vals))
	for i, v := range vals {
		lanes[i] = Word{V: v & mask}
	}
	return RVal{Ty: ty, Lanes: lanes}
}

// Clone returns a deep copy of v. Use it to retain values that alias an
// Evaluator's scratch storage beyond its next Run.
func (v RVal) Clone() RVal {
	if v.Lanes == nil {
		return v
	}
	return RVal{Ty: v.Ty, Lanes: append([]Word(nil), v.Lanes...)}
}

// AnyPoison reports whether any lane of v is poison.
func (v RVal) AnyPoison() bool {
	for _, l := range v.Lanes {
		if l.Poison {
			return true
		}
	}
	return false
}

// Format renders the value for counterexample messages, e.g.
// "i32 -1 (0xFFFFFFFF)" or "<4 x i8> { 0, poison, 3, 0 }".
func (v RVal) Format() string {
	if v.Ty == nil {
		return "void"
	}
	elem := ir.Elem(v.Ty)
	w := ir.ScalarBits(elem)
	one := func(l Word) string {
		if l.Poison {
			return "poison"
		}
		if ir.IsFloat(elem) {
			return fmt.Sprintf("%g", loadFloat(w, l.V))
		}
		return fmt.Sprintf("%d (0x%0*X)", ir.SignExt(l.V, w), (w+3)/4, l.V)
	}
	if !ir.IsVector(v.Ty) {
		return v.Ty.String() + " " + one(v.Lanes[0])
	}
	parts := make([]string, len(v.Lanes))
	for i, l := range v.Lanes {
		parts[i] = one(l)
	}
	return v.Ty.String() + " { " + strings.Join(parts, ", ") + " }"
}

// Equal reports lane-wise bit equality (poison lanes compare equal only to
// poison lanes). It is used by tests, not by refinement (which has
// asymmetric rules).
func (v RVal) Equal(o RVal) bool {
	if len(v.Lanes) != len(o.Lanes) {
		return false
	}
	for i := range v.Lanes {
		if v.Lanes[i].Poison != o.Lanes[i].Poison {
			return false
		}
		if !v.Lanes[i].Poison && v.Lanes[i].V != o.Lanes[i].V {
			return false
		}
	}
	return true
}

// loadFloat decodes IEEE bits at width w (32 or 64) into a float64.
func loadFloat(w int, bits uint64) float64 {
	if w == 32 {
		return float64(math.Float32frombits(uint32(bits)))
	}
	return math.Float64frombits(bits)
}

// storeFloat encodes f into IEEE bits at width w.
func storeFloat(w int, f float64) uint64 {
	if w == 32 {
		return uint64(math.Float32bits(float32(f)))
	}
	return math.Float64bits(f)
}
