package interp

import (
	"sync"

	"repro/internal/ir"
)

// Cache memoizes compiled Programs by structural function hash (ir.Hash),
// so repeated verifications of the same window — engine verify stages across
// rounds and workers, generalize width sweeps re-instantiating the same
// abstraction, CEGIS loops revisiting a candidate — compile each function
// once. It is safe for concurrent use. Like the engine's verification cache
// it treats ir.Hash as identity.
//
// A nil *Cache is valid and simply compiles on every call, so callers can
// thread an optional cache without nil checks.
type Cache struct {
	mu sync.Mutex
	m  map[uint64]*Program
}

// NewCache returns an empty program cache.
func NewCache() *Cache {
	return &Cache{m: make(map[uint64]*Program)}
}

// Program returns the compiled program for fn, compiling it on first use.
func (c *Cache) Program(fn *ir.Func) *Program {
	if c == nil {
		return Compile(fn)
	}
	h := ir.Hash(fn)
	c.mu.Lock()
	p, ok := c.m[h]
	c.mu.Unlock()
	if ok {
		return p
	}
	// Compile outside the lock: compilation is pure, so a racing duplicate
	// is wasted work at worst, and slow compiles never serialize readers.
	p = Compile(fn)
	c.mu.Lock()
	if prev, ok := c.m[h]; ok {
		p = prev
	} else {
		c.m[h] = p
	}
	c.mu.Unlock()
	return p
}

// Len reports how many programs the cache holds.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
