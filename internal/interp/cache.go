package interp

import (
	"sync"

	"repro/internal/ir"
)

// DefaultCacheCap is the program capacity of NewCache. A compiled window is
// a few KB, so the default bounds a campaign-long cache to a few MB while
// still covering far more distinct windows than a corpus run touches
// between repeats.
const DefaultCacheCap = 4096

// Cache memoizes compiled Programs by structural function hash (ir.Hash),
// so repeated verifications of the same window — engine verify stages across
// rounds and workers, generalize width sweeps re-instantiating the same
// abstraction, CEGIS loops revisiting a candidate — compile each function
// once. It is safe for concurrent use. Like the engine's verification cache
// it treats ir.Hash as identity.
//
// The cache is bounded: once it holds its capacity of programs, inserting a
// new one evicts an old one chosen by the clock (second-chance) policy —
// each hit marks its entry referenced, and the clock hand sweeps past
// referenced entries (clearing the mark) until it finds an unreferenced
// victim. Eviction never changes semantics; an evicted program is simply
// recompiled on next use. Stats reports hit/miss/eviction counters.
//
// A nil *Cache is valid and simply compiles on every call, so callers can
// thread an optional cache without nil checks.
type Cache struct {
	mu   sync.Mutex
	cap  int
	m    map[uint64]*cacheEntry
	ring []uint64 // hashes in slot order for the clock sweep
	hand int

	hits, misses, evictions int64
}

type cacheEntry struct {
	p   *Program
	ref bool
}

// CacheStats is a snapshot of a cache's counters.
type CacheStats struct {
	Len, Cap                int
	Hits, Misses, Evictions int64
}

// NewCache returns an empty program cache with the default capacity.
func NewCache() *Cache { return NewCacheSize(DefaultCacheCap) }

// NewCacheSize returns an empty program cache holding at most capacity
// programs (values below 1 fall back to the default).
func NewCacheSize(capacity int) *Cache {
	if capacity < 1 {
		capacity = DefaultCacheCap
	}
	return &Cache{cap: capacity, m: make(map[uint64]*cacheEntry)}
}

// Program returns the compiled program for fn, compiling it on first use.
func (c *Cache) Program(fn *ir.Func) *Program {
	if c == nil {
		return Compile(fn)
	}
	h := ir.Hash(fn)
	c.mu.Lock()
	if e, ok := c.m[h]; ok {
		e.ref = true
		c.hits++
		p := e.p
		c.mu.Unlock()
		return p
	}
	c.misses++
	c.mu.Unlock()
	// Compile outside the lock: compilation is pure, so a racing duplicate
	// is wasted work at worst, and slow compiles never serialize readers.
	p := Compile(fn)
	c.mu.Lock()
	if prev, ok := c.m[h]; ok {
		p = prev.p
	} else {
		c.insert(h, p)
	}
	c.mu.Unlock()
	return p
}

// insert stores a freshly compiled program, evicting by clock when full.
// Caller holds the lock.
func (c *Cache) insert(h uint64, p *Program) {
	if len(c.ring) < c.cap {
		c.m[h] = &cacheEntry{p: p}
		c.ring = append(c.ring, h)
		return
	}
	for {
		vh := c.ring[c.hand]
		v := c.m[vh]
		if v.ref {
			v.ref = false
			c.hand = (c.hand + 1) % len(c.ring)
			continue
		}
		delete(c.m, vh)
		c.evictions++
		c.m[h] = &cacheEntry{p: p}
		c.ring[c.hand] = h
		c.hand = (c.hand + 1) % len(c.ring)
		return
	}
}

// Len reports how many programs the cache holds.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns a snapshot of the cache's counters. A nil cache reports
// zeros.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Len: len(c.m), Cap: c.cap,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}
