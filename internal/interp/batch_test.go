package interp

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/parser"
)

// sameResult compares two execution results field by field (return values
// lane-exact: poison marks equal, bit patterns equal on non-poison lanes).
func sameResult(a, b Result) string {
	if a.UB != b.UB || a.UBReason != b.UBReason ||
		a.Completed != b.Completed || a.DynInstrs != b.DynInstrs {
		return fmt.Sprintf("status mismatch: %+v vs %+v", a, b)
	}
	if !a.UB && a.Completed && !a.Ret.Equal(b.Ret) {
		return fmt.Sprintf("return mismatch: %s vs %s", a.Ret.Format(), b.Ret.Format())
	}
	return ""
}

// batchEnvs builds one fresh environment per vector, with independent
// memories for pointer parameters (filled deterministically per vector so
// the per-vector fallback still sees distinct states).
func batchEnvs(f *ir.Func, vectors [][]RVal, maxSteps int) []Env {
	envs := make([]Env, len(vectors))
	for vi, args := range vectors {
		env := Env{MaxSteps: maxSteps, Args: append([]RVal(nil), args...)}
		var mem *Memory
		for i, p := range f.Params {
			if ir.IsPtr(p.Ty) {
				if mem == nil {
					mem = NewMemory()
				}
				base := uint64(0x10000 + i*0x1000)
				r := mem.AddRegion(p.Nm, base, 32)
				for b := range r.Data {
					r.Data[b] = byte(b*3 + vi)
				}
				env.Args[i] = Scalar(ir.Ptr, base)
			}
		}
		env.Mem = mem
		envs[vi] = env
	}
	return envs
}

// TestRunBatchMatchesRunOnDiffCases drives every construct case — including
// the multi-block, memory and vector cases that take the per-vector
// fallback — through RunBatch and requires bit-identical results to Exec on
// fresh environments. More vectors than BatchWidth are used so chunking and
// the cross-chunk Ret cloning are exercised.
func TestRunBatchMatchesRunOnDiffCases(t *testing.T) {
	for _, tc := range diffCases {
		f, err := parser.ParseFunc(tc.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		ev := NewEvaluator(Compile(f))
		rng := rand.New(rand.NewSource(41))
		var vectors [][]RVal
		for k := 0; k < BatchWidth+17; k++ {
			mask := 0
			if k%11 == 3 {
				mask = 1 << (k % len(f.Params))
			}
			vectors = append(vectors, diffArgs(f, rng, mask))
		}
		out := make([]Result, len(vectors))
		ev.RunBatch(batchEnvs(f, vectors, 0), out)
		ref := batchEnvs(f, vectors, 0)
		for i := range vectors {
			want := Exec(f, ref[i])
			if diff := sameResult(want, out[i]); diff != "" {
				t.Fatalf("%s vector %d: %s", tc.name, i, diff)
			}
		}
	}
}

// fuzzOps is the opcode palette of the straight-line generator.
var fuzzBinOps = []string{"add", "sub", "mul", "udiv", "sdiv", "urem", "srem",
	"shl", "lshr", "ashr", "and", "or", "xor"}
var fuzzPreds = []string{"eq", "ne", "ugt", "uge", "ult", "ule", "sgt", "sge", "slt", "sle"}
var fuzzFlags = map[string][]string{
	"add": {"", "nsw", "nuw", "nsw nuw"}, "sub": {"", "nsw", "nuw"},
	"mul": {"", "nsw", "nuw"}, "shl": {"", "nsw", "nuw"},
	"udiv": {"", "exact"}, "sdiv": {"", "exact"},
	"lshr": {"", "exact"}, "ashr": {"", "exact"}, "or": {"", "disjoint"},
}

// genStraightLine emits a random straight-line scalar function: a chain of
// integer binaries (with random poison flags), icmps, selects, conversions,
// freezes and min/max/ctpop intrinsics over parameters, earlier values and
// literal constants.
func genStraightLine(rng *rand.Rand) string {
	widths := []int{8, 16, 32, 64}
	nParams := 1 + rng.Intn(3)
	type val struct {
		name string
		w    int // 1 for i1
	}
	var vals []val
	var sb strings.Builder
	sb.WriteString("define i8 @fuzz(")
	for i := 0; i < nParams; i++ {
		w := widths[rng.Intn(len(widths))]
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "i%d %%p%d", w, i)
		vals = append(vals, val{fmt.Sprintf("%%p%d", i), w})
	}
	sb.WriteString(") {\n")
	pick := func(w int) string {
		var cands []val
		for _, v := range vals {
			if v.w == w {
				cands = append(cands, v)
			}
		}
		// Mix in literal constants (small, corner and random) half the time.
		if len(cands) == 0 || rng.Intn(2) == 0 {
			c := []uint64{0, 1, 2, 3, ir.MaskW(w), ir.MaskW(w) >> 1, rng.Uint64() & ir.MaskW(w)}[rng.Intn(7)]
			return fmt.Sprintf("%d", int64(ir.SignExt(c, w)))
		}
		return cands[rng.Intn(len(cands))].name
	}
	n := 3 + rng.Intn(9)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%%v%d", i)
		w := widths[rng.Intn(len(widths))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // integer binary
			op := fuzzBinOps[rng.Intn(len(fuzzBinOps))]
			fl := ""
			if fs := fuzzFlags[op]; fs != nil {
				fl = fs[rng.Intn(len(fs))]
				if fl != "" {
					fl += " "
				}
			}
			fmt.Fprintf(&sb, "  %s = %s %si%d %s, %s\n", name, op, fl, w, pick(w), pick(w))
			vals = append(vals, val{name, w})
		case 4: // icmp
			fmt.Fprintf(&sb, "  %s = icmp %s i%d %s, %s\n",
				name, fuzzPreds[rng.Intn(len(fuzzPreds))], w, pick(w), pick(w))
			vals = append(vals, val{name, 1})
		case 5: // select over an i1 if one exists
			cond := ""
			for _, v := range vals {
				if v.w == 1 {
					cond = v.name
				}
			}
			if cond == "" {
				fmt.Fprintf(&sb, "  %s = xor i%d %s, %s\n", name, w, pick(w), pick(w))
			} else {
				fmt.Fprintf(&sb, "  %s = select i1 %s, i%d %s, i%d %s\n",
					name, cond, w, pick(w), w, pick(w))
			}
			vals = append(vals, val{name, w})
		case 6: // conversion
			from := widths[rng.Intn(len(widths))]
			switch {
			case from < w:
				op := []string{"zext", "sext", "zext nneg"}[rng.Intn(3)]
				fmt.Fprintf(&sb, "  %s = %s i%d %s to i%d\n", name, op, from, pick(from), w)
			case from > w:
				fl := []string{"", "nsw ", "nuw "}[rng.Intn(3)]
				fmt.Fprintf(&sb, "  %s = trunc %si%d %s to i%d\n", name, fl, from, pick(from), w)
			default:
				fmt.Fprintf(&sb, "  %s = add i%d %s, %s\n", name, w, pick(w), pick(w))
			}
			vals = append(vals, val{name, w})
		case 7: // freeze
			fmt.Fprintf(&sb, "  %s = freeze i%d %s\n", name, w, pick(w))
			vals = append(vals, val{name, w})
		default: // intrinsic
			base := []string{"umin", "umax", "smin", "smax"}[rng.Intn(4)]
			if rng.Intn(5) == 0 {
				fmt.Fprintf(&sb, "  %s = call i%d @llvm.ctpop.i%d(i%d %s)\n", name, w, w, w, pick(w))
			} else {
				fmt.Fprintf(&sb, "  %s = call i%d @llvm.%s.i%d(i%d %s, i%d %s)\n",
					name, w, base, w, w, pick(w), w, pick(w))
			}
			vals = append(vals, val{name, w})
		}
	}
	// Return an i8 derived from the last value.
	last := vals[len(vals)-1]
	switch {
	case last.w == 8:
		fmt.Fprintf(&sb, "  ret i8 %s\n", last.name)
	case last.w < 8:
		fmt.Fprintf(&sb, "  %%rz = zext i%d %s to i8\n  ret i8 %%rz\n", last.w, last.name)
	default:
		fmt.Fprintf(&sb, "  %%rt = trunc i%d %s to i8\n  ret i8 %%rt\n", last.w, last.name)
	}
	sb.WriteString("}")
	return sb.String()
}

// fuzzVector builds one input vector biased toward interesting values
// (zero divisors, shift overflows, sign boundaries) with occasional poison
// lanes.
func fuzzVector(f *ir.Func, rng *rand.Rand) []RVal {
	args := make([]RVal, len(f.Params))
	for i, p := range f.Params {
		w := ir.ScalarBits(p.Ty)
		if rng.Intn(12) == 0 {
			args[i] = PoisonRV(p.Ty)
			continue
		}
		var v uint64
		switch rng.Intn(5) {
		case 0:
			v = uint64(rng.Intn(4)) // small: zero divisors, in-range shifts
		case 1:
			v = ir.MaskW(w) >> 1 // max signed
		case 2:
			v = (ir.MaskW(w) >> 1) + 1 // min signed
		default:
			v = rng.Uint64() & ir.MaskW(w)
		}
		args[i] = Scalar(p.Ty, v)
	}
	return args
}

// TestRunBatchFuzzStraightLine is the randomized three-way differential of
// the tentpole: generated straight-line functions execute through the
// reference tree-walker, the scalar evaluator and the lane-batched
// executor, and every vector's values, poison lanes, UB reason and step
// count must agree bit for bit. The seed is fixed so failures reproduce.
func TestRunBatchFuzzStraightLine(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	nFuncs := 150
	if testing.Short() {
		nFuncs = 30
	}
	for fi := 0; fi < nFuncs; fi++ {
		src := genStraightLine(rng)
		f, err := parser.ParseFunc(src)
		if err != nil {
			t.Fatalf("func %d: generated IR does not parse: %v\n%s", fi, err, src)
		}
		p := Compile(f)
		if !p.Batchable() {
			t.Fatalf("func %d: generated function should be batchable\n%s", fi, src)
		}
		ev := NewEvaluator(p)
		evBatch := NewEvaluator(p)
		var vectors [][]RVal
		for k := 0; k < BatchWidth+9; k++ {
			vectors = append(vectors, fuzzVector(f, rng))
		}
		envs := batchEnvs(f, vectors, 0)
		out := make([]Result, len(envs))
		evBatch.RunBatch(envs, out)
		for i, env := range envs {
			want := Exec(f, env)
			if diff := sameResult(want, out[i]); diff != "" {
				t.Fatalf("func %d vector %d: batch vs Exec: %s\n%s", fi, i, diff, src)
			}
			got := ev.Run(env)
			if diff := sameResult(want, got); diff != "" {
				t.Fatalf("func %d vector %d: Run vs Exec: %s\n%s", fi, i, diff, src)
			}
		}
	}
}

// sameMemory compares two final memories region by region (addresses, data
// bytes and poison shadows).
func sameMemory(a, b *Memory) string {
	if (a == nil) != (b == nil) {
		return "one memory is nil"
	}
	if a == nil {
		return ""
	}
	if len(a.Regions) != len(b.Regions) {
		return fmt.Sprintf("region count %d vs %d", len(a.Regions), len(b.Regions))
	}
	for ri := range a.Regions {
		ra, rb := a.Regions[ri], b.Regions[ri]
		if ra.Addr != rb.Addr || !bytes.Equal(ra.Data, rb.Data) {
			return fmt.Sprintf("region %s data mismatch:\n% x\n% x", ra.Name, ra.Data, rb.Data)
		}
		for i := range ra.Poison {
			if ra.Poison[i] != rb.Poison[i] {
				return fmt.Sprintf("region %s poison mismatch at byte %d", ra.Name, i)
			}
		}
	}
	return ""
}

// emitFuzzOps appends n random scalar integer ops of width w, drawing
// operands from pool (plus occasional literals), and returns the value
// names it defined. Names are prefixed so blocks never collide.
func emitFuzzOps(sb *strings.Builder, rng *rand.Rand, w int, pool []string, prefix string, n int) []string {
	ops := []string{"add", "sub", "mul", "xor", "and", "or", "udiv", "sdiv",
		"urem", "srem", "shl", "lshr", "add nsw", "sub nuw", "mul nsw"}
	cur := append([]string(nil), pool...)
	var defined []string
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%%%s%d", prefix, i)
		a := cur[rng.Intn(len(cur))]
		b := cur[rng.Intn(len(cur))]
		if rng.Intn(3) == 0 {
			b = fmt.Sprintf("%d", rng.Intn(8))
		}
		fmt.Fprintf(sb, "  %s = %s i%d %s, %s\n", name, ops[rng.Intn(len(ops))], w, a, b)
		cur = append(cur, name)
		defined = append(defined, name)
	}
	return defined
}

// genMultiBlock emits a random multi-block scalar function: a diamond whose
// arms diverge per input, a phi join (sometimes against a literal), an
// occasional deliberate cross-block use of an arm-only value (unbound on
// the other path), and half the time a counted loop whose trip count — and
// therefore DynInstrs — depends on the inputs.
func genMultiBlock(rng *rand.Rand) string {
	w := []int{8, 16, 32}[rng.Intn(3)]
	var sb strings.Builder
	fmt.Fprintf(&sb, "define i%d @mbfuzz(i%d %%p0, i%d %%p1) {\nentry:\n", w, w, w)
	vals := []string{"%p0", "%p1"}
	if ev := emitFuzzOps(&sb, rng, w, vals, "e", 1+rng.Intn(3)); len(ev) > 0 {
		vals = append(vals, ev...)
	}
	fmt.Fprintf(&sb, "  %%c = icmp %s i%d %s, %s\n",
		fuzzPreds[rng.Intn(len(fuzzPreds))], w, vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))])
	sb.WriteString("  br i1 %c, label %a, label %b\na:\n")
	av := emitFuzzOps(&sb, rng, w, vals, "a", 1+rng.Intn(3))
	sb.WriteString("  br label %join\nb:\n")
	bv := emitFuzzOps(&sb, rng, w, vals, "b", 1+rng.Intn(3))
	sb.WriteString("  br label %join\njoin:\n")
	aval, bval := av[len(av)-1], bv[len(bv)-1]
	if rng.Intn(4) == 0 {
		aval = fmt.Sprintf("%d", rng.Intn(16))
	}
	fmt.Fprintf(&sb, "  %%ph = phi i%d [ %s, %%a ], [ %s, %%b ]\n", w, aval, bval)
	pool := append(append([]string(nil), vals...), "%ph")
	if rng.Intn(4) == 0 {
		// Cross-block use of an arm-a-only value: lanes arriving via %b hit
		// "use of unbound value" at runtime.
		pool = append(pool, av[len(av)-1])
	}
	jv := emitFuzzOps(&sb, rng, w, pool, "j", 1+rng.Intn(2))
	last := jv[len(jv)-1]
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&sb, "  %%bound = and i%d %s, 7\n", w, last)
		sb.WriteString("  br label %head\nhead:\n")
		fmt.Fprintf(&sb, "  %%i = phi i%d [ 0, %%join ], [ %%inext, %%body ]\n", w)
		fmt.Fprintf(&sb, "  %%acc = phi i%d [ %s, %%join ], [ %%accn, %%body ]\n", w, last)
		fmt.Fprintf(&sb, "  %%lc = icmp ult i%d %%i, %%bound\n", w)
		sb.WriteString("  br i1 %lc, label %body, label %exit\nbody:\n")
		fmt.Fprintf(&sb, "  %%accn = add i%d %%acc, %%i\n", w)
		fmt.Fprintf(&sb, "  %%inext = add i%d %%i, 1\n", w)
		sb.WriteString("  br label %head\nexit:\n")
		fmt.Fprintf(&sb, "  ret i%d %%acc\n}", w)
	} else {
		fmt.Fprintf(&sb, "  ret i%d %s\n}", w, last)
	}
	return sb.String()
}

// genMemory emits a random straight-line memory-touching function over one
// pointer parameter: fixed and dynamic GEPs (some deliberately out of
// bounds of the 32-byte test region), mixed-width loads and stores, and
// arithmetic that can feed poison into stored bytes.
func genMemory(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("define i8 @memfuzz(ptr %p, i8 %x) {\n")
	vals := []string{"%x"}
	gi := 0
	dynGEP := ""
	if rng.Intn(2) == 0 {
		// A data-dependent address: poison %x poisons the whole chain.
		fmt.Fprintf(&sb, "  %%xm = and i8 %%x, 24\n  %%xi = zext i8 %%xm to i64\n")
		fmt.Fprintf(&sb, "  %%gd = getelementptr i8, ptr %%p, i64 %%xi\n")
		dynGEP = "%gd"
	}
	n := 2 + rng.Intn(5)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0, 1: // load (mixed widths, occasionally out of bounds)
			lw := []int{8, 16, 32}[rng.Intn(3)]
			ptr := dynGEP
			if ptr == "" || rng.Intn(2) == 0 {
				inb := ""
				if rng.Intn(2) == 0 {
					inb = "inbounds "
				}
				fmt.Fprintf(&sb, "  %%g%d = getelementptr %si8, ptr %%p, i64 %d\n", gi, inb, rng.Intn(36))
				ptr = fmt.Sprintf("%%g%d", gi)
				gi++
			}
			fmt.Fprintf(&sb, "  %%l%d = load i%d, ptr %s\n", i, lw, ptr)
			if lw > 8 {
				fmt.Fprintf(&sb, "  %%lt%d = trunc i%d %%l%d to i8\n", i, lw, i)
				vals = append(vals, fmt.Sprintf("%%lt%d", i))
			} else {
				vals = append(vals, fmt.Sprintf("%%l%d", i))
			}
		case 2, 3: // store a (possibly poison) value
			ptr := dynGEP
			if ptr == "" || rng.Intn(2) == 0 {
				fmt.Fprintf(&sb, "  %%g%d = getelementptr i8, ptr %%p, i64 %d\n", gi, rng.Intn(36))
				ptr = fmt.Sprintf("%%g%d", gi)
				gi++
			}
			fmt.Fprintf(&sb, "  store i8 %s, ptr %s\n", vals[rng.Intn(len(vals))], ptr)
		default: // arithmetic that can introduce poison or UB
			name := fmt.Sprintf("%%v%d", i)
			op := []string{"add nsw", "sub nuw", "udiv", "shl", "xor"}[rng.Intn(5)]
			a := vals[rng.Intn(len(vals))]
			b := vals[rng.Intn(len(vals))]
			if rng.Intn(2) == 0 {
				b = fmt.Sprintf("%d", rng.Intn(9))
			}
			fmt.Fprintf(&sb, "  %s = %s i8 %s, %s\n", name, op, a, b)
			vals = append(vals, name)
		}
	}
	fmt.Fprintf(&sb, "  ret i8 %s\n}", vals[len(vals)-1])
	return sb.String()
}

// TestRunBatchFuzzMultiBlock is the randomized three-way differential of
// the masked multi-block scheduler: generated branchy functions (diamonds,
// loops, cross-block unbound uses) execute through Exec, Run and RunBatch
// with mixed per-lane step budgets, and every vector's values, poison, UB
// reason and per-lane DynInstrs must agree bit for bit.
func TestRunBatchFuzzMultiBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	nFuncs := 150
	if testing.Short() {
		nFuncs = 30
	}
	for fi := 0; fi < nFuncs; fi++ {
		src := genMultiBlock(rng)
		f, err := parser.ParseFunc(src)
		if err != nil {
			t.Fatalf("func %d: generated IR does not parse: %v\n%s", fi, err, src)
		}
		p := Compile(f)
		if !p.Batchable() {
			t.Fatalf("func %d: multi-block function should be batchable\n%s", fi, src)
		}
		ev := NewEvaluator(p)
		evBatch := NewEvaluator(p)
		var vectors [][]RVal
		for k := 0; k < BatchWidth+9; k++ {
			vectors = append(vectors, fuzzVector(f, rng))
		}
		budget := func(envs []Env) []Env {
			for vi := range envs {
				if vi%7 == 3 {
					envs[vi].MaxSteps = 1 + vi%29
				}
			}
			return envs
		}
		envs := budget(batchEnvs(f, vectors, 0))
		refEnvs := budget(batchEnvs(f, vectors, 0))
		runEnvs := budget(batchEnvs(f, vectors, 0))
		out := make([]Result, len(envs))
		evBatch.RunBatch(envs, out)
		for i := range envs {
			want := Exec(f, refEnvs[i])
			if diff := sameResult(want, out[i]); diff != "" {
				t.Fatalf("func %d vector %d: batch vs Exec: %s\n%s", fi, i, diff, src)
			}
			if diff := sameResult(want, ev.Run(runEnvs[i])); diff != "" {
				t.Fatalf("func %d vector %d: Run vs Exec: %s\n%s", fi, i, diff, src)
			}
		}
	}
}

// TestRunBatchFuzzMemory is the randomized three-way differential of
// per-lane batch memories: generated load/store/GEP functions execute
// through Exec, Run and RunBatch on per-vector memories, and every
// vector's results and final memory (data and poison shadows) must agree.
func TestRunBatchFuzzMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	nFuncs := 120
	if testing.Short() {
		nFuncs = 25
	}
	for fi := 0; fi < nFuncs; fi++ {
		src := genMemory(rng)
		f, err := parser.ParseFunc(src)
		if err != nil {
			t.Fatalf("func %d: generated IR does not parse: %v\n%s", fi, err, src)
		}
		p := Compile(f)
		if !p.Batchable() {
			t.Fatalf("func %d: memory function should be batchable\n%s", fi, src)
		}
		ev := NewEvaluator(p)
		evBatch := NewEvaluator(p)
		var vectors [][]RVal
		for k := 0; k < BatchWidth+9; k++ {
			vectors = append(vectors, fuzzVector(f, rng))
		}
		envs := batchEnvs(f, vectors, 0)
		refEnvs := batchEnvs(f, vectors, 0)
		runEnvs := batchEnvs(f, vectors, 0)
		out := make([]Result, len(envs))
		evBatch.RunBatch(envs, out)
		for i := range envs {
			want := Exec(f, refEnvs[i])
			if diff := sameResult(want, out[i]); diff != "" {
				t.Fatalf("func %d vector %d: batch vs Exec: %s\n%s", fi, i, diff, src)
			}
			if diff := sameResult(want, ev.Run(runEnvs[i])); diff != "" {
				t.Fatalf("func %d vector %d: Run vs Exec: %s\n%s", fi, i, diff, src)
			}
			if diff := sameMemory(refEnvs[i].Mem, envs[i].Mem); diff != "" {
				t.Fatalf("func %d vector %d: batch final memory vs Exec: %s\n%s", fi, i, diff, src)
			}
			if diff := sameMemory(refEnvs[i].Mem, runEnvs[i].Mem); diff != "" {
				t.Fatalf("func %d vector %d: Run final memory vs Exec: %s\n%s", fi, i, diff, src)
			}
		}
	}
}

// TestRunBatchFilledMatchesRunBatch pins the zero-copy input path: writing
// the argument columns directly and calling RunBatchFilled must equal
// RunBatch over the same vectors.
func TestRunBatchFilledMatchesRunBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for fi := 0; fi < 25; fi++ {
		f := parser.MustParseFunc(genStraightLine(rng))
		p := Compile(f)
		evA, evB := NewEvaluator(p), NewEvaluator(p)
		n := 1 + rng.Intn(BatchWidth)
		var vectors [][]RVal
		for k := 0; k < n; k++ {
			vectors = append(vectors, fuzzVector(f, rng))
		}
		envs := batchEnvs(f, vectors, 0)
		outA := make([]Result, n)
		evA.RunBatch(envs, outA)
		for i, prm := range f.Params {
			col, err := evB.ArgColumn(i)
			if err != nil {
				t.Fatalf("func %d: ArgColumn: %v", fi, err)
			}
			L := ir.Lanes(prm.Ty)
			for b := 0; b < n; b++ {
				copy(col[b*L:(b+1)*L], vectors[b][i].Lanes)
			}
		}
		outB := make([]Result, n)
		if err := evB.RunBatchFilled(n, outB, nil); err != nil {
			t.Fatalf("func %d: RunBatchFilled: %v", fi, err)
		}
		for i := range outA {
			if diff := sameResult(outA[i], outB[i]); diff != "" {
				t.Fatalf("func %d vector %d: filled vs batch: %s", fi, i, diff)
			}
		}
	}
}

// TestRunBatchBudgetAndArgc covers the per-lane bookkeeping edges: mixed
// step budgets within one batch and argument-count mismatches on individual
// lanes, both matching per-vector Run exactly.
func TestRunBatchBudgetAndArgc(t *testing.T) {
	f := parser.MustParseFunc(`define i8 @f(i8 %x) {
  %a = add i8 %x, 1
  %b = add i8 %a, 2
  %c = add i8 %b, 3
  ret i8 %c
}`)
	ev := NewEvaluator(Compile(f))
	envs := []Env{
		{Args: []RVal{Scalar(ir.I8, 5)}},
		{Args: []RVal{Scalar(ir.I8, 5)}, MaxSteps: 2},
		{Args: []RVal{Scalar(ir.I8, 5)}, MaxSteps: 4},
		{Args: []RVal{}},
		{Args: []RVal{Scalar(ir.I8, 7), Scalar(ir.I8, 7)}},
	}
	out := make([]Result, len(envs))
	ev.RunBatch(envs, out)
	refEv := NewEvaluator(Compile(f))
	for i, env := range envs {
		want := refEv.Run(env)
		want.Ret = want.Ret.Clone()
		if diff := sameResult(want, out[i]); diff != "" {
			t.Fatalf("env %d: %s", i, diff)
		}
	}
}

// TestBatchableClassification pins which programs take the batched path:
// since the masked scheduler and per-lane memories landed, multi-block and
// memory-touching programs batch natively and only dynamic-vector-constant
// programs fall back to per-vector execution.
func TestBatchableClassification(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`define i8 @f(i8 %x) { %r = add i8 %x, 1 ret i8 %r }`, true},
		{`define i16 @f(ptr %p) { %v = load i16, ptr %p ret i16 %v }`, true},
		{`define i8 @f(i8 %x) {
entry:
  br label %next
next:
  ret i8 %x
}`, true},
		{`define <2 x i8> @f(i8 %x) {
  %s = add <2 x i8> splat (i8 %x), splat (i8 1)
  ret <2 x i8> %s
}`, false},
	}
	for i, tc := range cases {
		p := Compile(parser.MustParseFunc(tc.src))
		if p.Batchable() != tc.want {
			t.Fatalf("case %d: Batchable = %v, want %v", i, p.Batchable(), tc.want)
		}
		if reason := p.BatchFallbackReason(); (reason != "") == tc.want {
			t.Fatalf("case %d: BatchFallbackReason = %q, want empty=%v", i, reason, tc.want)
		}
	}
}

// TestArgColumnFallbackError pins that the column-streaming entry points
// fail with an error naming the fallback reason instead of panicking.
func TestArgColumnFallbackError(t *testing.T) {
	f := parser.MustParseFunc(`define <2 x i8> @dyn(i8 %x) {
  %s = add <2 x i8> splat (i8 %x), splat (i8 1)
  ret <2 x i8> %s
}`)
	ev := NewEvaluator(Compile(f))
	if _, err := ev.ArgColumn(0); err == nil ||
		!strings.Contains(err.Error(), "dynamic vector constant") {
		t.Fatalf("ArgColumn error = %v, want dynamic-vector reason", err)
	}
	out := make([]Result, 1)
	if err := ev.RunBatchFilled(1, out, nil); err == nil ||
		!strings.Contains(err.Error(), "dynamic vector constant") {
		t.Fatalf("RunBatchFilled error = %v, want dynamic-vector reason", err)
	}
}
