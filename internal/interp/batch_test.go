package interp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/parser"
)

// sameResult compares two execution results field by field (return values
// lane-exact: poison marks equal, bit patterns equal on non-poison lanes).
func sameResult(a, b Result) string {
	if a.UB != b.UB || a.UBReason != b.UBReason ||
		a.Completed != b.Completed || a.DynInstrs != b.DynInstrs {
		return fmt.Sprintf("status mismatch: %+v vs %+v", a, b)
	}
	if !a.UB && a.Completed && !a.Ret.Equal(b.Ret) {
		return fmt.Sprintf("return mismatch: %s vs %s", a.Ret.Format(), b.Ret.Format())
	}
	return ""
}

// batchEnvs builds one fresh environment per vector, with independent
// memories for pointer parameters (filled deterministically per vector so
// the per-vector fallback still sees distinct states).
func batchEnvs(f *ir.Func, vectors [][]RVal, maxSteps int) []Env {
	envs := make([]Env, len(vectors))
	for vi, args := range vectors {
		env := Env{MaxSteps: maxSteps, Args: append([]RVal(nil), args...)}
		var mem *Memory
		for i, p := range f.Params {
			if ir.IsPtr(p.Ty) {
				if mem == nil {
					mem = NewMemory()
				}
				base := uint64(0x10000 + i*0x1000)
				r := mem.AddRegion(p.Nm, base, 32)
				for b := range r.Data {
					r.Data[b] = byte(b*3 + vi)
				}
				env.Args[i] = Scalar(ir.Ptr, base)
			}
		}
		env.Mem = mem
		envs[vi] = env
	}
	return envs
}

// TestRunBatchMatchesRunOnDiffCases drives every construct case — including
// the multi-block, memory and vector cases that take the per-vector
// fallback — through RunBatch and requires bit-identical results to Exec on
// fresh environments. More vectors than BatchWidth are used so chunking and
// the cross-chunk Ret cloning are exercised.
func TestRunBatchMatchesRunOnDiffCases(t *testing.T) {
	for _, tc := range diffCases {
		f, err := parser.ParseFunc(tc.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		ev := NewEvaluator(Compile(f))
		rng := rand.New(rand.NewSource(41))
		var vectors [][]RVal
		for k := 0; k < BatchWidth+17; k++ {
			mask := 0
			if k%11 == 3 {
				mask = 1 << (k % len(f.Params))
			}
			vectors = append(vectors, diffArgs(f, rng, mask))
		}
		out := make([]Result, len(vectors))
		ev.RunBatch(batchEnvs(f, vectors, 0), out)
		ref := batchEnvs(f, vectors, 0)
		for i := range vectors {
			want := Exec(f, ref[i])
			if diff := sameResult(want, out[i]); diff != "" {
				t.Fatalf("%s vector %d: %s", tc.name, i, diff)
			}
		}
	}
}

// fuzzOps is the opcode palette of the straight-line generator.
var fuzzBinOps = []string{"add", "sub", "mul", "udiv", "sdiv", "urem", "srem",
	"shl", "lshr", "ashr", "and", "or", "xor"}
var fuzzPreds = []string{"eq", "ne", "ugt", "uge", "ult", "ule", "sgt", "sge", "slt", "sle"}
var fuzzFlags = map[string][]string{
	"add": {"", "nsw", "nuw", "nsw nuw"}, "sub": {"", "nsw", "nuw"},
	"mul": {"", "nsw", "nuw"}, "shl": {"", "nsw", "nuw"},
	"udiv": {"", "exact"}, "sdiv": {"", "exact"},
	"lshr": {"", "exact"}, "ashr": {"", "exact"}, "or": {"", "disjoint"},
}

// genStraightLine emits a random straight-line scalar function: a chain of
// integer binaries (with random poison flags), icmps, selects, conversions,
// freezes and min/max/ctpop intrinsics over parameters, earlier values and
// literal constants.
func genStraightLine(rng *rand.Rand) string {
	widths := []int{8, 16, 32, 64}
	nParams := 1 + rng.Intn(3)
	type val struct {
		name string
		w    int // 1 for i1
	}
	var vals []val
	var sb strings.Builder
	sb.WriteString("define i8 @fuzz(")
	for i := 0; i < nParams; i++ {
		w := widths[rng.Intn(len(widths))]
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "i%d %%p%d", w, i)
		vals = append(vals, val{fmt.Sprintf("%%p%d", i), w})
	}
	sb.WriteString(") {\n")
	pick := func(w int) string {
		var cands []val
		for _, v := range vals {
			if v.w == w {
				cands = append(cands, v)
			}
		}
		// Mix in literal constants (small, corner and random) half the time.
		if len(cands) == 0 || rng.Intn(2) == 0 {
			c := []uint64{0, 1, 2, 3, ir.MaskW(w), ir.MaskW(w) >> 1, rng.Uint64() & ir.MaskW(w)}[rng.Intn(7)]
			return fmt.Sprintf("%d", int64(ir.SignExt(c, w)))
		}
		return cands[rng.Intn(len(cands))].name
	}
	n := 3 + rng.Intn(9)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%%v%d", i)
		w := widths[rng.Intn(len(widths))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // integer binary
			op := fuzzBinOps[rng.Intn(len(fuzzBinOps))]
			fl := ""
			if fs := fuzzFlags[op]; fs != nil {
				fl = fs[rng.Intn(len(fs))]
				if fl != "" {
					fl += " "
				}
			}
			fmt.Fprintf(&sb, "  %s = %s %si%d %s, %s\n", name, op, fl, w, pick(w), pick(w))
			vals = append(vals, val{name, w})
		case 4: // icmp
			fmt.Fprintf(&sb, "  %s = icmp %s i%d %s, %s\n",
				name, fuzzPreds[rng.Intn(len(fuzzPreds))], w, pick(w), pick(w))
			vals = append(vals, val{name, 1})
		case 5: // select over an i1 if one exists
			cond := ""
			for _, v := range vals {
				if v.w == 1 {
					cond = v.name
				}
			}
			if cond == "" {
				fmt.Fprintf(&sb, "  %s = xor i%d %s, %s\n", name, w, pick(w), pick(w))
			} else {
				fmt.Fprintf(&sb, "  %s = select i1 %s, i%d %s, i%d %s\n",
					name, cond, w, pick(w), w, pick(w))
			}
			vals = append(vals, val{name, w})
		case 6: // conversion
			from := widths[rng.Intn(len(widths))]
			switch {
			case from < w:
				op := []string{"zext", "sext", "zext nneg"}[rng.Intn(3)]
				fmt.Fprintf(&sb, "  %s = %s i%d %s to i%d\n", name, op, from, pick(from), w)
			case from > w:
				fl := []string{"", "nsw ", "nuw "}[rng.Intn(3)]
				fmt.Fprintf(&sb, "  %s = trunc %si%d %s to i%d\n", name, fl, from, pick(from), w)
			default:
				fmt.Fprintf(&sb, "  %s = add i%d %s, %s\n", name, w, pick(w), pick(w))
			}
			vals = append(vals, val{name, w})
		case 7: // freeze
			fmt.Fprintf(&sb, "  %s = freeze i%d %s\n", name, w, pick(w))
			vals = append(vals, val{name, w})
		default: // intrinsic
			base := []string{"umin", "umax", "smin", "smax"}[rng.Intn(4)]
			if rng.Intn(5) == 0 {
				fmt.Fprintf(&sb, "  %s = call i%d @llvm.ctpop.i%d(i%d %s)\n", name, w, w, w, pick(w))
			} else {
				fmt.Fprintf(&sb, "  %s = call i%d @llvm.%s.i%d(i%d %s, i%d %s)\n",
					name, w, base, w, w, pick(w), w, pick(w))
			}
			vals = append(vals, val{name, w})
		}
	}
	// Return an i8 derived from the last value.
	last := vals[len(vals)-1]
	switch {
	case last.w == 8:
		fmt.Fprintf(&sb, "  ret i8 %s\n", last.name)
	case last.w < 8:
		fmt.Fprintf(&sb, "  %%rz = zext i%d %s to i8\n  ret i8 %%rz\n", last.w, last.name)
	default:
		fmt.Fprintf(&sb, "  %%rt = trunc i%d %s to i8\n  ret i8 %%rt\n", last.w, last.name)
	}
	sb.WriteString("}")
	return sb.String()
}

// fuzzVector builds one input vector biased toward interesting values
// (zero divisors, shift overflows, sign boundaries) with occasional poison
// lanes.
func fuzzVector(f *ir.Func, rng *rand.Rand) []RVal {
	args := make([]RVal, len(f.Params))
	for i, p := range f.Params {
		w := ir.ScalarBits(p.Ty)
		if rng.Intn(12) == 0 {
			args[i] = PoisonRV(p.Ty)
			continue
		}
		var v uint64
		switch rng.Intn(5) {
		case 0:
			v = uint64(rng.Intn(4)) // small: zero divisors, in-range shifts
		case 1:
			v = ir.MaskW(w) >> 1 // max signed
		case 2:
			v = (ir.MaskW(w) >> 1) + 1 // min signed
		default:
			v = rng.Uint64() & ir.MaskW(w)
		}
		args[i] = Scalar(p.Ty, v)
	}
	return args
}

// TestRunBatchFuzzStraightLine is the randomized three-way differential of
// the tentpole: generated straight-line functions execute through the
// reference tree-walker, the scalar evaluator and the lane-batched
// executor, and every vector's values, poison lanes, UB reason and step
// count must agree bit for bit. The seed is fixed so failures reproduce.
func TestRunBatchFuzzStraightLine(t *testing.T) {
	rng := rand.New(rand.NewSource(20260726))
	nFuncs := 150
	if testing.Short() {
		nFuncs = 30
	}
	for fi := 0; fi < nFuncs; fi++ {
		src := genStraightLine(rng)
		f, err := parser.ParseFunc(src)
		if err != nil {
			t.Fatalf("func %d: generated IR does not parse: %v\n%s", fi, err, src)
		}
		p := Compile(f)
		if !p.Batchable() {
			t.Fatalf("func %d: generated function should be batchable\n%s", fi, src)
		}
		ev := NewEvaluator(p)
		evBatch := NewEvaluator(p)
		var vectors [][]RVal
		for k := 0; k < BatchWidth+9; k++ {
			vectors = append(vectors, fuzzVector(f, rng))
		}
		envs := batchEnvs(f, vectors, 0)
		out := make([]Result, len(envs))
		evBatch.RunBatch(envs, out)
		for i, env := range envs {
			want := Exec(f, env)
			if diff := sameResult(want, out[i]); diff != "" {
				t.Fatalf("func %d vector %d: batch vs Exec: %s\n%s", fi, i, diff, src)
			}
			got := ev.Run(env)
			if diff := sameResult(want, got); diff != "" {
				t.Fatalf("func %d vector %d: Run vs Exec: %s\n%s", fi, i, diff, src)
			}
		}
	}
}

// TestRunBatchFilledMatchesRunBatch pins the zero-copy input path: writing
// the argument columns directly and calling RunBatchFilled must equal
// RunBatch over the same vectors.
func TestRunBatchFilledMatchesRunBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for fi := 0; fi < 25; fi++ {
		f := parser.MustParseFunc(genStraightLine(rng))
		p := Compile(f)
		evA, evB := NewEvaluator(p), NewEvaluator(p)
		n := 1 + rng.Intn(BatchWidth)
		var vectors [][]RVal
		for k := 0; k < n; k++ {
			vectors = append(vectors, fuzzVector(f, rng))
		}
		envs := batchEnvs(f, vectors, 0)
		outA := make([]Result, n)
		evA.RunBatch(envs, outA)
		for i, prm := range f.Params {
			col := evB.ArgColumn(i)
			L := ir.Lanes(prm.Ty)
			for b := 0; b < n; b++ {
				copy(col[b*L:(b+1)*L], vectors[b][i].Lanes)
			}
		}
		outB := make([]Result, n)
		evB.RunBatchFilled(n, outB)
		for i := range outA {
			if diff := sameResult(outA[i], outB[i]); diff != "" {
				t.Fatalf("func %d vector %d: filled vs batch: %s", fi, i, diff)
			}
		}
	}
}

// TestRunBatchBudgetAndArgc covers the per-lane bookkeeping edges: mixed
// step budgets within one batch and argument-count mismatches on individual
// lanes, both matching per-vector Run exactly.
func TestRunBatchBudgetAndArgc(t *testing.T) {
	f := parser.MustParseFunc(`define i8 @f(i8 %x) {
  %a = add i8 %x, 1
  %b = add i8 %a, 2
  %c = add i8 %b, 3
  ret i8 %c
}`)
	ev := NewEvaluator(Compile(f))
	envs := []Env{
		{Args: []RVal{Scalar(ir.I8, 5)}},
		{Args: []RVal{Scalar(ir.I8, 5)}, MaxSteps: 2},
		{Args: []RVal{Scalar(ir.I8, 5)}, MaxSteps: 4},
		{Args: []RVal{}},
		{Args: []RVal{Scalar(ir.I8, 7), Scalar(ir.I8, 7)}},
	}
	out := make([]Result, len(envs))
	ev.RunBatch(envs, out)
	refEv := NewEvaluator(Compile(f))
	for i, env := range envs {
		want := refEv.Run(env)
		want.Ret = want.Ret.Clone()
		if diff := sameResult(want, out[i]); diff != "" {
			t.Fatalf("env %d: %s", i, diff)
		}
	}
}

// TestBatchableClassification pins which programs take the fast path.
func TestBatchableClassification(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`define i8 @f(i8 %x) { %r = add i8 %x, 1 ret i8 %r }`, true},
		{`define i16 @f(ptr %p) { %v = load i16, ptr %p ret i16 %v }`, false},
		{`define i8 @f(i8 %x) {
entry:
  br label %next
next:
  ret i8 %x
}`, false},
	}
	for i, tc := range cases {
		p := Compile(parser.MustParseFunc(tc.src))
		if p.Batchable() != tc.want {
			t.Fatalf("case %d: Batchable = %v, want %v", i, p.Batchable(), tc.want)
		}
	}
}
