package interp

import (
	"math"
	"math/bits"

	"repro/internal/ir"
)

// evalCall evaluates the intrinsic subset, writing result lanes into dst.
// All supported intrinsics are pure. Shared by Exec and the compiled
// Evaluator like the other kernels.
func evalCall(in *ir.Instr, dst []Word, args []RVal) (bool, string) {
	base := ir.IntrinsicBase(in.Callee)
	w := ir.ScalarBits(ir.Elem(in.Ty))
	mask := ir.MaskW(w)

	bin := func(f func(x, y uint64) (uint64, bool)) (bool, string) {
		for i := range dst {
			x, y := args[0].Lanes[i], args[1].Lanes[i]
			if x.Poison || y.Poison {
				dst[i] = Word{Poison: true}
				continue
			}
			v, poison := f(x.V&mask, y.V&mask)
			dst[i] = Word{V: v & mask, Poison: poison}
		}
		return false, ""
	}
	un := func(f func(x uint64) (uint64, bool)) (bool, string) {
		for i := range dst {
			x := args[0].Lanes[i]
			if x.Poison {
				dst[i] = Word{Poison: true}
				continue
			}
			v, poison := f(x.V & mask)
			dst[i] = Word{V: v & mask, Poison: poison}
		}
		return false, ""
	}
	// flagArg reads the trailing i1 immediate of abs/ctlz/cttz.
	flagArg := func(idx int) bool {
		if len(args) <= idx {
			return false
		}
		return args[idx].Lanes[0].V&1 == 1
	}

	switch base {
	case "umin":
		return bin(func(x, y uint64) (uint64, bool) {
			if x < y {
				return x, false
			}
			return y, false
		})
	case "umax":
		return bin(func(x, y uint64) (uint64, bool) {
			if x > y {
				return x, false
			}
			return y, false
		})
	case "smin":
		return bin(func(x, y uint64) (uint64, bool) {
			if ir.SignExt(x, w) < ir.SignExt(y, w) {
				return x, false
			}
			return y, false
		})
	case "smax":
		return bin(func(x, y uint64) (uint64, bool) {
			if ir.SignExt(x, w) > ir.SignExt(y, w) {
				return x, false
			}
			return y, false
		})
	case "abs":
		poisonOnMin := flagArg(1)
		return un(func(x uint64) (uint64, bool) {
			s := ir.SignExt(x, w)
			if s == minSigned(w) {
				return x, poisonOnMin
			}
			if s < 0 {
				return uint64(-s), false
			}
			return x, false
		})
	case "ctpop":
		return un(func(x uint64) (uint64, bool) { return uint64(bits.OnesCount64(x)), false })
	case "ctlz":
		zeroPoison := flagArg(1)
		return un(func(x uint64) (uint64, bool) {
			if x == 0 {
				return uint64(w), zeroPoison
			}
			return uint64(bits.LeadingZeros64(x) - (64 - w)), false
		})
	case "cttz":
		zeroPoison := flagArg(1)
		return un(func(x uint64) (uint64, bool) {
			if x == 0 {
				return uint64(w), zeroPoison
			}
			return uint64(bits.TrailingZeros64(x)), false
		})
	case "bswap":
		return un(func(x uint64) (uint64, bool) {
			return bits.ReverseBytes64(x) >> uint(64-w), false
		})
	case "bitreverse":
		return un(func(x uint64) (uint64, bool) {
			return bits.Reverse64(x) >> uint(64-w), false
		})
	case "uadd.sat":
		return bin(func(x, y uint64) (uint64, bool) {
			s := (x + y) & mask
			if s < x {
				return mask, false
			}
			return s, false
		})
	case "usub.sat":
		return bin(func(x, y uint64) (uint64, bool) {
			if y > x {
				return 0, false
			}
			return x - y, false
		})
	case "sadd.sat":
		return bin(func(x, y uint64) (uint64, bool) {
			s := ir.SignExt(x, w) + ir.SignExt(y, w)
			return clampSigned(s, w), false
		})
	case "ssub.sat":
		return bin(func(x, y uint64) (uint64, bool) {
			s := ir.SignExt(x, w) - ir.SignExt(y, w)
			return clampSigned(s, w), false
		})
	case "fshl", "fshr":
		for i := range dst {
			a, b, s := args[0].Lanes[i], args[1].Lanes[i], args[2].Lanes[i]
			if a.Poison || b.Poison || s.Poison {
				dst[i] = Word{Poison: true}
				continue
			}
			sh := s.V % uint64(w)
			concat := func(hi, lo uint64) uint64 {
				// Conceptual 2w-bit value hi:lo.
				if sh == 0 {
					if base == "fshl" {
						return hi & mask
					}
					return lo & mask
				}
				if base == "fshl" {
					return ((hi << sh) | (lo >> uint(uint64(w)-sh))) & mask
				}
				return ((lo >> sh) | (hi << uint(uint64(w)-sh))) & mask
			}
			dst[i] = Word{V: concat(a.V&mask, b.V&mask)}
		}
		return false, ""
	case "fabs":
		for i := range dst {
			x := args[0].Lanes[i]
			if x.Poison {
				dst[i] = Word{Poison: true}
				continue
			}
			dst[i] = Word{V: storeFloat(w, math.Abs(loadFloat(w, x.V)))}
		}
		return false, ""
	case "minnum", "maxnum":
		for i := range dst {
			x, y := args[0].Lanes[i], args[1].Lanes[i]
			if x.Poison || y.Poison {
				dst[i] = Word{Poison: true}
				continue
			}
			fx, fy := loadFloat(w, x.V), loadFloat(w, y.V)
			var r float64
			switch {
			case math.IsNaN(fx):
				r = fy
			case math.IsNaN(fy):
				r = fx
			case base == "minnum":
				r = math.Min(fx, fy)
			default:
				r = math.Max(fx, fy)
			}
			dst[i] = Word{V: storeFloat(w, r)}
		}
		return false, ""
	}
	return true, "unsupported intrinsic @" + in.Callee
}

func clampSigned(s int64, w int) uint64 {
	lo, hi := minSigned(w), -minSigned(w)-1
	if s < lo {
		s = lo
	}
	if s > hi {
		s = hi
	}
	return uint64(s) & ir.MaskW(w)
}

// SupportedIntrinsic reports whether the interpreter can evaluate calls to
// the given callee.
func SupportedIntrinsic(callee string) bool {
	switch ir.IntrinsicBase(callee) {
	case "umin", "umax", "smin", "smax", "abs", "ctpop", "ctlz", "cttz",
		"bswap", "bitreverse", "uadd.sat", "usub.sat", "sadd.sat", "ssub.sat",
		"fshl", "fshr", "fabs", "minnum", "maxnum":
		return true
	}
	return false
}
