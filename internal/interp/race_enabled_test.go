//go:build race

package interp

// raceEnabled reports that the race detector is active: its instrumentation
// allocates, so steady-state allocation assertions carry no signal and are
// skipped.
func init() { raceEnabled = true }
