package interp

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/ir"
)

// Result is the outcome of executing a function on concrete inputs.
type Result struct {
	UB        bool   // the execution triggered undefined behaviour
	UBReason  string // human-readable reason, used in counterexamples
	Completed bool   // false if the step budget was exhausted
	Ret       RVal   // return value (zero RVal for void / UB)
	DynInstrs int    // dynamically executed instruction count (perf proxy)
}

// Env carries the inputs of an execution.
type Env struct {
	Args     []RVal
	Mem      *Memory // may be nil for memory-free functions
	MaxSteps int     // 0 means the default budget
}

const defaultMaxSteps = 1 << 20

// Exec runs fn on the given environment.
func Exec(fn *ir.Func, env Env) Result {
	maxSteps := env.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	mem := env.Mem
	if mem == nil {
		mem = NewMemory()
	}
	st := &state{vals: make(map[ir.Value]RVal), mem: mem}
	if len(env.Args) != len(fn.Params) {
		return Result{UB: true, Completed: true,
			UBReason: fmt.Sprintf("argument count mismatch: have %d, want %d", len(env.Args), len(fn.Params))}
	}
	for i, p := range fn.Params {
		st.vals[p] = env.Args[i]
	}
	block := fn.Entry()
	prev := ""
	steps := 0
	for {
		var next string
		brTaken := false
		for _, in := range block.Instrs {
			steps++
			if steps > maxSteps {
				return Result{Completed: false, DynInstrs: steps}
			}
			switch in.Op {
			case ir.OpRet:
				res := Result{Completed: true, DynInstrs: steps}
				if len(in.Args) == 1 {
					v, ub, why := st.operand(in.Args[0])
					if ub {
						return Result{UB: true, UBReason: why, Completed: true, DynInstrs: steps}
					}
					res.Ret = v
				}
				return res
			case ir.OpBr:
				if len(in.Args) == 0 {
					next = in.Labels[0]
				} else {
					c, ub, why := st.operand(in.Args[0])
					if ub {
						return Result{UB: true, UBReason: why, Completed: true, DynInstrs: steps}
					}
					if c.Lanes[0].Poison {
						return Result{UB: true, UBReason: "branch on poison", Completed: true, DynInstrs: steps}
					}
					if c.Lanes[0].V&1 == 1 {
						next = in.Labels[0]
					} else {
						next = in.Labels[1]
					}
				}
				brTaken = true
			case ir.OpUnreachable:
				return Result{UB: true, UBReason: "reached unreachable", Completed: true, DynInstrs: steps}
			case ir.OpPhi:
				idx := -1
				for k, l := range in.Labels {
					if l == prev {
						idx = k
						break
					}
				}
				if idx < 0 {
					return Result{UB: true, UBReason: "phi has no incoming edge from " + prev,
						Completed: true, DynInstrs: steps}
				}
				v, ub, why := st.operand(in.Args[idx])
				if ub {
					return Result{UB: true, UBReason: why, Completed: true, DynInstrs: steps}
				}
				// Phi values bind after the block's phis evaluate; with our
				// sequential model this is safe because phis come first.
				st.vals[in] = v
			default:
				v, ub, why := st.eval(in)
				if ub {
					return Result{UB: true, UBReason: why, Completed: true, DynInstrs: steps}
				}
				if in.HasResult() {
					st.vals[in] = v
				}
			}
			if brTaken {
				break
			}
		}
		if !brTaken {
			return Result{UB: true, UBReason: "block fell through without terminator",
				Completed: true, DynInstrs: steps}
		}
		prev = block.Name
		nb := fn.BlockByName(next)
		if nb == nil {
			return Result{UB: true, UBReason: "branch to unknown block " + next,
				Completed: true, DynInstrs: steps}
		}
		block = nb
	}
}

type state struct {
	vals map[ir.Value]RVal
	mem  *Memory
}

// operand materializes the runtime value of an operand.
func (st *state) operand(v ir.Value) (RVal, bool, string) {
	if rv, ok := st.vals[v]; ok {
		return rv, false, ""
	}
	switch c := v.(type) {
	case *ir.ConstInt:
		return Scalar(c.Ty, c.V), false, ""
	case *ir.ConstFloat:
		return Scalar(c.Ty, storeFloat(c.Ty.W, c.F)), false, ""
	case *ir.Null:
		return Scalar(ir.Ptr, 0), false, ""
	case *ir.Zero:
		n := ir.Lanes(c.Ty)
		return RVal{Ty: c.Ty, Lanes: make([]Word, n)}, false, ""
	case *ir.Undef:
		// Undef is approximated as zero: a legal instance of undef. This
		// under-approximates the set of src behaviours and is documented in
		// DESIGN.md (bounded validation).
		n := ir.Lanes(c.Ty)
		return RVal{Ty: c.Ty, Lanes: make([]Word, n)}, false, ""
	case *ir.PoisonVal:
		return PoisonRV(c.Ty), false, ""
	case *ir.Splat:
		ev, ub, why := st.operand(c.Elem)
		if ub {
			return RVal{}, true, why
		}
		lanes := make([]Word, c.Ty.N)
		for i := range lanes {
			lanes[i] = ev.Lanes[0]
		}
		return RVal{Ty: c.Ty, Lanes: lanes}, false, ""
	case *ir.ConstVec:
		lanes := make([]Word, len(c.Elems))
		for i, e := range c.Elems {
			ev, ub, why := st.operand(e)
			if ub {
				return RVal{}, true, why
			}
			lanes[i] = ev.Lanes[0]
		}
		return RVal{Ty: c.Ty, Lanes: lanes}, false, ""
	}
	return RVal{}, true, "use of unbound value " + v.Ident()
}

// eval executes one non-control-flow instruction.
func (st *state) eval(in *ir.Instr) (RVal, bool, string) {
	args := make([]RVal, len(in.Args))
	for i, a := range in.Args {
		v, ub, why := st.operand(a)
		if ub {
			return RVal{}, true, why
		}
		args[i] = v
	}
	switch {
	case in.Op.IsIntBinary():
		return st.intBinary(in, args[0], args[1])
	case in.Op == ir.OpFAdd, in.Op == ir.OpFSub, in.Op == ir.OpFMul, in.Op == ir.OpFDiv:
		return st.fpBinary(in, args[0], args[1])
	case in.Op == ir.OpFNeg:
		return mapLanes1(in.Ty, args[0], func(x Word) Word {
			if x.Poison {
				return x
			}
			w := ir.ScalarBits(ir.Elem(in.Ty))
			return Word{V: storeFloat(w, -loadFloat(w, x.V))}
		}), false, ""
	case in.Op == ir.OpICmp:
		return st.icmp(in, args[0], args[1]), false, ""
	case in.Op == ir.OpFCmp:
		return st.fcmp(in, args[0], args[1]), false, ""
	case in.Op == ir.OpSelect:
		return st.sel(in, args), false, ""
	case in.Op == ir.OpFreeze:
		out := RVal{Ty: in.Ty, Lanes: make([]Word, len(args[0].Lanes))}
		for i, l := range args[0].Lanes {
			if l.Poison {
				out.Lanes[i] = Word{V: 0}
			} else {
				out.Lanes[i] = l
			}
		}
		return out, false, ""
	case in.Op.IsConversion():
		return st.convert(in, args[0])
	case in.Op == ir.OpGEP:
		return st.gep(in, args)
	case in.Op == ir.OpLoad:
		return st.load(in, args[0])
	case in.Op == ir.OpStore:
		return st.store(in, args[0], args[1])
	case in.Op == ir.OpCall:
		return st.call(in, args)
	case in.Op == ir.OpExtractElt:
		return st.extractElt(in, args)
	case in.Op == ir.OpInsertElt:
		return st.insertElt(in, args)
	case in.Op == ir.OpShuffle:
		return st.shuffle(in, args)
	}
	return RVal{}, true, "unsupported opcode " + in.Op.Name()
}

func mapLanes1(ty ir.Type, a RVal, f func(Word) Word) RVal {
	out := RVal{Ty: ty, Lanes: make([]Word, len(a.Lanes))}
	for i := range a.Lanes {
		out.Lanes[i] = f(a.Lanes[i])
	}
	return out
}

func (st *state) intBinary(in *ir.Instr, a, b RVal) (RVal, bool, string) {
	w := ir.ScalarBits(ir.Elem(in.Ty))
	mask := ir.MaskW(w)
	out := RVal{Ty: in.Ty, Lanes: make([]Word, len(a.Lanes))}
	for i := range a.Lanes {
		x, y := a.Lanes[i], b.Lanes[i]
		// Division by a non-poison zero is UB even with poison dividends,
		// so check UB cases before poison short-circuiting.
		switch in.Op {
		case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
			if y.Poison {
				return RVal{}, true, "division by poison"
			}
			if y.V&mask == 0 {
				return RVal{}, true, "division by zero"
			}
			if (in.Op == ir.OpSDiv || in.Op == ir.OpSRem) && !x.Poison {
				if ir.SignExt(x.V, w) == minSigned(w) && ir.SignExt(y.V, w) == -1 {
					return RVal{}, true, "signed division overflow"
				}
			}
		}
		if x.Poison || y.Poison {
			out.Lanes[i] = Word{Poison: true}
			continue
		}
		xv, yv := x.V&mask, y.V&mask
		var r uint64
		poison := false
		switch in.Op {
		case ir.OpAdd:
			r = (xv + yv) & mask
			if in.Flags.Has(ir.NUW) && r < xv {
				poison = true
			}
			if in.Flags.Has(ir.NSW) && addNSWOverflow(xv, yv, r, w) {
				poison = true
			}
		case ir.OpSub:
			r = (xv - yv) & mask
			if in.Flags.Has(ir.NUW) && yv > xv {
				poison = true
			}
			if in.Flags.Has(ir.NSW) && subNSWOverflow(xv, yv, r, w) {
				poison = true
			}
		case ir.OpMul:
			hi, lo := bits.Mul64(xv, yv)
			r = lo & mask
			if in.Flags.Has(ir.NUW) {
				if hi != 0 || lo&^mask != 0 {
					poison = true
				}
			}
			if in.Flags.Has(ir.NSW) && mulNSWOverflow(xv, yv, w) {
				poison = true
			}
		case ir.OpUDiv:
			r = xv / yv
			if in.Flags.Has(ir.Exact) && xv%yv != 0 {
				poison = true
			}
		case ir.OpSDiv:
			sr := ir.SignExt(xv, w) / ir.SignExt(yv, w)
			r = uint64(sr) & mask
			if in.Flags.Has(ir.Exact) && ir.SignExt(xv, w)%ir.SignExt(yv, w) != 0 {
				poison = true
			}
		case ir.OpURem:
			r = xv % yv
		case ir.OpSRem:
			r = uint64(ir.SignExt(xv, w)%ir.SignExt(yv, w)) & mask
		case ir.OpShl:
			if yv >= uint64(w) {
				poison = true
				break
			}
			r = (xv << yv) & mask
			if in.Flags.Has(ir.NUW) && (r>>yv) != xv {
				poison = true
			}
			if in.Flags.Has(ir.NSW) {
				back := uint64(ir.SignExt(r, w)>>yv) & mask
				if back != xv {
					poison = true
				}
			}
		case ir.OpLShr:
			if yv >= uint64(w) {
				poison = true
				break
			}
			r = xv >> yv
			if in.Flags.Has(ir.Exact) && (r<<yv)&mask != xv {
				poison = true
			}
		case ir.OpAShr:
			if yv >= uint64(w) {
				poison = true
				break
			}
			r = uint64(ir.SignExt(xv, w)>>yv) & mask
			// Exact ashr: poison if any shifted-out bit is non-zero.
			if in.Flags.Has(ir.Exact) && xv&((uint64(1)<<yv)-1) != 0 {
				poison = true
			}
		case ir.OpAnd:
			r = xv & yv
		case ir.OpOr:
			r = xv | yv
			if in.Flags.Has(ir.Disjoint) && xv&yv != 0 {
				poison = true
			}
		case ir.OpXor:
			r = xv ^ yv
		}
		out.Lanes[i] = Word{V: r & mask, Poison: poison}
	}
	return out, false, ""
}

func minSigned(w int) int64 {
	return -(int64(1) << uint(w-1))
}

func addNSWOverflow(x, y, r uint64, w int) bool {
	sx, sy, sr := ir.SignExt(x, w), ir.SignExt(y, w), ir.SignExt(r, w)
	return (sx >= 0) == (sy >= 0) && (sr >= 0) != (sx >= 0)
}

func subNSWOverflow(x, y, r uint64, w int) bool {
	sx, sy, sr := ir.SignExt(x, w), ir.SignExt(y, w), ir.SignExt(r, w)
	return (sx >= 0) != (sy >= 0) && (sr >= 0) != (sx >= 0)
}

func mulNSWOverflow(x, y uint64, w int) bool {
	sx, sy := ir.SignExt(x, w), ir.SignExt(y, w)
	if sx == 0 || sy == 0 {
		return false
	}
	p := sx * sy
	if sx != 0 && p/sx != sy {
		return true // 64-bit overflow
	}
	return p < minSigned(w) || p > -minSigned(w)-1
}

func (st *state) fpBinary(in *ir.Instr, a, b RVal) (RVal, bool, string) {
	w := ir.ScalarBits(ir.Elem(in.Ty))
	out := RVal{Ty: in.Ty, Lanes: make([]Word, len(a.Lanes))}
	for i := range a.Lanes {
		x, y := a.Lanes[i], b.Lanes[i]
		if x.Poison || y.Poison {
			out.Lanes[i] = Word{Poison: true}
			continue
		}
		fx, fy := loadFloat(w, x.V), loadFloat(w, y.V)
		var r float64
		switch in.Op {
		case ir.OpFAdd:
			r = fx + fy
		case ir.OpFSub:
			r = fx - fy
		case ir.OpFMul:
			r = fx * fy
		case ir.OpFDiv:
			r = fx / fy
		}
		out.Lanes[i] = Word{V: storeFloat(w, r)}
	}
	return out, false, ""
}

func (st *state) icmp(in *ir.Instr, a, b RVal) RVal {
	w := ir.ScalarBits(ir.Elem(in.Args[0].Type()))
	out := RVal{Ty: in.Ty, Lanes: make([]Word, len(a.Lanes))}
	for i := range a.Lanes {
		x, y := a.Lanes[i], b.Lanes[i]
		if x.Poison || y.Poison {
			out.Lanes[i] = Word{Poison: true}
			continue
		}
		var r bool
		xv, yv := x.V&ir.MaskW(w), y.V&ir.MaskW(w)
		sx, sy := ir.SignExt(xv, w), ir.SignExt(yv, w)
		switch in.IPredV {
		case ir.EQ:
			r = xv == yv
		case ir.NE:
			r = xv != yv
		case ir.UGT:
			r = xv > yv
		case ir.UGE:
			r = xv >= yv
		case ir.ULT:
			r = xv < yv
		case ir.ULE:
			r = xv <= yv
		case ir.SGT:
			r = sx > sy
		case ir.SGE:
			r = sx >= sy
		case ir.SLT:
			r = sx < sy
		case ir.SLE:
			r = sx <= sy
		}
		if r {
			out.Lanes[i] = Word{V: 1}
		} else {
			out.Lanes[i] = Word{V: 0}
		}
	}
	return out
}

func (st *state) fcmp(in *ir.Instr, a, b RVal) RVal {
	w := ir.ScalarBits(ir.Elem(in.Args[0].Type()))
	out := RVal{Ty: in.Ty, Lanes: make([]Word, len(a.Lanes))}
	for i := range a.Lanes {
		x, y := a.Lanes[i], b.Lanes[i]
		if x.Poison || y.Poison {
			out.Lanes[i] = Word{Poison: true}
			continue
		}
		fx, fy := loadFloat(w, x.V), loadFloat(w, y.V)
		nan := math.IsNaN(fx) || math.IsNaN(fy)
		var r bool
		switch in.FPredV {
		case ir.FPredFalse:
			r = false
		case ir.FPredTrue:
			r = true
		case ir.ORD:
			r = !nan
		case ir.UNO:
			r = nan
		case ir.OEQ:
			r = !nan && fx == fy
		case ir.OGT:
			r = !nan && fx > fy
		case ir.OGE:
			r = !nan && fx >= fy
		case ir.OLT:
			r = !nan && fx < fy
		case ir.OLE:
			r = !nan && fx <= fy
		case ir.ONE:
			r = !nan && fx != fy
		case ir.UEQ:
			r = nan || fx == fy
		case ir.FUGT:
			r = nan || fx > fy
		case ir.FUGE:
			r = nan || fx >= fy
		case ir.FULT:
			r = nan || fx < fy
		case ir.FULE:
			r = nan || fx <= fy
		case ir.UNE:
			r = nan || fx != fy
		}
		if r {
			out.Lanes[i] = Word{V: 1}
		} else {
			out.Lanes[i] = Word{V: 0}
		}
	}
	return out
}

func (st *state) sel(in *ir.Instr, args []RVal) RVal {
	cond, tv, fv := args[0], args[1], args[2]
	out := RVal{Ty: in.Ty, Lanes: make([]Word, len(tv.Lanes))}
	vectorCond := len(cond.Lanes) == len(tv.Lanes) && len(tv.Lanes) > 1
	for i := range tv.Lanes {
		c := cond.Lanes[0]
		if vectorCond {
			c = cond.Lanes[i]
		}
		if c.Poison {
			out.Lanes[i] = Word{Poison: true}
			continue
		}
		if c.V&1 == 1 {
			out.Lanes[i] = tv.Lanes[i]
		} else {
			out.Lanes[i] = fv.Lanes[i]
		}
	}
	return out
}

func (st *state) convert(in *ir.Instr, a RVal) (RVal, bool, string) {
	fromTy := in.Args[0].Type()
	toElem := ir.Elem(in.Ty)
	fw := ir.ScalarBits(ir.Elem(fromTy))
	tw := ir.ScalarBits(toElem)
	switch in.Op {
	case ir.OpBitcast:
		return bitcast(in.Ty, fromTy, a)
	case ir.OpPtrToInt, ir.OpIntToPtr:
		return mapLanes1(in.Ty, a, func(x Word) Word {
			if x.Poison {
				return x
			}
			return Word{V: x.V & ir.MaskW(tw)}
		}), false, ""
	}
	out := RVal{Ty: in.Ty, Lanes: make([]Word, len(a.Lanes))}
	for i, x := range a.Lanes {
		if x.Poison {
			out.Lanes[i] = Word{Poison: true}
			continue
		}
		var r uint64
		poison := false
		switch in.Op {
		case ir.OpZExt:
			r = x.V & ir.MaskW(fw)
			if in.Flags.Has(ir.NNeg) && ir.SignExt(x.V, fw) < 0 {
				poison = true
			}
		case ir.OpSExt:
			r = uint64(ir.SignExt(x.V, fw)) & ir.MaskW(tw)
		case ir.OpTrunc:
			r = x.V & ir.MaskW(tw)
			if in.Flags.Has(ir.NUW) && x.V&ir.MaskW(fw) != r {
				poison = true
			}
			if in.Flags.Has(ir.NSW) && ir.SignExt(x.V, fw) != ir.SignExt(r, tw) {
				poison = true
			}
		case ir.OpFPExt:
			r = storeFloat(tw, loadFloat(fw, x.V))
		case ir.OpFPTrunc:
			r = storeFloat(tw, loadFloat(fw, x.V))
		case ir.OpSIToFP:
			r = storeFloat(tw, float64(ir.SignExt(x.V, fw)))
		case ir.OpUIToFP:
			r = storeFloat(tw, float64(x.V&ir.MaskW(fw)))
		case ir.OpFPToSI:
			f := loadFloat(fw, x.V)
			if math.IsNaN(f) || f < float64(minSigned(tw)) || f > float64(-minSigned(tw)-1) {
				poison = true
				break
			}
			r = uint64(int64(f)) & ir.MaskW(tw)
		case ir.OpFPToUI:
			f := loadFloat(fw, x.V)
			if math.IsNaN(f) || f < 0 || f >= math.Ldexp(1, tw) {
				poison = true
				break
			}
			r = uint64(f) & ir.MaskW(tw)
		}
		out.Lanes[i] = Word{V: r, Poison: poison}
	}
	return out, false, ""
}

// bitcast reinterprets a value's bytes as another type of the same total
// width (little-endian lane packing). Any poison source lane poisons the
// whole result, matching LLVM's conservative semantics.
func bitcast(to ir.Type, from ir.Type, a RVal) (RVal, bool, string) {
	if a.AnyPoison() {
		return PoisonRV(to), false, ""
	}
	fw := ir.ScalarBits(ir.Elem(from))
	tw := ir.ScalarBits(ir.Elem(to))
	totalFrom := fw * ir.Lanes(from)
	totalTo := tw * ir.Lanes(to)
	if totalFrom != totalTo {
		return RVal{}, true, fmt.Sprintf("bitcast width mismatch: %d vs %d bits", totalFrom, totalTo)
	}
	// Serialize to a bit buffer lane by lane, little endian within lanes.
	buf := make([]bool, totalFrom)
	for i, l := range a.Lanes {
		for b := 0; b < fw; b++ {
			buf[i*fw+b] = (l.V>>uint(b))&1 == 1
		}
	}
	out := RVal{Ty: to, Lanes: make([]Word, ir.Lanes(to))}
	for i := range out.Lanes {
		var v uint64
		for b := 0; b < tw; b++ {
			if buf[i*tw+b] {
				v |= uint64(1) << uint(b)
			}
		}
		out.Lanes[i] = Word{V: v}
	}
	return out, false, ""
}

func (st *state) gep(in *ir.Instr, args []RVal) (RVal, bool, string) {
	base := args[0].Lanes[0]
	if base.Poison {
		return PoisonRV(ir.Ptr), false, ""
	}
	addr := base.V
	elemBytes := uint64(ir.StoreBytes(in.ElemTy))
	for k := 1; k < len(args); k++ {
		idx := args[k].Lanes[0]
		if idx.Poison {
			return PoisonRV(ir.Ptr), false, ""
		}
		iw := ir.ScalarBits(in.Args[k].Type())
		off := uint64(ir.SignExt(idx.V, iw)) * elemBytes
		addr += off
	}
	if in.Flags.Has(ir.Inbounds) || in.Flags.Has(ir.NUW) {
		// Approximation: inbounds requires the result to stay within the
		// object containing the base address.
		r := st.mem.FindRegion(base.V)
		if r == nil || addr < r.Addr || addr > r.Addr+uint64(len(r.Data)) {
			return PoisonRV(ir.Ptr), false, ""
		}
	}
	return Scalar(ir.Ptr, addr), false, ""
}

func (st *state) load(in *ir.Instr, ptr RVal) (RVal, bool, string) {
	p := ptr.Lanes[0]
	if p.Poison {
		return RVal{}, true, "load from poison pointer"
	}
	n := ir.StoreBytes(in.Ty)
	data, pois, ok := st.mem.LoadBytes(p.V, n)
	if !ok {
		return RVal{}, true, fmt.Sprintf("out-of-bounds load of %d bytes at 0x%X", n, p.V)
	}
	if in.Align > 1 && p.V%uint64(in.Align) != 0 {
		return RVal{}, true, fmt.Sprintf("misaligned load (align %d) at 0x%X", in.Align, p.V)
	}
	return decodeBytes(in.Ty, data, pois), false, ""
}

func (st *state) store(in *ir.Instr, v, ptr RVal) (RVal, bool, string) {
	p := ptr.Lanes[0]
	if p.Poison {
		return RVal{}, true, "store to poison pointer"
	}
	data, pois := encodeBytes(in.Args[0].Type(), v)
	if in.Align > 1 && p.V%uint64(in.Align) != 0 {
		return RVal{}, true, fmt.Sprintf("misaligned store (align %d) at 0x%X", in.Align, p.V)
	}
	if !st.mem.StoreBytes(p.V, data, pois) {
		return RVal{}, true, fmt.Sprintf("out-of-bounds store of %d bytes at 0x%X", len(data), p.V)
	}
	return RVal{}, false, ""
}

// decodeBytes assembles a value of type ty from little-endian bytes.
func decodeBytes(ty ir.Type, data []byte, pois []bool) RVal {
	lanes := ir.Lanes(ty)
	elemBytes := ir.StoreBytes(ir.Elem(ty))
	out := RVal{Ty: ty, Lanes: make([]Word, lanes)}
	for i := 0; i < lanes; i++ {
		var v uint64
		poison := false
		for b := 0; b < elemBytes; b++ {
			idx := i*elemBytes + b
			v |= uint64(data[idx]) << uint(8*b)
			if pois[idx] {
				poison = true
			}
		}
		out.Lanes[i] = Word{V: v & ir.MaskW(ir.ScalarBits(ir.Elem(ty))), Poison: poison}
	}
	return out
}

// encodeBytes serializes a value into little-endian bytes plus poison marks.
func encodeBytes(ty ir.Type, v RVal) ([]byte, []bool) {
	elemBytes := ir.StoreBytes(ir.Elem(ty))
	n := elemBytes * len(v.Lanes)
	data := make([]byte, n)
	pois := make([]bool, n)
	for i, l := range v.Lanes {
		for b := 0; b < elemBytes; b++ {
			idx := i*elemBytes + b
			data[idx] = byte(l.V >> uint(8*b))
			pois[idx] = l.Poison
		}
	}
	return data, pois
}

func (st *state) extractElt(in *ir.Instr, args []RVal) (RVal, bool, string) {
	vec, idx := args[0], args[1].Lanes[0]
	if idx.Poison || idx.V >= uint64(len(vec.Lanes)) {
		return PoisonRV(in.Ty), false, ""
	}
	return RVal{Ty: in.Ty, Lanes: []Word{vec.Lanes[idx.V]}}, false, ""
}

func (st *state) insertElt(in *ir.Instr, args []RVal) (RVal, bool, string) {
	vec, elem, idx := args[0], args[1], args[2].Lanes[0]
	if idx.Poison || idx.V >= uint64(len(vec.Lanes)) {
		return PoisonRV(in.Ty), false, ""
	}
	out := RVal{Ty: in.Ty, Lanes: append([]Word(nil), vec.Lanes...)}
	out.Lanes[idx.V] = elem.Lanes[0]
	return out, false, ""
}

func (st *state) shuffle(in *ir.Instr, args []RVal) (RVal, bool, string) {
	a, b := args[0], args[1]
	mask, ok := in.Args[2].(*ir.ConstVec)
	if !ok {
		if _, isZero := in.Args[2].(*ir.Zero); isZero {
			n := ir.Lanes(in.Ty)
			out := RVal{Ty: in.Ty, Lanes: make([]Word, n)}
			for i := range out.Lanes {
				out.Lanes[i] = a.Lanes[0]
			}
			return out, false, ""
		}
		return RVal{}, true, "shufflevector requires a constant mask"
	}
	out := RVal{Ty: in.Ty, Lanes: make([]Word, len(mask.Elems))}
	for i, me := range mask.Elems {
		switch c := me.(type) {
		case *ir.ConstInt:
			k := int(ir.SignExt(c.V, c.Ty.W))
			switch {
			case k < 0 || k >= 2*len(a.Lanes):
				out.Lanes[i] = Word{Poison: true}
			case k < len(a.Lanes):
				out.Lanes[i] = a.Lanes[k]
			default:
				out.Lanes[i] = b.Lanes[k-len(a.Lanes)]
			}
		default:
			out.Lanes[i] = Word{Poison: true}
		}
	}
	return out, false, ""
}
