package interp

import (
	"fmt"

	"repro/internal/ir"
)

// Result is the outcome of executing a function on concrete inputs.
type Result struct {
	UB        bool   // the execution triggered undefined behaviour
	UBReason  string // human-readable reason, used in counterexamples
	Completed bool   // false if the step budget was exhausted
	Ret       RVal   // return value (zero RVal for void / UB)
	DynInstrs int    // dynamically executed instruction count (perf proxy)
}

// Env carries the inputs of an execution.
type Env struct {
	Args     []RVal
	Mem      *Memory // may be nil for memory-free functions
	MaxSteps int     // 0 means the default budget
}

const defaultMaxSteps = 1 << 20

// Exec runs fn on the given environment with the reference tree-walking
// interpreter. It is the semantic baseline: Compile/Evaluator run the same
// per-opcode kernels over a preallocated register file and are checked
// against Exec by differential tests. Use Exec for one-shot executions;
// batch executors (the alive checker, the superoptimizer baselines) compile
// once and stream inputs through an Evaluator instead.
func Exec(fn *ir.Func, env Env) Result {
	maxSteps := env.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	mem := env.Mem
	if mem == nil {
		mem = NewMemory()
	}
	st := &state{vals: make(map[ir.Value]RVal), mem: mem}
	if len(env.Args) != len(fn.Params) {
		return Result{UB: true, Completed: true,
			UBReason: fmt.Sprintf("argument count mismatch: have %d, want %d", len(env.Args), len(fn.Params))}
	}
	for i, p := range fn.Params {
		st.vals[p] = env.Args[i]
	}
	block := fn.Entry()
	prev := ""
	steps := 0
	for {
		var next string
		brTaken := false
		for _, in := range block.Instrs {
			steps++
			if steps > maxSteps {
				return Result{Completed: false, DynInstrs: steps}
			}
			switch in.Op {
			case ir.OpRet:
				res := Result{Completed: true, DynInstrs: steps}
				if len(in.Args) == 1 {
					v, ub, why := st.operand(in.Args[0])
					if ub {
						return Result{UB: true, UBReason: why, Completed: true, DynInstrs: steps}
					}
					res.Ret = v
				}
				return res
			case ir.OpBr:
				if len(in.Args) == 0 {
					next = in.Labels[0]
				} else {
					c, ub, why := st.operand(in.Args[0])
					if ub {
						return Result{UB: true, UBReason: why, Completed: true, DynInstrs: steps}
					}
					if c.Lanes[0].Poison {
						return Result{UB: true, UBReason: "branch on poison", Completed: true, DynInstrs: steps}
					}
					if c.Lanes[0].V&1 == 1 {
						next = in.Labels[0]
					} else {
						next = in.Labels[1]
					}
				}
				brTaken = true
			case ir.OpUnreachable:
				return Result{UB: true, UBReason: "reached unreachable", Completed: true, DynInstrs: steps}
			case ir.OpPhi:
				idx := -1
				for k, l := range in.Labels {
					if l == prev {
						idx = k
						break
					}
				}
				if idx < 0 {
					return Result{UB: true, UBReason: "phi has no incoming edge from " + prev,
						Completed: true, DynInstrs: steps}
				}
				v, ub, why := st.operand(in.Args[idx])
				if ub {
					return Result{UB: true, UBReason: why, Completed: true, DynInstrs: steps}
				}
				// Phi values bind after the block's phis evaluate; with our
				// sequential model this is safe because phis come first.
				st.vals[in] = v
			default:
				v, ub, why := st.eval(in)
				if ub {
					return Result{UB: true, UBReason: why, Completed: true, DynInstrs: steps}
				}
				if in.HasResult() {
					st.vals[in] = v
				}
			}
			if brTaken {
				break
			}
		}
		if !brTaken {
			return Result{UB: true, UBReason: "block fell through without terminator",
				Completed: true, DynInstrs: steps}
		}
		prev = block.Name
		nb := fn.BlockByName(next)
		if nb == nil {
			return Result{UB: true, UBReason: "branch to unknown block " + next,
				Completed: true, DynInstrs: steps}
		}
		block = nb
	}
}

type state struct {
	vals map[ir.Value]RVal
	mem  *Memory
	sc   scratch
}

// operand materializes the runtime value of an operand.
func (st *state) operand(v ir.Value) (RVal, bool, string) {
	if rv, ok := st.vals[v]; ok {
		return rv, false, ""
	}
	switch c := v.(type) {
	case *ir.ConstInt:
		return Scalar(c.Ty, c.V), false, ""
	case *ir.ConstFloat:
		return Scalar(c.Ty, storeFloat(c.Ty.W, c.F)), false, ""
	case *ir.Null:
		return Scalar(ir.Ptr, 0), false, ""
	case *ir.Zero:
		n := ir.Lanes(c.Ty)
		return RVal{Ty: c.Ty, Lanes: make([]Word, n)}, false, ""
	case *ir.Undef:
		// Undef is approximated as zero: a legal instance of undef. This
		// under-approximates the set of src behaviours and is documented in
		// DESIGN.md (bounded validation).
		n := ir.Lanes(c.Ty)
		return RVal{Ty: c.Ty, Lanes: make([]Word, n)}, false, ""
	case *ir.PoisonVal:
		return PoisonRV(c.Ty), false, ""
	case *ir.Splat:
		ev, ub, why := st.operand(c.Elem)
		if ub {
			return RVal{}, true, why
		}
		lanes := make([]Word, c.Ty.N)
		for i := range lanes {
			lanes[i] = ev.Lanes[0]
		}
		return RVal{Ty: c.Ty, Lanes: lanes}, false, ""
	case *ir.ConstVec:
		lanes := make([]Word, len(c.Elems))
		for i, e := range c.Elems {
			ev, ub, why := st.operand(e)
			if ub {
				return RVal{}, true, why
			}
			lanes[i] = ev.Lanes[0]
		}
		return RVal{Ty: c.Ty, Lanes: lanes}, false, ""
	}
	return RVal{}, true, "use of unbound value " + v.Ident()
}

// eval executes one non-control-flow instruction: operands are materialized
// in order, then the shared per-opcode kernel runs on freshly allocated
// result lanes.
func (st *state) eval(in *ir.Instr) (RVal, bool, string) {
	args := make([]RVal, len(in.Args))
	for i, a := range in.Args {
		v, ub, why := st.operand(a)
		if ub {
			return RVal{}, true, why
		}
		args[i] = v
	}
	out := RVal{Ty: in.Ty, Lanes: make([]Word, resultLanes(in, args))}
	if ub, why := evalOp(in, out.Lanes, args, st.mem, &st.sc); ub {
		return RVal{}, true, why
	}
	return out, false, ""
}
