package interp

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/parser"
)

func cacheFunc(i int) string {
	return fmt.Sprintf(`define i8 @f%d(i8 %%x) { %%r = add i8 %%x, %d ret i8 %%r }`, i, i%250)
}

// TestCacheBoundedEviction pins the satellite contract: the cache never
// exceeds its capacity, eviction is counted, and evicted programs simply
// recompile (a later lookup is a miss, not an error).
func TestCacheBoundedEviction(t *testing.T) {
	c := NewCacheSize(4)
	for i := 0; i < 10; i++ {
		c.Program(parser.MustParseFunc(cacheFunc(i)))
	}
	st := c.Stats()
	if st.Len > 4 {
		t.Fatalf("cache holds %d programs, cap 4", st.Len)
	}
	if st.Cap != 4 {
		t.Fatalf("cap = %d, want 4", st.Cap)
	}
	if st.Evictions < 6 {
		t.Fatalf("evictions = %d, want >= 6", st.Evictions)
	}
	if st.Misses != 10 || st.Hits != 0 {
		t.Fatalf("hits/misses = %d/%d, want 0/10", st.Hits, st.Misses)
	}
	// Hits mark entries referenced; the clock should prefer evicting
	// unreferenced entries.
	f9 := parser.MustParseFunc(cacheFunc(9))
	p1 := c.Program(f9)
	if p2 := c.Program(f9); p1 != p2 {
		t.Fatal("repeated lookup should hit the same program")
	}
	if got := c.Stats().Hits; got < 1 {
		t.Fatalf("hits = %d, want >= 1", got)
	}
}

// TestCacheNilSemantics keeps the nil-cache contract of the unbounded
// version: a nil *Cache compiles per call and reports zero stats.
func TestCacheNilSemantics(t *testing.T) {
	var c *Cache
	f := parser.MustParseFunc(cacheFunc(1))
	if c.Program(f) == nil {
		t.Fatal("nil cache must still compile")
	}
	if c.Len() != 0 || c.Stats() != (CacheStats{}) {
		t.Fatal("nil cache must report zeros")
	}
}

// TestCacheConcurrent hammers one bounded cache from many goroutines (run
// under -race in CI).
func TestCacheConcurrent(t *testing.T) {
	c := NewCacheSize(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f := parser.MustParseFunc(cacheFunc((g + i) % 20))
				if c.Program(f) == nil {
					t.Error("nil program")
					return
				}
				_ = c.Stats()
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("cache exceeded cap: %d", c.Len())
	}
}
