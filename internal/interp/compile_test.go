package interp

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/parser"
)

// diffCases are functions chosen to exercise every execution construct the
// two engines implement: straight-line scalar and vector code, intrinsics,
// conversions, memory, control flow with phis and loops, and the runtime
// error paths (unbound values, unknown blocks, budget exhaustion).
var diffCases = []struct {
	name string
	src  string
}{
	{"clamp", `define i8 @f(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`},
	{"flags-poison", `define i8 @f(i8 %x, i8 %y) {
  %a = add nsw i8 %x, %y
  %b = shl nuw i8 %a, 2
  %c = or disjoint i8 %b, %y
  %d = sub nuw i8 %c, %x
  ret i8 %d
}`},
	{"division", `define i8 @f(i8 %x, i8 %y) {
  %d = sdiv i8 %x, %y
  %r = srem i8 %d, 3
  ret i8 %r
}`},
	{"intrinsics", `define i8 @f(i8 %x, i8 %y) {
  %a = call i8 @llvm.umax.i8(i8 %x, i8 %y)
  %b = call i8 @llvm.ctpop.i8(i8 %a)
  %c = call i8 @llvm.fshl.i8(i8 %b, i8 %x, i8 3)
  %d = call i8 @llvm.uadd.sat.i8(i8 %c, i8 %y)
  ret i8 %d
}`},
	{"float", `define i1 @f(double %x, double %y) {
  %a = fadd double %x, %y
  %m = call double @llvm.maxnum.f64(double %a, double %y)
  %c = fcmp ogt double %m, 1.000000e+00
  ret i1 %c
}`},
	{"conversions", `define i32 @f(i16 %x) {
  %a = sext i16 %x to i32
  %b = trunc nsw i32 %a to i8
  %c = zext nneg i8 %b to i32
  %d = xor i32 %a, %c
  ret i32 %d
}`},
	{"vector", `define <4 x i8> @f(<4 x i8> %v, <4 x i8> %w) {
  %a = add <4 x i8> %v, %w
  %s = shufflevector <4 x i8> %a, <4 x i8> %w, <4 x i32> <i32 0, i32 5, i32 2, i32 7>
  %e = extractelement <4 x i8> %s, i32 2
  %i = insertelement <4 x i8> %s, i8 %e, i32 0
  ret <4 x i8> %i
}`},
	{"bitcast", `define i32 @f(<4 x i8> %v) {
  %b = bitcast <4 x i8> %v to i32
  ret i32 %b
}`},
	{"memory", `define i16 @f(ptr %p, i8 %x) {
  store i8 %x, ptr %p
  %q = getelementptr i8, ptr %p, i64 1
  store i8 37, ptr %q
  %r = load i16, ptr %p, align 1
  ret i16 %r
}`},
	{"gep-inbounds", `define i8 @f(ptr %p, i64 %i) {
  %q = getelementptr inbounds i8, ptr %p, i64 %i
  %v = load i8, ptr %q
  ret i8 %v
}`},
	{"branch-phi", `define i8 @f(i8 %x) {
entry:
  %c = icmp sgt i8 %x, 10
  br i1 %c, label %big, label %small
big:
  %b = add i8 %x, 1
  br label %join
small:
  %s = sub i8 %x, 1
  br label %join
join:
  %r = phi i8 [ %b, %big ], [ %s, %small ]
  ret i8 %r
}`},
	{"loop", `define i8 @f(i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %inext, %body ]
  %acc = phi i8 [ 0, %entry ], [ %anext, %body ]
  %c = icmp ult i8 %i, %n
  br i1 %c, label %body, label %done
body:
  %anext = add i8 %acc, %i
  %inext = add i8 %i, 1
  br label %head
done:
  ret i8 %acc
}`},
	{"branch-on-poison", `define i8 @f(i8 %x) {
entry:
  %p = add nuw i8 %x, 255
  %c = icmp eq i8 %p, 0
  br i1 %c, label %a, label %b
a:
  ret i8 1
b:
  ret i8 2
}`},
	{"unreachable", `define i8 @f(i8 %x) {
entry:
  %c = icmp eq i8 %x, 0
  br i1 %c, label %dead, label %live
dead:
  unreachable
live:
  ret i8 %x
}`},
	{"unbound-cross-block", `define i8 @f(i8 %x) {
entry:
  %c = icmp eq i8 %x, 0
  br i1 %c, label %use, label %def
def:
  %v = add i8 %x, 1
  br label %use
use:
  %r = add i8 %v, 2
  ret i8 %r
}`},
	{"void-store-only", `define void @f(ptr %p, i8 %x) {
  store i8 %x, ptr %p, align 1
  ret void
}`},
}

// runBoth executes f on equivalent fresh environments through Exec and a
// compiled Evaluator and requires bit-identical results.
func runBoth(t *testing.T, f *ir.Func, ev *Evaluator, args []RVal, maxSteps int, label string) {
	t.Helper()
	mkEnv := func() Env {
		env := Env{MaxSteps: maxSteps}
		env.Args = make([]RVal, len(args))
		copy(env.Args, args)
		var mem *Memory
		for i, p := range f.Params {
			if ir.IsPtr(p.Ty) {
				if mem == nil {
					mem = NewMemory()
				}
				base := uint64(0x10000 + i*0x1000)
				r := mem.AddRegion(p.Nm, base, 32)
				for b := range r.Data {
					r.Data[b] = byte(b * 3)
				}
				env.Args[i] = Scalar(ir.Ptr, base)
			}
		}
		env.Mem = mem
		return env
	}
	e1, e2 := mkEnv(), mkEnv()
	r1 := Exec(f, e1)
	r2 := ev.Run(e2)
	if r1.UB != r2.UB || r1.UBReason != r2.UBReason ||
		r1.Completed != r2.Completed || r1.DynInstrs != r2.DynInstrs {
		t.Fatalf("%s: result mismatch\nexec:      %+v\nevaluator: %+v", label, r1, r2)
	}
	if !r1.UB && r1.Completed {
		if !r1.Ret.Equal(r2.Ret) {
			t.Fatalf("%s: return mismatch: exec %s vs evaluator %s", label, r1.Ret.Format(), r2.Ret.Format())
		}
	}
	if e1.Mem != nil {
		for ri := range e1.Mem.Regions {
			a, b := e1.Mem.Regions[ri], e2.Mem.Regions[ri]
			for bi := range a.Data {
				if a.Data[bi] != b.Data[bi] || a.Poison[bi] != b.Poison[bi] {
					t.Fatalf("%s: memory mismatch in %s at byte %d: exec %02x/%v vs evaluator %02x/%v",
						label, a.Name, bi, a.Data[bi], a.Poison[bi], b.Data[bi], b.Poison[bi])
				}
			}
		}
	}
}

func diffArgs(f *ir.Func, rng *rand.Rand, poisonMask int) []RVal {
	args := make([]RVal, len(f.Params))
	for i, p := range f.Params {
		if poisonMask&(1<<i) != 0 {
			args[i] = PoisonRV(p.Ty)
			continue
		}
		lanes := make([]Word, ir.Lanes(p.Ty))
		w := ir.ScalarBits(ir.Elem(p.Ty))
		for l := range lanes {
			lanes[l] = Word{V: rng.Uint64() & ir.MaskW(w)}
		}
		args[i] = RVal{Ty: p.Ty, Lanes: lanes}
	}
	return args
}

// TestCompiledEvaluatorMatchesExec is the engine-level differential: every
// construct case runs on corner vectors, random vectors and poison trials
// through both engines, asserting identical values, poison, UB reasons,
// step counts and final memory.
func TestCompiledEvaluatorMatchesExec(t *testing.T) {
	for _, tc := range diffCases {
		f, err := parser.ParseFunc(tc.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		ev := NewEvaluator(Compile(f))
		rng := rand.New(rand.NewSource(99))
		// Corner values: all-zero, all-ones, small counters.
		for _, fillv := range []uint64{0, ^uint64(0), 1, 7, 10, 128} {
			args := make([]RVal, len(f.Params))
			for i, p := range f.Params {
				lanes := make([]Word, ir.Lanes(p.Ty))
				for l := range lanes {
					lanes[l] = Word{V: fillv & ir.MaskW(ir.ScalarBits(ir.Elem(p.Ty)))}
				}
				args[i] = RVal{Ty: p.Ty, Lanes: lanes}
			}
			runBoth(t, f, ev, args, 0, fmt.Sprintf("%s/corner=%d", tc.name, fillv))
		}
		// Random vectors.
		for k := 0; k < 64; k++ {
			runBoth(t, f, ev, diffArgs(f, rng, 0), 0, fmt.Sprintf("%s/rand=%d", tc.name, k))
		}
		// Poison trials, one per argument.
		for i := range f.Params {
			runBoth(t, f, ev, diffArgs(f, rng, 1<<i), 0, fmt.Sprintf("%s/poison=%d", tc.name, i))
		}
	}
}

// TestCompiledEvaluatorBudget checks that step-budget exhaustion is
// bit-identical (same Completed flag and DynInstrs at every budget).
func TestCompiledEvaluatorBudget(t *testing.T) {
	f := parser.MustParseFunc(`define i8 @f(i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %inext, %head ]
  %inext = add i8 %i, 1
  %c = icmp ult i8 %inext, %n
  br i1 %c, label %head, label %done
done:
  ret i8 %inext
}`)
	ev := NewEvaluator(Compile(f))
	for budget := 1; budget < 40; budget++ {
		args := []RVal{Scalar(ir.I8, 9)}
		runBoth(t, f, ev, args, budget, fmt.Sprintf("budget=%d", budget))
	}
}

// TestCompiledEvaluatorArgMismatch checks the argument-count error path.
func TestCompiledEvaluatorArgMismatch(t *testing.T) {
	f := parser.MustParseFunc(`define i8 @f(i8 %x) { ret i8 %x }`)
	ev := NewEvaluator(Compile(f))
	r1 := Exec(f, Env{})
	r2 := ev.Run(Env{})
	if r1.UBReason != r2.UBReason || !r1.UB || !r2.UB {
		t.Fatalf("mismatch: %+v vs %+v", r1, r2)
	}
}

// TestCompiledEvaluatorFallback covers the dynamic-vector-constant fallback:
// a constant vector referencing a parameter is resolved dynamically by the
// reference interpreter, so such programs must delegate wholesale.
func TestCompiledEvaluatorFallback(t *testing.T) {
	x := &ir.Param{Nm: "x", Ty: ir.I8}
	vec := ir.VecT(2, ir.I8)
	cv := &ir.ConstVec{Ty: vec, Elems: []ir.Value{x, ir.CInt(ir.I8, 3)}}
	v := &ir.Param{Nm: "v", Ty: vec}
	add := ir.Bin(ir.OpAdd, "r", ir.NoFlags, v, cv)
	f := ir.NewFunc("f", vec, []*ir.Param{x, v}, []*ir.Instr{add, ir.RetI(add)})
	p := Compile(f)
	if !p.fallback {
		t.Fatal("expected fallback for dynamic vector constant")
	}
	ev := NewEvaluator(p)
	args := []RVal{Scalar(ir.I8, 5), VecOf(vec, 1, 2)}
	r1 := Exec(f, Env{Args: args})
	r2 := ev.Run(Env{Args: args})
	if !r1.Ret.Equal(r2.Ret) || r1.UB != r2.UB {
		t.Fatalf("fallback mismatch: %+v vs %+v", r1, r2)
	}
}

// TestCompiledStraightLineIsRecognized pins the fast path on the dominant
// window shape.
func TestCompiledStraightLineIsRecognized(t *testing.T) {
	f := parser.MustParseFunc(diffCases[0].src)
	if p := Compile(f); !p.straight {
		t.Fatal("single-block straight-line function should take the fast path")
	}
	g := parser.MustParseFunc(diffCases[10].src) // branch-phi
	if p := Compile(g); p.straight {
		t.Fatal("multi-block function must not take the fast path")
	}
}

// TestCacheSharesPrograms checks the hash-keyed program cache.
func TestCacheSharesPrograms(t *testing.T) {
	c := NewCache()
	f := parser.MustParseFunc(`define i8 @f(i8 %x) { %r = add i8 %x, 1 ret i8 %r }`)
	g := parser.MustParseFunc(`define i8 @g(i8 %x) { %r = add i8 %x, 1 ret i8 %r }`)
	p1, p2 := c.Program(f), c.Program(f)
	if p1 != p2 {
		t.Fatal("same function must share one program")
	}
	_ = c.Program(g)
	var nilCache *Cache
	if nilCache.Program(f) == nil {
		t.Fatal("nil cache must still compile")
	}
}

// TestEvaluatorRetLifetime documents that Ret aliases scratch until the next
// Run and that Clone detaches it.
func TestEvaluatorRetLifetime(t *testing.T) {
	f := parser.MustParseFunc(`define i8 @f(i8 %x) { %r = add i8 %x, 1 ret i8 %r }`)
	ev := NewEvaluator(Compile(f))
	r1 := ev.Run(Env{Args: []RVal{Scalar(ir.I8, 1)}})
	kept := r1.Ret.Clone()
	_ = ev.Run(Env{Args: []RVal{Scalar(ir.I8, 100)}})
	if kept.Lanes[0].V != 2 {
		t.Fatalf("cloned return mutated: %v", kept.Lanes[0])
	}
}
