package interp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/parser"
)

func run(t *testing.T, src string, env Env) Result {
	t.Helper()
	f, err := parser.ParseFunc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Exec(f, env)
}

func TestClampPairAgreesOnConcreteInputs(t *testing.T) {
	srcIR := `define i8 @src(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`
	tgtIR := `define i8 @tgt(i32 %0) {
  %2 = tail call i32 @llvm.smax.i32(i32 %0, i32 0)
  %3 = tail call i32 @llvm.umin.i32(i32 %2, i32 255)
  %4 = trunc nuw i32 %3 to i8
  ret i8 %4
}`
	sf := parser.MustParseFunc(srcIR)
	tf := parser.MustParseFunc(tgtIR)
	for _, x := range []int64{-5, -1, 0, 1, 127, 128, 255, 256, 1000, -2147483648, 2147483647} {
		env := Env{Args: []RVal{Scalar(ir.I32, uint64(x))}}
		rs := Exec(sf, env)
		rt := Exec(tf, env)
		if rs.UB || rt.UB {
			t.Fatalf("unexpected UB at x=%d: src=%v tgt=%v", x, rs.UBReason, rt.UBReason)
		}
		if !rs.Ret.Equal(rt.Ret) {
			t.Fatalf("mismatch at x=%d: src=%s tgt=%s", x, rs.Ret.Format(), rt.Ret.Format())
		}
		want := x
		if want < 0 {
			want = 0
		}
		if want > 255 {
			want = 255
		}
		if got := int64(rs.Ret.Lanes[0].V); got != want {
			t.Fatalf("clamp(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestNUWAddPoison(t *testing.T) {
	src := `define i8 @f(i8 %x) {
  %r = add nuw i8 %x, 1
  ret i8 %r
}`
	r := run(t, src, Env{Args: []RVal{Scalar(ir.I8, 255)}})
	if r.UB || !r.Ret.Lanes[0].Poison {
		t.Fatalf("add nuw 255+1 should be poison, got %s", r.Ret.Format())
	}
	r = run(t, src, Env{Args: []RVal{Scalar(ir.I8, 254)}})
	if r.Ret.Lanes[0].Poison || r.Ret.Lanes[0].V != 255 {
		t.Fatalf("add nuw 254+1 should be 255, got %s", r.Ret.Format())
	}
}

func TestNSWOverflow(t *testing.T) {
	src := `define i8 @f(i8 %x, i8 %y) {
  %r = add nsw i8 %x, %y
  ret i8 %r
}`
	r := run(t, src, Env{Args: []RVal{Scalar(ir.I8, 127), Scalar(ir.I8, 1)}})
	if !r.Ret.Lanes[0].Poison {
		t.Fatal("127+1 nsw should be poison")
	}
	r = run(t, src, Env{Args: []RVal{Scalar(ir.I8, 0x80), Scalar(ir.I8, 0xFF)}})
	if !r.Ret.Lanes[0].Poison {
		t.Fatal("-128 + -1 nsw should be poison")
	}
	r = run(t, src, Env{Args: []RVal{Scalar(ir.I8, 0x80), Scalar(ir.I8, 1)}})
	if r.Ret.Lanes[0].Poison {
		t.Fatal("-128 + 1 nsw should not be poison")
	}
}

func TestDivisionUB(t *testing.T) {
	src := `define i32 @f(i32 %x, i32 %y) {
  %r = udiv i32 %x, %y
  ret i32 %r
}`
	r := run(t, src, Env{Args: []RVal{Scalar(ir.I32, 10), Scalar(ir.I32, 0)}})
	if !r.UB {
		t.Fatal("udiv by zero must be UB")
	}
	sdiv := `define i8 @f(i8 %x, i8 %y) {
  %r = sdiv i8 %x, %y
  ret i8 %r
}`
	r = run(t, sdiv, Env{Args: []RVal{Scalar(ir.I8, 0x80), Scalar(ir.I8, 0xFF)}})
	if !r.UB {
		t.Fatal("sdiv INT_MIN / -1 must be UB")
	}
}

func TestShiftOutOfRangePoison(t *testing.T) {
	src := `define i8 @f(i8 %x, i8 %s) {
  %r = shl i8 %x, %s
  ret i8 %r
}`
	r := run(t, src, Env{Args: []RVal{Scalar(ir.I8, 1), Scalar(ir.I8, 8)}})
	if !r.Ret.Lanes[0].Poison {
		t.Fatal("shl by >= bitwidth must be poison")
	}
}

func TestSelectPoisonCond(t *testing.T) {
	src := `define i32 @f(i32 %x) {
  %s = shl i32 %x, 40
  %c = trunc i32 %s to i1
  %r = select i1 %c, i32 1, i32 2
  ret i32 %r
}`
	r := run(t, src, Env{Args: []RVal{Scalar(ir.I32, 1)}})
	if !r.Ret.Lanes[0].Poison {
		t.Fatal("select on poison condition must be poison")
	}
}

func TestOrDisjointPoison(t *testing.T) {
	src := `define i8 @f(i8 %x, i8 %y) {
  %r = or disjoint i8 %x, %y
  ret i8 %r
}`
	r := run(t, src, Env{Args: []RVal{Scalar(ir.I8, 3), Scalar(ir.I8, 1)}})
	if !r.Ret.Lanes[0].Poison {
		t.Fatal("or disjoint with shared bits must be poison")
	}
	r = run(t, src, Env{Args: []RVal{Scalar(ir.I8, 0xF0), Scalar(ir.I8, 0x0F)}})
	if r.Ret.Lanes[0].Poison || r.Ret.Lanes[0].V != 0xFF {
		t.Fatalf("disjoint or of f0|0f should be ff, got %s", r.Ret.Format())
	}
}

func TestTruncNUWPoison(t *testing.T) {
	src := `define i8 @f(i32 %x) {
  %r = trunc nuw i32 %x to i8
  ret i8 %r
}`
	r := run(t, src, Env{Args: []RVal{Scalar(ir.I32, 256)}})
	if !r.Ret.Lanes[0].Poison {
		t.Fatal("trunc nuw dropping set bits must be poison")
	}
	r = run(t, src, Env{Args: []RVal{Scalar(ir.I32, 255)}})
	if r.Ret.Lanes[0].Poison || r.Ret.Lanes[0].V != 255 {
		t.Fatalf("trunc nuw 255 should be 255, got %s", r.Ret.Format())
	}
}

func TestFreezeStopsPoison(t *testing.T) {
	src := `define i8 @f(i8 %x) {
  %p = add nuw i8 %x, 1
  %fr = freeze i8 %p
  %r = add i8 %fr, 0
  ret i8 %r
}`
	r := run(t, src, Env{Args: []RVal{Scalar(ir.I8, 255)}})
	if r.Ret.Lanes[0].Poison {
		t.Fatal("freeze must stop poison propagation")
	}
}

func TestLoadMergePairAgree(t *testing.T) {
	srcIR := `define i32 @src(ptr %0) {
  %2 = load i16, ptr %0, align 2
  %3 = getelementptr i8, ptr %0, i64 2
  %4 = load i16, ptr %3, align 1
  %5 = zext i16 %4 to i32
  %6 = shl nuw i32 %5, 16
  %7 = zext i16 %2 to i32
  %8 = or disjoint i32 %6, %7
  ret i32 %8
}`
	tgtIR := `define i32 @tgt(ptr %0) {
  %2 = load i32, ptr %0, align 2
  ret i32 %2
}`
	sf := parser.MustParseFunc(srcIR)
	tf := parser.MustParseFunc(tgtIR)
	mem := NewMemory()
	reg := mem.AddRegion("arg0", 0x1000, 64)
	copy(reg.Data, []byte{0x78, 0x56, 0x34, 0x12})
	env := Env{Args: []RVal{Scalar(ir.Ptr, 0x1000)}, Mem: mem}
	rs := Exec(sf, Env{Args: env.Args, Mem: mem.Clone()})
	rt := Exec(tf, Env{Args: env.Args, Mem: mem.Clone()})
	if rs.UB || rt.UB {
		t.Fatalf("unexpected UB: %v / %v", rs.UBReason, rt.UBReason)
	}
	if rs.Ret.Lanes[0].V != 0x12345678 || !rs.Ret.Equal(rt.Ret) {
		t.Fatalf("got src=%s tgt=%s, want 0x12345678", rs.Ret.Format(), rt.Ret.Format())
	}
}

func TestOutOfBoundsLoadIsUB(t *testing.T) {
	src := `define i32 @f(ptr %p) {
  %g = getelementptr i8, ptr %p, i64 100
  %v = load i32, ptr %g
  ret i32 %v
}`
	mem := NewMemory()
	mem.AddRegion("arg0", 0x1000, 64)
	r := run(t, src, Env{Args: []RVal{Scalar(ir.Ptr, 0x1000)}, Mem: mem})
	if !r.UB {
		t.Fatal("out-of-bounds load must be UB")
	}
}

func TestInboundsGEPOutOfObjectIsPoison(t *testing.T) {
	src := `define ptr @f(ptr %p) {
  %g = getelementptr inbounds i8, ptr %p, i64 100
  ret ptr %g
}`
	mem := NewMemory()
	mem.AddRegion("arg0", 0x1000, 64)
	r := run(t, src, Env{Args: []RVal{Scalar(ir.Ptr, 0x1000)}, Mem: mem})
	if r.UB || !r.Ret.Lanes[0].Poison {
		t.Fatalf("inbounds gep out of object must be poison, got %s", r.Ret.Format())
	}
}

func TestStoreThenLoad(t *testing.T) {
	src := `define i16 @f(ptr %p, i16 %v) {
  store i16 %v, ptr %p, align 2
  %g = getelementptr i8, ptr %p, i64 0
  %r = load i16, ptr %g, align 2
  ret i16 %r
}`
	mem := NewMemory()
	mem.AddRegion("arg0", 0x2000, 64)
	r := run(t, src, Env{Args: []RVal{Scalar(ir.Ptr, 0x2000), Scalar(ir.I16, 0xBEEF)}, Mem: mem})
	if r.UB || r.Ret.Lanes[0].V != 0xBEEF {
		t.Fatalf("store/load roundtrip failed: %s (%s)", r.Ret.Format(), r.UBReason)
	}
}

func TestFcmpOrdSelectPairAgreeOnNaN(t *testing.T) {
	srcIR := `define i1 @src(double %0) {
  %2 = fcmp ord double %0, 0.000000e+00
  %3 = select i1 %2, double %0, double 0.000000e+00
  %4 = fcmp oeq double %3, 1.000000e+00
  ret i1 %4
}`
	tgtIR := `define i1 @tgt(double %0) {
  %2 = fcmp oeq double %0, 1.000000e+00
  ret i1 %2
}`
	sf := parser.MustParseFunc(srcIR)
	tf := parser.MustParseFunc(tgtIR)
	for _, f := range []float64{math.NaN(), 0, 1, -1, math.Inf(1), math.Inf(-1), 0.5} {
		env := Env{Args: []RVal{Scalar(ir.F64, math.Float64bits(f))}}
		rs := Exec(sf, env)
		rt := Exec(tf, env)
		if !rs.Ret.Equal(rt.Ret) {
			t.Fatalf("mismatch at %v: src=%s tgt=%s", f, rs.Ret.Format(), rt.Ret.Format())
		}
	}
}

func TestLoopExecution(t *testing.T) {
	src := `define i64 @sum(i64 %n) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %loop ]
  %acc.next = add i64 %acc, %i
  %i.next = add nuw i64 %i, 1
  %done = icmp eq i64 %i.next, %n
  br i1 %done, label %exit, label %loop
exit:
  ret i64 %acc.next
}`
	r := run(t, src, Env{Args: []RVal{Scalar(ir.I64, 10)}})
	if r.UB || !r.Completed {
		t.Fatalf("loop failed: ub=%v reason=%s", r.UB, r.UBReason)
	}
	if r.Ret.Lanes[0].V != 45 { // 0+1+...+9
		t.Fatalf("sum(10) = %d, want 45", r.Ret.Lanes[0].V)
	}
	if r.DynInstrs < 40 {
		t.Fatalf("dynamic instruction count too low: %d", r.DynInstrs)
	}
}

func TestStepBudget(t *testing.T) {
	src := `define void @inf() {
entry:
  br label %loop
loop:
  br label %loop
}`
	f := parser.MustParseFunc(src)
	r := Exec(f, Env{MaxSteps: 1000})
	if r.Completed {
		t.Fatal("infinite loop should exhaust the step budget")
	}
}

func TestVectorOpsPerLane(t *testing.T) {
	src := `define <4 x i32> @f(<4 x i32> %v) {
  %c = icmp slt <4 x i32> %v, zeroinitializer
  %m = tail call <4 x i32> @llvm.umin.v4i32(<4 x i32> %v, <4 x i32> splat (i32 255))
  %r = select <4 x i1> %c, <4 x i32> zeroinitializer, <4 x i32> %m
  ret <4 x i32> %r
}`
	v := VecOf(ir.VecT(4, ir.I32), uint64(0xFFFFFFFF), 0, 100, 1000)
	r := run(t, src, Env{Args: []RVal{v}})
	want := []uint64{0, 0, 100, 255}
	for i, w := range want {
		if r.Ret.Lanes[i].V != w {
			t.Fatalf("lane %d = %d, want %d", i, r.Ret.Lanes[i].V, w)
		}
	}
}

func TestIntrinsics(t *testing.T) {
	cases := []struct {
		src  string
		args []RVal
		want uint64
	}{
		{`define i8 @f(i8 %x) { %r = call i8 @llvm.ctpop.i8(i8 %x) ret i8 %r }`,
			[]RVal{Scalar(ir.I8, 0xB7)}, 6},
		{`define i8 @f(i8 %x) { %r = call i8 @llvm.ctlz.i8(i8 %x, i1 false) ret i8 %r }`,
			[]RVal{Scalar(ir.I8, 0x10)}, 3},
		{`define i8 @f(i8 %x) { %r = call i8 @llvm.cttz.i8(i8 %x, i1 false) ret i8 %r }`,
			[]RVal{Scalar(ir.I8, 0x10)}, 4},
		{`define i8 @f(i8 %x) { %r = call i8 @llvm.abs.i8(i8 %x, i1 false) ret i8 %r }`,
			[]RVal{Scalar(ir.I8, 0xFB)}, 5},
		{`define i16 @f(i16 %x) { %r = call i16 @llvm.bswap.i16(i16 %x) ret i16 %r }`,
			[]RVal{Scalar(ir.I16, 0x1234)}, 0x3412},
		{`define i8 @f(i8 %x, i8 %y) { %r = call i8 @llvm.uadd.sat.i8(i8 %x, i8 %y) ret i8 %r }`,
			[]RVal{Scalar(ir.I8, 200), Scalar(ir.I8, 100)}, 255},
		{`define i8 @f(i8 %x, i8 %y) { %r = call i8 @llvm.sadd.sat.i8(i8 %x, i8 %y) ret i8 %r }`,
			[]RVal{Scalar(ir.I8, 100), Scalar(ir.I8, 100)}, 127},
		{`define i8 @f(i8 %a, i8 %b, i8 %s) { %r = call i8 @llvm.fshl.i8(i8 %a, i8 %b, i8 %s) ret i8 %r }`,
			[]RVal{Scalar(ir.I8, 0x81), Scalar(ir.I8, 0xFF), Scalar(ir.I8, 4)}, 0x1F},
	}
	for _, tc := range cases {
		r := run(t, tc.src, Env{Args: tc.args})
		if r.UB {
			t.Fatalf("%s: UB %s", tc.src, r.UBReason)
		}
		if r.Ret.Lanes[0].V != tc.want {
			t.Fatalf("%s = %d, want %d", tc.src, r.Ret.Lanes[0].V, tc.want)
		}
	}
}

func TestAbsIntMinPoisonFlag(t *testing.T) {
	src := `define i8 @f(i8 %x) { %r = call i8 @llvm.abs.i8(i8 %x, i1 true) ret i8 %r }`
	r := run(t, src, Env{Args: []RVal{Scalar(ir.I8, 0x80)}})
	if !r.Ret.Lanes[0].Poison {
		t.Fatal("abs(INT_MIN, true) must be poison")
	}
}

func TestBitcastRoundTripProperty(t *testing.T) {
	// bitcast i32 -> <4 x i8> -> i32 must be the identity.
	src := `define i32 @f(i32 %x) {
  %v = bitcast i32 %x to <4 x i8>
  %r = bitcast <4 x i8> %v to i32
  ret i32 %r
}`
	f := parser.MustParseFunc(src)
	prop := func(x uint32) bool {
		r := Exec(f, Env{Args: []RVal{Scalar(ir.I32, uint64(x))}})
		return !r.UB && r.Ret.Lanes[0].V == uint64(x)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFshlMatchesRotateProperty(t *testing.T) {
	// fshl(x, x, s) is rotate-left.
	src := `define i8 @f(i8 %x, i8 %s) { %r = call i8 @llvm.fshl.i8(i8 %x, i8 %x, i8 %s) ret i8 %r }`
	f := parser.MustParseFunc(src)
	prop := func(x uint8, s uint8) bool {
		r := Exec(f, Env{Args: []RVal{Scalar(ir.I8, uint64(x)), Scalar(ir.I8, uint64(s))}})
		sh := uint(s % 8)
		want := uint64(byte(x<<sh | x>>(8-sh)))
		if sh == 0 {
			want = uint64(x)
		}
		return !r.UB && r.Ret.Lanes[0].V == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUminUmaxProperties(t *testing.T) {
	src := `define i32 @f(i32 %x, i32 %y) {
  %a = call i32 @llvm.umin.i32(i32 %x, i32 %y)
  %b = call i32 @llvm.umax.i32(i32 %x, i32 %y)
  %r = add i32 %a, %b
  ret i32 %r
}`
	f := parser.MustParseFunc(src)
	prop := func(x, y uint32) bool {
		r := Exec(f, Env{Args: []RVal{Scalar(ir.I32, uint64(x)), Scalar(ir.I32, uint64(y))}})
		// min + max == x + y (mod 2^32)
		return !r.UB && uint32(r.Ret.Lanes[0].V) == x+y
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPoisonStoreLoadRoundTrip(t *testing.T) {
	src := `define i8 @f(ptr %p, i8 %x) {
  %pv = add nuw i8 %x, 1
  store i8 %pv, ptr %p
  %r = load i8, ptr %p
  ret i8 %r
}`
	mem := NewMemory()
	mem.AddRegion("arg0", 0x1000, 16)
	r := run(t, src, Env{Args: []RVal{Scalar(ir.Ptr, 0x1000), Scalar(ir.I8, 255)}, Mem: mem})
	if !r.Ret.Lanes[0].Poison {
		t.Fatal("loading stored poison must yield poison")
	}
}
