package interp

import (
	"fmt"

	"repro/internal/ir"
)

// Evaluator executes one compiled Program over many input vectors. It owns
// all scratch storage — the register arena, defined-register flags, the
// per-instruction operand views, and the store/bitcast buffers — so a
// steady-state Run performs no allocations on the common paths (rare error
// paths that format addresses still allocate, exactly like Exec).
//
// An Evaluator is not safe for concurrent use; build one per goroutine
// (Programs may be shared freely). The returned Result.Ret aliases the
// evaluator's scratch storage and is valid only until the next Run; use
// RVal.Clone to retain it.
type Evaluator struct {
	p       *Program
	words   []Word   // register arena
	defined []bool   // per-register bound flag (unused on the fast path)
	iargs   [][]RVal // per code index: prebuilt operand views
	idst    [][]Word // per code index: result lane view (nil for void)
	sc      scratch

	// emptyMem substitutes for a nil Env.Mem. Loads and stores against an
	// empty memory are always out of bounds and never mutate it, so one
	// shared instance is safe across runs.
	emptyMem *Memory

	// bs is the lane-batched execution state (batch.go), built lazily on
	// the first RunBatch so scalar-only evaluators never pay for it.
	bs *batchState
}

// NewEvaluator builds an evaluator for p.
func NewEvaluator(p *Program) *Evaluator {
	ev := &Evaluator{
		p:        p,
		words:    make([]Word, p.arenaLen),
		defined:  make([]bool, len(p.regLanes)),
		emptyMem: NewMemory(),
	}
	ev.iargs = make([][]RVal, len(p.code))
	ev.idst = make([][]Word, len(p.code))
	for gi := range p.code {
		ci := &p.code[gi]
		if len(ci.args) > 0 {
			views := make([]RVal, len(ci.args))
			for k, slot := range ci.args {
				if slot >= 0 {
					views[k] = RVal{Ty: ci.in.Args[k].Type(), Lanes: ev.reg(slot)}
				} else {
					views[k] = p.consts[^slot].rv
				}
			}
			ev.iargs[gi] = views
		}
		if ci.dst >= 0 {
			ev.idst[gi] = ev.reg(ci.dst)
		}
	}
	return ev
}

// Program returns the compiled program the evaluator runs.
func (ev *Evaluator) Program() *Program { return ev.p }

// reg returns the arena slice backing register r.
func (ev *Evaluator) reg(r int32) []Word {
	off := ev.p.regOff[r]
	return ev.words[off : off+ev.p.regLanes[r] : off+ev.p.regLanes[r]]
}

// checkArgs guards the operand positions compile marked as needing runtime
// checks, in operand order, reproducing the reference interpreter's operand
// materialization errors.
func (ev *Evaluator) checkArgs(ci *cinstr) (bool, string) {
	for _, k := range ci.checks {
		slot := ci.args[k]
		if slot >= 0 {
			if !ev.defined[slot] {
				return true, "use of unbound value " + ci.in.Args[k].Ident()
			}
		} else if e := &ev.p.consts[^slot]; e.ub {
			return true, e.why
		}
	}
	return false, ""
}

// Run executes the program on one environment. Semantics, including UB
// reasons, step accounting and budget behaviour, are bit-identical to
// Exec(p.Fn(), env).
func (ev *Evaluator) Run(env Env) Result {
	p := ev.p
	if p.fallback {
		return Exec(p.fn, env)
	}
	maxSteps := env.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	mem := env.Mem
	if mem == nil {
		mem = ev.emptyMem
	}
	if len(env.Args) != len(p.fn.Params) {
		return Result{UB: true, Completed: true,
			UBReason: fmt.Sprintf("argument count mismatch: have %d, want %d", len(env.Args), len(p.fn.Params))}
	}
	if !p.straight {
		for i := range ev.defined {
			ev.defined[i] = false
		}
		for _, r := range p.paramReg {
			ev.defined[r] = true
		}
	}
	for i, r := range p.paramReg {
		dst := ev.reg(r)
		n := copy(dst, env.Args[i].Lanes)
		for ; n < len(dst); n++ {
			dst[n] = Word{}
		}
	}

	steps := 0
	bi := int32(0)
	prevIdx := int32(-1)
	for {
		blk := &p.blocks[bi]
		brTaken := false
		var nextIdx int32 = -1
		var nextName string
		for gi := blk.start; gi < blk.end; gi++ {
			ci := &p.code[gi]
			steps++
			if steps > maxSteps {
				return Result{Completed: false, DynInstrs: steps}
			}
			switch ci.in.Op {
			case ir.OpRet:
				res := Result{Completed: true, DynInstrs: steps}
				if len(ci.in.Args) == 1 {
					if ub, why := ev.checkArgs(ci); ub {
						return Result{UB: true, UBReason: why, Completed: true, DynInstrs: steps}
					}
					res.Ret = ev.iargs[gi][0]
				}
				return res
			case ir.OpBr:
				if len(ci.in.Args) == 0 {
					nextIdx, nextName = ci.succ[0], ci.in.Labels[0]
				} else {
					if ub, why := ev.checkArgs(ci); ub {
						return Result{UB: true, UBReason: why, Completed: true, DynInstrs: steps}
					}
					c := ev.iargs[gi][0].Lanes[0]
					if c.Poison {
						return Result{UB: true, UBReason: "branch on poison", Completed: true, DynInstrs: steps}
					}
					if c.V&1 == 1 {
						nextIdx, nextName = ci.succ[0], ci.in.Labels[0]
					} else {
						nextIdx, nextName = ci.succ[1], ci.in.Labels[1]
					}
				}
				brTaken = true
			case ir.OpUnreachable:
				return Result{UB: true, UBReason: "reached unreachable", Completed: true, DynInstrs: steps}
			case ir.OpPhi:
				idx := -1
				for k, pi := range ci.phiPred {
					if pi == prevIdx {
						idx = k
						break
					}
				}
				if idx < 0 {
					prev := ""
					if prevIdx >= 0 {
						prev = p.blocks[prevIdx].name
					}
					return Result{UB: true, UBReason: "phi has no incoming edge from " + prev,
						Completed: true, DynInstrs: steps}
				}
				slot := ci.args[idx]
				if slot >= 0 && !ev.defined[slot] {
					return Result{UB: true, UBReason: "use of unbound value " + ci.in.Args[idx].Ident(),
						Completed: true, DynInstrs: steps}
				}
				if slot < 0 {
					if e := &p.consts[^slot]; e.ub {
						return Result{UB: true, UBReason: e.why, Completed: true, DynInstrs: steps}
					}
				}
				if ci.dst >= 0 {
					dst := ev.idst[gi]
					n := copy(dst, ev.iargs[gi][idx].Lanes)
					for ; n < len(dst); n++ {
						dst[n] = Word{}
					}
					ev.defined[ci.dst] = true
				}
			default:
				if len(ci.checks) > 0 {
					if ub, why := ev.checkArgs(ci); ub {
						return Result{UB: true, UBReason: why, Completed: true, DynInstrs: steps}
					}
				}
				if ub, why := evalOp(ci.in, ev.idst[gi], ev.iargs[gi], mem, &ev.sc); ub {
					return Result{UB: true, UBReason: why, Completed: true, DynInstrs: steps}
				}
				if ci.dst >= 0 && !p.straight {
					ev.defined[ci.dst] = true
				}
			}
			if brTaken {
				break
			}
		}
		if !brTaken {
			return Result{UB: true, UBReason: "block fell through without terminator",
				Completed: true, DynInstrs: steps}
		}
		prevIdx = bi
		if nextIdx < 0 {
			return Result{UB: true, UBReason: "branch to unknown block " + nextName,
				Completed: true, DynInstrs: steps}
		}
		bi = nextIdx
	}
}
