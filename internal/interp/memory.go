package interp

// Region is a contiguous allocated object. Pointer-typed function arguments
// each receive their own region so that distinct arguments never alias,
// matching how the verification harness sets up inputs.
type Region struct {
	Name   string
	Addr   uint64
	Data   []byte
	Poison []bool // per-byte poison (set by stores of poison lanes)
}

// Memory is a set of disjoint regions in a single address space.
type Memory struct {
	Regions []*Region
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{} }

// AddRegion allocates a region of the given size at the given base address.
func (m *Memory) AddRegion(name string, addr uint64, size int) *Region {
	r := &Region{Name: name, Addr: addr, Data: make([]byte, size), Poison: make([]bool, size)}
	m.Regions = append(m.Regions, r)
	return r
}

// FindRegion returns the region containing addr, or nil.
func (m *Memory) FindRegion(addr uint64) *Region {
	for _, r := range m.Regions {
		if addr >= r.Addr && addr < r.Addr+uint64(len(r.Data)) {
			return r
		}
	}
	return nil
}

// Contains reports whether [addr, addr+n) lies entirely within one region.
func (m *Memory) Contains(addr uint64, n int) bool {
	r := m.FindRegion(addr)
	if r == nil {
		return false
	}
	return addr+uint64(n) <= r.Addr+uint64(len(r.Data))
}

// LoadBytes reads n bytes; ok is false if the access is out of bounds (UB).
func (m *Memory) LoadBytes(addr uint64, n int) (data []byte, poison []bool, ok bool) {
	r := m.FindRegion(addr)
	if r == nil || addr+uint64(n) > r.Addr+uint64(len(r.Data)) {
		return nil, nil, false
	}
	off := addr - r.Addr
	return r.Data[off : off+uint64(n)], r.Poison[off : off+uint64(n)], true
}

// StoreBytes writes n bytes; ok is false if the access is out of bounds (UB).
func (m *Memory) StoreBytes(addr uint64, data []byte, poison []bool) bool {
	r := m.FindRegion(addr)
	if r == nil || addr+uint64(len(data)) > r.Addr+uint64(len(r.Data)) {
		return false
	}
	off := addr - r.Addr
	copy(r.Data[off:], data)
	copy(r.Poison[off:], poison)
	return true
}

// BatchMems carves per-lane memories for lane-batched execution out of
// lane-strided slabs: region r of lane b views bytes [b*size, (b+1)*size)
// of one shared allocation, so a whole batch of memories costs two
// allocations per region (data + poison shadow) and resetting a lane
// between fills touches contiguous bytes. Every lane is an independent
// address space — regions live at the same base address in each lane's
// Memory without aliasing.
type BatchMems struct {
	Mems  []*Memory // one per lane, sharing the slab-backed regions
	lanes int
}

// NewBatchMems returns a BatchMems with the given number of lanes (one
// empty Memory each).
func NewBatchMems(lanes int) *BatchMems {
	bm := &BatchMems{Mems: make([]*Memory, lanes), lanes: lanes}
	for b := range bm.Mems {
		bm.Mems[b] = NewMemory()
	}
	return bm
}

// AddRegion adds a region of the given size at the same base address to
// every lane's memory, backed by one lane-strided slab.
func (bm *BatchMems) AddRegion(name string, addr uint64, size int) {
	data := make([]byte, bm.lanes*size)
	poison := make([]bool, bm.lanes*size)
	for b, m := range bm.Mems {
		m.Regions = append(m.Regions, &Region{
			Name: name, Addr: addr,
			Data:   data[b*size : (b+1)*size : (b+1)*size],
			Poison: poison[b*size : (b+1)*size : (b+1)*size],
		})
	}
}

// ResetLane restores lane b of region r to the given initial contents and
// clears its poison shadow, preparing the lane for the next fill. The
// lane's bytes are contiguous in the slab, so a reset is two small copies.
func (bm *BatchMems) ResetLane(r, b int, data []byte) {
	reg := bm.Mems[b].Regions[r]
	copy(reg.Data, data)
	for i := range reg.Poison {
		reg.Poison[i] = false
	}
}

// Clone returns a deep copy (used to run src and tgt on identical initial
// memories and to diff the results).
func (m *Memory) Clone() *Memory {
	n := &Memory{}
	for _, r := range m.Regions {
		nr := &Region{Name: r.Name, Addr: r.Addr,
			Data: append([]byte(nil), r.Data...), Poison: append([]bool(nil), r.Poison...)}
		n.Regions = append(n.Regions, nr)
	}
	return n
}
