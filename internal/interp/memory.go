package interp

// Region is a contiguous allocated object. Pointer-typed function arguments
// each receive their own region so that distinct arguments never alias,
// matching how the verification harness sets up inputs.
type Region struct {
	Name   string
	Addr   uint64
	Data   []byte
	Poison []bool // per-byte poison (set by stores of poison lanes)
}

// Memory is a set of disjoint regions in a single address space.
type Memory struct {
	Regions []*Region
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{} }

// AddRegion allocates a region of the given size at the given base address.
func (m *Memory) AddRegion(name string, addr uint64, size int) *Region {
	r := &Region{Name: name, Addr: addr, Data: make([]byte, size), Poison: make([]bool, size)}
	m.Regions = append(m.Regions, r)
	return r
}

// FindRegion returns the region containing addr, or nil.
func (m *Memory) FindRegion(addr uint64) *Region {
	for _, r := range m.Regions {
		if addr >= r.Addr && addr < r.Addr+uint64(len(r.Data)) {
			return r
		}
	}
	return nil
}

// Contains reports whether [addr, addr+n) lies entirely within one region.
func (m *Memory) Contains(addr uint64, n int) bool {
	r := m.FindRegion(addr)
	if r == nil {
		return false
	}
	return addr+uint64(n) <= r.Addr+uint64(len(r.Data))
}

// LoadBytes reads n bytes; ok is false if the access is out of bounds (UB).
func (m *Memory) LoadBytes(addr uint64, n int) (data []byte, poison []bool, ok bool) {
	r := m.FindRegion(addr)
	if r == nil || addr+uint64(n) > r.Addr+uint64(len(r.Data)) {
		return nil, nil, false
	}
	off := addr - r.Addr
	return r.Data[off : off+uint64(n)], r.Poison[off : off+uint64(n)], true
}

// StoreBytes writes n bytes; ok is false if the access is out of bounds (UB).
func (m *Memory) StoreBytes(addr uint64, data []byte, poison []bool) bool {
	r := m.FindRegion(addr)
	if r == nil || addr+uint64(len(data)) > r.Addr+uint64(len(r.Data)) {
		return false
	}
	off := addr - r.Addr
	copy(r.Data[off:], data)
	copy(r.Poison[off:], poison)
	return true
}

// Clone returns a deep copy (used to run src and tgt on identical initial
// memories and to diff the results).
func (m *Memory) Clone() *Memory {
	n := &Memory{}
	for _, r := range m.Regions {
		nr := &Region{Name: r.Name, Addr: r.Addr,
			Data: append([]byte(nil), r.Data...), Poison: append([]bool(nil), r.Poison...)}
		n.Regions = append(n.Regions, nr)
	}
	return n
}
