package interp

// Lane-batched execution: RunBatch streams many input vectors through one
// compiled Program, executing each instruction across the whole batch before
// moving to the next. The batch dimension is laid out structure-of-arrays in
// a dedicated register arena (for the dominant scalar registers every
// instruction's operands and results are contiguous runs of BatchWidth
// words), so the per-instruction dispatch that dominates Evaluator.Run is
// paid once per batch instead of once per vector. Undefined behaviour,
// poison, return values and step accounting are tracked per lane (= per
// input vector) and are bit-identical to running Evaluator.Run on each
// vector in isolation — guarded by the randomized differential tests in
// batch_test.go.
//
// Two batched execution modes cover every register-machine-modeled program
// (Program.Batchable):
//
//   - Straight-line programs — the shape of essentially every extracted
//     peephole window — run runBatchCore: one pass over the code with no
//     block dispatch at all.
//   - Multi-block programs run runBatchBlocks, a masked scheduler: all
//     active lanes step the current block together, lanes whose branches
//     diverge are parked on a per-successor-block lane mask, and the
//     scheduler resumes the lowest-numbered block with parked lanes —
//     which reconverges both arms of a diamond before their join and
//     re-runs loop bodies until every lane has exited. UB, poison, Ret and
//     step accounting are tracked per lane throughout.
//
// Memory-touching programs batch too: each lane carries its own Memory
// (callers with many lanes back them with lane-strided BatchMems slabs).
// Only dynamic-vector-constant programs — which the register machine
// cannot model at all — still fall back to per-vector Run with cloned
// return values, so RunBatch is safe to call on any program.

import (
	"fmt"
	"math/bits"

	"repro/internal/ir"
)

// BatchWidth is the number of input vectors executed per batch chunk.
// Callers may pass any number of environments to RunBatch; they are
// processed in chunks of this size.
const BatchWidth = 64

// batchKind classifies one compiled instruction for the batch executor.
// Specialized kinds have a dedicated batch kernel over scalar registers;
// everything else runs through the shared evalOp kernels one vector at a
// time (still amortizing the interpreter loop, not the kernel dispatch).
type batchKind uint8

const (
	bkGeneric batchKind = iota
	bkRet
	bkUnreachable
	bkIntBin
	bkICmp
	bkSelect
	bkConvInt
	bkMinMax
	bkFreeze
)

// Specialized batch kernels take each operand as a contiguous run of
// BatchWidth words: register operands view the batch arena, constant
// operands view a column prefilled with the broadcast constant — so the
// kernels' inner loops index plain slices with no per-element dispatch.

// batchState is the Evaluator's lazily-built batch scratch: the
// structure-of-arrays register arena plus per-lane liveness and budget
// tracking. Built once per evaluator on the first RunBatch.
type batchState struct {
	words  []Word // register arena, BatchWidth vectors per register lane
	kinds  []batchKind
	bargs  [][][]Word // per code index: operand runs (specialized kinds)
	bdst   [][]Word   // per code index: result run (specialized kinds)
	alive  []bool     // per batch lane: still executing
	mems   []*Memory  // per batch lane: memory (emptyMem when absent)
	argBuf []RVal     // reusable per-vector operand views (generic kind)
	sc     scratch

	// Masked multi-block scheduler state (runBatchBlocks). Lane masks are
	// uint64 bitsets, which BatchWidth = 64 fills exactly.
	steps   []int    // per lane: dynamic instruction count so far
	budget  []int    // per lane: step budget
	prev    []int32  // per lane: predecessor block index (-1 at entry)
	defs    []uint64 // per register: lanes holding a bound value
	waiting []uint64 // per block: lanes parked on its entry
}

// batch returns the evaluator's batch state, building it on first use.
func (ev *Evaluator) batch() *batchState {
	if ev.bs != nil {
		return ev.bs
	}
	p := ev.p
	bs := &batchState{
		words: make([]Word, p.arenaLen*BatchWidth),
		kinds: make([]batchKind, len(p.code)),
		bargs: make([][][]Word, len(p.code)),
		bdst:  make([][]Word, len(p.code)),
		alive: make([]bool, BatchWidth),
		mems:  make([]*Memory, BatchWidth),
	}
	for b := range bs.mems {
		bs.mems[b] = ev.emptyMem
	}
	if !p.straight {
		bs.steps = make([]int, BatchWidth)
		bs.budget = make([]int, BatchWidth)
		bs.prev = make([]int32, BatchWidth)
		bs.defs = make([]uint64, len(p.regLanes))
		bs.waiting = make([]uint64, len(p.blocks))
	}
	maxArgs := 1
	specialized := func(k batchKind) bool {
		return k != bkGeneric && k != bkRet && k != bkUnreachable
	}
	totalOps := 0
	for gi := range p.code {
		ci := &p.code[gi]
		if len(ci.args) > maxArgs {
			maxArgs = len(ci.args)
		}
		bs.kinds[gi] = classifyBatch(p, ci)
		if specialized(bs.kinds[gi]) {
			totalOps += len(ci.args)
		}
	}
	flat := make([][]Word, totalOps)
	next := 0
	constCols := make(map[int32][]Word)
	for gi := range p.code {
		if !specialized(bs.kinds[gi]) {
			continue
		}
		ci := &p.code[gi]
		views := flat[next : next+len(ci.args) : next+len(ci.args)]
		next += len(ci.args)
		for k, slot := range ci.args {
			if slot >= 0 {
				base := int(p.regOff[slot]) * BatchWidth
				views[k] = bs.words[base : base+BatchWidth : base+BatchWidth]
			} else {
				col, ok := constCols[^slot]
				if !ok {
					col = make([]Word, BatchWidth)
					w := p.consts[^slot].rv.Lanes[0]
					for j := range col {
						col[j] = w
					}
					constCols[^slot] = col
				}
				views[k] = col
			}
		}
		bs.bargs[gi] = views
		base := int(p.regOff[ci.dst]) * BatchWidth
		bs.bdst[gi] = bs.words[base : base+BatchWidth : base+BatchWidth]
	}
	bs.argBuf = make([]RVal, maxArgs)
	ev.bs = bs
	return bs
}

// classifyBatch picks the batch kernel for one compiled instruction.
// Specialization requires a scalar result and scalar operands (one lane
// each); vector instructions and rare opcodes keep the shared evalOp
// kernels via the per-vector generic path.
func classifyBatch(p *Program, ci *cinstr) batchKind {
	switch ci.in.Op {
	case ir.OpRet:
		return bkRet
	case ir.OpUnreachable:
		return bkUnreachable
	}
	if ci.dst < 0 || p.regLanes[ci.dst] != 1 {
		return bkGeneric
	}
	for _, slot := range ci.args {
		if slot >= 0 {
			if p.regLanes[slot] != 1 {
				return bkGeneric
			}
		} else if e := &p.consts[^slot]; e.ub || len(e.rv.Lanes) != 1 {
			return bkGeneric
		}
	}
	switch {
	case ci.in.Op.IsIntBinary():
		return bkIntBin
	case ci.in.Op == ir.OpICmp:
		return bkICmp
	case ci.in.Op == ir.OpSelect:
		return bkSelect
	case ci.in.Op == ir.OpFreeze:
		return bkFreeze
	case ci.in.Op == ir.OpZExt, ci.in.Op == ir.OpSExt, ci.in.Op == ir.OpTrunc:
		return bkConvInt
	case ci.in.Op == ir.OpCall:
		switch ir.IntrinsicBase(ci.in.Callee) {
		case "umin", "umax", "smin", "smax":
			return bkMinMax
		}
	}
	return bkGeneric
}

// RunBatch executes the program on every environment and writes one Result
// per input into out (which must be at least as long as envs). Semantics per
// vector — values, poison lanes, UB reasons, step accounting — are
// bit-identical to calling Run on each environment in order. Returned Ret
// values may alias the evaluator's batch scratch and are valid only until
// the next RunBatch/Run; clone to retain them.
func (ev *Evaluator) RunBatch(envs []Env, out []Result) {
	if len(out) < len(envs) {
		panic("interp: RunBatch needs len(out) >= len(envs)")
	}
	if !ev.p.Batchable() {
		// Per-vector fallback: dynamic-vector-constant programs, which Run
		// itself delegates to Exec. Rets are cloned because Run reuses its
		// scratch across calls.
		for i := range envs {
			r := ev.Run(envs[i])
			r.Ret = r.Ret.Clone()
			out[i] = r
		}
		return
	}
	for base := 0; base < len(envs); base += BatchWidth {
		hi := base + BatchWidth
		if hi > len(envs) {
			hi = len(envs)
		}
		ev.runBatchChunk(envs[base:hi], out[base:hi], hi < len(envs))
	}
}

// batchableErr names why the program cannot use the column-streaming entry
// points, so callers see the fallback class instead of a bare panic.
func (ev *Evaluator) batchableErr(what string) error {
	return fmt.Errorf("interp: %s requires a batchable program: %s falls back to per-vector execution: %s",
		what, ev.p.fn.Name, ev.p.BatchFallbackReason())
}

// ArgColumn returns the batch arena's input column for parameter i: vector
// b's lanes occupy [b*L, (b+1)*L) of the returned run, the exact layout the
// batch kernels read. Callers streaming many batches (the alive checker)
// write inputs directly into the columns and execute with RunBatchFilled,
// eliding the per-vector Env staging and scatter entirely. It fails for
// non-Batchable programs, naming the fallback reason.
func (ev *Evaluator) ArgColumn(i int) ([]Word, error) {
	if !ev.p.Batchable() {
		return nil, ev.batchableErr("ArgColumn")
	}
	bs := ev.batch()
	r := ev.p.paramReg[i]
	L := int(ev.p.regLanes[r])
	base := int(ev.p.regOff[r]) * BatchWidth
	return bs.words[base : base+L*BatchWidth : base+L*BatchWidth], nil
}

// RunBatchFilled executes the first n batch lanes against inputs the caller
// already wrote into the ArgColumn runs, with default step budgets. mems
// optionally carries one memory per lane (nil entries and a nil slice mean
// no memory, as for an Env without Mem). Results are written like RunBatch.
// It fails for non-Batchable programs, naming the fallback reason; n must
// be <= BatchWidth.
func (ev *Evaluator) RunBatchFilled(n int, out []Result, mems []*Memory) error {
	if !ev.p.Batchable() {
		return ev.batchableErr("RunBatchFilled")
	}
	if n > BatchWidth || len(out) < n {
		panic("interp: RunBatchFilled bounds")
	}
	bs := ev.batch()
	for b := 0; b < n; b++ {
		bs.alive[b] = true
	}
	if ev.p.hasMem {
		for b := 0; b < n; b++ {
			if mems != nil && mems[b] != nil {
				bs.mems[b] = mems[b]
			} else {
				bs.mems[b] = ev.emptyMem
			}
		}
	}
	if ev.p.straight {
		ev.runBatchCore(n, out, nil, defaultMaxSteps, n)
	} else {
		ev.runBatchBlocks(n, out, nil)
	}
	return nil
}

// runBatchChunk executes one chunk of at most BatchWidth environments on the
// lane-batched fast path. cloneRets detaches the chunk's return values from
// the shared batch arena (needed for every chunk but the last, whose Rets
// stay valid until the next RunBatch).
func (ev *Evaluator) runBatchChunk(envs []Env, out []Result, cloneRets bool) {
	p := ev.p
	bs := ev.batch()
	B := len(envs)
	live := 0
	minMax := defaultMaxSteps
	for b := 0; b < B; b++ {
		if len(envs[b].Args) != len(p.fn.Params) {
			out[b] = Result{UB: true, Completed: true,
				UBReason: fmt.Sprintf("argument count mismatch: have %d, want %d",
					len(envs[b].Args), len(p.fn.Params))}
			bs.alive[b] = false
			continue
		}
		if ms := envs[b].MaxSteps; ms != 0 && ms < minMax {
			minMax = ms
		}
		bs.alive[b] = true
		live++
	}

	// Scatter the arguments into the batch arena, zero-padding short lanes
	// exactly like Run. Scalar parameters (the dominant case) take the
	// direct-store path.
	allAlive := live == B
	for i, r := range p.paramReg {
		L := int(p.regLanes[r])
		base := int(p.regOff[r]) * BatchWidth
		if L == 1 {
			run := bs.words[base : base+B : base+B]
			for b := 0; b < B; b++ {
				if !allAlive && !bs.alive[b] {
					continue
				}
				if lanes := envs[b].Args[i].Lanes; len(lanes) > 0 {
					run[b] = lanes[0]
				} else {
					run[b] = Word{}
				}
			}
			continue
		}
		for b := 0; b < B; b++ {
			if !allAlive && !bs.alive[b] {
				continue
			}
			dst := bs.words[base+b*L : base+(b+1)*L : base+(b+1)*L]
			n := copy(dst, envs[b].Args[i].Lanes)
			for ; n < len(dst); n++ {
				dst[n] = Word{}
			}
		}
	}

	if p.hasMem {
		for b := 0; b < B; b++ {
			if m := envs[b].Mem; m != nil {
				bs.mems[b] = m
			} else {
				bs.mems[b] = ev.emptyMem
			}
		}
	}
	if p.straight {
		ev.runBatchCore(B, out, envs, minMax, live)
	} else {
		ev.runBatchBlocks(B, out, envs)
	}
	if cloneRets {
		for b := 0; b < B; b++ {
			out[b].Ret = out[b].Ret.Clone()
		}
	}
}

// runBatchCore is the shared execution loop: arguments are already in the
// batch arena and bs.alive/live describe the runnable lanes. envs is only
// consulted for per-lane step budgets and may be nil (default budgets).
func (ev *Evaluator) runBatchCore(B int, out []Result, envs []Env, minMax, live int) {
	p := ev.p
	bs := ev.bs

	// kill retires lane b with UB. Lanes retire at most once, and every
	// retirement writes the full Result, so out needs no up-front zeroing.
	// step tracks the current instruction (uniform across lanes on the
	// straight-line path).
	step := 0
	kill := func(b int, why string) {
		out[b] = Result{UB: true, UBReason: why, Completed: true, DynInstrs: step}
		bs.alive[b] = false
		live--
	}

	for gi := 0; gi < len(p.code) && live > 0; gi++ {
		ci := &p.code[gi]
		step = gi + 1
		if step > minMax {
			for b := 0; b < B; b++ {
				if !bs.alive[b] {
					continue
				}
				ms := defaultMaxSteps
				if envs != nil && envs[b].MaxSteps != 0 {
					ms = envs[b].MaxSteps
				}
				if step > ms {
					out[b] = Result{Completed: false, DynInstrs: step}
					bs.alive[b] = false
					live--
				}
			}
			if live == 0 {
				break
			}
		}
		// In straight-line programs runtime checks only guard constants
		// that failed to materialize, so a triggered check is uniform
		// across the batch.
		if len(ci.checks) > 0 {
			if ub, why := batchConstUB(p, ci); ub {
				for b := 0; b < B; b++ {
					if bs.alive[b] {
						kill(b, why)
					}
				}
				break
			}
		}
		switch bs.kinds[gi] {
		case bkRet:
			hasRet := len(ci.in.Args) == 1
			var retTy ir.Type
			var slot, retL, retBase int32
			var constRet RVal
			if hasRet {
				retTy = ci.in.Args[0].Type()
				slot = ci.args[0]
				if slot >= 0 {
					retL = p.regLanes[slot]
					retBase = p.regOff[slot] * BatchWidth
				} else {
					constRet = p.consts[^slot].rv
				}
			}
			for b := 0; b < B; b++ {
				if !bs.alive[b] {
					continue
				}
				// Lane b's ret view is the same arena slice on every call,
				// so when the caller reuses its out buffer (the checker's
				// steady state) the pointer fields are already correct —
				// skipping the rewrite avoids a GC write barrier per lane
				// on the hottest line of the batch path.
				r := &out[b]
				if r.UB || r.UBReason != "" {
					r.UB = false
					r.UBReason = ""
				}
				r.Completed = true
				r.DynInstrs = step
				if hasRet {
					if slot >= 0 {
						lo := retBase + int32(b)*retL
						lanes := bs.words[lo : lo+retL : lo+retL]
						// A matching lane pointer can only come from this
						// same ret view (registers never share arena
						// offsets), so the Ty is already right too — no
						// interface compare needed.
						if len(r.Ret.Lanes) != int(retL) || &r.Ret.Lanes[0] != &lanes[0] {
							r.Ret = RVal{Ty: retTy, Lanes: lanes}
						}
					} else if len(r.Ret.Lanes) != len(constRet.Lanes) ||
						len(constRet.Lanes) == 0 || &r.Ret.Lanes[0] != &constRet.Lanes[0] {
						r.Ret = constRet
					}
				} else if r.Ret.Lanes != nil || r.Ret.Ty != nil {
					r.Ret = RVal{}
				}
				bs.alive[b] = false
			}
			live = 0
		case bkUnreachable:
			for b := 0; b < B; b++ {
				if bs.alive[b] {
					kill(b, "reached unreachable")
				}
			}
		case bkIntBin:
			batchIntBin(ci.in, bs.bdst[gi], bs.bargs[gi], bs.alive, B, kill)
		case bkICmp:
			batchICmp(ci.in, bs.bdst[gi], bs.bargs[gi], bs.alive, B)
		case bkSelect:
			batchSelect(bs.bdst[gi], bs.bargs[gi], bs.alive, B)
		case bkConvInt:
			batchConvInt(ci.in, bs.bdst[gi], bs.bargs[gi], bs.alive, B)
		case bkMinMax:
			batchMinMax(ci.in, bs.bdst[gi], bs.bargs[gi], bs.alive, B)
		case bkFreeze:
			batchFreeze(bs.bdst[gi], bs.bargs[gi], bs.alive, B)
		default: // bkGeneric: shared evalOp kernels, one vector at a time.
			na := len(ci.args)
			for b := 0; b < B; b++ {
				if !bs.alive[b] {
					continue
				}
				args := bs.argBuf[:na]
				for k, slot := range ci.args {
					if slot >= 0 {
						L := int(p.regLanes[slot])
						base := int(p.regOff[slot]) * BatchWidth
						args[k] = RVal{Ty: ci.in.Args[k].Type(),
							Lanes: bs.words[base+b*L : base+(b+1)*L : base+(b+1)*L]}
					} else {
						args[k] = p.consts[^slot].rv
					}
				}
				var dst []Word
				if ci.dst >= 0 {
					L := int(p.regLanes[ci.dst])
					base := int(p.regOff[ci.dst]) * BatchWidth
					dst = bs.words[base+b*L : base+(b+1)*L : base+(b+1)*L]
				}
				mem := ev.emptyMem
				if p.hasMem {
					mem = bs.mems[b]
				}
				if ub, why := evalOp(ci.in, dst, args, mem, &bs.sc); ub {
					kill(b, why)
				}
			}
		}
	}
	if live > 0 {
		step = len(p.code)
		for b := 0; b < B; b++ {
			if bs.alive[b] {
				kill(b, "block fell through without terminator")
			}
		}
	}
}

// runBatchBlocks is the masked multi-block scheduler: arguments are already
// in the batch arena and bs.alive marks the runnable lanes. All lanes of a
// wave step the current block's instructions together; a lane leaves the
// wave by returning, dying (UB, budget), or branching — branches park the
// lane on its successor's waiting mask. The scheduler then resumes the
// lowest-numbered block with parked lanes: forward branches reconverge
// naturally (both arms of a diamond run before their join block) and back
// edges re-run loop bodies until every lane has exited. Per-lane step
// counts, budgets, defined-register masks and predecessor blocks keep the
// semantics — including UB reasons and DynInstrs — bit-identical to running
// Run per vector. envs is only consulted for per-lane step budgets and may
// be nil (default budgets).
func (ev *Evaluator) runBatchBlocks(B int, out []Result, envs []Env) {
	p := ev.p
	bs := ev.bs

	var entry uint64
	for b := 0; b < B; b++ {
		bs.steps[b] = 0
		bs.prev[b] = -1
		bs.budget[b] = defaultMaxSteps
		if envs != nil && envs[b].MaxSteps != 0 {
			bs.budget[b] = envs[b].MaxSteps
		}
		if bs.alive[b] {
			entry |= 1 << uint(b)
		}
	}
	defs := bs.defs
	for i := range defs {
		defs[i] = 0
	}
	for _, r := range p.paramReg {
		defs[r] = entry
	}
	waiting := bs.waiting
	for i := range waiting {
		waiting[i] = 0
	}
	waiting[0] = entry
	steps, budget, prev := bs.steps, bs.budget, bs.prev

	// wave is the lane mask currently executing; kill retires one lane of
	// it with UB at its own step count.
	var wave uint64
	kill := func(b int, why string) {
		out[b] = Result{UB: true, UBReason: why, Completed: true, DynInstrs: steps[b]}
		bs.alive[b] = false
		wave &^= 1 << uint(b)
	}
	// checkLanes applies one instruction's runtime guards lane by lane, in
	// operand order, mirroring Evaluator.checkArgs.
	checkLanes := func(ci *cinstr) {
		for _, k := range ci.checks {
			if wave == 0 {
				return
			}
			slot := ci.args[k]
			if slot >= 0 {
				for m := wave &^ defs[slot]; m != 0; m &= m - 1 {
					kill(bits.TrailingZeros64(m), "use of unbound value "+ci.in.Args[k].Ident())
				}
			} else if e := &p.consts[^slot]; e.ub {
				for m := wave; m != 0; m &= m - 1 {
					kill(bits.TrailingZeros64(m), e.why)
				}
			}
		}
	}
	// laneView returns lane b's run of register r.
	laneView := func(r int32, b int) []Word {
		L := int(p.regLanes[r])
		base := int(p.regOff[r])*BatchWidth + b*L
		return bs.words[base : base+L : base+L]
	}

	for {
		bi := -1
		for i := range waiting {
			if waiting[i] != 0 {
				bi = i
				break
			}
		}
		if bi < 0 {
			return
		}
		wave = waiting[bi]
		waiting[bi] = 0
		for m := wave; m != 0; m &= m - 1 {
			bs.alive[bits.TrailingZeros64(m)] = true
		}
		blk := &p.blocks[bi]
		for gi := blk.start; gi < blk.end && wave != 0; gi++ {
			ci := &p.code[gi]
			for m := wave; m != 0; m &= m - 1 {
				b := bits.TrailingZeros64(m)
				steps[b]++
				if steps[b] > budget[b] {
					out[b] = Result{Completed: false, DynInstrs: steps[b]}
					bs.alive[b] = false
					wave &^= 1 << uint(b)
				}
			}
			if wave == 0 {
				break
			}
			switch ci.in.Op {
			case ir.OpRet:
				if len(ci.in.Args) == 1 {
					checkLanes(ci)
					if wave == 0 {
						break
					}
					retTy := ci.in.Args[0].Type()
					if slot := ci.args[0]; slot >= 0 {
						for m := wave; m != 0; m &= m - 1 {
							b := bits.TrailingZeros64(m)
							out[b] = Result{Completed: true, DynInstrs: steps[b],
								Ret: RVal{Ty: retTy, Lanes: laneView(slot, b)}}
							bs.alive[b] = false
						}
					} else {
						rv := p.consts[^slot].rv
						for m := wave; m != 0; m &= m - 1 {
							b := bits.TrailingZeros64(m)
							out[b] = Result{Completed: true, DynInstrs: steps[b], Ret: rv}
							bs.alive[b] = false
						}
					}
				} else {
					for m := wave; m != 0; m &= m - 1 {
						b := bits.TrailingZeros64(m)
						out[b] = Result{Completed: true, DynInstrs: steps[b]}
						bs.alive[b] = false
					}
				}
				wave = 0
			case ir.OpBr:
				if len(ci.in.Args) == 0 {
					if succ := ci.succ[0]; succ < 0 {
						why := "branch to unknown block " + ci.in.Labels[0]
						for m := wave; m != 0; m &= m - 1 {
							kill(bits.TrailingZeros64(m), why)
						}
					} else {
						waiting[succ] |= wave
						for m := wave; m != 0; m &= m - 1 {
							b := bits.TrailingZeros64(m)
							prev[b] = int32(bi)
							bs.alive[b] = false
						}
						wave = 0
					}
					break
				}
				checkLanes(ci)
				slot := ci.args[0]
				for m := wave; m != 0; m &= m - 1 {
					b := bits.TrailingZeros64(m)
					var c Word
					if slot >= 0 {
						c = laneView(slot, b)[0]
					} else {
						c = p.consts[^slot].rv.Lanes[0]
					}
					if c.Poison {
						kill(b, "branch on poison")
						continue
					}
					k := 1
					if c.V&1 == 1 {
						k = 0
					}
					if succ := ci.succ[k]; succ < 0 {
						kill(b, "branch to unknown block "+ci.in.Labels[k])
					} else {
						waiting[succ] |= 1 << uint(b)
						prev[b] = int32(bi)
						bs.alive[b] = false
						wave &^= 1 << uint(b)
					}
				}
			case ir.OpUnreachable:
				for m := wave; m != 0; m &= m - 1 {
					kill(bits.TrailingZeros64(m), "reached unreachable")
				}
			case ir.OpPhi:
				for m := wave; m != 0; m &= m - 1 {
					b := bits.TrailingZeros64(m)
					idx := -1
					for k, pi := range ci.phiPred {
						if pi == prev[b] {
							idx = k
							break
						}
					}
					if idx < 0 {
						pn := ""
						if prev[b] >= 0 {
							pn = p.blocks[prev[b]].name
						}
						kill(b, "phi has no incoming edge from "+pn)
						continue
					}
					slot := ci.args[idx]
					var src []Word
					if slot >= 0 {
						if defs[slot]&(1<<uint(b)) == 0 {
							kill(b, "use of unbound value "+ci.in.Args[idx].Ident())
							continue
						}
						src = laneView(slot, b)
					} else {
						e := &p.consts[^slot]
						if e.ub {
							kill(b, e.why)
							continue
						}
						src = e.rv.Lanes
					}
					if ci.dst >= 0 {
						dst := laneView(ci.dst, b)
						n := copy(dst, src)
						for ; n < len(dst); n++ {
							dst[n] = Word{}
						}
						defs[ci.dst] |= 1 << uint(b)
					}
				}
			default:
				checkLanes(ci)
				if wave == 0 {
					break
				}
				switch bs.kinds[gi] {
				case bkIntBin:
					batchIntBin(ci.in, bs.bdst[gi], bs.bargs[gi], bs.alive, B, kill)
				case bkICmp:
					batchICmp(ci.in, bs.bdst[gi], bs.bargs[gi], bs.alive, B)
				case bkSelect:
					batchSelect(bs.bdst[gi], bs.bargs[gi], bs.alive, B)
				case bkConvInt:
					batchConvInt(ci.in, bs.bdst[gi], bs.bargs[gi], bs.alive, B)
				case bkMinMax:
					batchMinMax(ci.in, bs.bdst[gi], bs.bargs[gi], bs.alive, B)
				case bkFreeze:
					batchFreeze(bs.bdst[gi], bs.bargs[gi], bs.alive, B)
				default: // bkGeneric: shared evalOp kernels, one lane at a time.
					na := len(ci.args)
					for m := wave; m != 0; m &= m - 1 {
						b := bits.TrailingZeros64(m)
						args := bs.argBuf[:na]
						for k, slot := range ci.args {
							if slot >= 0 {
								args[k] = RVal{Ty: ci.in.Args[k].Type(), Lanes: laneView(slot, b)}
							} else {
								args[k] = p.consts[^slot].rv
							}
						}
						var dst []Word
						if ci.dst >= 0 {
							dst = laneView(ci.dst, b)
						}
						mem := ev.emptyMem
						if p.hasMem {
							mem = bs.mems[b]
						}
						if ub, why := evalOp(ci.in, dst, args, mem, &bs.sc); ub {
							kill(b, why)
						}
					}
				}
				if ci.dst >= 0 {
					defs[ci.dst] |= wave
				}
			}
		}
		// Lanes that ran off the block without reaching a terminator.
		for m := wave; m != 0; m &= m - 1 {
			kill(bits.TrailingZeros64(m), "block fell through without terminator")
		}
	}
}

// batchConstUB reproduces checkArgs for straight-line programs, where every
// guarded operand is a constant-pool entry (an unbound-register guard would
// have cleared the straight flag at compile time).
func batchConstUB(p *Program, ci *cinstr) (bool, string) {
	for _, k := range ci.checks {
		if slot := ci.args[k]; slot < 0 {
			if e := &p.consts[^slot]; e.ub {
				return true, e.why
			}
		}
	}
	return false, ""
}

// The batch kernels below mirror the shared per-opcode kernels element for
// element (see kernels.go / intrinsics.go); they differ only in iterating
// the batch dimension and killing individual lanes on UB instead of
// aborting the whole execution. The randomized differential test pins them
// to the scalar kernels.

func batchIntBin(in *ir.Instr, dst []Word, args [][]Word, alive []bool, B int,
	kill func(int, string)) {
	w := ir.ScalarBits(ir.Elem(in.Ty))
	mask := ir.MaskW(w)
	op, flags := in.Op, in.Flags
	xs, ys := args[0][:B], args[1][:B]
	alive = alive[:B]
	dst = dst[:B]
	// Flagless bitwise/additive ops — the bulk of real windows — get tight
	// per-op loops with the dispatch hoisted out of the batch. The low w
	// bits of these ops depend only on the low w bits of their operands, so
	// masking once at the store matches the masked-operand general path.
	if flags == ir.NoFlags {
		switch op {
		case ir.OpAnd:
			for b := 0; b < B; b++ {
				if !alive[b] {
					continue
				}
				x, y := xs[b], ys[b]
				if x.Poison || y.Poison {
					dst[b] = Word{Poison: true}
					continue
				}
				dst[b] = Word{V: (x.V & y.V) & mask}
			}
			return
		case ir.OpOr:
			for b := 0; b < B; b++ {
				if !alive[b] {
					continue
				}
				x, y := xs[b], ys[b]
				if x.Poison || y.Poison {
					dst[b] = Word{Poison: true}
					continue
				}
				dst[b] = Word{V: (x.V | y.V) & mask}
			}
			return
		case ir.OpXor:
			for b := 0; b < B; b++ {
				if !alive[b] {
					continue
				}
				x, y := xs[b], ys[b]
				if x.Poison || y.Poison {
					dst[b] = Word{Poison: true}
					continue
				}
				dst[b] = Word{V: (x.V ^ y.V) & mask}
			}
			return
		case ir.OpAdd:
			for b := 0; b < B; b++ {
				if !alive[b] {
					continue
				}
				x, y := xs[b], ys[b]
				if x.Poison || y.Poison {
					dst[b] = Word{Poison: true}
					continue
				}
				dst[b] = Word{V: (x.V + y.V) & mask}
			}
			return
		case ir.OpSub:
			for b := 0; b < B; b++ {
				if !alive[b] {
					continue
				}
				x, y := xs[b], ys[b]
				if x.Poison || y.Poison {
					dst[b] = Word{Poison: true}
					continue
				}
				dst[b] = Word{V: (x.V - y.V) & mask}
			}
			return
		}
	}
	isDiv := op == ir.OpUDiv || op == ir.OpSDiv || op == ir.OpURem || op == ir.OpSRem
	for b := 0; b < B; b++ {
		if !alive[b] {
			continue
		}
		x, y := xs[b], ys[b]
		if isDiv {
			if y.Poison {
				kill(b, "division by poison")
				continue
			}
			if y.V&mask == 0 {
				kill(b, "division by zero")
				continue
			}
			if (op == ir.OpSDiv || op == ir.OpSRem) && !x.Poison {
				if ir.SignExt(x.V, w) == minSigned(w) && ir.SignExt(y.V, w) == -1 {
					kill(b, "signed division overflow")
					continue
				}
			}
		}
		if x.Poison || y.Poison {
			dst[b] = Word{Poison: true}
			continue
		}
		xv, yv := x.V&mask, y.V&mask
		var r uint64
		poison := false
		switch op {
		case ir.OpAdd:
			r = (xv + yv) & mask
			if flags.Has(ir.NUW) && r < xv {
				poison = true
			}
			if flags.Has(ir.NSW) && addNSWOverflow(xv, yv, r, w) {
				poison = true
			}
		case ir.OpSub:
			r = (xv - yv) & mask
			if flags.Has(ir.NUW) && yv > xv {
				poison = true
			}
			if flags.Has(ir.NSW) && subNSWOverflow(xv, yv, r, w) {
				poison = true
			}
		case ir.OpMul:
			hi, lo := bits.Mul64(xv, yv)
			r = lo & mask
			if flags.Has(ir.NUW) {
				if hi != 0 || lo&^mask != 0 {
					poison = true
				}
			}
			if flags.Has(ir.NSW) && mulNSWOverflow(xv, yv, w) {
				poison = true
			}
		case ir.OpUDiv:
			r = xv / yv
			if flags.Has(ir.Exact) && xv%yv != 0 {
				poison = true
			}
		case ir.OpSDiv:
			sr := ir.SignExt(xv, w) / ir.SignExt(yv, w)
			r = uint64(sr) & mask
			if flags.Has(ir.Exact) && ir.SignExt(xv, w)%ir.SignExt(yv, w) != 0 {
				poison = true
			}
		case ir.OpURem:
			r = xv % yv
		case ir.OpSRem:
			r = uint64(ir.SignExt(xv, w)%ir.SignExt(yv, w)) & mask
		case ir.OpShl:
			if yv >= uint64(w) {
				poison = true
				break
			}
			r = (xv << yv) & mask
			if flags.Has(ir.NUW) && (r>>yv) != xv {
				poison = true
			}
			if flags.Has(ir.NSW) {
				back := uint64(ir.SignExt(r, w)>>yv) & mask
				if back != xv {
					poison = true
				}
			}
		case ir.OpLShr:
			if yv >= uint64(w) {
				poison = true
				break
			}
			r = xv >> yv
			if flags.Has(ir.Exact) && (r<<yv)&mask != xv {
				poison = true
			}
		case ir.OpAShr:
			if yv >= uint64(w) {
				poison = true
				break
			}
			r = uint64(ir.SignExt(xv, w)>>yv) & mask
			if flags.Has(ir.Exact) && xv&((uint64(1)<<yv)-1) != 0 {
				poison = true
			}
		case ir.OpAnd:
			r = xv & yv
		case ir.OpOr:
			r = xv | yv
			if flags.Has(ir.Disjoint) && xv&yv != 0 {
				poison = true
			}
		case ir.OpXor:
			r = xv ^ yv
		}
		dst[b] = Word{V: r & mask, Poison: poison}
	}
}

func batchICmp(in *ir.Instr, dst []Word, args [][]Word, alive []bool, B int) {
	w := ir.ScalarBits(ir.Elem(in.Args[0].Type()))
	mask := ir.MaskW(w)
	pred := in.IPredV
	xs, ys := args[0][:B], args[1][:B]
	alive = alive[:B]
	dst = dst[:B]
	for b := 0; b < B; b++ {
		if !alive[b] {
			continue
		}
		x, y := xs[b], ys[b]
		if x.Poison || y.Poison {
			dst[b] = Word{Poison: true}
			continue
		}
		xv, yv := x.V&mask, y.V&mask
		sx, sy := ir.SignExt(xv, w), ir.SignExt(yv, w)
		var r bool
		switch pred {
		case ir.EQ:
			r = xv == yv
		case ir.NE:
			r = xv != yv
		case ir.UGT:
			r = xv > yv
		case ir.UGE:
			r = xv >= yv
		case ir.ULT:
			r = xv < yv
		case ir.ULE:
			r = xv <= yv
		case ir.SGT:
			r = sx > sy
		case ir.SGE:
			r = sx >= sy
		case ir.SLT:
			r = sx < sy
		case ir.SLE:
			r = sx <= sy
		}
		if r {
			dst[b] = Word{V: 1}
		} else {
			dst[b] = Word{V: 0}
		}
	}
}

func batchSelect(dst []Word, args [][]Word, alive []bool, B int) {
	cs, ts, fs := args[0][:B], args[1][:B], args[2][:B]
	alive = alive[:B]
	dst = dst[:B]
	for b := 0; b < B; b++ {
		if !alive[b] {
			continue
		}
		c := cs[b]
		switch {
		case c.Poison:
			dst[b] = Word{Poison: true}
		case c.V&1 == 1:
			dst[b] = ts[b]
		default:
			dst[b] = fs[b]
		}
	}
}

func batchConvInt(in *ir.Instr, dst []Word, args [][]Word, alive []bool, B int) {
	fw := ir.ScalarBits(ir.Elem(in.Args[0].Type()))
	tw := ir.ScalarBits(ir.Elem(in.Ty))
	op, flags := in.Op, in.Flags
	xs := args[0][:B]
	alive = alive[:B]
	dst = dst[:B]
	for b := 0; b < B; b++ {
		if !alive[b] {
			continue
		}
		x := xs[b]
		if x.Poison {
			dst[b] = Word{Poison: true}
			continue
		}
		var r uint64
		poison := false
		switch op {
		case ir.OpZExt:
			r = x.V & ir.MaskW(fw)
			if flags.Has(ir.NNeg) && ir.SignExt(x.V, fw) < 0 {
				poison = true
			}
		case ir.OpSExt:
			r = uint64(ir.SignExt(x.V, fw)) & ir.MaskW(tw)
		case ir.OpTrunc:
			r = x.V & ir.MaskW(tw)
			if flags.Has(ir.NUW) && x.V&ir.MaskW(fw) != r {
				poison = true
			}
			if flags.Has(ir.NSW) && ir.SignExt(x.V, fw) != ir.SignExt(r, tw) {
				poison = true
			}
		}
		dst[b] = Word{V: r, Poison: poison}
	}
}

func batchMinMax(in *ir.Instr, dst []Word, args [][]Word, alive []bool, B int) {
	w := ir.ScalarBits(ir.Elem(in.Ty))
	mask := ir.MaskW(w)
	base := ir.IntrinsicBase(in.Callee)
	xs, ys := args[0][:B], args[1][:B]
	alive = alive[:B]
	dst = dst[:B]
	for b := 0; b < B; b++ {
		if !alive[b] {
			continue
		}
		x, y := xs[b], ys[b]
		if x.Poison || y.Poison {
			dst[b] = Word{Poison: true}
			continue
		}
		xv, yv := x.V&mask, y.V&mask
		var take bool
		switch base {
		case "umin":
			take = xv < yv
		case "umax":
			take = xv > yv
		case "smin":
			take = ir.SignExt(xv, w) < ir.SignExt(yv, w)
		default: // smax
			take = ir.SignExt(xv, w) > ir.SignExt(yv, w)
		}
		if take {
			dst[b] = Word{V: xv}
		} else {
			dst[b] = Word{V: yv}
		}
	}
}

func batchFreeze(dst []Word, args [][]Word, alive []bool, B int) {
	xs := args[0][:B]
	alive = alive[:B]
	dst = dst[:B]
	for b := 0; b < B; b++ {
		if !alive[b] {
			continue
		}
		if x := xs[b]; x.Poison {
			dst[b] = Word{V: 0}
		} else {
			dst[b] = x
		}
	}
}
