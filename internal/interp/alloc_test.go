package interp

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/parser"
)

var raceEnabled bool

// TestEvaluatorSteadyStateAllocs pins the compile-once contract: running a
// compiled straight-line window allocates nothing once the evaluator is
// warm.
func TestEvaluatorSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted by the race runtime")
	}
	f := parser.MustParseFunc(`define i8 @f(i32 %0) {
  %2 = icmp slt i32 %0, 0
  %3 = tail call i32 @llvm.umin.i32(i32 %0, i32 255)
  %4 = trunc nuw i32 %3 to i8
  %5 = select i1 %2, i8 0, i8 %4
  ret i8 %5
}`)
	ev := NewEvaluator(Compile(f))
	env := Env{Args: []RVal{Scalar(ir.I32, 1234)}}
	ev.Run(env)
	allocs := testing.AllocsPerRun(200, func() {
		ev.Run(env)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Run allocates %.1f times per execution, want 0", allocs)
	}
}
