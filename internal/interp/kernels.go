package interp

// This file holds the per-opcode evaluation kernels shared by the reference
// tree-walking interpreter (Exec) and the compiled Evaluator. Each kernel
// writes the result lanes of one instruction into a caller-provided dst
// slice, so the two execution engines run the exact same semantics and can
// only differ in how they materialize operands and where result lanes live.
// Every kernel fully overwrites dst on success (the compiled evaluator
// reuses register storage across runs).

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/ir"
)

// scratch holds reusable byte/bool buffers for the store and bitcast
// kernels, so a steady-state evaluator performs no per-instruction
// allocations for them.
type scratch struct {
	data []byte
	pois []bool
	bits []bool
}

func (sc *scratch) byteBuf(n int) ([]byte, []bool) {
	if cap(sc.data) < n {
		sc.data = make([]byte, n)
		sc.pois = make([]bool, n)
	}
	return sc.data[:n], sc.pois[:n]
}

func (sc *scratch) bitBuf(n int) []bool {
	if cap(sc.bits) < n {
		sc.bits = make([]bool, n)
	}
	return sc.bits[:n]
}

// resultLanes returns how many result lanes in produces given its
// materialized operands, matching the historic allocation behaviour of the
// tree-walker (operand-derived where the original code derived it from
// operands, type-derived otherwise).
func resultLanes(in *ir.Instr, args []RVal) int {
	switch {
	case in.Op.IsIntBinary(),
		in.Op == ir.OpFAdd, in.Op == ir.OpFSub, in.Op == ir.OpFMul, in.Op == ir.OpFDiv,
		in.Op == ir.OpFNeg, in.Op == ir.OpICmp, in.Op == ir.OpFCmp, in.Op == ir.OpFreeze:
		return len(args[0].Lanes)
	case in.Op == ir.OpSelect:
		return len(args[1].Lanes)
	case in.Op == ir.OpBitcast:
		return ir.Lanes(in.Ty)
	case in.Op.IsConversion():
		return len(args[0].Lanes)
	case in.Op == ir.OpGEP, in.Op == ir.OpExtractElt:
		return 1
	case in.Op == ir.OpLoad, in.Op == ir.OpCall, in.Op == ir.OpShuffle:
		return ir.Lanes(in.Ty)
	case in.Op == ir.OpInsertElt:
		return len(args[0].Lanes)
	}
	return 0
}

// evalOp executes one non-control-flow, non-phi instruction: the result
// lanes are written into dst (len(dst) = resultLanes for the tree-walker,
// the register's static lane count for the compiled evaluator). It reports
// undefined behaviour exactly like the historic state.eval did.
func evalOp(in *ir.Instr, dst []Word, args []RVal, mem *Memory, sc *scratch) (bool, string) {
	switch {
	case in.Op.IsIntBinary():
		return evalIntBinary(in, dst, args[0], args[1])
	case in.Op == ir.OpFAdd, in.Op == ir.OpFSub, in.Op == ir.OpFMul, in.Op == ir.OpFDiv:
		evalFPBinary(in, dst, args[0], args[1])
		return false, ""
	case in.Op == ir.OpFNeg:
		w := ir.ScalarBits(ir.Elem(in.Ty))
		for i := range dst {
			x := args[0].Lanes[i]
			if x.Poison {
				dst[i] = x
				continue
			}
			dst[i] = Word{V: storeFloat(w, -loadFloat(w, x.V))}
		}
		return false, ""
	case in.Op == ir.OpICmp:
		evalICmp(in, dst, args[0], args[1])
		return false, ""
	case in.Op == ir.OpFCmp:
		evalFCmp(in, dst, args[0], args[1])
		return false, ""
	case in.Op == ir.OpSelect:
		evalSelect(dst, args[0], args[1], args[2])
		return false, ""
	case in.Op == ir.OpFreeze:
		for i := range dst {
			if l := args[0].Lanes[i]; l.Poison {
				dst[i] = Word{V: 0}
			} else {
				dst[i] = l
			}
		}
		return false, ""
	case in.Op == ir.OpBitcast:
		return evalBitcast(in.Ty, in.Args[0].Type(), dst, args[0], sc)
	case in.Op.IsConversion():
		evalConvert(in, dst, args[0])
		return false, ""
	case in.Op == ir.OpGEP:
		return evalGEP(in, dst, args, mem)
	case in.Op == ir.OpLoad:
		return evalLoad(in, dst, args[0], mem)
	case in.Op == ir.OpStore:
		return evalStore(in, args[0], args[1], mem, sc)
	case in.Op == ir.OpCall:
		return evalCall(in, dst, args)
	case in.Op == ir.OpExtractElt:
		vec, idx := args[0], args[1].Lanes[0]
		if idx.Poison || idx.V >= uint64(len(vec.Lanes)) {
			dst[0] = Word{Poison: true}
		} else {
			dst[0] = vec.Lanes[idx.V]
		}
		return false, ""
	case in.Op == ir.OpInsertElt:
		vec, elem, idx := args[0], args[1], args[2].Lanes[0]
		if idx.Poison || idx.V >= uint64(len(vec.Lanes)) {
			for i := range dst {
				dst[i] = Word{Poison: true}
			}
			return false, ""
		}
		copy(dst, vec.Lanes)
		dst[idx.V] = elem.Lanes[0]
		return false, ""
	case in.Op == ir.OpShuffle:
		return evalShuffle(in, dst, args[0], args[1])
	}
	return true, "unsupported opcode " + in.Op.Name()
}

func evalIntBinary(in *ir.Instr, dst []Word, a, b RVal) (bool, string) {
	w := ir.ScalarBits(ir.Elem(in.Ty))
	mask := ir.MaskW(w)
	for i := range dst {
		x, y := a.Lanes[i], b.Lanes[i]
		// Division by a non-poison zero is UB even with poison dividends,
		// so check UB cases before poison short-circuiting.
		switch in.Op {
		case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
			if y.Poison {
				return true, "division by poison"
			}
			if y.V&mask == 0 {
				return true, "division by zero"
			}
			if (in.Op == ir.OpSDiv || in.Op == ir.OpSRem) && !x.Poison {
				if ir.SignExt(x.V, w) == minSigned(w) && ir.SignExt(y.V, w) == -1 {
					return true, "signed division overflow"
				}
			}
		}
		if x.Poison || y.Poison {
			dst[i] = Word{Poison: true}
			continue
		}
		xv, yv := x.V&mask, y.V&mask
		var r uint64
		poison := false
		switch in.Op {
		case ir.OpAdd:
			r = (xv + yv) & mask
			if in.Flags.Has(ir.NUW) && r < xv {
				poison = true
			}
			if in.Flags.Has(ir.NSW) && addNSWOverflow(xv, yv, r, w) {
				poison = true
			}
		case ir.OpSub:
			r = (xv - yv) & mask
			if in.Flags.Has(ir.NUW) && yv > xv {
				poison = true
			}
			if in.Flags.Has(ir.NSW) && subNSWOverflow(xv, yv, r, w) {
				poison = true
			}
		case ir.OpMul:
			hi, lo := bits.Mul64(xv, yv)
			r = lo & mask
			if in.Flags.Has(ir.NUW) {
				if hi != 0 || lo&^mask != 0 {
					poison = true
				}
			}
			if in.Flags.Has(ir.NSW) && mulNSWOverflow(xv, yv, w) {
				poison = true
			}
		case ir.OpUDiv:
			r = xv / yv
			if in.Flags.Has(ir.Exact) && xv%yv != 0 {
				poison = true
			}
		case ir.OpSDiv:
			sr := ir.SignExt(xv, w) / ir.SignExt(yv, w)
			r = uint64(sr) & mask
			if in.Flags.Has(ir.Exact) && ir.SignExt(xv, w)%ir.SignExt(yv, w) != 0 {
				poison = true
			}
		case ir.OpURem:
			r = xv % yv
		case ir.OpSRem:
			r = uint64(ir.SignExt(xv, w)%ir.SignExt(yv, w)) & mask
		case ir.OpShl:
			if yv >= uint64(w) {
				poison = true
				break
			}
			r = (xv << yv) & mask
			if in.Flags.Has(ir.NUW) && (r>>yv) != xv {
				poison = true
			}
			if in.Flags.Has(ir.NSW) {
				back := uint64(ir.SignExt(r, w)>>yv) & mask
				if back != xv {
					poison = true
				}
			}
		case ir.OpLShr:
			if yv >= uint64(w) {
				poison = true
				break
			}
			r = xv >> yv
			if in.Flags.Has(ir.Exact) && (r<<yv)&mask != xv {
				poison = true
			}
		case ir.OpAShr:
			if yv >= uint64(w) {
				poison = true
				break
			}
			r = uint64(ir.SignExt(xv, w)>>yv) & mask
			// Exact ashr: poison if any shifted-out bit is non-zero.
			if in.Flags.Has(ir.Exact) && xv&((uint64(1)<<yv)-1) != 0 {
				poison = true
			}
		case ir.OpAnd:
			r = xv & yv
		case ir.OpOr:
			r = xv | yv
			if in.Flags.Has(ir.Disjoint) && xv&yv != 0 {
				poison = true
			}
		case ir.OpXor:
			r = xv ^ yv
		}
		dst[i] = Word{V: r & mask, Poison: poison}
	}
	return false, ""
}

func minSigned(w int) int64 {
	return -(int64(1) << uint(w-1))
}

func addNSWOverflow(x, y, r uint64, w int) bool {
	sx, sy, sr := ir.SignExt(x, w), ir.SignExt(y, w), ir.SignExt(r, w)
	return (sx >= 0) == (sy >= 0) && (sr >= 0) != (sx >= 0)
}

func subNSWOverflow(x, y, r uint64, w int) bool {
	sx, sy, sr := ir.SignExt(x, w), ir.SignExt(y, w), ir.SignExt(r, w)
	return (sx >= 0) != (sy >= 0) && (sr >= 0) != (sx >= 0)
}

func mulNSWOverflow(x, y uint64, w int) bool {
	sx, sy := ir.SignExt(x, w), ir.SignExt(y, w)
	if sx == 0 || sy == 0 {
		return false
	}
	p := sx * sy
	if sx != 0 && p/sx != sy {
		return true // 64-bit overflow
	}
	return p < minSigned(w) || p > -minSigned(w)-1
}

func evalFPBinary(in *ir.Instr, dst []Word, a, b RVal) {
	w := ir.ScalarBits(ir.Elem(in.Ty))
	for i := range dst {
		x, y := a.Lanes[i], b.Lanes[i]
		if x.Poison || y.Poison {
			dst[i] = Word{Poison: true}
			continue
		}
		fx, fy := loadFloat(w, x.V), loadFloat(w, y.V)
		var r float64
		switch in.Op {
		case ir.OpFAdd:
			r = fx + fy
		case ir.OpFSub:
			r = fx - fy
		case ir.OpFMul:
			r = fx * fy
		case ir.OpFDiv:
			r = fx / fy
		}
		dst[i] = Word{V: storeFloat(w, r)}
	}
}

func evalICmp(in *ir.Instr, dst []Word, a, b RVal) {
	w := ir.ScalarBits(ir.Elem(in.Args[0].Type()))
	mask := ir.MaskW(w)
	for i := range dst {
		x, y := a.Lanes[i], b.Lanes[i]
		if x.Poison || y.Poison {
			dst[i] = Word{Poison: true}
			continue
		}
		var r bool
		xv, yv := x.V&mask, y.V&mask
		sx, sy := ir.SignExt(xv, w), ir.SignExt(yv, w)
		switch in.IPredV {
		case ir.EQ:
			r = xv == yv
		case ir.NE:
			r = xv != yv
		case ir.UGT:
			r = xv > yv
		case ir.UGE:
			r = xv >= yv
		case ir.ULT:
			r = xv < yv
		case ir.ULE:
			r = xv <= yv
		case ir.SGT:
			r = sx > sy
		case ir.SGE:
			r = sx >= sy
		case ir.SLT:
			r = sx < sy
		case ir.SLE:
			r = sx <= sy
		}
		if r {
			dst[i] = Word{V: 1}
		} else {
			dst[i] = Word{V: 0}
		}
	}
}

func evalFCmp(in *ir.Instr, dst []Word, a, b RVal) {
	w := ir.ScalarBits(ir.Elem(in.Args[0].Type()))
	for i := range dst {
		x, y := a.Lanes[i], b.Lanes[i]
		if x.Poison || y.Poison {
			dst[i] = Word{Poison: true}
			continue
		}
		fx, fy := loadFloat(w, x.V), loadFloat(w, y.V)
		nan := math.IsNaN(fx) || math.IsNaN(fy)
		var r bool
		switch in.FPredV {
		case ir.FPredFalse:
			r = false
		case ir.FPredTrue:
			r = true
		case ir.ORD:
			r = !nan
		case ir.UNO:
			r = nan
		case ir.OEQ:
			r = !nan && fx == fy
		case ir.OGT:
			r = !nan && fx > fy
		case ir.OGE:
			r = !nan && fx >= fy
		case ir.OLT:
			r = !nan && fx < fy
		case ir.OLE:
			r = !nan && fx <= fy
		case ir.ONE:
			r = !nan && fx != fy
		case ir.UEQ:
			r = nan || fx == fy
		case ir.FUGT:
			r = nan || fx > fy
		case ir.FUGE:
			r = nan || fx >= fy
		case ir.FULT:
			r = nan || fx < fy
		case ir.FULE:
			r = nan || fx <= fy
		case ir.UNE:
			r = nan || fx != fy
		}
		if r {
			dst[i] = Word{V: 1}
		} else {
			dst[i] = Word{V: 0}
		}
	}
}

func evalSelect(dst []Word, cond, tv, fv RVal) {
	vectorCond := len(cond.Lanes) == len(dst) && len(dst) > 1
	for i := range dst {
		c := cond.Lanes[0]
		if vectorCond {
			c = cond.Lanes[i]
		}
		if c.Poison {
			dst[i] = Word{Poison: true}
			continue
		}
		if c.V&1 == 1 {
			dst[i] = tv.Lanes[i]
		} else {
			dst[i] = fv.Lanes[i]
		}
	}
}

func evalConvert(in *ir.Instr, dst []Word, a RVal) {
	fromTy := in.Args[0].Type()
	toElem := ir.Elem(in.Ty)
	fw := ir.ScalarBits(ir.Elem(fromTy))
	tw := ir.ScalarBits(toElem)
	if in.Op == ir.OpPtrToInt || in.Op == ir.OpIntToPtr {
		for i := range dst {
			if x := a.Lanes[i]; x.Poison {
				dst[i] = x
			} else {
				dst[i] = Word{V: x.V & ir.MaskW(tw)}
			}
		}
		return
	}
	for i := range dst {
		x := a.Lanes[i]
		if x.Poison {
			dst[i] = Word{Poison: true}
			continue
		}
		var r uint64
		poison := false
		switch in.Op {
		case ir.OpZExt:
			r = x.V & ir.MaskW(fw)
			if in.Flags.Has(ir.NNeg) && ir.SignExt(x.V, fw) < 0 {
				poison = true
			}
		case ir.OpSExt:
			r = uint64(ir.SignExt(x.V, fw)) & ir.MaskW(tw)
		case ir.OpTrunc:
			r = x.V & ir.MaskW(tw)
			if in.Flags.Has(ir.NUW) && x.V&ir.MaskW(fw) != r {
				poison = true
			}
			if in.Flags.Has(ir.NSW) && ir.SignExt(x.V, fw) != ir.SignExt(r, tw) {
				poison = true
			}
		case ir.OpFPExt:
			r = storeFloat(tw, loadFloat(fw, x.V))
		case ir.OpFPTrunc:
			r = storeFloat(tw, loadFloat(fw, x.V))
		case ir.OpSIToFP:
			r = storeFloat(tw, float64(ir.SignExt(x.V, fw)))
		case ir.OpUIToFP:
			r = storeFloat(tw, float64(x.V&ir.MaskW(fw)))
		case ir.OpFPToSI:
			f := loadFloat(fw, x.V)
			if math.IsNaN(f) || f < float64(minSigned(tw)) || f > float64(-minSigned(tw)-1) {
				poison = true
				break
			}
			r = uint64(int64(f)) & ir.MaskW(tw)
		case ir.OpFPToUI:
			f := loadFloat(fw, x.V)
			if math.IsNaN(f) || f < 0 || f >= math.Ldexp(1, tw) {
				poison = true
				break
			}
			r = uint64(f) & ir.MaskW(tw)
		}
		dst[i] = Word{V: r, Poison: poison}
	}
}

// evalBitcast reinterprets a value's bytes as another type of the same total
// width (little-endian lane packing). Any poison source lane poisons the
// whole result, matching LLVM's conservative semantics.
func evalBitcast(to ir.Type, from ir.Type, dst []Word, a RVal, sc *scratch) (bool, string) {
	if a.AnyPoison() {
		for i := range dst {
			dst[i] = Word{Poison: true}
		}
		return false, ""
	}
	fw := ir.ScalarBits(ir.Elem(from))
	tw := ir.ScalarBits(ir.Elem(to))
	totalFrom := fw * ir.Lanes(from)
	totalTo := tw * ir.Lanes(to)
	if totalFrom != totalTo {
		return true, fmt.Sprintf("bitcast width mismatch: %d vs %d bits", totalFrom, totalTo)
	}
	// Serialize to a bit buffer lane by lane, little endian within lanes.
	buf := sc.bitBuf(totalFrom)
	for i, l := range a.Lanes {
		for b := 0; b < fw; b++ {
			buf[i*fw+b] = (l.V>>uint(b))&1 == 1
		}
	}
	for i := range dst {
		var v uint64
		for b := 0; b < tw; b++ {
			if buf[i*tw+b] {
				v |= uint64(1) << uint(b)
			}
		}
		dst[i] = Word{V: v}
	}
	return false, ""
}

func evalGEP(in *ir.Instr, dst []Word, args []RVal, mem *Memory) (bool, string) {
	base := args[0].Lanes[0]
	if base.Poison {
		dst[0] = Word{Poison: true}
		return false, ""
	}
	addr := base.V
	elemBytes := uint64(ir.StoreBytes(in.ElemTy))
	for k := 1; k < len(args); k++ {
		idx := args[k].Lanes[0]
		if idx.Poison {
			dst[0] = Word{Poison: true}
			return false, ""
		}
		iw := ir.ScalarBits(in.Args[k].Type())
		off := uint64(ir.SignExt(idx.V, iw)) * elemBytes
		addr += off
	}
	if in.Flags.Has(ir.Inbounds) || in.Flags.Has(ir.NUW) {
		// Approximation: inbounds requires the result to stay within the
		// object containing the base address.
		r := mem.FindRegion(base.V)
		if r == nil || addr < r.Addr || addr > r.Addr+uint64(len(r.Data)) {
			dst[0] = Word{Poison: true}
			return false, ""
		}
	}
	dst[0] = Word{V: addr & ir.MaskW(64)}
	return false, ""
}

func evalLoad(in *ir.Instr, dst []Word, ptr RVal, mem *Memory) (bool, string) {
	p := ptr.Lanes[0]
	if p.Poison {
		return true, "load from poison pointer"
	}
	n := ir.StoreBytes(in.Ty)
	data, pois, ok := mem.LoadBytes(p.V, n)
	if !ok {
		return true, fmt.Sprintf("out-of-bounds load of %d bytes at 0x%X", n, p.V)
	}
	if in.Align > 1 && p.V%uint64(in.Align) != 0 {
		return true, fmt.Sprintf("misaligned load (align %d) at 0x%X", in.Align, p.V)
	}
	// Assemble lanes from little-endian bytes.
	elemBytes := ir.StoreBytes(ir.Elem(in.Ty))
	mask := ir.MaskW(ir.ScalarBits(ir.Elem(in.Ty)))
	for i := range dst {
		var v uint64
		poison := false
		for b := 0; b < elemBytes; b++ {
			idx := i*elemBytes + b
			v |= uint64(data[idx]) << uint(8*b)
			if pois[idx] {
				poison = true
			}
		}
		dst[i] = Word{V: v & mask, Poison: poison}
	}
	return false, ""
}

func evalStore(in *ir.Instr, v, ptr RVal, mem *Memory, sc *scratch) (bool, string) {
	p := ptr.Lanes[0]
	if p.Poison {
		return true, "store to poison pointer"
	}
	// Serialize the value into little-endian bytes plus poison marks.
	elemBytes := ir.StoreBytes(ir.Elem(in.Args[0].Type()))
	data, pois := sc.byteBuf(elemBytes * len(v.Lanes))
	for i, l := range v.Lanes {
		for b := 0; b < elemBytes; b++ {
			idx := i*elemBytes + b
			data[idx] = byte(l.V >> uint(8*b))
			pois[idx] = l.Poison
		}
	}
	if in.Align > 1 && p.V%uint64(in.Align) != 0 {
		return true, fmt.Sprintf("misaligned store (align %d) at 0x%X", in.Align, p.V)
	}
	if !mem.StoreBytes(p.V, data, pois) {
		return true, fmt.Sprintf("out-of-bounds store of %d bytes at 0x%X", len(data), p.V)
	}
	return false, ""
}

func evalShuffle(in *ir.Instr, dst []Word, a, b RVal) (bool, string) {
	mask, ok := in.Args[2].(*ir.ConstVec)
	if !ok {
		if _, isZero := in.Args[2].(*ir.Zero); isZero {
			for i := range dst {
				dst[i] = a.Lanes[0]
			}
			return false, ""
		}
		return true, "shufflevector requires a constant mask"
	}
	for i := range dst {
		switch c := mask.Elems[i].(type) {
		case *ir.ConstInt:
			k := int(ir.SignExt(c.V, c.Ty.W))
			switch {
			case k < 0 || k >= 2*len(a.Lanes):
				dst[i] = Word{Poison: true}
			case k < len(a.Lanes):
				dst[i] = a.Lanes[k]
			default:
				dst[i] = b.Lanes[k-len(a.Lanes)]
			}
		default:
			dst[i] = Word{Poison: true}
		}
	}
	return false, ""
}
