package interp

// Compile-once execution: Compile lowers a function into a Program — every
// SSA value numbered into a dense register slot, constants materialized into
// an immutable pool, block successors and phi edges resolved to indices —
// and an Evaluator (evaluator.go) executes the Program over many input
// vectors with reusable scratch storage, so a steady-state run performs no
// per-input allocations. Semantics are bit-identical to Exec: both engines
// call the same per-opcode kernels, and runtime-dependent errors (unbound
// values, unknown branch targets, unsupported opcodes) are still raised at
// the execution step that reaches them, never at compile time.

import (
	"repro/internal/ir"
)

// Program is a function compiled for repeated execution. It is immutable
// after Compile and may be shared by any number of Evaluators concurrently.
type Program struct {
	fn *ir.Func

	regLanes []int32 // lanes per register
	regOff   []int32 // arena word offset per register
	arenaLen int     // total words across all registers
	paramReg []int32 // register index per function parameter

	consts []constEntry
	code   []cinstr // all instructions, blocks back to back
	blocks []cblock

	// straight marks the fast path: a single block with no phi and no br
	// whose every operand is a parameter, a constant, or an earlier
	// instruction of the block. Straight programs skip per-run defined-
	// register bookkeeping and block dispatch entirely.
	straight bool

	// fallback marks the rare constructs the register machine does not
	// model (vector constants whose elements are runtime values, which the
	// reference interpreter resolves dynamically); Evaluator.Run delegates
	// such programs to Exec wholesale so semantics stay bit-identical.
	// fallbackWhy names the offending construct for diagnostics.
	fallback    bool
	fallbackWhy string

	// hasMem marks programs touching memory (load/store/gep). Batched
	// executions of such programs carry one Memory per lane.
	hasMem bool
}

// Batchable reports whether RunBatch executes p on its lane-batched path.
// Multi-block control flow runs under the masked block scheduler and
// memory-touching programs run against per-lane memories, so the only
// remaining fallback is a program the register machine cannot model at all
// (dynamic vector constants, delegated wholesale to Exec). Non-batchable
// programs still work through RunBatch — they fall back to per-vector
// execution with identical semantics.
func (p *Program) Batchable() bool { return !p.fallback }

// BatchFallbackReason describes why the program is executed per-vector by
// RunBatch, or "" for batchable programs. Historic fallback classes —
// multi-block control flow and memory access — batch natively now; only
// dynamic-vector-constant programs still bail.
func (p *Program) BatchFallbackReason() string {
	if !p.fallback {
		return ""
	}
	return p.fallbackWhy
}

// Fn returns the compiled function.
func (p *Program) Fn() *ir.Func { return p.fn }

type cblock struct {
	name       string
	start, end int32 // span in Program.code
}

// constEntry is one pre-materialized constant. Entries with ub set could not
// be materialized (e.g. a vector constant referencing an unbound value); the
// error is raised when an execution actually uses the operand, matching the
// reference interpreter.
type constEntry struct {
	rv  RVal
	ub  bool
	why string
}

type cinstr struct {
	in  *ir.Instr
	dst int32 // result register, -1 for void results

	// args maps operand positions to storage: values >= 0 are register
	// indices, values < 0 are const-pool indices encoded as ^idx.
	args []int32

	// checks lists the operand positions that need a runtime guard before
	// the kernel runs (possibly-unbound registers, unmaterializable
	// constants), in operand order. Empty on the fast path.
	checks []int32

	// succ holds the pre-resolved successor block indices for OpBr
	// (-1 when the label names no block).
	succ [2]int32

	// phiPred holds, per incoming phi edge, the index of the predecessor
	// block the label names (-2 when the label names no block, so it can
	// never match a real predecessor).
	phiPred []int32
}

// Compile lowers fn. It never fails: constructs the reference interpreter
// would fault on at runtime are compiled into instructions that raise the
// same UB when (and only when) an execution reaches them.
func Compile(fn *ir.Func) *Program {
	p := &Program{fn: fn}

	// Pass 1: number parameters and instruction results into registers.
	reg := make(map[ir.Value]int32)
	addReg := func(v ir.Value, ty ir.Type) int32 {
		id := int32(len(p.regLanes))
		lanes := int32(ir.Lanes(ty))
		if lanes < 1 {
			lanes = 1
		}
		p.regOff = append(p.regOff, int32(p.arenaLen))
		p.regLanes = append(p.regLanes, lanes)
		p.arenaLen += int(lanes)
		reg[v] = id
		return id
	}
	for _, prm := range fn.Params {
		p.paramReg = append(p.paramReg, addReg(prm, prm.Ty))
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.HasResult() {
				addReg(in, in.Ty)
			}
		}
	}

	blockIdx := make(map[string]int32, len(fn.Blocks))
	for i, b := range fn.Blocks {
		// First occurrence wins, matching ir.Func.BlockByName.
		if _, ok := blockIdx[b.Name]; !ok {
			blockIdx[b.Name] = int32(i)
		}
	}

	constIdx := make(map[ir.Value]int32)
	internConst := func(v ir.Value) int32 {
		if idx, ok := constIdx[v]; ok {
			return idx
		}
		if constHasDynamicElems(v, reg) {
			p.fallback = true
			if p.fallbackWhy == "" {
				p.fallbackWhy = "dynamic vector constant (elements of " + v.Ident() +
					" are computed at run time)"
			}
		}
		e := materializeConst(v, reg)
		idx := int32(len(p.consts))
		p.consts = append(p.consts, e)
		constIdx[v] = idx
		return idx
	}

	// Pass 2: compile instructions.
	defined := make(map[int32]bool, len(reg))
	for _, r := range p.paramReg {
		defined[r] = true
	}
	p.straight = len(fn.Blocks) == 1
	for bi, b := range fn.Blocks {
		cb := cblock{name: b.Name, start: int32(len(p.code))}
		for _, in := range b.Instrs {
			ci := cinstr{in: in, dst: -1, succ: [2]int32{-1, -1}}
			if in.HasResult() {
				ci.dst = reg[in]
			}
			ci.args = make([]int32, len(in.Args))
			for k, a := range in.Args {
				if r, ok := reg[a]; ok {
					ci.args[k] = r
					if !defined[r] {
						// Possibly unbound at runtime: guard the read.
						ci.checks = append(ci.checks, int32(k))
						p.straight = false
					}
				} else {
					idx := internConst(a)
					ci.args[k] = ^idx
					if p.consts[idx].ub {
						ci.checks = append(ci.checks, int32(k))
					}
				}
			}
			switch in.Op {
			case ir.OpLoad, ir.OpStore, ir.OpGEP:
				p.hasMem = true
			case ir.OpBr:
				p.straight = false
				for k := range in.Labels {
					if k > 1 {
						break
					}
					if t, ok := blockIdx[in.Labels[k]]; ok {
						ci.succ[k] = t
					}
				}
			case ir.OpPhi:
				p.straight = false
				ci.phiPred = make([]int32, len(in.Labels))
				for k, l := range in.Labels {
					ci.phiPred[k] = -2
					if t, ok := blockIdx[l]; ok {
						ci.phiPred[k] = t
					}
				}
			}
			if in.HasResult() {
				// Within a single block this marks defs in execution order;
				// across blocks it is only used to decide which operands
				// need runtime guards, which is conservative either way
				// because bi > 0 clears straight below.
				defined[reg[in]] = true
			}
			p.code = append(p.code, ci)
		}
		cb.end = int32(len(p.code))
		p.blocks = append(p.blocks, cb)
		if bi > 0 {
			p.straight = false
		}
	}
	if len(fn.Blocks) > 1 {
		// Multi-block functions: any instruction-result operand may be
		// unbound depending on the path taken, so guard all of them.
		for i := range p.code {
			ci := &p.code[i]
			ci.checks = ci.checks[:0]
			for k, slot := range ci.args {
				if slot >= 0 && !isParamReg(p, slot) {
					ci.checks = append(ci.checks, int32(k))
				} else if slot < 0 && p.consts[^slot].ub {
					ci.checks = append(ci.checks, int32(k))
				}
			}
		}
	}
	return p
}

func isParamReg(p *Program, r int32) bool {
	return int(r) < len(p.paramReg)
}

// constHasDynamicElems reports whether v is a vector constant with an
// element that is a runtime value (parameter or instruction result). Such
// composites force the whole program onto the Exec fallback.
func constHasDynamicElems(v ir.Value, reg map[ir.Value]int32) bool {
	switch c := v.(type) {
	case *ir.Splat:
		if _, dyn := reg[c.Elem]; dyn {
			return true
		}
		return constHasDynamicElems(c.Elem, reg)
	case *ir.ConstVec:
		for _, el := range c.Elems {
			if _, dyn := reg[el]; dyn {
				return true
			}
			if constHasDynamicElems(el, reg) {
				return true
			}
		}
	}
	return false
}

// materializeConst builds the pool entry for a non-register operand. It
// mirrors state.operand's constant cases; values it cannot materialize
// become lazy-UB entries (vector constants with runtime elements are instead
// routed to the Exec fallback by constHasDynamicElems).
func materializeConst(v ir.Value, reg map[ir.Value]int32) constEntry {
	switch c := v.(type) {
	case *ir.ConstInt:
		return constEntry{rv: Scalar(c.Ty, c.V)}
	case *ir.ConstFloat:
		return constEntry{rv: Scalar(c.Ty, storeFloat(c.Ty.W, c.F))}
	case *ir.Null:
		return constEntry{rv: Scalar(ir.Ptr, 0)}
	case *ir.Zero:
		return constEntry{rv: RVal{Ty: c.Ty, Lanes: make([]Word, ir.Lanes(c.Ty))}}
	case *ir.Undef:
		// Undef is approximated as zero, matching state.operand.
		return constEntry{rv: RVal{Ty: c.Ty, Lanes: make([]Word, ir.Lanes(c.Ty))}}
	case *ir.PoisonVal:
		return constEntry{rv: PoisonRV(c.Ty)}
	case *ir.Splat:
		if _, dyn := reg[c.Elem]; dyn {
			return constEntry{ub: true, why: "use of unbound value " + c.Elem.Ident()}
		}
		e := materializeConst(c.Elem, reg)
		if e.ub {
			return e
		}
		lanes := make([]Word, c.Ty.N)
		for i := range lanes {
			lanes[i] = e.rv.Lanes[0]
		}
		return constEntry{rv: RVal{Ty: c.Ty, Lanes: lanes}}
	case *ir.ConstVec:
		lanes := make([]Word, len(c.Elems))
		for i, el := range c.Elems {
			if _, dyn := reg[el]; dyn {
				return constEntry{ub: true, why: "use of unbound value " + el.Ident()}
			}
			e := materializeConst(el, reg)
			if e.ub {
				return e
			}
			lanes[i] = e.rv.Lanes[0]
		}
		return constEntry{rv: RVal{Ty: c.Ty, Lanes: lanes}}
	}
	return constEntry{ub: true, why: "use of unbound value " + v.Ident()}
}
