// Package minotaur reimplements the behaviourally relevant surface of the
// Minotaur superoptimizer (Liu et al.): a synthesizing superoptimizer
// focused on integer SIMD code. Its window support is wider than Souper's in
// the vector/min-max direction but much narrower elsewhere, and — as the
// paper observes on the Figure 4c case — it crashes outright on scalar
// floating point inputs.
//
// Synthesis is shallow: leaf candidates (arguments and zero) for any
// window, plus depth-1 combinations of vector components for vector-typed
// windows. This reproduces the paper's findings that Minotaur detects only
// identity/zero rewrites and single vector-op rewrites, and misses
// everything needing casts, selects, or multi-instruction replacements.
package minotaur

import (
	"math/rand"

	"repro/internal/alive"
	"repro/internal/interp"
	"repro/internal/ir"
)

// Options configures a run.
type Options struct {
	TestVectors int // default 32
	Seed        uint64
}

// Result reports a run.
type Result struct {
	Found          bool
	Candidate      *ir.Func
	Crashed        bool // scalar FP input: the paper's observed crash
	Unsupported    bool
	Reason         string
	VirtualSeconds float64
}

// components usable for depth-1 vector synthesis.
var components = []struct {
	op        ir.Opcode
	intrinsic string
}{
	{op: ir.OpAnd}, {op: ir.OpOr}, {op: ir.OpXor},
	{intrinsic: "umin"}, {intrinsic: "umax"}, {intrinsic: "smin"}, {intrinsic: "smax"},
}

// Optimize attempts to find a cheaper replacement for src.
func Optimize(src *ir.Func, opts Options) Result {
	if opts.TestVectors == 0 {
		opts.TestVectors = 32
	}
	res := Result{VirtualSeconds: 0.9}
	for _, in := range src.Instrs() {
		switch in.Op {
		case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFNeg, ir.OpFCmp:
			res.Crashed = true
			res.Reason = "crash while lifting floating point instruction " + in.Op.Name()
			return res
		}
	}
	for _, p := range src.Params {
		if ir.IsFloat(p.Ty) {
			res.Crashed = true
			res.Reason = "crash while lifting floating point argument"
			return res
		}
	}
	if reason, ok := supported(src); !ok {
		res.Unsupported = true
		res.Reason = reason
		return res
	}

	rng := rand.New(rand.NewSource(int64(opts.Seed) ^ 0x3107a))
	vectors := make([][]interp.RVal, 0, opts.TestVectors)
	for len(vectors) < opts.TestVectors {
		args := make([]interp.RVal, len(src.Params))
		for i, p := range src.Params {
			args[i] = randomVal(p.Ty, rng)
		}
		vectors = append(vectors, args)
	}
	// Compile once per function; the cache is shared with the final
	// refinement checks so src never recompiles. The counterexample pool
	// replays refuting inputs against every later candidate (tier 0).
	progs := interp.NewCache()
	pool := alive.NewCEPool()
	want := make([]interp.RVal, len(vectors))
	defined := make([]bool, len(vectors))
	srcEval := interp.NewEvaluator(progs.Program(src))
	for i, v := range vectors {
		r := srcEval.Run(interp.Env{Args: v})
		if r.Completed && !r.UB && !r.Ret.AnyPoison() {
			want[i] = r.Ret.Clone()
			defined[i] = true
		}
	}
	srcInstrs := src.NumInstrs(true)

	try := func(cand *ir.Func) bool {
		res.VirtualSeconds += 0.05
		if cand.NumInstrs(true) >= srcInstrs {
			return false
		}
		candEval := interp.NewEvaluator(progs.Program(cand))
		for i := range vectors {
			if !defined[i] {
				continue
			}
			r := candEval.Run(interp.Env{Args: vectors[i]})
			if !r.Completed || r.UB || !r.Ret.Equal(want[i]) {
				return false
			}
		}
		v := alive.Verify(src, cand, alive.Options{Samples: 1024, Seed: opts.Seed,
			Programs: progs, Pool: pool})
		if v.Verdict == alive.Correct {
			res.Found = true
			res.Candidate = cand
			return true
		}
		if v.Verdict == alive.Incorrect && v.CE != nil {
			// CEGIS: the refuting input joins the test-vector filter.
			if args, w, def, ok := alive.CEFilterVector(v.CE, srcEval); ok {
				vectors = append(vectors, args)
				want = append(want, w)
				defined = append(defined, def)
			}
		}
		return false
	}

	// Leaf candidates: each argument of the return type, and zero.
	var leaves []ir.Value
	for _, p := range src.Params {
		if ir.Equal(p.Ty, src.Ret) {
			leaves = append(leaves, p)
		}
	}
	if ir.IsInt(src.Ret) {
		leaves = append(leaves, ir.ZeroValue(src.Ret))
	}
	for _, l := range leaves {
		if try(leafFunc(src, l)) {
			return res
		}
	}
	// Depth-1 synthesis for vector windows only.
	if ir.IsVector(src.Ret) && ir.IsInt(src.Ret) {
		for _, comp := range components {
			for ai, a := range leaves {
				for bi, b := range leaves {
					if ai == bi {
						continue
					}
					if try(depth1Func(src, comp.op, comp.intrinsic, a, b)) {
						return res
					}
				}
			}
		}
	}
	return res
}

// supported reports whether Minotaur's lifter accepts every instruction.
func supported(f *ir.Func) (string, bool) {
	if len(f.Blocks) != 1 {
		return "control flow is not supported", false
	}
	if ir.IsVoid(f.Ret) {
		return "void results are not supported", false
	}
	for _, p := range f.Params {
		if ir.IsPtr(p.Ty) {
			return "memory is not supported", false
		}
	}
	for _, in := range f.Instrs() {
		switch in.Op {
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
			ir.OpShl, ir.OpLShr, ir.OpAShr, ir.OpRet:
		case ir.OpCall:
			switch ir.IntrinsicBase(in.Callee) {
			case "umin", "umax", "smin", "smax":
			default:
				return "intrinsic @" + in.Callee + " is not supported", false
			}
		default:
			return in.Op.Name() + " is not supported", false
		}
	}
	return "", true
}

func randomVal(ty ir.Type, rng *rand.Rand) interp.RVal {
	lanes := ir.Lanes(ty)
	w := ir.ScalarBits(ir.Elem(ty))
	rv := interp.RVal{Ty: ty, Lanes: make([]interp.Word, lanes)}
	for l := 0; l < lanes; l++ {
		rv.Lanes[l] = interp.Word{V: rng.Uint64() & ir.MaskW(w)}
	}
	return rv
}

func leafFunc(src *ir.Func, v ir.Value) *ir.Func {
	g := &ir.Func{Name: "minotaur", Ret: src.Ret}
	vmap := map[ir.Value]ir.Value{}
	for _, p := range src.Params {
		np := &ir.Param{Nm: p.Nm, Ty: p.Ty}
		g.Params = append(g.Params, np)
		vmap[p] = np
	}
	rv := v
	if m, ok := vmap[v]; ok {
		rv = m
	}
	g.Blocks = []*ir.Block{{Name: "entry", Instrs: []*ir.Instr{ir.RetI(rv)}}}
	return g
}

func depth1Func(src *ir.Func, op ir.Opcode, intrinsic string, a, b ir.Value) *ir.Func {
	g := &ir.Func{Name: "minotaur", Ret: src.Ret}
	vmap := map[ir.Value]ir.Value{}
	for _, p := range src.Params {
		np := &ir.Param{Nm: p.Nm, Ty: p.Ty}
		g.Params = append(g.Params, np)
		vmap[p] = np
	}
	m := func(v ir.Value) ir.Value {
		if nv, ok := vmap[v]; ok {
			return nv
		}
		return v
	}
	var in *ir.Instr
	if intrinsic != "" {
		in = ir.CallI("m0", ir.IntrinsicName(intrinsic, src.Ret), src.Ret, m(a), m(b))
	} else {
		in = ir.Bin(op, "m0", ir.NoFlags, m(a), m(b))
	}
	g.Blocks = []*ir.Block{{Name: "entry", Instrs: []*ir.Instr{in, ir.RetI(in)}}}
	return g
}
