package minotaur

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/parser"
)

func TestCrashesOnFloatingPoint(t *testing.T) {
	// The paper's case study 3: "Minotaur crashes on this IR function".
	pair := benchdata.FindingByID("133367").Pair
	res := Optimize(parser.MustParseFunc(pair.Src), Options{})
	if !res.Crashed {
		t.Fatalf("expected a crash on the FP window: %+v", res)
	}
}

func TestFindsScalarIdentity(t *testing.T) {
	src := parser.MustParseFunc(`define i8 @src(i8 %x) {
  %a = and i8 %x, -16
  %b = and i8 %x, 15
  %r = or i8 %a, %b
  ret i8 %r
}`)
	res := Optimize(src, Options{})
	if !res.Found || res.Candidate.NumInstrs(true) != 0 {
		t.Fatalf("expected the identity to be found: %+v", res)
	}
}

func TestFindsVectorDepthOne(t *testing.T) {
	pair := benchdata.FindingByID("163110").Pair // vec sub(or,and) -> xor
	res := Optimize(parser.MustParseFunc(pair.Src), Options{})
	if !res.Found {
		t.Fatalf("expected the vector xor rewrite: %+v", res)
	}
}

func TestMissesUmaxChain(t *testing.T) {
	// Paper: "Although Minotaur supports synthesizing this operation, it
	// fails to detect the missed optimization" (case study 2).
	pair := benchdata.FindingByID("142711").Pair
	res := Optimize(parser.MustParseFunc(pair.Src), Options{})
	if res.Found || res.Crashed || res.Unsupported {
		t.Fatalf("umax chain should be supported but not found: %+v", res)
	}
}

func TestRejectsUnsupportedWindows(t *testing.T) {
	cases := []string{
		`define i32 @f(i32 %x) { %c = icmp eq i32 %x, 0 %r = select i1 %c, i32 0, i32 %x ret i32 %r }`,
		`define i8 @f(ptr %p) { %r = load i8, ptr %p ret i8 %r }`,
		`define i8 @f(i8 %x) { %r = udiv i8 %x, 3 ret i8 %r }`,
		`define i16 @f(i8 %x) { %r = zext i8 %x to i16 ret i16 %r }`,
	}
	for _, src := range cases {
		res := Optimize(parser.MustParseFunc(src), Options{})
		if !res.Unsupported {
			t.Errorf("window should be unsupported: %s (%+v)", src, res)
		}
	}
}

// Emergence test: our Minotaur must detect exactly the paper's 3 RQ1 cases.
func TestRQ1EmergentTotal(t *testing.T) {
	found := map[string]bool{}
	for _, c := range benchdata.RQ1Cases() {
		src := parser.MustParseFunc(c.Pair.Src)
		if Optimize(src, Options{Seed: 1}).Found {
			found[c.IssueID] = true
		}
	}
	if len(found) != benchdata.PaperRQ1Baselines.Minotaur {
		t.Fatalf("minotaur found %d (%v), paper says %d",
			len(found), found, benchdata.PaperRQ1Baselines.Minotaur)
	}
}
