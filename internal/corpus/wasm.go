package corpus

import "repro/internal/wasm"

// WasmFixtures returns the embedded wasm binary corpus: deterministic
// hand-assembled modules with planted missed-optimization windows plus
// filler inside and outside the lifter's integer subset (see
// wasm.Fixtures). The encoded bytes are what campaigns, the lpod service
// tests, and the CI end-to-end smoke feed through the frontend.
func WasmFixtures() []wasm.Fixture { return wasm.Fixtures() }

// WasmModules decodes every embedded wasm fixture. The fixtures are
// generated and must always decode; an error here means the frontend's
// encoder and decoder disagree.
func WasmModules() ([]*wasm.Module, error) {
	fixtures := WasmFixtures()
	mods := make([]*wasm.Module, 0, len(fixtures))
	for _, fx := range fixtures {
		m, err := wasm.Decode(fx.Data)
		if err != nil {
			return nil, err
		}
		m.Name = fx.Name
		mods = append(mods, m)
	}
	return mods, nil
}
