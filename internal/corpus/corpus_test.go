package corpus

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/extract"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/parser"
)

func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(Options{Seed: 7})
	b := Generate(Options{Seed: 7})
	sa, sb := Summarize(a), Summarize(b)
	if sa != sb {
		t.Fatalf("same seed, different corpus: %+v vs %+v", sa, sb)
	}
	if ha, hb := corpusHash(a), corpusHash(b); ha != hb {
		t.Fatal("same seed must produce identical IR")
	}
	c := Generate(Options{Seed: 8})
	if corpusHash(a) == corpusHash(c) {
		t.Fatal("different seeds should differ")
	}
}

func corpusHash(ps []*Project) uint64 {
	var h uint64 = 1469598103934665603
	for _, p := range ps {
		for _, m := range p.Modules {
			for _, f := range m.Funcs {
				h = h*1099511628211 ^ ir.Hash(f)
			}
		}
	}
	return h
}

func TestFourteenProjectsWithLanguages(t *testing.T) {
	ps := Generate(Options{Seed: 1})
	if len(ps) != 14 {
		t.Fatalf("expected the paper's 14 projects, got %d", len(ps))
	}
	langs := map[string]int{}
	for _, p := range ps {
		langs[p.Language]++
	}
	if langs["C"] != 5 || langs["C++"] != 4 || langs["Rust"] != 5 {
		t.Fatalf("language mix wrong: %v", langs)
	}
}

func TestAllFunctionsVerify(t *testing.T) {
	for _, p := range Generate(Options{Seed: 2, ModulesPerProject: 2}) {
		for _, m := range p.Modules {
			if err := ir.VerifyModule(m); err != nil {
				t.Fatalf("%s: %v", m.Name, err)
			}
		}
	}
}

func TestEveryFindingIsPlanted(t *testing.T) {
	ps := Generate(Options{Seed: 3})
	// Every RQ2 finding must appear at least once (its patch-impact scan
	// depends on that), matched by the canonicalized structural hash.
	want := map[uint64]string{}
	for _, f := range benchdata.RQ2Findings() {
		want[ir.Hash(opt.RunO3(parser.MustParseFunc(f.Pair.Src)))] = f.IssueID
	}
	seen := map[string]bool{}
	for _, p := range ps {
		for _, m := range p.Modules {
			for _, f := range m.Funcs {
				if id, ok := want[ir.Hash(opt.RunO3(f))]; ok {
					seen[id] = true
				}
			}
		}
	}
	for _, f := range benchdata.RQ2Findings() {
		if !seen[f.IssueID] {
			t.Errorf("finding %s never planted", f.IssueID)
		}
	}
}

func TestExtractionDuplicatesDominate(t *testing.T) {
	ps := Generate(Options{Seed: 4})
	ex := extract.New(extract.Options{})
	for _, p := range ps {
		for _, m := range p.Modules {
			ex.Module(m)
		}
	}
	st := ex.Stats()
	if st.Duplicates <= st.Kept {
		t.Fatalf("real optimized IR is highly repetitive; expected duplicates > kept, got %+v", st)
	}
}

func TestPrevalenceOrdering(t *testing.T) {
	// The clamp (143636) family must be planted more often than a
	// weight-one family, mirroring Table 5's prevalence shape.
	ps := Generate(Options{Seed: 5})
	count := func(issue string) int {
		pair := benchdata.FindingByID(issue).Pair
		h := ir.Hash(parser.MustParseFunc(pair.Src))
		n := 0
		for _, p := range ps {
			for _, m := range p.Modules {
				for _, f := range m.Funcs {
					if ir.Hash(f) == h {
						n++
					}
				}
			}
		}
		return n
	}
	if count("143636") < count("143649") {
		t.Fatalf("clamp should be more prevalent: %d vs %d", count("143636"), count("143649"))
	}
}
