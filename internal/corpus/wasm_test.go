package corpus

import (
	"testing"

	"repro/internal/wasm"
)

func TestWasmFixturesDecode(t *testing.T) {
	fixtures := WasmFixtures()
	if len(fixtures) == 0 {
		t.Fatal("empty wasm fixture corpus")
	}
	mods, err := WasmModules()
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != len(fixtures) {
		t.Fatalf("%d modules from %d fixtures", len(mods), len(fixtures))
	}
	byName := make(map[string]*wasm.Module)
	for i, m := range mods {
		if m.Name != fixtures[i].Name {
			t.Errorf("module %d named %q, fixture named %q", i, m.Name, fixtures[i].Name)
		}
		byName[m.Name] = m
	}
	// The planted module carries the windows campaigns must find.
	planted := byName["planted.wasm"]
	if planted == nil {
		t.Fatal("planted.wasm missing from the corpus")
	}
	names := make(map[string]bool)
	for _, f := range planted.Funcs {
		names[f.Name] = true
	}
	if !names["masked_xor32"] || !names["masked_xor64"] {
		t.Fatalf("planted windows missing: %v", names)
	}
	// Every fixture is deterministic: regenerating yields identical bytes.
	again := WasmFixtures()
	for i := range fixtures {
		if string(fixtures[i].Data) != string(again[i].Data) {
			t.Fatalf("fixture %s is not deterministic", fixtures[i].Name)
		}
	}
}
