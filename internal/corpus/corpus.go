// Package corpus synthesizes the IR corpus the discovery experiment (RQ2)
// and the throughput experiment (RQ3) run on. The paper uses a 14-project
// subset of the LLVM Opt Benchmark (dtcxzyw/llvm-opt-benchmark) — optimized
// IR from real C/C++/Rust projects — which is multi-GiB and unavailable
// offline. This generator produces a corpus with the properties the
// experiments rely on: canonical straight-line code, heavy duplication
// (for the dedup statistics), and planted instances of the paper's missed
// optimization patterns at configurable prevalence.
package corpus

import (
	"fmt"
	"math/rand"

	"repro/internal/benchdata"
	"repro/internal/ir"
	"repro/internal/parser"
)

// Project mirrors one of the paper's selected projects.
type Project struct {
	Name     string
	Language string
	Modules  []*ir.Module
}

// Projects lists the paper's 14 selected projects with their languages.
var projectNames = []struct{ name, lang string }{
	{"cpython", "C"}, {"ffmpeg", "C"}, {"linux", "C"}, {"openssl", "C"}, {"redis", "C"},
	{"node", "C++"}, {"protobuf", "C++"}, {"opencv", "C++"}, {"z3", "C++"},
	{"pingora", "Rust"}, {"ripgrep", "Rust"}, {"typst", "Rust"}, {"uv", "Rust"}, {"zed", "Rust"},
}

// Options sizes the corpus.
type Options struct {
	Seed              uint64
	ModulesPerProject int     // default 6
	FuncsPerModule    int     // default 8
	PlantRate         float64 // fraction of modules receiving planted patterns (default 0.5)
}

func (o Options) withDefaults() Options {
	if o.ModulesPerProject == 0 {
		o.ModulesPerProject = 6
	}
	if o.FuncsPerModule == 0 {
		o.FuncsPerModule = 8
	}
	if o.PlantRate == 0 {
		o.PlantRate = 0.5
	}
	return o
}

// Generate builds the 14-project corpus. Planted pattern prevalence follows
// the shape of the paper's Table 5: the clamp (143636) and absorption
// (163108) families appear in many projects, the niche families in few.
func Generate(opts Options) []*Project {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(int64(opts.Seed) ^ 0xc0de))
	findings := benchdata.RQ2Findings()

	// Per-family planting weight: issues with large Table 5 impact appear
	// far more often.
	weight := func(issueID string) int {
		switch issueID {
		case "143636", "163108":
			return 8
		case "166973", "142674":
			return 4
		case "133367", "128134":
			return 2
		default:
			return 1
		}
	}

	var projects []*Project
	fnCounter := 0
	moduleIdx := 0
	totalModules := len(projectNames) * opts.ModulesPerProject
	for pi, pn := range projectNames {
		p := &Project{Name: pn.name, Language: pn.lang}
		for mi := 0; mi < opts.ModulesPerProject; mi++ {
			m := &ir.Module{Name: fmt.Sprintf("%s/mod%02d.ll", pn.name, mi)}
			for fi := 0; fi < opts.FuncsPerModule; fi++ {
				fnCounter++
				m.Funcs = append(m.Funcs, fillerFunc(rng, fnCounter))
			}
			// Guaranteed planting: every finding lands in at least one
			// module (round-robin), so patch-impact scans always see it.
			for fidx := moduleIdx; fidx < len(findings); fidx += totalModules {
				fnCounter++
				m.Funcs = append(m.Funcs, plantedFunc(findings[fidx], fnCounter))
			}
			moduleIdx++
			// Random extra plants, weighted by Table 5 prevalence.
			if rng.Float64() < opts.PlantRate {
				n := 1 + rng.Intn(3)
				for k := 0; k < n; k++ {
					f := findings[(pi*31+mi*7+k*13+rng.Intn(len(findings)))%len(findings)]
					for w := 0; w < weight(f.IssueID); w++ {
						fnCounter++
						m.Funcs = append(m.Funcs, plantedFunc(f, fnCounter))
					}
				}
			}
			p.Modules = append(p.Modules, m)
		}
		projects = append(projects, p)
	}
	return projects
}

// plantedFunc embeds a finding's source pattern as a module function.
func plantedFunc(f *benchdata.Finding, id int) *ir.Func {
	fn := parser.MustParseFunc(f.Pair.Src)
	fn.Name = fmt.Sprintf("planted_%s_%d", f.IssueID, id)
	return fn
}

// fillerOps are the canonical straight-line operations filler code uses.
var fillerOps = []ir.Opcode{
	ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
	ir.OpShl, ir.OpLShr, ir.OpAShr,
}

// fillerTemplates bounds the variety of filler shapes: real optimized IR is
// extremely repetitive (the paper deduplicates 8.7M sequences down to 800K),
// so filler code is drawn from a small pool of deterministic templates and
// the extractor's dedup removes the repeats.
const fillerTemplates = 48

// fillerFunc builds a random, valid, mostly-canonical straight-line
// function. Some filler is further optimizable — exactly like real corpus
// code — and gets filtered by the extractor.
func fillerFunc(outer *rand.Rand, id int) *ir.Func {
	template := outer.Intn(fillerTemplates)
	rng := rand.New(rand.NewSource(int64(template) * 7919))
	// Narrow widths dominate peephole windows in practice.
	widths := []ir.IntType{ir.I8, ir.I8, ir.I8, ir.I16, ir.I16, ir.I16, ir.I32, ir.I64}
	ty := widths[rng.Intn(len(widths))]
	nParams := 1 + rng.Intn(3)
	var params []*ir.Param
	var values []ir.Value
	for i := 0; i < nParams; i++ {
		p := &ir.Param{Nm: fmt.Sprintf("a%d", i), Ty: ty}
		params = append(params, p)
		values = append(values, p)
	}
	nInstrs := 2 + rng.Intn(6)
	var instrs []*ir.Instr
	for i := 0; i < nInstrs; i++ {
		op := fillerOps[rng.Intn(len(fillerOps))]
		a := values[rng.Intn(len(values))]
		var b ir.Value
		switch op {
		case ir.OpShl, ir.OpLShr, ir.OpAShr:
			b = ir.CInt(ty, int64(rng.Intn(ty.W-1)+1))
		default:
			if rng.Intn(2) == 0 {
				b = values[rng.Intn(len(values))]
			} else {
				b = ir.CInt(ty, int64(rng.Intn(64)+1))
			}
		}
		in := ir.Bin(op, fmt.Sprintf("v%d", i), ir.NoFlags, a, b)
		instrs = append(instrs, in)
		values = append(values, in)
	}
	last := instrs[len(instrs)-1]
	instrs = append(instrs, ir.RetI(last))
	return &ir.Func{
		Name:   fmt.Sprintf("filler_%d", id),
		Ret:    ty,
		Params: params,
		Blocks: []*ir.Block{{Name: "entry", Instrs: instrs}},
	}
}

// Stats summarizes a generated corpus.
type Stats struct {
	Projects, Modules, Funcs int
}

// Summarize counts a corpus.
func Summarize(projects []*Project) Stats {
	s := Stats{Projects: len(projects)}
	for _, p := range projects {
		s.Modules += len(p.Modules)
		for _, m := range p.Modules {
			s.Funcs += len(m.Funcs)
		}
	}
	return s
}
