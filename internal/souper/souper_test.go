package souper

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/parser"
)

func TestDefaultModeInfersConstants(t *testing.T) {
	src := parser.MustParseFunc(`define i8 @src(i8 %x) {
  %n = xor i8 %x, -1
  %r = and i8 %n, %x
  ret i8 %r
}`)
	res := Optimize(src, Options{Enum: 0})
	if !res.Found {
		t.Fatalf("default mode should infer the constant 0: %+v", res)
	}
	if got := res.Candidate.String(); got != "define i8 @souper(i8 %x) {\n  ret i8 0\n}\n" {
		t.Fatalf("unexpected candidate:\n%s", got)
	}
}

func TestDefaultModeDoesNotFindNonConstants(t *testing.T) {
	src := parser.MustParseFunc(`define i8 @src(i8 %x, i8 %y) {
  %a = and i8 %x, %y
  %o = or i8 %x, %y
  %r = xor i8 %a, %o
  ret i8 %r
}`)
	res := Optimize(src, Options{Enum: 0})
	if res.Found {
		t.Fatalf("default mode must not synthesize xor(x,y): %+v", res)
	}
}

func TestEnumFindsXor(t *testing.T) {
	src := parser.MustParseFunc(`define i8 @src(i8 %x, i8 %y) {
  %a = and i8 %x, %y
  %o = or i8 %x, %y
  %r = xor i8 %a, %o
  ret i8 %r
}`)
	res := Optimize(src, Options{Enum: 1})
	if !res.Found {
		t.Fatalf("enum=1 should synthesize xor(x,y): %+v", res)
	}
	if res.Candidate.NumInstrs(true) != 1 {
		t.Fatalf("expected a one-instruction candidate:\n%s", res.Candidate)
	}
}

func TestEnumFindsIdentity(t *testing.T) {
	src := parser.MustParseFunc(`define i8 @src(i8 %x) {
  %a = and i8 %x, -16
  %b = and i8 %x, 15
  %r = or i8 %a, %b
  ret i8 %r
}`)
	res := Optimize(src, Options{Enum: 1})
	if !res.Found {
		t.Fatalf("enum should find the identity leaf: %+v", res)
	}
	if res.Candidate.NumInstrs(true) != 0 {
		t.Fatalf("expected the identity candidate:\n%s", res.Candidate)
	}
}

func TestEnum2FindsSextTrunc(t *testing.T) {
	src := parser.MustParseFunc(`define i8 @src(i8 %x) {
  %a = shl i8 %x, 4
  %b = ashr i8 %a, 4
  ret i8 %b
}`)
	res := Optimize(src, Options{Enum: 2})
	if !res.Found {
		t.Fatalf("enum=2 should synthesize sext(trunc x): %+v", res)
	}
}

func TestUnsupportedWindows(t *testing.T) {
	cases := map[string]string{
		"intrinsic": `define i8 @f(i8 %x) {
  %r = call i8 @llvm.umax.i8(i8 %x, i8 1)
  ret i8 %r
}`,
		"vector": `define <4 x i8> @f(<4 x i8> %v) {
  %r = add <4 x i8> %v, %v
  ret <4 x i8> %r
}`,
		"float": `define double @f(double %x) {
  %r = fadd double %x, 1.0
  ret double %r
}`,
		"memory": `define i8 @f(ptr %p) {
  %r = load i8, ptr %p
  ret i8 %r
}`,
	}
	for name, src := range cases {
		res := Optimize(parser.MustParseFunc(src), Options{Enum: 3})
		if !res.Unsupported {
			t.Errorf("%s window should be unsupported: %+v", name, res)
		}
	}
}

func TestWideInputsTimeOutUnderEnum(t *testing.T) {
	pair := benchdata.FindingByID("128460").Pair // neg-via-xor on i64
	src := parser.MustParseFunc(pair.Src)
	res := Optimize(src, Options{Enum: 1})
	if !res.TimedOut {
		t.Fatalf("i64 enum run should exhaust the 20-minute virtual budget: %+v", res)
	}
	// ... but the default mode completes quickly (no constant found though).
	res = Optimize(src, Options{Enum: 0})
	if res.TimedOut || res.Found {
		t.Fatalf("default mode should finish without finding: %+v", res)
	}
}

func TestDefaultFindsWideConstWhereEnumTimesOut(t *testing.T) {
	pair := benchdata.FindingByID("143957").Pair // icmp-const on i64
	src := parser.MustParseFunc(pair.Src)
	def := Optimize(src, Options{Enum: 0})
	if !def.Found {
		t.Fatalf("default mode should infer the constant: %+v", def)
	}
	enum := Optimize(src, Options{Enum: 1})
	if !enum.TimedOut {
		t.Fatalf("enum mode should time out on the wide input: %+v", enum)
	}
}

// Emergence test: running our Souper on the RQ1 suite must reproduce the
// paper's totals — 3 found by the default mode, 14 by Enum 1-3, 15 total.
func TestRQ1EmergentTotals(t *testing.T) {
	defaultFound := map[string]bool{}
	enumFound := map[string]bool{}
	for _, c := range benchdata.RQ1Cases() {
		src := parser.MustParseFunc(c.Pair.Src)
		if Optimize(src, Options{Enum: 0, Seed: 1}).Found {
			defaultFound[c.IssueID] = true
		}
		for e := 1; e <= 3; e++ {
			if Optimize(src, Options{Enum: e, Seed: 1}).Found {
				enumFound[c.IssueID] = true
				break
			}
		}
	}
	want := benchdata.PaperRQ1Baselines
	if len(defaultFound) != want.SouperDefault {
		t.Errorf("default found %d (%v), paper says %d", len(defaultFound), keys(defaultFound), want.SouperDefault)
	}
	if len(enumFound) != want.SouperEnum {
		t.Errorf("enum found %d (%v), paper says %d", len(enumFound), keys(enumFound), want.SouperEnum)
	}
	total := map[string]bool{}
	for k := range defaultFound {
		total[k] = true
	}
	for k := range enumFound {
		total[k] = true
	}
	if len(total) != want.SouperTotal {
		t.Errorf("total found %d (%v), paper says %d", len(total), keys(total), want.SouperTotal)
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
