// Package souper reimplements the behaviourally relevant core of the Souper
// superoptimizer (Sasnauskas et al.): harvesting integer-only expression
// windows, inferring constant results from test vectors (the cheap default
// mode), and counterexample-guided enumerative synthesis of replacement
// expressions (the Enum modes), with a virtual-clock cost model calibrated
// to the paper's Table 4.
//
// The support matrix mirrors the paper's description of the real tool:
// no memory accesses, no floating point, no vectors, and no intrinsic calls
// (the paper specifically notes Souper cannot handle llvm.umin.*).
package souper

import (
	"math/rand"
	"sort"

	"repro/internal/alive"
	"repro/internal/interp"
	"repro/internal/ir"
)

// Options configures a run.
type Options struct {
	// Enum is the maximum number of synthesized instructions (paper: 0-3).
	Enum int
	// TimeoutSec is the virtual-clock budget (paper: 20 minutes).
	TimeoutSec float64
	// TestVectors is the number of concrete filtering inputs (default 32).
	TestVectors int
	Seed        uint64
}

func (o Options) withDefaults() Options {
	if o.TimeoutSec == 0 {
		o.TimeoutSec = 1200
	}
	if o.TestVectors == 0 {
		o.TestVectors = 32
	}
	return o
}

// Cost model constants (virtual seconds). Calibrated so that the default
// mode averages a few seconds per case, Enum=1 tens of seconds, and wide
// (i64) inputs exhaust the 20-minute budget during space construction — the
// timeout behaviour Table 3 and Table 4 report.
const (
	baseCost        = 0.4   // harvesting + canonicalization
	verifyCostPerB  = 0.3   // final verification per input byte
	evalCostPerCand = 0.01  // test-vector filtering per candidate per input byte
	spaceCostCoef   = 0.080 // Enum space construction, first level
	spaceCostStep   = 0.090 // additional per level beyond the first
)

// Result reports a run.
type Result struct {
	Found          bool
	Candidate      *ir.Func
	Unsupported    bool
	Reason         string // unsupported reason
	TimedOut       bool
	VirtualSeconds float64
	Candidates     int // candidates filtered
}

// Optimize attempts to find a cheaper replacement for src.
func Optimize(src *ir.Func, opts Options) Result {
	opts = opts.withDefaults()
	res := Result{VirtualSeconds: baseCost}
	if reason, ok := supported(src); !ok {
		res.Unsupported = true
		res.Reason = reason
		return res
	}
	inputBytes := 0
	for _, p := range src.Params {
		inputBytes += (ir.ScalarBits(p.Ty) + 7) / 8
	}
	if inputBytes == 0 {
		inputBytes = 1
	}
	// The synthesis cost grows sharply with input width (SMT queries over
	// wide bitvectors): cubic in half-words, floored at 1. This puts i64
	// windows past the 20-minute budget while i32-and-narrower windows
	// complete — the split the paper's timeout reports exhibit.
	widthFactor := float64(inputBytes) / 2 * float64(inputBytes) / 2 * float64(inputBytes) / 2
	if widthFactor < 1 {
		widthFactor = 1
	}

	// The run's hot loop executes src once and every candidate many times:
	// compile each function once (the hash-keyed cache also collapses
	// structurally repeated candidates across enumeration levels) and reuse
	// the same cache for the final refinement check. The counterexample
	// pool makes the loop properly CEGIS: an input that refuted one
	// candidate is replayed (verification tier 0) against every later one.
	progs := interp.NewCache()
	pool := alive.NewCEPool()
	vectors := testVectors(src, opts)
	want := make([]interp.RVal, len(vectors))
	defined := make([]bool, len(vectors))
	anyDefined := false
	srcEval := interp.NewEvaluator(progs.Program(src))
	for i, v := range vectors {
		r := srcEval.Run(interp.Env{Args: v})
		if r.Completed && !r.UB && !r.Ret.AnyPoison() {
			want[i] = r.Ret.Clone()
			defined[i] = true
			anyDefined = true
		}
	}
	if !anyDefined {
		return res
	}
	srcCost := windowCost(src)
	tryCandidate := func(cand *ir.Func) bool {
		res.Candidates++
		res.VirtualSeconds += evalCostPerCand * float64(inputBytes)
		if windowCost(cand) >= srcCost {
			return false
		}
		candEval := interp.NewEvaluator(progs.Program(cand))
		for i := range vectors {
			if !defined[i] {
				continue
			}
			r := candEval.Run(interp.Env{Args: vectors[i]})
			if !r.Completed || r.UB || !r.Ret.Equal(want[i]) {
				return false
			}
		}
		// Survivor: full verification.
		res.VirtualSeconds += verifyCostPerB * float64(inputBytes)
		v := alive.Verify(src, cand, alive.Options{Samples: 1024, Seed: opts.Seed,
			Programs: progs, Pool: pool})
		if v.Verdict == alive.Correct {
			res.Found = true
			res.Candidate = cand
			return true
		}
		if v.Verdict == alive.Incorrect && v.CE != nil {
			// Fold the falsifying input into the test-vector filter so later
			// candidates with the same bug die before full verification.
			if args, w, def, ok := alive.CEFilterVector(v.CE, srcEval); ok {
				vectors = append(vectors, args)
				want = append(want, w)
				defined = append(defined, def)
			}
		}
		return false
	}

	if opts.Enum <= 0 {
		// Default mode: constant inference from the test vectors only.
		if c, ok := inferConstant(src, want, defined); ok {
			tryCandidate(c)
		}
		return res
	}

	// Enum mode: enumerative synthesis replaces the cheap default strategy,
	// and its space construction is charged up front — this is what blows
	// the budget on wide inputs, reproducing the paper's timeouts.
	leaves := buildLeaves(src)
	numOps := len(binOps)
	spaceSize := float64(numOps) * float64(len(leaves)) * float64(len(leaves))
	coef := spaceCostCoef + spaceCostStep*float64(opts.Enum-1)
	res.VirtualSeconds += spaceSize * widthFactor * coef
	if res.VirtualSeconds > opts.TimeoutSec {
		res.TimedOut = true
		res.VirtualSeconds = opts.TimeoutSec // a timed-out run occupies exactly the budget
		return res
	}
	// Constant inference still runs (it is part of every strategy).
	if c, ok := inferConstant(src, want, defined); ok {
		if tryCandidate(c) {
			return res
		}
	}

	// Depth 0: leaves (inputs and constants of the return type).
	for _, l := range leaves {
		if !ir.Equal(l.Type(), src.Ret) {
			continue
		}
		cand := leafFunc(src, l)
		if tryCandidate(cand) {
			return res
		}
		if res.VirtualSeconds > opts.TimeoutSec {
			res.TimedOut = true
			res.VirtualSeconds = opts.TimeoutSec
			return res
		}
	}
	// Depth 1..Enum: expression trees over the component set.
	gen := &generator{src: src, leaves: leaves}
	for size := 1; size <= opts.Enum; size++ {
		for _, cand := range gen.candidates(size) {
			if tryCandidate(cand) {
				return res
			}
			if res.VirtualSeconds > opts.TimeoutSec {
				res.TimedOut = true
				return res
			}
		}
	}
	return res
}

// windowCost is Souper's replacement cost metric: one unit per instruction,
// with conversions counted as half (they usually fold into other operations
// on real targets). A candidate must be strictly cheaper than the window it
// replaces.
func windowCost(f *ir.Func) float64 {
	cost := 0.0
	for _, in := range f.Instrs() {
		if in.IsTerminator() {
			continue
		}
		if in.Op.IsConversion() {
			cost += 0.5
			continue
		}
		cost += 1
	}
	return cost
}

// supported reports whether Souper can harvest the window.
func supported(f *ir.Func) (string, bool) {
	if len(f.Blocks) != 1 {
		return "control flow is not supported", false
	}
	check := func(t ir.Type) (string, bool) {
		if ir.IsVector(t) {
			return "vector types are not supported", false
		}
		if ir.IsFloat(t) {
			return "floating point is not supported", false
		}
		if ir.IsPtr(t) {
			return "memory is not supported", false
		}
		return "", true
	}
	for _, p := range f.Params {
		if r, ok := check(p.Ty); !ok {
			return r, false
		}
	}
	if ir.IsVoid(f.Ret) {
		return "void results are not supported", false
	}
	if r, ok := check(f.Ret); !ok {
		return r, false
	}
	for _, in := range f.Instrs() {
		switch in.Op {
		case ir.OpLoad, ir.OpStore, ir.OpGEP:
			return "memory instructions are not supported", false
		case ir.OpCall:
			return "intrinsic @" + in.Callee + " is not supported", false
		case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFNeg, ir.OpFCmp:
			return "floating point is not supported", false
		case ir.OpRet, ir.OpBr:
		default:
		}
		if in.HasResult() {
			if r, ok := check(in.Ty); !ok {
				return r, false
			}
		}
	}
	return "", true
}

// testVectors builds the concrete filtering inputs: corner values then
// seeded random ones.
func testVectors(f *ir.Func, opts Options) [][]interp.RVal {
	rng := rand.New(rand.NewSource(int64(opts.Seed) ^ 0x50fa))
	var out [][]interp.RVal
	corner := []int64{0, 1, -1, 2, 127, -128, 255}
	for _, c := range corner {
		args := make([]interp.RVal, len(f.Params))
		for i, p := range f.Params {
			args[i] = interp.Scalar(p.Ty, uint64(c))
		}
		out = append(out, args)
	}
	for len(out) < opts.TestVectors {
		args := make([]interp.RVal, len(f.Params))
		for i, p := range f.Params {
			args[i] = interp.Scalar(p.Ty, rng.Uint64())
		}
		out = append(out, args)
	}
	return out
}

// inferConstant returns a ret-constant candidate when all defined test
// vectors produced the same value.
func inferConstant(src *ir.Func, want []interp.RVal, defined []bool) (*ir.Func, bool) {
	var first *interp.RVal
	for i := range want {
		if !defined[i] {
			continue
		}
		if first == nil {
			w := want[i]
			first = &w
		} else if !first.Equal(want[i]) {
			return nil, false
		}
	}
	if first == nil {
		return nil, false
	}
	it, ok := src.Ret.(ir.IntType)
	if !ok {
		return nil, false
	}
	c := &ir.ConstInt{Ty: it, V: first.Lanes[0].V & ir.MaskW(it.W)}
	return leafFunc(src, c), true
}

// leafFunc wraps a single value as a candidate function with src's signature.
func leafFunc(src *ir.Func, v ir.Value) *ir.Func {
	g := &ir.Func{Name: "souper", Ret: src.Ret}
	vmap := map[ir.Value]ir.Value{}
	for _, p := range src.Params {
		np := &ir.Param{Nm: p.Nm, Ty: p.Ty}
		g.Params = append(g.Params, np)
		vmap[p] = np
	}
	rv := v
	if m, ok := vmap[v]; ok {
		rv = m
	}
	g.Blocks = []*ir.Block{{Name: "entry", Instrs: []*ir.Instr{ir.RetI(rv)}}}
	return g
}

// binOps is the synthesis component set, ordered: cheap logic ops first so
// common rewrites surface early (matters under the virtual budget).
var binOps = []ir.Opcode{
	ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpAdd, ir.OpShl, ir.OpLShr,
	ir.OpAShr, ir.OpMul, ir.OpSub, ir.OpUDiv,
}

// buildLeaves collects parameters and candidate constants for every integer
// type occurring in the window (the solver reasons over all of them, which
// is why the space-construction cost below uses the full leaf count): the
// standard {0, 1, -1} plus constants appearing in src and shift-mask
// derivations of them.
func buildLeaves(src *ir.Func) []ir.Value {
	var leaves []ir.Value
	types := map[ir.IntType]bool{}
	for _, p := range src.Params {
		leaves = append(leaves, p)
		if it, ok := p.Ty.(ir.IntType); ok {
			types[it] = true
		}
	}
	if it, ok := src.Ret.(ir.IntType); ok {
		types[it] = true
	}
	var order []ir.IntType
	for it := range types {
		order = append(order, it)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].W < order[j].W })
	for _, it := range order {
		w := it.W
		set := map[uint64]bool{}
		add := func(v uint64) { set[v&ir.MaskW(w)] = true }
		add(0)
		add(1)
		add(ir.MaskW(w)) // -1
		for _, in := range src.Instrs() {
			for _, a := range in.Args {
				if c, ok := ir.IntConstValue(a); ok {
					add(c)
					add(^c)
					if c < 64 {
						add(ir.MaskW(w) >> c)
						add(ir.MaskW(w) << c)
					}
				}
			}
		}
		vals := make([]uint64, 0, len(set))
		for v := range set {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, v := range vals {
			leaves = append(leaves, &ir.ConstInt{Ty: it, V: v})
		}
	}
	return leaves
}

// generator enumerates candidate functions of a given synthesized size.
type generator struct {
	src    *ir.Func
	leaves []ir.Value
}

// candidates returns all candidate functions with exactly `size` synthesized
// instructions. Size 1 is binop(leaf, leaf); size 2 adds cast chains
// (sext/zext of trunc) and binop(leaf, binop(leaf, leaf)); size 3 nests one
// level deeper. The space is intentionally shaped like Souper's: wide but
// shallow.
func (g *generator) candidates(size int) []*ir.Func {
	it, ok := g.src.Ret.(ir.IntType)
	if !ok {
		return g.boolCandidates(size)
	}
	var out []*ir.Func
	switch size {
	case 1:
		for _, op := range binOps {
			for _, a := range g.leaves {
				if !ir.Equal(a.Type(), it) {
					continue
				}
				for _, b := range g.leaves {
					if !ir.Equal(b.Type(), it) {
						continue
					}
					out = append(out, g.binFunc(op, a, b))
				}
			}
		}
	case 2:
		// sext/zext(trunc X to iK) for narrowing widths K.
		for _, k := range truncWidths(it.W) {
			for _, a := range g.leaves {
				if _, isParam := a.(*ir.Param); !isParam || !ir.Equal(a.Type(), it) {
					continue
				}
				out = append(out, g.castChainFunc(a, k, ir.OpSExt))
				out = append(out, g.castChainFunc(a, k, ir.OpZExt))
			}
		}
		// binop(leaf, binop(leaf, leaf)) — capped.
		out = append(out, g.nested(2)...)
	default:
		out = append(out, g.nested(size)...)
	}
	return out
}

func truncWidths(w int) []int {
	var out []int
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		if k < w {
			out = append(out, k)
		}
	}
	if w-1 > 0 && w-1 != 32 && w-1 != 16 && w-1 != 8 && w-1 != 4 && w-1 != 2 && w-1 != 1 {
		out = append(out, w-1)
	}
	return out
}

const nestedCap = 4000

// nested builds two-level trees; deeper levels reuse the same shape with an
// extra outer op, capped to keep enumeration bounded like Souper's pruning.
func (g *generator) nested(size int) []*ir.Func {
	it := g.src.Ret.(ir.IntType)
	var out []*ir.Func
	for _, opOut := range binOps {
		for _, opIn := range binOps {
			for _, a := range g.leaves {
				if !ir.Equal(a.Type(), it) {
					continue
				}
				for _, b := range g.leaves {
					if !ir.Equal(b.Type(), it) {
						continue
					}
					for _, c := range g.leaves {
						if !ir.Equal(c.Type(), it) {
							continue
						}
						if len(out) >= nestedCap {
							return out
						}
						out = append(out, g.binBinFunc(opOut, opIn, a, b, c, size))
					}
				}
			}
		}
	}
	return out
}

// boolCandidates synthesizes i1 results: constants and icmps over leaves.
func (g *generator) boolCandidates(size int) []*ir.Func {
	if size != 1 {
		return nil
	}
	var out []*ir.Func
	out = append(out, leafFunc(g.src, ir.CBool(true)), leafFunc(g.src, ir.CBool(false)))
	preds := []ir.IPred{ir.EQ, ir.NE, ir.ULT, ir.SLT}
	for _, p := range preds {
		for _, a := range g.leaves {
			if ir.IsPtr(a.Type()) || ir.Equal(a.Type(), ir.I1) {
				continue
			}
			for _, b := range g.leaves {
				if !ir.Equal(b.Type(), a.Type()) {
					continue
				}
				cand := g.remapped(func(m map[ir.Value]ir.Value) ([]*ir.Instr, ir.Value) {
					cmp := ir.ICmpI("s0", p, m[a], m[b])
					return []*ir.Instr{cmp}, cmp
				})
				out = append(out, cand)
			}
		}
	}
	return out
}

// remapped builds a candidate function with src's signature from a body
// constructor that receives the value remapping.
func (g *generator) remapped(build func(map[ir.Value]ir.Value) ([]*ir.Instr, ir.Value)) *ir.Func {
	fn := &ir.Func{Name: "souper", Ret: g.src.Ret}
	m := map[ir.Value]ir.Value{}
	for _, p := range g.src.Params {
		np := &ir.Param{Nm: p.Nm, Ty: p.Ty}
		fn.Params = append(fn.Params, np)
		m[p] = np
	}
	for _, l := range g.leaves {
		if _, ok := m[l]; !ok {
			m[l] = l // constants map to themselves
		}
	}
	instrs, ret := build(m)
	instrs = append(instrs, ir.RetI(ret))
	fn.Blocks = []*ir.Block{{Name: "entry", Instrs: instrs}}
	return fn
}

func (g *generator) binFunc(op ir.Opcode, a, b ir.Value) *ir.Func {
	return g.remapped(func(m map[ir.Value]ir.Value) ([]*ir.Instr, ir.Value) {
		in := ir.Bin(op, "s0", ir.NoFlags, m[a], m[b])
		return []*ir.Instr{in}, in
	})
}

func (g *generator) binBinFunc(opOut, opIn ir.Opcode, a, b, c ir.Value, size int) *ir.Func {
	return g.remapped(func(m map[ir.Value]ir.Value) ([]*ir.Instr, ir.Value) {
		inner := ir.Bin(opIn, "s0", ir.NoFlags, m[b], m[c])
		outer := ir.Bin(opOut, "s1", ir.NoFlags, m[a], inner)
		instrs := []*ir.Instr{inner, outer}
		cur := outer
		for extra := 3; extra <= size; extra++ {
			nx := ir.Bin(opOut, "s"+itoa(extra), ir.NoFlags, cur, m[a])
			instrs = append(instrs, nx)
			cur = nx
		}
		return instrs, cur
	})
}

func (g *generator) castChainFunc(a ir.Value, k int, ext ir.Opcode) *ir.Func {
	return g.remapped(func(m map[ir.Value]ir.Value) ([]*ir.Instr, ir.Value) {
		it := g.src.Ret.(ir.IntType)
		tr := ir.Conv(ir.OpTrunc, "s0", m[a], ir.IntT(k), ir.NoFlags)
		ex := ir.Conv(ext, "s1", tr, it, ir.NoFlags)
		return []*ir.Instr{tr, ex}, ex
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
