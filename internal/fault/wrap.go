package fault

// The seam wrappers: one per I/O boundary the pipeline must survive. Each
// consults the injector before delegating; a nil injector (or a site absent
// from the plan) makes every wrapper a zero-cost pass-through.

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"time"

	"repro/internal/llm"
)

// Client wraps an llm.Client with fault injection at SiteLLM: transient
// errors (retryable through llm.Retrying), deterministic latency, and
// panics (exercising the engine's per-window panic isolation).
type Client struct {
	inner llm.Client
	inj   *Injector
}

// NewClient wraps inner with the injector.
func NewClient(inner llm.Client, inj *Injector) *Client {
	return &Client{inner: inner, inj: inj}
}

// Profile passes through to the wrapped client.
func (c *Client) Profile() llm.Profile { return c.inner.Profile() }

// Complete injects the drawn fault (if any) and otherwise delegates.
func (c *Client) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	switch d := c.inj.decide(SiteLLM); d.kind {
	case injectPanic:
		panic(panicValue(SiteLLM, d.n))
	case injectError:
		return llm.Response{}, &Error{Site: SiteLLM, N: d.n}
	case injectLatency:
		if err := sleep(ctx, d.latency); err != nil {
			return llm.Response{}, err
		}
	}
	return c.inner.Complete(ctx, req)
}

// OSFile is the slice of *os.File the store's record log needs — the same
// method set as store.File, declared independently so neither package
// imports the other.
type OSFile interface {
	Write(p []byte) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	Close() error
}

// File wraps a store log file with write-path fault injection: short writes
// at SiteStoreWrite (half the bytes land, then an error — the ENOSPC
// shape), failed fsyncs at SiteStoreSync, and failed truncates at
// SiteStoreTruncate (simulating a crash between a torn append and its
// rollback). The read path — recovery, scans — is never faulted, and a
// panic verdict is downgraded to an error: the store runs under locks
// where a panic would corrupt invariants rather than test resilience.
type File struct {
	inner OSFile
	inj   *Injector
}

// NewFile wraps inner with the injector.
func NewFile(inner OSFile, inj *Injector) *File {
	return &File{inner: inner, inj: inj}
}

// Write appends, injecting a short write on an error/panic verdict.
func (f *File) Write(p []byte) (int, error) {
	switch d := f.inj.decide(SiteStoreWrite); d.kind {
	case injectError, injectPanic:
		n, _ := f.inner.Write(p[:len(p)/2])
		return n, &Error{Site: SiteStoreWrite, N: d.n}
	case injectLatency:
		time.Sleep(d.latency)
	}
	return f.inner.Write(p)
}

// Sync fsyncs, injecting a failed durability barrier on a fault verdict.
func (f *File) Sync() error {
	switch d := f.inj.decide(SiteStoreSync); d.kind {
	case injectError, injectPanic:
		return &Error{Site: SiteStoreSync, N: d.n}
	case injectLatency:
		time.Sleep(d.latency)
	}
	return f.inner.Sync()
}

// Truncate shrinks the log, injecting a failure on a fault verdict.
func (f *File) Truncate(size int64) error {
	switch d := f.inj.decide(SiteStoreTruncate); d.kind {
	case injectError, injectPanic:
		return &Error{Site: SiteStoreTruncate, N: d.n}
	case injectLatency:
		time.Sleep(d.latency)
	}
	return f.inner.Truncate(size)
}

// ReadAt passes through: recovery must observe exactly what the faulty
// writes left on disk.
func (f *File) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }

// Seek passes through.
func (f *File) Seek(offset int64, whence int) (int64, error) { return f.inner.Seek(offset, whence) }

// Stat passes through.
func (f *File) Stat() (os.FileInfo, error) { return f.inner.Stat() }

// Close passes through.
func (f *File) Close() error { return f.inner.Close() }

// Middleware wraps an HTTP handler with fault injection at SiteHTTP:
// injected 503 JSON errors (with Retry-After so well-behaved clients back
// off), deterministic latency, and handler panics — which the service's
// recovery middleware must convert into 500s instead of dropping the
// connection. Mount it between the recovery wrapper and the API mux.
func Middleware(inj *Injector, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch d := inj.decide(SiteHTTP); d.kind {
		case injectPanic:
			panic(panicValue(SiteHTTP, d.n))
		case injectError:
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{
				"error": (&Error{Site: SiteHTTP, N: d.n}).Error(),
			})
			return
		case injectLatency:
			if err := sleep(r.Context(), d.latency); err != nil {
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// sleep waits for d or until ctx ends, whichever is first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
