package fault

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/llm"
)

// drawKinds replays n decisions at a site and returns the drawn kinds.
func drawKinds(in *Injector, site Site, n int) []kind {
	out := make([]kind, n)
	for i := range out {
		out[i] = in.decide(site).kind
	}
	return out
}

// TestDeterministicReplay pins the core contract: the same seed and plan
// draw the same per-site decision sequence, and a different seed draws a
// different one.
func TestDeterministicReplay(t *testing.T) {
	plan := Plan{
		SiteLLM:  {PanicRate: 0.1, ErrorRate: 0.3, LatencyRate: 0.2},
		SiteHTTP: {ErrorRate: 0.5},
	}
	const n = 200
	a := New(42, plan)
	b := New(42, plan)
	for _, site := range []Site{SiteLLM, SiteHTTP} {
		ka, kb := drawKinds(a, site, n), drawKinds(b, site, n)
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("%s call %d: seed-42 replicas disagree (%v vs %v)", site, i+1, ka[i], kb[i])
			}
		}
	}
	c := New(43, plan)
	if kc := drawKinds(c, SiteLLM, n); equalKinds(kc, drawKinds(New(42, plan), SiteLLM, n)) {
		t.Fatal("different seeds drew identical fault sequences")
	}
	// Sites are independent streams: llm's sequence is not http's.
	d := New(42, Plan{SiteLLM: plan[SiteLLM], SiteHTTP: plan[SiteLLM]})
	if equalKinds(drawKinds(d, SiteLLM, n), drawKinds(d, SiteHTTP, n)) {
		t.Fatal("distinct sites share one random stream")
	}
}

func equalKinds(a, b []kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBudgetAndDisable pins the blast-radius controls: budgets cap injected
// faults per site, Disable stops injection entirely, Enable resumes it.
func TestBudgetAndDisable(t *testing.T) {
	in := New(1, Plan{SiteLLM: {ErrorRate: 1, Budget: 3}})
	for i := 0; i < 10; i++ {
		in.decide(SiteLLM)
	}
	c := in.Counts()[SiteLLM]
	if c.Errors != 3 || c.Calls != 10 {
		t.Fatalf("budget 3: got %d errors over %d calls", c.Errors, c.Calls)
	}

	in = New(1, Plan{SiteLLM: {ErrorRate: 1}})
	in.Disable()
	if d := in.decide(SiteLLM); d.kind != passThrough {
		t.Fatal("disabled injector still faulted")
	}
	in.Enable()
	if d := in.decide(SiteLLM); d.kind != injectError {
		t.Fatal("re-enabled injector did not fault at rate 1")
	}
	if in.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", in.Injected())
	}
}

// TestNilInjectorPassThrough: wrappers built with a nil injector never fault,
// so production code can install them unconditionally.
func TestNilInjectorPassThrough(t *testing.T) {
	var in *Injector
	if d := in.decide(SiteLLM); d.kind != passThrough {
		t.Fatal("nil injector faulted")
	}
	in.Disable() // must not crash
	if len(in.Counts()) != 0 {
		t.Fatal("nil injector has counts")
	}
}

// echoClient is a minimal llm.Client for wrapper tests.
type echoClient struct{}

func (echoClient) Profile() llm.Profile { return llm.Profile{Name: "echo"} }
func (echoClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	return llm.Response{Text: "ok"}, nil
}

// TestClientWrapper pins the llm seam: injected errors are transient and
// carry the site, injected panics carry the call number, clean calls pass
// through.
func TestClientWrapper(t *testing.T) {
	in := New(1, Plan{SiteLLM: {ErrorRate: 1, Budget: 1}})
	c := NewClient(echoClient{}, in)
	_, err := c.Complete(context.Background(), llm.Request{})
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != SiteLLM || !fe.Transient() {
		t.Fatalf("injected error wrong: %v", err)
	}
	if resp, err := c.Complete(context.Background(), llm.Request{}); err != nil || resp.Text != "ok" {
		t.Fatalf("post-budget call did not pass through: %v %v", resp, err)
	}

	in = New(1, Plan{SiteLLM: {PanicRate: 1, Budget: 1}})
	c = NewClient(echoClient{}, in)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected panic did not fire")
			}
		}()
		c.Complete(context.Background(), llm.Request{})
	}()
}

// TestClientLatencyHonorsContext: an injected delay aborts when the request
// context ends.
func TestClientLatencyHonorsContext(t *testing.T) {
	in := New(1, Plan{SiteLLM: {LatencyRate: 1, Latency: time.Minute}})
	c := NewClient(echoClient{}, in)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := c.Complete(ctx, llm.Request{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("latency ignored context: %v", err)
	}
}

// TestMiddleware pins the HTTP seam: injected 503s carry Retry-After and a
// JSON error body; clean requests reach the handler.
func TestMiddleware(t *testing.T) {
	in := New(1, Plan{SiteHTTP: {ErrorRate: 1, Budget: 1}})
	h := Middleware(in, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("injected 503 wrong: %d %v", rec.Code, rec.Header())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("post-budget request did not pass through: %d", rec.Code)
	}
}
