// Package fault is the deterministic fault-injection harness behind the
// chaos tests: a seedable Injector draws error/panic/latency decisions per
// injection site, and thin wrappers thread those decisions into the three
// I/O seams of the pipeline — the LLM provider (Client), the store's record
// log (File), and the HTTP service (Middleware).
//
// Determinism is the point. Every site has its own seeded random sequence,
// so the n-th call at a site always draws the same decision for a fixed
// seed; a chaos campaign that drives each site with a deterministic call
// order replays its faults identically. Budgets bound the blast radius
// (at most Budget faults per site), and Disable turns every wrapper into a
// pass-through mid-run — the "faults clear" phase of a chaos test.
//
// Injected errors are transient by design: they implement Transient() bool,
// so llm.Retrying classifies them as retryable, exactly like a real
// provider's 429/5xx. Injected panics carry the site and call number so an
// escaped one is immediately attributable.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Site names one injection point. The wrappers in this package use the
// Site* constants; custom call sites may use any string.
type Site string

// The standard injection sites.
const (
	// SiteLLM is the provider seam: Client injects into llm.Client.Complete.
	SiteLLM Site = "llm"
	// SiteStoreWrite is the record-log write seam: File injects short writes
	// (an ENOSPC-style partial append) into the store's commit path.
	SiteStoreWrite Site = "store.write"
	// SiteStoreSync is the fsync seam: File fails the durability barrier.
	SiteStoreSync Site = "store.sync"
	// SiteStoreTruncate is the torn-tail cleanup seam: failing it simulates
	// a crash between a partial append and the rollback truncate.
	SiteStoreTruncate Site = "store.truncate"
	// SiteHTTP is the service seam: Middleware injects 503s, latency and
	// handler panics in front of the API mux.
	SiteHTTP Site = "http"
)

// SitePlan tunes one site. Rates stack in decision order panic → error →
// latency: one uniform draw per call selects at most one fault, so
// PanicRate+ErrorRate+LatencyRate should stay ≤ 1.
type SitePlan struct {
	PanicRate   float64       // probability of an injected panic
	ErrorRate   float64       // probability of an injected error
	LatencyRate float64       // probability of an injected delay
	Latency     time.Duration // the injected delay (default 1ms)
	// Budget caps how many faults (of any kind) this site injects; 0 means
	// unlimited. Latency injections count toward the budget too.
	Budget int
}

// Plan maps sites to their fault mix. Sites absent from the plan never fault.
type Plan map[Site]SitePlan

// Counts is a per-site tally of what the injector actually did.
type Counts struct {
	Calls     int // decisions drawn (including clean passes and disabled calls)
	Errors    int
	Panics    int
	Latencies int
}

// Injected reports the total number of faults this site injected.
func (c Counts) Injected() int { return c.Errors + c.Panics + c.Latencies }

// Error is an injected failure. It is transient — llm.Retrying and any other
// classifier that honors the Transient() convention will retry it.
type Error struct {
	Site Site
	N    int // 1-based call number at the site
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected error at %s call %d", e.Site, e.N)
}

// Transient marks injected errors as retryable.
func (e *Error) Transient() bool { return true }

// kind is the decision drawn for one call.
type kind int

const (
	passThrough kind = iota
	injectError
	injectPanic
	injectLatency
)

// decision is one site call's verdict.
type decision struct {
	kind    kind
	n       int // 1-based call number at the site
	latency time.Duration
}

type siteState struct {
	rng      *rand.Rand
	calls    int
	counts   Counts
	injected int
}

// Injector draws deterministic fault decisions. Safe for concurrent use; the
// per-site decision sequence is fixed by the seed, so replays with the same
// seed and the same per-site call order inject identical faults.
type Injector struct {
	mu       sync.Mutex
	seed     uint64
	plan     Plan
	sites    map[Site]*siteState
	disabled bool
}

// New builds an injector for the given seed and plan.
func New(seed uint64, plan Plan) *Injector {
	return &Injector{seed: seed, plan: plan, sites: make(map[Site]*siteState)}
}

// Disable stops all fault injection: every wrapper becomes a pass-through.
// Call counters keep advancing so Counts stays meaningful.
func (in *Injector) Disable() { in.setDisabled(true) }

// Enable resumes fault injection after Disable.
func (in *Injector) Enable() { in.setDisabled(false) }

func (in *Injector) setDisabled(v bool) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.disabled = v
	in.mu.Unlock()
}

// Counts snapshots the per-site tallies.
func (in *Injector) Counts() map[Site]Counts {
	out := make(map[Site]Counts)
	if in == nil {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for site, st := range in.sites {
		out[site] = st.counts
	}
	return out
}

// Injected reports the total number of faults injected across all sites.
func (in *Injector) Injected() int {
	n := 0
	for _, c := range in.Counts() {
		n += c.Injected()
	}
	return n
}

// String renders a per-site summary, sites sorted, for logs and test output.
func (in *Injector) String() string {
	counts := in.Counts()
	sites := make([]string, 0, len(counts))
	for s := range counts {
		sites = append(sites, string(s))
	}
	sort.Strings(sites)
	var b strings.Builder
	for i, s := range sites {
		if i > 0 {
			b.WriteString("; ")
		}
		c := counts[Site(s)]
		fmt.Fprintf(&b, "%s: %d calls, %d errors, %d panics, %d delays",
			s, c.Calls, c.Errors, c.Panics, c.Latencies)
	}
	return b.String()
}

// site returns (creating if needed) the state for one site. Caller holds mu.
func (in *Injector) site(s Site) *siteState {
	st := in.sites[s]
	if st == nil {
		f := fnv.New64a()
		fmt.Fprintf(f, "%d|%s", in.seed, s)
		st = &siteState{rng: rand.New(rand.NewSource(int64(f.Sum64())))}
		in.sites[s] = st
	}
	return st
}

// decide draws the next decision for a site. A nil injector never faults, so
// wrappers can be installed unconditionally and armed only in chaos runs.
func (in *Injector) decide(s Site) decision {
	if in == nil {
		return decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.site(s)
	st.calls++
	st.counts.Calls++
	d := decision{n: st.calls}
	plan, ok := in.plan[s]
	if !ok || in.disabled {
		return d
	}
	if plan.Budget > 0 && st.injected >= plan.Budget {
		return d
	}
	// One uniform draw per call keeps the per-site sequence deterministic
	// regardless of which fault kinds are enabled.
	u := st.rng.Float64()
	switch {
	case u < plan.PanicRate:
		d.kind = injectPanic
		st.injected++
		st.counts.Panics++
	case u < plan.PanicRate+plan.ErrorRate:
		d.kind = injectError
		st.injected++
		st.counts.Errors++
	case u < plan.PanicRate+plan.ErrorRate+plan.LatencyRate:
		d.kind = injectLatency
		d.latency = plan.Latency
		if d.latency <= 0 {
			d.latency = time.Millisecond
		}
		st.injected++
		st.counts.Latencies++
	}
	return d
}

// panicValue renders the payload of an injected panic.
func panicValue(s Site, n int) string {
	return fmt.Sprintf("fault: injected panic at %s call %d", s, n)
}
