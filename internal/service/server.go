package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/alive"
	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/llm"
	"repro/internal/parser"
	"repro/internal/store"
	"repro/internal/wasm"
)

// Config assembles a discovery server.
type Config struct {
	// Store is the persistent content-addressed store (required): a plain
	// *store.Store or a *store.Sharded. The server does not close it; the
	// owner does, after Server.Close.
	Store store.Backend
	// Client is the LLM provider; nil builds the simulated provider from
	// Model and Seed.
	Client llm.Client
	// Model names the provider profile for the simulated client
	// (default "Gemini2.0T").
	Model string
	// Seed drives the simulated provider and the verifier (default 1).
	Seed uint64
	// Engine tunes the embedded engine. The server forces Learn on, installs
	// a store-backed Lookup, and threads one persistent CEPool through
	// Verify — everything else passes through.
	Engine engine.Config
	// MaxBodyBytes bounds request bodies; oversized submissions get 413
	// with a JSON error instead of a silent truncation (default 4 MiB).
	MaxBodyBytes int64
	// PersistWorkers sizes the result-persistence pool (default 4). Each
	// worker micro-batches results off the engine and issues one durability
	// barrier (store.Flush) per batch; with group commit running on the
	// store, concurrent workers' barriers share fsyncs.
	PersistWorkers int
	// Logf receives operational log lines (shutdown pending counts, degraded
	// transitions). Nil discards them.
	Logf func(format string, args ...any)
	// StreamHeartbeat is the SSE keep-alive comment interval for
	// GET /v1/findings?watch=1 (default 15s).
	StreamHeartbeat time.Duration
}

// Server is the lpod discovery service: one warm engine behind an HTTP/JSON
// API, every outcome persisted to (and deduplicated against) the store.
// Windows POSTed to /v1/windows are content-addressed by their structural
// hash; only hashes the store has never seen reach the engine. Findings,
// learned rules and counterexample vectors are committed to the store as
// results drain, so a restarted server resumes exactly where the last one
// stopped.
type Server struct {
	st        store.Backend
	strm      *stream
	pool      *alive.CEPool
	eng       *engine.Engine
	sub       *engine.Submitter
	maxBody   int64
	logf      func(format string, args ...any)
	heartbeat time.Duration

	cancel context.CancelFunc
	drain  sync.WaitGroup
	// done closes when the last persist worker exits — the engine-liveness
	// signal behind GET /v1/healthz.
	done chan struct{}

	mu        sync.Mutex
	inflight  map[uint64]bool
	submitted int64
	persisted int64
	// degradedAccepts counts results accepted but not durable when their
	// persist barrier ran (failed Flush, or volatile degraded outcomes) —
	// the traffic behind every Lpod-Degraded response on the submit path.
	degradedAccepts int64
	// waiters carries per-window persist notifications to wait-mode submits
	// (POST /v1/windows?wait=1): nil for durable, an error for
	// accepted-but-degraded.
	waiters map[uint64][]chan error
	// volatileFindings serves results the store must not persist (degraded,
	// knowledge-base-proposed outcomes computed while the provider's circuit
	// was open), keyed by window hash. Resubmitting a window after the
	// provider recovers replaces the volatile entry with a real, durable
	// finding — which is what lets a faulted campaign converge byte-for-byte
	// with a fault-free same-seed run.
	volatileFindings map[uint64][]byte

	closeOnce sync.Once
	closeErr  error

	// loadedVectors is how many pool vectors the startup warm load installed.
	loadedVectors int
}

// New builds and starts a server: loads the store's counterexample corpus
// into a fresh pool, wires the engine with learning and store lookup, and
// starts the persistent worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("service: Config.Store is required")
	}
	if cfg.Model == "" {
		cfg.Model = "Gemini2.0T"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	client := cfg.Client
	if client == nil {
		client = llm.NewSim(cfg.Model, cfg.Seed)
	}

	ecfg := cfg.Engine
	ecfg.Learn = true
	pool := ecfg.Verify.Pool
	if pool == nil {
		pool = alive.NewCEPool()
		ecfg.Verify.Pool = pool
	}
	if ecfg.Verify.Seed == 0 {
		ecfg.Verify.Seed = cfg.Seed
	}
	ecfg.Lookup = StoreLookup(cfg.Store)

	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 4 << 20
	}
	if cfg.PersistWorkers <= 0 {
		cfg.PersistWorkers = 4
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.StreamHeartbeat <= 0 {
		cfg.StreamHeartbeat = 15 * time.Second
	}

	s := &Server{
		st:               cfg.Store,
		pool:             pool,
		maxBody:          cfg.MaxBodyBytes,
		logf:             cfg.Logf,
		heartbeat:        cfg.StreamHeartbeat,
		done:             make(chan struct{}),
		inflight:         make(map[uint64]bool),
		waiters:          make(map[uint64][]chan error),
		volatileFindings: make(map[uint64][]byte),
	}
	s.strm = newStream(cfg.Store)
	n, err := LoadPool(cfg.Store, pool)
	if err != nil {
		return nil, fmt.Errorf("service: loading pool vectors: %w", err)
	}
	s.loadedVectors = n

	s.eng = engine.New(client, ecfg)
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.sub = s.eng.Submitter(ctx)
	s.drain.Add(cfg.PersistWorkers)
	for i := 0; i < cfg.PersistWorkers; i++ {
		go s.persistWorker()
	}
	go func() {
		s.drain.Wait()
		close(s.done)
	}()
	return s, nil
}

// persistBatchMax bounds one persist worker's micro-batch: how many results
// ride a single durability barrier.
const persistBatchMax = 64

// persistWorker drains computed results off the engine and persists them in
// micro-batches: each iteration takes one result, opportunistically grabs
// whatever else is already queued, saves the lot, and issues ONE durability
// barrier (store.Flush) for the whole batch — findings become servable only
// once durable, which is what lets a crashed-and-restarted daemon serve
// identical bytes. Several workers run concurrently; with group commit on
// the store their barriers coalesce into shared fsyncs.
func (s *Server) persistWorker() {
	defer s.drain.Done()
	results := s.sub.Results()
	for res := range results {
		batch := []engine.Result{res}
	fill:
		for len(batch) < persistBatchMax {
			select {
			case more, ok := <-results:
				if !ok {
					break fill
				}
				batch = append(batch, more)
			default:
				break fill
			}
		}
		s.persistBatch(batch)
	}
}

// persistBatch saves one micro-batch of results and runs its durability
// barrier. A failed barrier degrades, never loses: every record is already
// accepted (servable from memory, pending in the store, retried by the
// committer and by every later barrier), the batch's windows are counted as
// degraded accepts, and their findings reach the SSE stream once a later
// barrier lands. Wait-mode submitters are notified per window either way.
func (s *Server) persistBatch(batch []engine.Result) {
	type saved struct {
		h     uint64
		added bool
		err   error
	}
	var outs []saved
	for _, res := range batch {
		if res.Src == nil {
			continue
		}
		h := ir.Hash(res.Src)
		if res.Degraded {
			// A degraded (KB-proposed) outcome is servable but never durable:
			// SaveResult skips it below, and this volatile copy answers
			// /v1/findings until a post-recovery resubmission computes the
			// window for real.
			if data, err := FindingFromResult(res).Encode(); err == nil {
				s.mu.Lock()
				s.volatileFindings[h] = data
				s.mu.Unlock()
			}
		}
		added, err := SaveResult(s.st, res)
		if res.Degraded && err == nil {
			err = errVolatile
		}
		outs = append(outs, saved{h: h, added: added, err: err})
	}
	if _, ferr := FlushPool(s.st, s.pool); ferr != nil {
		for i := range outs {
			if outs[i].err == nil {
				outs[i].err = ferr
			}
		}
	}
	// The durability barrier for the whole batch. Flush covers every record
	// accepted before the call, so on success anything previously deferred
	// by a failed barrier is durable too — publish it.
	berr := s.st.Flush()
	for i := range outs {
		if outs[i].err == nil {
			outs[i].err = berr
		}
	}

	s.mu.Lock()
	for _, o := range outs {
		delete(s.inflight, o.h)
		if o.added && o.err == nil {
			s.persisted++
		}
		if o.err != nil {
			s.degradedAccepts++
		}
		for _, ch := range s.waiters[o.h] {
			ch <- o.err
		}
		delete(s.waiters, o.h)
	}
	s.mu.Unlock()

	if berr == nil {
		for _, o := range outs {
			if o.added {
				s.strm.publish(store.WindowKey(o.h))
			}
		}
		s.strm.publishDeferred()
	} else {
		s.logf("service: persist barrier failed (batch of %d stays pending): %v", len(batch), berr)
		for _, o := range outs {
			if o.added {
				s.strm.defer_(store.WindowKey(o.h))
			}
		}
	}
}

// errVolatile marks a window whose outcome is servable from memory but
// deliberately never persisted (degraded KB-proposed results).
var errVolatile = errors.New("service: degraded result, served volatile")

// LoadedVectors reports how many counterexample vectors the startup warm
// load installed into the pool.
func (s *Server) LoadedVectors() int { return s.loadedVectors }

// Close drains the engine (pending submissions still complete and persist),
// flushes the pool's remaining vectors, and commits. A FlushPool failure
// does not skip the commit, and a failed commit gets one final retry — the
// last chance to drain a transiently degraded batch before the process
// exits. Whatever stays pending is logged with its count, so an operator
// knows the store carries accepted-but-not-durable records into the next
// start (where Open + Commit will retry them... the records themselves are
// lost ONLY if the process dies before any commit succeeds; the log always
// recovers to its last durable prefix). It does not close the store.
// Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.sub.Close()
		s.drain.Wait()
		s.cancel()
		if _, err := FlushPool(s.st, s.pool); err != nil && s.closeErr == nil {
			// The pool drain failed mid-way; anything it did Put is pending
			// and MUST still get its commit attempt below.
			s.closeErr = err
		}
		if err := s.st.Commit(); err != nil {
			// Final retry: transient write faults (the kind internal/fault
			// injects) often clear on the next attempt.
			if err = s.st.Commit(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
		if ss := s.st.Stats(); ss.Pending > 0 {
			s.logf("service: shutdown with %d records pending (%d commit failures); they stay on the next start's retry path",
				ss.Pending, ss.CommitFails)
		} else {
			s.logf("service: shutdown clean, %d records durable", ss.Records)
		}
	})
	return s.closeErr
}

// windowStatus is one per-window entry in a submit response.
type windowStatus struct {
	Window string `json:"window,omitempty"`
	Status string `json:"status"` // cached | queued | pending | invalid | skipped
	Error  string `json:"error,omitempty"`
}

// submitRequest is the JSON body of POST /v1/windows: one window or a batch.
type submitRequest struct {
	IR      string   `json:"ir,omitempty"`
	Windows []string `json:"windows,omitempty"`
}

// Handler returns the HTTP API:
//
//	POST /v1/windows          submit one window or a batch (JSON or raw .ll);
//	                          ?wait=1 blocks until submitted windows persist
//	                          (202 + Lpod-Degraded when accepted, not durable)
//	GET  /v1/findings         durable findings since ?cursor=N; ?watch=1
//	                          upgrades to an SSE stream
//	GET  /v1/findings/{hash}  a stored finding, verbatim bytes
//	GET  /v1/rulebook         the store's assembled rulebook
//	GET  /v1/stats            engine + store + pool + server counters
//	GET  /v1/healthz          liveness + degraded-durability signal
//	POST /v1/compact          compact the store (drop evicted pool vectors)
//
// Every route sits behind a recovery middleware: a panicking handler
// answers 500 with a JSON error instead of killing the daemon's connection
// handling.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/windows", s.handleSubmit)
	mux.HandleFunc("GET /v1/findings", s.handleFindingsStream)
	mux.HandleFunc("GET /v1/findings/{hash}", s.handleFinding)
	mux.HandleFunc("GET /v1/rulebook", s.handleRulebook)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/compact", s.handleCompact)
	return recoverMiddleware(mux)
}

// recoverMiddleware is the service's outermost panic boundary.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if pv := recover(); pv != nil {
				httpError(w, http.StatusInternalServerError, "internal error: %v", pv)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// Read one byte past the limit so truncation is detectable: a body that
	// exceeds MaxBodyBytes gets a 413, never a silently clipped submission.
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.maxBody {
		httpError(w, http.StatusRequestEntityTooLarge,
			"request body exceeds %d bytes", s.maxBody)
		return
	}
	var sources []string
	ct := r.Header.Get("Content-Type")
	if strings.Contains(ct, "wasm") || wasm.IsWasm(body) {
		// A raw wasm binary: decode, lift every function in the lifter's
		// subset, and submit each lifted function as a window. Skipped
		// functions surface both as per-window statuses and in the
		// lift-coverage counters of /v1/stats.
		s.handleSubmitWasm(w, r, body)
		return
	}
	if strings.Contains(ct, "json") {
		var req submitRequest
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		if req.IR != "" {
			sources = append(sources, req.IR)
		}
		sources = append(sources, req.Windows...)
	} else {
		// Raw .ll text (curl-friendly): every function in the module is a
		// window.
		sources = append(sources, string(body))
	}
	if len(sources) == 0 {
		httpError(w, http.StatusBadRequest, "no windows in request")
		return
	}

	wait := r.URL.Query().Get("wait") != ""
	var statuses []windowStatus
	var waits []chan error
	for _, src := range sources {
		mod, err := parser.Parse(src)
		if err != nil {
			statuses = append(statuses, windowStatus{Status: "invalid", Error: err.Error()})
			continue
		}
		for _, fn := range mod.Funcs {
			ws, ch := s.submitWindow(fn, wait)
			statuses = append(statuses, ws)
			if ch != nil {
				waits = append(waits, ch)
			}
		}
	}
	s.respondStatuses(w, r, statuses, waits)
}

// respondStatuses writes a submit reply: 200 normally, 429 with Retry-After
// when the engine queue rejected any window — the caller sees every
// per-window status either way and retries only the rejected ones. In wait
// mode it first blocks until every submitted window's persist barrier ran;
// a window that was accepted but is NOT yet durable (failed barrier, or a
// volatile degraded outcome) turns the reply into 202 + Lpod-Degraded
// instead of an error: the record is safe in memory and on the store's
// retry path, which is the PR-9 "no accepted record lost" contract.
func (s *Server) respondStatuses(w http.ResponseWriter, r *http.Request, statuses []windowStatus, waits []chan error) {
	degraded := false
	for _, ch := range waits {
		select {
		case err := <-ch:
			if err != nil {
				degraded = true
			}
		case <-r.Context().Done():
			// The client hung up; stop waiting (the persist worker will
			// still deliver into the buffered channel and move on).
			degraded = true
		}
	}
	code := http.StatusOK
	for _, ws := range statuses {
		if ws.Status == "rejected" {
			code = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
			break
		}
	}
	if degraded && code == http.StatusOK {
		w.Header().Set("Lpod-Degraded", "true")
		code = http.StatusAccepted
	}
	writeJSON(w, code, map[string]any{"windows": statuses})
}

// handleSubmitWasm lifts a raw wasm binary function by function: every
// lifted function becomes a window submission, every skip becomes a
// per-window status, and the module's lift coverage lands in the engine
// stats (GET /v1/stats).
func (s *Server) handleSubmitWasm(w http.ResponseWriter, r *http.Request, body []byte) {
	wm, err := wasm.Decode(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding wasm module: %v", err)
		return
	}
	st := wasm.LiftStats{Reasons: make(map[string]int)}
	var statuses []windowStatus
	var waits []chan error
	for _, f := range wm.Funcs {
		st.Funcs++
		fn, err := wasm.LiftFunc(wm, f)
		if err != nil {
			st.Skipped++
			st.Reasons[wasm.SkipReason(err)]++
			statuses = append(statuses, windowStatus{Status: "skipped", Error: err.Error()})
			continue
		}
		st.Lifted++
		ws, ch := s.submitWindow(fn, r.URL.Query().Get("wait") != "")
		statuses = append(statuses, ws)
		if ch != nil {
			waits = append(waits, ch)
		}
	}
	s.sub.Stats().RecordLift(st)
	s.respondStatuses(w, r, statuses, waits)
}

// submitWindow dedups one window against the store and the inflight set,
// scheduling it on the engine only when it is genuinely novel. When wait is
// set and the window is in flight (newly queued or already), the returned
// channel delivers the window's persist outcome: nil once durable, an error
// when accepted but degraded.
func (s *Server) submitWindow(fn *ir.Func, wait bool) (windowStatus, chan error) {
	h := ir.Hash(fn)
	key := store.WindowKey(h)
	ws := windowStatus{Window: key}
	if s.st.Has(store.KindFinding, key) {
		ws.Status = "cached"
		return ws, nil
	}
	var ch chan error
	s.mu.Lock()
	if s.inflight[h] {
		if wait {
			ch = make(chan error, 1)
			s.waiters[h] = append(s.waiters[h], ch)
		}
		s.mu.Unlock()
		ws.Status = "pending"
		return ws, ch
	}
	s.inflight[h] = true
	s.submitted++
	if wait {
		// Register before TrySubmit: the persist worker notifies under the
		// same lock it clears inflight with, so a result can never slip
		// between submission and registration.
		ch = make(chan error, 1)
		s.waiters[h] = append(s.waiters[h], ch)
	}
	s.mu.Unlock()

	// Non-blocking admission: a full engine queue sheds the window as
	// "rejected" (the handler turns that into 429 + Retry-After) instead of
	// wedging the HTTP handler behind slow workers.
	if err := s.sub.TrySubmit(fn); err != nil {
		s.mu.Lock()
		delete(s.inflight, h)
		s.submitted--
		if wait {
			lst := s.waiters[h]
			if n := len(lst); n > 0 && lst[n-1] == ch {
				s.waiters[h] = lst[:n-1]
			}
			if len(s.waiters[h]) == 0 {
				delete(s.waiters, h)
			}
		}
		s.mu.Unlock()
		if errors.Is(err, engine.ErrQueueFull) {
			ws.Status = "rejected"
		} else {
			ws.Status = "invalid"
		}
		ws.Error = err.Error()
		return ws, nil
	}
	ws.Status = "queued"
	return ws, ch
}

// Compact rewrites the store under the service keep-policy (findings and
// rules stay; pool vectors the clock evicted go), folding any pending batch
// in durable. It first drains the pool so freshly deposited vectors are
// records (and survive: they are live by definition) before the rewrite.
// Exposed over POST /v1/compact and as lpod's -compact startup flag.
func (s *Server) Compact() (store.CompactStats, error) {
	if _, err := FlushPool(s.st, s.pool); err != nil {
		return store.CompactStats{}, fmt.Errorf("flushing pool: %w", err)
	}
	cs, err := s.st.Compact(CompactKeep(s.pool))
	if err != nil {
		return cs, err
	}
	s.logf("service: compacted store: kept %d, dropped %d, %d -> %d bytes",
		cs.Kept, cs.Dropped, cs.BytesBefore, cs.BytesAfter)
	return cs, nil
}

// handleCompact is POST /v1/compact: run Compact, report what the rewrite
// dropped.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	cs, err := s.Compact()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "compacting: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"kept":         cs.Kept,
		"dropped":      cs.Dropped,
		"bytes_before": cs.BytesBefore,
		"bytes_after":  cs.BytesAfter,
	})
}

func (s *Server) handleFinding(w http.ResponseWriter, r *http.Request) {
	h, err := store.ParseWindowKey(r.PathValue("hash"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad window hash: %v", err)
		return
	}
	key := store.WindowKey(h)
	if data, ok := s.st.Get(store.KindFinding, key); ok {
		// Serve the stored bytes verbatim: the store is the wire format, so
		// a restarted daemon answers byte-identically.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
		return
	}
	s.mu.Lock()
	pending := s.inflight[h]
	volatile, degraded := s.volatileFindings[h]
	s.mu.Unlock()
	if pending {
		writeJSON(w, http.StatusAccepted, windowStatus{Window: key, Status: "pending"})
		return
	}
	if degraded {
		// A degraded (KB-proposed) outcome: servable from memory, never
		// durable. The header flags it so clients know a resubmission after
		// the provider recovers yields the authoritative answer.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Lpod-Degraded", "true")
		w.WriteHeader(http.StatusOK)
		w.Write(volatile)
		return
	}
	writeJSON(w, http.StatusNotFound, windowStatus{Window: key, Status: "unknown"})
}

// handleHealthz is the liveness and durability probe: 200 while the engine's
// result drain is alive (status "ok", or "degraded" when the store has a
// commit backlog — accepted records not yet durable), 503 once the drain has
// stopped.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	live := true
	select {
	case <-s.done:
		live = false
	default:
	}
	ss := s.st.Stats()
	degraded := ss.CommitFails > 0 && ss.Pending > 0
	status, code := "ok", http.StatusOK
	if degraded {
		status = "degraded"
	}
	if !live {
		status, code = "stopped", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":             status,
		"engine_live":        live,
		"degraded":           degraded,
		"store_pending":      ss.Pending,
		"store_commit_fails": ss.CommitFails,
	})
}

func (s *Server) handleRulebook(w http.ResponseWriter, r *http.Request) {
	book, err := StoreRulebook(s.st)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "assembling rulebook: %v", err)
		return
	}
	data, err := book.Encode()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding rulebook: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// statsReply is the GET /v1/stats wire format.
type statsReply struct {
	Engine struct {
		Sequences       int            `json:"sequences"`
		Outcomes        map[string]int `json:"outcomes"`
		VerifyExecs     int            `json:"verify_execs"`
		BatchedExecs    int            `json:"batched_execs"`
		FallbackExecs   int            `json:"fallback_execs"`
		BatchCoverage   float64        `json:"batch_coverage"`
		VerifyCacheHits int            `json:"verify_cache_hits"`
		StoreHits       int            `json:"store_hits"`
		LearnedFindings int            `json:"learned_findings"`
		// Panics counts worker panics the engine recovered from;
		// Quarantined lists the 16-hex window hashes it isolated.
		Panics      int      `json:"panics"`
		Quarantined []string `json:"quarantined,omitempty"`
		// DegradedSeqs counts sequences answered by the knowledge-base
		// proposer while the provider's circuit breaker was open.
		DegradedSeqs int `json:"degraded_seqs"`
		TierKills    struct {
			Pool    int `json:"pool"`
			Special int `json:"special"`
			Random  int `json:"random"`
		} `json:"tier_kills"`
		// Lift is the wasm frontend's coverage over every module submitted
		// to this server: functions seen, lifted into the engine, skipped,
		// and the per-reason skip tally. All zero when no wasm was submitted.
		Lift wasm.LiftStats `json:"lift"`
	} `json:"engine"`
	Store struct {
		Records   int   `json:"records"`
		Findings  int   `json:"findings"`
		Rules     int   `json:"rules"`
		Vectors   int   `json:"vectors"`
		Bytes     int64 `json:"bytes"`
		PutNew    int64 `json:"put_new"`
		PutDup    int64 `json:"put_dup"`
		GetHits   int64 `json:"get_hits"`
		GetMisses int64 `json:"get_misses"`
		Recovered int64 `json:"recovered_bytes"`
		// Pending and CommitFails are the degraded-durability signal:
		// records accepted but not yet durable, and how many Commit batches
		// have failed (each rolled back and retried).
		Pending     int   `json:"pending"`
		CommitFails int64 `json:"commit_fails"`
		// Commits counts successful batches; PutNew/Commits is the group-
		// commit amortization (records per fsync). Shards is the fan-out of
		// the backing store; Compactions counts completed log rewrites.
		Commits     int64 `json:"commits"`
		Compactions int64 `json:"compactions"`
		Shards      int   `json:"shards"`
	} `json:"store"`
	Pool struct {
		Windows   int   `json:"windows"`
		Vectors   int   `json:"vectors"`
		Deposits  int64 `json:"deposits"`
		Dups      int64 `json:"dups"`
		Loaded    int64 `json:"loaded"`
		Evictions int64 `json:"evictions"`
	} `json:"pool"`
	Server struct {
		Submitted     int64 `json:"submitted"`
		Persisted     int64 `json:"persisted"`
		Inflight      int   `json:"inflight"`
		LoadedVectors int   `json:"loaded_vectors"`
		// Degraded mirrors /v1/healthz: the store has a commit backlog, so
		// recent findings are servable but not yet durable.
		Degraded bool `json:"degraded"`
		// VolatileFindings counts degraded (KB-proposed) results held only
		// in memory — never persisted, replaced by real findings when their
		// windows are resubmitted after the provider recovers.
		VolatileFindings int `json:"volatile_findings"`
		// DegradedAccepts counts results whose persist barrier did not reach
		// durable (failed Flush, or volatile degraded outcomes) — every one
		// answered on the submit path with 202 + Lpod-Degraded.
		DegradedAccepts int64 `json:"degraded_accepts"`
		// StreamFindings/StreamSubscribers describe GET /v1/findings?watch=1:
		// durable findings published to the stream log, and live SSE
		// subscribers right now.
		StreamFindings    int `json:"stream_findings"`
		StreamSubscribers int `json:"stream_subscribers"`
	} `json:"server"`
}

// StatsSnapshot gathers the live counters (also the GET /v1/stats payload).
func (s *Server) StatsSnapshot() any {
	var rep statsReply
	es := s.sub.Stats()
	rep.Engine.Sequences = es.Sequences()
	rep.Engine.Outcomes = make(map[string]int)
	for o, n := range es.ByOutcome() {
		rep.Engine.Outcomes[string(o)] = n
	}
	rep.Engine.VerifyExecs = es.VerifyExecs()
	rep.Engine.BatchedExecs, rep.Engine.FallbackExecs = es.BatchExecs()
	rep.Engine.BatchCoverage = es.BatchCoverage()
	rep.Engine.VerifyCacheHits = es.VerifyCacheHits()
	rep.Engine.StoreHits = es.StoreHits()
	rep.Engine.LearnedFindings = es.LearnedFindings()
	rep.Engine.Panics = es.Panics()
	rep.Engine.Quarantined = s.eng.Quarantined()
	rep.Engine.DegradedSeqs = es.DegradedSeqs()
	tk := es.TierKills()
	rep.Engine.TierKills.Pool = tk.Pool
	rep.Engine.TierKills.Special = tk.Special
	rep.Engine.TierKills.Random = tk.Random
	rep.Engine.Lift = es.LiftCoverage()

	ss := s.st.Stats()
	rep.Store.Records = ss.Records
	rep.Store.Findings = ss.Findings
	rep.Store.Rules = ss.Rules
	rep.Store.Vectors = ss.Vectors
	rep.Store.Bytes = ss.Bytes
	rep.Store.PutNew = ss.PutNew
	rep.Store.PutDup = ss.PutDup
	rep.Store.GetHits = ss.GetHits
	rep.Store.GetMisses = ss.GetMisses
	rep.Store.Recovered = ss.Recovered
	rep.Store.Pending = ss.Pending
	rep.Store.CommitFails = ss.CommitFails
	rep.Store.Commits = ss.Commits
	rep.Store.Compactions = ss.Compactions
	rep.Store.Shards = ss.Shards

	ps := s.pool.Stats()
	rep.Pool.Windows = ps.Windows
	rep.Pool.Vectors = ps.Vectors
	rep.Pool.Deposits = ps.Deposits
	rep.Pool.Dups = ps.Dups
	rep.Pool.Loaded = ps.Loaded
	rep.Pool.Evictions = ps.Evictions

	s.mu.Lock()
	rep.Server.Submitted = s.submitted
	rep.Server.Persisted = s.persisted
	rep.Server.Inflight = len(s.inflight)
	rep.Server.VolatileFindings = len(s.volatileFindings)
	rep.Server.DegradedAccepts = s.degradedAccepts
	s.mu.Unlock()
	rep.Server.LoadedVectors = s.loadedVectors
	rep.Server.Degraded = ss.CommitFails > 0 && ss.Pending > 0
	rep.Server.StreamFindings, rep.Server.StreamSubscribers = s.strm.counts()
	return rep
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
